#include <gtest/gtest.h>

#include "xfraud/data/generator.h"
#include "xfraud/data/prefilter.h"

namespace xfraud::data {
namespace {

using graph::TransactionRecord;

TransactionRecord Record(const std::string& id, int8_t label,
                         std::vector<float> features) {
  TransactionRecord r;
  r.txn_id = id;
  r.buyer_id = "b";
  r.email = "e";
  r.payment_token = "p";
  r.shipping_address = "a";
  r.label = label;
  r.features = std::move(features);
  return r;
}

TEST(RuleTest, FiresOnThreshold) {
  Rule rule;
  rule.dim = 1;
  rule.threshold = 0.5f;
  rule.greater = true;
  EXPECT_TRUE(rule.Fires({0.0f, 0.6f}));
  EXPECT_TRUE(rule.Fires({0.0f, 0.5f}));
  EXPECT_FALSE(rule.Fires({0.9f, 0.4f}));
  rule.greater = false;
  EXPECT_TRUE(rule.Fires({0.0f, 0.4f}));
  EXPECT_FALSE(rule.Fires({0.0f, 0.6f}));
}

TEST(RuleTest, ToStringMentionsDimensionAndDirection) {
  Rule rule;
  rule.dim = 3;
  rule.threshold = 1.25f;
  rule.greater = true;
  std::string text = rule.ToString();
  EXPECT_NE(text.find("feature[3]"), std::string::npos);
  EXPECT_NE(text.find(">="), std::string::npos);
}

TEST(RuleFilterTest, FindsSeparatingRule) {
  // Feature 0 separates perfectly: fraud >= 1.0, benign <= 0.0.
  std::vector<TransactionRecord> records;
  for (int i = 0; i < 200; ++i) {
    bool fraud = i % 20 == 0;
    records.push_back(Record("t" + std::to_string(i),
                             fraud ? graph::kLabelFraud : graph::kLabelBenign,
                             {fraud ? 1.0f : 0.0f, 0.5f}));
  }
  RuleFilter filter = RuleFilter::Fit(records, {});
  ASSERT_FALSE(filter.rules().empty());
  // All frauds kept, most benign dropped.
  int kept_fraud = 0, kept_benign = 0;
  for (const auto& r : records) {
    if (!filter.Keep(r)) continue;
    (r.label == graph::kLabelFraud ? kept_fraud : kept_benign) += 1;
  }
  EXPECT_EQ(kept_fraud, 10);
  EXPECT_EQ(kept_benign, 0);
}

TEST(RuleFilterTest, NoFraudMeansNoRules) {
  std::vector<TransactionRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(Record("t" + std::to_string(i), graph::kLabelBenign,
                             {static_cast<float>(i)}));
  }
  RuleFilter filter = RuleFilter::Fit(records, {});
  EXPECT_TRUE(filter.rules().empty());
}

TEST(RuleFilterTest, RespectsMaxRules) {
  Rng rng(3);
  std::vector<TransactionRecord> records;
  for (int i = 0; i < 400; ++i) {
    bool fraud = rng.NextBernoulli(0.1);
    std::vector<float> f(6);
    for (auto& x : f) x = static_cast<float>(rng.NextGaussian());
    // Several weakly informative dims.
    if (fraud) {
      for (int d = 0; d < 3; ++d) f[d] += 1.0f;
    }
    records.push_back(Record("t" + std::to_string(i),
                             fraud ? graph::kLabelFraud : graph::kLabelBenign,
                             std::move(f)));
  }
  RuleFilter::Options options;
  options.max_rules = 2;
  RuleFilter filter = RuleFilter::Fit(records, options);
  EXPECT_LE(filter.rules().size(), 2u);
}

TEST(PipelineTest, StagesMonotoneAndLabelPreserving) {
  data::GeneratorConfig config = TransactionGenerator::SimSmall();
  config.num_buyers = 2000;
  config.num_fraud_rings = 5;
  config.num_stolen_cards = 10;
  config.feature_signal = 1.2;
  TransactionGenerator gen(config);
  auto stream = gen.GenerateRecords();
  RuleFilter filter = RuleFilter::Fit(stream, {});
  Rng rng(9);
  PipelineResult result = RunLabelPipeline(stream, filter, 0.1, &rng);

  ASSERT_EQ(result.stages.size(), 3u);
  // Each stage shrinks the stream and raises the fraud rate.
  EXPECT_GE(result.stages[0].transactions, result.stages[1].transactions);
  EXPECT_GE(result.stages[1].transactions, result.stages[2].transactions);
  EXPECT_GT(result.stages[1].fraud_rate, result.stages[0].fraud_rate);
  EXPECT_GT(result.stages[2].fraud_rate, result.stages[1].fraud_rate);
  // Stage 3 keeps every stage-2 fraud (sampling only drops benign).
  EXPECT_EQ(result.stages[2].frauds, result.stages[1].frauds);
  // Most fraud survives the rule filter.
  EXPECT_GT(static_cast<double>(result.stages[1].frauds) /
                result.stages[0].frauds,
            0.6);
  // graph_records = all stage-2 rows; unsampled ones are label-blanked.
  EXPECT_EQ(static_cast<int64_t>(result.graph_records.size()),
            result.stages[1].transactions);
  int64_t labeled = 0;
  for (const auto& r : result.graph_records) {
    labeled += r.label != graph::kLabelUnknown;
  }
  EXPECT_EQ(labeled, result.stages[2].transactions);
}

TEST(PipelineTest, KeepFractionOneKeepsEverything) {
  std::vector<TransactionRecord> stream;
  for (int i = 0; i < 100; ++i) {
    stream.push_back(Record("t" + std::to_string(i),
                            i % 10 == 0 ? graph::kLabelFraud
                                        : graph::kLabelBenign,
                            {i % 10 == 0 ? 1.0f : 0.0f}));
  }
  RuleFilter empty_filter = RuleFilter::Fit({}, {});  // no rules: keep none
  // An empty filter keeps nothing; use a fitted one instead.
  RuleFilter filter = RuleFilter::Fit(stream, {});
  Rng rng(2);
  PipelineResult result = RunLabelPipeline(stream, filter, 1.0, &rng);
  EXPECT_EQ(result.stages[2].transactions, result.stages[1].transactions);
}

}  // namespace
}  // namespace xfraud::data
