#include <set>

#include <gtest/gtest.h>

#include "xfraud/data/generator.h"
#include "xfraud/common/timer.h"
#include "xfraud/sample/sampler.h"

namespace xfraud::sample {
namespace {

using data::SimDataset;
using data::TransactionGenerator;

class SamplerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = TransactionGenerator::SimSmall();
    config.num_buyers = 500;
    config.num_fraud_rings = 10;
    config.num_stolen_cards = 20;
    ds_ = new SimDataset(TransactionGenerator::Make(config, "small"));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  static SimDataset* ds_;
};

SimDataset* SamplerTest::ds_ = nullptr;

TEST_F(SamplerTest, SageBatchContainsSeeds) {
  SageSampler sampler(2, 8);
  Rng rng(1);
  std::vector<int32_t> seeds(ds_->train_nodes.begin(),
                             ds_->train_nodes.begin() + 16);
  MiniBatch batch = sampler.SampleBatch(ds_->graph, seeds, &rng);
  ASSERT_EQ(batch.target_locals.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(batch.sub.nodes[batch.target_locals[i]], seeds[i]);
    EXPECT_EQ(batch.target_labels[i], ds_->graph.label(seeds[i]));
  }
}

TEST_F(SamplerTest, SageRespectsHopBound) {
  SageSampler sampler(1, 100);
  Rng rng(2);
  int32_t seed = ds_->train_nodes[0];
  MiniBatch batch = sampler.SampleBatch(ds_->graph, {seed}, &rng);
  // Every non-seed node must be a direct neighbour of the seed.
  std::set<int32_t> neighbors;
  for (int64_t e = ds_->graph.InDegreeBegin(seed);
       e < ds_->graph.InDegreeEnd(seed); ++e) {
    neighbors.insert(ds_->graph.neighbors()[e]);
  }
  for (int32_t global : batch.sub.nodes) {
    if (global == seed) continue;
    EXPECT_TRUE(neighbors.count(global) > 0);
  }
}

TEST_F(SamplerTest, BatchTensorsConsistent) {
  SageSampler sampler(2, 8);
  Rng rng(3);
  std::vector<int32_t> seeds(ds_->train_nodes.begin(),
                             ds_->train_nodes.begin() + 8);
  MiniBatch batch = sampler.SampleBatch(ds_->graph, seeds, &rng);
  EXPECT_EQ(batch.features.rows(), batch.num_nodes());
  EXPECT_EQ(batch.features.cols(), ds_->graph.feature_dim());
  EXPECT_EQ(batch.edge_src.size(), batch.edge_dst.size());
  EXPECT_EQ(batch.edge_src.size(), batch.edge_types.size());
  for (int64_t e = 0; e < batch.num_edges(); ++e) {
    EXPECT_GE(batch.edge_src[e], 0);
    EXPECT_LT(batch.edge_src[e], batch.num_nodes());
    EXPECT_GE(batch.edge_dst[e], 0);
    EXPECT_LT(batch.edge_dst[e], batch.num_nodes());
  }
  // Non-txn rows have zero features.
  for (int64_t v = 0; v < batch.num_nodes(); ++v) {
    if (batch.node_types[v] !=
        static_cast<int32_t>(graph::NodeType::kTxn)) {
      for (int64_t c = 0; c < batch.features.cols(); ++c) {
        EXPECT_EQ(batch.features.At(v, c), 0.0f);
      }
    }
  }
}

TEST_F(SamplerTest, HgSamplerBalancesTypes) {
  // HGSampling's defining property: it keeps per-type node counts similar
  // (up to availability), unlike the raw type mix.
  HgSampler sampler(/*depth=*/3, /*width=*/8);
  Rng rng(4);
  std::vector<int32_t> seeds(ds_->train_nodes.begin(),
                             ds_->train_nodes.begin() + 4);
  MiniBatch batch = sampler.SampleBatch(ds_->graph, seeds, &rng);
  std::vector<int> counts(graph::kNumNodeTypes, 0);
  for (int32_t t : batch.node_types) ++counts[t];
  // All entity types present (the graph has every type reachable).
  int present = 0;
  for (int c : counts) present += c > 0;
  EXPECT_GE(present, 4);
}

TEST_F(SamplerTest, HgSamplerContainsSeeds) {
  HgSampler sampler(2, 4);
  Rng rng(5);
  std::vector<int32_t> seeds(ds_->train_nodes.begin(),
                             ds_->train_nodes.begin() + 4);
  MiniBatch batch = sampler.SampleBatch(ds_->graph, seeds, &rng);
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(batch.sub.nodes[batch.target_locals[i]], seeds[i]);
  }
}

TEST_F(SamplerTest, SageIsCheaperPerSampledNodeThanHgSampling) {
  // The §3.2.3 claim: on sparse transaction graphs HGSampling pays for its
  // type-budget bookkeeping. Compare the *per-sampled-node* cost (HGSampling
  // draws a fixed per-type budget, so raw wall time is not comparable).
  SageSampler sage(2, 8);
  HgSampler hg(3, 16);
  std::vector<int32_t> seeds(ds_->train_nodes.begin(),
                             ds_->train_nodes.begin() + 256);
  const int reps = 30;
  int64_t sage_nodes = 0, hg_nodes = 0;
  WallTimer t1;
  for (int i = 0; i < reps; ++i) {
    Rng r(7 + i);
    sage_nodes += sage.Sample(ds_->graph, seeds, &r).num_nodes();
  }
  double sage_secs = t1.ElapsedSeconds();
  WallTimer t2;
  for (int i = 0; i < reps; ++i) {
    Rng r(7 + i);
    hg_nodes += hg.Sample(ds_->graph, seeds, &r).num_nodes();
  }
  double hg_secs = t2.ElapsedSeconds();
  ASSERT_GT(sage_nodes, 0);
  ASSERT_GT(hg_nodes, 0);
  EXPECT_LT(sage_secs / sage_nodes, hg_secs / hg_nodes);
}

TEST_F(SamplerTest, DeterministicGivenRngSeed) {
  SageSampler sampler(2, 4);
  std::vector<int32_t> seeds(ds_->train_nodes.begin(),
                             ds_->train_nodes.begin() + 8);
  Rng r1(11), r2(11);
  auto a = sampler.Sample(ds_->graph, seeds, &r1);
  auto b = sampler.Sample(ds_->graph, seeds, &r2);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
}

}  // namespace
}  // namespace xfraud::sample
