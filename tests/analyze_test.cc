// Tests for xfraud_analyze (tools/analyze/analyze_core.*): the layering
// config, all four whole-program passes on in-memory trees, suppression
// and baseline round-trips, and a walk over the deliberately-broken fixture
// tree in tests/analyze_fixtures/ with exact expected findings.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze_core.h"

namespace xfraud::analyze {
namespace {

std::vector<std::string> Keys(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const auto& f : findings) keys.push_back(BaselineKey(f));
  return keys;
}

std::vector<Finding> Analyze(const std::vector<SourceFile>& files,
                             const LayeringConfig& config = {}) {
  return AnalyzeTree(files, config);
}

// ---------------------------------------------------------------------------
// Layering config.
// ---------------------------------------------------------------------------

TEST(AnalyzeConfig, ParsesAllowLinesWithReasons) {
  LayeringConfig config;
  std::string error;
  ASSERT_TRUE(ParseLayeringConfig(
      "# header comment\n"
      "\n"
      "allow graph -> nn  # feature tensors\n"
      "allow sample -> kv\n",
      &config, &error))
      << error;
  ASSERT_EQ(config.blessed.size(), 2u);
  EXPECT_EQ(config.blessed[0].from, "graph");
  EXPECT_EQ(config.blessed[0].to, "nn");
  EXPECT_EQ(config.blessed[0].reason, "feature tensors");
  EXPECT_TRUE(config.IsBlessed("graph", "nn"));
  EXPECT_TRUE(config.IsBlessed("sample", "kv"));
  EXPECT_FALSE(config.IsBlessed("nn", "graph"));  // direction matters
}

TEST(AnalyzeConfig, RejectsMalformedLines) {
  LayeringConfig config;
  std::string error;
  EXPECT_FALSE(ParseLayeringConfig("allow graph nn\n", &config, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  error.clear();
  EXPECT_FALSE(
      ParseLayeringConfig("allow a -> b extra\n", &config, &error));
  EXPECT_FALSE(ParseLayeringConfig("deny a -> b\n", &config, &error));
}

TEST(AnalyzeConfig, ModuleLayersMatchDeclaredDag) {
  EXPECT_EQ(ModuleLayer("common"), 0);
  EXPECT_EQ(ModuleLayer("graph"), 1);
  EXPECT_EQ(ModuleLayer("kv"), 2);
  EXPECT_EQ(ModuleLayer("fault"), 3);
  EXPECT_EQ(ModuleLayer("serve"), 4);
  EXPECT_EQ(ModuleLayer("stream"), 4);
  EXPECT_EQ(ModuleLayer("nonexistent"), -1);
}

// ---------------------------------------------------------------------------
// Pass 1: layering + cycles.
// ---------------------------------------------------------------------------

TEST(AnalyzeLayering, DownwardEdgesAreFree) {
  auto f = Analyze({{"src/xfraud/kv/store.h",
                 "#include \"xfraud/common/status.h\"\n"
                 "#include \"xfraud/graph/hetero_graph.h\"\n"}});
  EXPECT_TRUE(f.empty()) << f[0].message;
}

TEST(AnalyzeLayering, SameLayerEdgeNeedsBlessing) {
  std::vector<SourceFile> files = {
      {"src/xfraud/sample/loader.h", "#include \"xfraud/kv/store.h\"\n"}};
  auto f = Analyze(files);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "layering");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_NE(f[0].message.find("allow sample -> kv"), std::string::npos);

  LayeringConfig config;
  config.blessed.push_back({"sample", "kv", "test"});
  EXPECT_TRUE(Analyze(files, config).empty());
}

TEST(AnalyzeLayering, UpwardEdgeIsFlagged) {
  auto f = Analyze({{"src/xfraud/common/bad.h",
                 "#include \"xfraud/serve/scorer.h\"\n"}});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "layering");
  EXPECT_NE(f[0].message.find("layer 0"), std::string::npos);
  EXPECT_NE(f[0].message.find("layer 4"), std::string::npos);
}

TEST(AnalyzeLayering, UnknownModuleIsFlagged) {
  auto f = Analyze({{"src/xfraud/mystery/widget.h",
                 "#include \"xfraud/common/status.h\"\n"}});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "layering");
  EXPECT_NE(f[0].message.find("'mystery'"), std::string::npos);
}

TEST(AnalyzeLayering, UmbrellaAndNonLibraryFilesAreExempt) {
  EXPECT_TRUE(Analyze({{"src/xfraud/xfraud.h",
                    "#include \"xfraud/serve/scorer.h\"\n"}})
                  .empty());
  EXPECT_TRUE(Analyze({{"tests/kv_test.cc",
                    "#include \"xfraud/serve/scorer.h\"\n"}})
                  .empty());
}

TEST(AnalyzeLayering, AllowCommentSuppressesOneSite) {
  auto f = Analyze({{"src/xfraud/common/bad.h",
                 "// xfraud-analyze: allow(layering)\n"
                 "#include \"xfraud/obs/registry.h\"\n"}});
  EXPECT_TRUE(f.empty());
}

TEST(AnalyzeLayering, IncludesInCommentsAreIgnored) {
  auto f = Analyze({{"src/xfraud/common/doc.h",
                 "// example: #include \"xfraud/serve/scorer.h\"\n"}});
  EXPECT_TRUE(f.empty());
}

TEST(AnalyzeCycle, ReportsChainWithBothEdges) {
  LayeringConfig config;  // bless both directions: cycles are unblessable
  config.blessed.push_back({"kv", "sample", ""});
  config.blessed.push_back({"sample", "kv", ""});
  auto f = Analyze({{"src/xfraud/kv/a.h", "#include \"xfraud/sample/b.h\"\n"},
                {"src/xfraud/sample/b.h", "#include \"xfraud/kv/a.h\"\n"}},
               config);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "include-cycle");
  EXPECT_NE(f[0].message.find("kv -> sample"), std::string::npos);
  EXPECT_NE(f[0].message.find("src/xfraud/sample/b.h:1"), std::string::npos)
      << f[0].message;
  EXPECT_NE(f[0].message.find("-> kv"), std::string::npos);
}

TEST(AnalyzeCycle, AcyclicTreeIsClean) {
  auto f = Analyze({{"src/xfraud/kv/a.h", "#include \"xfraud/common/c.h\"\n"},
                {"src/xfraud/train/t.h", "#include \"xfraud/kv/a.h\"\n"}});
  EXPECT_TRUE(f.empty());
}

// ---------------------------------------------------------------------------
// Pass 2: discarded Status.
// ---------------------------------------------------------------------------

constexpr char kStatusDecls[] =
    "Status Save(int x);\n"
    "Result<int> Count(int x);\n";

TEST(AnalyzeDiscarded, FlagsBareCallStatements) {
  auto f = Analyze({{"src/xfraud/kv/decls.h", kStatusDecls},
                {"src/xfraud/kv/use.cc",
                 "void f() {\n"
                 "  Save(1);\n"
                 "  Count(2);\n"
                 "}\n"}});
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "discarded-status");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_NE(f[0].message.find("'Save'"), std::string::npos);
  EXPECT_EQ(f[1].line, 3);
}

TEST(AnalyzeDiscarded, SanctionedUsesAreClean) {
  auto f = Analyze({{"src/xfraud/kv/decls.h", kStatusDecls},
                {"src/xfraud/kv/use.cc",
                 "Status g() {\n"
                 "  (void)Save(1);\n"
                 "  Status s = Save(2);\n"
                 "  if (!Save(3).ok()) return s;\n"
                 "  XF_RETURN_IF_ERROR(Save(4));\n"
                 "  bool ok = Save(5).ok() && Count(6).ok();\n"
                 "  return Save(7);\n"
                 "}\n"}});
  EXPECT_TRUE(f.empty()) << f[0].message;
}

TEST(AnalyzeDiscarded, ReceiverCallsAndControlBodiesAreFlagged) {
  auto f = Analyze({{"src/xfraud/kv/decls.h", "struct S { Status Flush(); };\n"},
                {"src/xfraud/kv/use.cc",
                 "void f(S* s, bool c) {\n"
                 "  s->Flush();\n"
                 "  if (c) s->Flush();\n"
                 "}\n"}});
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[1].line, 3);
}

TEST(AnalyzeDiscarded, ConflictingReturnTypesExcludeTheName) {
  auto f = Analyze({{"src/xfraud/kv/decls.h",
                 "Status Reused(int x);\n"
                 "int Reused(char c);\n"},
                {"src/xfraud/kv/use.cc", "void f() { Reused(1); }\n"}});
  EXPECT_TRUE(f.empty()) << f[0].message;
}

TEST(AnalyzeDiscarded, IndexCrossesFilesAndScopesToLibraryAndTools) {
  std::vector<SourceFile> files = {
      {"src/xfraud/kv/decls.h", kStatusDecls},
      {"tests/some_test.cc", "void t() { Save(1); }\n"},   // tests exempt
      {"tools/some_tool.cc", "void t() { Save(2); }\n"}};  // tools checked
  auto f = Analyze(files);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].file, "tools/some_tool.cc");
}

TEST(AnalyzeDiscarded, AllowCommentSuppressesOneSite) {
  auto f = Analyze({{"src/xfraud/kv/decls.h", kStatusDecls},
                {"src/xfraud/kv/use.cc",
                 "void f() {\n"
                 "  // xfraud-analyze: allow(discarded-status)\n"
                 "  Save(1);\n"
                 "  Save(2);\n"
                 "}\n"}});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 4);
}

// ---------------------------------------------------------------------------
// Pass 3: unordered iteration.
// ---------------------------------------------------------------------------

TEST(AnalyzeUnordered, FlagsRangeForOverDeclaredMember) {
  auto f = Analyze({{"src/xfraud/nn/thing.h",
                 "struct T { std::unordered_map<int, double> weights_; };\n"},
                {"src/xfraud/nn/thing.cc",
                 "double T::Sum() {\n"
                 "  double t = 0;\n"
                 "  for (const auto& [k, v] : weights_) t += v;\n"
                 "  return t;\n"
                 "}\n"}});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[0].file, "src/xfraud/nn/thing.cc");
  EXPECT_EQ(f[0].line, 3);
}

TEST(AnalyzeUnordered, FlagsAliasOfUnorderedElement) {
  auto f = Analyze({{"src/xfraud/nn/thing.cc",
                 "std::vector<std::unordered_map<int, int>> buckets_;\n"
                 "int f(int i) {\n"
                 "  auto& b = buckets_[i];\n"
                 "  int n = 0;\n"
                 "  for (const auto& [k, v] : b) n += v;\n"
                 "  for (const auto& [k, v] : buckets_[0]) n += k;\n"
                 "  return n;\n"
                 "}\n"}});
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].line, 5);
  EXPECT_EQ(f[1].line, 6);
}

TEST(AnalyzeUnordered, FlagsIteratorPairSnapshot) {
  auto f = Analyze({{"src/xfraud/nn/thing.cc",
                 "std::unordered_set<int> ids_;\n"
                 "std::vector<int> Snapshot() {\n"
                 "  return std::vector<int>(ids_.begin(), ids_.end());\n"
                 "}\n"}});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3);
}

TEST(AnalyzeUnordered, OrderedContainersAndNonLibraryAreClean) {
  EXPECT_TRUE(Analyze({{"src/xfraud/nn/thing.cc",
                    "std::map<int, int> m_;\n"
                    "std::vector<int> v_;\n"
                    "int f() {\n"
                    "  int n = 0;\n"
                    "  for (int x : v_) n += x;\n"
                    "  for (const auto& [k, v] : m_) n += v;\n"
                    "  return n;\n"
                    "}\n"}})
                  .empty());
  EXPECT_TRUE(Analyze({{"tools/tool.cc",
                    "std::unordered_map<int, int> m_;\n"
                    "int f() { int n = 0;\n"
                    "  for (const auto& [k, v] : m_) n += v;\n"
                    "  return n; }\n"}})
                  .empty());
}

TEST(AnalyzeUnordered, AllowCommentSuppressesOneSite) {
  auto f = Analyze({{"src/xfraud/nn/thing.cc",
                 "std::unordered_map<int, int> m_;\n"
                 "int f() {\n"
                 "  int n = 0;\n"
                 "  // xfraud-analyze: allow(unordered-iter)\n"
                 "  for (const auto& [k, v] : m_) n += v;\n"
                 "  for (const auto& [k, v] : m_) n += k;\n"
                 "  return n;\n"
                 "}\n"}});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 6);
}

// ---------------------------------------------------------------------------
// Pass 4: ingest bypass.
// ---------------------------------------------------------------------------

TEST(AnalyzeIngest, FlagsStoreMutationOutsideIngestTier) {
  auto f = Analyze({{"src/xfraud/serve/holder.h",
                 "struct Holder {\n"
                 "  kv::KvStore* store_;\n"
                 "  std::unique_ptr<kv::LogKvStore> wal_;\n"
                 "};\n"},
                {"src/xfraud/serve/use.cc",
                 "void f(Holder* h, kv::FeatureStore* features) {\n"
                 "  h->store_->Put(\"k\", \"v\");\n"
                 "  h->wal_->Delete(\"k\");\n"
                 "  features->Ingest(g);\n"
                 "}\n"}});
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].rule, "ingest-bypass");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_NE(f[0].message.find("'store_.Put'"), std::string::npos);
  EXPECT_NE(f[0].message.find("module 'serve'"), std::string::npos);
  EXPECT_EQ(f[1].line, 3);
  EXPECT_EQ(f[2].line, 4);
}

TEST(AnalyzeIngest, StoreOwnersAndReadsAreClean) {
  // kv, stream, and fault own the write path; reads bypass nothing; and
  // tests/tools are not library code.
  for (const char* path :
       {"src/xfraud/kv/use.cc", "src/xfraud/stream/use.cc",
        "src/xfraud/fault/use.cc", "tests/use_test.cc", "tools/use.cc"}) {
    EXPECT_TRUE(Analyze({{path,
                      "kv::KvStore* store_;\n"
                      "void f() { store_->Put(\"k\", \"v\"); }\n"}})
                    .empty())
        << path;
  }
  EXPECT_TRUE(Analyze({{"src/xfraud/serve/use.cc",
                    "kv::KvStore* store_;\n"
                    "void g(std::string* v) { store_->Get(\"k\", v); }\n"}})
                  .empty());
}

TEST(AnalyzeIngest, NonStoreReceiversAreClean) {
  auto f = Analyze({{"src/xfraud/serve/use.cc",
                 "kv::KvStore* serving() const;\n"
                 "Cache index_;\n"
                 "void f() { index_.Put(1); }\n"}});
  EXPECT_TRUE(f.empty()) << f[0].message;
}

TEST(AnalyzeIngest, SubscriptedReceiverAndAllowComment) {
  auto f = Analyze({{"src/xfraud/serve/use.cc",
                 "std::vector<kv::MemKvStore*> cells_;\n"
                 "void f() {\n"
                 "  cells_[0]->Put(\"k\", \"v\");\n"
                 "  // xfraud-analyze: allow(ingest-bypass)\n"
                 "  cells_[1]->Put(\"k\", \"v\");\n"
                 "}\n"}});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3);
  EXPECT_NE(f[0].message.find("'cells_.Put'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Baseline round-trip.
// ---------------------------------------------------------------------------

TEST(AnalyzeBaseline, FiltersMatchedAndReportsStale) {
  std::vector<Finding> findings = {
      {"src/xfraud/kv/a.cc", 10, "layering", "m1"},
      {"src/xfraud/kv/b.cc", 20, "unordered-iter", "m2"}};
  std::vector<std::string> baseline = {
      "src/xfraud/kv/a.cc:10: layering",      // matches
      "src/xfraud/kv/gone.cc:5: layering"};   // stale
  std::vector<std::string> stale;
  auto remaining = ApplyBaseline(findings, baseline, &stale);
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].file, "src/xfraud/kv/b.cc");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "src/xfraud/kv/gone.cc:5: layering");
}

TEST(AnalyzeBaseline, WriteParseRoundTrip) {
  std::vector<Finding> findings = {
      {"src/xfraud/kv/a.cc", 10, "layering", "m1"},
      {"src/xfraud/kv/b.cc", 20, "unordered-iter", "m2"}};
  std::string text = "# comment\n\n" + FindingsToBaseline(findings);
  std::vector<std::string> keys = ParseBaseline(text);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "src/xfraud/kv/a.cc:10: layering");
  std::vector<std::string> stale;
  EXPECT_TRUE(ApplyBaseline(findings, keys, &stale).empty());
  EXPECT_TRUE(stale.empty());
}

// ---------------------------------------------------------------------------
// Fixture tree: exact findings, text and JSON.
// ---------------------------------------------------------------------------

#ifdef XFRAUD_ANALYZE_FIXTURE_DIR
std::string Fx(const std::string& rel) {
  return std::string(XFRAUD_ANALYZE_FIXTURE_DIR) + "/" + rel;
}

TEST(AnalyzeFixtures, ExactFindingsWithEmptyConfig) {
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(
      AnalyzePaths({XFRAUD_ANALYZE_FIXTURE_DIR}, {}, &findings, &error))
      << error;
  std::vector<std::string> expected = {
      Fx("src/xfraud/graph/status_use.cc") + ":16: discarded-status",
      Fx("src/xfraud/graph/status_use.cc") + ":17: discarded-status",
      Fx("src/xfraud/graph/status_use.cc") + ":18: discarded-status",
      Fx("src/xfraud/kv/cycle_a.h") + ":6: include-cycle",
      Fx("src/xfraud/train/ingest_bypass.cc") + ":18: ingest-bypass",
      Fx("src/xfraud/train/ingest_bypass.cc") + ":19: ingest-bypass",
      Fx("src/xfraud/train/ingest_bypass.cc") + ":20: ingest-bypass",
      Fx("src/xfraud/train/ingest_bypass.cc") + ":21: ingest-bypass",
      Fx("src/xfraud/train/ingest_bypass.cc") + ":34: ingest-bypass",
      Fx("src/xfraud/common/upward.h") + ":6: layering",
      Fx("src/xfraud/kv/cycle_a.h") + ":6: layering",
      Fx("src/xfraud/sample/cycle_b.h") + ":6: layering",
      Fx("src/xfraud/nn/unordered.cc") + ":14: unordered-iter",
      Fx("src/xfraud/nn/unordered.cc") + ":21: unordered-iter",
      Fx("src/xfraud/nn/unordered.cc") + ":22: unordered-iter",
      Fx("src/xfraud/nn/unordered.cc") + ":30: unordered-iter",
  };
  EXPECT_EQ(Keys(findings), expected);
}

TEST(AnalyzeFixtures, CycleChainNamesBothEdges) {
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(
      AnalyzePaths({XFRAUD_ANALYZE_FIXTURE_DIR}, {}, &findings, &error))
      << error;
  const Finding* cycle = nullptr;
  for (const auto& f : findings) {
    if (f.rule == "include-cycle") cycle = &f;
  }
  ASSERT_NE(cycle, nullptr);
  EXPECT_NE(cycle->message.find("kv -> sample"), std::string::npos);
  EXPECT_NE(cycle->message.find(Fx("src/xfraud/kv/cycle_a.h") + ":6"),
            std::string::npos);
  EXPECT_NE(cycle->message.find(Fx("src/xfraud/sample/cycle_b.h") + ":6"),
            std::string::npos);
}

TEST(AnalyzeFixtures, BlessingRemovesLayeringButNeverTheCycle) {
  LayeringConfig config;
  config.blessed.push_back({"kv", "sample", "test"});
  config.blessed.push_back({"sample", "kv", "test"});
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(
      AnalyzePaths({XFRAUD_ANALYZE_FIXTURE_DIR}, config, &findings, &error))
      << error;
  int cycles = 0;
  for (const auto& f : findings) {
    if (f.rule == "include-cycle") ++cycles;
    if (f.rule == "layering") {
      EXPECT_NE(f.file.find("upward.h"), std::string::npos)
          << "blessed edge still flagged: " << f.file;
    }
  }
  EXPECT_EQ(cycles, 1);
}

TEST(AnalyzeFixtures, JsonSnapshotCarriesEveryFinding) {
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(
      AnalyzePaths({XFRAUD_ANALYZE_FIXTURE_DIR}, {}, &findings, &error))
      << error;
  std::string json = lint::FindingsToJson(findings);
  for (const char* rule :
       {"layering", "include-cycle", "discarded-status", "unordered-iter",
        "ingest-bypass"}) {
    EXPECT_NE(json.find(std::string("\"rule\": \"") + rule + "\""),
              std::string::npos)
        << rule;
  }
  EXPECT_NE(json.find("\"line\": 16"), std::string::npos);
}

TEST(AnalyzeFixtures, BaselineMakesTheFixtureTreePass) {
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(
      AnalyzePaths({XFRAUD_ANALYZE_FIXTURE_DIR}, {}, &findings, &error))
      << error;
  ASSERT_FALSE(findings.empty());
  // --write-baseline followed by --baseline must yield a clean run.
  std::vector<std::string> keys =
      ParseBaseline(FindingsToBaseline(findings));
  std::vector<std::string> stale;
  EXPECT_TRUE(ApplyBaseline(findings, keys, &stale).empty());
  EXPECT_TRUE(stale.empty());
}
#endif  // XFRAUD_ANALYZE_FIXTURE_DIR

}  // namespace
}  // namespace xfraud::analyze
