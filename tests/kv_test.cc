#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "xfraud/common/crc32.h"
#include "xfraud/common/thread_pool.h"
#include "xfraud/data/generator.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/kv/log_kv.h"
#include "xfraud/kv/mem_kv.h"
#include "xfraud/kv/replicated_kv.h"
#include "xfraud/kv/sharded_kv.h"
#include "xfraud/sample/sampler.h"

namespace xfraud::kv {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(Crc32Test, KnownVectors) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

template <typename MakeStore>
void RunBasicKvContract(MakeStore make) {
  auto store = make();
  std::string value;
  EXPECT_TRUE(store->Get("missing", &value).IsNotFound());
  ASSERT_TRUE(store->Put("a", "1").ok());
  ASSERT_TRUE(store->Put("b", "2").ok());
  ASSERT_TRUE(store->Get("a", &value).ok());
  EXPECT_EQ(value, "1");
  // Overwrite.
  ASSERT_TRUE(store->Put("a", "updated").ok());
  ASSERT_TRUE(store->Get("a", &value).ok());
  EXPECT_EQ(value, "updated");
  EXPECT_EQ(store->Count(), 2);
  // Delete.
  ASSERT_TRUE(store->Delete("a").ok());
  EXPECT_TRUE(store->Get("a", &value).IsNotFound());
  EXPECT_EQ(store->Count(), 1);
  // Prefix scan.
  ASSERT_TRUE(store->Put("pfx1", "x").ok());
  ASSERT_TRUE(store->Put("pfx2", "y").ok());
  auto keys = store->KeysWithPrefix("pfx");
  EXPECT_EQ(keys.size(), 2u);
  // Empty values round-trip.
  ASSERT_TRUE(store->Put("empty", "").ok());
  ASSERT_TRUE(store->Get("empty", &value).ok());
  EXPECT_EQ(value, "");
  // Binary-safe values.
  std::string binary("\x00\x01\xFF\x00zz", 6);
  ASSERT_TRUE(store->Put("bin", binary).ok());
  ASSERT_TRUE(store->Get("bin", &value).ok());
  EXPECT_EQ(value, binary);
}

TEST(MemKvTest, BasicContract) {
  RunBasicKvContract([] { return std::make_unique<MemKvStore>(); });
}

TEST(ShardedKvTest, BasicContract) {
  RunBasicKvContract([] { return ShardedKvStore::InMemory(4); });
}

TEST(LogKvTest, BasicContract) {
  std::string path = TempPath("log_basic.kv");
  std::remove(path.c_str());
  RunBasicKvContract([&] {
    auto r = LogKvStore::Open(path);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  });
}

TEST(LogKvTest, PersistsAcrossReopen) {
  std::string path = TempPath("log_reopen.kv");
  std::remove(path.c_str());
  {
    auto store = std::move(LogKvStore::Open(path).value());
    ASSERT_TRUE(store->Put("k1", "v1").ok());
    ASSERT_TRUE(store->Put("k2", "v2").ok());
    ASSERT_TRUE(store->Delete("k1").ok());
    ASSERT_TRUE(store->Put("k2", "v2b").ok());
  }
  auto store = std::move(LogKvStore::Open(path).value());
  std::string value;
  EXPECT_TRUE(store->Get("k1", &value).IsNotFound());
  ASSERT_TRUE(store->Get("k2", &value).ok());
  EXPECT_EQ(value, "v2b");
  EXPECT_EQ(store->Count(), 1);
}

TEST(LogKvTest, SurvivesTruncatedTail) {
  std::string path = TempPath("log_trunc.kv");
  std::remove(path.c_str());
  {
    auto store = std::move(LogKvStore::Open(path).value());
    ASSERT_TRUE(store->Put("good", "value").ok());
    ASSERT_TRUE(store->Put("partial", "this record will be cut").ok());
  }
  // Simulate a crash mid-append: cut the last 7 bytes.
  {
    std::filesystem::path p(path);
    auto size = std::filesystem::file_size(p);
    std::filesystem::resize_file(p, size - 7);
  }
  auto store = std::move(LogKvStore::Open(path).value());
  std::string value;
  ASSERT_TRUE(store->Get("good", &value).ok());
  EXPECT_EQ(value, "value");
  EXPECT_TRUE(store->Get("partial", &value).IsNotFound());
  // The store stays writable after recovery.
  ASSERT_TRUE(store->Put("after", "crash").ok());
  ASSERT_TRUE(store->Get("after", &value).ok());
  EXPECT_EQ(value, "crash");
}

TEST(LogKvTest, SurvivesTailTornInsideTheRecordHeader) {
  std::string path = TempPath("log_torn_header.kv");
  std::remove(path.c_str());
  int64_t size_before_tail = 0;
  {
    auto store = std::move(LogKvStore::Open(path).value());
    ASSERT_TRUE(store->Put("good", "value").ok());
    size_before_tail = store->FileSize();
    ASSERT_TRUE(store->Put("tail", "never lands").ok());
  }
  // Crash so early in the append that not even the fixed-size record
  // header made it to disk — a shorter tear than a cut payload.
  std::filesystem::resize_file(std::filesystem::path(path),
                               static_cast<uintmax_t>(size_before_tail + 5));
  auto store = std::move(LogKvStore::Open(path).value());
  std::string value;
  ASSERT_TRUE(store->Get("good", &value).ok());
  EXPECT_EQ(value, "value");
  EXPECT_TRUE(store->Get("tail", &value).IsNotFound());
  // Recovery dropped the torn tail; new appends land on a clean boundary.
  ASSERT_TRUE(store->Put("after", "crash").ok());
  ASSERT_TRUE(store->Get("after", &value).ok());
  EXPECT_EQ(value, "crash");
}

TEST(LogKvTest, IgnoresStaleCompactFileLeftByACrash) {
  std::string path = TempPath("log_stale_compact.kv");
  std::string stale = path + ".compact";
  std::remove(path.c_str());
  std::remove(stale.c_str());
  {
    auto store = std::move(LogKvStore::Open(path).value());
    ASSERT_TRUE(store->Put("live", "data").ok());
  }
  // A crash between writing "<path>.compact" and the rename leaves a stale
  // compacted image behind. Make it a fully valid log with different
  // contents, so replaying it by mistake would be visible.
  {
    auto ghost = std::move(LogKvStore::Open(stale).value());
    ASSERT_TRUE(ghost->Put("ghost", "should never be served").ok());
  }
  auto store = std::move(LogKvStore::Open(path).value());
  std::string value;
  ASSERT_TRUE(store->Get("live", &value).ok());
  EXPECT_EQ(value, "data");
  EXPECT_TRUE(store->Get("ghost", &value).IsNotFound());
  // Reopen also cleaned the stale file up, so a later Compact's tmp write
  // starts from a clean slate.
  EXPECT_FALSE(std::filesystem::exists(stale));
  auto reclaimed = store->Compact();
  ASSERT_TRUE(reclaimed.ok());
  ASSERT_TRUE(store->Get("live", &value).ok());
  EXPECT_EQ(value, "data");
}

TEST(LogKvTest, DetectsCorruptPayload) {
  std::string path = TempPath("log_corrupt.kv");
  std::remove(path.c_str());
  {
    auto store = std::move(LogKvStore::Open(path).value());
    ASSERT_TRUE(store->Put("k", "AAAAAAAA").ok());
  }
  // Flip a payload byte: CRC must reject the record.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    f.put('X');
  }
  auto store = std::move(LogKvStore::Open(path).value());
  std::string value;
  EXPECT_TRUE(store->Get("k", &value).IsNotFound());
}

TEST(LogKvTest, CompactReclaimsSpace) {
  std::string path = TempPath("log_compact.kv");
  std::remove(path.c_str());
  auto store = std::move(LogKvStore::Open(path).value());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put("key", "version" + std::to_string(i)).ok());
  }
  int64_t before = store->FileSize();
  auto reclaimed = store->Compact();
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GT(reclaimed.value(), 0);
  EXPECT_LT(store->FileSize(), before);
  std::string value;
  ASSERT_TRUE(store->Get("key", &value).ok());
  EXPECT_EQ(value, "version49");
  // Still writable and persistent post-compact.
  ASSERT_TRUE(store->Put("key2", "x").ok());
  ASSERT_TRUE(store->Get("key2", &value).ok());
}

TEST(LogKvTest, ConcurrentReaders) {
  std::string path = TempPath("log_concurrent.kv");
  std::remove(path.c_str());
  auto store = std::move(LogKvStore::Open(path).value());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store
                    ->Put("key" + std::to_string(i),
                          "value" + std::to_string(i))
                    .ok());
  }
  std::atomic<int> errors{0};
  ThreadPool pool(4);
  pool.ParallelFor(2000, [&](size_t i) {
    std::string value;
    int k = static_cast<int>(i % 200);
    Status s = store->Get("key" + std::to_string(k), &value);
    if (!s.ok() || value != "value" + std::to_string(k)) {
      errors.fetch_add(1);
    }
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST(ShardedKvTest, SpreadsKeysAcrossShards) {
  std::vector<std::unique_ptr<KvStore>> shards;
  std::vector<MemKvStore*> raw;
  for (int i = 0; i < 4; ++i) {
    auto s = std::make_unique<MemKvStore>();
    raw.push_back(s.get());
    shards.push_back(std::move(s));
  }
  ShardedKvStore store(std::move(shards));
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store.Put("key" + std::to_string(i), "v").ok());
  }
  // Every shard holds a nontrivial portion.
  for (auto* s : raw) {
    EXPECT_GT(s->Count(), 40);
  }
  EXPECT_EQ(store.Count(), 400);
}

class FeatureStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 200;
    config.num_fraud_rings = 6;
    config.num_stolen_cards = 10;
    ds_ = data::TransactionGenerator::Make(config, "kv-test");
    store_ = ShardedKvStore::InMemory(4);
    feature_store_ = std::make_unique<FeatureStore>(store_.get());
    ASSERT_TRUE(feature_store_->Ingest(ds_.graph).ok());
  }

  data::SimDataset ds_;
  std::unique_ptr<ShardedKvStore> store_;
  std::unique_ptr<FeatureStore> feature_store_;
};

TEST_F(FeatureStoreTest, MetadataRoundTrip) {
  auto n = feature_store_->NumNodes();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), ds_.graph.num_nodes());
  auto dim = feature_store_->FeatureDim();
  ASSERT_TRUE(dim.ok());
  EXPECT_EQ(dim.value(), ds_.graph.feature_dim());
}

TEST_F(FeatureStoreTest, FeaturesMatchGraph) {
  for (int32_t v : ds_.graph.LabeledTransactions()) {
    std::vector<float> feat;
    ASSERT_TRUE(feature_store_->ReadFeatures(v, &feat).ok());
    ASSERT_EQ(static_cast<int64_t>(feat.size()), ds_.graph.feature_dim());
    const float* expected = ds_.graph.Features(v);
    for (size_t i = 0; i < feat.size(); ++i) {
      EXPECT_EQ(feat[i], expected[i]);
    }
    if (v > 100) break;  // spot-check a handful
  }
}

TEST_F(FeatureStoreTest, EntityNodesHaveNoFeatures) {
  auto buyers = ds_.graph.NodesOfType(graph::NodeType::kBuyer);
  ASSERT_FALSE(buyers.empty());
  std::vector<float> feat;
  EXPECT_TRUE(feature_store_->ReadFeatures(buyers[0], &feat).IsNotFound());
}

TEST_F(FeatureStoreTest, AdjacencyMatchesGraph) {
  int32_t v = ds_.graph.LabeledTransactions()[0];
  std::vector<int32_t> neighbors;
  std::vector<uint8_t> etypes;
  ASSERT_TRUE(feature_store_->ReadNeighbors(v, &neighbors, &etypes).ok());
  ASSERT_EQ(static_cast<int64_t>(neighbors.size()), ds_.graph.InDegree(v));
  for (size_t i = 0; i < neighbors.size(); ++i) {
    EXPECT_EQ(neighbors[i],
              ds_.graph.neighbors()[ds_.graph.InDegreeBegin(v) + i]);
    EXPECT_EQ(etypes[i],
              static_cast<uint8_t>(
                  ds_.graph.edge_types()[ds_.graph.InDegreeBegin(v) + i]));
  }
}

TEST_F(FeatureStoreTest, LoadBatchMatchesDirectSampling) {
  std::vector<int32_t> seeds(ds_.train_nodes.begin(),
                             ds_.train_nodes.begin() + 8);
  Rng rng(3);
  auto batch = feature_store_->LoadBatch(seeds, /*hops=*/2, /*fanout=*/-1,
                                         &rng, kHeadEpoch);
  ASSERT_TRUE(batch.ok());
  const auto& b = batch.value();
  EXPECT_EQ(b.target_locals.size(), seeds.size());
  // Same node set as the graph-native sampler with unlimited fanout.
  sample::SageSampler sampler(2, 1 << 30);
  Rng rng2(3);
  auto direct = sampler.SampleBatch(ds_.graph, seeds, &rng2);
  EXPECT_EQ(b.num_nodes(), direct.num_nodes());
  EXPECT_EQ(b.num_edges(), direct.num_edges());
  // Labels agree.
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(b.target_labels[i], direct.target_labels[i]);
  }
}

TEST(ReplicatedKvTest, BasicContract) {
  RunBasicKvContract([] { return ReplicatedKvStore::InMemory(3); });
}

TEST(ShardedKvTest, KeysWithPrefixSortedRegardlessOfShardLayout) {
  // Keys deliberately inserted out of order, with decoys that share a
  // shorter prefix.
  std::vector<std::string> keys = {"pfx9", "pfx10", "pfx1", "pfx5",
                                   "pfx2", "pfx77", "pfx0", "pfx42"};
  std::vector<std::string> expected = keys;
  std::sort(expected.begin(), expected.end());

  std::vector<std::string> reference;
  for (int num_shards : {1, 2, 5}) {
    auto store = ShardedKvStore::InMemory(num_shards);
    ASSERT_TRUE(store->Put("other", "x").ok());
    ASSERT_TRUE(store->Put("pf", "x").ok());
    for (const auto& k : keys) ASSERT_TRUE(store->Put(k, "v").ok());
    std::vector<std::string> got = store->KeysWithPrefix("pfx");
    // Sorted ascending, independent of how keys hashed across shards.
    EXPECT_EQ(got, expected) << num_shards << " shards";
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference) << num_shards << " shards";
    }
  }
}

TEST(KeysWithPrefixContract, EveryStoreReturnsSortedKeys) {
  auto check = [](KvStore* store) {
    for (const char* k : {"b2", "a1", "b1", "a9", "a10", "c"}) {
      ASSERT_TRUE(store->Put(k, "v").ok());
    }
    std::vector<std::string> all = store->KeysWithPrefix("");
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
    EXPECT_EQ(all.size(), 6u);
    std::vector<std::string> a = store->KeysWithPrefix("a");
    EXPECT_EQ(a, (std::vector<std::string>{"a1", "a10", "a9"}));
  };
  MemKvStore mem;
  check(&mem);
  auto sharded = ShardedKvStore::InMemory(3);
  check(sharded.get());
  auto replicated = ReplicatedKvStore::InMemory(2);
  check(replicated.get());
  std::string path = TempPath("prefix_sorted.kv");
  std::remove(path.c_str());
  auto log = LogKvStore::Open(path);
  ASSERT_TRUE(log.ok());
  check(log.value().get());
}

}  // namespace
}  // namespace xfraud::kv
