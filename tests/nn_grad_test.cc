// Property tests: every differentiable op's analytic gradient is compared
// against central finite differences on random inputs.

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "xfraud/common/rng.h"
#include "xfraud/nn/ops.h"

namespace xfraud::nn {
namespace {

// Builds a scalar loss from `inputs` and checks d(loss)/d(input) for every
// input against central differences.
void CheckGradients(std::vector<Var>& inputs,
                    const std::function<Var(std::vector<Var>&)>& fn,
                    float eps = 1e-3f, float tol = 2e-2f) {
  Var loss = fn(inputs);
  ASSERT_EQ(loss.rows(), 1);
  ASSERT_EQ(loss.cols(), 1);
  for (auto& in : inputs) in.ZeroGrad();
  loss.Backward();

  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    Var& in = inputs[vi];
    if (!in.requires_grad()) continue;
    Tensor analytic = in.grad();
    for (int64_t i = 0; i < in.value().size(); ++i) {
      float orig = in.mutable_value().vec()[i];
      in.mutable_value().vec()[i] = orig + eps;
      float up = fn(inputs).item();
      in.mutable_value().vec()[i] = orig - eps;
      float down = fn(inputs).item();
      in.mutable_value().vec()[i] = orig;
      float numeric = (up - down) / (2.0f * eps);
      float got = analytic.vec()[i];
      float scale = std::max({1.0f, std::fabs(numeric), std::fabs(got)});
      EXPECT_NEAR(got, numeric, tol * scale)
          << "input " << vi << " element " << i;
    }
  }
}

Tensor RandomTensor(int64_t r, int64_t c, Rng* rng, float scale = 1.0f) {
  return Tensor::Uniform(r, c, scale, rng);
}

TEST(GradCheck, MatMul) {
  Rng rng(1);
  std::vector<Var> in = {Var(RandomTensor(3, 4, &rng), true),
                         Var(RandomTensor(4, 2, &rng), true)};
  CheckGradients(in, [](std::vector<Var>& v) {
    return Sum(Tanh(MatMul(v[0], v[1])));
  });
}

TEST(GradCheck, AddSubMul) {
  Rng rng(2);
  std::vector<Var> in = {Var(RandomTensor(3, 3, &rng), true),
                         Var(RandomTensor(3, 3, &rng), true),
                         Var(RandomTensor(3, 3, &rng), true)};
  CheckGradients(in, [](std::vector<Var>& v) {
    return Sum(Mul(Add(v[0], v[1]), Sub(v[0], v[2])));
  });
}

TEST(GradCheck, AddRowBroadcast) {
  Rng rng(3);
  std::vector<Var> in = {Var(RandomTensor(4, 3, &rng), true),
                         Var(RandomTensor(1, 3, &rng), true)};
  CheckGradients(in, [](std::vector<Var>& v) {
    return Sum(Tanh(AddRowBroadcast(v[0], v[1])));
  });
}

TEST(GradCheck, ScaleAndAddConst) {
  Rng rng(4);
  std::vector<Var> in = {Var(RandomTensor(2, 5, &rng), true)};
  CheckGradients(in, [](std::vector<Var>& v) {
    return Sum(AddConst(Scale(v[0], -1.7f), 0.3f));
  });
}

TEST(GradCheck, ReluAwayFromKink) {
  Rng rng(5);
  // Shift values away from 0 so finite differences are valid.
  Tensor t = RandomTensor(3, 4, &rng);
  for (auto& x : t.vec()) x += (x >= 0 ? 0.5f : -0.5f);
  std::vector<Var> in = {Var(std::move(t), true)};
  CheckGradients(in, [](std::vector<Var>& v) { return Sum(Relu(v[0])); });
}

TEST(GradCheck, LeakyRelu) {
  Rng rng(6);
  Tensor t = RandomTensor(3, 4, &rng);
  for (auto& x : t.vec()) x += (x >= 0 ? 0.5f : -0.5f);
  std::vector<Var> in = {Var(std::move(t), true)};
  CheckGradients(in, [](std::vector<Var>& v) {
    return Sum(LeakyRelu(v[0], 0.2f));
  });
}

TEST(GradCheck, TanhSigmoidLog) {
  Rng rng(7);
  Tensor t = RandomTensor(3, 3, &rng);
  std::vector<Var> in = {Var(std::move(t), true)};
  CheckGradients(in, [](std::vector<Var>& v) {
    return Sum(Log(AddConst(Sigmoid(Tanh(v[0])), 0.5f)));
  });
}

TEST(GradCheck, RowSoftmax) {
  Rng rng(8);
  std::vector<Var> in = {Var(RandomTensor(4, 5, &rng, 2.0f), true),
                         Var(RandomTensor(4, 5, &rng), false)};
  CheckGradients(in, [](std::vector<Var>& v) {
    return Sum(Mul(RowSoftmax(v[0]), v[1]));
  });
}

TEST(GradCheck, CrossEntropy) {
  Rng rng(9);
  std::vector<Var> in = {Var(RandomTensor(6, 3, &rng, 2.0f), true)};
  std::vector<int> labels = {0, 2, 1, 1, 0, 2};
  CheckGradients(in, [&labels](std::vector<Var>& v) {
    return CrossEntropy(v[0], labels);
  });
}

TEST(GradCheck, CrossEntropyWithClassWeights) {
  Rng rng(10);
  std::vector<Var> in = {Var(RandomTensor(5, 2, &rng, 2.0f), true)};
  std::vector<int> labels = {0, 1, 1, 0, 1};
  std::vector<float> weights = {1.0f, 4.0f};
  CheckGradients(in, [&](std::vector<Var>& v) {
    return CrossEntropy(v[0], labels, weights);
  });
}

TEST(GradCheck, ConcatAndSlice) {
  Rng rng(11);
  std::vector<Var> in = {Var(RandomTensor(3, 2, &rng), true),
                         Var(RandomTensor(3, 4, &rng), true)};
  CheckGradients(in, [](std::vector<Var>& v) {
    Var cat = ConcatCols(v[0], v[1]);
    return Sum(Tanh(SliceCols(cat, 1, 4)));
  });
}

TEST(GradCheck, IndexRows) {
  Rng rng(12);
  std::vector<Var> in = {Var(RandomTensor(5, 3, &rng), true)};
  std::vector<int32_t> idx = {4, 0, 0, 2, 3, 1, 4};
  CheckGradients(in, [&idx](std::vector<Var>& v) {
    return Sum(Tanh(IndexRows(v[0], idx)));
  });
}

TEST(GradCheck, ScatterAddRows) {
  Rng rng(13);
  std::vector<Var> in = {Var(RandomTensor(6, 3, &rng), true)};
  std::vector<int32_t> idx = {0, 1, 1, 2, 0, 3};
  CheckGradients(in, [&idx](std::vector<Var>& v) {
    return Sum(Tanh(ScatterAddRows(v[0], idx, 4)));
  });
}

TEST(GradCheck, SegmentSoftmax) {
  Rng rng(14);
  std::vector<Var> in = {Var(RandomTensor(7, 2, &rng, 2.0f), true),
                         Var(RandomTensor(7, 2, &rng), false)};
  std::vector<int32_t> seg = {0, 0, 1, 1, 1, 2, 0};
  CheckGradients(in, [&seg](std::vector<Var>& v) {
    return Sum(Mul(SegmentSoftmax(v[0], seg, 3), v[1]));
  });
}

TEST(GradCheck, LinearBiasActNoBias) {
  Rng rng(30);
  std::vector<Var> in = {Var(RandomTensor(3, 4, &rng), true),
                         Var(RandomTensor(4, 2, &rng), true)};
  CheckGradients(in, [](std::vector<Var>& v) {
    return Sum(Tanh(LinearBiasAct(v[0], v[1], Var())));
  });
}

TEST(GradCheck, LinearBiasActWithBiasAndRelu) {
  Rng rng(31);
  // Bias pushed away from zero so no pre-activation sits on the ReLU kink
  // (finite differences are invalid there).
  Tensor bias = RandomTensor(1, 2, &rng);
  for (auto& x : bias.vec()) x += (x >= 0 ? 2.0f : -2.0f);
  std::vector<Var> in = {Var(RandomTensor(4, 3, &rng, 0.3f), true),
                         Var(RandomTensor(3, 2, &rng, 0.3f), true),
                         Var(std::move(bias), true)};
  CheckGradients(in, [](std::vector<Var>& v) {
    return Sum(Tanh(
        LinearBiasAct(v[0], v[1], v[2], kernels::Activation::kRelu)));
  });
}

TEST(GradCheck, AttentionAggregate) {
  Rng rng(32);
  std::vector<Var> in = {Var(RandomTensor(5, 2, &rng, 2.0f), true),   // scores
                         Var(RandomTensor(5, 6, &rng), true)};        // values
  std::vector<int32_t> dst = {0, 1, 1, 2, 0};
  CheckGradients(in, [&dst](std::vector<Var>& v) {
    return Sum(Tanh(AttentionAggregate(v[0], v[1], dst, /*num_nodes=*/3,
                                       /*head_dim=*/3, /*dropout_p=*/0.0f,
                                       /*training=*/false, nullptr)));
  });
}

TEST(GradCheck, MulColBroadcast) {
  Rng rng(15);
  std::vector<Var> in = {Var(RandomTensor(4, 3, &rng), true),
                         Var(RandomTensor(4, 1, &rng), true)};
  CheckGradients(in, [](std::vector<Var>& v) {
    return Sum(Tanh(MulColBroadcast(v[0], v[1])));
  });
}

TEST(GradCheck, MeanOp) {
  Rng rng(16);
  std::vector<Var> in = {Var(RandomTensor(3, 4, &rng), true)};
  CheckGradients(in, [](std::vector<Var>& v) { return Mean(Tanh(v[0])); });
}

TEST(GradCheck, LayerNorm) {
  Rng rng(17);
  std::vector<Var> in = {Var(RandomTensor(4, 6, &rng, 2.0f), true),
                         Var(RandomTensor(1, 6, &rng), true),
                         Var(RandomTensor(1, 6, &rng), true)};
  CheckGradients(
      in,
      [](std::vector<Var>& v) {
        return Sum(Tanh(LayerNorm(v[0], v[1], v[2])));
      },
      /*eps=*/1e-2f, /*tol=*/4e-2f);
}

TEST(GradCheck, CompositePipelineLikeGnnLayer) {
  // A miniature message-passing layer: gather -> score -> segment softmax ->
  // weight -> scatter -> nonlinearity, exercising op composition end to end.
  Rng rng(18);
  std::vector<Var> in = {Var(RandomTensor(4, 3, &rng), true),   // node states
                         Var(RandomTensor(3, 1, &rng), true)};  // score vector
  std::vector<int32_t> src = {0, 1, 2, 3, 1};
  std::vector<int32_t> dst = {1, 0, 1, 2, 2};
  CheckGradients(in, [&](std::vector<Var>& v) {
    Var msgs = IndexRows(v[0], src);
    Var scores = MatMul(msgs, v[1]);
    Var att = SegmentSoftmax(scores, dst, 4);
    Var weighted = MulColBroadcast(msgs, att);
    Var agg = ScatterAddRows(weighted, dst, 4);
    return Sum(Tanh(agg));
  });
}

TEST(OpsTest, DropoutInferenceIsIdentity) {
  Rng rng(19);
  Var x(RandomTensor(3, 3, &rng), true);
  Var y = Dropout(x, 0.5f, /*training=*/false, &rng);
  for (int64_t i = 0; i < x.value().size(); ++i) {
    EXPECT_EQ(y.value().vec()[i], x.value().vec()[i]);
  }
}

TEST(OpsTest, DropoutTrainingScalesSurvivors) {
  Rng rng(20);
  Tensor t(1, 10000, 1.0f);
  Var x(std::move(t), false);
  Var y = Dropout(x, 0.25f, /*training=*/true, &rng);
  int zeros = 0;
  for (int64_t i = 0; i < y.value().size(); ++i) {
    float v = y.value().vec()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5);
    }
  }
  EXPECT_NEAR(zeros / 10000.0, 0.25, 0.02);
}

TEST(OpsTest, DropoutGradientMatchesMask) {
  Rng rng(21);
  Var x(Tensor(2, 4, 1.0f), true);
  Var y = Dropout(x, 0.5f, /*training=*/true, &rng);
  Var loss = Sum(y);
  loss.Backward();
  // Gradient equals the dropout mask (0 or 1/keep).
  for (int64_t i = 0; i < x.value().size(); ++i) {
    float g = x.grad().vec()[i];
    float v = y.value().vec()[i];
    EXPECT_FLOAT_EQ(g, v);  // since input was all ones.
  }
}

TEST(OpsTest, RowSoftmaxRowsSumToOne) {
  Rng rng(22);
  Var x(RandomTensor(5, 7, &rng, 3.0f), false);
  Var y = RowSoftmax(x);
  for (int64_t r = 0; r < y.rows(); ++r) {
    double s = 0.0;
    for (int64_t c = 0; c < y.cols(); ++c) s += y.value().At(r, c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(OpsTest, SegmentSoftmaxSegmentsSumToOne) {
  Rng rng(23);
  Var x(RandomTensor(9, 3, &rng, 3.0f), false);
  std::vector<int32_t> seg = {0, 1, 0, 2, 1, 0, 2, 2, 1};
  Var y = SegmentSoftmax(x, seg, 3);
  for (int64_t c = 0; c < 3; ++c) {
    double sums[3] = {0, 0, 0};
    for (int64_t e = 0; e < 9; ++e) sums[seg[e]] += y.value().At(e, c);
    for (double s : sums) EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(OpsTest, SegmentSoftmaxSingletonSegmentIsOne) {
  Var x(Tensor(1, 1, -123.0f), false);
  Var y = SegmentSoftmax(x, {0}, 1);
  EXPECT_NEAR(y.value().At(0, 0), 1.0f, 1e-6);
}

TEST(OpsTest, InferenceBuildsNoTape) {
  Rng rng(24);
  Var a(RandomTensor(3, 3, &rng), /*requires_grad=*/false);
  Var b(RandomTensor(3, 3, &rng), /*requires_grad=*/false);
  Var c = MatMul(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(c.impl()->parents.empty());
}

TEST(OpsTest, GradAccumulatesAcrossUses) {
  // f(x) = sum(x) + sum(x) => grad is 2 everywhere.
  Var x(Tensor(2, 2, 1.0f), true);
  Var loss = Add(Sum(x), Sum(x));
  loss.Backward();
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad().vec()[i], 2.0f);
}

}  // namespace
}  // namespace xfraud::nn
