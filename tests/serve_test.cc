// Tests for the online scoring path: RuleScorer fallback, the replicated
// KV layer (failover, circuit breakers, hedged reads, deadlines), and the
// end-to-end ScoringService under chaos plans. Everything timing-related
// runs on a VirtualClock, so injected seconds of latency replay instantly
// and every assertion is on deterministic values.

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "xfraud/baselines/rule_scorer.h"
#include "xfraud/common/check.h"
#include "xfraud/common/clock.h"
#include "xfraud/core/detector.h"
#include "xfraud/fault/fault_plan.h"
#include "xfraud/data/generator.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/kv/mem_kv.h"
#include "xfraud/kv/replicated_kv.h"
#include "xfraud/obs/registry.h"
#include "xfraud/serve/scoring_service.h"
#include "xfraud/serve/topology.h"

namespace xfraud::serve {
namespace {

// ---------------------------------------------------------------------------
// RuleScorer

TEST(RuleScorerTest, PrecisionWeightedVote) {
  std::vector<data::Rule> rules;
  rules.push_back({/*dim=*/0, /*threshold=*/1.0f, /*greater=*/true,
                   /*precision=*/0.9, /*recall=*/0.5});
  rules.push_back({/*dim=*/1, /*threshold=*/0.0f, /*greater=*/false,
                   /*precision=*/0.1, /*recall=*/0.5});
  baselines::RuleScorer scorer(rules);
  // Only the high-precision rule fires: score = 0.9 / (0.9 + 0.1).
  EXPECT_NEAR(scorer.Score({2.0f, 5.0f}), 0.9, 1e-12);
  // Only the low-precision rule fires.
  EXPECT_NEAR(scorer.Score({0.0f, -1.0f}), 0.1, 1e-12);
  // Both fire.
  EXPECT_NEAR(scorer.Score({2.0f, -1.0f}), 1.0, 1e-12);
  // Neither fires.
  EXPECT_NEAR(scorer.Score({0.0f, 5.0f}), 0.0, 1e-12);
}

TEST(RuleScorerTest, NoRulesIsNeutralAndShortRowsDoNotFire) {
  baselines::RuleScorer empty{std::vector<data::Rule>{}};
  EXPECT_NEAR(empty.Score({1.0f, 2.0f}), 0.5, 1e-12);

  std::vector<data::Rule> rules;
  rules.push_back({/*dim=*/5, /*threshold=*/0.0f, /*greater=*/true,
                   /*precision=*/1.0, /*recall=*/1.0});
  baselines::RuleScorer scorer(rules);
  // The rule's dimension is past the end of a truncated/degraded row.
  EXPECT_NEAR(scorer.Score({1.0f}), 0.0, 1e-12);
  EXPECT_NEAR(scorer.Score({}), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Test doubles for the replicated layer

/// KvStore decorator whose Get can be switched to fail and/or sleep on an
/// injected clock. Writes always pass through.
class FlakyKv : public kv::KvStore {
 public:
  FlakyKv(kv::KvStore* inner, Clock* clock) : inner_(inner), clock_(clock) {}

  Status Put(std::string_view key, std::string_view value) override {
    return inner_->Put(key, value);
  }
  Status Get(std::string_view key, std::string* value) const override {
    if (get_latency_s_ > 0.0) clock_->SleepFor(get_latency_s_);
    if (failing_.load()) return Status::IoError("flaky replica down");
    return inner_->Get(key, value);
  }
  Status Delete(std::string_view key) override {
    return inner_->Delete(key);
  }
  int64_t Count() const override { return inner_->Count(); }
  std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const override {
    return inner_->KeysWithPrefix(prefix);
  }

  void set_failing(bool failing) { failing_.store(failing); }
  void set_get_latency_s(double s) { get_latency_s_ = s; }

 private:
  kv::KvStore* inner_;
  Clock* clock_;
  std::atomic<bool> failing_{false};
  double get_latency_s_ = 0.0;
};

int64_t CounterValue(const char* name) {
  return obs::Registry::Global().counter(name)->value();
}

struct ReplicatedRig {
  explicit ReplicatedRig(int num_replicas, kv::ReplicationOptions options) {
    for (int i = 0; i < num_replicas; ++i) {
      cells.push_back(std::make_unique<kv::MemKvStore>());
      Clock* clock =
          options.clock != nullptr ? options.clock : Clock::Real();
      flaky.push_back(std::make_unique<FlakyKv>(cells.back().get(), clock));
    }
    std::vector<kv::KvStore*> replicas;
    for (auto& f : flaky) replicas.push_back(f.get());
    store = std::make_unique<kv::ReplicatedKvStore>(std::move(replicas),
                                                    options);
  }

  std::vector<std::unique_ptr<kv::MemKvStore>> cells;
  std::vector<std::unique_ptr<FlakyKv>> flaky;
  std::unique_ptr<kv::ReplicatedKvStore> store;
};

// ---------------------------------------------------------------------------
// ReplicatedKvStore

TEST(ReplicatedKvTest, WritesFanOutToEveryReplica) {
  VirtualClock clock;
  kv::ReplicationOptions options;
  options.clock = &clock;
  ReplicatedRig rig(3, options);
  ASSERT_TRUE(rig.store->Put("k", "v").ok());
  for (auto& cell : rig.cells) {
    std::string value;
    ASSERT_TRUE(cell->Get("k", &value).ok());
    EXPECT_EQ(value, "v");
  }
  ASSERT_TRUE(rig.store->Delete("k").ok());
  for (auto& cell : rig.cells) EXPECT_EQ(cell->Count(), 0);
}

TEST(ReplicatedKvTest, ReadFailsOverAcrossDeadReplicas) {
  VirtualClock clock;
  kv::ReplicationOptions options;
  options.clock = &clock;
  ReplicatedRig rig(3, options);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        rig.store->Put("key" + std::to_string(i), std::to_string(i)).ok());
  }
  // Kill all but replica 2: every key is still readable.
  rig.flaky[0]->set_failing(true);
  rig.flaky[1]->set_failing(true);
  const int64_t failovers_before = CounterValue("kv/replicated/failovers");
  for (int i = 0; i < 20; ++i) {
    std::string value;
    ASSERT_TRUE(rig.store->Get("key" + std::to_string(i), &value).ok());
    EXPECT_EQ(value, std::to_string(i));
  }
  EXPECT_GT(CounterValue("kv/replicated/failovers"), failovers_before);
  // NotFound is authoritative — no failover storm for missing keys.
  rig.flaky[0]->set_failing(false);
  rig.flaky[1]->set_failing(false);
  std::string value;
  EXPECT_TRUE(rig.store->Get("missing", &value).IsNotFound());
}

TEST(ReplicatedKvTest, AllReplicasDeadReturnsLastErrorFast) {
  VirtualClock clock;
  kv::ReplicationOptions options;
  options.clock = &clock;
  ReplicatedRig rig(2, options);
  ASSERT_TRUE(rig.store->Put("k", "v").ok());
  rig.flaky[0]->set_failing(true);
  rig.flaky[1]->set_failing(true);
  std::string value;
  Status s = rig.store->Get("k", &value);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST(ReplicatedKvTest, BreakerOpensHalfOpensAndCloses) {
  VirtualClock clock;
  kv::ReplicationOptions options;
  options.clock = &clock;
  options.breaker.window = 8;
  options.breaker.min_events = 4;
  options.breaker.cooloff_s = 0.05;
  ReplicatedRig rig(2, options);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rig.store->Put("key" + std::to_string(i), "v").ok());
  }
  using BreakerState = kv::ReplicatedKvStore::BreakerState;
  EXPECT_EQ(rig.store->breaker_state(0), BreakerState::kClosed);

  rig.flaky[0]->set_failing(true);
  std::string value;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rig.store->Get("key" + std::to_string(i), &value).ok());
  }
  // Enough primary-0 reads failed over to trip replica 0's breaker.
  EXPECT_EQ(rig.store->breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(rig.store->breaker_state(1), BreakerState::kClosed);

  // While open (cool-off not elapsed on the virtual clock), reads skip the
  // dead replica entirely: no failover cost, state stays open.
  const int64_t failovers_before = CounterValue("kv/replicated/failovers");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rig.store->Get("key" + std::to_string(i), &value).ok());
  }
  EXPECT_EQ(CounterValue("kv/replicated/failovers"), failovers_before);
  EXPECT_EQ(rig.store->breaker_state(0), BreakerState::kOpen);

  // Heal the replica and expire the cool-off: the next read that would
  // touch replica 0 probes it (half-open) and closes the breaker.
  rig.flaky[0]->set_failing(false);
  clock.Advance(0.06);
  const int64_t closes_before = CounterValue("kv/replicated/breaker_closes");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rig.store->Get("key" + std::to_string(i), &value).ok());
  }
  EXPECT_EQ(rig.store->breaker_state(0), BreakerState::kClosed);
  EXPECT_GT(CounterValue("kv/replicated/breaker_closes"), closes_before);
}

TEST(ReplicatedKvTest, FailedProbeReopensTheBreaker) {
  VirtualClock clock;
  kv::ReplicationOptions options;
  options.clock = &clock;
  options.breaker.window = 8;
  options.breaker.min_events = 4;
  options.breaker.cooloff_s = 0.05;
  ReplicatedRig rig(2, options);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rig.store->Put("key" + std::to_string(i), "v").ok());
  }
  rig.flaky[0]->set_failing(true);
  std::string value;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rig.store->Get("key" + std::to_string(i), &value).ok());
  }
  using BreakerState = kv::ReplicatedKvStore::BreakerState;
  ASSERT_EQ(rig.store->breaker_state(0), BreakerState::kOpen);
  // Replica still dead: the half-open probe fails and re-opens.
  clock.Advance(0.06);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rig.store->Get("key" + std::to_string(i), &value).ok());
  }
  EXPECT_EQ(rig.store->breaker_state(0), BreakerState::kOpen);
}

TEST(ReplicatedKvTest, HedgedReadBeatsSlowPrimaryAndDepositsRebate) {
  VirtualClock clock;
  kv::ReplicationOptions options;
  options.clock = &clock;
  options.hedge_delay_s = 0.001;
  ReplicatedRig rig(2, options);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.store->Put("key" + std::to_string(i), "v").ok());
  }
  // Both replicas answer, but replica 0 is slow; keys whose primary is 0
  // trigger a hedge to replica 1 which completes (emulated) earlier.
  rig.flaky[0]->set_get_latency_s(0.010);
  const int64_t hedged_before = CounterValue("kv/replicated/hedged_reads");
  const int64_t wins_before = CounterValue("kv/replicated/hedge_wins");
  (void)kv::HedgeRebate::Take();  // clear any credit from earlier tests
  double rebate = 0.0;
  std::string value;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.store->Get("key" + std::to_string(i), &value).ok());
    rebate += kv::HedgeRebate::Take();
  }
  EXPECT_GT(CounterValue("kv/replicated/hedged_reads"), hedged_before);
  EXPECT_GT(CounterValue("kv/replicated/hedge_wins"), wins_before);
  // Each win saves ~ (0.010 - (0.001 + 0)) = 9ms of emulated latency.
  EXPECT_GT(rebate, 0.0);
}

TEST(ReplicatedKvTest, ExpiredDeadlineFailsFastWithoutReading) {
  VirtualClock clock;
  kv::ReplicationOptions options;
  options.clock = &clock;
  ReplicatedRig rig(2, options);
  ASSERT_TRUE(rig.store->Put("k", "v").ok());
  Deadline deadline = Deadline::After(&clock, 0.01);
  clock.Advance(0.02);
  DeadlineScope scope(deadline);
  std::string value;
  Status s = rig.store->Get("k", &value);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
}

// ---------------------------------------------------------------------------
// ScoringService rigs

struct ServiceRig {
  ServiceRig(const std::string& plan_spec, int num_shards, int num_replicas,
             ServiceOptions service_options, VirtualClock* clock,
             kv::ReplicationOptions replication = {}) {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 150;
    config.num_fraud_rings = 5;
    config.num_stolen_cards = 10;
    config.feature_dim = 16;
    ds = data::TransactionGenerator::Make(config, "serve-test");

    TopologyOptions topo;
    topo.num_shards = num_shards;
    topo.num_replicas = num_replicas;
    topo.clock = clock;
    topo.replication = replication;
    if (!plan_spec.empty()) {
      auto plan = fault::FaultPlan::Parse(plan_spec);
      XF_CHECK(plan.ok());
      topo.plan = plan.value();
    }
    topology = std::make_unique<ServingTopology>(topo);
    XF_CHECK(topology->Ingest(ds.graph).ok());

    features = std::make_unique<kv::FeatureStore>(topology->serving());

    core::DetectorConfig model_config;
    model_config.feature_dim = ds.graph.feature_dim();
    model_config.hidden_dim = 8;
    model_config.num_heads = 2;
    model_config.num_layers = 1;
    Rng model_rng(7);
    model = std::make_unique<core::XFraudDetector>(model_config, &model_rng);

    service_options.clock = clock;
    service = std::make_unique<ScoringService>(model.get(), features.get(),
                                               service_options);

    std::vector<data::Rule> rules;
    rules.push_back({/*dim=*/0, /*threshold=*/0.0f, /*greater=*/true,
                     /*precision=*/0.8, /*recall=*/0.4});
    fallback = std::make_unique<baselines::RuleScorer>(rules);
    service->set_fallback(fallback.get());
  }

  data::SimDataset ds;
  std::unique_ptr<ServingTopology> topology;
  std::unique_ptr<kv::FeatureStore> features;
  std::unique_ptr<core::XFraudDetector> model;
  std::unique_ptr<baselines::RuleScorer> fallback;
  std::unique_ptr<ScoringService> service;
};

TEST(ScoringServiceTest, HealthyPathScoresDeterministically) {
  VirtualClock clock;
  ServiceOptions options;
  ServiceRig rig("", /*num_shards=*/3, /*num_replicas=*/2, options, &clock);
  const int32_t node = rig.ds.test_nodes[0];
  auto a = rig.service->Score(1, node);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_GE(a.value().score, 0.0);
  EXPECT_LE(a.value().score, 1.0);
  EXPECT_FALSE(a.value().degraded);
  EXPECT_FALSE(a.value().from_prefilter);
  // Replaying the same request id reproduces the score bit-for-bit.
  auto b = rig.service->Score(1, node);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().score, b.value().score);
}

// The ServingChaos* suites below are what `tools/ci.sh --mode=faults` runs
// under its replica-failure plan; keep the prefix stable.

TEST(ServingChaosTest, KilledReplicaEveryRequestScoresBitIdentically) {
  auto run = [](std::vector<double>* scores) {
    VirtualClock clock;
    ServiceOptions options;
    ServiceRig rig("seed=11,kill_replica=0", /*num_shards=*/3,
                   /*num_replicas=*/2, options, &clock);
    const int64_t opens_before =
        CounterValue("kv/replicated/breaker_opens");
    for (int i = 0; i < 20; ++i) {
      const int32_t node =
          rig.ds.test_nodes[i % rig.ds.test_nodes.size()];
      auto resp = rig.service->Score(/*request_id=*/i, node);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      EXPECT_FALSE(resp.value().degraded);
      scores->push_back(resp.value().score);
    }
    // The chaos actually bit, and the dead replica's breakers opened
    // visibly in the obs counters.
    EXPECT_GT(rig.topology->injector()->injected_replica_failures(), 0);
    EXPECT_GT(CounterValue("kv/replicated/breaker_opens"), opens_before);
  };
  std::vector<double> first, second;
  run(&first);
  run(&second);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "request " << i;
  }
}

TEST(ServingChaosTest, KilledShardDegradesOrFailsFastNeverHangs) {
  VirtualClock clock;
  ServiceOptions options;
  options.shed_policy = ShedPolicy::kDegrade;
  ServiceRig rig("seed=11,kill_shard=0", /*num_shards=*/3,
                 /*num_replicas=*/2, options, &clock);
  int ok_count = 0;
  int refused = 0;
  int degraded = 0;
  for (int i = 0; i < 30; ++i) {
    const int32_t node = rig.ds.test_nodes[i % rig.ds.test_nodes.size()];
    auto resp = rig.service->Score(/*request_id=*/i, node);
    if (resp.ok()) {
      ++ok_count;
      if (resp.value().degraded) ++degraded;
    } else {
      // Fast refusal is the only acceptable failure mode.
      EXPECT_TRUE(resp.status().IsUnavailable() ||
                  resp.status().IsDeadlineExceeded())
          << resp.status().ToString();
      ++refused;
    }
  }
  EXPECT_EQ(ok_count + refused, 30);
  // A third of the keyspace is gone: the chaos must have been visible.
  EXPECT_GT(degraded + refused, 0);
  EXPECT_GT(rig.topology->injector()->injected_replica_failures(), 0);
}

TEST(ServingChaosTest, DegradedBudgetZeroFailsFastInsteadOfDegrading) {
  VirtualClock clock;
  ServiceOptions options;
  options.shed_policy = ShedPolicy::kDegrade;
  options.max_degraded_frac = 0.0;
  ServiceRig rig("seed=11,kill_shard=0", /*num_shards=*/3,
                 /*num_replicas=*/2, options, &clock);
  for (int i = 0; i < 20; ++i) {
    const int32_t node = rig.ds.test_nodes[i % rig.ds.test_nodes.size()];
    auto resp = rig.service->Score(/*request_id=*/i, node);
    if (resp.ok()) {
      // With a zero budget nothing may come back flagged degraded.
      EXPECT_FALSE(resp.value().degraded);
    } else {
      EXPECT_TRUE(resp.status().IsUnavailable() ||
                  resp.status().IsDeadlineExceeded())
          << resp.status().ToString();
    }
  }
}

TEST(ServingChaosTest, SlowReplicaDeadlineExpiresFast) {
  VirtualClock clock;
  ServiceOptions options;
  options.deadline_s = 0.05;
  options.shed_policy = ShedPolicy::kFailFast;
  // Single replica, every op +10ms: the budget covers only a handful of
  // reads, so the request must come back DeadlineExceeded (fast in real
  // time — the clock is virtual).
  ServiceRig rig("seed=11,slow_replica=0@0.01", /*num_shards=*/2,
                 /*num_replicas=*/1, options, &clock);
  const int32_t node = rig.ds.test_nodes[0];
  auto resp = rig.service->Score(1, node);
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsDeadlineExceeded())
      << resp.status().ToString();
  // The virtual clock advanced by roughly the budget, not the full
  // un-deadlined scan.
  EXPECT_LT(clock.NowSeconds(), 0.2);
}

TEST(ServingChaosTest, HedgingMasksASlowReplicaInLatencyAccounting) {
  VirtualClock clock;
  kv::ReplicationOptions replication;
  replication.hedge_delay_s = 0.002;
  ServiceOptions options;
  options.deadline_s = 60.0;
  ServiceRig rig("seed=11,slow_replica=0@0.02", /*num_shards=*/2,
                 /*num_replicas=*/2, options, &clock, replication);
  const int64_t wins_before = CounterValue("kv/replicated/hedge_wins");
  double max_latency = 0.0;
  for (int i = 0; i < 10; ++i) {
    const int32_t node = rig.ds.test_nodes[i % rig.ds.test_nodes.size()];
    auto resp = rig.service->Score(i, node);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    max_latency = std::max(max_latency, resp.value().latency_s);
  }
  EXPECT_GT(CounterValue("kv/replicated/hedge_wins"), wins_before);
  // With every slow primary hedged to the fast replica, reported per-
  // request latency stays far under the raw slow-path cost (dozens of
  // reads x 20ms each).
  EXPECT_LT(max_latency, 0.2);
}

// ---------------------------------------------------------------------------
// Load shedding (needs real concurrency: a gate store blocks the first
// request inside its adjacency reads while a second request arrives).

/// Blocks Get on adjacency keys ("a" prefix) while the gate is closed;
/// metadata, node records, and feature rows pass through, so a prefilter
/// fallback can still read the seed's features while the GNN path hangs.
class GateKv : public kv::KvStore {
 public:
  explicit GateKv(kv::KvStore* inner) : inner_(inner) {}

  Status Put(std::string_view key, std::string_view value) override {
    return inner_->Put(key, value);
  }
  Status Get(std::string_view key, std::string* value) const override {
    if (!key.empty() && key[0] == 'a') {
      std::unique_lock<std::mutex> lock(mu_);
      ++blocked_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
      --blocked_;
    }
    return inner_->Get(key, value);
  }
  Status Delete(std::string_view key) override {
    return inner_->Delete(key);
  }
  int64_t Count() const override { return inner_->Count(); }
  std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const override {
    return inner_->KeysWithPrefix(prefix);
  }

  void WaitUntilBlocked() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return blocked_ > 0; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  kv::KvStore* inner_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable int blocked_ = 0;
  bool open_ = false;
};

struct ShedRig {
  explicit ShedRig(ServiceOptions service_options) {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 120;
    config.num_fraud_rings = 4;
    config.num_stolen_cards = 8;
    config.feature_dim = 16;
    ds = data::TransactionGenerator::Make(config, "shed-test");

    inner = std::make_unique<kv::MemKvStore>();
    gate = std::make_unique<GateKv>(inner.get());
    {
      kv::FeatureStore ingest(inner.get());
      XF_CHECK(ingest.Ingest(ds.graph).ok());
    }
    features = std::make_unique<kv::FeatureStore>(gate.get());

    core::DetectorConfig model_config;
    model_config.feature_dim = ds.graph.feature_dim();
    model_config.hidden_dim = 8;
    model_config.num_heads = 2;
    model_config.num_layers = 1;
    Rng model_rng(7);
    model = std::make_unique<core::XFraudDetector>(model_config, &model_rng);

    service_options.deadline_s = 0.0;  // the gate, not time, controls flow
    service = std::make_unique<ScoringService>(model.get(), features.get(),
                                               service_options);
    std::vector<data::Rule> rules;
    rules.push_back({/*dim=*/0, /*threshold=*/0.0f, /*greater=*/true,
                     /*precision=*/0.8, /*recall=*/0.4});
    fallback = std::make_unique<baselines::RuleScorer>(rules);
    service->set_fallback(fallback.get());
  }

  data::SimDataset ds;
  std::unique_ptr<kv::MemKvStore> inner;
  std::unique_ptr<GateKv> gate;
  std::unique_ptr<kv::FeatureStore> features;
  std::unique_ptr<core::XFraudDetector> model;
  std::unique_ptr<baselines::RuleScorer> fallback;
  std::unique_ptr<ScoringService> service;
};

TEST(LoadSheddingTest, FailFastShedsPastMaxInflight) {
  ServiceOptions options;
  options.max_inflight = 1;
  options.shed_policy = ShedPolicy::kFailFast;
  ShedRig rig(options);
  const int32_t node = rig.ds.test_nodes[0];

  std::thread first([&] {
    auto resp = rig.service->Score(1, node);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
  });
  rig.gate->WaitUntilBlocked();  // request 1 is mid-flight in the sampler

  const int64_t shed_before = CounterValue("serve/shed");
  auto resp = rig.service->Score(2, node);
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsUnavailable()) << resp.status().ToString();
  EXPECT_EQ(CounterValue("serve/shed"), shed_before + 1);

  rig.gate->Open();
  first.join();
}

TEST(LoadSheddingTest, DegradePolicyAnswersShedRequestsFromThePrefilter) {
  ServiceOptions options;
  options.max_inflight = 1;
  options.shed_policy = ShedPolicy::kDegrade;
  ShedRig rig(options);
  const int32_t node = rig.ds.test_nodes[0];

  std::thread first([&] {
    auto resp = rig.service->Score(1, node);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
  });
  rig.gate->WaitUntilBlocked();

  auto resp = rig.service->Score(2, node);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp.value().degraded);
  EXPECT_TRUE(resp.value().from_prefilter);
  // The prefilter vote over the seed's features, not a GNN score.
  std::vector<float> feat;
  ASSERT_TRUE(rig.features->ReadFeatures(node, &feat).ok());
  EXPECT_EQ(resp.value().score, rig.fallback->Score(feat));

  rig.gate->Open();
  first.join();
}

TEST(LoadSheddingTest, DegradeWithZeroBudgetStillRefuses) {
  ServiceOptions options;
  options.max_inflight = 1;
  options.shed_policy = ShedPolicy::kDegrade;
  options.max_degraded_frac = 0.0;
  ShedRig rig(options);
  const int32_t node = rig.ds.test_nodes[0];

  std::thread first([&] {
    auto resp = rig.service->Score(1, node);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
  });
  rig.gate->WaitUntilBlocked();

  auto resp = rig.service->Score(2, node);
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsUnavailable()) << resp.status().ToString();

  rig.gate->Open();
  first.join();
}

}  // namespace
}  // namespace xfraud::serve
