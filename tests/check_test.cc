// Contract-macro tests: every XF_CHECK* variant throws xfraud::CheckError
// with file:line, the condition text, and the streamed message; passing
// conditions are free of observable effects. XF_DCHECK build-mode semantics
// are covered separately by dcheck_semantics.cc, which is compiled twice
// (with and without NDEBUG) into the xfraud_dcheck_{on,off}_test binaries.

#include <string>

#include <gtest/gtest.h>

#include "xfraud/common/check.h"
#include "xfraud/nn/tensor.h"

namespace xfraud {
namespace {

std::string FailureMessage(void (*fn)()) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected CheckError";
  return "";
}

TEST(CheckTest, PassingCheckIsSilent) {
  XF_CHECK(1 + 1 == 2);
  XF_CHECK_EQ(2, 2);
  XF_CHECK_NE(2, 3);
  XF_CHECK_LT(2, 3);
  XF_CHECK_LE(3, 3);
  XF_CHECK_GT(3, 2);
  XF_CHECK_GE(3, 3);
  XF_CHECK_BOUNDS(0, 1);
  XF_CHECK_BOUNDS(4, 5);
}

TEST(CheckTest, FailureThrowsWithFileLineConditionAndMessage) {
  std::string what = FailureMessage([] {
    XF_CHECK(2 + 2 == 5) << "arithmetic drifted to " << 42;
  });
  EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
  EXPECT_NE(what.find("Check failed"), std::string::npos) << what;
  EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
  EXPECT_NE(what.find("arithmetic drifted to 42"), std::string::npos) << what;
}

TEST(CheckTest, ComparisonVariantsIncludeBothOperands) {
  std::string what = FailureMessage([] {
    int lhs = 7;
    int rhs = 9;
    XF_CHECK_EQ(lhs, rhs);
  });
  EXPECT_NE(what.find("(7 vs 9)"), std::string::npos) << what;

  EXPECT_THROW(XF_CHECK_NE(5, 5), CheckError);
  EXPECT_THROW(XF_CHECK_LT(5, 5), CheckError);
  EXPECT_THROW(XF_CHECK_LE(6, 5), CheckError);
  EXPECT_THROW(XF_CHECK_GT(5, 5), CheckError);
  EXPECT_THROW(XF_CHECK_GE(4, 5), CheckError);
}

TEST(CheckTest, BoundsVariantReportsIndexAndBound) {
  std::string what = FailureMessage([] { XF_CHECK_BOUNDS(12, 10); });
  EXPECT_NE(what.find("index 12"), std::string::npos) << what;
  EXPECT_NE(what.find("bound 10"), std::string::npos) << what;
}

TEST(CheckTest, BoundsIsSignSafe) {
  // Negative signed index against an unsigned bound must fail (and not
  // wrap to a huge value that passes).
  EXPECT_THROW(XF_CHECK_BOUNDS(-1, size_t{100}), CheckError);
  EXPECT_THROW(XF_CHECK_BOUNDS(int64_t{-5}, int64_t{100}), CheckError);
  // Unsigned index against a signed negative bound fails too.
  EXPECT_THROW(XF_CHECK_BOUNDS(size_t{0}, -3), CheckError);
  XF_CHECK_BOUNDS(size_t{99}, size_t{100});
  XF_CHECK_BOUNDS(int64_t{99}, size_t{100});
}

TEST(CheckTest, ShapeVariantReportsBothShapes) {
  std::string what = FailureMessage([] {
    nn::Tensor a(2, 3);
    nn::Tensor b(4, 5);
    XF_CHECK_SHAPE(a, b);
  });
  EXPECT_NE(what.find("2x3"), std::string::npos) << what;
  EXPECT_NE(what.find("4x5"), std::string::npos) << what;

  nn::Tensor a(2, 3);
  nn::Tensor b(2, 3);
  XF_CHECK_SHAPE(a, b);
}

TEST(CheckTest, MacroBodyBindsAsSingleStatement) {
  // The if/else expansion must not steal a dangling else or require braces.
  bool reached_else = false;
  if (false)
    XF_CHECK(true);
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);

  for (int i = 0; i < 3; ++i) XF_CHECK(i < 3) << "loop body " << i;
}

TEST(CheckTest, CheckErrorIsALogicError) {
  // Callers that cannot continue may catch std::logic_error generically;
  // ThreadPool::Wait re-throws worker CheckErrors through this path.
  try {
    XF_CHECK(false) << "boom";
    FAIL() << "unreachable";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(CheckTest, LibraryContractsFireThroughPublicApi) {
  // Spot-check that the threaded contracts are reachable: mismatched shapes
  // in Tensor::AddInPlace violate its XF_CHECK_SHAPE precondition.
  nn::Tensor a(2, 2);
  nn::Tensor b(3, 2);
  EXPECT_THROW(a.AddInPlace(b), CheckError);
}

}  // namespace
}  // namespace xfraud
