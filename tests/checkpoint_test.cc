#include "xfraud/train/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "xfraud/common/atomic_file.h"
#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/train/trainer.h"

namespace xfraud::train {
namespace {

nn::Tensor MakeTensor(int64_t rows, int64_t cols, float start) {
  nn::Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = start + 0.5f * static_cast<float>(i);
  }
  return t;
}

TrainerCheckpoint MakeCheckpoint() {
  TrainerCheckpoint ckpt;
  ckpt.seed = 9;
  ckpt.next_epoch = 3;
  ckpt.stale = 1;
  ckpt.best_epoch = 2;
  ckpt.best_val_auc = 0.75;
  Rng rng(42);
  ckpt.rng = rng.GetState();
  ckpt.rng.has_cached_gaussian = true;
  ckpt.rng.cached_gaussian = -0.625;
  ckpt.train_node_order = {5, 3, 8, 1};
  EpochStats e0;
  e0.epoch = 0;
  e0.train_loss = 0.9;
  e0.val_auc = 0.6;
  e0.seconds = 1.5;
  e0.sample_seconds = 0.5;
  e0.compute_seconds = 1.0;
  EpochStats e1 = e0;
  e1.epoch = 1;
  e1.val_auc = 0.7;
  ckpt.history = {e0, e1};
  ckpt.params = {{"enc/weight", MakeTensor(2, 3, 1.0f)},
                 {"head/bias", MakeTensor(1, 3, -2.0f)}};
  ckpt.opt_m = {MakeTensor(2, 3, 0.0f), MakeTensor(1, 3, 0.25f)};
  ckpt.opt_v = {MakeTensor(2, 3, 0.125f), MakeTensor(1, 3, 0.5f)};
  ckpt.opt_step = 7;
  return ckpt;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TrainerCheckpointTest, SaveLoadRoundTripsEveryField) {
  const std::string path = TempPath("ckpt_roundtrip.bin");
  TrainerCheckpoint ckpt = MakeCheckpoint();
  Status saved = SaveTrainerCheckpoint(ckpt, path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  auto loaded = LoadTrainerCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TrainerCheckpoint& got = loaded.value();
  EXPECT_EQ(got.seed, ckpt.seed);
  EXPECT_EQ(got.next_epoch, ckpt.next_epoch);
  EXPECT_EQ(got.stale, ckpt.stale);
  EXPECT_EQ(got.best_epoch, ckpt.best_epoch);
  EXPECT_EQ(got.best_val_auc, ckpt.best_val_auc);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got.rng.s[i], ckpt.rng.s[i]);
  EXPECT_EQ(got.rng.has_cached_gaussian, ckpt.rng.has_cached_gaussian);
  EXPECT_EQ(got.rng.cached_gaussian, ckpt.rng.cached_gaussian);
  EXPECT_EQ(got.train_node_order, ckpt.train_node_order);
  ASSERT_EQ(got.history.size(), ckpt.history.size());
  for (size_t e = 0; e < ckpt.history.size(); ++e) {
    EXPECT_EQ(got.history[e].epoch, ckpt.history[e].epoch);
    EXPECT_EQ(got.history[e].train_loss, ckpt.history[e].train_loss);
    EXPECT_EQ(got.history[e].val_auc, ckpt.history[e].val_auc);
    EXPECT_EQ(got.history[e].seconds, ckpt.history[e].seconds);
    EXPECT_EQ(got.history[e].sample_seconds, ckpt.history[e].sample_seconds);
    EXPECT_EQ(got.history[e].compute_seconds,
              ckpt.history[e].compute_seconds);
  }
  ASSERT_EQ(got.params.size(), ckpt.params.size());
  for (size_t i = 0; i < ckpt.params.size(); ++i) {
    EXPECT_EQ(got.params[i].first, ckpt.params[i].first);
    EXPECT_EQ(got.params[i].second.vec(), ckpt.params[i].second.vec());
    EXPECT_EQ(got.opt_m[i].vec(), ckpt.opt_m[i].vec());
    EXPECT_EQ(got.opt_v[i].vec(), ckpt.opt_v[i].vec());
  }
  EXPECT_EQ(got.opt_step, ckpt.opt_step);
}

TEST(TrainerCheckpointTest, MissingFileIsNotFound) {
  auto loaded = LoadTrainerCheckpoint(TempPath("ckpt_never_written.bin"));
  EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status().ToString();
}

TEST(TrainerCheckpointTest, MismatchedOptimizerStateIsInvalidArgument) {
  TrainerCheckpoint ckpt = MakeCheckpoint();
  ckpt.opt_m.pop_back();
  Status saved = SaveTrainerCheckpoint(ckpt, TempPath("ckpt_bad_state.bin"));
  EXPECT_TRUE(saved.IsInvalidArgument()) << saved.ToString();
}

TEST(TrainerCheckpointTest, TruncationAnywhereIsCorruption) {
  const std::string path = TempPath("ckpt_truncate.bin");
  ASSERT_TRUE(SaveTrainerCheckpoint(MakeCheckpoint(), path).ok());
  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  const std::string& bytes = raw.value();

  // Cut the file at several depths, including mid-footer and mid-payload;
  // the CRC footer check must reject every torn image.
  for (size_t keep : {size_t{0}, size_t{4}, bytes.size() / 2,
                      bytes.size() - 3, bytes.size() - 8}) {
    const std::string torn = TempPath("ckpt_torn.bin");
    std::ofstream out(torn, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    auto loaded = LoadTrainerCheckpoint(torn);
    EXPECT_TRUE(loaded.status().IsCorruption())
        << "kept " << keep << " of " << bytes.size() << ": "
        << loaded.status().ToString();
  }
}

TEST(TrainerCheckpointTest, BitFlipIsCorruption) {
  const std::string path = TempPath("ckpt_bitflip.bin");
  ASSERT_TRUE(SaveTrainerCheckpoint(MakeCheckpoint(), path).ok());
  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string bytes = raw.value();
  bytes[bytes.size() / 3] ^= 0x40;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  auto loaded = LoadTrainerCheckpoint(path);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

// ---- Trainer resume -------------------------------------------------------

class ResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 300;
    config.num_fraud_rings = 8;
    config.num_stolen_cards = 12;
    ds_ = new data::SimDataset(
        data::TransactionGenerator::Make(config, "ckpt"));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  static core::XFraudDetector MakeModel(uint64_t seed) {
    Rng rng(seed);
    core::DetectorConfig dc;
    dc.feature_dim = ds_->graph.feature_dim();
    dc.hidden_dim = 16;
    dc.num_heads = 2;
    dc.num_layers = 2;
    return core::XFraudDetector(dc, &rng);
  }

  static TrainOptions BaseOptions() {
    TrainOptions opts;
    opts.max_epochs = 5;
    opts.patience = 5;
    opts.batch_size = 128;
    opts.seed = 5;
    return opts;
  }

  /// Fresh per-test checkpoint directory (stale state from a previous run
  /// must not leak into the resume assertions).
  static std::string FreshDir(const std::string& name) {
    std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  }

  static data::SimDataset* ds_;
  static sample::SageSampler sampler_;
};

data::SimDataset* ResumeTest::ds_ = nullptr;
sample::SageSampler ResumeTest::sampler_(2, 8);

TEST_F(ResumeTest, InterruptedThenResumedRunIsBitIdentical) {
  // Reference: one uninterrupted 5-epoch run.
  auto ref_model = MakeModel(5);
  Trainer ref(&ref_model, &sampler_, BaseOptions());
  auto ref_result = ref.Train(*ds_);
  ASSERT_TRUE(ref_result.error.ok()) << ref_result.error.ToString();
  ASSERT_EQ(ref_result.history.size(), 5u);

  // "Crash" after epoch 1: same run capped at 2 epochs, checkpointing.
  const std::string dir = FreshDir("resume_bit_identical");
  TrainOptions first_opts = BaseOptions();
  first_opts.max_epochs = 2;
  first_opts.checkpoint_dir = dir;
  auto first_model = MakeModel(5);
  Trainer first(&first_model, &sampler_, first_opts);
  auto first_result = first.Train(*ds_);
  ASSERT_TRUE(first_result.error.ok()) << first_result.error.ToString();

  // Resume into a freshly-initialized model: the checkpoint must restore
  // parameters, optimizer moments, RNG mid-stream state, and the shuffled
  // train order, so the continued run replays epochs 2-4 exactly.
  TrainOptions resume_opts = BaseOptions();
  resume_opts.checkpoint_dir = dir;
  resume_opts.resume = true;
  auto resumed_model = MakeModel(5);
  Trainer resumed(&resumed_model, &sampler_, resume_opts);
  auto resumed_result = resumed.Train(*ds_);
  ASSERT_TRUE(resumed_result.error.ok()) << resumed_result.error.ToString();

  ASSERT_EQ(resumed_result.history.size(), ref_result.history.size());
  for (size_t e = 0; e < ref_result.history.size(); ++e) {
    EXPECT_EQ(resumed_result.history[e].train_loss,
              ref_result.history[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(resumed_result.history[e].val_auc,
              ref_result.history[e].val_auc)
        << "epoch " << e;
  }
  EXPECT_EQ(resumed_result.best_epoch, ref_result.best_epoch);
  EXPECT_EQ(resumed_result.best_val_auc, ref_result.best_val_auc);

  auto ref_params = ref_model.Parameters();
  auto resumed_params = resumed_model.Parameters();
  ASSERT_EQ(ref_params.size(), resumed_params.size());
  for (size_t i = 0; i < ref_params.size(); ++i) {
    ASSERT_EQ(ref_params[i].var.value().vec(),
              resumed_params[i].var.value().vec())
        << "parameter " << ref_params[i].name;
  }
}

TEST_F(ResumeTest, ResumeWithoutCheckpointIsAColdStart) {
  const std::string dir = FreshDir("resume_cold_start");
  TrainOptions opts = BaseOptions();
  opts.max_epochs = 1;
  opts.checkpoint_dir = dir;
  opts.resume = true;  // nothing to resume from yet
  auto model = MakeModel(5);
  Trainer trainer(&model, &sampler_, opts);
  auto result = trainer.Train(*ds_);
  EXPECT_TRUE(result.error.ok()) << result.error.ToString();
  EXPECT_EQ(result.history.size(), 1u);
  // And the epoch left a loadable checkpoint behind.
  auto ckpt = LoadTrainerCheckpoint(TrainerCheckpointPath(dir));
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_EQ(ckpt.value().next_epoch, 1);
}

TEST_F(ResumeTest, SeedMismatchRefusesToResume) {
  const std::string dir = FreshDir("resume_seed_mismatch");
  TrainOptions opts = BaseOptions();
  opts.max_epochs = 1;
  opts.checkpoint_dir = dir;
  auto model = MakeModel(5);
  Trainer trainer(&model, &sampler_, opts);
  ASSERT_TRUE(trainer.Train(*ds_).error.ok());

  TrainOptions other = BaseOptions();
  other.seed = 6;  // different run; its shuffle stream would not line up
  other.checkpoint_dir = dir;
  other.resume = true;
  auto other_model = MakeModel(6);
  Trainer resumed(&other_model, &sampler_, other);
  auto result = resumed.Train(*ds_);
  EXPECT_TRUE(result.error.IsFailedPrecondition()) << result.error.ToString();
  EXPECT_TRUE(result.history.empty());
}

TEST_F(ResumeTest, CorruptCheckpointSurfacesInsteadOfTrainingFromScratch) {
  const std::string dir = FreshDir("resume_corrupt");
  TrainOptions opts = BaseOptions();
  opts.max_epochs = 1;
  opts.checkpoint_dir = dir;
  auto model = MakeModel(5);
  Trainer trainer(&model, &sampler_, opts);
  ASSERT_TRUE(trainer.Train(*ds_).error.ok());

  // Tear the checkpoint's tail (a crash mid-write without the atomic
  // rename would look like this).
  const std::string path = TrainerCheckpointPath(dir);
  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(raw.value().data(),
            static_cast<std::streamsize>(raw.value().size() / 2));
  out.close();

  opts.resume = true;
  auto resumed_model = MakeModel(5);
  Trainer resumed(&resumed_model, &sampler_, opts);
  auto result = resumed.Train(*ds_);
  EXPECT_TRUE(result.error.IsCorruption()) << result.error.ToString();
  EXPECT_TRUE(result.history.empty());
}

}  // namespace
}  // namespace xfraud::train
