#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "xfraud/common/clock.h"
#include "xfraud/common/mpmc_queue.h"
#include "xfraud/common/retry.h"
#include "xfraud/common/rng.h"
#include "xfraud/common/status.h"
#include "xfraud/common/table_printer.h"
#include "xfraud/common/thread_pool.h"
#include "xfraud/common/timer.h"

namespace xfraud {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextInt(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitIsIndependent) {
  Rng parent(29);
  Rng child = parent.Split();
  // Child stream differs from the continued parent stream.
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

TEST(RngTest, StreamSeedIsAStatelessPureFunction) {
  // Same (root, stream) -> same seed, no matter what was derived before.
  EXPECT_EQ(Rng::StreamSeed(5, 3), Rng::StreamSeed(5, 3));
  // Distinct streams and distinct roots land elsewhere.
  EXPECT_NE(Rng::StreamSeed(5, 3), Rng::StreamSeed(5, 4));
  EXPECT_NE(Rng::StreamSeed(5, 3), Rng::StreamSeed(6, 3));
  // Adjacent streams yield unrelated generators, not shifted copies.
  Rng a(Rng::StreamSeed(5, 0));
  Rng b(Rng::StreamSeed(5, 1));
  a.NextUint64();  // advance a by one: streams must still not collide
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto item = q.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryVariantsRespectBounds) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  EXPECT_EQ(*q.TryPop(), 1);
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_EQ(*q.TryPop(), 2);
  EXPECT_EQ(*q.TryPop(), 3);
  EXPECT_FALSE(q.TryPop().has_value());  // empty
}

TEST(BoundedQueueTest, PopDrainsBufferedItemsAfterClose) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));  // closed: new items rejected
  EXPECT_EQ(*q.Pop(), 1);   // ...but buffered ones still drain
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // end of stream
}

TEST(BoundedQueueTest, CloseReleasesBlockedConsumers) {
  BoundedQueue<int> q(2);
  std::atomic<int> finished{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (q.Pop().has_value()) {
      }
      finished.fetch_add(1);
    });
  }
  q.Close();  // all three are (or will be) blocked on an empty queue
  for (auto& t : consumers) t.join();
  EXPECT_EQ(finished.load(), 3);
}

TEST(BoundedQueueTest, CloseReleasesBlockedProducers) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(0));  // fill to capacity
  std::atomic<bool> rejected{false};
  std::thread producer([&] { rejected.store(!q.Push(1)); });
  // The producer is blocked on the full queue; Close must wake it and make
  // the pending Push fail rather than deadlock.
  q.Close();
  producer.join();
  EXPECT_TRUE(rejected.load());
  EXPECT_EQ(*q.Pop(), 0);
}

TEST(BoundedQueueTest, MpmcStressDeliversEveryItemOnce) {
  // 4 producers x 500 tagged items through a tight queue into 3 consumers;
  // every item must arrive exactly once. Run under -fsanitize=thread to
  // check the synchronization (see README "Sanitizers").
  const int kProducers = 4;
  const int kConsumers = 3;
  const int kPerProducer = 500;
  BoundedQueue<int> q(8);
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> threads;
  std::atomic<int> producers_left{kProducers};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.Push(p * kPerProducer + i));
      }
      if (producers_left.fetch_sub(1) == 1) q.Close();
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = q.Pop()) seen[*item].fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(BoundedQueueTest, ThreadPoolProducersFeedThreadPoolConsumers) {
  // The BatchLoader topology in miniature: pool workers produce through
  // the bounded queue under backpressure while a consumer drains in order
  // of arrival.
  const int kItems = 256;
  BoundedQueue<int> q(4);
  ThreadPool pool(3);
  std::atomic<int> next{0};
  for (int t = 0; t < 3; ++t) {
    pool.Submit([&] {
      for (;;) {
        int i = next.fetch_add(1);
        if (i >= kItems) return;
        if (!q.Push(i)) return;
      }
    });
  }
  std::set<int> received;
  for (int i = 0; i < kItems; ++i) {
    auto item = q.Pop();
    ASSERT_TRUE(item.has_value());
    received.insert(*item);
  }
  pool.Wait();
  q.Close();
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_EQ(received.size(), static_cast<size_t>(kItems));
}

TEST(ThreadPoolTest, WaitRethrowsTaskExceptionAndPoolSurvives) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(counter.load(), 10);  // sibling tasks still ran
  // The exception is consumed and the pool remains usable.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndexSpace) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(BarrierTest, ReleasesAllParties) {
  const size_t parties = 4;
  Barrier barrier(parties);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < parties; ++i) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.ArriveAndWait();
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(before.load(), 4);
  EXPECT_EQ(after.load(), 4);
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  const size_t parties = 3;
  Barrier barrier(parties);
  std::atomic<int> rounds{0};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < parties; ++i) {
    threads.emplace_back([&] {
      for (int r = 0; r < 5; ++r) {
        barrier.ArriveAndWait();
        rounds.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rounds.load(), 15);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedMillis(), 15.0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedMillis(), 15.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"model", "auc"});
  table.AddRow({"GAT", "0.8879"});
  table.AddRow({"xFraud detector+", "0.9074"});
  std::ostringstream os;
  table.Print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("xFraud detector+"), std::string::npos);
  EXPECT_NE(text.find("0.9074"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("|--"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.9074, 4), "0.9074");
  EXPECT_EQ(TablePrinter::Num(2.0, 1), "2.0");
}

TEST(ClockTest, RealClockAdvancesMonotonically) {
  Clock* clock = Clock::Real();
  ASSERT_NE(clock, nullptr);
  double a = clock->NowSeconds();
  clock->SleepFor(0.001);
  double b = clock->NowSeconds();
  EXPECT_GE(b - a, 0.0005);
  clock->SleepFor(-1.0);  // non-positive sleep is a no-op
}

TEST(ClockTest, VirtualClockOnlyMovesWhenAdvanced) {
  VirtualClock clock(10.0);
  EXPECT_EQ(clock.NowSeconds(), 10.0);
  clock.SleepFor(2.5);  // the sleeper experiences the wait instantly
  EXPECT_EQ(clock.NowSeconds(), 12.5);
  clock.SleepFor(0.0);
  clock.SleepFor(-5.0);
  EXPECT_EQ(clock.NowSeconds(), 12.5);
  clock.Advance(0.5);
  EXPECT_EQ(clock.NowSeconds(), 13.0);
}

TEST(DeadlineTest, TracksRemainingBudgetOnItsClock) {
  VirtualClock clock;
  Deadline unlimited;
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_FALSE(unlimited.Expired());
  EXPECT_TRUE(std::isinf(unlimited.RemainingSeconds()));

  Deadline d = Deadline::After(&clock, 1.0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_NEAR(d.RemainingSeconds(), 1.0, 1e-12);
  clock.Advance(0.75);
  EXPECT_NEAR(d.RemainingSeconds(), 0.25, 1e-12);
  EXPECT_FALSE(d.Expired());
  clock.Advance(0.25);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineScopeTest, NestsPerThreadInnermostWins) {
  VirtualClock clock;
  EXPECT_EQ(DeadlineScope::Current(), nullptr);
  {
    DeadlineScope outer(Deadline::After(&clock, 10.0));
    ASSERT_NE(DeadlineScope::Current(), nullptr);
    EXPECT_NEAR(DeadlineScope::Current()->RemainingSeconds(), 10.0, 1e-12);
    {
      DeadlineScope inner(Deadline::After(&clock, 1.0));
      EXPECT_NEAR(DeadlineScope::Current()->RemainingSeconds(), 1.0,
                  1e-12);
      // Another thread sees no deadline: scopes are thread-local.
      std::thread other([] {
        EXPECT_EQ(DeadlineScope::Current(), nullptr);
      });
      other.join();
    }
    EXPECT_NEAR(DeadlineScope::Current()->RemainingSeconds(), 10.0, 1e-12);
  }
  EXPECT_EQ(DeadlineScope::Current(), nullptr);
}

TEST(RetryDeadlineTest, BackoffIsClampedToTheRemainingBudget) {
  // Backoff (1s) dwarfs the deadline (0.1s): the single sleep before the
  // retry must be clamped to the unspent budget, so the loop gives up
  // having consumed ~0.1 virtual seconds — not the full 1s backoff.
  VirtualClock clock;
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_s = 1.0;
  policy.max_backoff_s = 1.0;
  policy.jitter_frac = 0.0;
  policy.deadline_s = 0.1;
  policy.clock = &clock;
  int attempts = 0;
  Status s = RetryWithBackoff(policy, /*jitter_seed=*/1, [&] {
    ++attempts;
    return Status::IoError("always down");
  });
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(attempts, 2);  // first try + the one retry the budget allows
  EXPECT_NEAR(clock.NowSeconds(), 0.1, 1e-9);
}

TEST(RetryDeadlineTest, UnclampedBackoffStillHonorsMaxAttempts) {
  VirtualClock clock;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_s = 0.01;
  policy.max_backoff_s = 0.01;
  policy.jitter_frac = 0.0;
  policy.clock = &clock;
  int attempts = 0;
  Status s = RetryWithBackoff(policy, /*jitter_seed=*/1, [&] {
    ++attempts;
    return Status::IoError("always down");
  });
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(attempts, 3);
  EXPECT_NEAR(clock.NowSeconds(), 0.02, 1e-9);
}

// Shed-path semantics the serving layer's admission control leans on: a
// full queue refuses instantly, and Close() promptly releases every
// blocked popper.
TEST(BoundedQueueTest, TryPushShedsOnFullAndAfterClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: immediate refusal, no blocking
  q.Close();
  EXPECT_FALSE(q.TryPush(4));  // closed: still an immediate refusal
  // Buffered work drains in order after the close.
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, CloseWakesManyBlockedPoppersPromptly) {
  BoundedQueue<int> q(2);
  const int kPoppers = 4;
  std::atomic<int> waiting{0};
  std::atomic<int> woke_empty{0};
  std::vector<std::thread> poppers;
  for (int i = 0; i < kPoppers; ++i) {
    poppers.emplace_back([&] {
      waiting.fetch_add(1);
      if (!q.Pop().has_value()) woke_empty.fetch_add(1);
    });
  }
  // Ensure every popper has at least reached the queue before closing.
  while (waiting.load() < kPoppers) std::this_thread::yield();
  WallTimer timer;
  q.Close();
  for (auto& t : poppers) t.join();
  EXPECT_EQ(woke_empty.load(), kPoppers);  // nobody got an item
  // "Promptly": the join completed in bounded time, not a missed-wakeup
  // hang (generous bound to stay robust under sanitizers).
  EXPECT_LT(timer.ElapsedMillis(), 10000.0);
}

}  // namespace
}  // namespace xfraud
