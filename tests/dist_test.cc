#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/dist/distributed.h"
#include "xfraud/dist/partition.h"
#include "xfraud/graph/subgraph.h"

namespace xfraud::dist {
namespace {

TEST(KMeans1DTest, SeparatesTwoClusters) {
  std::vector<double> values = {0.1, 0.12, 0.09, 0.11, 5.0, 5.1, 4.9};
  Rng rng(1);
  auto assign = KMeans1D(values, 2, &rng);
  // First four together, last three together, different ids.
  EXPECT_EQ(assign[0], assign[1]);
  EXPECT_EQ(assign[0], assign[2]);
  EXPECT_EQ(assign[4], assign[5]);
  EXPECT_EQ(assign[4], assign[6]);
  EXPECT_NE(assign[0], assign[4]);
}

TEST(KMeans1DTest, HandlesKLargerThanN) {
  std::vector<double> values = {1.0, 2.0};
  Rng rng(2);
  auto assign = KMeans1D(values, 5, &rng);
  EXPECT_EQ(assign.size(), 2u);
}

TEST(GroupClustersTest, BalancesNodeCounts) {
  // 6 clusters, sizes summing to 60, 3 groups => ~20 nodes each.
  std::vector<int64_t> sizes = {5, 25, 10, 8, 7, 5};
  auto groups = GroupClusters(sizes, 3);
  std::vector<int64_t> load(3, 0);
  for (size_t c = 0; c < sizes.size(); ++c) {
    ASSERT_GE(groups[c], 0);
    ASSERT_LT(groups[c], 3);
    load[groups[c]] += sizes[c];
  }
  int64_t max_load = *std::max_element(load.begin(), load.end());
  int64_t min_load = *std::min_element(load.begin(), load.end());
  EXPECT_GT(min_load, 0);
  EXPECT_LE(max_load, 2 * 20);  // within 2x of the ideal
}

TEST(GroupClustersTest, UsesAllGroupsWhenPossible) {
  std::vector<int64_t> sizes(16, 10);
  auto groups = GroupClusters(sizes, 4);
  std::set<int> used(groups.begin(), groups.end());
  EXPECT_EQ(used.size(), 4u);
}

class PartitionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 800;
    config.num_fraud_rings = 12;
    config.num_stolen_cards = 20;
    ds_ = new data::SimDataset(
        data::TransactionGenerator::Make(config, "dist-test"));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static data::SimDataset* ds_;
};

data::SimDataset* PartitionTest::ds_ = nullptr;

TEST_F(PartitionTest, PicAssignsEveryNode) {
  Rng rng(3);
  auto clusters = PowerIterationClustering(ds_->graph, 16, &rng);
  ASSERT_EQ(static_cast<int64_t>(clusters.size()), ds_->graph.num_nodes());
  for (int c : clusters) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 16);
  }
}

TEST_F(PartitionTest, PicKeepsTightCommunitiesTogether) {
  // Nodes of the same connected component embed to the same PIC value, so
  // small communities should rarely be split. Check: for a sample of
  // transactions, their direct entity neighbours mostly share the cluster.
  Rng rng(4);
  auto clusters = PowerIterationClustering(ds_->graph, 32, &rng);
  int64_t same = 0, total = 0;
  auto txns = ds_->graph.LabeledTransactions();
  for (size_t i = 0; i < txns.size(); i += 7) {
    int32_t v = txns[i];
    for (int64_t e = ds_->graph.InDegreeBegin(v);
         e < ds_->graph.InDegreeEnd(v); ++e) {
      same += clusters[ds_->graph.neighbors()[e]] == clusters[v];
      ++total;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(same) / total, 0.6);
}

TEST_F(PartitionTest, WorkersReceiveBalancedNodeCounts) {
  Rng rng(5);
  auto worker_of = PartitionForWorkers(ds_->graph, 128, 8, &rng);
  std::vector<int64_t> load(8, 0);
  for (int w : worker_of) ++load[w];
  int64_t total = std::accumulate(load.begin(), load.end(), int64_t{0});
  EXPECT_EQ(total, ds_->graph.num_nodes());
  int64_t ideal = total / 8;
  for (int64_t l : load) {
    EXPECT_GT(l, ideal / 4);
    EXPECT_LT(l, ideal * 4);
  }
}

TEST_F(PartitionTest, InducedGraphPreservesLocalStructure) {
  Rng rng(6);
  auto worker_of = PartitionForWorkers(ds_->graph, 64, 4, &rng);
  std::vector<int32_t> nodes;
  for (int64_t v = 0; v < ds_->graph.num_nodes(); ++v) {
    if (worker_of[v] == 0) nodes.push_back(static_cast<int32_t>(v));
  }
  std::vector<int32_t> local_to_global;
  graph::HeteroGraph part =
      graph::InducedGraph(ds_->graph, nodes, &local_to_global);
  EXPECT_EQ(part.num_nodes(), static_cast<int64_t>(nodes.size()));
  EXPECT_LE(part.num_edges(), ds_->graph.num_edges());
  // Types, labels and features survive the projection.
  for (int64_t local = 0; local < part.num_nodes(); ++local) {
    int32_t global = local_to_global[local];
    EXPECT_EQ(part.node_type(static_cast<int32_t>(local)),
              ds_->graph.node_type(global));
    EXPECT_EQ(part.label(static_cast<int32_t>(local)),
              ds_->graph.label(global));
    if (ds_->graph.HasFeatures(global)) {
      ASSERT_TRUE(part.HasFeatures(static_cast<int32_t>(local)));
      EXPECT_EQ(part.Features(static_cast<int32_t>(local))[0],
                ds_->graph.Features(global)[0]);
    }
  }
}

core::XFraudDetector MakeReplica(int64_t feature_dim, uint64_t seed) {
  Rng rng(seed);
  core::DetectorConfig dc;
  dc.feature_dim = feature_dim;
  dc.hidden_dim = 16;
  dc.num_heads = 2;
  dc.num_layers = 2;
  return core::XFraudDetector(dc, &rng);
}

TEST_F(PartitionTest, DistributedTrainingLearnsAndKeepsReplicasInSync) {
  const int kappa = 4;
  std::vector<std::unique_ptr<core::XFraudDetector>> replicas;
  std::vector<core::GnnModel*> ptrs;
  for (int w = 0; w < kappa; ++w) {
    replicas.push_back(std::make_unique<core::XFraudDetector>(
        MakeReplica(ds_->graph.feature_dim(), 77)));
    ptrs.push_back(replicas.back().get());
  }
  sample::SageSampler sampler(2, 8);
  DistributedOptions options;
  options.num_workers = kappa;
  options.num_clusters = 32;
  options.train.max_epochs = 12;
  options.train.patience = 12;
  options.train.batch_size = 128;
  options.train.lr = 2e-3f;
  options.train.class_weights = {1.0f, 4.0f};
  DistributedTrainer trainer(ptrs, &sampler, options);
  DistributedResult result = trainer.Train(*ds_);

  // Learned something (the bar is modest: 4-way partitioned training on a
  // small graph converges slowly).
  EXPECT_GT(result.best_val_auc, 0.65);
  EXPECT_EQ(result.partition_nodes.size(), static_cast<size_t>(kappa));
  EXPECT_GT(result.edge_cut_fraction, 0.0);
  EXPECT_LT(result.edge_cut_fraction, 0.9);

  // DDP invariant: all replicas hold identical weights after training.
  auto p0 = replicas[0]->Parameters();
  for (int w = 1; w < kappa; ++w) {
    auto pw = replicas[w]->Parameters();
    ASSERT_EQ(p0.size(), pw.size());
    for (size_t i = 0; i < p0.size(); ++i) {
      const auto& a = p0[i].var.value();
      const auto& b = pw[i].var.value();
      ASSERT_TRUE(a.SameShape(b));
      for (int64_t j = 0; j < a.size(); ++j) {
        ASSERT_EQ(a.vec()[j], b.vec()[j])
            << "replica " << w << " diverged at " << p0[i].name;
      }
    }
  }
}

TEST_F(PartitionTest, MoreWorkersReduceSimulatedEpochTime) {
  sample::SageSampler sampler(2, 8);
  auto run = [&](int kappa) {
    std::vector<std::unique_ptr<core::XFraudDetector>> replicas;
    std::vector<core::GnnModel*> ptrs;
    for (int w = 0; w < kappa; ++w) {
      replicas.push_back(std::make_unique<core::XFraudDetector>(
          MakeReplica(ds_->graph.feature_dim(), 99)));
      ptrs.push_back(replicas.back().get());
    }
    DistributedOptions options;
    options.num_workers = kappa;
    options.num_clusters = 32;
    options.train.max_epochs = 2;
    options.train.patience = 2;
    options.train.batch_size = 128;
    DistributedTrainer trainer(ptrs, &sampler, options);
    return trainer.Train(*ds_).mean_simulated_epoch_seconds;
  };
  double two = run(2);
  double four = run(4);
  // Halving each worker's data should cut the simulated (slowest-worker)
  // epoch time noticeably; require at least 25% to stay timing-robust.
  EXPECT_LT(four, two * 0.75);
}

}  // namespace
}  // namespace xfraud::dist
