// Seeded cycle half: closes the kv <-> sample loop opened by cycle_a.h.
// The edge itself is same-layer (layering finding when not blessed).
#ifndef XFRAUD_TESTS_ANALYZE_FIXTURES_SAMPLE_CYCLE_B_H_
#define XFRAUD_TESTS_ANALYZE_FIXTURES_SAMPLE_CYCLE_B_H_

#include "xfraud/kv/cycle_a.h"

inline int SampleCycleB() { return 2; }

#endif  // XFRAUD_TESTS_ANALYZE_FIXTURES_SAMPLE_CYCLE_B_H_
