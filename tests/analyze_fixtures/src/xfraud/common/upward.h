// Seeded upward edge: common (layer 0) reaching into obs (layer 1) is a
// layering violation no matter what; the foundation depends on nothing.
#ifndef XFRAUD_TESTS_ANALYZE_FIXTURES_COMMON_UPWARD_H_
#define XFRAUD_TESTS_ANALYZE_FIXTURES_COMMON_UPWARD_H_

#include "xfraud/obs/registry.h"

inline int CommonUpward() { return 3; }

#endif  // XFRAUD_TESTS_ANALYZE_FIXTURES_COMMON_UPWARD_H_
