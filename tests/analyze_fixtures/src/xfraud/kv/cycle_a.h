// Seeded cycle half: kv -> sample is a same-layer edge (layering finding
// when not blessed) and cycle_b.h includes us back (include-cycle finding).
#ifndef XFRAUD_TESTS_ANALYZE_FIXTURES_KV_CYCLE_A_H_
#define XFRAUD_TESTS_ANALYZE_FIXTURES_KV_CYCLE_A_H_

#include "xfraud/sample/cycle_b.h"

inline int KvCycleA() { return 1; }

#endif  // XFRAUD_TESTS_ANALYZE_FIXTURES_KV_CYCLE_A_H_
