// Seeded discarded-Status call sites, with every sanctioned use shape
// alongside so the pass's precision is pinned by tests.

#include "xfraud/common/status.h"

namespace xfraud::graph {

struct Holder {
  Status Flush();
};

Status SaveThing(int x);
Result<int> CountThing(int x);

void Caller(Holder* h) {
  SaveThing(1);        // discarded: finding (line 16)
  CountThing(2);       // discarded Result: finding (line 17)
  h->Flush();          // discarded through a receiver: finding (line 18)
  (void)SaveThing(3);  // explicitly voided: fine
  Status kept = SaveThing(4);
  if (!SaveThing(5).ok()) return;
  // xfraud-analyze: allow(discarded-status)
  SaveThing(6);  // suppressed at the site: fine
  (void)kept;
}

Status Forward() { return SaveThing(7); }

// A name declared with conflicting return types is excluded from the pass
// rather than guessed at.
Status Reused(int x);
int Reused(char c);

void AmbiguousCaller() {
  Reused(8);  // not flagged: `Reused` is ambiguous
}

}  // namespace xfraud::graph
