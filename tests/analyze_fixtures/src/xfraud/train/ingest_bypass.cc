// Seeded ingest-tier bypasses: direct store mutation from a module that is
// neither kv, stream, nor fault, plus the sanctioned suppression. The store
// declarations deliberately span member, wrapper, and parameter forms.

#include <memory>
#include <vector>

namespace xfraud::train {

struct CheckpointSink {
  kv::KvStore* raw_store_;
  std::unique_ptr<kv::LogKvStore> wal_;
  std::vector<kv::MemKvStore*> cells_;
};

void Save(CheckpointSink* sink, kv::FeatureStore* features,
          const graph::HeteroGraph& g) {
  sink->raw_store_->Put("ckpt", "v1");  // finding (line 18)
  sink->wal_->Delete("ckpt");           // finding (line 19)
  sink->cells_[0]->Put("ckpt", "v1");   // subscripted: finding (line 20)
  features->Ingest(g);                  // finding (line 21)
}

void Load(CheckpointSink* sink) {
  std::string value;
  // Reads never bypass anything: Get on a store is clean.
  (void)sink->raw_store_->Get("ckpt", &value);
}

void AllowedSave(CheckpointSink* sink) {
  // Sanctioned one-time bulk load, documented at the site.
  // xfraud-analyze: allow(ingest-bypass)
  sink->raw_store_->Put("ckpt", "v2");
  sink->raw_store_->Put("ckpt", "v3");  // still a finding (line 34)
}

}  // namespace xfraud::train
