// Seeded unordered-container iteration: every way hash order can start
// flowing toward results, plus the sanctioned suppression.

#include <unordered_map>
#include <vector>

namespace xfraud::nn {

std::unordered_map<int, double> scores_;
std::vector<std::unordered_map<int, int>> buckets_;

double Total() {
  double t = 0.0;
  for (const auto& [k, v] : scores_) t += v;  // range-for: finding (line 14)
  return t;
}

int BucketSum() {
  auto& first = buckets_[0];  // alias of an unordered element
  int n = 0;
  for (const auto& [k, v] : first) n += v;        // finding (line 21)
  for (const auto& [k, v] : buckets_[1]) n += k;  // finding (line 22)
  return n;
}

std::vector<std::pair<int, double>> Snapshot() {
  // Iterator-pair traversal feeds the snapshot in hash order: finding
  // (line 29) — sorting afterwards is what makes the REAL tree's
  // equivalents safe, and those carry allow() comments saying so.
  return std::vector<std::pair<int, double>>(scores_.begin(), scores_.end());
}

double AllowedTotal() {
  double t = 0.0;
  // Order provably irrelevant: the loop only counts entries.
  // xfraud-analyze: allow(unordered-iter)
  for (const auto& [k, v] : scores_) t += 1.0;
  return t;
}

}  // namespace xfraud::nn
