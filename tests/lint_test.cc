// Tests for the xfraud_lint rule engine (tools/lint_core.*): every rule
// firing and passing on in-memory snippets, the allow() escape hatch, and a
// walk over the deliberately-broken fixture tree in tests/lint_fixtures/.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint_core.h"

namespace xfraud::lint {
namespace {

constexpr char kLibPath[] = "src/xfraud/fake/module.cc";
constexpr char kLibHeader[] = "src/xfraud/fake/module.h";

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

TEST(LintNondeterminism, FiresOnRandSrandTimeRandomDevice) {
  auto f = LintContent(kLibPath,
                       "int x = rand();\n"
                       "void s() { srand(7); }\n"
                       "long t = time(nullptr);\n"
                       "std::random_device rd;\n");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[1].line, 2);
  EXPECT_EQ(f[2].line, 3);
  EXPECT_EQ(f[3].line, 4);
  for (const auto& finding : f) EXPECT_EQ(finding.rule, "nondeterminism");
}

TEST(LintNondeterminism, ExemptInRngModule) {
  auto f = LintContent("src/xfraud/common/rng.cc", "std::random_device rd;\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintNondeterminism, IgnoresWordsContainingTokens) {
  auto f = LintContent(kLibPath,
                       "int q = operand(1);\n"
                       "double runtime(int x);\n"
                       "int brand_new = strand(2);\n");
  EXPECT_TRUE(f.empty()) << f[0].rule;
}

TEST(LintRawClock, FiresOnClockReadsAndSleeps) {
  auto f = LintContent(kLibPath,
                       "auto t = std::chrono::steady_clock::now();\n"
                       "auto u = std::chrono::system_clock::now();\n"
                       "std::this_thread::sleep_for(d);\n"
                       "std::this_thread::sleep_until(tp);\n");
  ASSERT_EQ(f.size(), 4u);
  for (const auto& finding : f) EXPECT_EQ(finding.rule, "no-raw-clock");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[3].line, 4);
}

TEST(LintRawClock, ExemptInCommonAndSilentOutsideLibrary) {
  EXPECT_TRUE(LintContent("src/xfraud/common/clock.cc",
                          "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
  EXPECT_TRUE(LintContent("src/xfraud/common/timer.h",
                          "#pragma once\n"
                          "using Clock = std::chrono::steady_clock;\n")
                  .empty());
  EXPECT_TRUE(LintContent("bench/bench_thing.cc",
                          "std::this_thread::sleep_for(d);\n")
                  .empty());
}

TEST(LintRawClock, InjectableClockAndTypeAliasesAreFine) {
  auto f = LintContent(kLibPath,
                       "double t = clock_->NowSeconds();\n"
                       "clock_->SleepFor(0.1);\n"
                       "using Clock = xfraud::Clock;\n"
                       "// steady_clock::now() mentioned in a comment\n");
  EXPECT_TRUE(f.empty()) << f[0].rule;
}

TEST(LintRawSocket, FiresOnSocketSyscallsInLibraryCode) {
  auto f = LintContent(kLibPath,
                       "int fd = socket(AF_UNIX, SOCK_STREAM, 0);\n"
                       "bind(fd, addr, len);\n"
                       "listen(fd, 4);\n"
                       "int p = accept(fd, nullptr, nullptr);\n"
                       "connect(p, addr, len);\n");
  ASSERT_EQ(f.size(), 5u);
  for (const auto& finding : f) EXPECT_EQ(finding.rule, "no-raw-socket");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[4].line, 5);
}

TEST(LintRawSocket, FiresOnDataPlaneSyscallsInServe) {
  // serve/ speaks frames through dist/socket_transport; even a bare
  // send/recv/poll on a smuggled fd is a layering break there.
  auto f = LintContent("src/xfraud/serve/router.cc",
                       "send(fd, buf, n, 0);\n"
                       "recv(fd, buf, n, 0);\n"
                       "poll(fds, 2, 100);\n"
                       "setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, len);\n"
                       "shutdown(fd, SHUT_RDWR);\n");
  ASSERT_EQ(f.size(), 5u);
  for (const auto& finding : f) EXPECT_EQ(finding.rule, "no-raw-socket");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[4].line, 5);
}

TEST(LintRawSocket, ExemptInDistAndSilentOutsideLibrary) {
  EXPECT_TRUE(LintContent("src/xfraud/dist/socket_transport.cc",
                          "int fd = socket(AF_UNIX, SOCK_STREAM, 0);\n")
                  .empty());
  EXPECT_TRUE(LintContent("src/xfraud/dist/rendezvous.cc",
                          "bind(fd, addr, len);\n")
                  .empty());
  EXPECT_TRUE(LintContent("tools/some_tool.cc",
                          "connect(fd, addr, len);\n")
                  .empty());
}

TEST(LintRawSocket, WrappersAndMentionsAreFine) {
  auto f = LintContent(kLibPath,
                       "auto c = SocketCommunicator::Connect(options, host);\n"
                       "store.BindShards(4);\n"
                       "// calls connect() under the hood\n"
                       "int disconnect_count = 0;\n"
                       "listener.Accept();\n");
  EXPECT_TRUE(f.empty()) << f[0].rule;
}

TEST(LintNakedNew, FiresInLibraryCode) {
  auto f = LintContent(kLibPath, "int* p = new int(3);\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "no-naked-new");
  EXPECT_EQ(f[0].line, 1);
}

TEST(LintNakedNew, FiresOnMallocFamily) {
  auto f = LintContent(kLibPath, "void* p = malloc(8); free(p);\n");
  ASSERT_EQ(f.size(), 1u);  // one finding per line
  EXPECT_EQ(f[0].rule, "no-naked-new");
}

TEST(LintNakedNew, SilentOutsideLibrary) {
  auto f = LintContent("bench/bench_thing.cc", "int* p = new int(3);\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintNakedNew, SilentInCommentsAndStrings) {
  auto f = LintContent(kLibPath,
                       "// a new beginning\n"
                       "const char* s = \"new shiny\";\n"
                       "/* new in block comment */\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintRawIo, FiresOnCoutAndPrintf) {
  auto f = LintContent(kLibPath,
                       "void p() { std::cout << 1; }\n"
                       "void q() { printf(\"x\"); }\n");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "no-raw-io");
  EXPECT_EQ(f[1].rule, "no-raw-io");
}

TEST(LintRawIo, SnprintfIsFine) {
  auto f = LintContent(kLibPath, "int n = snprintf(buf, 8, \"x\");\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintRawIo, ExemptInObsAndLogging) {
  EXPECT_TRUE(LintContent("src/xfraud/obs/trace.cc",
                          "fprintf(stderr, \"x\");\n")
                  .empty());
  EXPECT_TRUE(LintContent("src/xfraud/common/logging.cc",
                          "std::cout << 1;\n")
                  .empty());
}

TEST(LintDirectWrite, FiresOnOfstreamFopenAndRawOpen) {
  auto f = LintContent(kLibPath,
                       "std::ofstream out(path);\n"
                       "FILE* fp = fopen(\"x\", \"w\");\n"
                       "int fd = ::open(\"x\", O_WRONLY);\n");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[1].line, 2);
  EXPECT_EQ(f[2].line, 3);
  for (const auto& finding : f) EXPECT_EQ(finding.rule, "no-direct-write");
}

TEST(LintDirectWrite, ReadsAndMemberOpenAreFine) {
  auto f = LintContent(kLibPath,
                       "std::ifstream in(path);\n"
                       "in.open(path);\n"
                       "store->Open(path);\n");
  EXPECT_TRUE(f.empty()) << f[0].rule;
}

TEST(LintDirectWrite, ExemptInAtomicFileAndLogKv) {
  EXPECT_TRUE(LintContent("src/xfraud/common/atomic_file.cc",
                          "int fd = ::open(tmp.c_str(), O_WRONLY);\n")
                  .empty());
  EXPECT_TRUE(LintContent("src/xfraud/kv/log_kv.cc",
                          "int fd = ::open(path.c_str(), O_RDWR);\n")
                  .empty());
}

TEST(LintDirectWrite, SilentOutsideLibraryAndInComments) {
  EXPECT_TRUE(
      LintContent("tools/xfraud_cli.cc", "std::ofstream out(path);\n")
          .empty());
  EXPECT_TRUE(LintContent(kLibPath, "// mentions std::ofstream only\n")
                  .empty());
}

TEST(LintHeaderGuard, FiresOnUnguardedHeader) {
  auto f = LintContent(kLibHeader, "inline int f() { return 1; }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "header-guard");
  EXPECT_EQ(f[0].line, 1);
}

TEST(LintHeaderGuard, AcceptsIfndefGuardAndPragmaOnce) {
  EXPECT_TRUE(LintContent(kLibHeader,
                          "#ifndef A_H_\n#define A_H_\n#endif\n")
                  .empty());
  EXPECT_TRUE(LintContent(kLibHeader, "#pragma once\nint x;\n").empty());
}

TEST(LintHeaderGuard, NotAppliedToSourceFiles) {
  EXPECT_TRUE(LintContent(kLibPath, "int f() { return 1; }\n").empty());
}

TEST(LintUsingNamespace, FiresInHeaderOnly) {
  auto f = LintContent(kLibHeader,
                       "#pragma once\nusing namespace std;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "no-using-namespace");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_TRUE(LintContent(kLibPath, "using namespace std;\n").empty());
}

TEST(LintCatchAll, FiresOnSwallowedException) {
  auto f = LintContent(kLibPath,
                       "void f() {\n"
                       "  try { g(); } catch (...) {\n"
                       "    int ignored = 0;\n"
                       "  }\n"
                       "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "no-catch-all");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintCatchAll, RethrowCaptureAndConvertAreFine) {
  EXPECT_TRUE(LintContent(kLibPath,
                          "void f() { try { g(); } catch (...) { throw; } }\n")
                  .empty());
  EXPECT_TRUE(
      LintContent(kLibPath,
                  "void f() { try { g(); } catch (...) {\n"
                  "  eptr = std::current_exception(); } }\n")
          .empty());
  EXPECT_TRUE(
      LintContent(kLibPath,
                  "Status f() { try { g(); } catch (...) {\n"
                  "  return Status::Internal(\"boom\"); } return OK(); }\n")
          .empty());
}

TEST(LintCatchAll, TypedCatchIsFine) {
  EXPECT_TRUE(
      LintContent(kLibPath,
                  "void f() { try { g(); } catch (const E& e) { log(e); } }\n")
          .empty());
}

TEST(LintTodoIssue, FiresWithoutIssueRef) {
  auto f = LintContent(kLibPath,
                       "// TODO: someday\n"
                       "// FIXME soon\n"
                       "// TODO(#123): tracked, fine\n");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "todo-issue");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[1].line, 2);
}

TEST(LintAllow, SuppressesOnSameAndPreviousLine) {
  EXPECT_TRUE(
      LintContent(kLibPath,
                  "int* p = new int(1);  // xfraud-lint: allow(no-naked-new)\n")
          .empty());
  EXPECT_TRUE(LintContent(kLibPath,
                          "// xfraud-lint: allow(no-naked-new)\n"
                          "int* p = new int(1);\n")
                  .empty());
}

TEST(LintAllow, OnlySuppressesTheNamedRule) {
  auto f = LintContent(
      kLibPath, "int* p = new int(rand());  // xfraud-lint: allow(no-naked-new)\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "nondeterminism");
}

TEST(LintAllow, SupportsMultipleRules) {
  EXPECT_TRUE(
      LintContent(
          kLibPath,
          "// xfraud-lint: allow(no-naked-new, nondeterminism)\n"
          "int* p = new int(rand());\n")
          .empty());
}

TEST(LintScanner, RawStringContentsNeverReachCode) {
  // Default delimiter: contents would fire nondeterminism + no-raw-io.
  EXPECT_TRUE(
      LintContent(kLibPath, "const char* q = R\"(rand(); std::cout;)\";\n")
          .empty());
  // Custom delimiter: an embedded )" must not close the literal.
  EXPECT_TRUE(LintContent(kLibPath,
                          "const char* q = R\"xy(new int; )\" rand();)xy\";\n")
                  .empty());
  // Encoding prefixes.
  EXPECT_TRUE(
      LintContent(kLibPath, "auto q = u8R\"(time(nullptr))\";\n").empty());
  EXPECT_TRUE(
      LintContent(kLibPath, "auto q = LR\"(socket(1, 2, 3))\";\n").empty());
  // A trailing backslash in a raw string is literal, not an escape; the
  // literal still closes and code after it is scanned normally.
  auto f = LintContent(kLibPath, "auto q = R\"(\\)\"; int x = rand();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "nondeterminism");
}

TEST(LintScanner, PastedIdentifierIsNotARawString) {
  // FOOR"..." — the R belongs to an identifier, so this is an ordinary
  // string; its \" is an escape and the literal ends at the final quote.
  EXPECT_TRUE(
      LintContent(kLibPath, "auto q = FOOR\"(text)\" + std::string();\n")
          .empty());
  // Malformed d-char-seq (space before the open paren): not a raw string;
  // falls back to ordinary string scanning rather than eating the file.
  auto f = LintContent(kLibPath,
                       "auto q = R\"bad delim(x)\";\nint y = rand();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintScanner, SplitKeepsOffsetsAndSeparatesHalves) {
  SplitSource s = SplitCodeComments("int a; // note\nR\"(hid)\" int b;\n");
  EXPECT_EQ(s.code.size(), s.comments.size());
  EXPECT_NE(s.code.find("int a;"), std::string::npos);
  EXPECT_EQ(s.code.find("note"), std::string::npos);
  EXPECT_NE(s.comments.find("note"), std::string::npos);
  EXPECT_EQ(s.code.find("hid"), std::string::npos);
  EXPECT_EQ(s.comments.find("hid"), std::string::npos);
  EXPECT_NE(s.code.find("int b;"), std::string::npos);
}

TEST(LintScanner, ParseAllowDirectivesHonorsTag) {
  std::vector<std::string> comments = {
      " xfraud-analyze: allow(unordered-iter, layering)",
      " xfraud-lint: allow(no-naked-new)",
  };
  auto analyze = ParseAllowDirectives(comments, "xfraud-analyze:");
  ASSERT_EQ(analyze.size(), 2u);
  ASSERT_EQ(analyze[0].size(), 2u);
  EXPECT_EQ(analyze[0][0], "unordered-iter");
  EXPECT_EQ(analyze[0][1], "layering");
  EXPECT_TRUE(analyze[1].empty());
  auto lint = ParseAllowDirectives(comments, "xfraud-lint:");
  EXPECT_TRUE(lint[0].empty());
  ASSERT_EQ(lint[1].size(), 1u);
  EXPECT_EQ(lint[1][0], "no-naked-new");
}

TEST(LintJson, EscapesAndFormats) {
  std::vector<Finding> findings = {{"a\"b.cc", 3, "rule-x", "msg \\ done"}};
  std::string json = FindingsToJson(findings);
  EXPECT_NE(json.find("\"a\\\"b.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("msg \\\\ done"), std::string::npos);
  EXPECT_EQ(FindingsToJson({}), "[]\n");
}

#ifdef XFRAUD_LINT_FIXTURE_DIR
TEST(LintFixtures, BadTreeFiresEveryRuleGoodTreeClean) {
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(LintPaths({XFRAUD_LINT_FIXTURE_DIR}, &findings, &error))
      << error;

  std::vector<std::string> fired = Rules(findings);
  for (const std::string& rule : RuleIds()) {
    EXPECT_TRUE(std::find(fired.begin(), fired.end(), rule) != fired.end())
        << "fixture tree never fired rule " << rule;
  }
  for (const auto& f : findings) {
    EXPECT_EQ(f.file.find("good"), std::string::npos)
        << f.file << ":" << f.line << " " << f.rule
        << " fired in a good/ fixture";
  }
  // Spot-check file:line anchoring.
  bool saw_guard = false;
  for (const auto& f : findings) {
    if (f.rule == "header-guard") {
      saw_guard = true;
      EXPECT_NE(f.file.find("missing_guard.h"), std::string::npos);
      EXPECT_EQ(f.line, 1);
    }
    if (f.rule == "no-catch-all") {
      EXPECT_NE(f.file.find("catch_all.cc"), std::string::npos);
      EXPECT_EQ(f.line, 5);
    }
  }
  EXPECT_TRUE(saw_guard);
}

TEST(LintFixtures, NondeterminismFixtureLinesAreExact) {
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(LintPaths({std::string(XFRAUD_LINT_FIXTURE_DIR) +
                         "/src/xfraud/bad/nondeterminism.cc"},
                        &findings, &error))
      << error;
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].line, 7);   // srand
  EXPECT_EQ(findings[1].line, 8);   // rand
  EXPECT_EQ(findings[2].line, 9);   // time
  EXPECT_EQ(findings[3].line, 10);  // random_device
}
#endif  // XFRAUD_LINT_FIXTURE_DIR

}  // namespace
}  // namespace xfraud::lint
