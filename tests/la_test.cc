#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "xfraud/la/matrix.h"

namespace xfraud::la {
namespace {

TEST(MatrixTest, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, IdentityMultiplyIsNoop) {
  Matrix a(3, 3);
  double v = 1.0;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = v++;
  }
  Matrix out = a.Multiply(Matrix::Identity(3));
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(out(r, c), a(r, c));
  }
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(2, 4);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 4; ++c) a(r, c) = r * 10.0 + c;
  }
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.cols(), 2u);
  Matrix back = t.Transpose();
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(back(r, c), a(r, c));
  }
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  std::vector<double> v = {5, 6};
  auto out = a.MultiplyVector(v);
  EXPECT_DOUBLE_EQ(out[0], 17);
  EXPECT_DOUBLE_EQ(out[1], 39);
}

TEST(SolveTest, SolvesWellConditionedSystem) {
  Matrix a(3, 3);
  a(0, 0) = 4; a(0, 1) = 1; a(0, 2) = 0;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 1;
  a(2, 0) = 0; a(2, 1) = 1; a(2, 2) = 5;
  std::vector<double> x_true = {1.0, -2.0, 0.5};
  std::vector<double> b = a.MultiplyVector(x_true);
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, &x));
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(SolveTest, DetectsSingularMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;  // Rank 1.
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 1.0}, &x));
}

TEST(SolveTest, SolveNeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, {3.0, 7.0}, &x));
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(InvertTest, InverseTimesOriginalIsIdentity) {
  Matrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(0, 2) = 1;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 2;
  a(2, 0) = 1; a(2, 1) = 0; a(2, 2) = 0;
  Matrix inv;
  ASSERT_TRUE(Invert(a, &inv));
  Matrix prod = a.Multiply(inv);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3; a(1, 1) = 1; a(2, 2) = 2;
  std::vector<double> w;
  Matrix v;
  SymmetricEigen(a, &w, &v);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_NEAR(w[0], 1.0, 1e-10);
  EXPECT_NEAR(w[1], 2.0, 1e-10);
  EXPECT_NEAR(w[2], 3.0, 1e-10);
}

TEST(EigenTest, ReconstructsMatrix) {
  Matrix a(4, 4);
  // Symmetric random-ish matrix.
  double vals[4][4] = {{4, 1, 0.5, 0},
                       {1, 3, 1, 0.2},
                       {0.5, 1, 5, 0.7},
                       {0, 0.2, 0.7, 2}};
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) a(r, c) = vals[r][c];
  }
  std::vector<double> w;
  Matrix v;
  SymmetricEigen(a, &w, &v);
  // A == V diag(w) V^T.
  Matrix recon(4, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < 4; ++k) acc += v(i, k) * w[k] * v(j, k);
      recon(i, j) = acc;
    }
  }
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_NEAR(recon(r, c), a(r, c), 1e-8);
  }
}

TEST(EigenTest, EigenvectorsAreOrthonormal) {
  Matrix a(3, 3);
  double vals[3][3] = {{2, 1, 0}, {1, 2, 1}, {0, 1, 2}};
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = vals[r][c];
  }
  std::vector<double> w;
  Matrix v;
  SymmetricEigen(a, &w, &v);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < 3; ++k) dot += v(k, i) * v(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(PseudoInverseTest, PathGraphLaplacian) {
  // Laplacian of the path graph 0-1-2; singular with nullspace = ones.
  Matrix lap(3, 3);
  lap(0, 0) = 1; lap(0, 1) = -1;
  lap(1, 0) = -1; lap(1, 1) = 2; lap(1, 2) = -1;
  lap(2, 1) = -1; lap(2, 2) = 1;
  Matrix pinv = PseudoInverseSymmetric(lap);
  // L * L+ * L == L (Moore-Penrose identity).
  Matrix test = lap.Multiply(pinv).Multiply(lap);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_NEAR(test(r, c), lap(r, c), 1e-8);
  }
}

TEST(PowerIterationTest, FindsDominantEigenvector) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 0;
  a(1, 0) = 0; a(1, 1) = 1;
  auto v = PowerIteration(a);
  EXPECT_NEAR(std::fabs(v[0]), 1.0, 1e-6);
  EXPECT_NEAR(v[1], 0.0, 1e-6);
}

TEST(PowerIterationTest, CycleGraphUniform) {
  // Adjacency of a 4-cycle: dominant eigenvector is uniform.
  Matrix a(4, 4);
  int edges[4][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  for (auto& e : edges) {
    a(e[0], e[1]) = 1;
    a(e[1], e[0]) = 1;
  }
  auto v = PowerIteration(a, 5000, 1e-12);
  for (int i = 1; i < 4; ++i) EXPECT_NEAR(v[i], v[0], 1e-5);
}

TEST(ExpmTest, ZeroMatrixGivesIdentity) {
  Matrix z(3, 3);
  Matrix e = Expm(z);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(e(r, c), r == c ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(ExpmTest, DiagonalMatrix) {
  Matrix d(2, 2);
  d(0, 0) = 1.0;
  d(1, 1) = -2.0;
  Matrix e = Expm(d);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-10);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-10);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-12);
}

TEST(ExpmTest, MatchesEigendecompositionForSymmetric) {
  Matrix a(3, 3);
  double vals[3][3] = {{0, 1, 0}, {1, 0, 1}, {0, 1, 0}};
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = vals[r][c];
  }
  Matrix e = Expm(a);
  std::vector<double> w;
  Matrix v;
  SymmetricEigen(a, &w, &v);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < 3; ++k) {
        acc += v(i, k) * std::exp(w[k]) * v(j, k);
      }
      EXPECT_NEAR(e(i, j), acc, 1e-8);
    }
  }
}

TEST(MatrixTest, NormsAndScale) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 4;
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
  Matrix b = a.Scale(2.0);
  EXPECT_DOUBLE_EQ(b(0, 1), 8.0);
  Matrix c = b.Subtract(a);
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
  Matrix d = c.Add(a);
  EXPECT_DOUBLE_EQ(d(0, 1), 8.0);
}

}  // namespace
}  // namespace xfraud::la
