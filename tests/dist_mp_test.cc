// Multi-process distributed training tests. Every test here forks real OS
// processes (dist::RunProcessCluster), so the suite lives behind the
// MultiProcess prefix: the main xfraud_tests ctest entry filters it out and
// a dedicated xfraud_mp_tests entry runs it under a hard timeout (the
// tools/ci.sh --mode=mp leg; see tests/CMakeLists.txt).
//
// What must hold:
//  - a fault-free socket cluster reproduces the in-process simulation
//    bit-identically (same partition, same streams, same ascending-rank
//    reduction order => same losses and AUCs to the last bit);
//  - a SIGKILLed worker is a real process death, the launcher re-forks it,
//    it resumes from its CRC checkpoint, and the run converges to the same
//    final model as a run that was never killed.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/dist/distributed.h"
#include "xfraud/dist/launcher.h"
#include "xfraud/dist/worker.h"
#include "xfraud/fault/fault_plan.h"
#include "xfraud/sample/sampler.h"

namespace xfraud::dist {
namespace {

class MultiProcess : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 500;
    config.num_fraud_rings = 10;
    config.num_stolen_cards = 16;
    ds_ = new data::SimDataset(
        data::TransactionGenerator::Make(config, "dist-mp-test"));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  /// Short unique checkpoint dir (AF_UNIX socket paths live under it and
  /// are length-capped).
  static std::string MakeDir(const std::string& tag) {
    std::string dir =
        "/tmp/xf-mp-" + tag + "-" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    return dir;
  }

  static DistWorkerOptions BaseOptions(int world, int epochs,
                                       const std::string& dir) {
    DistWorkerOptions w;
    w.world = world;
    w.detector.feature_dim = ds_->graph.feature_dim();
    w.detector.hidden_dim = 16;
    w.detector.num_heads = 2;
    w.detector.num_layers = 2;
    w.model_seed = 77;
    w.dist.num_workers = world;
    w.dist.num_clusters = 32;
    w.dist.train.max_epochs = epochs;
    w.dist.train.patience = epochs;
    w.dist.train.batch_size = 128;
    w.dist.train.lr = 2e-3f;
    w.dist.train.class_weights = {1.0f, 4.0f};
    w.dist.train.seed = 77;
    w.checkpoint_dir = dir;
    w.op_timeout_s = 60.0;
    return w;
  }

  static std::string ReadFileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  static data::SimDataset* ds_;
};

data::SimDataset* MultiProcess::ds_ = nullptr;

/// The tentpole's parity criterion: swapping the shared-memory backend for
/// real processes on a socket ring changes NOTHING about the math. Same
/// seeds => same partition, same batches, same fold order => every epoch's
/// loss and AUC match to the last bit.
TEST_F(MultiProcess, SocketClusterMatchesInProcessBitIdentically) {
  const int world = 3;
  const int epochs = 2;
  std::string dir = MakeDir("parity");

  ProcessClusterOptions cluster;
  cluster.worker = BaseOptions(world, epochs, dir);
  cluster.overall_timeout_s = 240.0;
  auto report = RunProcessCluster(*ds_, cluster);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().restarts, 0);
  const DistributedResult& mp = report.value().result;

  // The in-process reference: identical replicas, identical options.
  std::vector<std::unique_ptr<core::XFraudDetector>> replicas;
  std::vector<core::GnnModel*> ptrs;
  for (int w = 0; w < world; ++w) {
    Rng rng(77);
    core::DetectorConfig dc;
    dc.feature_dim = ds_->graph.feature_dim();
    dc.hidden_dim = 16;
    dc.num_heads = 2;
    dc.num_layers = 2;
    replicas.push_back(std::make_unique<core::XFraudDetector>(dc, &rng));
    ptrs.push_back(replicas.back().get());
  }
  sample::SageSampler sampler(2, 8);
  DistributedTrainer trainer(ptrs, &sampler, cluster.worker.dist);
  DistributedResult inproc = trainer.Train(*ds_);

  ASSERT_EQ(mp.history.size(), inproc.history.size());
  for (size_t e = 0; e < mp.history.size(); ++e) {
    EXPECT_DOUBLE_EQ(mp.history[e].train_loss, inproc.history[e].train_loss)
        << "epoch " << e;
    EXPECT_DOUBLE_EQ(mp.history[e].val_auc, inproc.history[e].val_auc)
        << "epoch " << e;
    // The sync split: measured on the socket ring, modeled in-process —
    // never both.
    EXPECT_GT(mp.history[e].measured_comm_seconds, 0.0);
    EXPECT_EQ(mp.history[e].modeled_sync_seconds, 0.0);
    EXPECT_EQ(inproc.history[e].measured_comm_seconds, 0.0);
    EXPECT_GT(inproc.history[e].modeled_sync_seconds, 0.0);
  }
  EXPECT_DOUBLE_EQ(mp.best_val_auc, inproc.best_val_auc);
  EXPECT_EQ(mp.partition_nodes, inproc.partition_nodes);
  EXPECT_DOUBLE_EQ(mp.edge_cut_fraction, inproc.edge_cut_fraction);

  std::filesystem::remove_all(dir);
}

/// The tentpole's chaos criterion: kill_worker is a real SIGKILL of a real
/// process mid-epoch. The launcher observes the death, re-forks the rank,
/// the rank resumes from its checkpoint, survivors roll back, and the
/// cluster re-runs the epoch — converging to the byte-identical final model
/// of a run that never saw the kill.
TEST_F(MultiProcess, SigkilledWorkerRestartsAndMatchesFaultFreeRun) {
  const int world = 2;
  const int epochs = 2;

  std::string clean_dir = MakeDir("clean");
  ProcessClusterOptions clean;
  clean.worker = BaseOptions(world, epochs, clean_dir);
  clean.overall_timeout_s = 240.0;
  auto clean_report = RunProcessCluster(*ds_, clean);
  ASSERT_TRUE(clean_report.ok()) << clean_report.status().ToString();
  ASSERT_TRUE(clean_report.value().kills_observed.empty());

  std::string chaos_dir = MakeDir("chaos");
  ProcessClusterOptions chaos;
  chaos.worker = BaseOptions(world, epochs, chaos_dir);
  auto plan = fault::FaultPlan::Parse("kill_worker=1@1:1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  chaos.worker.fault_plan = plan.value();
  chaos.overall_timeout_s = 240.0;
  auto chaos_report = RunProcessCluster(*ds_, chaos);
  ASSERT_TRUE(chaos_report.ok()) << chaos_report.status().ToString();

  // The kill really happened, to the planned rank, and was really restarted.
  ASSERT_EQ(chaos_report.value().kills_observed.size(), 1u);
  EXPECT_EQ(chaos_report.value().kills_observed[0], 1);
  EXPECT_EQ(chaos_report.value().restarts, 1);

  // The epoch that saw the kill is flagged as a restart in the history.
  const DistributedResult& result = chaos_report.value().result;
  ASSERT_EQ(result.history.size(), static_cast<size_t>(epochs));
  EXPECT_TRUE(result.history[1].restarted);

  // Recovery is exact, not approximate: the final model's bytes match the
  // fault-free run's.
  EXPECT_EQ(ReadFileBytes(chaos_dir + "/final_model.ckpt"),
            ReadFileBytes(clean_dir + "/final_model.ckpt"));
  EXPECT_DOUBLE_EQ(result.best_val_auc,
                   clean_report.value().result.best_val_auc);

  std::filesystem::remove_all(clean_dir);
  std::filesystem::remove_all(chaos_dir);
}

/// Rank 0 hosts the rendezvous and owns the run's history, so killing it is
/// outside the failure model — the worker must refuse the plan up front
/// rather than deadlock the cluster.
TEST_F(MultiProcess, KillingRankZeroIsRejectedUpFront) {
  DistWorkerOptions w = BaseOptions(/*world=*/2, /*epochs=*/1,
                                    MakeDir("rank0"));
  auto plan = fault::FaultPlan::Parse("kill_worker=0@0:0");
  ASSERT_TRUE(plan.ok());
  w.fault_plan = plan.value();
  w.rendezvous = "unix:" + w.checkpoint_dir + "/rdzv.sock";
  auto result = RunDistWorker(*ds_, w);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
}

}  // namespace
}  // namespace xfraud::dist
