#include <gtest/gtest.h>

#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/train/trainer.h"

namespace xfraud::train {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 300;
    config.num_fraud_rings = 8;
    config.num_stolen_cards = 12;
    ds_ = new data::SimDataset(
        data::TransactionGenerator::Make(config, "trainer"));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  static core::XFraudDetector MakeModel(uint64_t seed) {
    Rng rng(seed);
    core::DetectorConfig dc;
    dc.feature_dim = ds_->graph.feature_dim();
    dc.hidden_dim = 16;
    dc.num_heads = 2;
    dc.num_layers = 2;
    return core::XFraudDetector(dc, &rng);
  }

  static data::SimDataset* ds_;
};

data::SimDataset* TrainerTest::ds_ = nullptr;

TEST_F(TrainerTest, FraudProbabilitiesAreSoftmaxColumnOne) {
  nn::Tensor logits(3, 2);
  logits.At(0, 0) = 0.0f;
  logits.At(0, 1) = 0.0f;   // p = 0.5
  logits.At(1, 0) = -10.0f;
  logits.At(1, 1) = 10.0f;  // p ~ 1
  logits.At(2, 0) = 10.0f;
  logits.At(2, 1) = -10.0f;  // p ~ 0
  auto probs = FraudProbabilities(nn::Var(logits, false));
  EXPECT_NEAR(probs[0], 0.5, 1e-6);
  EXPECT_GT(probs[1], 0.999);
  EXPECT_LT(probs[2], 0.001);
}

TEST_F(TrainerTest, HistoryRecordsEveryEpoch) {
  auto model = MakeModel(1);
  sample::SageSampler sampler(2, 8);
  TrainOptions opts;
  opts.max_epochs = 3;
  opts.patience = 3;
  opts.batch_size = 128;
  Trainer trainer(&model, &sampler, opts);
  auto result = trainer.Train(*ds_);
  ASSERT_EQ(result.history.size(), 3u);
  for (int e = 0; e < 3; ++e) {
    EXPECT_EQ(result.history[e].epoch, e);
    EXPECT_GT(result.history[e].seconds, 0.0);
    EXPECT_GT(result.history[e].train_loss, 0.0);
  }
  EXPECT_GT(result.mean_epoch_seconds, 0.0);
  EXPECT_GE(result.best_epoch, 0);
}

TEST_F(TrainerTest, EarlyStoppingHaltsOnPlateau) {
  // Zero learning rate: val AUC never improves after epoch 0, so training
  // must stop after `patience` stale epochs.
  auto model = MakeModel(2);
  sample::SageSampler sampler(2, 8);
  TrainOptions opts;
  opts.max_epochs = 50;
  opts.patience = 2;
  opts.lr = 0.0f;
  opts.batch_size = 256;
  Trainer trainer(&model, &sampler, opts);
  auto result = trainer.Train(*ds_);
  // Epoch 0 sets the best; epochs 1 and 2 are stale -> stop at 3 epochs.
  EXPECT_LE(result.history.size(), 4u);
}

TEST_F(TrainerTest, EvaluateCoversAllRequestedNodes) {
  auto model = MakeModel(3);
  sample::SageSampler sampler(2, 8);
  Trainer trainer(&model, &sampler, TrainOptions{});
  auto eval = trainer.Evaluate(ds_->graph, ds_->test_nodes, 64);
  EXPECT_EQ(eval.scores.size(), ds_->test_nodes.size());
  EXPECT_EQ(eval.labels.size(), ds_->test_nodes.size());
  for (double s : eval.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  for (size_t i = 0; i < ds_->test_nodes.size(); ++i) {
    EXPECT_EQ(eval.labels[i], ds_->graph.label(ds_->test_nodes[i]));
  }
  EXPECT_GT(eval.secs_per_batch_mean, 0.0);
}

TEST_F(TrainerTest, TrainStepReducesLossOnFixedBatch) {
  auto model = MakeModel(4);
  sample::SageSampler sampler(2, 8);
  TrainOptions opts;
  opts.lr = 5e-3f;
  Trainer trainer(&model, &sampler, opts);
  Rng rng(5);
  std::vector<int32_t> seeds(ds_->train_nodes.begin(),
                             ds_->train_nodes.begin() + 64);
  auto batch = sampler.SampleBatch(ds_->graph, seeds, &rng);
  double first = trainer.TrainStep(batch);
  double last = first;
  for (int i = 0; i < 30; ++i) last = trainer.TrainStep(batch);
  EXPECT_LT(last, first * 0.8) << "overfitting a fixed batch must work";
}

}  // namespace
}  // namespace xfraud::train
