// Centrality measures verified against closed-form values on canonical
// graphs (paths, stars, cycles, complete graphs) and cross-checked against
// each other where theory says they must agree.

#include <cmath>

#include <gtest/gtest.h>

#include "xfraud/explain/centrality.h"

namespace xfraud::explain {
namespace {

SimpleGraph Path(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return SimpleGraph::FromEdges(n, std::move(edges));
}

SimpleGraph Star(int leaves) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return SimpleGraph::FromEdges(leaves + 1, std::move(edges));
}

SimpleGraph Cycle(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return SimpleGraph::FromEdges(n, std::move(edges));
}

SimpleGraph Complete(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return SimpleGraph::FromEdges(n, std::move(edges));
}

TEST(DegreeTest, StarGraph) {
  auto c = DegreeCentrality(Star(4));
  EXPECT_DOUBLE_EQ(c[0], 1.0);          // center: 4/(5-1)
  EXPECT_DOUBLE_EQ(c[1], 0.25);         // leaf: 1/4
}

TEST(ClosenessTest, PathGraph) {
  // Path 0-1-2: closeness(1) = 2/(1+1) = 1; closeness(0) = 2/(1+2) = 2/3.
  auto c = ClosenessCentrality(Path(3));
  EXPECT_NEAR(c[1], 1.0, 1e-12);
  EXPECT_NEAR(c[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c[2], 2.0 / 3.0, 1e-12);
}

TEST(ClosenessTest, CompleteGraphAllOne) {
  auto c = ClosenessCentrality(Complete(5));
  for (double x : c) EXPECT_NEAR(x, 1.0, 1e-12);
}

TEST(HarmonicTest, PathGraph) {
  // Path 0-1-2: harmonic(0) = 1/1 + 1/2 = 1.5, harmonic(1) = 2.
  auto c = HarmonicCentrality(Path(3));
  EXPECT_NEAR(c[0], 1.5, 1e-12);
  EXPECT_NEAR(c[1], 2.0, 1e-12);
}

TEST(BetweennessTest, PathGraph) {
  // Path of 5: betweenness (normalized by (n-1)(n-2)/2=6) of middle node 2:
  // pairs through it: (0,3),(0,4),(1,3),(1,4) => 4/6.
  auto c = BetweennessCentrality(Path(5));
  EXPECT_NEAR(c[2], 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(c[0], 0.0, 1e-12);
  EXPECT_NEAR(c[1], 3.0 / 6.0, 1e-12);
}

TEST(BetweennessTest, StarCenterIsOne) {
  auto c = BetweennessCentrality(Star(5));
  EXPECT_NEAR(c[0], 1.0, 1e-12);
  for (int i = 1; i <= 5; ++i) EXPECT_NEAR(c[i], 0.0, 1e-12);
}

TEST(BetweennessTest, CycleIsUniform) {
  auto c = BetweennessCentrality(Cycle(6));
  for (int i = 1; i < 6; ++i) EXPECT_NEAR(c[i], c[0], 1e-12);
}

TEST(LoadTest, EqualsBetweennessOnTreeLikeGraphs) {
  // On graphs where all shortest paths are unique (trees), load equals
  // betweenness exactly.
  for (auto g : {Path(6), Star(5)}) {
    auto load = LoadCentrality(g);
    auto betw = BetweennessCentrality(g);
    for (int v = 0; v < g.n; ++v) EXPECT_NEAR(load[v], betw[v], 1e-12);
  }
}

TEST(EigenvectorTest, StarCenterDominates) {
  auto c = EigenvectorCentrality(Star(4));
  for (int i = 1; i <= 4; ++i) {
    EXPECT_GT(c[0], c[i]);
    EXPECT_NEAR(c[i], c[1], 1e-8);
  }
}

TEST(EigenvectorTest, CompleteGraphUniform) {
  auto c = EigenvectorCentrality(Complete(4));
  for (int i = 1; i < 4; ++i) EXPECT_NEAR(c[i], c[0], 1e-8);
  // Unit norm.
  double norm = 0.0;
  for (double x : c) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-8);
}

TEST(SubgraphCentralityTest, SingleEdge) {
  // For K2, diag(expm(A)) = cosh(1).
  auto c = SubgraphCentrality(Path(2));
  EXPECT_NEAR(c[0], std::cosh(1.0), 1e-9);
  EXPECT_NEAR(c[1], std::cosh(1.0), 1e-9);
}

TEST(SubgraphCentralityTest, StarCenterLargest) {
  auto c = SubgraphCentrality(Star(4));
  for (int i = 1; i <= 4; ++i) EXPECT_GT(c[0], c[i]);
}

TEST(CommunicabilityBetweennessTest, StarCenterNearOne) {
  // Removing the star's center destroys all communicability between leaves.
  auto c = CommunicabilityBetweenness(Star(4));
  EXPECT_GT(c[0], 0.9);
  for (int i = 1; i <= 4; ++i) EXPECT_LT(c[i], c[0]);
}

TEST(CurrentFlowBetweennessTest, PathMatchesBetweenness) {
  // On a path all current flows along the single route, so current-flow
  // betweenness equals shortest-path betweenness.
  auto cf = CurrentFlowBetweenness(Path(5));
  auto sp = BetweennessCentrality(Path(5));
  for (int v = 0; v < 5; ++v) EXPECT_NEAR(cf[v], sp[v], 1e-8);
}

TEST(CurrentFlowBetweennessTest, CycleUniform) {
  auto cf = CurrentFlowBetweenness(Cycle(5));
  for (int v = 1; v < 5; ++v) EXPECT_NEAR(cf[v], cf[0], 1e-8);
}

TEST(CurrentFlowClosenessTest, CompleteUniformAndOrdered) {
  auto cc = CurrentFlowCloseness(Complete(4));
  for (int v = 1; v < 4; ++v) EXPECT_NEAR(cc[v], cc[0], 1e-8);
  // Path: middle node has higher current-flow closeness than the ends.
  auto path_cc = CurrentFlowCloseness(Path(5));
  EXPECT_GT(path_cc[2], path_cc[0]);
}

TEST(ApproxCurrentFlowTest, ConvergesToExact) {
  SimpleGraph g = Cycle(7);
  Rng rng(3);
  auto exact = CurrentFlowBetweenness(g);
  auto approx = ApproxCurrentFlowBetweenness(g, &rng, 4000);
  for (int v = 0; v < g.n; ++v) EXPECT_NEAR(approx[v], exact[v], 0.05);
}

TEST(EdgeBetweennessTest, PathGraph) {
  // Path 0-1-2-3 normalized by n(n-1)/2=6: edge (1,2) carries pairs
  // (0,2),(0,3),(1,2),(1,3) => 4/6.
  auto c = EdgeBetweenness(Path(4));
  EXPECT_NEAR(c[1], 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(c[0], 3.0 / 6.0, 1e-12);  // (0,1),(0,2),(0,3)
}

TEST(EdgeBetweennessTest, StarUniform) {
  auto c = EdgeBetweenness(Star(4));
  for (size_t e = 1; e < c.size(); ++e) EXPECT_NEAR(c[e], c[0], 1e-12);
}

TEST(EdgeLoadTest, PathCarriesAllPairs) {
  // Unnormalized edge load on path of 3: edge (0,1) carries packets
  // 0->1, 0->2, 1->0, 2->0 = 4.
  auto c = EdgeLoad(Path(3));
  EXPECT_NEAR(c[0], 4.0, 1e-12);
  EXPECT_NEAR(c[1], 4.0, 1e-12);
}

TEST(MeasureSuiteTest, AllThirteenProduceEdgeWeights) {
  // A small community-like graph: star + chain mix.
  std::vector<graph::UndirectedEdge> edges;
  auto add = [&edges](int u, int v) {
    graph::UndirectedEdge e;
    e.u = u;
    e.v = v;
    edges.push_back(e);
  };
  add(0, 1); add(0, 2); add(0, 3); add(3, 4); add(4, 5); add(1, 2);
  Rng rng(5);
  for (int m = 0; m < kNumCentralityMeasures; ++m) {
    auto weights = EdgeWeightsByCentrality(
        edges, 6, static_cast<CentralityMeasure>(m), &rng);
    ASSERT_EQ(weights.size(), edges.size())
        << CentralityMeasureName(static_cast<CentralityMeasure>(m));
    bool any_nonzero = false;
    for (double w : weights) {
      EXPECT_TRUE(std::isfinite(w));
      any_nonzero = any_nonzero || w != 0.0;
    }
    EXPECT_TRUE(any_nonzero)
        << CentralityMeasureName(static_cast<CentralityMeasure>(m));
  }
}

TEST(MeasureSuiteTest, NamesAreUniqueAndMatchPaperTable1) {
  std::set<std::string> names;
  for (int m = 0; m < kNumCentralityMeasures; ++m) {
    names.insert(CentralityMeasureName(static_cast<CentralityMeasure>(m)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumCentralityMeasures));
  EXPECT_TRUE(names.count("edge betweenness"));
  EXPECT_TRUE(names.count("approximate current flow betweenness"));
  EXPECT_TRUE(names.count("subgraph"));
}

TEST(SimpleGraphTest, FromEdgesBuildsAdjacency) {
  SimpleGraph g = Path(3);
  ASSERT_EQ(g.adj.size(), 3u);
  EXPECT_EQ(g.adj[1].size(), 2u);
  EXPECT_EQ(g.adj[0].size(), 1u);
  EXPECT_EQ(g.num_edges(), 2);
}

}  // namespace
}  // namespace xfraud::explain
