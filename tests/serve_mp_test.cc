// Multi-process serving tier tests (DESIGN.md §16). The ServeWire suite is
// pure codec/fault-grammar coverage and runs in the main xfraud_tests
// binary; the MultiProcessServe suite forks real shard-server processes
// (serve::Supervisor) and therefore lives behind the MultiProcess prefix —
// the dedicated xfraud_mp_tests ctest entry runs it under a hard timeout
// (tools/ci.sh --mode=mp).
//
// What must hold:
//  - socket-transport scores are bit-identical to a single-process run over
//    the same WAL content, model seed, and service seed;
//  - a shard server SIGKILLed mid-load is respawned by the supervisor,
//    recovers from its WAL at the pinned epoch, and every non-shed request
//    still scores bit-identically — and replaying the printed FaultPlan
//    reproduces the exact same outcome;
//  - a request whose deadline expires in flight is rejected server-side
//    with DeadlineExceeded, never scored stale;
//  - a payload bit flip on the wire is detected by the frame CRC, answered
//    with Corruption, and transparently retried by the router.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "xfraud/common/frame.h"
#include "xfraud/common/timer.h"
#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/dist/socket_transport.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/fault/fault_plan.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/kv/log_kv.h"
#include "xfraud/obs/registry.h"
#include "xfraud/serve/router.h"
#include "xfraud/serve/scoring_service.h"
#include "xfraud/serve/supervisor.h"
#include "xfraud/serve/wire.h"

namespace xfraud::serve {
namespace {

// ---- ServeWire: payload codecs, frame CRC, fault grammar (no processes) ---

TEST(ServeWire, ScoreRequestRoundTrips) {
  ScoreRequestWire req;
  req.epoch = 7;
  req.deadline_s = 0.125;
  req.txn_node = -42;
  const std::string bytes = EncodeScoreRequest(req);
  auto decoded = DecodeScoreRequest(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().epoch, 7u);
  EXPECT_NEAR(decoded.value().deadline_s, 0.125, 1e-6);
  EXPECT_EQ(decoded.value().txn_node, -42);

  // No deadline survives as "no deadline", not as zero.
  req.deadline_s = -1.0;
  const std::string unlimited = EncodeScoreRequest(req);
  EXPECT_LT(DecodeScoreRequest(unlimited.data(), unlimited.size())
                .value()
                .deadline_s,
            0.0);
  // A spent budget survives as exactly zero (the server must reject it).
  req.deadline_s = 0.0;
  const std::string spent = EncodeScoreRequest(req);
  EXPECT_EQ(
      DecodeScoreRequest(spent.data(), spent.size()).value().deadline_s, 0.0);

  EXPECT_TRUE(DecodeScoreRequest(bytes.data(), bytes.size() - 1)
                  .status()
                  .IsCorruption());
}

TEST(ServeWire, ScoreReplyRoundTripsBitExactly) {
  ScoreReplyWire reply;
  reply.response.score = 0.123456789012345678;  // exercises full mantissa
  reply.response.degraded = true;
  reply.response.from_prefilter = false;
  reply.response.imputed_rows = 3;
  reply.response.latency_s = 0.011;
  reply.response.deadline_slack_s = 0.042;
  const std::string bytes = EncodeScoreReply(reply);
  auto decoded = DecodeScoreReply(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value().status.ok());
  EXPECT_EQ(decoded.value().response.score, reply.response.score);
  EXPECT_TRUE(decoded.value().response.degraded);
  EXPECT_FALSE(decoded.value().response.from_prefilter);
  EXPECT_EQ(decoded.value().response.imputed_rows, 3);
  EXPECT_EQ(decoded.value().response.latency_s, reply.response.latency_s);

  ScoreReplyWire error;
  error.status = Status::Unavailable("shed under load");
  const std::string err_bytes = EncodeScoreReply(error);
  auto err = DecodeScoreReply(err_bytes.data(), err_bytes.size());
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err.value().status.IsUnavailable());
  EXPECT_EQ(err.value().status.message(), "shed under load");

  // Truncation and length/message disagreement are Corruption, not UB.
  EXPECT_TRUE(DecodeScoreReply(err_bytes.data(), err_bytes.size() - 2)
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(DecodeScoreReply(err_bytes.data(), 10).status().IsCorruption());
}

TEST(ServeWire, HealthRoundTrips) {
  HealthWire health;
  health.generation = 3;
  health.requests_served = 1234;
  const std::string bytes = EncodeHealth(health);
  auto decoded = DecodeHealth(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().generation, 3u);
  EXPECT_EQ(decoded.value().requests_served, 1234);
  EXPECT_TRUE(DecodeHealth(bytes.data(), 3).status().IsCorruption());
}

TEST(ServeWire, ServingFrameTypesEncodeAndUnknownTypeRejected) {
  for (FrameType type : {FrameType::kScoreRequest, FrameType::kScoreReply,
                         FrameType::kHealth, FrameType::kDrain}) {
    FrameHeader header;
    header.type = type;
    header.rank = 5;
    header.seq = 99;
    unsigned char buf[kFrameHeaderBytes];
    EncodeFrameHeader(header, buf);
    auto decoded = DecodeFrameHeader(buf);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, type);
    EXPECT_EQ(decoded.value().seq, 99u);
  }
  FrameHeader beyond;
  beyond.type = static_cast<FrameType>(13);  // one past kDrain
  unsigned char buf[kFrameHeaderBytes];
  EncodeFrameHeader(beyond, buf);
  EXPECT_TRUE(DecodeFrameHeader(buf).status().IsCorruption());
}

TEST(ServeWire, PayloadCrcDetectsEverySingleBitFlip) {
  const std::string payload = "the bytes the sender sealed";
  FrameHeader header;
  header.type = FrameType::kScoreRequest;
  SealFramePayload(&header, payload.data(), payload.size());
  ASSERT_TRUE(
      VerifyFramePayload(header, payload.data(), payload.size()).ok());

  // Flip each bit of a few bytes scattered through the payload.
  for (size_t byte : {size_t{0}, payload.size() / 2, payload.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = payload;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      EXPECT_TRUE(VerifyFramePayload(header, damaged.data(), damaged.size())
                      .IsCorruption())
          << "byte " << byte << " bit " << bit;
    }
  }
  // Length disagreement is Corruption too, even with a "matching" prefix.
  EXPECT_TRUE(VerifyFramePayload(header, payload.data(), payload.size() - 1)
                  .IsCorruption());
  // Empty payloads carry (and verify) the CRC of nothing.
  FrameHeader empty;
  SealFramePayload(&empty, nullptr, 0);
  EXPECT_TRUE(VerifyFramePayload(empty, nullptr, 0).ok());
}

TEST(ServeWire, FaultPlanServerGrammarRoundTrips) {
  auto plan = fault::FaultPlan::Parse("kill_server=1@3,corrupt_frame=5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().kill_server, 1);
  EXPECT_EQ(plan.value().kill_server_request, 3);
  EXPECT_EQ(plan.value().corrupt_frame, 5);
  EXPECT_TRUE(plan.value().any());
  EXPECT_TRUE(plan.value().has_server_faults());

  // The printed plan replays: Parse(ToString) is the identity.
  auto replayed = fault::FaultPlan::Parse(plan.value().ToString());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().ToString(), plan.value().ToString());

  // Default request index is 0 (die on the very first score request).
  auto bare = fault::FaultPlan::Parse("kill_server=2");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value().kill_server, 2);
  EXPECT_EQ(bare.value().kill_server_request, 0);

  EXPECT_FALSE(fault::FaultPlan::Parse("kill_server=-1").ok());
  EXPECT_FALSE(fault::FaultPlan::Parse("corrupt_frame=-2").ok());
}

TEST(ServeWire, InjectorWireFaultsAreDeterministic) {
  fault::FaultPlan plan =
      fault::FaultPlan::Parse("seed=9,corrupt_frame=2").value();
  fault::FaultInjector injector(plan);
  EXPECT_EQ(injector.NextWireFrame(), 0);
  EXPECT_FALSE(injector.ShouldCorruptFrame(0));
  EXPECT_FALSE(injector.ShouldCorruptFrame(1));
  EXPECT_TRUE(injector.ShouldCorruptFrame(2));
  EXPECT_EQ(injector.injected_frame_corruptions(), 1);

  // The flipped byte is a pure function of (plan seed, frame index).
  const int64_t byte = injector.CorruptByteFor(2, 20);
  EXPECT_GE(byte, 0);
  EXPECT_LT(byte, 20);
  fault::FaultInjector replay(plan);
  EXPECT_EQ(replay.CorruptByteFor(2, 20), byte);
  EXPECT_EQ(injector.CorruptByteFor(2, 0), -1);  // nothing to flip

  fault::FaultPlan kill = fault::FaultPlan::Parse("kill_server=1@4").value();
  fault::FaultInjector kills(kill);
  EXPECT_TRUE(kills.ShouldKillServer(1, 4));
  EXPECT_FALSE(kills.ShouldKillServer(1, 3));
  EXPECT_FALSE(kills.ShouldKillServer(0, 4));
}

TEST(ServeWire, RouterClampsRetryBackoffToWireDeadline) {
  // Every replica endpoint is a dead unix path: each attempt fails its dial
  // and the router must give up when the request budget is spent — not
  // after max_attempts * max_backoff of sleeping.
  RouterOptions options;
  options.num_shards = 1;
  options.num_replicas = 2;
  dist::Endpoint dead;
  dead.kind = dist::Endpoint::Kind::kUnix;
  dead.path = "/tmp/xf-serve-dead-" + std::to_string(::getpid()) + ".sock";
  options.endpoints = {dead, dead};
  options.deadline_s = 0.3;
  options.connect_timeout_s = 0.05;
  options.max_attempts = 100;
  Router router(options);
  WallTimer timer;
  auto scored = router.Score(/*request_id=*/1, /*txn_node=*/0);
  ASSERT_FALSE(scored.ok());
  EXPECT_TRUE(scored.status().IsDeadlineExceeded())
      << scored.status().ToString();
  EXPECT_LT(timer.ElapsedSeconds(), 2.0);
}

// ---- MultiProcessServe: real processes, real SIGKILLs ---------------------

class MultiProcessServe : public ::testing::Test {
 protected:
  static constexpr uint64_t kModelSeed = 77;

  static void SetUpTestSuite() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 400;
    config.num_fraud_rings = 8;
    config.num_stolen_cards = 12;
    ds_ = new data::SimDataset(
        data::TransactionGenerator::Make(config, "serve-mp-test"));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  static std::string MakeDir(const std::string& tag) {
    std::string dir =
        "/tmp/xf-smp-" + tag + "-" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    return dir;
  }

  static core::DetectorConfig DetectorCfg() {
    core::DetectorConfig config;
    config.feature_dim = ds_->graph.feature_dim();
    config.hidden_dim = 16;
    config.num_heads = 2;
    config.num_layers = 2;
    return config;
  }

  static ServiceOptions ServiceCfg() {
    ServiceOptions service;
    service.hops = 2;
    service.fanout = 8;
    service.deadline_s = 5.0;
    return service;
  }

  static SupervisorOptions TierOptions(const std::string& dir, int shards,
                                       int replicas,
                                       const fault::FaultPlan& plan) {
    SupervisorOptions options;
    options.dir = dir;
    options.num_shards = shards;
    options.num_replicas = replicas;
    options.detector = DetectorCfg();
    options.model_seed = kModelSeed;
    options.service = ServiceCfg();
    options.plan = plan;
    return options;
  }

  /// The single-process reference: one WAL with the same content, the same
  /// seed-initialized detector, the same service options — everything a
  /// shard server does, minus the processes and the wire.
  static std::vector<double> ReferenceScores(
      const std::vector<int32_t>& nodes) {
    std::string dir = MakeDir("ref");
    std::filesystem::create_directories(dir);
    auto store = kv::LogKvStore::Open(dir + "/cell.log");
    EXPECT_TRUE(store.ok());
    kv::FeatureStore features(store.value().get());
    EXPECT_TRUE(features.Ingest(ds_->graph).ok());
    auto epoch = store.value()->PublishEpoch();
    EXPECT_TRUE(epoch.ok());
    Rng model_rng(kModelSeed);
    core::XFraudDetector detector(DetectorCfg(), &model_rng);
    ScoringService service(&detector, &features, ServiceCfg());
    std::vector<double> scores;
    for (size_t i = 0; i < nodes.size(); ++i) {
      auto resp = service.ScoreAt(static_cast<int64_t>(i), nodes[i],
                                  /*deadline_s=*/5.0, epoch.value());
      EXPECT_TRUE(resp.ok()) << resp.status().ToString();
      scores.push_back(resp.ok() ? resp.value().score : -1.0);
    }
    std::filesystem::remove_all(dir);
    return scores;
  }

  static std::vector<int32_t> RequestNodes(size_t n) {
    auto labeled = ds_->graph.LabeledTransactions();
    EXPECT_FALSE(labeled.empty());
    std::vector<int32_t> nodes;
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(labeled[i % labeled.size()]);
    }
    return nodes;
  }

  static data::SimDataset* ds_;
};

data::SimDataset* MultiProcessServe::ds_ = nullptr;

TEST_F(MultiProcessServe, SocketTierMatchesSingleProcessBitIdentically) {
  std::string dir = MakeDir("parity");
  auto sup = Supervisor::Start(ds_->graph,
                               TierOptions(dir, 2, 2, fault::FaultPlan{}));
  ASSERT_TRUE(sup.ok()) << sup.status().ToString();

  const std::vector<int32_t> nodes = RequestNodes(16);
  const std::vector<double> want = ReferenceScores(nodes);

  Router router(sup.value()->MakeRouterOptions());
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto resp = router.Score(static_cast<int64_t>(i), nodes[i]);
    ASSERT_TRUE(resp.ok()) << "request " << i << ": "
                           << resp.status().ToString();
    // Bit-identical, not approximately equal: the score crossed the wire as
    // its IEEE-754 bit pattern and the server computed the same pure
    // function of (WAL at epoch, model seed, service seed, request id).
    EXPECT_EQ(resp.value().score, want[i]) << "request " << i;
  }
  EXPECT_EQ(sup.value()->restarts(), 0);
  EXPECT_TRUE(sup.value()->Stop().ok());
  std::filesystem::remove_all(dir);
}

TEST_F(MultiProcessServe, KillServerChaosKeepsScoresBitIdentical) {
  // Replica-0 of EVERY shard SIGKILLs itself on its 3rd score request —
  // a real process death mid-load. The router fails over to replica 1; the
  // supervisor respawns the primary (suppress_kill) from its WAL.
  fault::FaultPlan plan =
      fault::FaultPlan::Parse("kill_server=0@2").value();
  const std::vector<int32_t> nodes = RequestNodes(24);
  const std::vector<double> want = ReferenceScores(nodes);

  auto run_tier = [&](const std::string& tag, const fault::FaultPlan& p) {
    std::string dir = MakeDir(tag);
    auto sup = Supervisor::Start(ds_->graph, TierOptions(dir, 2, 2, p));
    EXPECT_TRUE(sup.ok()) << sup.status().ToString();
    Router router(sup.value()->MakeRouterOptions());
    std::vector<double> scores;
    for (size_t i = 0; i < nodes.size(); ++i) {
      auto resp = router.Score(static_cast<int64_t>(i), nodes[i]);
      EXPECT_TRUE(resp.ok()) << "request " << i << ": "
                             << resp.status().ToString();
      scores.push_back(resp.ok() ? resp.value().score : -1.0);
    }
    // Both shards served >= 3 requests, so both replica-0 servers died.
    // Wait out the reap (the monitor observes deaths asynchronously).
    const Deadline reap = Deadline::After(Clock::Real(), 10.0);
    while (sup.value()->kills_observed().size() < 2 && !reap.Expired()) {
      Clock::Real()->SleepFor(0.01);
    }
    EXPECT_EQ(sup.value()->kills_observed().size(), 2u);
    EXPECT_EQ(sup.value()->restarts(), 2);
    EXPECT_TRUE(sup.value()->Stop().ok());
    std::filesystem::remove_all(dir);
    return scores;
  };

  const std::vector<double> chaos_scores = run_tier("chaos", plan);
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(chaos_scores[i], want[i]) << "request " << i;
  }

  // Replay from the *printed* plan: the exact same outcome, score for
  // score — the whole point of a declarative chaos grammar.
  fault::FaultPlan replayed =
      fault::FaultPlan::Parse(plan.ToString()).value();
  const std::vector<double> replay_scores = run_tier("replay", replayed);
  EXPECT_EQ(replay_scores, chaos_scores);
}

TEST_F(MultiProcessServe, ExpiredDeadlineIsRejectedServerSideNeverScored) {
  std::string dir = MakeDir("deadline");
  auto sup = Supervisor::Start(ds_->graph,
                               TierOptions(dir, 1, 1, fault::FaultPlan{}));
  ASSERT_TRUE(sup.ok()) << sup.status().ToString();
  const std::vector<int32_t> nodes = RequestNodes(1);

  // Speak the wire protocol directly so the "deadline expired in flight"
  // race is deterministic: the frame reaches the server with zero budget
  // left. The server must reject it without touching the store.
  const Deadline io = Deadline::After(Clock::Real(), 10.0);
  // The freshly forked server binds its socket after WAL replay; retry the
  // dial until it is listening (the router does this internally).
  auto conn =
      dist::DialEndpoint(sup.value()->endpoint(0, 0), io, Clock::Real());
  while (!conn.ok() && !io.Expired()) {
    Clock::Real()->SleepFor(0.01);
    conn = dist::DialEndpoint(sup.value()->endpoint(0, 0), io, Clock::Real());
  }
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  ScoreRequestWire expired;
  expired.epoch = sup.value()->epoch();
  expired.deadline_s = 0.0;  // spent in flight
  expired.txn_node = nodes[0];
  const std::string payload = EncodeScoreRequest(expired);
  FrameHeader header;
  header.type = FrameType::kScoreRequest;
  header.seq = 1;
  ASSERT_TRUE(dist::SendFrame(conn.value().get(), header, payload.data(),
                              payload.size(), io, Clock::Real())
                  .ok());
  auto reply_header =
      dist::RecvFrameHeader(conn.value().get(), io, Clock::Real());
  ASSERT_TRUE(reply_header.ok()) << reply_header.status().ToString();
  std::vector<unsigned char> body;
  ASSERT_TRUE(dist::RecvFramePayload(conn.value().get(), reply_header.value(),
                                     &body, io, Clock::Real())
                  .ok());
  auto reply = DecodeScoreReply(body.data(), body.size());
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().status.IsDeadlineExceeded())
      << reply.value().status.ToString();

  // The same connection and server still score a healthy request — the
  // rejection was per-request, not a crash.
  Router router(sup.value()->MakeRouterOptions());
  auto ok = router.Score(/*request_id=*/0, nodes[0]);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().score, ReferenceScores(nodes)[0]);
  EXPECT_TRUE(sup.value()->Stop().ok());
  std::filesystem::remove_all(dir);
}

TEST_F(MultiProcessServe, CorruptedFrameIsDetectedAndRetried) {
  // The 2nd request frame the router sends gets one payload byte flipped
  // on the wire. The server's CRC check must catch it (never score garbage)
  // and the router must transparently resend.
  fault::FaultPlan plan = fault::FaultPlan::Parse("corrupt_frame=1").value();
  std::string dir = MakeDir("corrupt");
  auto sup =
      Supervisor::Start(ds_->graph, TierOptions(dir, 1, 1, plan));
  ASSERT_TRUE(sup.ok()) << sup.status().ToString();

  const std::vector<int32_t> nodes = RequestNodes(4);
  const std::vector<double> want = ReferenceScores(nodes);
  const int64_t retries_before =
      obs::Registry::Global().counter("serve/router/corrupt_retries")->value();

  Router router(sup.value()->MakeRouterOptions());
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto resp = router.Score(static_cast<int64_t>(i), nodes[i]);
    ASSERT_TRUE(resp.ok()) << "request " << i << ": "
                           << resp.status().ToString();
    EXPECT_EQ(resp.value().score, want[i]) << "request " << i;
  }
  EXPECT_EQ(obs::Registry::Global()
                    .counter("serve/router/corrupt_retries")
                    ->value() -
                retries_before,
            1);
  EXPECT_EQ(sup.value()->injector()->injected_frame_corruptions(), 1);
  EXPECT_EQ(sup.value()->restarts(), 0);  // wire damage is not a death
  EXPECT_TRUE(sup.value()->Stop().ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xfraud::serve
