// Conformance and regression tests for the nn::kernels layer (DESIGN.md
// §13): blocked kernels must match the naive reference bit for bit, any
// thread count must match one thread bit for bit, the fused ops must match
// their composed equivalents bit for bit (including dropout RNG
// consumption), and the zero-skip NaN-swallowing bug must stay fixed.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "xfraud/common/check.h"
#include "xfraud/common/rng.h"
#include "xfraud/core/hetero_conv.h"
#include "xfraud/nn/kernels.h"
#include "xfraud/nn/modules.h"
#include "xfraud/nn/ops.h"

namespace xfraud::nn {
namespace {

/// Restores the kernel layer to serial mode when a test exits.
class ThreadRestore {
 public:
  ThreadRestore() = default;
  ~ThreadRestore() { kernels::SetNumThreads(1); }
};

Tensor RandomTensor(int64_t r, int64_t c, Rng* rng, float scale = 1.0f) {
  return Tensor::Uniform(r, c, scale, rng);
}

// ---------------------------------------------------------------------------
// Tensor::BitwiseEqual / SameShape semantics (the comparison the rest of
// this file is built on).

TEST(TensorEquality, SameShapeIgnoresContents) {
  Tensor a(2, 3, 1.0f);
  Tensor b(2, 3, -7.5f);
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.BitwiseEqual(b));
}

TEST(TensorEquality, BitwiseEqualRequiresShape) {
  Tensor a(2, 3, 1.0f);
  Tensor b(3, 2, 1.0f);
  EXPECT_FALSE(a.BitwiseEqual(b));
}

TEST(TensorEquality, EqualPayloadNaNsCompareEqual) {
  float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a(1, 2, {nan, 1.0f});
  Tensor b(1, 2, {nan, 1.0f});
  EXPECT_TRUE(a.BitwiseEqual(b));  // == on floats would say false here
}

TEST(TensorEquality, SignedZerosCompareDifferent) {
  Tensor a(1, 1, 0.0f);
  Tensor b(1, 1, -0.0f);
  EXPECT_EQ(a.At(0, 0), b.At(0, 0));  // numeric equality
  EXPECT_FALSE(a.BitwiseEqual(b));    // bitwise difference detected
}

// ---------------------------------------------------------------------------
// Blocked GEMM vs naive reference, bit for bit. Shapes chosen to hit the
// micro-kernel edges: row remainders (n % 4 != 0) and partial right-edge
// panels (m % 16 != 0).

struct GemmShape {
  int64_t n, k, m;
};

const GemmShape kGemmShapes[] = {{1, 1, 1},   {3, 5, 2},    {4, 16, 16},
                                 {5, 7, 3},   {17, 33, 19}, {64, 64, 64},
                                 {2, 64, 31}};

TEST(KernelConformance, GemmMatchesReferenceBitwise) {
  Rng rng(101);
  for (const GemmShape& s : kGemmShapes) {
    Tensor a = RandomTensor(s.n, s.k, &rng);
    Tensor b = RandomTensor(s.k, s.m, &rng);
    Tensor blocked(s.n, s.m);
    Tensor naive(s.n, s.m);
    kernels::Gemm(a, b, &blocked);
    kernels::reference::Gemm(a, b, &naive);
    EXPECT_TRUE(blocked.BitwiseEqual(naive))
        << "shape " << s.n << "x" << s.k << "x" << s.m;
  }
}

TEST(KernelConformance, GemmTransBAddMatchesReferenceBitwise) {
  Rng rng(102);
  for (const GemmShape& s : kGemmShapes) {
    Tensor g = RandomTensor(s.n, s.m, &rng);
    Tensor b = RandomTensor(s.k, s.m, &rng);
    // Non-zero initial accumulator: += semantics must match too.
    Tensor da0 = RandomTensor(s.n, s.k, &rng);
    Tensor da_fast = da0;
    Tensor da_ref = da0;
    kernels::GemmTransBAdd(g, b, &da_fast);
    kernels::reference::GemmTransBAdd(g, b, &da_ref);
    EXPECT_TRUE(da_fast.BitwiseEqual(da_ref))
        << "shape " << s.n << "x" << s.k << "x" << s.m;
  }
}

TEST(KernelConformance, GemmTransAAddMatchesReferenceBitwise) {
  Rng rng(103);
  for (const GemmShape& s : kGemmShapes) {
    Tensor a = RandomTensor(s.n, s.k, &rng);
    Tensor g = RandomTensor(s.n, s.m, &rng);
    Tensor db0 = RandomTensor(s.k, s.m, &rng);
    Tensor db_fast = db0;
    Tensor db_ref = db0;
    kernels::GemmTransAAdd(a, g, &db_fast);
    kernels::reference::GemmTransAAdd(a, g, &db_ref);
    EXPECT_TRUE(db_fast.BitwiseEqual(db_ref))
        << "shape " << s.n << "x" << s.k << "x" << s.m;
  }
}

TEST(KernelConformance, GemmBiasActZeroInnerDimIsBiasPlusAct) {
  Tensor a(2, 0);
  Tensor b(0, 3);
  std::vector<float> bias = {-1.0f, 0.5f, 2.0f};
  Tensor c(2, 3, -99.0f);
  kernels::GemmBiasAct(a, b, bias.data(), kernels::Activation::kRelu, &c);
  for (int64_t r = 0; r < 2; ++r) {
    EXPECT_EQ(c.At(r, 0), 0.0f);
    EXPECT_EQ(c.At(r, 1), 0.5f);
    EXPECT_EQ(c.At(r, 2), 2.0f);
  }
}

// ---------------------------------------------------------------------------
// Deterministic parallelism: every kernel must be bit-identical at any
// worker count, and repeat runs must be bit-identical too.

TEST(KernelDeterminism, GemmBitIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  Rng rng(201);
  Tensor a = RandomTensor(37, 29, &rng);
  Tensor b = RandomTensor(29, 23, &rng);
  Tensor serial(37, 23);
  kernels::Gemm(a, b, &serial);
  for (int threads : {2, 3, 4}) {
    kernels::SetNumThreads(threads);
    Tensor par(37, 23);
    kernels::Gemm(a, b, &par);
    EXPECT_TRUE(par.BitwiseEqual(serial)) << "threads=" << threads;
    Tensor again(37, 23);
    kernels::Gemm(a, b, &again);
    EXPECT_TRUE(again.BitwiseEqual(par)) << "rerun, threads=" << threads;
  }
}

TEST(KernelDeterminism, BackwardProductsBitIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  Rng rng(202);
  Tensor a = RandomTensor(41, 19, &rng);
  Tensor g = RandomTensor(41, 13, &rng);
  Tensor b = RandomTensor(19, 13, &rng);
  Tensor da1(41, 19);
  Tensor db1(19, 13);
  kernels::GemmTransBAdd(g, b, &da1);
  kernels::GemmTransAAdd(a, g, &db1);
  for (int threads : {2, 3}) {
    kernels::SetNumThreads(threads);
    Tensor da(41, 19);
    Tensor db(19, 13);
    kernels::GemmTransBAdd(g, b, &da);
    kernels::GemmTransAAdd(a, g, &db);
    EXPECT_TRUE(da.BitwiseEqual(da1)) << "threads=" << threads;
    EXPECT_TRUE(db.BitwiseEqual(db1)) << "threads=" << threads;
  }
}

TEST(KernelDeterminism, ScatterGatherSoftmaxBitIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  Rng rng(203);
  const int64_t kEdges = 257;
  const int64_t kNodes = 40;
  const int64_t kHeads = 2;
  const int64_t kHeadDim = 5;
  Tensor msgs = RandomTensor(kEdges, kHeads * kHeadDim, &rng);
  Tensor scores = RandomTensor(kEdges, kHeads, &rng, 2.0f);
  std::vector<int32_t> dst(kEdges);
  for (int64_t e = 0; e < kEdges; ++e) {
    dst[static_cast<size_t>(e)] =
        static_cast<int32_t>(rng.NextUint64() % kNodes);
  }
  kernels::RowGroups groups = kernels::BuildRowGroups(dst, kNodes);

  Tensor scat1(kNodes, kHeads * kHeadDim);
  kernels::ScatterAddRowsKernel(msgs, dst, &scat1);
  Tensor gath1(kEdges, kHeads * kHeadDim);
  kernels::GatherRows(scat1, dst, &gath1);
  Tensor att1(kEdges, kHeads);
  kernels::SegmentSoftmaxGrouped(scores, groups, &att1);
  Tensor agg1(kNodes, kHeads * kHeadDim);
  kernels::WeightedScatterAddGrouped(msgs, att1, groups, kHeadDim, &agg1);

  for (int threads : {2, 3, 4}) {
    kernels::SetNumThreads(threads);
    Tensor scat(kNodes, kHeads * kHeadDim);
    kernels::ScatterAddRowsKernel(msgs, dst, &scat);
    Tensor gath(kEdges, kHeads * kHeadDim);
    kernels::GatherRows(scat, dst, &gath);
    Tensor att(kEdges, kHeads);
    kernels::SegmentSoftmaxGrouped(scores, groups, &att);
    Tensor agg(kNodes, kHeads * kHeadDim);
    kernels::WeightedScatterAddGrouped(msgs, att, groups, kHeadDim, &agg);
    EXPECT_TRUE(scat.BitwiseEqual(scat1)) << "threads=" << threads;
    EXPECT_TRUE(gath.BitwiseEqual(gath1)) << "threads=" << threads;
    EXPECT_TRUE(att.BitwiseEqual(att1)) << "threads=" << threads;
    EXPECT_TRUE(agg.BitwiseEqual(agg1)) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Fused ops vs their composed equivalents, forward and backward, bit for
// bit. The fused kernels must be drop-in: same floats, same gradients, same
// RNG consumption.

TEST(FusedConformance, LinearBiasActMatchesComposedBitwise) {
  Rng rng(301);
  Tensor xt = RandomTensor(7, 5, &rng);
  Tensor wt = RandomTensor(5, 9, &rng);
  Tensor bt = RandomTensor(1, 9, &rng);

  Var x1(xt, true), w1(wt, true), b1(bt, true);
  Var fused = LinearBiasAct(x1, w1, b1, kernels::Activation::kRelu);
  Sum(fused).Backward();

  Var x2(xt, true), w2(wt, true), b2(bt, true);
  Var composed = Relu(AddRowBroadcast(MatMul(x2, w2), b2));
  Sum(composed).Backward();

  EXPECT_TRUE(fused.value().BitwiseEqual(composed.value()));
  EXPECT_TRUE(x1.grad().BitwiseEqual(x2.grad()));
  EXPECT_TRUE(w1.grad().BitwiseEqual(w2.grad()));
  EXPECT_TRUE(b1.grad().BitwiseEqual(b2.grad()));
}

TEST(FusedConformance, LinearModuleForwardIsFusedPath) {
  Rng rng(302);
  Linear lin(6, 4, &rng);
  Var x(RandomTensor(3, 6, &rng), false);
  Var via_module = lin.Forward(x, kernels::Activation::kRelu);
  Var composed = Relu(lin.Forward(x));
  EXPECT_TRUE(via_module.value().BitwiseEqual(composed.value()));
}

/// The composed (pre-fusion) attention aggregate: segment softmax, dropout,
/// per-head weighting via slice/broadcast/concat, scatter-add.
Var ComposedAttentionAggregate(const Var& scores, const Var& values,
                               const std::vector<int32_t>& dst,
                               int64_t num_nodes, int64_t head_dim,
                               float dropout_p, bool training, Rng* rng) {
  int64_t heads = scores.cols();
  Var att = SegmentSoftmax(scores, dst, num_nodes);
  att = Dropout(att, dropout_p, training, rng);
  Var messages;
  for (int64_t h = 0; h < heads; ++h) {
    Var v_h = SliceCols(values, h * head_dim, head_dim);
    Var att_h = SliceCols(att, h, 1);
    Var msg_h = MulColBroadcast(v_h, att_h);
    messages = messages.defined() ? ConcatCols(messages, msg_h) : msg_h;
  }
  return ScatterAddRows(messages, dst, num_nodes);
}

TEST(FusedConformance, AttentionAggregateMatchesComposedBitwiseEval) {
  Rng rng(303);
  const int64_t kHeads = 2;
  const int64_t kHeadDim = 3;
  std::vector<int32_t> dst = {1, 0, 1, 2, 2, 3, 0, 1};
  int64_t edges = static_cast<int64_t>(dst.size());
  Tensor st = RandomTensor(edges, kHeads, &rng, 2.0f);
  Tensor vt = RandomTensor(edges, kHeads * kHeadDim, &rng);

  Var s1(st, true), v1(vt, true);
  Var fused = AttentionAggregate(s1, v1, dst, 4, kHeadDim, /*dropout_p=*/0.5f,
                                 /*training=*/false, nullptr);
  Sum(fused).Backward();

  Var s2(st, true), v2(vt, true);
  Var composed = ComposedAttentionAggregate(s2, v2, dst, 4, kHeadDim, 0.5f,
                                            false, nullptr);
  Sum(composed).Backward();

  EXPECT_TRUE(fused.value().BitwiseEqual(composed.value()));
  EXPECT_TRUE(s1.grad().BitwiseEqual(s2.grad()));
  EXPECT_TRUE(v1.grad().BitwiseEqual(v2.grad()));
}

TEST(FusedConformance, AttentionAggregateMatchesComposedBitwiseTraining) {
  // Training mode: the fused kernel must consume dropout randomness in the
  // exact order of the unfused Dropout op, so same-seeded runs coincide.
  Rng rng(304);
  const int64_t kHeads = 3;
  const int64_t kHeadDim = 2;
  std::vector<int32_t> dst = {0, 2, 1, 1, 0, 2, 2, 0, 1, 2};
  int64_t edges = static_cast<int64_t>(dst.size());
  Tensor st = RandomTensor(edges, kHeads, &rng, 2.0f);
  Tensor vt = RandomTensor(edges, kHeads * kHeadDim, &rng);

  Rng drop1(42);
  Var s1(st, true), v1(vt, true);
  Var fused = AttentionAggregate(s1, v1, dst, 3, kHeadDim, /*dropout_p=*/0.3f,
                                 /*training=*/true, &drop1);
  Sum(fused).Backward();

  Rng drop2(42);
  Var s2(st, true), v2(vt, true);
  Var composed = ComposedAttentionAggregate(s2, v2, dst, 3, kHeadDim, 0.3f,
                                            true, &drop2);
  Sum(composed).Backward();

  EXPECT_TRUE(fused.value().BitwiseEqual(composed.value()));
  EXPECT_TRUE(s1.grad().BitwiseEqual(s2.grad()));
  EXPECT_TRUE(v1.grad().BitwiseEqual(v2.grad()));
}

// ---------------------------------------------------------------------------
// Regression: MatMul's old `if (aik == 0.0f) continue;` shortcut swallowed
// 0·NaN and 0·Inf (which are NaN by IEEE 754) in the forward pass and the
// dB = AᵀG backward product. These tests fail on the pre-kernel code.

TEST(NanPropagation, MatMulForwardPropagatesZeroTimesNaN) {
  float nan = std::numeric_limits<float>::quiet_NaN();
  Var a(Tensor(1, 2, {0.0f, 1.0f}), false);
  Var b(Tensor(2, 1, {nan, 2.0f}), false);
  Var c = MatMul(a, b);
  // 0·NaN + 1·2 is NaN; the zero-skip used to report 2.
  EXPECT_TRUE(std::isnan(c.value().At(0, 0)));
}

TEST(NanPropagation, MatMulForwardPropagatesZeroTimesInf) {
  float inf = std::numeric_limits<float>::infinity();
  Var a(Tensor(1, 2, {0.0f, 1.0f}), false);
  Var b(Tensor(2, 1, {inf, 2.0f}), false);
  Var c = MatMul(a, b);
  // 0·inf is NaN; the zero-skip used to report 2.
  EXPECT_TRUE(std::isnan(c.value().At(0, 0)));
}

TEST(NanPropagation, MatMulBackwardPropagatesThroughZeroActivation) {
  // dB[0,0] = A[0,0]·G[0,0] + A[1,0]·G[1,0] = 0·inf + 1·1 = NaN. The old
  // backward skipped the A[0,0] == 0 term and reported a finite 1.
  float inf = std::numeric_limits<float>::infinity();
  Var a(Tensor(2, 1, {0.0f, 1.0f}), false);
  Var b(Tensor(1, 1, {3.0f}), true);
  Var c = MatMul(a, b);
  Var k = Constant(Tensor(2, 1, {inf, 1.0f}));
  Sum(Mul(c, k)).Backward();
  EXPECT_TRUE(std::isnan(b.grad().At(0, 0)));
}

// ---------------------------------------------------------------------------
// Regression: RowSoftmax / CrossEntropy used to read x[0] before checking
// cols > 0, and CrossEntropy divided by a possibly-zero total weight.

TEST(EdgeChecks, RowSoftmaxZeroColumnsThrows) {
  Var x(Tensor(2, 0), false);
  EXPECT_THROW(RowSoftmax(x), CheckError);
}

TEST(EdgeChecks, CrossEntropyZeroColumnsThrows) {
  Var logits(Tensor(2, 0), true);
  std::vector<int> labels = {0, 0};
  EXPECT_THROW(CrossEntropy(logits, labels), CheckError);
}

TEST(EdgeChecks, CrossEntropyZeroTotalWeightThrows) {
  Rng rng(401);
  Var logits(RandomTensor(3, 2, &rng), true);
  std::vector<int> labels = {1, 1, 1};
  std::vector<float> weights = {1.0f, 0.0f};  // every present class weight 0
  EXPECT_THROW(CrossEntropy(logits, labels, weights), CheckError);
}

// ---------------------------------------------------------------------------
// End-to-end: a full HeteroConv layer forward must be bit-identical at any
// kernel thread count, in eval and in training (dropout RNG consumption is
// thread-count independent).

TEST(KernelDeterminism, HeteroConvForwardBitIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  Rng init(501);
  core::HeteroConvLayer layer(16, 4, 0.3f, /*first_layer=*/true,
                              /*use_residual=*/true, &init);
  std::vector<int32_t> node_types = {0, 0, 1, 2, 2};
  std::vector<int32_t> src = {2, 2, 3, 4, 0, 1, 0, 1};
  std::vector<int32_t> dst = {0, 1, 0, 1, 2, 2, 3, 4};
  std::vector<int32_t> etypes = {0, 0, 1, 1, 2, 2, 3, 3};
  Rng data(502);
  Var h(Tensor::Uniform(5, 16, 1.0f, &data), false);

  auto run_once = [&](bool training) {
    Rng drop(7);
    core::ForwardOptions opts;
    opts.training = training;
    opts.rng = training ? &drop : nullptr;
    return layer.Forward(h, node_types, src, dst, etypes, opts);
  };
  Var eval1 = run_once(false);
  Var train1 = run_once(true);
  for (int threads : {2, 3}) {
    kernels::SetNumThreads(threads);
    EXPECT_TRUE(run_once(false).value().BitwiseEqual(eval1.value()))
        << "eval, threads=" << threads;
    EXPECT_TRUE(run_once(true).value().BitwiseEqual(train1.value()))
        << "training, threads=" << threads;
  }
}

}  // namespace
}  // namespace xfraud::nn
