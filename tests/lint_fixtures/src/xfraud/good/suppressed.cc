// Fixture: every violation here is silenced by an allow() directive.
#include <cstdlib>

int* Intentional() {
  // xfraud-lint: allow(no-naked-new)
  return new int(5);
}

int SeededElsewhere() {
  int r = rand();  // xfraud-lint: allow(nondeterminism)
  return r;
}

// xfraud-lint: allow(todo-issue)
// TODO: suppressed marker without an issue number
int Stub() { return 0; }

#include <fstream>
#include <string>

void LegacyScratchFile(const std::string& path) {
  // xfraud-lint: allow(no-direct-write)
  std::ofstream out(path);
  out << "scratch";
}
