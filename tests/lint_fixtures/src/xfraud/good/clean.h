#ifndef LINT_FIXTURE_CLEAN_H_
#define LINT_FIXTURE_CLEAN_H_

// Fixture: passes every rule. Mentions of new/rand()/printf( in comments
// and "new X" or "time(" inside string literals must NOT fire.

#include <string>

inline std::string Motto() { return "brand new time(less) printf(y) rand()"; }

#endif  // LINT_FIXTURE_CLEAN_H_
