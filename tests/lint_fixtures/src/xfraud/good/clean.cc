// Fixture: passes every rule.
// TODO(#7): tracked work items are fine.
#include <memory>

struct Widget {
  int renewal = 0;  // 'renewal' must not trip the 'new' word match
};

std::unique_ptr<Widget> MakeWidget() { return std::make_unique<Widget>(); }

void Relay(void (*f)()) {
  try {
    f();
  } catch (...) {
    throw;  // rethrow is allowed
  }
}
