// Raw string literals whose CONTENTS would fire rules if the scanner ever
// let them leak into the code half: the stripper must treat everything
// between the delimiters as literal text, for default, custom-delimiter,
// and encoding-prefixed forms alike.

namespace xfraud::fixture {

const char* BasicRawString() {
  // Would fire nondeterminism + no-raw-io if scanned as code.
  return R"(std::cout << rand(); srand(1);)";
}

const char* CustomDelimiter() {
  // The inner )" must NOT close the literal; only )xy" does. Contents
  // would fire no-naked-new + no-direct-write if mis-scanned.
  return R"xy(int* p = new int; )" std::ofstream out("f");)xy";
}

const char* PrefixedRawString() {
  // u8R / LR / uR / UR prefixes are raw too; a backslash before the
  // closing quote is literal, not an escape.
  return reinterpret_cast<const char*>(u8R"(time(nullptr) \)");
}

const wchar_t* WideRawString() {
  return LR"(socket(AF_INET, SOCK_STREAM, 0); // TODO: not a real comment)";
}

const char* MultiLineRawString() {
  return R"sql(
    SELECT rand() FROM txn;  -- fopen("x", "w") in literal text
  )sql";
}

const char* NotRawJustPasted() {
  // FOOR"..." is an ordinary string glued to an identifier by a macro
  // paste, not a raw literal; \" inside is an escape.
  return "R\"(this is an ordinary string)\"";
}

}  // namespace xfraud::fixture
