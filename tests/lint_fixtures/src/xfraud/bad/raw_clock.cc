// Fixture: raw std::chrono clock reads and sleeps in library code outside
// common/ — each flagged line should fire no-raw-clock.
#include <chrono>
#include <thread>

namespace xfraud::bad {

double NowSecondsRaw() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

void NapRaw() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

}  // namespace xfraud::bad
