// Fixture: fires nondeterminism on four distinct lines.
#include <cstdlib>
#include <ctime>
#include <random>

int Draw() {
  srand(42);
  int a = rand();
  long b = time(nullptr);
  std::random_device rd;
  return a + static_cast<int>(b) + static_cast<int>(rd());
}
