// Fixture: fires no-direct-write.
#include <fcntl.h>

#include <cstdio>
#include <fstream>
#include <string>

void TearableWrites(const std::string& path, const std::string& data) {
  std::ofstream out(path);
  out << data;
  FILE* f = fopen(path.c_str(), "w");
  static_cast<void>(f);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  static_cast<void>(fd);
}
