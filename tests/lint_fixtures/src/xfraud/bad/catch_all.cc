// Fixture: fires no-catch-all (handler neither rethrows nor converts).
void Swallow(void (*f)()) {
  try {
    f();
  } catch (...) {
    int swallowed = 1;
    (void)swallowed;
  }
}
