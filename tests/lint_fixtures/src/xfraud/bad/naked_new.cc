// Fixture: fires no-naked-new (never compiled, only linted).
int* LeakyAlloc() {
  int* p = new int[8];
  return p;
}

void* CAlloc() {
  void* p = malloc(64);
  free(p);
  return p;
}
