#ifndef LINT_FIXTURE_USING_NAMESPACE_H_
#define LINT_FIXTURE_USING_NAMESPACE_H_

// Fixture: fires no-using-namespace.
#include <string>

using namespace std;

inline string Greeting() { return "hi"; }

#endif  // LINT_FIXTURE_USING_NAMESPACE_H_
