// Fixture: fires todo-issue.
// TODO: make this configurable
// FIXME handle the empty case
int Stub() { return 0; }
