// Fixture: raw socket syscalls outside src/xfraud/dist must trip
// no-raw-socket — they bypass the Communicator transport's deadlines,
// retries, and error mapping.

int BadRawSocket() {
  int fd = socket(1, 1, 0);
  bind(fd, nullptr, 0);
  listen(fd, 4);
  int peer = accept(fd, nullptr, nullptr);
  connect(peer, nullptr, 0);
  return peer;
}
