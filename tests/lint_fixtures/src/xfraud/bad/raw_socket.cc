// Fixture: raw socket syscalls outside src/xfraud/dist must trip
// no-raw-socket — they bypass the Communicator transport's deadlines,
// retries, and error mapping. The data-plane calls (send/recv/poll and
// friends) are banned too: a connected fd smuggled out of dist/ must not
// grow its own unframed, un-CRC'd wire protocol.

int BadRawSocket() {
  int fd = socket(1, 1, 0);
  bind(fd, nullptr, 0);
  listen(fd, 4);
  int peer = accept(fd, nullptr, nullptr);
  connect(peer, nullptr, 0);
  return peer;
}

int BadRawSocketDataPlane(int fd) {
  char buf[16] = {0};
  setsockopt(fd, 0, 0, nullptr, 0);
  poll(nullptr, 0, 10);
  send(fd, buf, sizeof(buf), 0);
  int n = recv(fd, buf, sizeof(buf), 0);
  shutdown(fd, 2);
  return n;
}
