// Fixture: fires no-raw-io.
#include <cstdio>
#include <iostream>

void Noisy(int n) {
  std::cout << "value " << n << "\n";
  printf("value %d\n", n);
}
