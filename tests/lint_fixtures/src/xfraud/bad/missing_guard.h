// Fixture: fires header-guard (no #pragma once, no #ifndef/#define pair).

inline int Unguarded() { return 1; }
