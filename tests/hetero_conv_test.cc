// Structural invariants of the xFraud heterogeneous convolution layer
// (paper eqs. 2-10): permutation equivariance, locality, attention
// normalization, and the typed-linear machinery it is built on.

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "xfraud/core/gnn_model.h"
#include "xfraud/core/hetero_conv.h"

namespace xfraud::core {
namespace {

/// A small fixed hetero graph: 2 txns sharing a buyer, each with own pmt.
///   nodes: 0 txn, 1 txn, 2 buyer, 3 pmt, 4 pmt
struct TinyGraph {
  std::vector<int32_t> node_types = {
      static_cast<int32_t>(graph::NodeType::kTxn),
      static_cast<int32_t>(graph::NodeType::kTxn),
      static_cast<int32_t>(graph::NodeType::kBuyer),
      static_cast<int32_t>(graph::NodeType::kPmt),
      static_cast<int32_t>(graph::NodeType::kPmt)};
  std::vector<int32_t> src = {2, 2, 3, 4, 0, 1, 0, 1};
  std::vector<int32_t> dst = {0, 1, 0, 1, 2, 2, 3, 4};
  std::vector<int32_t> etypes = {
      static_cast<int32_t>(graph::EdgeType::kBuyerToTxn),
      static_cast<int32_t>(graph::EdgeType::kBuyerToTxn),
      static_cast<int32_t>(graph::EdgeType::kPmtToTxn),
      static_cast<int32_t>(graph::EdgeType::kPmtToTxn),
      static_cast<int32_t>(graph::EdgeType::kTxnToBuyer),
      static_cast<int32_t>(graph::EdgeType::kTxnToBuyer),
      static_cast<int32_t>(graph::EdgeType::kTxnToPmt),
      static_cast<int32_t>(graph::EdgeType::kTxnToPmt)};
};

nn::Var RandomInput(int64_t n, int64_t dim, uint64_t seed) {
  Rng rng(seed);
  return nn::Var(nn::Tensor::Uniform(n, dim, 1.0f, &rng), false);
}

TEST(HeteroConvTest, OutputShapeMatchesInput) {
  Rng rng(1);
  HeteroConvLayer layer(16, 4, 0.0f, /*first_layer=*/true,
                        /*use_residual=*/true, &rng);
  TinyGraph g;
  nn::Var h = RandomInput(5, 16, 2);
  nn::Var out = layer.Forward(h, g.node_types, g.src, g.dst, g.etypes,
                              ForwardOptions{});
  EXPECT_EQ(out.rows(), 5);
  EXPECT_EQ(out.cols(), 16);
}

TEST(HeteroConvTest, PermutationEquivariance) {
  // Relabeling the nodes and permuting the input rows must permute the
  // output rows identically — message passing has no positional notion.
  Rng rng(3);
  HeteroConvLayer layer(8, 2, 0.0f, true, true, &rng);
  TinyGraph g;
  nn::Var h = RandomInput(5, 8, 4);
  nn::Var out = layer.Forward(h, g.node_types, g.src, g.dst, g.etypes,
                              ForwardOptions{});

  // Permutation: rotate node ids by 2 (perm[old] = new).
  std::vector<int32_t> perm = {2, 3, 4, 0, 1};
  std::vector<int32_t> p_types(5);
  nn::Tensor p_input(5, 8);
  for (int32_t v = 0; v < 5; ++v) {
    p_types[perm[v]] = g.node_types[v];
    std::copy(h.value().Row(v), h.value().Row(v) + 8,
              p_input.Row(perm[v]));
  }
  std::vector<int32_t> p_src(g.src.size()), p_dst(g.dst.size());
  for (size_t e = 0; e < g.src.size(); ++e) {
    p_src[e] = perm[g.src[e]];
    p_dst[e] = perm[g.dst[e]];
  }
  nn::Var p_h(p_input, false);
  nn::Var p_out = layer.Forward(p_h, p_types, p_src, p_dst, g.etypes,
                                ForwardOptions{});
  for (int32_t v = 0; v < 5; ++v) {
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(p_out.value().At(perm[v], c), out.value().At(v, c), 1e-5)
          << "node " << v << " col " << c;
    }
  }
}

TEST(HeteroConvTest, EdgeOrderInvariance) {
  // Shuffling the edge list must not change the result (aggregation is a
  // sum over an unordered neighbourhood).
  Rng rng(5);
  HeteroConvLayer layer(8, 2, 0.0f, true, true, &rng);
  TinyGraph g;
  nn::Var h = RandomInput(5, 8, 6);
  nn::Var base = layer.Forward(h, g.node_types, g.src, g.dst, g.etypes,
                               ForwardOptions{});
  std::vector<size_t> order(g.src.size());
  std::iota(order.begin(), order.end(), size_t{0});
  Rng shuffle_rng(7);
  shuffle_rng.Shuffle(&order);
  std::vector<int32_t> s_src, s_dst, s_et;
  for (size_t e : order) {
    s_src.push_back(g.src[e]);
    s_dst.push_back(g.dst[e]);
    s_et.push_back(g.etypes[e]);
  }
  nn::Var shuffled = layer.Forward(h, g.node_types, s_src, s_dst, s_et,
                                   ForwardOptions{});
  for (int64_t i = 0; i < base.value().size(); ++i) {
    EXPECT_NEAR(base.value().vec()[i], shuffled.value().vec()[i], 1e-5);
  }
}

TEST(HeteroConvTest, LocalityNoCrossTalkBetweenComponents) {
  // Nodes 3 (pmt of txn 0) and 1/4: changing txn 1's input must not change
  // node 3's output in a single layer (they are not adjacent).
  Rng rng(9);
  HeteroConvLayer layer(8, 2, 0.0f, true, /*use_residual=*/false, &rng);
  TinyGraph g;
  nn::Var h1 = RandomInput(5, 8, 10);
  nn::Tensor modified = h1.value();
  for (int64_t c = 0; c < 8; ++c) modified.At(1, c) += 5.0f;  // perturb txn 1
  nn::Var h2(modified, false);
  nn::Var out1 = layer.Forward(h1, g.node_types, g.src, g.dst, g.etypes,
                               ForwardOptions{});
  nn::Var out2 = layer.Forward(h2, g.node_types, g.src, g.dst, g.etypes,
                               ForwardOptions{});
  // Node 3's only in-neighbour is txn 0 -> unchanged.
  for (int64_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(out1.value().At(3, c), out2.value().At(3, c), 1e-5);
  }
  // Node 4's only in-neighbour is txn 1 -> changed.
  double delta = 0.0;
  for (int64_t c = 0; c < 8; ++c) {
    delta += std::fabs(out1.value().At(4, c) - out2.value().At(4, c));
  }
  EXPECT_GT(delta, 1e-3);
}

TEST(HeteroConvTest, EmptyEdgeListIsHandled) {
  Rng rng(11);
  HeteroConvLayer layer(8, 2, 0.0f, true, true, &rng);
  nn::Var h = RandomInput(3, 8, 12);
  std::vector<int32_t> types = {0, 1, 2};
  nn::Var out = layer.Forward(h, types, {}, {}, {}, ForwardOptions{});
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 8);
}

TEST(HeteroConvTest, FirstLayerUsesEdgeTypeEmbedding) {
  // With first_layer=true, perturbing the edge-type embedding table must
  // change the output; the table is exposed as a parameter.
  Rng rng(13);
  HeteroConvLayer layer(8, 2, 0.0f, /*first_layer=*/true, true, &rng);
  TinyGraph g;
  nn::Var h = RandomInput(5, 8, 14);
  nn::Var base = layer.Forward(h, g.node_types, g.src, g.dst, g.etypes,
                               ForwardOptions{});
  auto params = layer.Parameters();
  bool found = false;
  for (auto& p : params) {
    if (p.name.find("edge_type_emb") != std::string::npos) {
      found = true;
      p.var.mutable_value().Fill(0.5f);
    }
  }
  ASSERT_TRUE(found);
  nn::Var perturbed = layer.Forward(h, g.node_types, g.src, g.dst, g.etypes,
                                    ForwardOptions{});
  double delta = 0.0;
  for (int64_t i = 0; i < base.value().size(); ++i) {
    delta += std::fabs(base.value().vec()[i] - perturbed.value().vec()[i]);
  }
  EXPECT_GT(delta, 1e-3);
}

TEST(TypedLinearTest, MatchesManualGrouping) {
  Rng rng(15);
  std::vector<nn::Linear> linears;
  for (int t = 0; t < 3; ++t) linears.emplace_back(4, 4, &rng);
  nn::Var x = RandomInput(6, 4, 16);
  std::vector<int32_t> types = {0, 1, 2, 0, 1, 2};
  nn::Var out = ApplyTypedLinear(linears, x, types);
  // Row r must equal linears[types[r]].Forward(row r).
  for (int32_t r = 0; r < 6; ++r) {
    nn::Tensor row(1, 4);
    std::copy(x.value().Row(r), x.value().Row(r) + 4, row.Row(0));
    nn::Var single = linears[types[r]].Forward(nn::Var(row, false));
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(out.value().At(r, c), single.value().At(0, c), 1e-5);
    }
  }
}

TEST(TypedLinearTest, MissingTypesAreFine) {
  Rng rng(17);
  std::vector<nn::Linear> linears;
  for (int t = 0; t < 5; ++t) linears.emplace_back(4, 4, &rng);
  nn::Var x = RandomInput(3, 4, 18);
  std::vector<int32_t> types = {2, 2, 2};  // only type 2 present
  nn::Var out = ApplyTypedLinear(linears, x, types);
  EXPECT_EQ(out.rows(), 3);
}

}  // namespace
}  // namespace xfraud::core
