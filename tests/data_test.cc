#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "xfraud/data/annotation.h"
#include "xfraud/data/generator.h"
#include "xfraud/graph/subgraph.h"

namespace xfraud::data {
namespace {

using graph::NodeType;

TEST(GeneratorTest, ProducesRecordsWithLabels) {
  GeneratorConfig config = TransactionGenerator::SimSmall();
  config.num_buyers = 200;
  config.num_fraud_rings = 5;
  config.num_stolen_cards = 10;
  TransactionGenerator gen(config);
  auto records = gen.GenerateRecords();
  EXPECT_GT(records.size(), 200u);
  int fraud = 0, benign = 0;
  for (const auto& r : records) {
    EXPECT_FALSE(r.txn_id.empty());
    EXPECT_EQ(r.features.size(), static_cast<size_t>(config.feature_dim));
    fraud += r.label == graph::kLabelFraud;
    benign += r.label == graph::kLabelBenign;
  }
  EXPECT_GT(fraud, 0);
  EXPECT_GT(benign, fraud);
}

TEST(GeneratorTest, FraudRateInPaperBallpark) {
  // The paper's sampled datasets sit at 3.5-4.5% fraud (Table 2).
  SimDataset ds =
      TransactionGenerator::Make(TransactionGenerator::SimSmall(), "small");
  double rate = ds.graph.FraudRate();
  EXPECT_GT(rate, 0.015);
  EXPECT_LT(rate, 0.10);
}

TEST(GeneratorTest, Deterministic) {
  GeneratorConfig config = TransactionGenerator::SimSmall();
  config.num_buyers = 100;
  TransactionGenerator a(config), b(config);
  auto ra = a.GenerateRecords();
  auto rb = b.GenerateRecords();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].txn_id, rb[i].txn_id);
    EXPECT_EQ(ra[i].label, rb[i].label);
    EXPECT_EQ(ra[i].payment_token, rb[i].payment_token);
  }
}

TEST(GeneratorTest, GuestCheckoutsExist) {
  GeneratorConfig config = TransactionGenerator::SimSmall();
  config.num_buyers = 500;
  TransactionGenerator gen(config);
  auto records = gen.GenerateRecords();
  int guests = 0;
  for (const auto& r : records) guests += r.buyer_id.empty();
  EXPECT_GT(guests, 0);
}

TEST(GeneratorTest, StolenCardsLinkFraudToBenignTokens) {
  // Some payment token must carry both fraud and benign transactions —
  // the card-stolen pattern motivating transaction-level detection.
  GeneratorConfig config = TransactionGenerator::SimSmall();
  config.num_buyers = 300;
  config.num_stolen_cards = 30;
  TransactionGenerator gen(config);
  auto records = gen.GenerateRecords();
  std::set<std::string> fraud_tokens, benign_tokens;
  for (const auto& r : records) {
    (r.label == graph::kLabelFraud ? fraud_tokens : benign_tokens)
        .insert(r.payment_token);
  }
  std::vector<std::string> mixed;
  std::set_intersection(fraud_tokens.begin(), fraud_tokens.end(),
                        benign_tokens.begin(), benign_tokens.end(),
                        std::back_inserter(mixed));
  EXPECT_FALSE(mixed.empty());
}

TEST(GeneratorTest, SparsityMatchesPaperRegime) {
  // Paper graphs have 1.49-3.36 undirected edges per node; ours should be
  // in the same sparse regime (well below e.g. OAG's 11.17).
  SimDataset ds =
      TransactionGenerator::Make(TransactionGenerator::SimSmall(), "small");
  double undirected_per_node = ds.graph.AvgDegree() / 2.0;
  EXPECT_GT(undirected_per_node, 0.8);
  EXPECT_LT(undirected_per_node, 5.0);
}

TEST(GeneratorTest, NodeTypeMixDominatedByTransactions) {
  SimDataset ds =
      TransactionGenerator::Make(TransactionGenerator::SimSmall(), "small");
  auto counts = ds.graph.NodeTypeCounts();
  int64_t txn = counts[static_cast<int>(NodeType::kTxn)];
  // Transactions are the plurality type (Table 6: 42-77%).
  for (int t = 1; t < graph::kNumNodeTypes; ++t) {
    EXPECT_GT(txn, counts[t]);
  }
  EXPECT_GT(static_cast<double>(txn) / ds.graph.num_nodes(), 0.35);
}

TEST(GeneratorTest, SplitsArePartition) {
  SimDataset ds =
      TransactionGenerator::Make(TransactionGenerator::SimSmall(), "small");
  std::set<int32_t> all;
  for (auto v : ds.train_nodes) all.insert(v);
  for (auto v : ds.val_nodes) all.insert(v);
  for (auto v : ds.test_nodes) all.insert(v);
  EXPECT_EQ(all.size(), ds.train_nodes.size() + ds.val_nodes.size() +
                            ds.test_nodes.size());
  EXPECT_EQ(all.size(), ds.graph.LabeledTransactions().size());
  EXPECT_GT(ds.train_nodes.size(), ds.test_nodes.size());
  EXPECT_GT(ds.test_nodes.size(), ds.val_nodes.size());
}

class AnnotationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config = TransactionGenerator::SimSmall();
    config.num_buyers = 400;
    ds_ = TransactionGenerator::Make(config, "small");
    // Find a fraud seed with a non-trivial community.
    for (int32_t v : ds_.graph.LabeledTransactions()) {
      if (ds_.graph.label(v) == graph::kLabelFraud) {
        community_ = graph::Community(ds_.graph, v, 60);
        if (community_.num_nodes() >= 8) break;
      }
    }
    ASSERT_GE(community_.num_nodes(), 8);
  }

  SimDataset ds_;
  graph::Subgraph community_;
};

TEST_F(AnnotationTest, FiveAnnotatorsScoreEveryNode) {
  AnnotationSimulator sim({});
  auto annotations = sim.Annotate(ds_.graph, community_);
  ASSERT_EQ(annotations.size(), 5u);
  for (const auto& row : annotations) {
    ASSERT_EQ(row.size(), static_cast<size_t>(community_.num_nodes()));
    for (int v : row) {
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 2);
    }
  }
}

TEST_F(AnnotationTest, HumanKappaBeatsRandomKappa) {
  // Appendix E: human IAA ~0.53, random IAA ~0. We assert the ordering and
  // a sane band rather than exact values.
  AnnotationSimulator sim({});
  double human = 0.0, random = 0.0;
  int communities = 0;
  for (int32_t v : ds_.graph.LabeledTransactions()) {
    auto c = graph::Community(ds_.graph, v, 60);
    if (c.num_nodes() < 10) continue;
    human += MeanPairwiseKappa(sim.Annotate(ds_.graph, c));
    random += MeanPairwiseKappa(sim.AnnotateRandom(c.num_nodes()));
    if (++communities >= 15) break;
  }
  ASSERT_GT(communities, 5);
  human /= communities;
  random /= communities;
  EXPECT_GT(human, 0.25);
  EXPECT_LT(human, 0.85);
  EXPECT_NEAR(random, 0.0, 0.15);
  EXPECT_GT(human, random + 0.2);
}

TEST_F(AnnotationTest, NodeImportanceIsMeanOfAnnotators) {
  std::vector<std::vector<int>> annotations = {{0, 2, 1}, {2, 2, 1}};
  auto imp = AnnotationSimulator::NodeImportance(annotations);
  EXPECT_DOUBLE_EQ(imp[0], 1.0);
  EXPECT_DOUBLE_EQ(imp[1], 2.0);
  EXPECT_DOUBLE_EQ(imp[2], 1.0);
}

TEST_F(AnnotationTest, EdgeAggregations) {
  std::vector<double> node_imp = {2.0, 0.0, 1.0};
  std::vector<graph::UndirectedEdge> edges(2);
  edges[0].u = 0; edges[0].v = 1;
  edges[1].u = 1; edges[1].v = 2;
  auto avg = EdgeImportanceFromNodes(node_imp, edges, EdgeAggregation::kAvg);
  auto sum = EdgeImportanceFromNodes(node_imp, edges, EdgeAggregation::kSum);
  auto mn = EdgeImportanceFromNodes(node_imp, edges, EdgeAggregation::kMin);
  EXPECT_DOUBLE_EQ(avg[0], 1.0);
  EXPECT_DOUBLE_EQ(sum[0], 2.0);
  EXPECT_DOUBLE_EQ(mn[0], 0.0);
  EXPECT_DOUBLE_EQ(avg[1], 0.5);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  EXPECT_DOUBLE_EQ(mn[1], 0.0);
}

TEST(KappaTest, PerfectAgreementIsOne) {
  std::vector<int> a = {0, 1, 2, 1, 0, 2};
  EXPECT_DOUBLE_EQ(CohensKappa(a, a), 1.0);
}

TEST(KappaTest, IndependentAnnotationsNearZero) {
  Rng rng(5);
  std::vector<int> a(5000), b(5000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(rng.NextBounded(3));
    b[i] = static_cast<int>(rng.NextBounded(3));
  }
  EXPECT_NEAR(CohensKappa(a, b), 0.0, 0.05);
}

TEST(KappaTest, SystematicDisagreementIsNegative) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  std::vector<int> b = {1, 1, 2, 2, 0, 0};
  EXPECT_LT(CohensKappa(a, b), 0.0);
}

}  // namespace
}  // namespace xfraud::data
