#include <cmath>

#include <gtest/gtest.h>

#include "xfraud/common/rng.h"
#include "xfraud/train/metrics.h"

namespace xfraud::train {
namespace {

TEST(RocAucTest, PerfectRankerIsOne) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
}

TEST(RocAucTest, AntiRankerIsZero) {
  std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.0);
}

TEST(RocAucTest, AllTiedIsHalf) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  std::vector<int> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(RocAucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(RocAucTest, InvariantToMonotoneTransform) {
  Rng rng(3);
  std::vector<double> scores(200);
  std::vector<int> labels(200);
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.NextBernoulli(0.3);
    scores[i] = rng.NextDouble() + 0.3 * labels[i];
  }
  double base = RocAuc(scores, labels);
  std::vector<double> transformed(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    transformed[i] = std::exp(3.0 * scores[i]);  // strictly monotone
  }
  EXPECT_NEAR(RocAuc(transformed, labels), base, 1e-12);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  Rng rng(4);
  std::vector<double> scores(5000);
  std::vector<int> labels(5000);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.NextDouble();
    labels[i] = rng.NextBernoulli(0.2);
  }
  EXPECT_NEAR(RocAuc(scores, labels), 0.5, 0.03);
}

TEST(RocAucTest, MatchesTrapezoidIntegrationOfRocCurve) {
  Rng rng(5);
  std::vector<double> scores(300);
  std::vector<int> labels(300);
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.NextBernoulli(0.4);
    scores[i] = rng.NextGaussian() + labels[i];
  }
  double auc = RocAuc(scores, labels);
  auto curve = RocCurve(scores, labels);
  double integral = 0.0;
  for (size_t i = 1; i < curve.size(); ++i) {
    integral += (curve[i].x - curve[i - 1].x) * 0.5 *
                (curve[i].y + curve[i - 1].y);
  }
  EXPECT_NEAR(integral, auc, 1e-9);
}

TEST(AveragePrecisionTest, PerfectRankerIsOne) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(AveragePrecisionTest, KnownValue) {
  // Ranking: pos, neg, pos => AP = (1/1 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(AveragePrecision({0.9, 0.5, 0.4}, {1, 0, 1}), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecisionTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.1}, {0, 0}), 0.0);
}

TEST(AccuracyTest, ThresholdBehaviour) {
  std::vector<double> scores = {0.9, 0.4, 0.6, 0.1};
  std::vector<int> labels = {1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels, 0.95), 0.5);  // all predicted 0
}

TEST(ThresholdMetricsTest, CountsAndRates) {
  std::vector<double> scores = {0.9, 0.8, 0.3, 0.2, 0.7};
  std::vector<int> labels = {1, 0, 1, 0, 1};
  ThresholdMetrics m = MetricsAtThreshold(scores, labels, 0.5);
  EXPECT_EQ(m.tp, 2);
  EXPECT_EQ(m.fp, 1);
  EXPECT_EQ(m.fn, 1);
  EXPECT_EQ(m.tn, 1);
  EXPECT_NEAR(m.tpr, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.fpr, 0.5, 1e-12);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(m.any_predicted_positive);
  // Identities FNR = 1 - TPR, FPR = 1 - TNR (Appendix H.1).
  EXPECT_NEAR(m.fnr, 1.0 - m.tpr, 1e-12);
  EXPECT_NEAR(m.fpr, 1.0 - m.tnr, 1e-12);
}

TEST(ThresholdMetricsTest, NoPositivePredictions) {
  ThresholdMetrics m = MetricsAtThreshold({0.1, 0.2}, {1, 0}, 0.9);
  EXPECT_FALSE(m.any_predicted_positive);
  EXPECT_EQ(m.tp, 0);
  EXPECT_EQ(m.fp, 0);
}

TEST(CurveTest, RocCurveEndpoints) {
  auto curve = RocCurve({0.9, 0.8, 0.3}, {1, 0, 1});
  EXPECT_DOUBLE_EQ(curve.front().x, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().y, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().x, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().y, 1.0);
  // Monotone nondecreasing in both axes.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].x, curve[i - 1].x);
    EXPECT_GE(curve[i].y, curve[i - 1].y);
  }
}

TEST(CurveTest, PrCurveRecallMonotone) {
  Rng rng(6);
  std::vector<double> scores(100);
  std::vector<int> labels(100);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.NextDouble();
    labels[i] = rng.NextBernoulli(0.3);
  }
  auto curve = PrCurve(scores, labels);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].x, curve[i - 1].x);
  }
  EXPECT_NEAR(curve.back().x, 1.0, 1e-12);
}

TEST(CurveTest, ThinCurvePreservesEndpoints) {
  auto curve = RocCurve({0.9, 0.8, 0.7, 0.6, 0.5, 0.4}, {1, 0, 1, 0, 1, 0});
  auto thin = ThinCurve(curve, 3);
  ASSERT_EQ(thin.size(), 3u);
  EXPECT_DOUBLE_EQ(thin.front().x, curve.front().x);
  EXPECT_DOUBLE_EQ(thin.back().x, curve.back().x);
}

TEST(BackProjectTest, PaperAppendixHNumbers) {
  // Appendix H.4: 0.98 precision on the 1%-benign-sampled set ≈ 0.32 on the
  // pre-sampling stream; 0.95 ≈ 0.16.
  EXPECT_NEAR(BackProjectPrecision(0.98, 0.01), 0.329, 0.01);
  EXPECT_NEAR(BackProjectPrecision(0.95, 0.01), 0.160, 0.01);
}

TEST(BackProjectTest, NoDownsamplingIsIdentity) {
  EXPECT_NEAR(BackProjectPrecision(0.7, 1.0), 0.7, 1e-12);
}

}  // namespace
}  // namespace xfraud::train
