#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "xfraud/common/rng.h"
#include "xfraud/train/metrics.h"

namespace xfraud::train {
namespace {

TEST(RocAucTest, PerfectRankerIsOne) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
}

TEST(RocAucTest, AntiRankerIsZero) {
  std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.0);
}

TEST(RocAucTest, AllTiedIsHalf) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  std::vector<int> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(RocAucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(RocAucTest, InvariantToMonotoneTransform) {
  Rng rng(3);
  std::vector<double> scores(200);
  std::vector<int> labels(200);
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.NextBernoulli(0.3);
    scores[i] = rng.NextDouble() + 0.3 * labels[i];
  }
  double base = RocAuc(scores, labels);
  std::vector<double> transformed(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    transformed[i] = std::exp(3.0 * scores[i]);  // strictly monotone
  }
  EXPECT_NEAR(RocAuc(transformed, labels), base, 1e-12);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  Rng rng(4);
  std::vector<double> scores(5000);
  std::vector<int> labels(5000);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.NextDouble();
    labels[i] = rng.NextBernoulli(0.2);
  }
  EXPECT_NEAR(RocAuc(scores, labels), 0.5, 0.03);
}

TEST(RocAucTest, MatchesTrapezoidIntegrationOfRocCurve) {
  Rng rng(5);
  std::vector<double> scores(300);
  std::vector<int> labels(300);
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.NextBernoulli(0.4);
    scores[i] = rng.NextGaussian() + labels[i];
  }
  double auc = RocAuc(scores, labels);
  auto curve = RocCurve(scores, labels);
  double integral = 0.0;
  for (size_t i = 1; i < curve.size(); ++i) {
    integral += (curve[i].x - curve[i - 1].x) * 0.5 *
                (curve[i].y + curve[i - 1].y);
  }
  EXPECT_NEAR(integral, auc, 1e-9);
}

TEST(AveragePrecisionTest, PerfectRankerIsOne) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(AveragePrecisionTest, KnownValue) {
  // Ranking: pos, neg, pos => AP = (1/1 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(AveragePrecision({0.9, 0.5, 0.4}, {1, 0, 1}), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecisionTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.1}, {0, 0}), 0.0);
}

TEST(AveragePrecisionTest, TieGroupKnownValue) {
  // One tie block {0.5: pos, neg}: precision at block end is 1/2 and the
  // block holds the only positive, so AP = 1/2 regardless of input order.
  EXPECT_DOUBLE_EQ(AveragePrecision({0.5, 0.5}, {1, 0}), 0.5);
  EXPECT_DOUBLE_EQ(AveragePrecision({0.5, 0.5}, {0, 1}), 0.5);
}

TEST(AveragePrecisionTest, InvariantUnderPermutationOfTiedScores) {
  // Heavily tied scores (only 4 distinct values over 60 samples). AP must be
  // a pure function of the (score, label) multiset: every permutation of the
  // inputs — which permutes std::sort's placement within tie groups — must
  // give bit-identical AP.
  Rng rng(11);
  std::vector<double> scores(60);
  std::vector<int> labels(60);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = 0.25 * static_cast<double>(rng.NextBounded(4));
    labels[i] = rng.NextBernoulli(0.4);
  }
  const double base = AveragePrecision(scores, labels);
  std::vector<size_t> perm(scores.size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  for (int trial = 0; trial < 20; ++trial) {
    rng.Shuffle(&perm);
    std::vector<double> s(scores.size());
    std::vector<int> l(labels.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      s[i] = scores[perm[i]];
      l[i] = labels[perm[i]];
    }
    EXPECT_DOUBLE_EQ(AveragePrecision(s, l), base) << "trial " << trial;
  }
}

TEST(AveragePrecisionTest, AllPositivesIsOne) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.2, 0.9, 0.5}, {1, 1, 1}), 1.0);
}

TEST(AveragePrecisionTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({}, {}), 0.0);
}

TEST(CurveTest, RocCurveInvariantUnderPermutationOfTiedScores) {
  Rng rng(12);
  std::vector<double> scores(50);
  std::vector<int> labels(50);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = 0.5 * static_cast<double>(rng.NextBounded(3));
    labels[i] = rng.NextBernoulli(0.5);
  }
  const auto base = RocCurve(scores, labels);
  std::vector<size_t> perm(scores.size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  for (int trial = 0; trial < 10; ++trial) {
    rng.Shuffle(&perm);
    std::vector<double> s(scores.size());
    std::vector<int> l(labels.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      s[i] = scores[perm[i]];
      l[i] = labels[perm[i]];
    }
    const auto curve = RocCurve(s, l);
    ASSERT_EQ(curve.size(), base.size());
    for (size_t i = 0; i < curve.size(); ++i) {
      EXPECT_DOUBLE_EQ(curve[i].x, base[i].x);
      EXPECT_DOUBLE_EQ(curve[i].y, base[i].y);
    }
  }
}

TEST(AccuracyTest, ThresholdBehaviour) {
  std::vector<double> scores = {0.9, 0.4, 0.6, 0.1};
  std::vector<int> labels = {1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels, 0.95), 0.5);  // all predicted 0
}

TEST(ThresholdMetricsTest, CountsAndRates) {
  std::vector<double> scores = {0.9, 0.8, 0.3, 0.2, 0.7};
  std::vector<int> labels = {1, 0, 1, 0, 1};
  ThresholdMetrics m = MetricsAtThreshold(scores, labels, 0.5);
  EXPECT_EQ(m.tp, 2);
  EXPECT_EQ(m.fp, 1);
  EXPECT_EQ(m.fn, 1);
  EXPECT_EQ(m.tn, 1);
  EXPECT_NEAR(m.tpr, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.fpr, 0.5, 1e-12);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(m.any_predicted_positive);
  // Identities FNR = 1 - TPR, FPR = 1 - TNR (Appendix H.1).
  EXPECT_NEAR(m.fnr, 1.0 - m.tpr, 1e-12);
  EXPECT_NEAR(m.fpr, 1.0 - m.tnr, 1e-12);
}

TEST(EmptyInputTest, MetricsDegradeInsteadOfCrashing) {
  // An empty eval split (e.g. a degenerate temporal fold) must not abort the
  // run: every metric returns its neutral value.
  EXPECT_DOUBLE_EQ(Accuracy({}, {}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(RocAuc({}, {}), 0.5);
  ThresholdMetrics m = MetricsAtThreshold({}, {}, 0.5);
  EXPECT_EQ(m.tp, 0);
  EXPECT_EQ(m.fp, 0);
  EXPECT_EQ(m.fn, 0);
  EXPECT_EQ(m.tn, 0);
  EXPECT_DOUBLE_EQ(m.tpr, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_FALSE(m.any_predicted_positive);
  auto roc = RocCurve({}, {});
  ASSERT_EQ(roc.size(), 1u);  // just the (0,0) origin
  EXPECT_DOUBLE_EQ(roc.front().x, 0.0);
  EXPECT_DOUBLE_EQ(roc.front().y, 0.0);
  EXPECT_TRUE(PrCurve({}, {}).empty());
}

TEST(EmptyInputTest, SingleClassInputs) {
  // All-positive / all-negative labels are common in tiny fraud slices.
  EXPECT_DOUBLE_EQ(Accuracy({0.9, 0.8}, {1, 1}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0.9, 0.8}, {0, 0}, 0.5), 0.0);
  ThresholdMetrics m = MetricsAtThreshold({0.9, 0.8}, {1, 1}, 0.5);
  EXPECT_DOUBLE_EQ(m.tpr, 1.0);
  EXPECT_DOUBLE_EQ(m.fpr, 0.0);  // no negatives: rate defined as 0
  ThresholdMetrics n = MetricsAtThreshold({0.9, 0.8}, {0, 0}, 0.5);
  EXPECT_DOUBLE_EQ(n.fpr, 1.0);
  EXPECT_DOUBLE_EQ(n.tpr, 0.0);
}

TEST(ThresholdMetricsTest, NoPositivePredictions) {
  ThresholdMetrics m = MetricsAtThreshold({0.1, 0.2}, {1, 0}, 0.9);
  EXPECT_FALSE(m.any_predicted_positive);
  EXPECT_EQ(m.tp, 0);
  EXPECT_EQ(m.fp, 0);
}

TEST(CurveTest, RocCurveEndpoints) {
  auto curve = RocCurve({0.9, 0.8, 0.3}, {1, 0, 1});
  EXPECT_DOUBLE_EQ(curve.front().x, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().y, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().x, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().y, 1.0);
  // Monotone nondecreasing in both axes.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].x, curve[i - 1].x);
    EXPECT_GE(curve[i].y, curve[i - 1].y);
  }
}

TEST(CurveTest, PrCurveRecallMonotone) {
  Rng rng(6);
  std::vector<double> scores(100);
  std::vector<int> labels(100);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.NextDouble();
    labels[i] = rng.NextBernoulli(0.3);
  }
  auto curve = PrCurve(scores, labels);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].x, curve[i - 1].x);
  }
  EXPECT_NEAR(curve.back().x, 1.0, 1e-12);
}

TEST(CurveTest, ThinCurvePreservesEndpoints) {
  auto curve = RocCurve({0.9, 0.8, 0.7, 0.6, 0.5, 0.4}, {1, 0, 1, 0, 1, 0});
  auto thin = ThinCurve(curve, 3);
  ASSERT_EQ(thin.size(), 3u);
  EXPECT_DOUBLE_EQ(thin.front().x, curve.front().x);
  EXPECT_DOUBLE_EQ(thin.back().x, curve.back().x);
}

TEST(BackProjectTest, PaperAppendixHNumbers) {
  // Appendix H.4: 0.98 precision on the 1%-benign-sampled set ≈ 0.32 on the
  // pre-sampling stream; 0.95 ≈ 0.16.
  EXPECT_NEAR(BackProjectPrecision(0.98, 0.01), 0.329, 0.01);
  EXPECT_NEAR(BackProjectPrecision(0.95, 0.01), 0.160, 0.01);
}

TEST(BackProjectTest, NoDownsamplingIsIdentity) {
  EXPECT_NEAR(BackProjectPrecision(0.7, 1.0), 0.7, 1e-12);
}

}  // namespace
}  // namespace xfraud::train
