#include "xfraud/sample/batch_loader.h"

#include <gtest/gtest.h>

#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/fault/faulty_sampler.h"
#include "xfraud/train/trainer.h"

namespace xfraud::sample {
namespace {

class BatchLoaderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 250;
    config.num_fraud_rings = 6;
    config.num_stolen_cards = 10;
    ds_ = new data::SimDataset(
        data::TransactionGenerator::Make(config, "loader"));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  static core::XFraudDetector MakeModel(uint64_t seed) {
    Rng rng(seed);
    core::DetectorConfig dc;
    dc.feature_dim = ds_->graph.feature_dim();
    dc.hidden_dim = 16;
    dc.num_heads = 2;
    dc.num_layers = 2;
    return core::XFraudDetector(dc, &rng);
  }

  /// Drains a loader built over the train split with the given worker
  /// count; every configuration must yield this exact sequence.
  static std::vector<LoadedBatch> Drain(int num_workers, int prefetch = 4) {
    BatchLoader loader(
        &ds_->graph, &sampler_,
        BatchLoader::MakeSeedBatches(ds_->train_nodes, 64), /*stream_seed=*/42,
        LoaderOptions{.num_workers = num_workers,
                      .prefetch_depth = prefetch});
    std::vector<LoadedBatch> out;
    while (auto b = loader.Next()) out.push_back(std::move(*b));
    return out;
  }

  static void ExpectSameBatches(const std::vector<LoadedBatch>& a,
                                const std::vector<LoadedBatch>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index);
      EXPECT_EQ(a[i].batch.sub.nodes, b[i].batch.sub.nodes);
      EXPECT_EQ(a[i].batch.edge_src, b[i].batch.edge_src);
      EXPECT_EQ(a[i].batch.edge_dst, b[i].batch.edge_dst);
      EXPECT_EQ(a[i].batch.edge_types, b[i].batch.edge_types);
      EXPECT_EQ(a[i].batch.target_locals, b[i].batch.target_locals);
      EXPECT_EQ(a[i].batch.target_labels, b[i].batch.target_labels);
    }
  }

  static data::SimDataset* ds_;
  static SageSampler sampler_;
};

data::SimDataset* BatchLoaderTest::ds_ = nullptr;
SageSampler BatchLoaderTest::sampler_(2, 8);

TEST_F(BatchLoaderTest, MakeSeedBatchesPartitionsInOrder) {
  std::vector<int32_t> nodes = {1, 2, 3, 4, 5, 6, 7};
  auto batches = BatchLoader::MakeSeedBatches(nodes, 3);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(batches[1], (std::vector<int32_t>{4, 5, 6}));
  EXPECT_EQ(batches[2], (std::vector<int32_t>{7}));
  EXPECT_TRUE(BatchLoader::MakeSeedBatches({}, 3).empty());
}

TEST_F(BatchLoaderTest, SerialModeCoversAllBatches) {
  auto batches = Drain(0);
  auto expected = BatchLoader::MakeSeedBatches(ds_->train_nodes, 64);
  ASSERT_EQ(batches.size(), expected.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(batches[i].index, static_cast<int64_t>(i));
    EXPECT_GE(batches[i].sample_seconds, 0.0);
    // Every requested seed is a classification target of its batch.
    EXPECT_EQ(batches[i].batch.target_labels.size(), expected[i].size());
  }
}

TEST_F(BatchLoaderTest, WorkerCountDoesNotChangeTheStream) {
  auto serial = Drain(0);
  ExpectSameBatches(serial, Drain(1));
  ExpectSameBatches(serial, Drain(3));
  // A tight queue forces backpressure; the sequence must not change.
  ExpectSameBatches(serial, Drain(3, /*prefetch=*/1));
}

TEST_F(BatchLoaderTest, EarlyConsumerExitReleasesWorkers) {
  // Destroy the loader with most batches unconsumed and workers likely
  // blocked on a full queue; the destructor must not deadlock.
  BatchLoader loader(&ds_->graph, &sampler_,
                     BatchLoader::MakeSeedBatches(ds_->train_nodes, 32),
                     /*stream_seed=*/7,
                     LoaderOptions{.num_workers = 2, .prefetch_depth = 1});
  auto first = loader.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->index, 0);
}

TEST_F(BatchLoaderTest, SerialSamplerCrashThrowsInline) {
  fault::FaultPlan plan;
  plan.crash_batch = 1;
  fault::FaultInjector injector(plan);
  fault::FaultySampler faulty(&sampler_, &injector);
  BatchLoader loader(&ds_->graph, &faulty,
                     BatchLoader::MakeSeedBatches(ds_->train_nodes, 64),
                     /*stream_seed=*/9, LoaderOptions{.num_workers = 0});
  ASSERT_TRUE(loader.Next().has_value());  // call 0 succeeds
  EXPECT_THROW(loader.Next(), fault::InjectedCrash);
}

TEST_F(BatchLoaderTest, PipelinedWorkerCrashPropagatesToConsumer) {
  // A sampler worker dying must close the queue and rethrow on the
  // consumer thread — not hang the consumer on a queue nobody will fill,
  // and not vanish into the worker thread. (The test completing at all is
  // the no-hang assertion; ctest would time out otherwise.)
  for (int num_workers : {1, 3}) {
    fault::FaultPlan plan;
    plan.crash_batch = 2;
    fault::FaultInjector injector(plan);
    fault::FaultySampler faulty(&sampler_, &injector);
    BatchLoader loader(&ds_->graph, &faulty,
                       BatchLoader::MakeSeedBatches(ds_->train_nodes, 16),
                       /*stream_seed=*/9,
                       LoaderOptions{.num_workers = num_workers,
                                     .prefetch_depth = 2});
    EXPECT_THROW(
        {
          while (auto b = loader.Next()) {
          }
        },
        fault::InjectedCrash)
        << num_workers << " workers";
  }
}

TEST_F(BatchLoaderTest, PipelinedTrainingReproducesSerialBitForBit) {
  train::TrainOptions opts;
  opts.max_epochs = 3;
  opts.patience = 3;
  opts.batch_size = 128;
  opts.seed = 11;

  auto serial_model = MakeModel(11);
  train::Trainer serial(&serial_model, &sampler_, opts);
  auto serial_result = serial.Train(*ds_);

  opts.num_sample_workers = 3;
  opts.prefetch_depth = 2;
  auto piped_model = MakeModel(11);
  train::Trainer piped(&piped_model, &sampler_, opts);
  auto piped_result = piped.Train(*ds_);

  ASSERT_EQ(serial_result.history.size(), piped_result.history.size());
  for (size_t e = 0; e < serial_result.history.size(); ++e) {
    EXPECT_EQ(serial_result.history[e].train_loss,
              piped_result.history[e].train_loss);
    EXPECT_EQ(serial_result.history[e].val_auc,
              piped_result.history[e].val_auc);
  }
  EXPECT_EQ(serial_result.best_val_auc, piped_result.best_val_auc);
  EXPECT_EQ(serial_result.best_epoch, piped_result.best_epoch);
}

TEST_F(BatchLoaderTest, EvaluateDoesNotPerturbTraining) {
  train::TrainOptions opts;
  opts.max_epochs = 2;
  opts.patience = 2;
  opts.seed = 13;

  auto plain_model = MakeModel(13);
  train::Trainer plain(&plain_model, &sampler_, opts);
  auto plain_result = plain.Train(*ds_);

  // Evaluating first (or any number of times) must not shift the training
  // batch order: evaluation samples from its own forked RNG stream.
  auto evaluated_model = MakeModel(13);
  train::Trainer evaluated(&evaluated_model, &sampler_, opts);
  evaluated.Evaluate(ds_->graph, ds_->test_nodes);
  evaluated.Evaluate(ds_->graph, ds_->val_nodes, 32);
  auto evaluated_result = evaluated.Train(*ds_);

  ASSERT_EQ(plain_result.history.size(), evaluated_result.history.size());
  for (size_t e = 0; e < plain_result.history.size(); ++e) {
    EXPECT_EQ(plain_result.history[e].train_loss,
              evaluated_result.history[e].train_loss);
    EXPECT_EQ(plain_result.history[e].val_auc,
              evaluated_result.history[e].val_auc);
  }
}

TEST_F(BatchLoaderTest, EvaluateIsRepeatable) {
  auto model = MakeModel(17);
  train::Trainer trainer(&model, &sampler_, train::TrainOptions{});
  auto first = trainer.Evaluate(ds_->graph, ds_->test_nodes, 64);
  auto second = trainer.Evaluate(ds_->graph, ds_->test_nodes, 64);
  EXPECT_EQ(first.scores, second.scores);
  EXPECT_EQ(first.auc, second.auc);
}

TEST_F(BatchLoaderTest, EvaluateSeparatesSamplingFromInference) {
  auto model = MakeModel(19);
  train::Trainer trainer(&model, &sampler_, train::TrainOptions{});
  auto eval = trainer.Evaluate(ds_->graph, ds_->test_nodes, 64);
  EXPECT_GT(eval.secs_per_batch_mean, 0.0);
  EXPECT_GT(eval.sample_secs_per_batch_mean, 0.0);
}

TEST_F(BatchLoaderTest, TrainHistoryRecordsPipelineCosts) {
  train::TrainOptions opts;
  opts.max_epochs = 1;
  opts.patience = 1;
  opts.num_sample_workers = 2;
  auto model = MakeModel(23);
  train::Trainer trainer(&model, &sampler_, opts);
  auto result = trainer.Train(*ds_);
  ASSERT_EQ(result.history.size(), 1u);
  EXPECT_GT(result.history[0].sample_seconds, 0.0);
  EXPECT_GT(result.history[0].compute_seconds, 0.0);
  EXPECT_GT(result.mean_epoch_sample_seconds, 0.0);
  EXPECT_GT(result.mean_epoch_compute_seconds, 0.0);
}

}  // namespace
}  // namespace xfraud::sample
