#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "xfraud/common/rng.h"
#include "xfraud/graph/graph_builder.h"
#include "xfraud/graph/hetero_graph.h"
#include "xfraud/graph/subgraph.h"

namespace xfraud::graph {
namespace {

TransactionRecord MakeRecord(const std::string& id, const std::string& buyer,
                             const std::string& email, const std::string& pmt,
                             const std::string& addr, int8_t label) {
  TransactionRecord r;
  r.txn_id = id;
  r.buyer_id = buyer;
  r.email = email;
  r.payment_token = pmt;
  r.shipping_address = addr;
  r.features = {1.0f, 2.0f};
  r.label = label;
  return r;
}

/// The two transactions of paper Figure 3: same buyer & email, different
/// payment token & address.
GraphBuilder Figure3Builder() {
  GraphBuilder b;
  EXPECT_TRUE(b.AddTransaction(MakeRecord("t1", "john", "john@gmail",
                                          "credit_card", "einstein_str_1",
                                          kLabelBenign))
                  .ok());
  EXPECT_TRUE(b.AddTransaction(MakeRecord("t2", "john", "john@gmail",
                                          "payment_slip", "hauptstr_1",
                                          kLabelFraud))
                  .ok());
  return b;
}

TEST(GraphBuilderTest, Figure3Construction) {
  HeteroGraph g = Figure3Builder().Build();
  // 2 txns + 1 buyer + 1 email + 2 pmts + 2 addrs = 8 nodes.
  EXPECT_EQ(g.num_nodes(), 8);
  // Each txn links 4 entities; every linkage is 2 directed edges.
  EXPECT_EQ(g.num_edges(), 16);
  auto counts = g.NodeTypeCounts();
  EXPECT_EQ(counts[static_cast<int>(NodeType::kTxn)], 2);
  EXPECT_EQ(counts[static_cast<int>(NodeType::kBuyer)], 1);
  EXPECT_EQ(counts[static_cast<int>(NodeType::kEmail)], 1);
  EXPECT_EQ(counts[static_cast<int>(NodeType::kPmt)], 2);
  EXPECT_EQ(counts[static_cast<int>(NodeType::kAddr)], 2);
}

TEST(GraphBuilderTest, SharedEntitiesAreDeduplicated) {
  HeteroGraph g = Figure3Builder().Build();
  // The shared buyer has degree 2 (one incoming edge per transaction).
  auto buyers = g.NodesOfType(NodeType::kBuyer);
  ASSERT_EQ(buyers.size(), 1u);
  EXPECT_EQ(g.InDegree(buyers[0]), 2);
  // Each distinct payment token has degree 1.
  for (int32_t pmt : g.NodesOfType(NodeType::kPmt)) {
    EXPECT_EQ(g.InDegree(pmt), 1);
  }
}

TEST(GraphBuilderTest, RejectsDuplicateTxnIds) {
  GraphBuilder b;
  ASSERT_TRUE(
      b.AddTransaction(MakeRecord("t1", "b", "e", "p", "a", 0)).ok());
  Status s = b.AddTransaction(MakeRecord("t1", "b2", "e2", "p2", "a2", 0));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(GraphBuilderTest, RejectsInconsistentFeatureDims) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddTransaction(MakeRecord("t1", "b", "e", "p", "a", 0)).ok());
  TransactionRecord bad = MakeRecord("t2", "b", "e", "p", "a", 0);
  bad.features = {1.0f, 2.0f, 3.0f};
  Status s = b.AddTransaction(bad);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, GuestCheckoutHasNoBuyerEdge) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddTransaction(MakeRecord("t1", "", "e", "p", "a", 1)).ok());
  HeteroGraph g = b.Build();
  EXPECT_EQ(g.NodesOfType(NodeType::kBuyer).size(), 0u);
  // txn + email + pmt + addr.
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 6);
}

TEST(GraphBuilderTest, SameStringDifferentTypesAreDistinctNodes) {
  GraphBuilder b;
  ASSERT_TRUE(
      b.AddTransaction(MakeRecord("t1", "x", "x", "x", "x", 0)).ok());
  HeteroGraph g = b.Build();
  // One node per entity type even though the key string is identical.
  EXPECT_EQ(g.num_nodes(), 5);
}

TEST(GraphBuilderTest, EdgeTypesMatchEntityTypes) {
  HeteroGraph g = Figure3Builder().Build();
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    for (int64_t e = g.InDegreeBegin(v); e < g.InDegreeEnd(v); ++e) {
      int32_t u = g.neighbors()[e];
      EdgeType et = g.edge_types()[e];
      if (g.node_type(v) == NodeType::kTxn) {
        // Incoming edge of a txn comes from an entity.
        EXPECT_EQ(et, EntityToTxnEdge(g.node_type(u)));
      } else {
        EXPECT_EQ(g.node_type(u), NodeType::kTxn);
        EXPECT_EQ(et, TxnToEntityEdge(g.node_type(v)));
      }
    }
  }
}

TEST(GraphBuilderTest, FeaturesOnlyOnTransactions) {
  HeteroGraph g = Figure3Builder().Build();
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.HasFeatures(v), g.node_type(v) == NodeType::kTxn);
  }
  auto txns = g.NodesOfType(NodeType::kTxn);
  EXPECT_EQ(g.Features(txns[0])[0], 1.0f);
  EXPECT_EQ(g.Features(txns[0])[1], 2.0f);
}

TEST(GraphTest, LabelsAndFraudRate) {
  HeteroGraph g = Figure3Builder().Build();
  auto labeled = g.LabeledTransactions();
  EXPECT_EQ(labeled.size(), 2u);
  EXPECT_DOUBLE_EQ(g.FraudRate(), 0.5);
}

TEST(GraphTest, TxnNodeLookup) {
  GraphBuilder b = Figure3Builder();
  EXPECT_GE(b.TxnNode("t1"), 0);
  EXPECT_GE(b.TxnNode("t2"), 0);
  EXPECT_EQ(b.TxnNode("nope"), -1);
}

TEST(SubgraphTest, KHopGrowsByHops) {
  HeteroGraph g = Figure3Builder().Build();
  auto txns = g.NodesOfType(NodeType::kTxn);
  Rng rng(1);
  // Hop 1 from t1: its 4 entities + itself.
  Subgraph one = KHopSubgraph(g, txns[0], 1, -1, &rng);
  EXPECT_EQ(one.num_nodes(), 5);
  // Hop 2 additionally reaches t2 through the shared buyer/email.
  Subgraph two = KHopSubgraph(g, txns[0], 2, -1, &rng);
  EXPECT_EQ(two.num_nodes(), 6);
  // Hop 3 closes over t2's own pmt/addr: the full component.
  Subgraph three = KHopSubgraph(g, txns[0], 3, -1, &rng);
  EXPECT_EQ(three.num_nodes(), 8);
}

TEST(SubgraphTest, InducedEdgesAreComplete) {
  HeteroGraph g = Figure3Builder().Build();
  auto txns = g.NodesOfType(NodeType::kTxn);
  Rng rng(1);
  Subgraph full = KHopSubgraph(g, txns[0], 3, -1, &rng);
  // All 16 directed edges are induced once all nodes are present.
  EXPECT_EQ(full.num_edges(), 16);
  // Every edge references valid local nodes.
  for (int64_t e = 0; e < full.num_edges(); ++e) {
    EXPECT_GE(full.src[e], 0);
    EXPECT_LT(full.src[e], full.num_nodes());
    EXPECT_GE(full.dst[e], 0);
    EXPECT_LT(full.dst[e], full.num_nodes());
  }
}

TEST(SubgraphTest, FanoutCapsNeighbourExpansion) {
  // A star: one address shared by 10 transactions.
  GraphBuilder b;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.AddTransaction(MakeRecord("t" + std::to_string(i),
                                            "b" + std::to_string(i),
                                            "e" + std::to_string(i),
                                            "p" + std::to_string(i),
                                            "shared_addr", 0))
                    .ok());
  }
  HeteroGraph g = b.Build();
  auto addrs = g.NodesOfType(NodeType::kAddr);
  ASSERT_EQ(addrs.size(), 1u);
  Rng rng(7);
  Subgraph capped = KHopSubgraph(g, addrs[0], 1, 3, &rng);
  EXPECT_EQ(capped.num_nodes(), 4);  // addr + 3 sampled txns
}

TEST(SubgraphTest, CommunityCollectsComponent) {
  HeteroGraph g = Figure3Builder().Build();
  auto txns = g.NodesOfType(NodeType::kTxn);
  Subgraph community = Community(g, txns[0], 1000);
  EXPECT_EQ(community.num_nodes(), 8);
  EXPECT_EQ(community.seed_local, 0);
  EXPECT_EQ(community.nodes[community.seed_local], txns[0]);
}

TEST(SubgraphTest, CommunityRespectsCap) {
  HeteroGraph g = Figure3Builder().Build();
  auto txns = g.NodesOfType(NodeType::kTxn);
  Subgraph community = Community(g, txns[0], 3);
  EXPECT_LE(community.num_nodes(), 3);
}

TEST(SubgraphTest, UndirectedEdgesPairDirections) {
  HeteroGraph g = Figure3Builder().Build();
  auto txns = g.NodesOfType(NodeType::kTxn);
  Subgraph full = Community(g, txns[0], 1000);
  auto und = UndirectedEdges(full);
  // 8 linkages = 8 undirected edges, each with both directions present.
  EXPECT_EQ(und.size(), 8u);
  for (const auto& e : und) {
    EXPECT_LT(e.u, e.v);
    EXPECT_GE(e.directed_a, 0);
    EXPECT_GE(e.directed_b, 0);
    // The two directed edges connect the same endpoints, opposite ways.
    EXPECT_EQ(full.src[e.directed_a], e.u);
    EXPECT_EQ(full.dst[e.directed_a], e.v);
    EXPECT_EQ(full.src[e.directed_b], e.v);
    EXPECT_EQ(full.dst[e.directed_b], e.u);
  }
}

TEST(SubgraphTest, LineGraphOfPath) {
  // Path a-b-c: two undirected edges sharing node b => connected in L(G).
  std::vector<UndirectedEdge> edges(2);
  edges[0].u = 0; edges[0].v = 1;
  edges[1].u = 1; edges[1].v = 2;
  auto adj = LineGraphAdjacency(edges, 3);
  ASSERT_EQ(adj.size(), 2u);
  ASSERT_EQ(adj[0].size(), 1u);
  EXPECT_EQ(adj[0][0], 1);
  ASSERT_EQ(adj[1].size(), 1u);
  EXPECT_EQ(adj[1][0], 0);
}

TEST(SubgraphTest, LineGraphOfStar) {
  // Star center 0 with leaves 1,2,3: L(G) is a triangle.
  std::vector<UndirectedEdge> edges(3);
  for (int i = 0; i < 3; ++i) {
    edges[i].u = 0;
    edges[i].v = i + 1;
  }
  auto adj = LineGraphAdjacency(edges, 4);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(adj[i].size(), 2u);
}

TEST(SubgraphTest, LocalNodeTypes) {
  HeteroGraph g = Figure3Builder().Build();
  auto txns = g.NodesOfType(NodeType::kTxn);
  Subgraph community = Community(g, txns[0], 1000);
  auto types = community.LocalNodeTypes(g);
  int txn_count = 0;
  for (auto t : types) txn_count += t == NodeType::kTxn;
  EXPECT_EQ(txn_count, 2);
}

}  // namespace
}  // namespace xfraud::graph
