#include <cmath>

#include <gtest/gtest.h>

#include "xfraud/nn/tensor.h"
#include "xfraud/nn/variable.h"

namespace xfraud::nn {
namespace {

TEST(TensorTest, ConstructionAndFill) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.At(1, 2), 1.5f);
  t.Fill(-2.0f);
  EXPECT_EQ(t.At(0, 0), -2.0f);
}

TEST(TensorTest, FromDataVector) {
  Tensor t(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.At(0, 1), 2.0f);
  EXPECT_EQ(t.At(1, 0), 3.0f);
}

TEST(TensorTest, RowPointersAreRowMajor) {
  Tensor t(3, 4);
  t.At(2, 1) = 7.0f;
  EXPECT_EQ(t.Row(2)[1], 7.0f);
  EXPECT_EQ(t.data()[2 * 4 + 1], 7.0f);
}

TEST(TensorTest, ZerosLikeMatchesShape) {
  Tensor t(5, 2, 3.0f);
  Tensor z = Tensor::ZerosLike(t);
  EXPECT_TRUE(z.SameShape(t));
  EXPECT_EQ(z.Sum(), 0.0);
}

TEST(TensorTest, AddAndScaleInPlace) {
  Tensor a(2, 2, 1.0f);
  Tensor b(2, 2, 2.0f);
  a.AddInPlace(b);
  EXPECT_EQ(a.At(0, 0), 3.0f);
  a.ScaleInPlace(0.5f);
  EXPECT_EQ(a.At(1, 1), 1.5f);
}

TEST(TensorTest, SumAndNorm) {
  Tensor t(1, 2, {3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(t.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(t.Norm(), 5.0);
}

TEST(TensorTest, UniformRespectsBound) {
  Rng rng(1);
  Tensor t = Tensor::Uniform(50, 50, 0.25f, &rng);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.vec()[i], -0.25f);
    EXPECT_LE(t.vec()[i], 0.25f);
  }
}

TEST(TensorTest, GaussianHasRequestedSpread) {
  Rng rng(2);
  Tensor t = Tensor::Gaussian(100, 100, 2.0f, &rng);
  double mean = t.Sum() / t.size();
  double var = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) {
    var += (t.vec()[i] - mean) * (t.vec()[i] - mean);
  }
  var /= t.size();
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor(3, 4).ShapeString(), "Tensor[3x4]");
}

TEST(VariableTest, CopySharesStorage) {
  Var a(Tensor(1, 1, 5.0f), true);
  Var b = a;  // aliases the same node
  b.mutable_value().At(0, 0) = 9.0f;
  EXPECT_EQ(a.value().At(0, 0), 9.0f);
}

TEST(VariableTest, ItemRequiresScalarShape) {
  Var s(Tensor(1, 1, 3.5f), false);
  EXPECT_FLOAT_EQ(s.item(), 3.5f);
}

TEST(VariableTest, ZeroGradResetsAccumulation) {
  Var x(Tensor(1, 1, 2.0f), true);
  // grad buffer allocated on demand.
  x.grad().Fill(7.0f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad().At(0, 0), 0.0f);
}

TEST(VariableTest, DefaultConstructedIsUndefined) {
  Var v;
  EXPECT_FALSE(v.defined());
}

}  // namespace
}  // namespace xfraud::nn
