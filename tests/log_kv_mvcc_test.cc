// MVCC surface of LogKvStore (DESIGN.md §15): epoch publish/pin semantics,
// pending-tail rollback, TTL visibility, compaction byte-identity under
// pins, and the SIGKILL-mid-compaction crash windows. The crash-window
// tests fork real processes and self-SIGKILL inside Compact, so they live
// behind the MultiProcessKv prefix: the main ctest entry filters all
// MultiProcess* suites out and xfraud_mp_tests runs them under a hard
// timeout (tools/ci.sh --mode=mp).

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "xfraud/fault/fault_injector.h"
#include "xfraud/kv/log_kv.h"
#include "xfraud/kv/snapshot.h"

namespace xfraud::kv {
namespace {

std::string TempPath(const std::string& name) {
  std::string path = "/tmp/xf-mvcc-" + std::to_string(::getpid()) + "-" + name;
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
  return path;
}

std::unique_ptr<LogKvStore> OpenOrDie(const std::string& path) {
  auto opened = LogKvStore::Open(path);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

TEST(LogKvMvccTest, EpochsAreImmutableVersionedSnapshots) {
  std::string path = TempPath("epochs.kv");
  auto store = OpenOrDie(path);
  ASSERT_TRUE(store->Put("k", "v1").ok());
  auto e1 = store->PublishEpoch();
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1.value(), 1u);
  ASSERT_TRUE(store->Put("k", "v2").ok());
  ASSERT_TRUE(store->Put("only2", "x").ok());
  auto e2 = store->PublishEpoch();
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2.value(), 2u);
  EXPECT_EQ(store->published_epoch(), 2u);

  std::string value;
  ASSERT_TRUE(store->GetAt("k", 1, &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(store->GetAt("k", 2, &value).ok());
  EXPECT_EQ(value, "v2");
  EXPECT_TRUE(store->GetAt("only2", 1, &value).IsNotFound());
  ASSERT_TRUE(store->GetAt("only2", 2, &value).ok());
  // The head alias reproduces plain Get.
  ASSERT_TRUE(store->GetAt("k", kHeadEpoch, &value).ok());
  EXPECT_EQ(value, "v2");
  // Unpublished epochs are a precondition failure, not an empty read.
  EXPECT_TRUE(store->GetAt("k", 3, &value).IsFailedPrecondition());
  EXPECT_TRUE(store->GetAt("k", 0, &value).IsFailedPrecondition());

  std::vector<std::string> at1 = store->KeysWithPrefixAt("", 1);
  EXPECT_EQ(at1, std::vector<std::string>({"k"}));
  std::vector<std::string> at2 = store->KeysWithPrefixAt("", 2);
  EXPECT_EQ(at2, std::vector<std::string>({"k", "only2"}));
  std::remove(path.c_str());
}

TEST(LogKvMvccTest, PendingWritesInvisibleToEpochsUntilPublish) {
  std::string path = TempPath("pending.kv");
  auto store = OpenOrDie(path);
  ASSERT_TRUE(store->Put("a", "1").ok());
  ASSERT_TRUE(store->PublishEpoch().ok());
  ASSERT_TRUE(store->Put("b", "2").ok());

  std::string value;
  // Head sees the pending write; the published epoch does not.
  ASSERT_TRUE(store->Get("b", &value).ok());
  EXPECT_TRUE(store->GetAt("b", 1, &value).IsNotFound());
  ASSERT_TRUE(store->PublishEpoch().ok());
  ASSERT_TRUE(store->GetAt("b", 2, &value).ok());
  std::remove(path.c_str());
}

TEST(LogKvMvccTest, DiscardPendingRollsBackToLastPublish) {
  std::string path = TempPath("discard.kv");
  {
    auto store = OpenOrDie(path);
    ASSERT_TRUE(store->Put("keep", "yes").ok());
    ASSERT_TRUE(store->PublishEpoch().ok());
    ASSERT_TRUE(store->Put("keep", "overwritten").ok());
    ASSERT_TRUE(store->Put("drop", "no").ok());
    ASSERT_TRUE(store->DiscardPending().ok());
    std::string value;
    ASSERT_TRUE(store->Get("keep", &value).ok());
    EXPECT_EQ(value, "yes");
    EXPECT_TRUE(store->Get("drop", &value).IsNotFound());
    EXPECT_EQ(store->published_epoch(), 1u);
  }
  // The truncation is durable: a reopen replays only the committed prefix.
  auto store = OpenOrDie(path);
  std::string value;
  ASSERT_TRUE(store->Get("keep", &value).ok());
  EXPECT_EQ(value, "yes");
  EXPECT_TRUE(store->Get("drop", &value).IsNotFound());
  std::remove(path.c_str());
}

TEST(LogKvMvccTest, CrashedPendingTailIsDurableUntilDiscarded) {
  std::string path = TempPath("crash_pending.kv");
  {
    auto store = OpenOrDie(path);
    ASSERT_TRUE(store->Put("a", "1").ok());
    ASSERT_TRUE(store->PublishEpoch().ok());
    ASSERT_TRUE(store->Put("b", "2").ok());
  }  // "crash": pending write b never published
  auto store = OpenOrDie(path);
  EXPECT_EQ(store->published_epoch(), 1u);
  std::string value;
  // Replay surfaces the pending tail at the head (an ingestor that wants
  // to resume could publish it) — but it is not part of any epoch.
  ASSERT_TRUE(store->Get("b", &value).ok());
  EXPECT_TRUE(store->GetAt("b", 1, &value).IsNotFound());
  ASSERT_TRUE(store->DiscardPending().ok());
  EXPECT_TRUE(store->Get("b", &value).IsNotFound());
  std::remove(path.c_str());
}

TEST(LogKvMvccTest, SnapshotHandlePinsAgainstCompaction) {
  std::string path = TempPath("pins.kv");
  auto store = OpenOrDie(path);
  ASSERT_TRUE(store->Put("k", "old").ok());
  ASSERT_TRUE(store->PublishEpoch().ok());

  auto pin = SnapshotHandle::PinLatest(store.get());
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(pin.value().epoch(), 1u);

  ASSERT_TRUE(store->Put("k", "new").ok());
  ASSERT_TRUE(store->PublishEpoch().ok());
  ASSERT_TRUE(store->Compact().ok());

  // The pinned epoch survives compaction bit-identically.
  std::string value;
  ASSERT_TRUE(store->GetAt("k", 1, &value).ok());
  EXPECT_EQ(value, "old");
  EXPECT_EQ(store->earliest_epoch(), 1u);

  // Releasing the last pin unblocks GC: the floor advances and the old
  // version becomes unreadable (FailedPrecondition, never a stale value).
  pin.value().Release();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_EQ(store->earliest_epoch(), 2u);
  EXPECT_TRUE(store->GetAt("k", 1, &value).IsFailedPrecondition());
  ASSERT_TRUE(store->GetAt("k", 2, &value).ok());
  EXPECT_EQ(value, "new");
  std::remove(path.c_str());
}

TEST(LogKvMvccTest, PinRejectsUnpublishedAndCompactedEpochs) {
  std::string path = TempPath("pin_reject.kv");
  auto store = OpenOrDie(path);
  EXPECT_TRUE(SnapshotHandle::Pin(store.get(), 1).status()
                  .IsFailedPrecondition());  // nothing published yet
  ASSERT_TRUE(store->Put("k", "1").ok());
  ASSERT_TRUE(store->PublishEpoch().ok());
  ASSERT_TRUE(store->Put("k", "2").ok());
  ASSERT_TRUE(store->PublishEpoch().ok());
  ASSERT_TRUE(store->Compact().ok());  // floor -> 2
  EXPECT_TRUE(
      SnapshotHandle::Pin(store.get(), 1).status().IsFailedPrecondition());
  EXPECT_TRUE(SnapshotHandle::Pin(store.get(), 2).ok());
  std::remove(path.c_str());
}

TEST(LogKvMvccTest, TtlExpiresOldEpochsAtReadTime) {
  std::string path = TempPath("ttl.kv");
  auto store = OpenOrDie(path);
  store->SetTtlEpochs(2);
  ASSERT_TRUE(store->Put("old", "x").ok());
  ASSERT_TRUE(store->PublishEpoch().ok());  // written at epoch 1
  ASSERT_TRUE(store->PublishEpoch().ok());  // epoch 2 (empty)

  std::string value;
  // Visible while read_epoch - write_epoch < ttl…
  ASSERT_TRUE(store->GetAt("old", 2, &value).ok());
  ASSERT_TRUE(store->PublishEpoch().ok());  // epoch 3
  // …expired at epoch 3 (3 - 1 >= 2) and at the head.
  EXPECT_TRUE(store->GetAt("old", 3, &value).IsNotFound());
  EXPECT_TRUE(store->Get("old", &value).IsNotFound());
  // Expiry is a visibility rule: the older pinned epoch still sees it.
  ASSERT_TRUE(store->GetAt("old", 2, &value).ok());
  EXPECT_EQ(value, "x");
  std::remove(path.c_str());
}

/// Records every (epoch, key) -> value/NotFound observation so compaction
/// byte-identity is checked against the full readable history.
std::vector<std::string> HistorySnapshot(LogKvStore* store,
                                         const std::vector<std::string>& keys) {
  std::vector<std::string> obs;
  for (uint64_t e = store->earliest_epoch(); e <= store->published_epoch();
       ++e) {
    for (const std::string& key : keys) {
      std::string value;
      Status s = store->GetAt(key, e, &value);
      obs.push_back(std::to_string(e) + "/" + key + "=" +
                    (s.ok() ? value : s.ToString()));
    }
  }
  return obs;
}

TEST(LogKvMvccTest, CompactionPreservesEveryReadableEpochBitIdentically) {
  std::string path = TempPath("compact_ident.kv");
  auto store = OpenOrDie(path);
  const std::vector<std::string> keys = {"a", "b", "c"};
  for (int round = 0; round < 6; ++round) {
    for (const std::string& key : keys) {
      ASSERT_TRUE(
          store->Put(key, key + ":round" + std::to_string(round)).ok());
    }
    if (round == 3) ASSERT_TRUE(store->Delete("c").ok());
    ASSERT_TRUE(store->PublishEpoch().ok());
  }
  auto pin = SnapshotHandle::Pin(store.get(), 2);
  ASSERT_TRUE(pin.ok());

  std::vector<std::string> before = HistorySnapshot(store.get(), keys);
  auto reclaimed = store->Compact();
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GT(reclaimed.value(), 0);  // overwrites below the floor collapsed
  EXPECT_EQ(store->earliest_epoch(), 2u);
  std::vector<std::string> after = HistorySnapshot(store.get(), keys);
  // Epoch 1 fell below the floor; every epoch still readable is identical.
  std::vector<std::string> expected(before.begin() + 3, before.end());
  EXPECT_EQ(after, expected);

  // And the surviving history is durable across reopen.
  pin.value().Release();
  store = OpenOrDie(path);
  EXPECT_EQ(store->published_epoch(), 6u);
  EXPECT_EQ(store->earliest_epoch(), 2u);
  EXPECT_EQ(HistorySnapshot(store.get(), keys), expected);
  std::remove(path.c_str());
}

TEST(LogKvMvccTest, PinnedReadersRaceWritersAndCompactionSafely) {
  std::string path = TempPath("race.kv");
  auto store = OpenOrDie(path);
  ASSERT_TRUE(store->Put("k", "epoch1").ok());
  ASSERT_TRUE(store->PublishEpoch().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto pin = SnapshotHandle::PinLatest(store.get());
      if (!pin.ok()) continue;
      const uint64_t epoch = pin.value().epoch();
      std::string value;
      Status s = store->GetAt("k", epoch, &value);
      // A pinned epoch read must always succeed and always observe that
      // epoch's committed value — never a half-published one.
      if (!s.ok() || value != "epoch" + std::to_string(epoch)) {
        torn_reads.fetch_add(1);
      }
    }
  });
  for (int i = 2; i <= 40; ++i) {
    ASSERT_TRUE(store->Put("k", "epoch" + std::to_string(i)).ok());
    ASSERT_TRUE(store->PublishEpoch().ok());
    if (i % 8 == 0) ASSERT_TRUE(store->Compact().ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn_reads.load(), 0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// SIGKILL crash windows inside Compact (real process death, forked).
// ---------------------------------------------------------------------------

/// Builds the fixture store: three published epochs of overwrites plus one
/// pending (uncommitted) write.
void BuildCrashFixture(const std::string& path) {
  auto store = OpenOrDie(path);
  for (int e = 1; e <= 3; ++e) {
    ASSERT_TRUE(store->Put("k", "epoch" + std::to_string(e)).ok());
    ASSERT_TRUE(store->Put("stable", "forever").ok());
    ASSERT_TRUE(store->PublishEpoch().ok());
  }
  ASSERT_TRUE(store->Put("pending", "uncommitted").ok());
}

TEST(MultiProcessKv, SigkillInEveryCompactionPhaseLosesNoPublishedEpoch) {
  std::string path = TempPath("sigkill_compact.kv");
  BuildCrashFixture(path);

  // Phase 0: image written, not fsynced. Phase 1: fsynced, not renamed.
  // Phase 2: renamed (the new image IS the log). The contract: whenever the
  // process dies, a reopen finds every published epoch intact — the old
  // image or the new one, never a torn hybrid.
  for (int phase = 0; phase <= 2; ++phase) {
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: hold a live snapshot pin (floor stays at 1 so no epoch may
      // be collapsed), then die inside Compact at the given phase.
      auto opened = LogKvStore::Open(path);
      if (!opened.ok()) ::_exit(10);
      auto store = std::move(opened).value();
      auto pin = SnapshotHandle::Pin(store.get(), 1);
      if (!pin.ok()) ::_exit(11);
      store->SetCompactionHook([phase](int at) {
        if (at == phase) fault::KillCurrentProcess();
      });
      (void)store->Compact();
      ::_exit(12);  // unreachable when the hook fired
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus))
        << "phase " << phase << ": child exited " << WEXITSTATUS(wstatus)
        << " instead of dying by signal";
    EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

    auto store = OpenOrDie(path);
    EXPECT_EQ(store->published_epoch(), 3u) << "phase " << phase;
    EXPECT_EQ(store->earliest_epoch(), 1u) << "phase " << phase;
    std::string value;
    for (uint64_t e = 1; e <= 3; ++e) {
      ASSERT_TRUE(store->GetAt("k", e, &value).ok())
          << "phase " << phase << " epoch " << e;
      EXPECT_EQ(value, "epoch" + std::to_string(e));
      ASSERT_TRUE(store->GetAt("stable", e, &value).ok());
      EXPECT_EQ(value, "forever");
    }
    // The pending tail is preserved verbatim by compaction and replay (it
    // is durable, just uncommitted); only DiscardPending may drop it.
    ASSERT_TRUE(store->Get("pending", &value).ok()) << "phase " << phase;
    EXPECT_EQ(value, "uncommitted");
  }
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
}

TEST(MultiProcessKv, SigkillMidCompactWithGcFloorKeepsSurvivingHistory) {
  std::string path = TempPath("sigkill_floor.kv");
  BuildCrashFixture(path);

  // No pins in the child: the floor is published (3) and epochs 1-2 are
  // legitimately collapsible. Whatever phase the kill lands in, reopen
  // must see published == 3 and epoch 3 bit-identical; the floor is either
  // still 1 (old image) or 3 (new image) — never in between, because the
  // floor record and the collapse land in the same atomic rename.
  for (int phase = 0; phase <= 2; ++phase) {
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      auto opened = LogKvStore::Open(path);
      if (!opened.ok()) ::_exit(10);
      auto store = std::move(opened).value();
      store->SetCompactionHook([phase](int at) {
        if (at == phase) fault::KillCurrentProcess();
      });
      (void)store->Compact();
      ::_exit(12);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus)) << "phase " << phase;

    auto store = OpenOrDie(path);
    EXPECT_EQ(store->published_epoch(), 3u) << "phase " << phase;
    uint64_t floor = store->earliest_epoch();
    EXPECT_TRUE(floor == 1u || floor == 3u)
        << "phase " << phase << ": torn floor " << floor;
    std::string value;
    ASSERT_TRUE(store->GetAt("k", 3, &value).ok()) << "phase " << phase;
    EXPECT_EQ(value, "epoch3");
    ASSERT_TRUE(store->GetAt("stable", 3, &value).ok());
    EXPECT_EQ(value, "forever");
    if (floor == 1u) {
      ASSERT_TRUE(store->GetAt("k", 1, &value).ok());
      EXPECT_EQ(value, "epoch1");
    } else {
      EXPECT_TRUE(store->GetAt("k", 1, &value).IsFailedPrecondition());
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
}

}  // namespace
}  // namespace xfraud::kv
