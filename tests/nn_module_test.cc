#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "xfraud/nn/modules.h"
#include "xfraud/nn/optim.h"
#include "xfraud/nn/serialize.h"

namespace xfraud::nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear linear(4, 3, &rng);
  Var x(Tensor(2, 4, 1.0f), false);
  Var y = linear.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 3);
  auto params = linear.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "weight");
  EXPECT_EQ(params[1].name, "bias");
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(2);
  Linear linear(4, 3, &rng, /*with_bias=*/false);
  EXPECT_EQ(linear.Parameters().size(), 1u);
  // y(0) == 0 for zero input without bias.
  Var x(Tensor(1, 4, 0.0f), false);
  Var y = linear.Forward(x);
  for (int64_t c = 0; c < 3; ++c) EXPECT_EQ(y.value().At(0, c), 0.0f);
}

TEST(EmbeddingTest, LookupAndGradient) {
  Rng rng(3);
  Embedding emb(5, 4, &rng);
  Var rows = emb.Forward({2, 2, 0});
  EXPECT_EQ(rows.rows(), 3);
  EXPECT_EQ(rows.cols(), 4);
  // Rows 0 and 1 are the same table row.
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(rows.value().At(0, c), rows.value().At(1, c));
  }
  Var loss = Sum(rows);
  emb.ZeroGrad();
  loss.Backward();
  // Table row 2 used twice -> grad 2; row 0 once -> grad 1; others 0.
  auto params = emb.Parameters();
  const Tensor& g = params[0].var.grad();
  EXPECT_FLOAT_EQ(g.At(2, 0), 2.0f);
  EXPECT_FLOAT_EQ(g.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(g.At(4, 0), 0.0f);
}

TEST(EmbeddingTest, ZeroInitOptionStartsAtZero) {
  Rng rng(4);
  Embedding emb(3, 4, &rng, /*zero_init=*/true);
  Var rows = emb.Forward({0, 1, 2});
  for (int64_t i = 0; i < rows.value().size(); ++i) {
    EXPECT_EQ(rows.value().vec()[i], 0.0f);
  }
}

TEST(LayerNormModuleTest, NormalizesRows) {
  LayerNormModule norm(8);
  Rng rng(5);
  Var x(Tensor::Uniform(4, 8, 3.0f, &rng), false);
  Var y = norm.Forward(x);
  // gamma=1, beta=0 initially: each row ~ zero mean, unit variance.
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t c = 0; c < 8; ++c) mean += y.value().At(r, c);
    mean /= 8;
    for (int64_t c = 0; c < 8; ++c) {
      double d = y.value().At(r, c) - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(MlpTest, OutputShapeAndDeterminismInEval) {
  Rng rng(6);
  Mlp mlp(10, 16, 2, 0.5f, &rng);
  Var x(Tensor::Uniform(3, 10, 1.0f, &rng), false);
  Var a = mlp.Forward(x, /*training=*/false, nullptr);
  Var b = mlp.Forward(x, /*training=*/false, nullptr);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 2);
  for (int64_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value().vec()[i], b.value().vec()[i]);
  }
}

TEST(AdamWTest, ConvergesOnLeastSquares) {
  // Minimize ||X w - y||^2 for a known w*.
  Rng rng(7);
  Var w(Tensor(3, 1, 0.0f), true);
  Tensor x_data = Tensor::Uniform(64, 3, 1.0f, &rng);
  Tensor w_star(3, 1);
  w_star.At(0, 0) = 1.5f;
  w_star.At(1, 0) = -2.0f;
  w_star.At(2, 0) = 0.5f;
  Var x(x_data, false);
  Tensor y_data(64, 1);
  for (int64_t r = 0; r < 64; ++r) {
    float acc = 0.0f;
    for (int64_t c = 0; c < 3; ++c) acc += x_data.At(r, c) * w_star.At(c, 0);
    y_data.At(r, 0) = acc;
  }
  Var y(y_data, false);

  AdamW opt({{"w", w}}, AdamWOptions{.lr = 0.05f, .weight_decay = 0.0f});
  for (int step = 0; step < 400; ++step) {
    Var residual = Sub(MatMul(x, w), y);
    Var loss = Mean(Mul(residual, residual));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(w.value().At(c, 0), w_star.At(c, 0), 0.05);
  }
}

TEST(AdamWTest, WeightDecayShrinksWeights) {
  // Zero gradient, positive decay: weights decay toward zero.
  Var w(Tensor(2, 2, 1.0f), true);
  AdamW opt({{"w", w}}, AdamWOptions{.lr = 0.1f, .weight_decay = 0.5f});
  w.grad().Fill(0.0f);
  for (int i = 0; i < 10; ++i) opt.Step();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_LT(w.value().vec()[i], 1.0f);
    EXPECT_GT(w.value().vec()[i], 0.0f);
  }
}

TEST(AdamWTest, ClipGradNormScalesDown) {
  Var w(Tensor(1, 4, 0.0f), true);
  AdamW opt({{"w", w}}, AdamWOptions{});
  w.grad().Fill(3.0f);  // norm = 6
  double before = opt.ClipGradNorm(1.0);
  EXPECT_NEAR(before, 6.0, 1e-5);
  double norm_after = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    norm_after += w.grad().vec()[i] * w.grad().vec()[i];
  }
  EXPECT_NEAR(std::sqrt(norm_after), 1.0, 1e-5);
}

TEST(AdamWTest, ClipLeavesSmallGradientsAlone) {
  Var w(Tensor(1, 4, 0.0f), true);
  AdamW opt({{"w", w}}, AdamWOptions{});
  w.grad().Fill(0.01f);
  opt.ClipGradNorm(1.0);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(w.grad().vec()[i], 0.01f);
  }
}

TEST(SerializeTest, RejectsCorruptMagic) {
  std::string path = testing::TempDir() + "/bad_magic.ckpt";
  {
    FILE* f = fopen(path.c_str(), "wb");
    fwrite("NOPE", 1, 4, f);
    fclose(f);
  }
  Rng rng(8);
  Linear linear(2, 2, &rng);
  auto params = linear.Parameters();
  Status s = LoadParameters(path, &params);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(SerializeTest, RejectsMissingParameter) {
  std::string path = testing::TempDir() + "/partial.ckpt";
  Rng rng(9);
  Linear small(2, 2, &rng);
  ASSERT_TRUE(SaveParameters(small.Parameters(), path).ok());
  // A different module expects differently-named params.
  Embedding emb(2, 2, &rng);
  auto params = emb.Parameters();
  Status s = LoadParameters(path, &params);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, RejectsShapeMismatch) {
  std::string path = testing::TempDir() + "/shape.ckpt";
  Rng rng(10);
  Linear a(2, 2, &rng);
  ASSERT_TRUE(SaveParameters(a.Parameters(), path).ok());
  Linear b(2, 3, &rng);  // same names, different shapes
  auto params = b.Parameters();
  Status s = LoadParameters(path, &params);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(SerializeTest, CopyParametersMatchesValues) {
  Rng r1(11), r2(12);
  Linear a(3, 3, &r1), b(3, 3, &r2);
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_TRUE(CopyParameters(pa, &pb).ok());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i].var.value().size(); ++j) {
      EXPECT_EQ(pa[i].var.value().vec()[j], pb[i].var.value().vec()[j]);
    }
  }
}

TEST(ModuleTest, ParameterCountMatchesShapes) {
  Rng rng(13);
  Mlp mlp(10, 16, 2, 0.1f, &rng);
  // fc1: 10*16+16, ln1: 32, fc2: 16*16+16, ln2: 32, out: 16*2+2.
  EXPECT_EQ(mlp.ParameterCount(), 10 * 16 + 16 + 32 + 16 * 16 + 16 + 32 +
                                      16 * 2 + 2);
}

}  // namespace
}  // namespace xfraud::nn
