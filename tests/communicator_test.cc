// Conformance suite of the dist::Communicator contract, run against BOTH
// backends: the shared-memory InProcessGroup (blocking mode, one thread per
// rank) and the SocketCommunicator ring over unix sockets in /tmp. The
// contract under test (communicator.h):
//   - AllReduceSum is the ascending-rank left fold — bit-identical on every
//     rank, and bit-identical ACROSS backends;
//   - Broadcast copies root's buffer everywhere;
//   - Gather delivers rank-indexed buffers (possibly of differing lengths)
//     to root;
//   - Barrier releases only once all ranks entered;
//   - collectives are matched by call order, and a signature mismatch
//     poisons the group.
// Socket-specific failure modes (deadline expiry, peer death, dead
// rendezvous) and the phased in-process mode get their own tests below.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "xfraud/common/clock.h"
#include "xfraud/common/status.h"
#include "xfraud/common/timer.h"
#include "xfraud/dist/communicator.h"
#include "xfraud/dist/rendezvous.h"
#include "xfraud/dist/socket_transport.h"

namespace xfraud::dist {
namespace {

enum class Backend { kInProcess, kSocket };

std::string BackendName(Backend b) {
  return b == Backend::kInProcess ? "InProcess" : "Socket";
}

/// Short unique unix-socket directory (AF_UNIX paths are length-capped, so
/// deep gtest temp paths are risky).
std::string MakeSocketDir() {
  static std::atomic<int> counter{0};
  std::string dir = "/tmp/xfc-" + std::to_string(::getpid()) + "-" +
                    std::to_string(counter.fetch_add(1));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// A `world`-rank cluster of the requested backend. Run() plays one rank
/// per thread and collects each rank's Status so assertions happen on the
/// main thread.
class Cluster {
 public:
  Cluster(Backend backend, int world, double op_timeout_s = 20.0)
      : backend_(backend), world_(world) {
    if (backend == Backend::kInProcess) {
      group_ = std::make_unique<InProcessGroup>(world, /*blocking=*/true);
      return;
    }
    dir_ = MakeSocketDir();
    Endpoint rdzv = ParseEndpoint("unix:" + dir_ + "/rdzv.sock").value();
    if (world > 1) {
      host_ = RendezvousHost::Create(rdzv, world).value();
    }
    socket_comms_.resize(static_cast<size_t>(world));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(world));
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([this, r, rdzv, op_timeout_s] {
        SocketCommOptions o;
        o.rank = r;
        o.world = world_;
        o.rendezvous = rdzv;
        o.op_timeout_s = op_timeout_s;
        o.rendezvous_timeout_s = 20.0;
        auto comm =
            SocketCommunicator::Connect(o, r == 0 ? host_.get() : nullptr);
        if (comm.ok()) {
          socket_comms_[static_cast<size_t>(r)] = std::move(comm).value();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (int r = 0; r < world; ++r) {
      EXPECT_NE(socket_comms_[static_cast<size_t>(r)], nullptr)
          << "rank " << r << " failed to connect";
    }
  }

  int world() const { return world_; }

  Communicator* comm(int rank) {
    if (backend_ == Backend::kInProcess) return group_->communicator(rank);
    return socket_comms_[static_cast<size_t>(rank)].get();
  }

  SocketCommunicator* socket_comm(int rank) {
    return socket_comms_[static_cast<size_t>(rank)].get();
  }

  /// Runs fn(rank, comm) on every rank concurrently; returns per-rank
  /// statuses.
  std::vector<Status> Run(
      const std::function<Status(int, Communicator*)>& fn) {
    std::vector<Status> statuses(static_cast<size_t>(world_));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(world_));
    for (int r = 0; r < world_; ++r) {
      threads.emplace_back([this, r, &fn, &statuses] {
        statuses[static_cast<size_t>(r)] = fn(r, comm(r));
      });
    }
    for (auto& t : threads) t.join();
    return statuses;
  }

 private:
  Backend backend_;
  int world_;
  std::string dir_;
  std::unique_ptr<InProcessGroup> group_;
  std::unique_ptr<RendezvousHost> host_;
  std::vector<std::unique_ptr<SocketCommunicator>> socket_comms_;
};

void ExpectAllOk(const std::vector<Status>& statuses) {
  for (size_t r = 0; r < statuses.size(); ++r) {
    EXPECT_TRUE(statuses[r].ok())
        << "rank " << r << ": " << statuses[r].ToString();
  }
}

class CommunicatorTest : public ::testing::TestWithParam<Backend> {};

TEST_P(CommunicatorTest, RankAndSize) {
  Cluster cluster(GetParam(), 3);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.comm(r)->rank(), r);
    EXPECT_EQ(cluster.comm(r)->size(), 3);
  }
}

/// Floating-point sums are order-dependent; the contract pins the order to
/// the ascending-rank left fold. The payload is adversarial (huge and tiny
/// magnitudes, sign flips) so any other association produces different bits.
TEST_P(CommunicatorTest, AllReduceSumFloatIsAscendingRankLeftFold) {
  const int world = 4;
  Cluster cluster(GetParam(), world);
  auto contribution = [](int rank) {
    return std::vector<float>{1.0e8f * (rank % 2 == 0 ? 1.0f : -1.0f),
                              1.0f / (1.0f + static_cast<float>(rank)),
                              1.0e-3f * static_cast<float>(rank + 1),
                              -3.25f};
  };
  // The reference fold, computed serially exactly as the contract states.
  std::vector<float> expected = contribution(0);
  for (int r = 1; r < world; ++r) {
    auto c = contribution(r);
    for (size_t i = 0; i < expected.size(); ++i) expected[i] += c[i];
  }
  std::vector<std::vector<float>> results(world);
  ExpectAllOk(cluster.Run([&](int rank, Communicator* comm) {
    results[static_cast<size_t>(rank)] = contribution(rank);
    return comm->AllReduceSum(
        std::span<float>(results[static_cast<size_t>(rank)]));
  }));
  for (int r = 0; r < world; ++r) {
    for (size_t i = 0; i < expected.size(); ++i) {
      // Exact equality: bit-identical, not approximately equal.
      EXPECT_EQ(results[static_cast<size_t>(r)][i], expected[i])
          << "rank " << r << " element " << i;
    }
  }
}

TEST_P(CommunicatorTest, AllReduceSumDoubleIsAscendingRankLeftFold) {
  const int world = 3;
  Cluster cluster(GetParam(), world);
  auto contribution = [](int rank) {
    return std::vector<double>{1.0e16 * (rank == 1 ? -1.0 : 1.0),
                               0.1 + static_cast<double>(rank)};
  };
  std::vector<double> expected = contribution(0);
  for (int r = 1; r < world; ++r) {
    auto c = contribution(r);
    for (size_t i = 0; i < expected.size(); ++i) expected[i] += c[i];
  }
  std::vector<std::vector<double>> results(world);
  ExpectAllOk(cluster.Run([&](int rank, Communicator* comm) {
    results[static_cast<size_t>(rank)] = contribution(rank);
    return comm->AllReduceSum(
        std::span<double>(results[static_cast<size_t>(rank)]));
  }));
  for (int r = 0; r < world; ++r) {
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(results[static_cast<size_t>(r)][i], expected[i]);
    }
  }
}

TEST_P(CommunicatorTest, BroadcastFromEveryRoot) {
  const int world = 3;
  Cluster cluster(GetParam(), world);
  for (int root = 0; root < world; ++root) {
    std::vector<std::vector<double>> bufs(world);
    ExpectAllOk(cluster.Run([&, root](int rank, Communicator* comm) {
      bufs[static_cast<size_t>(rank)] = {
          rank == root ? 42.5 + root : -1.0,
          rank == root ? -7.0 : static_cast<double>(rank)};
      return comm->Broadcast(
          std::span<double>(bufs[static_cast<size_t>(rank)]), root);
    }));
    for (int r = 0; r < world; ++r) {
      EXPECT_EQ(bufs[static_cast<size_t>(r)][0], 42.5 + root);
      EXPECT_EQ(bufs[static_cast<size_t>(r)][1], -7.0);
    }
  }
}

TEST_P(CommunicatorTest, GatherIsRankIndexedAndRaggedLengthsSurvive) {
  const int world = 4;
  Cluster cluster(GetParam(), world);
  std::vector<std::vector<float>> gathered;
  ExpectAllOk(cluster.Run([&](int rank, Communicator* comm) {
    // Rank r contributes r+1 elements, all equal to r+0.5.
    std::vector<float> send(static_cast<size_t>(rank + 1),
                            static_cast<float>(rank) + 0.5f);
    return comm->Gather(std::span<const float>(send), /*root=*/0,
                        rank == 0 ? &gathered : nullptr);
  }));
  ASSERT_EQ(gathered.size(), static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    ASSERT_EQ(gathered[static_cast<size_t>(r)].size(),
              static_cast<size_t>(r + 1));
    for (float v : gathered[static_cast<size_t>(r)]) {
      EXPECT_EQ(v, static_cast<float>(r) + 0.5f);
    }
  }
}

TEST_P(CommunicatorTest, BarrierReleasesOnlyAfterAllRanksEnter) {
  const int world = 3;
  Cluster cluster(GetParam(), world);
  std::atomic<int> entered{0};
  std::vector<int> seen_after(world, 0);
  ExpectAllOk(cluster.Run([&](int rank, Communicator* comm) {
    entered.fetch_add(1);
    Status s = comm->Barrier();
    // After the barrier every rank must already have incremented.
    seen_after[static_cast<size_t>(rank)] = entered.load();
    return s;
  }));
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(seen_after[static_cast<size_t>(r)], world);
  }
}

/// Collectives are matched by call order: a heterogeneous sequence must
/// stay in lockstep across ops of different types and sizes.
TEST_P(CommunicatorTest, MixedOperationSequenceStaysMatched) {
  const int world = 3;
  Cluster cluster(GetParam(), world);
  std::vector<std::vector<float>> finals(world);
  ExpectAllOk(cluster.Run([&](int rank, Communicator* comm) {
    std::vector<float> grads(8, static_cast<float>(rank + 1));
    XF_RETURN_IF_ERROR(comm->AllReduceSum(std::span<float>(grads)));
    std::vector<double> decision = {rank == 0 ? 1.0 : 0.0};
    XF_RETURN_IF_ERROR(
        comm->Broadcast(std::span<double>(decision), /*root=*/0));
    XF_RETURN_IF_ERROR(comm->Barrier());
    std::vector<std::vector<float>> stats;
    std::vector<float> mine = {static_cast<float>(rank)};
    XF_RETURN_IF_ERROR(comm->Gather(std::span<const float>(mine), 0,
                                    rank == 0 ? &stats : nullptr));
    if (decision[0] != 1.0) return Status::Internal("broadcast lost");
    finals[static_cast<size_t>(rank)] = grads;
    return Status::OK();
  }));
  const float expected = 1.0f + 2.0f + 3.0f;
  for (int r = 0; r < world; ++r) {
    for (float v : finals[static_cast<size_t>(r)]) EXPECT_EQ(v, expected);
  }
}

TEST_P(CommunicatorTest, WorldOfOneIsIdentity) {
  Cluster cluster(GetParam(), 1);
  Communicator* comm = cluster.comm(0);
  std::vector<float> v = {3.5f, -1.25f};
  ASSERT_TRUE(comm->AllReduceSum(std::span<float>(v)).ok());
  EXPECT_EQ(v[0], 3.5f);
  EXPECT_EQ(v[1], -1.25f);
  std::vector<double> d = {9.0};
  ASSERT_TRUE(comm->Broadcast(std::span<double>(d), 0).ok());
  EXPECT_EQ(d[0], 9.0);
  ASSERT_TRUE(comm->Barrier().ok());
  std::vector<std::vector<float>> gathered;
  std::vector<float> mine = {1.0f};
  ASSERT_TRUE(
      comm->Gather(std::span<const float>(mine), 0, &gathered).ok());
  ASSERT_EQ(gathered.size(), 1u);
  EXPECT_EQ(gathered[0][0], 1.0f);
}

/// comm_seconds / bytes_on_wire are the modeled-vs-measured split's source
/// of truth: the in-process backend must report zero (its sync cost is
/// modeled), the socket backend must measure nonzero time and bytes.
TEST_P(CommunicatorTest, CommStatsAreMeasuredOnlyOnRealTransports) {
  const int world = 2;
  Cluster cluster(GetParam(), world);
  ExpectAllOk(cluster.Run([&](int rank, Communicator* comm) {
    (void)rank;
    std::vector<float> v(256, 1.0f);
    return comm->AllReduceSum(std::span<float>(v));
  }));
  for (int r = 0; r < world; ++r) {
    if (GetParam() == Backend::kInProcess) {
      EXPECT_EQ(cluster.comm(r)->comm_seconds(), 0.0);
      EXPECT_EQ(cluster.comm(r)->bytes_on_wire(), 0);
    } else {
      EXPECT_GT(cluster.comm(r)->comm_seconds(), 0.0);
      EXPECT_GT(cluster.comm(r)->bytes_on_wire(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, CommunicatorTest,
                         ::testing::Values(Backend::kInProcess,
                                           Backend::kSocket),
                         [](const ::testing::TestParamInfo<Backend>& param) {
                           return BackendName(param.param);
                         });

// ---- Phased in-process mode (the serial driver's completion model) --------

/// One thread plays every rank in turn: each call deposits and returns
/// immediately; the LAST rank's call executes the fold and completes the
/// operation for everyone.
TEST(InProcessPhasedTest, LastRankCompletesTheOperationForEveryone) {
  const int world = 3;
  InProcessGroup group(world);  // phased (non-blocking) mode
  std::vector<std::vector<float>> bufs(world);
  for (int r = 0; r < world; ++r) {
    bufs[static_cast<size_t>(r)] = {static_cast<float>(r), 10.0f};
  }
  for (int r = 0; r < world; ++r) {
    ASSERT_TRUE(group.communicator(r)
                    ->AllReduceSum(
                        std::span<float>(bufs[static_cast<size_t>(r)]))
                    .ok());
  }
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(bufs[static_cast<size_t>(r)][0], 0.0f + 1.0f + 2.0f);
    EXPECT_EQ(bufs[static_cast<size_t>(r)][1], 30.0f);
  }
}

TEST(InProcessPhasedTest, SignatureMismatchPoisonsTheGroup) {
  InProcessGroup group(2);
  std::vector<float> a = {1.0f, 2.0f};
  ASSERT_TRUE(group.communicator(0)->AllReduceSum(std::span<float>(a)).ok());
  // Rank 1 shows up with a different element count for the same slot.
  std::vector<float> b = {1.0f, 2.0f, 3.0f};
  Status s = group.communicator(1)->AllReduceSum(std::span<float>(b));
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
  // Poisoned: even a well-formed follow-up op fails with the original error.
  std::vector<float> c = {0.0f};
  Status after = group.communicator(0)->AllReduceSum(std::span<float>(c));
  EXPECT_TRUE(after.IsFailedPrecondition()) << after.ToString();
}

// ---- Socket-specific failure modes ----------------------------------------

/// A rank that enters a collective alone must get DeadlineExceeded after
/// op_timeout, not hang: its peer simply never shows up.
TEST(SocketCommunicatorTest, CollectiveTimesOutWhenPeerNeverEnters) {
  Cluster cluster(Backend::kSocket, 2, /*op_timeout_s=*/0.3);
  std::vector<Status> statuses = cluster.Run([](int rank, Communicator* comm) {
    if (rank != 0) return Status::OK();  // rank 1 never joins the op
    std::vector<float> v(4, 1.0f);
    return comm->AllReduceSum(std::span<float>(v));
  });
  EXPECT_TRUE(statuses[0].IsDeadlineExceeded()) << statuses[0].ToString();
}

/// Shutdown closes both ring connections; neighbours blocked in a
/// collective wake with an error instead of waiting out the full deadline,
/// and the EOF cascades so every surviving rank fails.
TEST(SocketCommunicatorTest, PeerDeathFailsSurvivorsFast) {
  Cluster cluster(Backend::kSocket, 3, /*op_timeout_s=*/20.0);
  WallTimer timer;
  std::vector<Status> statuses =
      cluster.Run([&cluster](int rank, Communicator* comm) {
        if (rank == 1) {
          cluster.socket_comm(1)->Shutdown();  // "dies" before the op
          return Status::OK();
        }
        std::vector<float> v(4, 1.0f);
        return comm->AllReduceSum(std::span<float>(v));
      });
  EXPECT_FALSE(statuses[0].ok());
  EXPECT_FALSE(statuses[2].ok());
  // Failure detection must be EOF-driven, far faster than the 20s deadline.
  EXPECT_LT(timer.ElapsedSeconds(), 10.0);
  // And the communicator stays failed: no silent self-healing.
  std::vector<float> v = {1.0f};
  EXPECT_FALSE(
      cluster.socket_comm(0)->AllReduceSum(std::span<float>(v)).ok());
}

TEST(SocketCommunicatorTest, RendezvousWithDeadHostFails) {
  std::string dir = MakeSocketDir();
  Endpoint nowhere =
      ParseEndpoint("unix:" + dir + "/no-host.sock").value();
  Endpoint my_ring = ParseEndpoint("unix:" + dir + "/ring.sock").value();
  RetryPolicy retry{.max_attempts = 3,
                    .initial_backoff_s = 0.01,
                    .max_backoff_s = 0.02,
                    .deadline_s = 1.0};
  Clock* clock = Clock::Real();
  uint64_t generation = 0;
  auto joined = JoinRendezvous(nowhere, /*rank=*/1, /*world=*/2, my_ring,
                               /*generation=*/0,
                               Deadline::After(clock, 1.0), retry, clock,
                               &generation);
  EXPECT_FALSE(joined.ok());
}

}  // namespace
}  // namespace xfraud::dist
