// Round-trip and corruption tests of the two persistence formats: the
// TSV transaction log and the binary graph snapshot.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "xfraud/data/generator.h"
#include "xfraud/data/log_io.h"
#include "xfraud/graph/serialize.h"

namespace xfraud {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

class LogIoTest : public ::testing::Test {
 protected:
  static std::vector<graph::TransactionRecord> SampleRecords() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 120;
    config.num_fraud_rings = 3;
    config.num_stolen_cards = 5;
    config.num_periods = 3;
    data::TransactionGenerator gen(config);
    return gen.GenerateRecords();
  }
};

TEST_F(LogIoTest, RoundTripPreservesEverything) {
  auto records = SampleRecords();
  std::string path = TempPath("log_roundtrip.tsv");
  ASSERT_TRUE(data::WriteTransactionLog(records, path).ok());
  auto loaded = data::ReadTransactionLog(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& a = records[i];
    const auto& b = loaded.value()[i];
    EXPECT_EQ(a.txn_id, b.txn_id);
    EXPECT_EQ(a.buyer_id, b.buyer_id);
    EXPECT_EQ(a.email, b.email);
    EXPECT_EQ(a.payment_token, b.payment_token);
    EXPECT_EQ(a.shipping_address, b.shipping_address);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.period, b.period);
    ASSERT_EQ(a.features.size(), b.features.size());
    for (size_t f = 0; f < a.features.size(); ++f) {
      EXPECT_NEAR(a.features[f], b.features[f], 1e-4);
    }
  }
}

TEST_F(LogIoTest, RoundTripBuildsIdenticalGraph) {
  auto records = SampleRecords();
  std::string path = TempPath("log_graph.tsv");
  ASSERT_TRUE(data::WriteTransactionLog(records, path).ok());
  auto loaded = data::ReadTransactionLog(path);
  ASSERT_TRUE(loaded.ok());
  graph::GraphBuilder a, b;
  for (const auto& r : records) ASSERT_TRUE(a.AddTransaction(r).ok());
  for (const auto& r : loaded.value()) {
    ASSERT_TRUE(b.AddTransaction(r).ok());
  }
  graph::HeteroGraph ga = a.Build(), gb = b.Build();
  EXPECT_EQ(ga.num_nodes(), gb.num_nodes());
  EXPECT_EQ(ga.num_edges(), gb.num_edges());
  EXPECT_EQ(ga.NodeTypeCounts(), gb.NodeTypeCounts());
}

TEST_F(LogIoTest, MissingHeaderIsRejected) {
  std::string path = TempPath("log_noheader.tsv");
  std::ofstream(path) << "not a header\n";
  auto loaded = data::ReadTransactionLog(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(LogIoTest, MalformedLineReportsLineNumber) {
  auto records = SampleRecords();
  records.resize(2);
  std::string path = TempPath("log_badline.tsv");
  ASSERT_TRUE(data::WriteTransactionLog(records, path).ok());
  std::ofstream(path, std::ios::app) << "only\tthree\tfields\n";
  auto loaded = data::ReadTransactionLog(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 4"), std::string::npos);
}

TEST_F(LogIoTest, BadLabelIsRejected) {
  std::string path = TempPath("log_badlabel.tsv");
  auto records = SampleRecords();
  records.resize(1);
  ASSERT_TRUE(data::WriteTransactionLog(records, path).ok());
  std::ofstream(path, std::ios::app)
      << "tX\tb\te\tp\ta\tmaybe\t0\t1.0,2.0\n";
  auto loaded = data::ReadTransactionLog(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bad label"), std::string::npos);
}

class GraphSerializeTest : public ::testing::Test {
 protected:
  static graph::HeteroGraph SampleGraph() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 150;
    config.num_fraud_rings = 4;
    config.num_stolen_cards = 6;
    return data::TransactionGenerator::Make(config, "ser").graph;
  }
};

TEST_F(GraphSerializeTest, RoundTrip) {
  graph::HeteroGraph g = SampleGraph();
  std::string path = TempPath("graph_roundtrip.xfgr");
  ASSERT_TRUE(graph::SaveGraph(g, path).ok());
  auto loaded = graph::LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  const graph::HeteroGraph& h = loaded.value();
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.feature_dim(), g.feature_dim());
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(h.node_type(v), g.node_type(v));
    EXPECT_EQ(h.label(v), g.label(v));
    EXPECT_EQ(h.InDegree(v), g.InDegree(v));
    ASSERT_EQ(h.HasFeatures(v), g.HasFeatures(v));
    if (g.HasFeatures(v)) {
      for (int64_t c = 0; c < g.feature_dim(); ++c) {
        EXPECT_EQ(h.Features(v)[c], g.Features(v)[c]);
      }
    }
  }
  EXPECT_EQ(h.neighbors(), g.neighbors());
}

TEST_F(GraphSerializeTest, DetectsBitFlip) {
  graph::HeteroGraph g = SampleGraph();
  std::string path = TempPath("graph_corrupt.xfgr");
  ASSERT_TRUE(graph::SaveGraph(g, path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200, std::ios::beg);
    char byte;
    f.seekg(200, std::ios::beg);
    f.get(byte);
    f.seekp(200, std::ios::beg);
    f.put(static_cast<char>(byte ^ 0x40));
  }
  auto loaded = graph::LoadGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(GraphSerializeTest, DetectsTruncation) {
  graph::HeteroGraph g = SampleGraph();
  std::string path = TempPath("graph_trunc.xfgr");
  ASSERT_TRUE(graph::SaveGraph(g, path).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  auto loaded = graph::LoadGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(GraphSerializeTest, RejectsWrongMagic) {
  std::string path = TempPath("graph_magic.xfgr");
  std::ofstream(path, std::ios::binary) << "JUNKJUNKJUNK";
  auto loaded = graph::LoadGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

}  // namespace
}  // namespace xfraud
