// Model-level tests: shape/grad sanity for the detector and baselines, and
// the end-to-end "does it learn" integration checks.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "xfraud/baselines/gat.h"
#include "xfraud/baselines/gem.h"
#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/nn/serialize.h"
#include "xfraud/train/trainer.h"

namespace xfraud {
namespace {

using baselines::GatConfig;
using baselines::GatModel;
using baselines::GemConfig;
using baselines::GemModel;
using core::DetectorConfig;
using core::ForwardOptions;
using core::XFraudDetector;
using data::SimDataset;
using data::TransactionGenerator;

class ModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = TransactionGenerator::SimSmall();
    config.num_buyers = 600;
    config.num_fraud_rings = 14;
    config.num_stolen_cards = 30;
    // Weak feature signal: the graph must contribute for high AUC.
    config.feature_signal = 0.8;
    ds_ = new SimDataset(TransactionGenerator::Make(config, "test"));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  sample::MiniBatch MakeSmallBatch(int n_seeds = 8) const {
    sample::SageSampler sampler(2, 8);
    Rng rng(1);
    std::vector<int32_t> seeds(ds_->train_nodes.begin(),
                               ds_->train_nodes.begin() + n_seeds);
    return sampler.SampleBatch(ds_->graph, seeds, &rng);
  }

  static SimDataset* ds_;
};

SimDataset* ModelTest::ds_ = nullptr;

DetectorConfig SmallDetectorConfig(int64_t feature_dim) {
  DetectorConfig c;
  c.feature_dim = feature_dim;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 2;
  return c;
}

TEST_F(ModelTest, DetectorForwardShape) {
  Rng rng(2);
  XFraudDetector model(SmallDetectorConfig(ds_->graph.feature_dim()), &rng);
  auto batch = MakeSmallBatch();
  nn::Var logits = model.Forward(batch, ForwardOptions{});
  EXPECT_EQ(logits.rows(), static_cast<int64_t>(batch.target_locals.size()));
  EXPECT_EQ(logits.cols(), 2);
}

TEST_F(ModelTest, DetectorParametersNonEmptyAndNamed) {
  Rng rng(3);
  XFraudDetector model(SmallDetectorConfig(ds_->graph.feature_dim()), &rng);
  auto params = model.Parameters();
  EXPECT_GT(params.size(), 30u);  // typed QKV x 2 layers + head + embeddings
  std::set<std::string> names;
  for (const auto& p : params) {
    EXPECT_TRUE(p.var.requires_grad());
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate name " << p.name;
  }
  EXPECT_GT(model.ParameterCount(), 1000);
}

TEST_F(ModelTest, DetectorBackwardTouchesAllLayerParams) {
  Rng rng(4);
  XFraudDetector model(SmallDetectorConfig(ds_->graph.feature_dim()), &rng);
  auto batch = MakeSmallBatch();
  ForwardOptions opts;
  opts.training = true;
  opts.rng = &rng;
  nn::Var logits = model.Forward(batch, opts);
  nn::Var loss = nn::CrossEntropy(logits, batch.target_labels);
  model.ZeroGrad();
  loss.Backward();
  int touched = 0;
  for (auto& p : model.Parameters()) {
    if (p.var.grad().Norm() > 0) ++touched;
  }
  // Most parameters should receive gradient (some typed linears may not see
  // their type in a small batch).
  EXPECT_GT(touched, static_cast<int>(model.Parameters().size() / 2));
}

TEST_F(ModelTest, GatForwardShape) {
  Rng rng(5);
  GatConfig config;
  config.feature_dim = ds_->graph.feature_dim();
  config.hidden_dim = 16;
  config.num_heads = 2;
  GatModel model(config, &rng);
  auto batch = MakeSmallBatch();
  nn::Var logits = model.Forward(batch, ForwardOptions{});
  EXPECT_EQ(logits.rows(), static_cast<int64_t>(batch.target_locals.size()));
  EXPECT_EQ(logits.cols(), 2);
}

TEST_F(ModelTest, GemForwardShape) {
  Rng rng(6);
  GemConfig config;
  config.feature_dim = ds_->graph.feature_dim();
  config.hidden_dim = 16;
  GemModel model(config, &rng);
  auto batch = MakeSmallBatch();
  nn::Var logits = model.Forward(batch, ForwardOptions{});
  EXPECT_EQ(logits.rows(), static_cast<int64_t>(batch.target_locals.size()));
  EXPECT_EQ(logits.cols(), 2);
}

TEST_F(ModelTest, EdgeMaskChangesOutput) {
  Rng rng(7);
  XFraudDetector model(SmallDetectorConfig(ds_->graph.feature_dim()), &rng);
  auto batch = MakeSmallBatch();
  nn::Var base = model.Forward(batch, ForwardOptions{});
  // Half-weight mask must alter the logits (messages are rescaled).
  nn::Var mask(nn::Tensor(batch.num_edges(), 1, 0.5f), false);
  ForwardOptions opts;
  opts.edge_mask = &mask;
  nn::Var masked = model.Forward(batch, opts);
  double diff = 0.0;
  for (int64_t i = 0; i < base.value().size(); ++i) {
    diff += std::fabs(base.value().vec()[i] - masked.value().vec()[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST_F(ModelTest, AllOnesEdgeMaskIsIdentity) {
  Rng rng(8);
  XFraudDetector model(SmallDetectorConfig(ds_->graph.feature_dim()), &rng);
  auto batch = MakeSmallBatch();
  nn::Var base = model.Forward(batch, ForwardOptions{});
  nn::Var mask(nn::Tensor(batch.num_edges(), 1, 1.0f), false);
  ForwardOptions opts;
  opts.edge_mask = &mask;
  nn::Var masked = model.Forward(batch, opts);
  for (int64_t i = 0; i < base.value().size(); ++i) {
    EXPECT_NEAR(base.value().vec()[i], masked.value().vec()[i], 1e-5);
  }
}

TEST_F(ModelTest, FeatureOverrideIsDifferentiable) {
  Rng rng(9);
  XFraudDetector model(SmallDetectorConfig(ds_->graph.feature_dim()), &rng);
  auto batch = MakeSmallBatch();
  nn::Var features(batch.features, /*requires_grad=*/true);
  ForwardOptions opts;
  opts.features_override = &features;
  nn::Var logits = model.Forward(batch, opts);
  nn::Var loss = nn::CrossEntropy(logits, batch.target_labels);
  loss.Backward();
  EXPECT_GT(features.grad().Norm(), 0.0);
}

TEST_F(ModelTest, DeterministicConstructionAndForward) {
  auto batch = MakeSmallBatch();
  Rng r1(42), r2(42);
  XFraudDetector m1(SmallDetectorConfig(ds_->graph.feature_dim()), &r1);
  XFraudDetector m2(SmallDetectorConfig(ds_->graph.feature_dim()), &r2);
  nn::Var a = m1.Forward(batch, ForwardOptions{});
  nn::Var b = m2.Forward(batch, ForwardOptions{});
  for (int64_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value().vec()[i], b.value().vec()[i]);
  }
}

TEST_F(ModelTest, CheckpointRoundTrip) {
  auto batch = MakeSmallBatch();
  Rng r1(10), r2(99);
  XFraudDetector m1(SmallDetectorConfig(ds_->graph.feature_dim()), &r1);
  XFraudDetector m2(SmallDetectorConfig(ds_->graph.feature_dim()), &r2);
  std::string path = testing::TempDir() + "/detector.ckpt";
  ASSERT_TRUE(nn::SaveParameters(m1.Parameters(), path).ok());
  auto params2 = m2.Parameters();
  ASSERT_TRUE(nn::LoadParameters(path, &params2).ok());
  nn::Var a = m1.Forward(batch, ForwardOptions{});
  nn::Var b = m2.Forward(batch, ForwardOptions{});
  for (int64_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value().vec()[i], b.value().vec()[i]);
  }
}

TEST_F(ModelTest, DetectorLearnsOnSyntheticData) {
  Rng rng(11);
  DetectorConfig config = SmallDetectorConfig(ds_->graph.feature_dim());
  XFraudDetector model(config, &rng);
  sample::SageSampler sampler(2, 8);
  train::TrainOptions opts;
  opts.max_epochs = 22;
  opts.patience = 22;
  opts.batch_size = 256;
  opts.lr = 2e-3f;
  opts.class_weights = {1.0f, 4.0f};
  train::Trainer trainer(&model, &sampler, opts);
  auto result = trainer.Train(*ds_);
  auto test = trainer.Evaluate(ds_->graph, ds_->test_nodes);
  EXPECT_GT(test.auc, 0.80) << "detector failed to learn";
  // Loss decreased.
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST_F(ModelTest, TrainingImprovesOverUntrained) {
  Rng rng(12);
  DetectorConfig config = SmallDetectorConfig(ds_->graph.feature_dim());
  XFraudDetector model(config, &rng);
  sample::SageSampler sampler(2, 8);
  train::TrainOptions opts;
  opts.max_epochs = 4;
  opts.batch_size = 256;
  opts.class_weights = {1.0f, 4.0f};
  train::Trainer trainer(&model, &sampler, opts);
  auto before = trainer.Evaluate(ds_->graph, ds_->test_nodes);
  trainer.Train(*ds_);
  auto after = trainer.Evaluate(ds_->graph, ds_->test_nodes);
  EXPECT_GT(after.auc, before.auc + 0.05);
}

}  // namespace
}  // namespace xfraud
