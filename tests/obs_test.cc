#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "xfraud/obs/metrics.h"
#include "xfraud/obs/registry.h"
#include "xfraud/obs/trace.h"

namespace xfraud::obs {
namespace {

// The registry is process-global; tests share it with any instrumentation
// that ran before them. Each test uses its own metric names and resets the
// specific objects it touches, so ordering doesn't matter.

TEST(CounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, ExactMoments) {
  Histogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Record(4.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.sum, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.mean, 7.0 / 3.0, 1e-12);
}

TEST(HistogramTest, PercentilesOrderedAndClamped) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i) * 1e-3);
  HistogramSnapshot s = h.Snapshot();
  // Percentiles are bucket estimates but must respect ordering and the exact
  // extrema (Snapshot clamps to [min, max]).
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  // Log buckets are at most 2x wide, so the p50 estimate of a uniform
  // 0.001..1.0 sample cannot stray past one bucket from 0.5.
  EXPECT_GT(s.p50, 0.25);
  EXPECT_LT(s.p50, 1.0);
}

TEST(HistogramTest, RepeatedValueCollapsesPercentiles) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(0.125);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.min, 0.125);
  EXPECT_DOUBLE_EQ(s.max, 0.125);
  // min == max pins every clamped percentile to the value exactly.
  EXPECT_DOUBLE_EQ(s.p50, 0.125);
  EXPECT_DOUBLE_EQ(s.p99, 0.125);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket b covers [2^(b-49), 2^(b-48)); 1.0 = 2^0 opens bucket 49's
  // predecessor boundary, i.e. lands where its lower bound is exactly 1.0.
  int b_one = Histogram::BucketOf(1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerBound(b_one), 1.0);
  EXPECT_EQ(Histogram::BucketOf(1.5), b_one);
  EXPECT_EQ(Histogram::BucketOf(2.0), b_one + 1);
  EXPECT_EQ(Histogram::BucketOf(0.5), b_one - 1);
  // Non-positive and NaN inputs land in the lowest bucket, never crash.
  EXPECT_EQ(Histogram::BucketOf(0.0), 0);
  EXPECT_EQ(Histogram::BucketOf(-3.0), 0);
  EXPECT_EQ(Histogram::BucketOf(std::nan("")), 0);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
}

TEST(RegistryTest, SameNameSamePointer) {
  Registry& reg = Registry::Global();
  Counter* a = reg.counter("obs_test/same_name");
  Counter* b = reg.counter("obs_test/same_name");
  EXPECT_EQ(a, b);
  Histogram* ha = reg.histogram("obs_test/same_hist");
  Histogram* hb = reg.histogram("obs_test/same_hist");
  EXPECT_EQ(ha, hb);
}

TEST(RegistryTest, ResetZeroesButKeepsPointers) {
  Registry& reg = Registry::Global();
  Counter* c = reg.counter("obs_test/reset_me");
  Histogram* h = reg.histogram("obs_test/reset_me_hist");
  c->Add(7);
  h->Record(1.0);
  reg.Reset();
  // Cached pointers stay valid — the contract hot paths rely on.
  EXPECT_EQ(c, reg.counter("obs_test/reset_me"));
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(h->count(), 0);
  c->Increment();
  EXPECT_EQ(c->value(), 1);
}

TEST(RegistryTest, DisabledWritesAreNoOps) {
  Registry& reg = Registry::Global();
  Counter* c = reg.counter("obs_test/disabled");
  Histogram* h = reg.histogram("obs_test/disabled_hist");
  c->Reset();
  h->Reset();
  SetEnabled(false);
  c->Add(5);
  h->Record(1.0);
  SetEnabled(true);
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(h->count(), 0);
  c->Add(5);
  EXPECT_EQ(c->value(), 5);
}

TEST(RegistryTest, ToJsonContainsAllSections) {
  Registry& reg = Registry::Global();
  reg.counter("obs_test/json_counter")->Add(3);
  reg.gauge("obs_test/json_gauge")->Set(2.5);
  reg.histogram("obs_test/json_hist")->Record(0.5);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test/json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test/json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ScopedSpanTest, RecordsIntoSpanHistogram) {
  Registry& reg = Registry::Global();
  Histogram* h = reg.histogram("span/obs_test_span");
  h->Reset();
  {
    ScopedSpan span("obs_test_span");
    EXPECT_GE(span.ElapsedSeconds(), 0.0);
  }
  EXPECT_EQ(h->count(), 1);
  HistogramSnapshot s = h->Snapshot();
  EXPECT_GE(s.min, 0.0);
}

TEST(ScopedSpanTest, DisabledSpanRecordsNothing) {
  Registry& reg = Registry::Global();
  Histogram* h = reg.histogram("span/obs_test_disabled_span");
  h->Reset();
  SetEnabled(false);
  { ScopedSpan span("obs_test_disabled_span"); }
  SetEnabled(true);
  EXPECT_EQ(h->count(), 0);
}

// Same shape as BoundedQueueTest.MpmcStressDeliversEveryItemOnce in
// common_test.cc: hammer shared metrics from many threads and check the
// final tallies are exact — relaxed atomics must still not lose updates.
TEST(ConcurrencyTest, ParallelWritersLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10000;
  Registry& reg = Registry::Global();
  Counter* c = reg.counter("obs_test/stress_counter");
  Histogram* h = reg.histogram("obs_test/stress_hist");
  c->Reset();
  h->Reset();

  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.fetch_add(1);
      while (start.load() < kThreads) {}  // rough start barrier
      for (int i = 0; i < kOpsPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c->value(), int64_t{kThreads} * kOpsPerThread);
  HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, int64_t{kThreads} * kOpsPerThread);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(kThreads));
  // Sum of t+1 for t in [0, kThreads), each kOpsPerThread times.
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (t + 1) * kOpsPerThread;
  EXPECT_DOUBLE_EQ(s.sum, expected_sum);
}

TEST(ConcurrencyTest, ParallelRegistryLookupsAgree) {
  constexpr int kThreads = 8;
  Registry& reg = Registry::Global();
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { seen[t] = reg.counter("obs_test/lookup_race"); });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

}  // namespace
}  // namespace xfraud::obs
