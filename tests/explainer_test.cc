#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/explain/feature_importance.h"
#include "xfraud/explain/gnn_explainer.h"
#include "xfraud/explain/hit_rate.h"
#include "xfraud/explain/hybrid.h"
#include "xfraud/explain/visualize.h"
#include "xfraud/train/trainer.h"

namespace xfraud::explain {
namespace {

TEST(HitRateTest, IdenticalRankingsHitOne) {
  std::vector<double> w = {0.9, 0.5, 0.8, 0.1, 0.3, 0.7};
  Rng rng(1);
  EXPECT_NEAR(TopkHitRate(w, w, 3, &rng), 1.0, 1e-12);
}

TEST(HitRateTest, DisjointTopSetsHitZero) {
  std::vector<double> a = {1.0, 1.0, 0.0, 0.0};
  std::vector<double> b = {0.0, 0.0, 1.0, 1.0};
  Rng rng(2);
  EXPECT_NEAR(TopkHitRate(a, b, 2, &rng), 0.0, 1e-12);
}

TEST(HitRateTest, PartialOverlap) {
  // top2(a) = {0,1}; top2(b) = {1,2} -> hit rate 1/2.
  std::vector<double> a = {0.9, 0.8, 0.1, 0.0};
  std::vector<double> b = {0.1, 0.9, 0.8, 0.0};
  Rng rng(3);
  EXPECT_NEAR(TopkHitRate(a, b, 2, &rng), 0.5, 1e-12);
}

TEST(HitRateTest, TiesAveragedOverDraws) {
  // Reference: all 4 tied; candidate picks 2 specific ones. Expected hit
  // rate of a random 2-subset against {0,1}: E[overlap]/2 = 0.5.
  std::vector<double> reference = {1.0, 1.0, 1.0, 1.0};
  std::vector<double> candidate = {1.0, 1.0, 0.0, 0.0};
  Rng rng(4);
  double rate = TopkHitRate(reference, candidate, 2, &rng, 4000);
  EXPECT_NEAR(rate, 0.5, 0.03);
}

TEST(HitRateTest, KLargerThanEdgesClamps) {
  std::vector<double> w = {0.5, 0.4};
  Rng rng(5);
  EXPECT_NEAR(TopkHitRate(w, w, 10, &rng), 1.0, 1e-12);
}

TEST(HitRateTest, RandomBaselineMatchesHypergeometricMean) {
  // For n edges and top-k sets drawn at random, E[hit rate] = k/n.
  std::vector<double> reference(20);
  for (size_t i = 0; i < reference.size(); ++i) reference[i] = i * 0.05;
  Rng rng(6);
  double rate = RandomHitRate(reference, 5, &rng, 40, 50);
  EXPECT_NEAR(rate, 5.0 / 20.0, 0.05);
}

TEST(TopkIndicesTest, ReturnsLargest) {
  std::vector<double> w = {0.1, 0.9, 0.5, 0.7};
  Rng rng(7);
  auto top = TopkIndices(w, 2, &rng);
  std::sort(top.begin(), top.end());
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 3);
}

TEST(RidgeTest, RecoversLinearCoefficients) {
  // y = 2 x0 - 1 x1, no noise, tiny alpha.
  Rng rng(8);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    x.push_back({a, b});
    y.push_back(2.0 * a - 1.0 * b);
  }
  auto beta = RidgeRegression(x, y, 1e-8);
  EXPECT_NEAR(beta[0], 2.0, 1e-4);
  EXPECT_NEAR(beta[1], -1.0, 1e-4);
}

TEST(RidgeTest, AlphaShrinksCoefficients) {
  Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    double a = rng.NextDouble();
    x.push_back({a});
    y.push_back(3.0 * a);
  }
  auto small = RidgeRegression(x, y, 1e-6);
  auto large = RidgeRegression(x, y, 100.0);
  EXPECT_GT(small[0], large[0]);
  EXPECT_GT(large[0], 0.0);
}

CommunityWeights SyntheticCommunity(Rng* rng, int n_edges,
                                    double centrality_fit,
                                    double explainer_fit) {
  // Human scores; centrality/explainer are noisy readings with controlled
  // fidelity.
  CommunityWeights c;
  for (int i = 0; i < n_edges; ++i) {
    double truth = rng->NextDouble();
    c.human.push_back(truth);
    c.centrality.push_back(centrality_fit * truth +
                           (1 - centrality_fit) * rng->NextDouble());
    c.explainer.push_back(explainer_fit * truth +
                          (1 - explainer_fit) * rng->NextDouble());
  }
  return c;
}

TEST(HybridTest, GridPrefersTheBetterSignal) {
  Rng rng(10);
  // Explainer is much more faithful than centrality here.
  std::vector<CommunityWeights> train;
  for (int i = 0; i < 8; ++i) {
    train.push_back(SyntheticCommunity(&rng, 40, 0.2, 0.95));
  }
  HybridExplainer hybrid = HybridExplainer::FitGrid(train, 10, &rng);
  EXPECT_GT(hybrid.b(), hybrid.a());
}

TEST(HybridTest, GridBeatsOrMatchesBothComponentsOnTrain) {
  Rng rng(11);
  std::vector<CommunityWeights> train;
  for (int i = 0; i < 10; ++i) {
    train.push_back(SyntheticCommunity(&rng, 50, 0.6, 0.6));
  }
  HybridExplainer hybrid = HybridExplainer::FitGrid(train, 10, &rng);
  double hybrid_rate = hybrid.MeanHitRate(train, 10, &rng);

  // Pure-centrality (A=1) and pure-explainer (A=0) via the grid ends.
  double centrality_only = 0.0, explainer_only = 0.0;
  for (const auto& c : train) {
    centrality_only += TopkHitRate(c.human, c.centrality, 10, &rng);
    explainer_only += TopkHitRate(c.human, c.explainer, 10, &rng);
  }
  centrality_only /= train.size();
  explainer_only /= train.size();
  EXPECT_GE(hybrid_rate + 0.02, std::max(centrality_only, explainer_only));
}

TEST(HybridTest, RidgeProducesFiniteCoefficients) {
  Rng rng(12);
  std::vector<CommunityWeights> train;
  for (int i = 0; i < 6; ++i) {
    train.push_back(SyntheticCommunity(&rng, 30, 0.5, 0.7));
  }
  HybridExplainer hybrid = HybridExplainer::FitRidge(train, 10, &rng);
  EXPECT_TRUE(std::isfinite(hybrid.a()));
  EXPECT_TRUE(std::isfinite(hybrid.b()));
  double rate = hybrid.MeanHitRate(train, 10, &rng);
  EXPECT_GT(rate, 0.3);  // far above the random baseline 10/30
}

TEST(HybridTest, PolynomialDegreeOneWinsOnLinearData) {
  // The paper finds degree 1 the best fit (Appendix F); on linearly
  // generated data higher degrees cannot help.
  Rng rng(13);
  std::vector<CommunityWeights> train;
  for (int i = 0; i < 6; ++i) {
    train.push_back(SyntheticCommunity(&rng, 40, 0.7, 0.7));
  }
  int degree = BestPolynomialDegree(train, 10, &rng, 3);
  EXPECT_EQ(degree, 1);
}

class ExplainerIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 600;
    config.num_fraud_rings = 14;
    config.num_stolen_cards = 30;
    ds_ = new data::SimDataset(
        data::TransactionGenerator::Make(config, "explain-test"));
    Rng rng(21);
    core::DetectorConfig dc;
    dc.feature_dim = ds_->graph.feature_dim();
    dc.hidden_dim = 16;
    dc.num_heads = 2;
    dc.num_layers = 2;
    model_ = new core::XFraudDetector(dc, &rng);
    sample::SageSampler sampler(2, 8);
    train::TrainOptions opts;
    opts.max_epochs = 12;
    opts.patience = 12;
    opts.batch_size = 256;
    opts.lr = 2e-3f;
    opts.class_weights = {1.0f, 4.0f};
    train::Trainer trainer(model_, &sampler, opts);
    trainer.Train(*ds_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete ds_;
    model_ = nullptr;
    ds_ = nullptr;
  }

  static sample::MiniBatch CommunityBatch(int32_t seed) {
    graph::Subgraph sub = graph::Community(ds_->graph, seed, 60);
    return sample::MakeBatch(ds_->graph, std::move(sub), {seed});
  }

  static data::SimDataset* ds_;
  static core::XFraudDetector* model_;
};

data::SimDataset* ExplainerIntegrationTest::ds_ = nullptr;
core::XFraudDetector* ExplainerIntegrationTest::model_ = nullptr;

TEST_F(ExplainerIntegrationTest, ProducesValidMasks) {
  int32_t seed = ds_->test_nodes[0];
  auto batch = CommunityBatch(seed);
  GnnExplainerOptions opts;
  opts.epochs = 30;
  GnnExplainer explainer(model_, opts);
  Explanation exp = explainer.Explain(batch);

  ASSERT_EQ(static_cast<int64_t>(exp.edge_mask.size()), batch.num_edges());
  for (double m : exp.edge_mask) {
    EXPECT_GT(m, 0.0);
    EXPECT_LT(m, 1.0);
  }
  EXPECT_EQ(exp.node_feature_mask.rows(), batch.num_nodes());
  EXPECT_EQ(exp.node_feature_mask.cols(), batch.features.cols());
  EXPECT_EQ(exp.undirected_edges.size(), exp.undirected_edge_weights.size());
}

TEST_F(ExplainerIntegrationTest, UndirectedWeightIsMaxOfDirections) {
  int32_t seed = ds_->test_nodes[1];
  auto batch = CommunityBatch(seed);
  GnnExplainerOptions opts;
  opts.epochs = 20;
  GnnExplainer explainer(model_, opts);
  Explanation exp = explainer.Explain(batch);
  for (size_t i = 0; i < exp.undirected_edges.size(); ++i) {
    const auto& e = exp.undirected_edges[i];
    double expected = 0.0;
    if (e.directed_a >= 0) expected = std::max(expected,
                                               exp.edge_mask[e.directed_a]);
    if (e.directed_b >= 0) expected = std::max(expected,
                                               exp.edge_mask[e.directed_b]);
    EXPECT_DOUBLE_EQ(exp.undirected_edge_weights[i], expected);
  }
}

TEST_F(ExplainerIntegrationTest, MaskSeparatesFromInitialization) {
  // After optimization the edge mask must have moved away from its random
  // initialization: some spread between min and max.
  int32_t seed = ds_->test_nodes[2];
  auto batch = CommunityBatch(seed);
  GnnExplainer explainer(model_, GnnExplainerOptions{});
  Explanation exp = explainer.Explain(batch);
  double lo = *std::min_element(exp.edge_mask.begin(), exp.edge_mask.end());
  double hi = *std::max_element(exp.edge_mask.begin(), exp.edge_mask.end());
  EXPECT_GT(hi - lo, 0.05);
}

TEST_F(ExplainerIntegrationTest, DeterministicGivenSeed) {
  int32_t seed = ds_->test_nodes[3];
  auto batch = CommunityBatch(seed);
  GnnExplainerOptions opts;
  opts.epochs = 10;
  opts.seed = 99;
  Explanation a = GnnExplainer(model_, opts).Explain(batch);
  Explanation b = GnnExplainer(model_, opts).Explain(batch);
  ASSERT_EQ(a.edge_mask.size(), b.edge_mask.size());
  for (size_t i = 0; i < a.edge_mask.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.edge_mask[i], b.edge_mask[i]);
  }
}

TEST_F(ExplainerIntegrationTest, FeatureImportanceViewsAreConsistent) {
  int32_t seed = ds_->test_nodes[5];
  auto batch = CommunityBatch(seed);
  GnnExplainerOptions opts;
  opts.epochs = 20;
  GnnExplainer explainer(model_, opts);
  Explanation exp = explainer.Explain(batch);
  FeatureImportance fi = ComputeFeatureImportance(exp, batch);
  int64_t dims = batch.features.cols();
  ASSERT_EQ(static_cast<int64_t>(fi.seed.size()), dims);
  ASSERT_EQ(static_cast<int64_t>(fi.community_mean.size()), dims);
  for (int64_t c = 0; c < dims; ++c) {
    EXPECT_GT(fi.seed[c], 0.0);
    EXPECT_LT(fi.seed[c], 1.0);
    EXPECT_NEAR(fi.seed_excess[c], fi.seed[c] - fi.community_mean[c], 1e-12);
  }
  std::string report = RenderFeatureImportance(fi, 3);
  EXPECT_NE(report.find("seed feature importance"), std::string::npos);
  EXPECT_NE(report.find("investigation leads"), std::string::npos);
}

TEST(TopDimensionsTest, ReturnsLargestStably) {
  std::vector<double> v = {0.1, 0.9, 0.9, 0.2};
  auto top = TopDimensions(v, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1);  // stable: first of the tied pair
  EXPECT_EQ(top[1], 2);
}

TEST_F(ExplainerIntegrationTest, RenderCommunityMentionsSeedAndBars) {
  int32_t seed = ds_->test_nodes[4];
  graph::Subgraph sub = graph::Community(ds_->graph, seed, 60);
  auto undirected = graph::UndirectedEdges(sub);
  std::vector<double> weights(undirected.size());
  Rng rng(3);
  for (auto& w : weights) w = rng.NextDouble();
  std::string text = RenderCommunity(ds_->graph, sub, weights, 10);
  EXPECT_NE(text.find("community:"), std::string::npos);
  EXPECT_NE(text.find("txn"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);  // seed marker
}

}  // namespace
}  // namespace xfraud::explain
