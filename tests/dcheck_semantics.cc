// Build-mode semantics of XF_DCHECK*. This source is compiled twice by
// tests/CMakeLists.txt:
//
//   xfraud_dcheck_on_test   with -UNDEBUG  — D-variants behave like XF_CHECK*
//   xfraud_dcheck_off_test  with -DNDEBUG  — D-variants must not evaluate
//                                            their arguments at all
//
// The #ifdef below selects the matching expectations, so each binary proves
// its own mode; ctest runs both.

#include <gtest/gtest.h>

#include "xfraud/common/check.h"

namespace xfraud {
namespace {

int g_evaluations = 0;

bool BumpAndFail() {
  ++g_evaluations;
  return false;
}

[[maybe_unused]] int BumpAndReturn(int v) {
  ++g_evaluations;
  return v;
}

#ifdef NDEBUG

TEST(DcheckSemantics, ReleaseVariantsDoNotEvaluateArguments) {
  g_evaluations = 0;
  XF_DCHECK(BumpAndFail()) << "must never run";
  XF_DCHECK_EQ(BumpAndReturn(1), BumpAndReturn(2));
  XF_DCHECK_NE(BumpAndReturn(1), BumpAndReturn(1));
  XF_DCHECK_LT(BumpAndReturn(2), BumpAndReturn(1));
  XF_DCHECK_LE(BumpAndReturn(2), BumpAndReturn(1));
  XF_DCHECK_GT(BumpAndReturn(1), BumpAndReturn(2));
  XF_DCHECK_GE(BumpAndReturn(1), BumpAndReturn(2));
  XF_DCHECK_BOUNDS(BumpAndReturn(99), BumpAndReturn(3));
  EXPECT_EQ(g_evaluations, 0)
      << "XF_DCHECK evaluated its arguments under NDEBUG";
}

TEST(DcheckSemantics, ReleaseVariantsNeverThrow) {
  EXPECT_NO_THROW({ XF_DCHECK(false) << "off"; });
  EXPECT_NO_THROW({ XF_DCHECK_BOUNDS(10, 3); });
}

#else  // !NDEBUG

TEST(DcheckSemantics, DebugVariantsEvaluateAndThrow) {
  g_evaluations = 0;
  EXPECT_THROW({ XF_DCHECK(BumpAndFail()) << "active"; }, CheckError);
  EXPECT_EQ(g_evaluations, 1);
  EXPECT_THROW({ XF_DCHECK_EQ(1, 2); }, CheckError);
  EXPECT_THROW({ XF_DCHECK_BOUNDS(10, 3); }, CheckError);
}

TEST(DcheckSemantics, DebugVariantsPassSilently) {
  XF_DCHECK(true);
  XF_DCHECK_EQ(2, 2);
  XF_DCHECK_BOUNDS(2, 3);
}

#endif  // NDEBUG

TEST(DcheckSemantics, HardCheckAlwaysActiveInBothModes) {
  EXPECT_THROW({ XF_CHECK(false) << "always on"; }, CheckError);
}

}  // namespace
}  // namespace xfraud
