// Integration test of the §5.1 community-study harness: the pipeline that
// the explainer benches (Tables 1/4/8-12, Figure 7) are built on.

#include <gtest/gtest.h>

#include "xfraud/explain/evaluation.h"
#include "xfraud/explain/hit_rate.h"

namespace xfraud::explain {
namespace {

class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyOptions options;
    options.detector_epochs = 6;     // keep the suite fast
    options.all_measures = false;    // skip the two expm-based measures
    study_ = new CommunityStudy(options);
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }
  static CommunityStudy* study_;
};

CommunityStudy* StudyTest::study_ = nullptr;

TEST_F(StudyTest, BuildsFortyOneCommunitiesWithPaperLabelMix) {
  EXPECT_EQ(study_->communities().size(), 41u);
  int fraud = 0, benign = 0;
  for (const auto& c : study_->communities()) {
    (c.seed_label == 1 ? fraud : benign) += 1;
  }
  EXPECT_EQ(fraud, 18);
  EXPECT_EQ(benign, 23);
}

TEST_F(StudyTest, DetectorIsTrained) {
  EXPECT_GT(study_->test_auc(), 0.75);
}

TEST_F(StudyTest, RecordsAreInternallyConsistent) {
  for (const auto& c : study_->communities()) {
    size_t edges = c.undirected.size();
    ASSERT_GE(edges, 10u);
    EXPECT_EQ(c.human_edges.size(), edges);
    EXPECT_EQ(c.explainer_edges.size(), edges);
    EXPECT_EQ(c.node_importance.size(),
              static_cast<size_t>(c.sub.num_nodes()));
    EXPECT_EQ(c.annotations.size(), 5u);
    // Human scores are in [0,2]; explainer weights in (0,1).
    for (double h : c.human_edges) {
      EXPECT_GE(h, 0.0);
      EXPECT_LE(h, 2.0);
    }
    for (double w : c.explainer_edges) {
      EXPECT_GT(w, 0.0);
      EXPECT_LT(w, 1.0);
    }
  }
}

TEST_F(StudyTest, WeightsExposeChosenMeasure) {
  auto weights = study_->Weights(CentralityMeasure::kEdgeBetweenness);
  ASSERT_EQ(weights.size(), study_->communities().size());
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(weights[i].centrality,
              study_->communities()[i].centrality_edges[static_cast<int>(
                  CentralityMeasure::kEdgeBetweenness)]);
  }
}

TEST_F(StudyTest, TrainTestSplitIs21_20) {
  auto all = study_->Weights(CentralityMeasure::kDegree);
  std::vector<CommunityWeights> train, test;
  CommunityStudy::SplitTrainTest(all, &train, &test);
  EXPECT_EQ(train.size(), 21u);
  EXPECT_EQ(test.size(), all.size() - 21);
}

TEST_F(StudyTest, InformedMeasuresBeatRandom) {
  // The §5.1 headline: both centrality and GNNExplainer agree with the
  // (simulated) annotators clearly better than random edge weights.
  Rng rng(5);
  auto weights = study_->Weights(CentralityMeasure::kEdgeBetweenness);
  double centrality = 0.0, explainer = 0.0, random = 0.0;
  for (const auto& c : weights) {
    centrality += TopkHitRate(c.human, c.centrality, 10, &rng, 50);
    explainer += TopkHitRate(c.human, c.explainer, 10, &rng, 50);
    random += RandomHitRate(c.human, 10, &rng, 5, 50);
  }
  centrality /= weights.size();
  explainer /= weights.size();
  random /= weights.size();
  EXPECT_GT(centrality, random + 0.04);
  EXPECT_GT(explainer, random + 0.01);
}

TEST_F(StudyTest, HybridAtLeastMatchesComponentsOnTrain) {
  Rng rng(6);
  auto all = study_->Weights(CentralityMeasure::kEdgeBetweenness);
  std::vector<CommunityWeights> train, test;
  CommunityStudy::SplitTrainTest(all, &train, &test);
  HybridExplainer grid = HybridExplainer::FitGrid(train, 10, &rng);
  double hybrid = grid.MeanHitRate(train, 10, &rng);
  double centrality = 0.0, explainer = 0.0;
  for (const auto& c : train) {
    centrality += TopkHitRate(c.human, c.centrality, 10, &rng, 50);
    explainer += TopkHitRate(c.human, c.explainer, 10, &rng, 50);
  }
  centrality /= train.size();
  explainer /= train.size();
  // Allow small metric noise (tie-breaking draws).
  EXPECT_GE(hybrid + 0.03, std::max(centrality, explainer));
}

TEST_F(StudyTest, AnnotatorAgreementInPaperBand) {
  double kappa = 0.0;
  for (const auto& c : study_->communities()) {
    kappa += data::MeanPairwiseKappa(c.annotations);
  }
  kappa /= study_->communities().size();
  // Paper: 0.532 average, range 0.314-0.773.
  EXPECT_GT(kappa, 0.35);
  EXPECT_LT(kappa, 0.8);
}

}  // namespace
}  // namespace xfraud::explain
