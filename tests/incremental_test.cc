#include <map>
#include <set>

#include <gtest/gtest.h>

#include "xfraud/data/generator.h"
#include "xfraud/train/incremental.h"

namespace xfraud::train {
namespace {

TEST(GeneratorPeriodsTest, PeriodsAreAssignedWithinRange) {
  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.num_buyers = 300;
  config.num_periods = 4;
  data::TransactionGenerator gen(config);
  auto records = gen.GenerateRecords();
  std::vector<int> counts(4, 0);
  for (const auto& r : records) {
    ASSERT_GE(r.period, 0);
    ASSERT_LT(r.period, 4);
    ++counts[r.period];
  }
  // Benign traffic is uniform, so every period gets a meaningful share.
  for (int c : counts) EXPECT_GT(c, static_cast<int>(records.size()) / 12);
}

TEST(GeneratorPeriodsTest, RingsBurstWithinTwoPeriods) {
  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.num_buyers = 200;
  config.num_periods = 6;
  config.num_fraud_rings = 8;
  config.num_stolen_cards = 0;
  data::TransactionGenerator gen(config);
  auto records = gen.GenerateRecords();
  // Group ring transactions by their shared payment token prefix.
  std::map<std::string, std::set<int32_t>> ring_periods;
  for (const auto& r : records) {
    if (r.payment_token.rfind("pmt_stolen", 0) == 0) {
      // "pmt_stolen<ring>_<k>": key by ring id.
      std::string key = r.payment_token.substr(0, r.payment_token.find('_', 11));
      ring_periods[key].insert(r.period);
    }
  }
  ASSERT_FALSE(ring_periods.empty());
  for (const auto& [ring, periods] : ring_periods) {
    EXPECT_LE(periods.size(), 2u) << ring;
    if (periods.size() == 2) {
      EXPECT_EQ(*periods.rbegin() - *periods.begin(), 1) << ring;
    }
  }
}

TEST(IncrementalTest, ProducesReportPerPeriodAndFreshBeatsStale) {
  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.num_buyers = 900;
  config.num_periods = 3;
  config.num_fraud_rings = 10;
  config.num_stolen_cards = 18;
  data::TransactionGenerator gen(config);
  auto records = gen.GenerateRecords();

  IncrementalOptions options;
  options.detector.feature_dim = config.feature_dim;
  options.detector.hidden_dim = 16;
  options.detector.num_heads = 2;
  options.train.max_epochs = 6;
  options.train.patience = 6;
  options.train.class_weights = {1.0f, 4.0f};
  options.train.lr = 2e-3f;
  options.finetune_epochs = 3;
  IncrementalEvaluation evaluation(options);
  auto reports = evaluation.Run(records);

  ASSERT_EQ(reports.size(), 2u);  // periods 1 and 2
  double stale = 0.0, incremental = 0.0;
  for (const auto& r : reports) {
    EXPECT_GT(r.transactions, 0);
    EXPECT_GT(r.stale_auc, 0.4);
    EXPECT_GT(r.incremental_auc, 0.4);
    EXPECT_GT(r.cumulative_auc, 0.4);
    stale += r.stale_auc;
    incremental += r.incremental_auc;
  }
  // The H.5 headline: staying fresh helps on average. (Allow slack: two
  // periods only, so noise is real.)
  EXPECT_GT(incremental + 0.05, stale);
}

}  // namespace
}  // namespace xfraud::train
