// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
//  - KV-store contract across every backend;
//  - model invariants across every GNN architecture;
//  - centrality invariants across every measure and canonical graph family;
//  - metric invariants across dataset sizes and imbalance levels.

#include <cmath>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>

#include <gtest/gtest.h>

#include "xfraud/baselines/gat.h"
#include "xfraud/baselines/gem.h"
#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/explain/centrality.h"
#include "xfraud/kv/log_kv.h"
#include "xfraud/kv/mem_kv.h"
#include "xfraud/kv/sharded_kv.h"
#include "xfraud/train/metrics.h"

namespace xfraud {
namespace {

// ---------------------------------------------------------------- KV stores

class KvContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<kv::KvStore> Make() {
    const std::string& kind = GetParam();
    if (kind == "mem") return std::make_unique<kv::MemKvStore>();
    if (kind == "sharded") return kv::ShardedKvStore::InMemory(4);
    std::string path = testing::TempDir() + "/contract_" + kind + ".kv";
    std::remove(path.c_str());
    auto opened = kv::LogKvStore::Open(path);
    EXPECT_TRUE(opened.ok());
    return std::move(opened).value();
  }
};

TEST_P(KvContractTest, OverwriteKeepsLatestValue) {
  auto store = Make();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store->Put("k", "v" + std::to_string(i)).ok());
  }
  std::string value;
  ASSERT_TRUE(store->Get("k", &value).ok());
  EXPECT_EQ(value, "v19");
  EXPECT_EQ(store->Count(), 1);
}

TEST_P(KvContractTest, DeleteThenReinsert) {
  auto store = Make();
  ASSERT_TRUE(store->Put("k", "a").ok());
  ASSERT_TRUE(store->Delete("k").ok());
  ASSERT_TRUE(store->Delete("k").ok());  // idempotent
  ASSERT_TRUE(store->Put("k", "b").ok());
  std::string value;
  ASSERT_TRUE(store->Get("k", &value).ok());
  EXPECT_EQ(value, "b");
}

TEST_P(KvContractTest, ManyKeysAllRetrievable) {
  auto store = Make();
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store
                    ->Put("key/" + std::to_string(i),
                          std::string(1 + i % 97, 'x'))
                    .ok());
  }
  EXPECT_EQ(store->Count(), n);
  std::string value;
  for (int i = 0; i < n; i += 17) {
    ASSERT_TRUE(store->Get("key/" + std::to_string(i), &value).ok());
    EXPECT_EQ(value.size(), static_cast<size_t>(1 + i % 97));
  }
  EXPECT_EQ(store->KeysWithPrefix("key/").size(), static_cast<size_t>(n));
  EXPECT_TRUE(store->KeysWithPrefix("nope").empty());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, KvContractTest,
                         ::testing::Values("mem", "sharded", "log"),
                         [](const auto& param_info) { return param_info.param; });

// ------------------------------------------------------------------- models

class ModelContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 300;
    config.num_fraud_rings = 6;
    config.num_stolen_cards = 10;
    ds_ = new data::SimDataset(
        data::TransactionGenerator::Make(config, "contract"));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  std::unique_ptr<core::GnnModel> Make(uint64_t seed) {
    Rng rng(seed);
    const std::string& kind = GetParam();
    if (kind == "gat") {
      baselines::GatConfig c;
      c.feature_dim = ds_->graph.feature_dim();
      c.hidden_dim = 16;
      c.num_heads = 2;
      return std::make_unique<baselines::GatModel>(c, &rng);
    }
    if (kind == "gem") {
      baselines::GemConfig c;
      c.feature_dim = ds_->graph.feature_dim();
      c.hidden_dim = 16;
      return std::make_unique<baselines::GemModel>(c, &rng);
    }
    core::DetectorConfig c;
    c.feature_dim = ds_->graph.feature_dim();
    c.hidden_dim = 16;
    c.num_heads = 2;
    return std::make_unique<core::XFraudDetector>(c, &rng);
  }

  sample::MiniBatch Batch(int seeds = 8) {
    sample::SageSampler sampler(2, 8);
    Rng rng(1);
    std::vector<int32_t> s(ds_->train_nodes.begin(),
                           ds_->train_nodes.begin() + seeds);
    return sampler.SampleBatch(ds_->graph, s, &rng);
  }

  static data::SimDataset* ds_;
};

data::SimDataset* ModelContractTest::ds_ = nullptr;

TEST_P(ModelContractTest, LogitsShapeMatchesTargets) {
  auto model = Make(3);
  auto batch = Batch();
  nn::Var logits = model->Forward(batch, core::ForwardOptions{});
  EXPECT_EQ(logits.rows(), static_cast<int64_t>(batch.target_locals.size()));
  EXPECT_EQ(logits.cols(), 2);
}

TEST_P(ModelContractTest, GradientsFlowToMostParameters) {
  auto model = Make(4);
  auto batch = Batch();
  Rng rng(2);
  core::ForwardOptions opts;
  opts.training = true;
  opts.rng = &rng;
  nn::Var loss = nn::CrossEntropy(model->Forward(batch, opts),
                                  batch.target_labels);
  model->ZeroGrad();
  loss.Backward();
  int touched = 0;
  auto params = model->Parameters();
  for (auto& p : params) touched += p.var.grad().Norm() > 0;
  EXPECT_GT(touched, static_cast<int>(params.size()) / 2);
}

TEST_P(ModelContractTest, UnitEdgeMaskIsIdentity) {
  auto model = Make(5);
  auto batch = Batch();
  nn::Var base = model->Forward(batch, core::ForwardOptions{});
  nn::Var mask(nn::Tensor(batch.num_edges(), 1, 1.0f), false);
  core::ForwardOptions opts;
  opts.edge_mask = &mask;
  nn::Var masked = model->Forward(batch, opts);
  for (int64_t i = 0; i < base.value().size(); ++i) {
    EXPECT_NEAR(base.value().vec()[i], masked.value().vec()[i], 1e-5);
  }
}

TEST_P(ModelContractTest, ZeroEdgeMaskDisconnectsGraph) {
  // With all messages suppressed, predictions must not depend on which
  // neighbours exist — compare against an edgeless copy of the batch.
  auto model = Make(6);
  auto batch = Batch();
  nn::Var zero(nn::Tensor(batch.num_edges(), 1, 0.0f), false);
  core::ForwardOptions opts;
  opts.edge_mask = &zero;
  nn::Var masked = model->Forward(batch, opts);

  sample::MiniBatch edgeless = batch;
  edgeless.edge_src.clear();
  edgeless.edge_dst.clear();
  edgeless.edge_types.clear();
  nn::Var isolated = model->Forward(edgeless, core::ForwardOptions{});
  for (int64_t i = 0; i < masked.value().size(); ++i) {
    EXPECT_NEAR(masked.value().vec()[i], isolated.value().vec()[i], 1e-4);
  }
}

TEST_P(ModelContractTest, SameSeedSameOutputs) {
  auto batch = Batch();
  auto m1 = Make(7);
  auto m2 = Make(7);
  nn::Var a = m1->Forward(batch, core::ForwardOptions{});
  nn::Var b = m2->Forward(batch, core::ForwardOptions{});
  for (int64_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value().vec()[i], b.value().vec()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelContractTest,
                         ::testing::Values("detector", "gat", "gem"),
                         [](const auto& param_info) { return param_info.param; });

// -------------------------------------------------------------- centralities

using CentralityCase = std::tuple<int /*measure*/, std::string /*family*/>;

class CentralityPropertyTest
    : public ::testing::TestWithParam<CentralityCase> {
 protected:
  static std::vector<graph::UndirectedEdge> MakeFamily(
      const std::string& family, int* num_nodes) {
    std::vector<std::pair<int, int>> pairs;
    if (family == "path") {
      *num_nodes = 8;
      for (int i = 0; i + 1 < 8; ++i) pairs.emplace_back(i, i + 1);
    } else if (family == "star") {
      *num_nodes = 9;
      for (int i = 1; i < 9; ++i) pairs.emplace_back(0, i);
    } else if (family == "cycle") {
      *num_nodes = 7;
      for (int i = 0; i < 7; ++i) pairs.emplace_back(i, (i + 1) % 7);
    } else {  // barbell: two triangles joined by a bridge
      *num_nodes = 6;
      pairs = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}};
    }
    std::vector<graph::UndirectedEdge> edges;
    for (auto [u, v] : pairs) {
      graph::UndirectedEdge e;
      e.u = u;
      e.v = v;
      edges.push_back(e);
    }
    return edges;
  }
};

TEST_P(CentralityPropertyTest, FiniteNonNegativeAndDeterministic) {
  auto [measure_idx, family] = GetParam();
  auto measure = static_cast<explain::CentralityMeasure>(measure_idx);
  int n = 0;
  auto edges = MakeFamily(family, &n);
  Rng r1(9), r2(9);
  auto w1 = explain::EdgeWeightsByCentrality(edges, n, measure, &r1);
  auto w2 = explain::EdgeWeightsByCentrality(edges, n, measure, &r2);
  ASSERT_EQ(w1.size(), edges.size());
  for (size_t e = 0; e < w1.size(); ++e) {
    EXPECT_TRUE(std::isfinite(w1[e]));
    EXPECT_GE(w1[e], -1e-9);
    EXPECT_EQ(w1[e], w2[e]) << "non-deterministic at edge " << e;
  }
}

TEST_P(CentralityPropertyTest, RespectsGraphSymmetry) {
  auto [measure_idx, family] = GetParam();
  auto measure = static_cast<explain::CentralityMeasure>(measure_idx);
  if (family == "barbell") return;  // only the vertex-transitive families
  int n = 0;
  auto edges = MakeFamily(family, &n);
  Rng rng(9);
  auto w = explain::EdgeWeightsByCentrality(edges, n, measure, &rng);
  if (family == "star") {
    // All star edges are equivalent by symmetry.
    for (size_t e = 1; e < w.size(); ++e) EXPECT_NEAR(w[e], w[0], 1e-6);
  }
  if (family == "cycle") {
    for (size_t e = 1; e < w.size(); ++e) EXPECT_NEAR(w[e], w[0], 1e-6);
  }
  if (family == "path") {
    // Mirror symmetry: edge i matches edge (m-1-i).
    for (size_t e = 0; e < w.size(); ++e) {
      EXPECT_NEAR(w[e], w[w.size() - 1 - e], 1e-6);
    }
  }
}

std::vector<CentralityCase> AllCentralityCases() {
  std::vector<CentralityCase> cases;
  for (int m = 0; m < explain::kNumCentralityMeasures; ++m) {
    // The approximate measure is sampling-based: determinism holds for a
    // fixed Rng (covered), symmetry only in expectation — skip it there.
    for (std::string_view family : {"path", "star", "cycle", "barbell"}) {
      if (m == static_cast<int>(
                   explain::CentralityMeasure::kApproxCurrentFlowBetweenness) &&
          family != "barbell") {
        continue;
      }
      cases.emplace_back(m, family);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasuresAndFamilies, CentralityPropertyTest,
    ::testing::ValuesIn(AllCentralityCases()),
    [](const auto& param_info) {
      std::string name =
          std::string(explain::CentralityMeasureName(
              static_cast<explain::CentralityMeasure>(
                  std::get<0>(param_info.param)))) +
          "_" + std::get<1>(param_info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ------------------------------------------------------------------ metrics

class MetricsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MetricsPropertyTest, AucAndApBoundsAndConsistency) {
  auto [n, positive_rate] = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 31 + 7);
  std::vector<double> scores(n);
  std::vector<int> labels(n);
  int positives = 0;
  for (int i = 0; i < n; ++i) {
    labels[i] = rng.NextBernoulli(positive_rate);
    positives += labels[i];
    scores[i] = 0.3 * labels[i] + rng.NextGaussian() * 0.5;
  }
  if (positives == 0 || positives == n) return;  // degenerate draw

  double auc = train::RocAuc(scores, labels);
  double ap = train::AveragePrecision(scores, labels);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);
  // Informative scores: better than chance on both metrics.
  EXPECT_GT(auc, 0.5);
  EXPECT_GT(ap, static_cast<double>(positives) / n);

  // Threshold-metric identities hold at every threshold.
  for (double t : {0.1, 0.5, 0.9}) {
    auto m = train::MetricsAtThreshold(scores, labels, t);
    EXPECT_EQ(m.tp + m.fn, positives);
    EXPECT_EQ(m.fp + m.tn, n - positives);
    EXPECT_NEAR(m.tpr + m.fnr, positives > 0 ? 1.0 : 0.0, 1e-9);
    EXPECT_NEAR(m.fpr + m.tnr, (n - positives) > 0 ? 1.0 : 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndImbalance, MetricsPropertyTest,
    ::testing::Combine(::testing::Values(50, 500, 5000),
                       ::testing::Values(0.05, 0.2, 0.5)));

}  // namespace
}  // namespace xfraud
