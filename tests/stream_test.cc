// Tests for the streaming ingest tier (DESIGN.md §15): GraphIngestor
// replay equivalence with the offline GraphBuilder path, crash/reattach
// recovery, torn-write retry idempotence, the FanoutEpochSource grid
// protocol, GraphView cache invalidation — and the ContinuousIngest chaos
// suite that tools/ci.sh --mode=faults runs, which asserts the PR's
// acceptance criterion: scores of a pinned epoch are bit-identical under
// kill_replica / torn_write / stall_compaction chaos, while writers and
// the background compactor keep running.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "xfraud/baselines/rule_scorer.h"
#include "xfraud/common/check.h"
#include "xfraud/common/clock.h"
#include "xfraud/common/rng.h"
#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/fault/fault_plan.h"
#include "xfraud/fault/faulty_kv.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/kv/log_kv.h"
#include "xfraud/kv/mem_kv.h"
#include "xfraud/kv/snapshot.h"
#include "xfraud/serve/scoring_service.h"
#include "xfraud/stream/graph_ingestor.h"
#include "xfraud/stream/streaming_topology.h"

namespace xfraud::stream {
namespace {

std::string TempPath(const std::string& name) {
  std::string path =
      "/tmp/xf-stream-" + std::to_string(::getpid()) + "-" + name;
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
  return path;
}

std::string TempDir(const std::string& name) {
  std::string dir =
      "/tmp/xf-stream-" + std::to_string(::getpid()) + "-" + name;
  std::string cmd = "rm -rf " + dir;
  XF_CHECK_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

std::unique_ptr<kv::LogKvStore> OpenOrDie(const std::string& path) {
  auto store = kv::LogKvStore::Open(path);
  XF_CHECK(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

/// A small deterministic transaction workload (~250 txns, 12-d features).
std::vector<graph::TransactionRecord> SmallWorkload() {
  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.num_buyers = 120;
  config.txns_per_buyer_mean = 2.0;
  config.num_fraud_rings = 4;
  config.num_stolen_cards = 8;
  config.feature_dim = 12;
  config.seed = 20260807;
  data::TransactionGenerator gen(config);
  return gen.GenerateRecords();
}

/// Asserts two batches are bit-identical in every materialized field.
void ExpectSameBatch(const graph::MiniBatch& a, const graph::MiniBatch& b) {
  EXPECT_EQ(a.node_types, b.node_types);
  EXPECT_EQ(a.edge_src, b.edge_src);
  EXPECT_EQ(a.edge_dst, b.edge_dst);
  EXPECT_EQ(a.edge_types, b.edge_types);
  EXPECT_EQ(a.target_locals, b.target_locals);
  EXPECT_EQ(a.target_labels, b.target_labels);
  EXPECT_EQ(a.features.vec(), b.features.vec());
}

// ---------------------------------------------------------------------------
// GraphIngestor vs the offline builder

TEST(StreamIngestTest, ReplayedLogMatchesOfflineBuilderBitIdentically) {
  const std::vector<graph::TransactionRecord> records = SmallWorkload();

  // Offline path: freeze the whole log into one graph, bulk-load it.
  data::SimDataset ds = data::TransactionGenerator::BuildDataset(
      records, "offline", 0.7, 0.1, /*split_seed=*/13);
  kv::MemKvStore offline_kv;
  kv::FeatureStore offline(&offline_kv);
  ASSERT_TRUE(offline.Ingest(ds.graph).ok());

  // Streaming path: append the same log, publish once.
  auto log = OpenOrDie(TempPath("replay"));
  GraphIngestor ingestor(log.get(), log.get());
  ASSERT_TRUE(ingestor.Attach().ok());
  for (const auto& r : records) {
    ASSERT_TRUE(ingestor.Append(r).ok()) << r.txn_id;
  }
  auto epoch = ingestor.PublishEpoch();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  ASSERT_EQ(epoch.value(), 1u);

  kv::FeatureStore streaming(log.get());
  auto num = streaming.NumNodes(1);
  ASSERT_TRUE(num.ok());
  ASSERT_EQ(num.value(), ds.graph.num_nodes());
  auto dim = streaming.FeatureDim(1);
  ASSERT_TRUE(dim.ok());
  EXPECT_EQ(dim.value(), ds.graph.feature_dim());

  // Every node: type, label, features, and adjacency are bit-identical to
  // what the offline builder produced — same ids, same bytes.
  for (int32_t node = 0; node < ds.graph.num_nodes(); ++node) {
    graph::NodeType ta, tb;
    int8_t la, lb;
    ASSERT_TRUE(offline.ReadNode(node, &ta, &la).ok()) << node;
    ASSERT_TRUE(streaming.ReadNode(node, &tb, &lb, 1).ok()) << node;
    ASSERT_EQ(ta, tb) << node;
    ASSERT_EQ(la, lb) << node;

    std::vector<float> fa, fb;
    Status sa = offline.ReadFeatures(node, &fa);
    Status sb = streaming.ReadFeatures(node, &fb, 1);
    ASSERT_EQ(sa.ok(), sb.ok()) << node;
    if (sa.ok()) ASSERT_EQ(fa, fb) << node;

    std::vector<int32_t> na, nb;
    std::vector<uint8_t> ea, eb;
    ASSERT_TRUE(offline.ReadNeighbors(node, &na, &ea).ok()) << node;
    ASSERT_TRUE(streaming.ReadNeighbors(node, &nb, &eb, 1).ok()) << node;
    ASSERT_EQ(na, nb) << node;
    ASSERT_EQ(ea, eb) << node;
  }

  // Whole sampling walks replay identically too (same RNG stream, same
  // frontier bytes → same batch).
  std::vector<int32_t> seeds = {ingestor.TxnNode(records[0].txn_id),
                                ingestor.TxnNode(records[1].txn_id),
                                ingestor.TxnNode(records[2].txn_id)};
  for (int32_t s : seeds) ASSERT_GE(s, 0);
  Rng rng_a(99), rng_b(99);
  auto batch_a = offline.LoadBatch(seeds, 2, 8, &rng_a, kv::kHeadEpoch);
  auto batch_b = streaming.LoadBatch(seeds, 2, 8, &rng_b, 1);
  ASSERT_TRUE(batch_a.ok()) << batch_a.status().ToString();
  ASSERT_TRUE(batch_b.ok()) << batch_b.status().ToString();
  ExpectSameBatch(batch_a.value(), batch_b.value());
}

TEST(StreamIngestTest, AppendValidatesIdsAndFeatureDim) {
  auto log = OpenOrDie(TempPath("validate"));
  GraphIngestor ingestor(log.get(), log.get());
  ASSERT_TRUE(ingestor.Attach().ok());

  graph::TransactionRecord r;
  r.txn_id = "";
  r.features = {1.0f, 2.0f};
  EXPECT_TRUE(ingestor.Append(r).IsInvalidArgument());

  r.txn_id = "t1";
  r.buyer_id = "b1";
  ASSERT_TRUE(ingestor.Append(r).ok());
  EXPECT_TRUE(ingestor.Append(r).code() == StatusCode::kAlreadyExists);

  graph::TransactionRecord drift;
  drift.txn_id = "t2";
  drift.features = {1.0f, 2.0f, 3.0f};  // dim 3 after dim 2
  EXPECT_TRUE(ingestor.Append(drift).IsInvalidArgument());

  // Buffered (unpublished) txns already resolve through TxnNode.
  EXPECT_EQ(ingestor.TxnNode("t1"), 0);
  EXPECT_EQ(ingestor.TxnNode("missing"), -1);
  EXPECT_EQ(ingestor.buffered(), 1);
}

TEST(StreamIngestTest, AttachRecoversIdMapsAcrossReopen) {
  const std::string path = TempPath("reattach");
  const std::vector<graph::TransactionRecord> records = SmallWorkload();
  const size_t half = records.size() / 2;

  int64_t nodes_after_half = 0;
  {
    auto log = OpenOrDie(path);
    GraphIngestor ingestor(log.get(), log.get());
    ASSERT_TRUE(ingestor.Attach().ok());
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(ingestor.Append(records[i]).ok());
    }
    ASSERT_TRUE(ingestor.PublishEpoch().ok());
    nodes_after_half = ingestor.num_nodes();
  }  // process "crashes" after a clean publish

  auto log = OpenOrDie(path);
  GraphIngestor ingestor(log.get(), log.get());
  ASSERT_TRUE(ingestor.Attach().ok());
  EXPECT_EQ(ingestor.num_nodes(), nodes_after_half);
  // Old ids survive, duplicates are still caught after the restart.
  EXPECT_EQ(ingestor.TxnNode(records[0].txn_id), 0);
  EXPECT_TRUE(ingestor.Append(records[0]).code() == StatusCode::kAlreadyExists);

  // The id sequence continues where it left off and entity interning still
  // dedupes against pre-crash entities.
  for (size_t i = half; i < records.size(); ++i) {
    ASSERT_TRUE(ingestor.Append(records[i]).ok());
  }
  ASSERT_TRUE(ingestor.PublishEpoch().ok());

  // The two-epoch streaming run now matches the one-shot offline build.
  data::SimDataset ds = data::TransactionGenerator::BuildDataset(
      records, "offline", 0.7, 0.1, /*split_seed=*/13);
  EXPECT_EQ(ingestor.num_nodes(), ds.graph.num_nodes());
}

TEST(StreamIngestTest, TornWriteRetryPublishesBitIdenticalEpoch) {
  // A small batch keeps the per-flush KV op count low enough that a
  // retried flush has a real chance of drawing zero faults — the torn
  // rate is per *op*, so huge batches under high rates never converge.
  std::vector<graph::TransactionRecord> records = SmallWorkload();
  records.resize(12);

  // Control: the same appends through a clean store.
  auto clean_log = OpenOrDie(TempPath("torn-clean"));
  GraphIngestor clean(clean_log.get(), clean_log.get());
  ASSERT_TRUE(clean.Attach().ok());
  for (const auto& r : records) ASSERT_TRUE(clean.Append(r).ok());
  ASSERT_TRUE(clean.PublishEpoch().ok());

  // Chaos: every write may be torn (half the value persists, the call
  // errors). PublishEpoch keeps its buffer on failure and the retried
  // flush overwrites the torn remnants in the pending epoch.
  auto plan = fault::FaultPlan::Parse("seed=9,torn_write=0.03");
  ASSERT_TRUE(plan.ok());
  fault::FaultInjector injector(plan.value());
  auto torn_log = OpenOrDie(TempPath("torn-chaos"));
  fault::FaultyKvStore faulty(torn_log.get(), &injector);
  GraphIngestor ingestor(&faulty, torn_log.get());
  ASSERT_TRUE(ingestor.Attach().ok());
  for (const auto& r : records) ASSERT_TRUE(ingestor.Append(r).ok());

  Result<uint64_t> published = ingestor.PublishEpoch();
  int retries = 0;
  while (!published.ok() && retries < 500) {
    ++retries;
    published = ingestor.PublishEpoch();
  }
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(published.value(), 1u);
  EXPECT_GT(injector.injected_torn_writes(), 0);
  EXPECT_GT(retries, 0);

  // The committed epoch contains no half-written row: every record is
  // byte-equal to the fault-free control.
  kv::FeatureStore want(clean_log.get());
  kv::FeatureStore got(torn_log.get());
  auto num = got.NumNodes(1);
  ASSERT_TRUE(num.ok());
  ASSERT_EQ(num.value(), want.NumNodes(1).value());
  for (int32_t node = 0; node < num.value(); ++node) {
    std::vector<float> fa, fb;
    Status sa = want.ReadFeatures(node, &fa, 1);
    Status sb = got.ReadFeatures(node, &fb, 1);
    ASSERT_EQ(sa.ok(), sb.ok()) << node;
    if (sa.ok()) ASSERT_EQ(fa, fb) << node;
    std::vector<int32_t> na, nb;
    std::vector<uint8_t> ea, eb;
    ASSERT_TRUE(want.ReadNeighbors(node, &na, &ea, 1).ok()) << node;
    ASSERT_TRUE(got.ReadNeighbors(node, &nb, &eb, 1).ok()) << node;
    ASSERT_EQ(na, nb) << node;
    ASSERT_EQ(ea, eb) << node;
  }
}

TEST(StreamIngestTest, CrashBeforePublishReplaysBitIdentically) {
  const std::string path = TempPath("crash-replay");
  const std::vector<graph::TransactionRecord> records = SmallWorkload();
  const size_t half = records.size() / 2;

  {
    auto log = OpenOrDie(path);
    GraphIngestor ingestor(log.get(), log.get());
    ASSERT_TRUE(ingestor.Attach().ok());
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(ingestor.Append(records[i]).ok());
    }
    ASSERT_TRUE(ingestor.PublishEpoch().ok());
    // Second batch: force the flush to run (torn write fails it midway),
    // leaving a half-written pending epoch on disk — then "crash" before
    // any retry succeeds.
    auto plan = fault::FaultPlan::Parse("seed=21,torn_write=1");
    ASSERT_TRUE(plan.ok());
    fault::FaultInjector injector(plan.value());
    fault::FaultyKvStore faulty(log.get(), &injector);
    GraphIngestor doomed(&faulty, log.get());
    ASSERT_TRUE(doomed.Attach().ok());
    for (size_t i = half; i < records.size(); ++i) {
      ASSERT_TRUE(doomed.Append(records[i]).ok());
    }
    EXPECT_FALSE(doomed.PublishEpoch().ok());
    EXPECT_GT(injector.injected_torn_writes(), 0);
  }

  // Recovery: Attach drops the torn pending tail and the replayed batch
  // lands with the exact ids the uncrashed run would have assigned.
  auto log = OpenOrDie(path);
  GraphIngestor ingestor(log.get(), log.get());
  ASSERT_TRUE(ingestor.Attach().ok());
  EXPECT_EQ(log->published_epoch(), 1u);
  for (size_t i = half; i < records.size(); ++i) {
    ASSERT_TRUE(ingestor.Append(records[i]).ok()) << records[i].txn_id;
  }
  ASSERT_TRUE(ingestor.PublishEpoch().ok());

  // Same final graph as an offline build of the full log.
  data::SimDataset ds = data::TransactionGenerator::BuildDataset(
      records, "offline", 0.7, 0.1, /*split_seed=*/13);
  kv::MemKvStore offline_kv;
  kv::FeatureStore offline(&offline_kv);
  ASSERT_TRUE(offline.Ingest(ds.graph).ok());
  kv::FeatureStore streaming(log.get());
  ASSERT_EQ(streaming.NumNodes(2).value(), ds.graph.num_nodes());
  for (int32_t node = 0; node < ds.graph.num_nodes(); ++node) {
    std::vector<int32_t> na, nb;
    std::vector<uint8_t> ea, eb;
    ASSERT_TRUE(offline.ReadNeighbors(node, &na, &ea).ok()) << node;
    ASSERT_TRUE(streaming.ReadNeighbors(node, &nb, &eb, 2).ok()) << node;
    ASSERT_EQ(na, nb) << node;
    ASSERT_EQ(ea, eb) << node;
  }
}

// ---------------------------------------------------------------------------
// FanoutEpochSource grid protocol

TEST(StreamIngestTest, FanoutRollsLaggingCellsForwardOnDiscard) {
  StreamingOptions options;
  options.dir = TempDir("fanout");
  options.num_shards = 2;
  options.num_replicas = 2;
  auto topo = StreamingTopology::Open(std::move(options));
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  StreamingTopology* t = topo.value().get();

  graph::TransactionRecord r;
  r.txn_id = "t1";
  r.buyer_id = "b1";
  r.features = {1.0f, 2.0f};
  ASSERT_TRUE(t->ingestor()->Append(r).ok());
  ASSERT_TRUE(t->ingestor()->PublishEpoch().ok());
  ASSERT_EQ(t->epochs()->published_epoch(), 1u);

  // Simulate a crash mid-publish: one cell committed epoch 2, the rest did
  // not. The grid's published epoch is the minimum — still 1.
  ASSERT_TRUE(t->cell(0, 0)->PublishEpoch().ok());
  ASSERT_EQ(t->cell(0, 0)->published_epoch(), 2u);
  EXPECT_EQ(t->epochs()->published_epoch(), 1u);

  // Recovery rolls the lagging cells *forward* to the maximum (their
  // pending tails hold the full epoch) instead of losing the commit.
  ASSERT_TRUE(t->epochs()->DiscardPending().ok());
  EXPECT_EQ(t->epochs()->published_epoch(), 2u);
  for (int s = 0; s < t->num_shards(); ++s) {
    for (int rep = 0; rep < t->num_replicas(); ++rep) {
      EXPECT_EQ(t->cell(s, rep)->published_epoch(), 2u) << s << "," << rep;
    }
  }
  // Epoch 1's data is still intact after realignment.
  EXPECT_EQ(t->features()->NumNodes(1).value(), 2);
}

// ---------------------------------------------------------------------------
// GraphView pinning and sampler-cache invalidation

TEST(StreamIngestTest, ViewReleaseEvictsItsEpochFromAdjacencyCache) {
  StreamingOptions options;
  options.dir = TempDir("views");
  auto topo = StreamingTopology::Open(std::move(options));
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  StreamingTopology* t = topo.value().get();

  const std::vector<graph::TransactionRecord> records = SmallWorkload();
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(t->ingestor()->Append(records[i]).ok());
  }
  ASSERT_TRUE(t->ingestor()->PublishEpoch().ok());

  auto view = t->OpenView();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view.value().epoch(), 1u);
  Rng rng(5);
  auto batch = view.value().LoadBatch({0}, 2, 8, &rng);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_GT(t->adjacency_cache()->entries(), 0);

  // A second view on the same epoch keeps the cache alive past the first
  // release; only the last release evicts the epoch's entries.
  auto view2 = t->OpenView();
  ASSERT_TRUE(view2.ok());
  ASSERT_EQ(view2.value().epoch(), 1u);
  view.value().Release();
  EXPECT_GT(t->adjacency_cache()->entries(), 0);
  view2.value().Release();
  EXPECT_EQ(t->adjacency_cache()->entries(), 0);
}

TEST(StreamIngestTest, ViewPinsEpochAgainstCompactionAndTtl) {
  StreamingOptions options;
  options.dir = TempDir("pins");
  options.num_shards = 1;
  options.num_replicas = 1;
  options.ttl_epochs = 2;
  auto topo = StreamingTopology::Open(std::move(options));
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  StreamingTopology* t = topo.value().get();

  const std::vector<graph::TransactionRecord> records = SmallWorkload();
  size_t next = 0;
  auto publish_batch = [&](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(t->ingestor()->Append(records[next++]).ok());
    }
    ASSERT_TRUE(t->ingestor()->PublishEpoch().ok());
  };
  publish_batch(10);

  auto view = t->OpenView();
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view.value().epoch(), 1u);
  auto nodes_e1 = view.value().NumNodes();
  ASSERT_TRUE(nodes_e1.ok());
  std::vector<float> row_before;
  ASSERT_TRUE(view.value().ReadFeatures(0, &row_before).ok());

  // Publish far past the view's epoch and compact. The pin holds the GC
  // floor at epoch 1, so the view's reads keep returning the same bytes
  // even though unpinned epoch-1 state is TTL-expired for everyone else.
  publish_batch(10);
  publish_batch(10);
  publish_batch(10);
  ASSERT_TRUE(t->epochs()->Compact().ok());
  EXPECT_EQ(view.value().NumNodes().value(), nodes_e1.value());
  std::vector<float> row_after;
  ASSERT_TRUE(view.value().ReadFeatures(0, &row_after).ok());
  EXPECT_EQ(row_before, row_after);

  // Releasing the last view unblocks GC: the next compaction drops epoch 1
  // and pinning it again is refused.
  view.value().Release();
  ASSERT_TRUE(t->epochs()->Compact().ok());
  EXPECT_TRUE(t->epochs()->PinEpoch(1).IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// ContinuousIngest: the chaos-harness suite (tools/ci.sh --mode=faults).

/// Streams records[*next, limit) into `t` in fixed-size batches, retrying
/// PublishEpoch under injected write faults; advances *next.
void StreamIn(StreamingTopology* t,
              const std::vector<graph::TransactionRecord>& records,
              size_t* next, size_t limit, size_t batch) {
  while (*next < limit) {
    for (size_t i = 0; i < batch && *next < limit; ++i) {
      Status s = t->ingestor()->Append(records[(*next)++]);
      XF_CHECK(s.ok()) << s.ToString();
    }
    Result<uint64_t> e = t->ingestor()->PublishEpoch();
    for (int retry = 0; !e.ok() && retry < 500; ++retry) {
      e = t->ingestor()->PublishEpoch();
    }
    XF_CHECK(e.ok()) << e.status().ToString();
  }
}

TEST(ContinuousIngest, PinnedEpochScoresBitIdenticalUnderChaos) {
  const std::vector<graph::TransactionRecord> records = SmallWorkload();
  const size_t kBatch = 25;
  const size_t kLimit = 150;

  // Score a handful of transactions at every published epoch, through a
  // pinned GraphView, on a topology built from `plan_spec`. Returns the
  // number of torn writes the plan injected.
  auto run = [&](const std::string& plan_spec,
                 std::vector<double>* scores) -> int64_t {
    VirtualClock clock;
    StreamingOptions options;
    options.dir = TempDir(plan_spec.empty() ? "chaos-clean" : "chaos-fault");
    options.num_shards = 2;
    options.num_replicas = 2;
    options.clock = &clock;
    if (!plan_spec.empty()) {
      auto plan = fault::FaultPlan::Parse(plan_spec);
      XF_CHECK(plan.ok()) << plan.status().ToString();
      options.plan = plan.value();
    }
    auto topo = StreamingTopology::Open(std::move(options));
    XF_CHECK(topo.ok()) << topo.status().ToString();
    StreamingTopology* t = topo.value().get();

    core::DetectorConfig model_config;
    model_config.feature_dim =
        static_cast<int64_t>(records[0].features.size());
    model_config.hidden_dim = 8;
    model_config.num_heads = 2;
    model_config.num_layers = 1;
    Rng model_rng(7);
    core::XFraudDetector model(model_config, &model_rng);
    serve::ServiceOptions service_options;
    service_options.clock = &clock;
    serve::ScoringService service(&model, t->features(), service_options);

    size_t next = 0;
    for (size_t done = kBatch; done <= kLimit; done += kBatch) {
      StreamIn(t, records, &next, done, kBatch);
      auto view = t->OpenView();
      XF_CHECK(view.ok()) << view.status().ToString();
      XF_CHECK_EQ(view.value().epoch(), t->epochs()->published_epoch());
      for (int i = 0; i < 4; ++i) {
        const int32_t node =
            t->ingestor()->TxnNode(records[done - 1 - i].txn_id);
        XF_CHECK_GE(node, 0);
        auto resp = service.ScoreAt(
            /*request_id=*/static_cast<int64_t>(done * 10 + i), node,
            /*deadline_s=*/0.0, view.value().epoch());
        XF_CHECK(resp.ok()) << resp.status().ToString();
        scores->push_back(resp.value().score);
      }
      // Compact while the view is still pinned, then prove the pinned
      // epoch re-scores bit-identically after GC.
      if (done == kLimit) {
        const int32_t node = t->ingestor()->TxnNode(records[0].txn_id);
        auto before = service.ScoreAt(1, node, 0.0, view.value().epoch());
        XF_CHECK(before.ok()) << before.status().ToString();
        XF_CHECK(t->epochs()->Compact().ok());
        auto after = service.ScoreAt(1, node, 0.0, view.value().epoch());
        XF_CHECK(after.ok()) << after.status().ToString();
        EXPECT_EQ(before.value().score, after.value().score);
      }
    }
    return t->injector() == nullptr ? 0
                                    : t->injector()->injected_torn_writes();
  };

  std::vector<double> clean, chaos;
  run("", &clean);
  const int64_t torn = run(
      "seed=20260805,kill_replica=1,torn_write=0.002,stall_compaction=0.001",
      &chaos);

  // The chaos actually bit on the write path...
  EXPECT_GT(torn, 0);
  // ...and every pinned-epoch score is bit-identical to the clean run's.
  ASSERT_EQ(clean.size(), chaos.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i], chaos[i]) << "score " << i;
  }
}

TEST(ContinuousIngest, ReopenAfterChaosRecoversLastPublishedEpoch) {
  const std::vector<graph::TransactionRecord> records = SmallWorkload();
  const std::string dir = TempDir("chaos-reopen");
  uint64_t published = 0;
  int64_t nodes = 0;
  {
    StreamingOptions options;
    options.dir = dir;
    auto plan = fault::FaultPlan::Parse("seed=4,torn_write=0.005");
    ASSERT_TRUE(plan.ok());
    options.plan = plan.value();
    auto topo = StreamingTopology::Open(std::move(options));
    ASSERT_TRUE(topo.ok()) << topo.status().ToString();
    StreamingTopology* t = topo.value().get();
    size_t next = 0;
    StreamIn(t, records, &next, 100, 20);
    published = t->epochs()->published_epoch();
    nodes = t->features()->NumNodes(published).value();
    // Leave a half-flushed pending epoch behind, then "crash".
    for (size_t i = 100; i < 120; ++i) {
      ASSERT_TRUE(t->ingestor()->Append(records[i]).ok());
    }
    (void)t->ingestor()->PublishEpoch();  // may fail on a torn write
  }

  StreamingOptions options;
  options.dir = dir;
  auto topo = StreamingTopology::Open(std::move(options));
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  StreamingTopology* t = topo.value().get();
  // Open() reattached: the grid sits on a fully published epoch and the
  // recovered graph is exactly the pre-crash published state.
  EXPECT_GE(t->epochs()->published_epoch(), published);
  EXPECT_EQ(t->features()->NumNodes(published).value(), nodes);
  EXPECT_EQ(t->ingestor()->TxnNode(records[0].txn_id), 0);
}

TEST(ContinuousIngest, ConcurrentReadersSeeNoTornStateUnderCompaction) {
  const std::vector<graph::TransactionRecord> records = SmallWorkload();
  StreamingOptions options;
  options.dir = TempDir("race");
  options.num_shards = 2;
  options.num_replicas = 1;
  auto plan = fault::FaultPlan::Parse("seed=7,stall_compaction=0.0005");
  ASSERT_TRUE(plan.ok());
  options.plan = plan.value();
  auto topo = StreamingTopology::Open(std::move(options));
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  StreamingTopology* t = topo.value().get();

  // Writer publishes epochs and records the node count each one committed;
  // readers pin views and check the epoch they got reads back exactly the
  // state the writer published for it — any torn read is a mismatch.
  std::mutex mu;
  std::map<uint64_t, int64_t> nodes_at_epoch;
  std::atomic<bool> done{false};
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> reads{0};

  t->ingestor()->StartCompactor(Clock::Real(), /*interval_s=*/0.001,
                                t->injector());

  std::thread writer([&] {
    size_t next = 0;
    const size_t batch = 5;
    while (next + batch <= records.size()) {
      for (size_t i = 0; i < batch; ++i) {
        Status s = t->ingestor()->Append(records[next++]);
        XF_CHECK(s.ok()) << s.ToString();
      }
      auto e = t->ingestor()->PublishEpoch();
      XF_CHECK(e.ok()) << e.status().ToString();
      std::lock_guard<std::mutex> lock(mu);
      nodes_at_epoch[e.value()] = t->ingestor()->num_nodes();
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      while (!done.load()) {
        auto view = t->OpenView();
        if (!view.ok()) continue;  // nothing published yet
        const uint64_t epoch = view.value().epoch();
        int64_t want = -1;
        {
          std::lock_guard<std::mutex> lock(mu);
          auto it = nodes_at_epoch.find(epoch);
          if (it != nodes_at_epoch.end()) want = it->second;
        }
        auto num = view.value().NumNodes();
        if (!num.ok() || (want >= 0 && num.value() != want)) {
          mismatches.fetch_add(1);
          continue;
        }
        std::vector<float> row;
        if (!view.value().ReadFeatures(0, &row).ok() || row.empty()) {
          mismatches.fetch_add(1);
          continue;
        }
        auto batch = view.value().LoadBatch({0}, 2, 6, &rng);
        if (!batch.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        reads.fetch_add(1);
      }
    });
  }

  writer.join();
  for (auto& th : readers) th.join();
  t->ingestor()->StopCompactor();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(reads.load(), 0);
  EXPECT_GT(t->ingestor()->compaction_cycles(), 0);
  EXPECT_GT(t->injector()->injected_compaction_stalls(), 0);
  EXPECT_GE(t->epochs()->published_epoch(), 2u);
}

}  // namespace
}  // namespace xfraud::stream
