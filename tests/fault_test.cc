#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/dist/distributed.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/fault/fault_plan.h"
#include "xfraud/fault/faulty_kv.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/kv/mem_kv.h"
#include "xfraud/obs/registry.h"
#include "xfraud/sample/batch_loader.h"
#include "xfraud/train/trainer.h"

namespace xfraud::fault {
namespace {

// ---- FaultPlan grammar ----------------------------------------------------

TEST(FaultPlanTest, ParsesEveryKey) {
  auto parsed = FaultPlan::Parse(
      "seed=7, kv_error_rate=0.05, kv_corrupt_rate=0.01, "
      "kv_latency_rate=0.5, kv_latency_s=0.002, kill_worker=1@3:12, "
      "crash_batch=4");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const FaultPlan& plan = parsed.value();
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.kv_error_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.kv_corrupt_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.kv_latency_rate, 0.5);
  EXPECT_DOUBLE_EQ(plan.kv_latency_s, 0.002);
  EXPECT_EQ(plan.kill_worker, 1);
  EXPECT_EQ(plan.kill_epoch, 3);
  EXPECT_EQ(plan.kill_step, 12);
  EXPECT_EQ(plan.crash_batch, 4);
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(plan.has_kv_faults());
}

TEST(FaultPlanTest, EmptySpecIsTheInjectNothingPlan) {
  auto parsed = FaultPlan::Parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().any());
}

TEST(FaultPlanTest, RoundTripsThroughToString) {
  auto original = FaultPlan::Parse(
      "seed=42,kv_error_rate=0.25,kv_latency_rate=0.1,kv_latency_s=0.001,"
      "kill_worker=2@1:5,crash_batch=9");
  ASSERT_TRUE(original.ok());
  auto reparsed = FaultPlan::Parse(original.value().ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const FaultPlan& a = original.value();
  const FaultPlan& b = reparsed.value();
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_DOUBLE_EQ(a.kv_error_rate, b.kv_error_rate);
  EXPECT_DOUBLE_EQ(a.kv_corrupt_rate, b.kv_corrupt_rate);
  EXPECT_DOUBLE_EQ(a.kv_latency_rate, b.kv_latency_rate);
  EXPECT_DOUBLE_EQ(a.kv_latency_s, b.kv_latency_s);
  EXPECT_EQ(a.kill_worker, b.kill_worker);
  EXPECT_EQ(a.kill_epoch, b.kill_epoch);
  EXPECT_EQ(a.kill_step, b.kill_step);
  EXPECT_EQ(a.crash_batch, b.crash_batch);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_TRUE(FaultPlan::Parse("bogus_key=1").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("seed").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("kv_error_rate=nope").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("kv_error_rate=1.5").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("kv_error_rate=-0.1").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("kv_latency_s=-1").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("kill_worker=1").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("kill_worker=1@2").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("kill_worker=-1@0:0").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("seed=1,=2").status().IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Parse("seed=1junk").status().IsInvalidArgument());
}

TEST(FaultPlanTest, ParsesTornWriteAndStallCompactionKeys) {
  auto parsed = FaultPlan::Parse("seed=3,torn_write=0.25,stall_compaction=0.5");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const FaultPlan& plan = parsed.value();
  EXPECT_DOUBLE_EQ(plan.torn_write_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.stall_compaction_s, 0.5);
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(plan.has_kv_faults());

  // A stall-only plan injects no per-op KV faults but is still a plan (the
  // streaming topology must build an injector for its compactor).
  auto stall_only = FaultPlan::Parse("stall_compaction=0.1");
  ASSERT_TRUE(stall_only.ok());
  EXPECT_TRUE(stall_only.value().any());
  EXPECT_FALSE(stall_only.value().has_kv_faults());

  auto reparsed = FaultPlan::Parse(plan.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_DOUBLE_EQ(reparsed.value().torn_write_rate, plan.torn_write_rate);
  EXPECT_DOUBLE_EQ(reparsed.value().stall_compaction_s,
                   plan.stall_compaction_s);

  EXPECT_TRUE(FaultPlan::Parse("torn_write=1.5").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("stall_compaction=-1").status().IsInvalidArgument());
}

TEST(FaultInjectorTest, TornWritePersistsHalfTheValueThenErrors) {
  auto plan = FaultPlan::Parse("seed=5,torn_write=1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  kv::MemKvStore inner;
  FaultyKvStore faulty(&inner, &injector);
  Status s = faulty.Put("k", "0123456789");
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  // The inner store holds a half-persisted value — exactly the remnant an
  // MVCC retry must overwrite in the pending epoch before publishing.
  std::string remnant;
  ASSERT_TRUE(inner.Get("k", &remnant).ok());
  EXPECT_EQ(remnant, "01234");
  EXPECT_GE(injector.injected_torn_writes(), 1);
}

TEST(FaultInjectorTest, CompactionStallFollowsThePlan) {
  auto plan = FaultPlan::Parse("stall_compaction=0.25");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  EXPECT_DOUBLE_EQ(injector.NextCompactionStall(), 0.25);
  EXPECT_DOUBLE_EQ(injector.NextCompactionStall(), 0.25);
  EXPECT_EQ(injector.injected_compaction_stalls(), 2);

  FaultPlan empty;
  FaultInjector none(empty);
  EXPECT_DOUBLE_EQ(none.NextCompactionStall(), 0.0);
  EXPECT_EQ(none.injected_compaction_stalls(), 0);
}

TEST(FaultPlanTest, FromEnvReadsXfraudFaultPlan) {
  // Save whatever the harness set (ci.sh --mode=faults exports a chaos
  // profile for the whole suite) and restore it on the way out.
  const char* prev = std::getenv("XFRAUD_FAULT_PLAN");
  std::string saved = prev != nullptr ? prev : "";

  ::setenv("XFRAUD_FAULT_PLAN", "seed=9,kv_error_rate=0.5", 1);
  auto from_env = FaultPlan::FromEnv();
  ASSERT_TRUE(from_env.ok());
  EXPECT_EQ(from_env.value().seed, 9u);
  EXPECT_DOUBLE_EQ(from_env.value().kv_error_rate, 0.5);

  ::setenv("XFRAUD_FAULT_PLAN", "not a plan", 1);
  EXPECT_TRUE(FaultPlan::FromEnv().status().IsInvalidArgument());

  ::unsetenv("XFRAUD_FAULT_PLAN");
  auto unset = FaultPlan::FromEnv();
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset.value().any());

  if (prev != nullptr) {
    ::setenv("XFRAUD_FAULT_PLAN", saved.c_str(), 1);
  }
}

TEST(FaultPlanTest, ParsesReplicaFaultKeys) {
  auto parsed = FaultPlan::Parse(
      "seed=3,kill_replica=1,kill_shard=2,slow_replica=0@0.25");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const FaultPlan& plan = parsed.value();
  EXPECT_EQ(plan.kill_replica, 1);
  EXPECT_EQ(plan.kill_shard, 2);
  EXPECT_EQ(plan.slow_replica, 0);
  EXPECT_DOUBLE_EQ(plan.slow_replica_latency_s, 0.25);
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(plan.has_replica_faults());
  EXPECT_FALSE(plan.has_kv_faults());

  auto reparsed = FaultPlan::Parse(plan.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().kill_replica, plan.kill_replica);
  EXPECT_EQ(reparsed.value().kill_shard, plan.kill_shard);
  EXPECT_EQ(reparsed.value().slow_replica, plan.slow_replica);
  EXPECT_DOUBLE_EQ(reparsed.value().slow_replica_latency_s,
                   plan.slow_replica_latency_s);
}

TEST(FaultPlanTest, RejectsMalformedReplicaFaults) {
  EXPECT_TRUE(
      FaultPlan::Parse("kill_replica=-2").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("kill_shard=nope").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("slow_replica=1").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("slow_replica=1@-0.5").status().IsInvalidArgument());
  EXPECT_TRUE(
      FaultPlan::Parse("slow_replica=-1@0.5").status().IsInvalidArgument());
}

TEST(FaultInjectorTest, ReplicaVerdictFollowsPosition) {
  auto plan =
      FaultPlan::Parse("kill_replica=1,kill_shard=3,slow_replica=0@0.5");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());

  double latency = 0.0;
  // Matching replica id: dead on every shard.
  EXPECT_TRUE(injector.NextReplicaFault(1, 0, &latency));
  EXPECT_TRUE(injector.NextReplicaFault(1, 2, &latency));
  // Matching shard id: every replica of the shard is dead.
  EXPECT_TRUE(injector.NextReplicaFault(0, 3, &latency));
  // Slow replica: survives, but pays the latency tax.
  latency = 0.0;
  EXPECT_FALSE(injector.NextReplicaFault(0, 0, &latency));
  EXPECT_DOUBLE_EQ(latency, 0.5);
  // Unpositioned (training-path) stores never see replica faults.
  latency = 0.0;
  EXPECT_FALSE(injector.NextReplicaFault(-1, -1, &latency));
  EXPECT_DOUBLE_EQ(latency, 0.0);

  EXPECT_GT(injector.injected_replica_failures(), 0);
  EXPECT_GT(injector.injected_replica_slowdowns(), 0);
}

TEST(FaultyKvTest, PositionedStoreDiesPerPlanUnpositionedSurvives) {
  auto plan = FaultPlan::Parse("kill_replica=0");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  kv::MemKvStore inner;
  ASSERT_TRUE(inner.Put("k", "v").ok());

  VirtualClock clock;
  FaultyKvStore dead(&inner, &injector, /*replica_id=*/0, /*shard_id=*/0,
                     &clock);
  FaultyKvStore alive(&inner, &injector, /*replica_id=*/1, /*shard_id=*/0,
                      &clock);
  FaultyKvStore unpositioned(&inner, &injector);

  std::string value;
  EXPECT_TRUE(dead.Get("k", &value).IsIoError());
  EXPECT_TRUE(dead.Put("k", "w").IsIoError());
  EXPECT_TRUE(alive.Get("k", &value).ok());
  EXPECT_TRUE(unpositioned.Get("k", &value).ok());
}

TEST(FaultyKvTest, SlowReplicaSleepsOnTheInjectedClock) {
  auto plan = FaultPlan::Parse("slow_replica=0@0.25");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  kv::MemKvStore inner;
  ASSERT_TRUE(inner.Put("k", "v").ok());
  VirtualClock clock;
  FaultyKvStore slow(&inner, &injector, /*replica_id=*/0, /*shard_id=*/0,
                     &clock);
  std::string value;
  ASSERT_TRUE(slow.Get("k", &value).ok());
  // The injected latency elapsed on the virtual clock, not in real time.
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 0.25);
}

// ---- FaultInjector determinism --------------------------------------------

TEST(FaultInjectorTest, DecisionSequenceIsDeterministic) {
  auto plan = FaultPlan::Parse(
      "seed=123,kv_error_rate=0.1,kv_corrupt_rate=0.05,"
      "kv_latency_rate=0.2,kv_latency_s=0.0");
  ASSERT_TRUE(plan.ok());
  FaultInjector a(plan.value());
  FaultInjector b(plan.value());
  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    double lat_a = -1.0, lat_b = -1.0;
    FaultInjector::KvFault fa = a.NextKvFault(&lat_a);
    FaultInjector::KvFault fb = b.NextKvFault(&lat_b);
    ASSERT_EQ(fa, fb) << "op " << i;
    ASSERT_EQ(lat_a, lat_b) << "op " << i;
  }
  // Identical totals, and every configured fault class actually fired.
  EXPECT_EQ(a.injected_io_errors(), b.injected_io_errors());
  EXPECT_EQ(a.injected_corruptions(), b.injected_corruptions());
  EXPECT_EQ(a.injected_latencies(), b.injected_latencies());
  EXPECT_GT(a.injected_io_errors(), 0);
  EXPECT_GT(a.injected_corruptions(), 0);
  EXPECT_GT(a.injected_latencies(), 0);
  // Rates are in the right ballpark (deterministic, so these bounds are
  // stable, not flaky).
  EXPECT_GT(a.injected_io_errors(), kOps / 20);
  EXPECT_LT(a.injected_io_errors(), kOps / 5);
}

TEST(FaultInjectorTest, KillAndCrashScheduleMatchThePlanExactly) {
  auto plan = FaultPlan::Parse("kill_worker=2@1:3,crash_batch=5");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  for (int w = 0; w < 4; ++w) {
    for (int e = 0; e < 3; ++e) {
      for (int64_t s = 0; s < 6; ++s) {
        EXPECT_EQ(injector.ShouldKillWorker(w, e, s),
                  w == 2 && e == 1 && s == 3);
      }
    }
  }
  for (int64_t call = 0; call < 8; ++call) {
    EXPECT_EQ(injector.ShouldCrashSampler(call), call == 5);
    EXPECT_EQ(injector.NextSamplerCall(), call);
  }
  // No-crash plan: never fires.
  FaultInjector quiet((FaultPlan()));
  EXPECT_FALSE(quiet.ShouldCrashSampler(0));
  EXPECT_FALSE(quiet.ShouldKillWorker(0, 0, 0));
}

// ---- FaultyKvStore --------------------------------------------------------

TEST(FaultyKvTest, InjectsErrorsAndPassesCleanOpsThrough) {
  kv::MemKvStore inner;
  ASSERT_TRUE(inner.Put("k", "v").ok());
  auto plan = FaultPlan::Parse("seed=5,kv_error_rate=0.2");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  FaultyKvStore store(&inner, &injector);

  constexpr int kReads = 500;
  int failures = 0;
  for (int i = 0; i < kReads; ++i) {
    std::string value;
    Status s = store.Get("k", &value);
    if (s.ok()) {
      EXPECT_EQ(value, "v");
    } else {
      EXPECT_TRUE(s.IsIoError()) << s.ToString();
      ++failures;
    }
  }
  EXPECT_EQ(failures, injector.injected_io_errors());
  // Deterministic draw at rate 0.2 over 500 ops: ~100 failures.
  EXPECT_GT(failures, 60);
  EXPECT_LT(failures, 140);
  // The pass-through ops are not injected.
  EXPECT_EQ(store.Count(), 1);
  EXPECT_EQ(store.KeysWithPrefix("k").size(), 1u);
  EXPECT_TRUE(store.Delete("k").ok());
}

TEST(FaultyKvTest, CorruptionRateOneFailsEveryOp) {
  kv::MemKvStore inner;
  ASSERT_TRUE(inner.Put("k", "v").ok());
  auto plan = FaultPlan::Parse("seed=5,kv_corrupt_rate=1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  FaultyKvStore store(&inner, &injector);
  std::string value;
  EXPECT_TRUE(store.Get("k", &value).IsCorruption());
  EXPECT_TRUE(store.Put("k2", "v2").IsCorruption());
  EXPECT_EQ(injector.injected_corruptions(), 2);
  // The injected Put never reached the inner store.
  EXPECT_EQ(inner.Count(), 1);
}

TEST(FaultyKvTest, LatencyComposesWithSuccess) {
  kv::MemKvStore inner;
  ASSERT_TRUE(inner.Put("k", "v").ok());
  auto plan = FaultPlan::Parse("seed=5,kv_latency_rate=1,kv_latency_s=0");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  FaultyKvStore store(&inner, &injector);
  std::string value;
  EXPECT_TRUE(store.Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_EQ(injector.injected_latencies(), 1);
}

// ---- Dataset-backed fixtures ----------------------------------------------

class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
    config.num_buyers = 400;
    config.num_fraud_rings = 8;
    config.num_stolen_cards = 12;
    ds_ = new data::SimDataset(
        data::TransactionGenerator::Make(config, "fault"));
    raw_kv_ = new kv::MemKvStore();
    kv::FeatureStore ingest(raw_kv_);
    Status s = ingest.Ingest(ds_->graph);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  static void TearDownTestSuite() {
    delete raw_kv_;
    raw_kv_ = nullptr;
    delete ds_;
    ds_ = nullptr;
  }

  static core::XFraudDetector MakeModel(uint64_t seed) {
    Rng rng(seed);
    core::DetectorConfig dc;
    dc.feature_dim = ds_->graph.feature_dim();
    dc.hidden_dim = 16;
    dc.num_heads = 2;
    dc.num_layers = 2;
    return core::XFraudDetector(dc, &rng);
  }

  /// Tight backoffs so retry tests spend microseconds, not wall-clock.
  static RetryPolicy FastRetries(int max_attempts) {
    RetryPolicy policy;
    policy.max_attempts = max_attempts;
    policy.initial_backoff_s = 1e-6;
    policy.max_backoff_s = 1e-5;
    return policy;
  }

  static data::SimDataset* ds_;
  static kv::MemKvStore* raw_kv_;  // ds_->graph ingested once, shared
  static sample::SageSampler sampler_;
};

data::SimDataset* FaultToleranceTest::ds_ = nullptr;
kv::MemKvStore* FaultToleranceTest::raw_kv_ = nullptr;
sample::SageSampler FaultToleranceTest::sampler_(2, 8);

// ---- Retry on the KV path -------------------------------------------------

TEST_F(FaultToleranceTest, FeatureStoreRidesOutTransientFaults) {
  auto plan = FaultPlan::Parse("seed=11,kv_error_rate=0.3");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  FaultyKvStore faulty(raw_kv_, &injector);
  kv::FeatureStore store(&faulty);
  store.set_retry_policy(FastRetries(10));

  int64_t giveups_before =
      obs::Registry::Global().counter("retry/giveups")->value();
  int reads = 0;
  for (size_t i = 0; i < ds_->train_nodes.size() && reads < 200; ++i) {
    int32_t node = ds_->train_nodes[i];
    std::vector<float> feat;
    Status s = store.ReadFeatures(node, &feat);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_EQ(static_cast<int64_t>(feat.size()), ds_->graph.feature_dim());
    EXPECT_EQ(feat[0], ds_->graph.Features(node)[0]);
    ++reads;
  }
  // Faults fired and retries absorbed every one of them.
  EXPECT_GT(injector.injected_io_errors(), 0);
  EXPECT_EQ(obs::Registry::Global().counter("retry/giveups")->value(),
            giveups_before);
}

TEST_F(FaultToleranceTest, FeatureStoreGivesUpWhenFaultsPersist) {
  auto plan = FaultPlan::Parse("seed=11,kv_error_rate=1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  FaultyKvStore faulty(raw_kv_, &injector);
  kv::FeatureStore store(&faulty);
  store.set_retry_policy(FastRetries(3));

  auto& registry = obs::Registry::Global();
  int64_t attempts_before = registry.counter("retry/attempts")->value();
  int64_t giveups_before = registry.counter("retry/giveups")->value();

  std::vector<float> feat;
  Status s = store.ReadFeatures(ds_->train_nodes[0], &feat);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  // All three attempts were injected failures, then it gave up.
  EXPECT_EQ(injector.injected_io_errors(), 3);
  EXPECT_EQ(registry.counter("retry/attempts")->value(), attempts_before + 3);
  EXPECT_EQ(registry.counter("retry/giveups")->value(), giveups_before + 1);
}

// ---- Degraded-mode batch loading ------------------------------------------

TEST_F(FaultToleranceTest, LoaderZeroImputesWhenEveryReadFails) {
  auto plan = FaultPlan::Parse("seed=3,kv_error_rate=1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  FaultyKvStore faulty(raw_kv_, &injector);
  kv::FeatureStore store(&faulty);  // no retries: every read fails

  sample::SageSampler sampler(2, 8);
  sample::LoaderOptions lopts;
  lopts.feature_store = &store;
  sample::BatchLoader loader(
      &ds_->graph, &sampler,
      sample::BatchLoader::MakeSeedBatches(ds_->train_nodes, 64),
      /*stream_seed=*/21, lopts);
  auto loaded = loader.Next();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->degraded);
  EXPECT_EQ(loaded->degraded_rows, loaded->batch.num_nodes());
  for (float v : loaded->batch.features.vec()) ASSERT_EQ(v, 0.0f);
}

TEST_F(FaultToleranceTest, TrainerToleratesDegradedBatchesWithinBudget) {
  auto plan = FaultPlan::Parse("seed=3,kv_error_rate=1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  FaultyKvStore faulty(raw_kv_, &injector);
  kv::FeatureStore store(&faulty);

  train::TrainOptions opts;
  opts.max_epochs = 1;
  opts.patience = 1;
  opts.batch_size = 128;
  opts.seed = 5;
  opts.feature_store = &store;
  // Default max_degraded_frac (1.0): training on zeros is allowed.
  auto model = MakeModel(5);
  train::Trainer trainer(&model, &sampler_, opts);
  auto result = trainer.Train(*ds_);
  EXPECT_TRUE(result.error.ok()) << result.error.ToString();
  EXPECT_GT(result.total_batches, 0);
  EXPECT_EQ(result.degraded_batches, result.total_batches);
}

TEST_F(FaultToleranceTest, TrainerFailsWhenDegradedFractionExceedsBudget) {
  auto plan = FaultPlan::Parse("seed=3,kv_error_rate=1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  FaultyKvStore faulty(raw_kv_, &injector);
  kv::FeatureStore store(&faulty);

  train::TrainOptions opts;
  opts.max_epochs = 3;
  opts.patience = 3;
  opts.batch_size = 128;
  opts.seed = 5;
  opts.feature_store = &store;
  opts.max_degraded_frac = 0.25;  // every batch degrades -> over budget
  auto model = MakeModel(5);
  train::Trainer trainer(&model, &sampler_, opts);
  auto result = trainer.Train(*ds_);
  EXPECT_TRUE(result.error.IsFailedPrecondition()) << result.error.ToString();
  EXPECT_EQ(result.degraded_batches, result.total_batches);
}

// ---- Acceptance: trainer under transient KV chaos -------------------------

TEST_F(FaultToleranceTest, TrainerMatchesFaultFreeRunUnderTransientKvFaults) {
  train::TrainOptions opts;
  opts.max_epochs = 4;
  opts.patience = 4;
  opts.batch_size = 128;
  opts.seed = 5;
  opts.class_weights = {1.0f, 4.0f};

  // Fault-free KV-backed baseline.
  kv::FeatureStore clean(raw_kv_);
  opts.feature_store = &clean;
  auto base_model = MakeModel(5);
  train::Trainer base(&base_model, &sampler_, opts);
  auto base_result = base.Train(*ds_);
  ASSERT_TRUE(base_result.error.ok()) << base_result.error.ToString();

  // Same run under injected transient IoErrors + latency, with retries.
  auto plan = FaultPlan::Parse(
      "seed=23,kv_error_rate=0.05,kv_latency_rate=0.02,kv_latency_s=1e-5");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  FaultyKvStore faulty(raw_kv_, &injector);
  kv::FeatureStore chaotic(&faulty);
  chaotic.set_retry_policy(FastRetries(6));
  opts.feature_store = &chaotic;
  auto chaos_model = MakeModel(5);
  train::Trainer chaos(&chaos_model, &sampler_, opts);
  auto chaos_result = chaos.Train(*ds_);

  EXPECT_TRUE(chaos_result.error.ok()) << chaos_result.error.ToString();
  EXPECT_GT(injector.injected_io_errors(), 0);
  EXPECT_GT(injector.injected_latencies(), 0);
  // Retries absorbed every fault, so no batch trained on imputed zeros and
  // the learning trajectory matches the fault-free run.
  EXPECT_EQ(chaos_result.degraded_batches, 0);
  EXPECT_NEAR(chaos_result.best_val_auc, base_result.best_val_auc, 0.05);
}

// ---- Acceptance: DDP worker kill mid-epoch --------------------------------

struct DdpRun {
  dist::DistributedResult result;
  std::vector<std::vector<float>> params;  // replica 0, flattened per tensor
  bool replicas_in_sync = true;
};

class DdpFaultTest : public FaultToleranceTest {
 protected:
  static dist::DistributedOptions BaseOptions() {
    dist::DistributedOptions options;
    options.num_workers = 4;
    options.num_clusters = 32;
    options.train.max_epochs = 5;
    options.train.patience = 5;
    options.train.batch_size = 32;
    options.train.lr = 2e-3f;
    options.train.class_weights = {1.0f, 4.0f};
    options.kv_backed_loaders = true;
    options.kv_retry = FastRetries(5);
    return options;
  }

  static DdpRun Run(const dist::DistributedOptions& options) {
    std::vector<std::unique_ptr<core::XFraudDetector>> replicas;
    std::vector<core::GnnModel*> ptrs;
    for (int w = 0; w < options.num_workers; ++w) {
      replicas.push_back(
          std::make_unique<core::XFraudDetector>(MakeModel(77)));
      ptrs.push_back(replicas.back().get());
    }
    sample::SageSampler sampler(2, 8);
    dist::DistributedTrainer trainer(ptrs, &sampler, options);
    DdpRun run;
    run.result = trainer.Train(*ds_);
    auto p0 = replicas[0]->Parameters();
    for (const auto& p : p0) run.params.push_back(p.var.value().vec());
    for (int w = 1; w < options.num_workers; ++w) {
      auto pw = replicas[w]->Parameters();
      for (size_t i = 0; i < p0.size(); ++i) {
        if (p0[i].var.value().vec() != pw[i].var.value().vec()) {
          run.replicas_in_sync = false;
        }
      }
    }
    return run;
  }
};

TEST_F(DdpFaultTest, ElasticRecoveryAbsorbsWorkerKillAndKvFaults) {
  DdpRun baseline = Run(BaseOptions());
  ASSERT_TRUE(baseline.replicas_in_sync);

  auto plan = FaultPlan::Parse("seed=31,kv_error_rate=0.02,kill_worker=1@1:1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  dist::DistributedOptions options = BaseOptions();
  options.fault_injector = &injector;
  options.recovery = dist::FailureRecovery::kElastic;
  DdpRun chaos = Run(options);

  // The kill happened where planned, survivors absorbed the dead worker's
  // batches, and the injected KV faults were retried away.
  ASSERT_GE(chaos.result.history.size(), 2u);
  EXPECT_EQ(chaos.result.history[1].killed_worker, 1);
  EXPECT_GT(chaos.result.history[1].redistributed_batches, 0);
  EXPECT_FALSE(chaos.result.history[1].restarted);
  EXPECT_GT(chaos.result.history[1].recovery_seconds, 0.0);
  for (size_t e = 0; e < chaos.result.history.size(); ++e) {
    if (e != 1) {
      EXPECT_EQ(chaos.result.history[e].killed_worker, -1) << "epoch " << e;
      EXPECT_EQ(chaos.result.history[e].redistributed_batches, 0);
    }
  }
  EXPECT_GT(injector.injected_io_errors(), 0);

  // Training completed: replicas re-synchronized after the rejoin and the
  // final quality is within noise of the fault-free run.
  EXPECT_TRUE(chaos.replicas_in_sync);
  EXPECT_NEAR(chaos.result.best_val_auc, baseline.result.best_val_auc, 0.15);
}

TEST_F(DdpFaultTest, RestartEpochRecoveryReplaysTheEpochExactly) {
  DdpRun baseline = Run(BaseOptions());

  // Kill only (no KV noise): the rolled-back epoch re-runs from the
  // snapshot, so the whole run must be bit-identical to the fault-free one.
  auto plan = FaultPlan::Parse("seed=31,kill_worker=1@1:1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  dist::DistributedOptions options = BaseOptions();
  options.fault_injector = &injector;
  options.recovery = dist::FailureRecovery::kRestartEpoch;
  DdpRun restarted = Run(options);

  ASSERT_GE(restarted.result.history.size(), 2u);
  EXPECT_EQ(restarted.result.history[1].killed_worker, 1);
  EXPECT_TRUE(restarted.result.history[1].restarted);
  EXPECT_EQ(restarted.result.history[1].redistributed_batches, 0);
  EXPECT_GT(restarted.result.history[1].recovery_seconds, 0.0);
  EXPECT_TRUE(restarted.replicas_in_sync);

  ASSERT_EQ(restarted.result.history.size(), baseline.result.history.size());
  for (size_t e = 0; e < baseline.result.history.size(); ++e) {
    EXPECT_EQ(restarted.result.history[e].val_auc,
              baseline.result.history[e].val_auc)
        << "epoch " << e;
  }
  ASSERT_EQ(restarted.params.size(), baseline.params.size());
  for (size_t i = 0; i < baseline.params.size(); ++i) {
    ASSERT_EQ(restarted.params[i], baseline.params[i]) << "tensor " << i;
  }
}

// ---- Chaos mode (ci.sh --mode=faults) -------------------------------------

TEST_F(FaultToleranceTest, SuiteSurvivesEnvSelectedChaosPlan) {
  // Under `tools/ci.sh --mode=faults` XFRAUD_FAULT_PLAN carries a chaos
  // profile and this test runs the KV-backed trainer under it; under plain
  // CI the plan is empty and this is an ordinary fault-free run. Either way
  // it must complete within the degraded-batch budget.
  auto plan = FaultPlan::FromEnv();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  FaultInjector injector(plan.value());
  FaultyKvStore faulty(raw_kv_, &injector);
  kv::FeatureStore store(plan.value().has_kv_faults()
                             ? static_cast<kv::KvStore*>(&faulty)
                             : static_cast<kv::KvStore*>(raw_kv_));
  store.set_retry_policy(FastRetries(6));

  train::TrainOptions opts;
  opts.max_epochs = 2;
  opts.patience = 2;
  opts.batch_size = 128;
  opts.seed = 7;
  opts.feature_store = &store;
  opts.max_degraded_frac = 0.5;
  auto model = MakeModel(7);
  train::Trainer trainer(&model, &sampler_, opts);
  auto result = trainer.Train(*ds_);
  EXPECT_TRUE(result.error.ok()) << result.error.ToString();
  EXPECT_EQ(result.history.size(), 2u);
}

}  // namespace
}  // namespace xfraud::fault
