// Incremental retraining (paper Appendix H.5): production keeps the model
// fresh by fine-tuning on each period's newly labeled transactions. This
// example shows why — fraud rings burst in specific periods, so a stale
// model misses the patterns that appear after its training cut-off.

#include <iostream>

#include "xfraud/xfraud.h"

using namespace xfraud;

int main() {
  SetMinLogLevel(LogLevel::kWarning);

  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.num_buyers = 1200;
  config.num_periods = 4;
  config.num_fraud_rings = 14;
  config.num_stolen_cards = 24;
  data::TransactionGenerator generator(config);
  auto records = generator.GenerateRecords();

  // How the fraud mass moves across periods (ring bursts).
  std::vector<int> frauds(config.num_periods, 0), total(config.num_periods, 0);
  for (const auto& r : records) {
    ++total[r.period];
    frauds[r.period] += r.label == graph::kLabelFraud;
  }
  std::cout << "fraud rate per period:";
  for (int p = 0; p < config.num_periods; ++p) {
    std::cout << "  P" << p << "="
              << TablePrinter::Num(100.0 * frauds[p] / total[p], 1) << "%";
  }
  std::cout << "\n\n";

  train::IncrementalOptions options;
  options.detector.feature_dim = config.feature_dim;
  options.train.max_epochs = 8;
  options.train.class_weights = {1.0f, 4.0f};
  options.train.lr = 2e-3f;
  options.finetune_epochs = 3;
  train::IncrementalEvaluation evaluation(options);
  auto reports = evaluation.Run(records);

  TablePrinter table({"score period", "stale model", "fine-tuned model",
                      "full retrain"});
  for (const auto& r : reports) {
    table.AddRow({"P" + std::to_string(r.period),
                  TablePrinter::Num(r.stale_auc, 4),
                  TablePrinter::Num(r.incremental_auc, 4),
                  TablePrinter::Num(r.cumulative_auc, 4)});
  }
  table.Print(std::cout);
  std::cout << "\nthe stale model decays as new rings appear; periodic "
               "fine-tuning recovers most of the full-retrain quality at a "
               "fraction of the cost (paper Appendix H.5).\n";
  return 0;
}
