// Fraud-ring investigation: the paper's Figure 11 workflow end to end.
//
// A business-unit analyst receives a flagged transaction. This example
//  1. trains the detector on a workload containing fraud rings,
//  2. picks a flagged (high-risk) transaction from the test split,
//  3. runs the GNNExplainer and the centrality measures on its community,
//  4. combines them with the hybrid explainer, and
//  5. renders the community with edge-importance bars — the thick edges are
//     the risk-propagation paths the analyst should audit first.

#include <algorithm>
#include <iostream>

#include "xfraud/xfraud.h"

using namespace xfraud;

int main() {
  SetMinLogLevel(LogLevel::kWarning);

  // Workload with pronounced ring structure.
  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.num_buyers = 1500;
  config.num_fraud_rings = 20;
  data::SimDataset dataset = data::TransactionGenerator::Make(config, "ring");
  const graph::HeteroGraph& g = dataset.graph;

  Rng rng(11);
  core::DetectorConfig dc;
  dc.feature_dim = g.feature_dim();
  dc.num_layers = 3;  // cover the 3-hop communities we explain below
  core::XFraudDetector detector(dc, &rng);
  sample::SageSampler sampler(2, 12);
  train::TrainOptions opts;
  opts.max_epochs = 14;
  opts.class_weights = {1.0f, 4.0f};
  opts.lr = 2e-3f;
  train::Trainer trainer(&detector, &sampler, opts);
  trainer.Train(dataset);
  std::cout << "detector test AUC: "
            << TablePrinter::Num(
                   trainer.Evaluate(g, dataset.test_nodes).auc, 4)
            << "\n\n";

  // Find a confidently flagged fraud with a meaty community.
  int32_t suspect = -1;
  graph::Subgraph community;
  Rng pick_rng(3);
  for (int32_t v : dataset.test_nodes) {
    if (g.label(v) != graph::kLabelFraud) continue;
    graph::Subgraph sub = graph::KHopSubgraph(g, v, 3, 10, &pick_rng);
    if (sub.num_nodes() < 15 || sub.num_nodes() > 60) continue;
    sample::MiniBatch batch = sample::MakeBatch(g, sub, {v});
    double risk = train::FraudProbabilities(
        detector.Forward(batch, core::ForwardOptions{}))[0];
    if (risk > 0.9) {
      suspect = v;
      community = std::move(sub);
      break;
    }
  }
  if (suspect < 0) {
    std::cout << "no confidently flagged transaction found; rerun with "
                 "another seed\n";
    return 1;
  }
  std::cout << "investigating flagged transaction node " << suspect << "\n";

  // Task-aware weights: GNNExplainer on the community.
  sample::MiniBatch batch = sample::MakeBatch(g, community, {suspect});
  explain::GnnExplainer explainer(&detector, explain::GnnExplainerOptions{});
  explain::Explanation explanation = explainer.Explain(batch);

  // Task-agnostic weights: edge betweenness (Table 1's best top-5 measure).
  Rng c_rng(5);
  auto undirected = graph::UndirectedEdges(community);
  auto centrality = explain::EdgeWeightsByCentrality(
      undirected, community.num_nodes(),
      explain::CentralityMeasure::kEdgeBetweenness, &c_rng);

  // Hybrid: A*w(c) + B*w(e) with the paper's grid-searched default of an
  // even blend when no training communities are provided.
  explain::CommunityWeights weights;
  weights.centrality = centrality;
  weights.explainer = explanation.undirected_edge_weights;
  weights.human.assign(undirected.size(), 0.0);  // unused by Combine
  explain::CommunityWeights normalized = weights;
  std::vector<explain::CommunityWeights> train_set = {weights};
  explain::HybridExplainer hybrid =
      explain::HybridExplainer::FitGrid(train_set, 10, &c_rng);
  auto hybrid_weights = hybrid.Combine(weights);

  std::cout << "hybrid coefficients: A(centrality)="
            << TablePrinter::Num(hybrid.a(), 2)
            << " B(explainer)=" << TablePrinter::Num(hybrid.b(), 2) << "\n\n";
  std::cout << explain::RenderCommunity(g, community, hybrid_weights, 18);

  std::cout << "\nnode-feature importance (top 5 dimensions for the "
               "suspect):\n";
  const nn::Tensor& mask = explanation.node_feature_mask;
  std::vector<std::pair<float, int64_t>> dims;
  for (int64_t cdim = 0; cdim < mask.cols(); ++cdim) {
    dims.push_back({mask.At(community.seed_local, cdim), cdim});
  }
  std::sort(dims.rbegin(), dims.rend());
  for (int i = 0; i < 5; ++i) {
    std::cout << "  feature[" << dims[i].second << "] weight "
              << TablePrinter::Num(dims[i].first, 3) << "\n";
  }
  return 0;
}
