// Distributed training walk-through (paper §3.3 / Figure 5):
//   PIC graph partitioning -> balanced worker groups -> DDP-style training
//   with gradient averaging -> the quality/efficiency trade-off of §4.1.
//
// Each worker holds a model replica and an induced partition graph; every
// step the replicas' gradients are averaged (the all-reduce), so all
// replicas stay bit-identical — verified at the end.

#include <iostream>
#include <memory>

#include "xfraud/xfraud.h"

using namespace xfraud;

int main() {
  SetMinLogLevel(LogLevel::kWarning);

  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  data::SimDataset dataset = data::TransactionGenerator::Make(config, "dist");
  std::cout << "graph: " << dataset.graph.num_nodes() << " nodes\n\n";

  TablePrinter table({"workers", "best val AUC", "sim s/epoch", "edge cut"});
  for (int kappa : {2, 4, 8}) {
    // Identically seeded replicas (DDP requires equal initial weights).
    std::vector<std::unique_ptr<core::XFraudDetector>> replicas;
    std::vector<core::GnnModel*> ptrs;
    for (int w = 0; w < kappa; ++w) {
      Rng rng(2024);
      core::DetectorConfig dc;
      dc.feature_dim = dataset.graph.feature_dim();
      replicas.push_back(std::make_unique<core::XFraudDetector>(dc, &rng));
      ptrs.push_back(replicas.back().get());
    }

    sample::SageSampler sampler(2, 12);
    dist::DistributedOptions options;
    options.num_workers = kappa;
    options.num_clusters = 64;
    options.train.max_epochs = 8;
    options.train.class_weights = {1.0f, 4.0f};
    options.train.lr = 2e-3f;
    dist::DistributedTrainer trainer(ptrs, &sampler, options);
    dist::DistributedResult result = trainer.Train(dataset);

    table.AddRow({std::to_string(kappa),
                  TablePrinter::Num(result.best_val_auc, 4),
                  TablePrinter::Num(result.mean_simulated_epoch_seconds, 3),
                  TablePrinter::Num(result.edge_cut_fraction * 100, 1) + "%"});

    // DDP invariant: replicas are identical after training.
    auto p0 = replicas[0]->Parameters();
    for (int w = 1; w < kappa; ++w) {
      auto pw = replicas[w]->Parameters();
      for (size_t i = 0; i < p0.size(); ++i) {
        for (int64_t j = 0; j < p0[i].var.value().size(); ++j) {
          if (p0[i].var.value().vec()[j] != pw[i].var.value().vec()[j]) {
            std::cout << "replica divergence detected!\n";
            return 1;
          }
        }
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nall replicas stayed bit-identical (DDP semantics hold).\n"
            << "shape: simulated epoch time falls with workers; AUC dips as "
               "partitions restrain each worker's neighbourhoods (§4.1).\n";
  return 0;
}
