// Quickstart: the 5-minute tour of the xFraud reproduction.
//
//  1. Build a heterogeneous transaction graph from raw transaction records.
//  2. Train the xFraud detector+ (self-attentive heterogeneous GNN with a
//     GraphSAGE-style sampler).
//  3. Score unseen transactions and inspect the metrics.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart

#include <iostream>

#include "xfraud/xfraud.h"

using namespace xfraud;

int main() {
  SetMinLogLevel(LogLevel::kWarning);

  // --- 1. Data: a synthetic e-commerce workload with planted fraud rings,
  // stolen cards and shared warehouse addresses (stands in for the
  // proprietary eBay logs; see DESIGN.md).
  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.num_buyers = 1200;  // keep the quickstart snappy
  data::SimDataset dataset = data::TransactionGenerator::Make(config, "demo");
  const graph::HeteroGraph& g = dataset.graph;
  std::cout << "graph: " << g.num_nodes() << " nodes, " << g.num_edges() / 2
            << " undirected edges, "
            << TablePrinter::Num(g.FraudRate() * 100, 1) << "% fraud\n";

  // --- 2. Model: the detector wants to know the feature dimensionality;
  // everything else has paper-inspired defaults.
  Rng rng(42);
  core::DetectorConfig dc;
  dc.feature_dim = g.feature_dim();
  core::XFraudDetector detector(dc, &rng);
  std::cout << "detector: " << detector.ParameterCount()
            << " trainable parameters\n";

  // --- 3. Training: detector+ = detector + GraphSAGE-style sampler.
  sample::SageSampler sampler(/*hops=*/2, /*fanout=*/12);
  train::TrainOptions opts;
  opts.max_epochs = 12;
  opts.class_weights = {1.0f, 4.0f};  // upweight the rare fraud class
  opts.lr = 2e-3f;
  opts.verbose = false;
  train::Trainer trainer(&detector, &sampler, opts);
  auto result = trainer.Train(dataset);
  std::cout << "trained " << result.history.size() << " epochs ("
            << TablePrinter::Num(result.mean_epoch_seconds, 2)
            << " s/epoch), best val AUC "
            << TablePrinter::Num(result.best_val_auc, 4) << "\n";

  // --- 4. Evaluation on held-out transactions.
  auto test = trainer.Evaluate(g, dataset.test_nodes);
  std::cout << "test: AUC " << TablePrinter::Num(test.auc, 4) << ", AP "
            << TablePrinter::Num(test.ap, 4) << ", accuracy "
            << TablePrinter::Num(test.accuracy, 4) << "\n";

  // --- 5. Score one incoming transaction.
  int32_t txn = dataset.test_nodes.front();
  Rng score_rng(7);
  sample::MiniBatch batch = sampler.SampleBatch(g, {txn}, &score_rng);
  nn::Var logits = detector.Forward(batch, core::ForwardOptions{});
  double risk = train::FraudProbabilities(logits)[0];
  std::cout << "transaction node " << txn << ": risk score "
            << TablePrinter::Num(risk, 4) << " (label: "
            << (g.label(txn) == graph::kLabelFraud ? "fraud" : "benign")
            << ")\n";
  return 0;
}
