// KV feature store walk-through (paper §3.3.3 / Appendix C):
//   persist a heterogeneous transaction graph into the log-structured KV
//   store, reopen it, and stream training mini-batches through the loader —
//   the pipeline every distributed worker runs against its partition.

#include <cstdio>
#include <iostream>

#include "xfraud/xfraud.h"

using namespace xfraud;

int main() {
  SetMinLogLevel(LogLevel::kWarning);

  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.num_buyers = 800;
  data::SimDataset dataset = data::TransactionGenerator::Make(config, "kv");

  const std::string path = "/tmp/xfraud_example.kv";
  std::remove(path.c_str());

  // --- Ingest the graph.
  {
    auto opened = kv::LogKvStore::Open(path);
    if (!opened.ok()) {
      std::cerr << "open failed: " << opened.status().ToString() << "\n";
      return 1;
    }
    auto store = std::move(opened).value();
    kv::FeatureStore features(store.get());
    WallTimer timer;
    Status s = features.Ingest(dataset.graph);
    if (!s.ok()) {
      std::cerr << "ingest failed: " << s.ToString() << "\n";
      return 1;
    }
    std::cout << "ingested " << dataset.graph.num_nodes() << " nodes ("
              << store->FileSize() / 1024 << " KiB, "
              << TablePrinter::Num(timer.ElapsedSeconds(), 2) << "s)\n";
  }  // store closes; data is on disk

  // --- Reopen and serve batches (what a worker's data loader does).
  auto reopened = kv::LogKvStore::Open(path);
  if (!reopened.ok()) {
    std::cerr << "reopen failed: " << reopened.status().ToString() << "\n";
    return 1;
  }
  auto store = std::move(reopened).value();
  kv::FeatureStore features(store.get());
  std::cout << "reopened store with "
            << features.NumNodes().value() << " nodes, feature dim "
            << features.FeatureDim().value() << "\n";

  Rng rng(5);
  std::vector<int32_t> seeds(dataset.train_nodes.begin(),
                             dataset.train_nodes.begin() + 64);
  WallTimer timer;
  auto batch = features.LoadBatch(seeds, /*hops=*/2, /*fanout=*/12, &rng,
                                  kv::kHeadEpoch);
  if (!batch.ok()) {
    std::cerr << "load failed: " << batch.status().ToString() << "\n";
    return 1;
  }
  std::cout << "loaded a mini-batch of " << batch.value().num_nodes()
            << " nodes / " << batch.value().num_edges() << " edges for "
            << seeds.size() << " seed transactions in "
            << TablePrinter::Num(timer.ElapsedMillis(), 1) << " ms\n";

  // --- Train one step straight from the KV-served batch.
  Rng model_rng(9);
  core::DetectorConfig dc;
  dc.feature_dim = dataset.graph.feature_dim();
  core::XFraudDetector detector(dc, &model_rng);
  sample::SageSampler sampler(2, 12);
  train::Trainer trainer(&detector, &sampler, train::TrainOptions{});
  double loss = trainer.TrainStep(batch.value());
  std::cout << "one training step on the KV-served batch: loss "
            << TablePrinter::Num(loss, 4) << "\n";

  // --- Housekeeping: compaction drops overwritten/deleted records.
  auto reclaimed = store->Compact();
  std::cout << "compaction reclaimed " << reclaimed.value() << " bytes\n";
  std::remove(path.c_str());
  return 0;
}
