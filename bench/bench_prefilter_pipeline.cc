// Regenerates the Appendix B label pipeline and the Appendix H.4 production
// analysis: a raw transaction stream with a realistically tiny fraud rate is
// pre-filtered by mined rules (the BU's skope-rules stand-in, footnote 6),
// then all frauds plus a benign sample become the training labels. The
// bench prints the fraud rate at each stage (paper: 0.016% -> 0.043% ->
// 4.33%) and back-projects a high-precision operating point to the raw
// stream (paper: 0.98 sampled precision -> 0.32 stream precision).

#include "bench_common.h"

#include "xfraud/data/prefilter.h"

namespace xfraud::bench {
namespace {

void Run() {
  PrintHeader("Label pipeline & production back-projection",
              "Appendix B (three-step labeling), Appendix H.4");

  // A raw stream with a very low fraud rate: reuse the generator but blow
  // up the benign population relative to fraud.
  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.num_buyers = FastMode() ? 6000 : 20000;
  config.num_fraud_rings = FastMode() ? 5 : 10;
  config.num_stolen_cards = FastMode() ? 12 : 25;
  config.feature_signal = 1.2;  // pre-filter rules need a feature signal
  data::TransactionGenerator generator(config);
  auto stream = generator.GenerateRecords();

  // Mine the rules on an earlier labeled sample (here: the stream itself;
  // in production the rules predate the model).
  data::RuleFilter::Options rule_options;
  rule_options.min_lift = 3.0;
  data::RuleFilter filter = data::RuleFilter::Fit(stream, rule_options);
  std::cout << "mined " << filter.rules().size() << " pre-filter rules:\n";
  for (const auto& rule : filter.rules()) {
    std::cout << "  " << rule.ToString() << "\n";
  }

  Rng rng(5);
  data::PipelineResult pipeline =
      data::RunLabelPipeline(stream, filter, /*benign_keep_fraction=*/0.10,
                             &rng);
  TablePrinter stages({"Stage", "#Txns", "#Frauds", "Fraud rate"});
  for (const auto& stage : pipeline.stages) {
    stages.AddRow({stage.name, std::to_string(stage.transactions),
                   std::to_string(stage.frauds),
                   TablePrinter::Num(stage.fraud_rate * 100.0, 3) + "%"});
  }
  std::cout << "\n";
  stages.Print(std::cout);
  std::cout << "(paper: 0.016% -> 0.043% -> 4.33%; the shape to match is a "
               "rule filter that concentrates fraud ~3x while keeping "
               "recall, then sampling that lifts the rate to a few "
               "percent)\n";
  double kept_fraud =
      pipeline.stages.back().frauds /
      std::max(1.0, static_cast<double>(pipeline.stages.front().frauds));
  std::cout << "fraud recall through the pipeline: "
            << TablePrinter::Num(kept_fraud * 100.0, 1) << "%\n";

  // ---- Appendix H.4: train on the sampled set, back-project precision ----
  // Train on the stage-3 labels; the unlabeled stage-2 transactions stay in
  // the graph as linkage context (Appendix B).
  data::SimDataset ds = data::TransactionGenerator::BuildDataset(
      pipeline.graph_records, "pipeline", 0.7, 0.1, 99);
  Rng model_rng(kSeedA);
  core::XFraudDetector detector(DetectorConfigFor(ds.graph), &model_rng);
  sample::SageSampler sampler(2, 12);
  train::Trainer trainer(&detector, &sampler,
                         BenchTrainOptions(kSeedA, FastMode() ? 5 : 14));
  trainer.Train(ds);
  auto eval = trainer.Evaluate(ds.graph, ds.test_nodes);
  std::cout << "\ndetector trained on the sampled labels: test AUC "
            << TablePrinter::Num(eval.auc, 4) << "\n";

  TablePrinter proj({"target recall", "threshold", "sampled precision",
                     "projected stream precision", "BU workload"});
  for (double target : {0.1, 0.2, 0.3}) {
    double threshold = 0.5;
    for (double t = 0.999; t > 0.5; t -= 0.001) {
      auto m = train::MetricsAtThreshold(eval.scores, eval.labels, t);
      if (m.recall >= target) {
        threshold = t;
        break;
      }
    }
    auto m = train::MetricsAtThreshold(eval.scores, eval.labels, threshold);
    double stream_precision = train::BackProjectPrecision(
        m.precision, pipeline.benign_keep_fraction);
    std::string workload =
        stream_precision > 0
            ? "1 real fraud per " +
                  TablePrinter::Num(1.0 / stream_precision, 1) +
                  " investigations"
            : "-";
    proj.AddRow({TablePrinter::Num(target, 1),
                 TablePrinter::Num(threshold, 3),
                 TablePrinter::Num(m.precision, 3),
                 TablePrinter::Num(stream_precision, 3), workload});
  }
  proj.Print(std::cout);
  std::cout << "(paper: 0.98 sampled precision at 0.1 recall -> 0.32 on the "
               "stream = 1 real fraud per ~3 investigations)\n";
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::Run();
  return 0;
}
