// Regenerates Appendix E/G quantitative results:
//   Table 8    — GNNExplainer vs random hit rate (avg aggregation);
//   Tables 9-11 — the same split by community label (c0/c1) and under the
//                 three node->edge aggregation strategies (avg/min/sum);
//   IAA        — human vs random inter-annotator agreement (Cohen's kappa);
//   Table 13   — TP/TN/FP/FN confusion split by simple (single-buyer) vs
//                complex (multi-buyer) communities.

#include "bench_common.h"

namespace xfraud::bench {
namespace {

using data::EdgeAggregation;

const char* AggName(EdgeAggregation agg) {
  switch (agg) {
    case EdgeAggregation::kAvg:
      return "avg";
    case EdgeAggregation::kMin:
      return "min";
    case EdgeAggregation::kSum:
      return "sum";
  }
  return "?";
}

void Run() {
  PrintHeader("Annotation agreement & aggregation ablation",
              "Tables 8-11 (GNNExplainer vs random, avg/min/sum, c0/c1), "
              "Appendix E IAA, Table 13 (confusion by community type)");

  explain::StudyOptions options;
  if (FastMode()) {
    options.detector_epochs = 6;
    options.all_measures = false;
  }
  explain::CommunityStudy study(options);

  // ---- Appendix E: inter-annotator agreement ------------------------------
  data::AnnotationSimulator random_annotator(
      data::AnnotationSimulator::Options{.seed = 0xA11CE});
  double human_kappa = 0.0;
  double random_kappa = 0.0;
  for (const auto& c : study.communities()) {
    human_kappa += data::MeanPairwiseKappa(c.annotations);
    // 10 random repetitions, as in Appendix E.
    double r = 0.0;
    for (int rep = 0; rep < 10; ++rep) {
      r += data::MeanPairwiseKappa(
          random_annotator.AnnotateRandom(c.sub.num_nodes()));
    }
    random_kappa += r / 10.0;
  }
  human_kappa /= study.communities().size();
  random_kappa /= study.communities().size();
  std::cout << "IAA (mean pairwise Cohen's kappa): human "
            << TablePrinter::Num(human_kappa, 3) << " (paper 0.532), random "
            << TablePrinter::Num(random_kappa, 3) << " (paper -0.006)\n";

  // ---- Tables 8-11 ---------------------------------------------------------
  Rng rng(31);
  const std::vector<int> ks = {5, 10, 15, 20, 25};
  for (EdgeAggregation agg :
       {EdgeAggregation::kAvg, EdgeAggregation::kMin, EdgeAggregation::kSum}) {
    TablePrinter table({"Topk hit rate", "Top5", "Top10", "Top15", "Top20",
                        "Top25"});
    // Rows: random, GNNExplainer, delta — overall and per label class.
    auto add_rows = [&](const std::string& suffix, int label_filter) {
      std::vector<double> rnd(ks.size(), 0.0), gnn(ks.size(), 0.0);
      int count = 0;
      for (const auto& c : study.communities()) {
        if (label_filter >= 0 && c.seed_label != label_filter) continue;
        ++count;
        auto human = data::EdgeImportanceFromNodes(c.node_importance,
                                                   c.undirected, agg);
        for (size_t i = 0; i < ks.size(); ++i) {
          gnn[i] +=
              explain::TopkHitRate(human, c.explainer_edges, ks[i], &rng);
          rnd[i] += explain::RandomHitRate(human, ks[i], &rng, 5);
        }
      }
      std::vector<std::string> r_row = {"Random" + suffix};
      std::vector<std::string> g_row = {"GNNExplainer" + suffix};
      std::vector<std::string> d_row = {"Delta(GNNExpl-Random)" + suffix};
      for (size_t i = 0; i < ks.size(); ++i) {
        rnd[i] /= count;
        gnn[i] /= count;
        r_row.push_back(TablePrinter::Num(rnd[i], 2));
        g_row.push_back(TablePrinter::Num(gnn[i], 2));
        d_row.push_back(TablePrinter::Num(gnn[i] - rnd[i], 2));
      }
      table.AddRow(r_row);
      table.AddRow(g_row);
      table.AddRow(d_row);
    };
    add_rows("", -1);
    add_rows("_c0", 0);
    add_rows("_c1", 1);
    std::cout << "\nTable "
              << (agg == EdgeAggregation::kAvg
                      ? "8/9"
                      : (agg == EdgeAggregation::kMin ? "10" : "11"))
              << " analogue (aggregation: " << AggName(agg) << "):\n";
    table.Print(std::cout);
  }
  std::cout << "(paper shape: GNNExplainer well above random at every k and "
               "in both community classes; no substantial difference across "
               "aggregations)\n";

  // ---- Table 13: confusion by community complexity ------------------------
  // Simple community: exactly one buyer node; complex: more than one.
  int counts[2][4] = {{0, 0, 0, 0}, {0, 0, 0, 0}};  // [simple][TP,TN,FP,FN]
  for (const auto& c : study.communities()) {
    int buyers = 0;
    for (int32_t global : c.sub.nodes) {
      buyers +=
          study.dataset().graph.node_type(global) == graph::NodeType::kBuyer;
    }
    int simple = buyers <= 1 ? 0 : 1;
    bool predicted_fraud = c.seed_score >= 0.5;
    bool is_fraud = c.seed_label == 1;
    int outcome = predicted_fraud
                      ? (is_fraud ? 0 : 2)   // TP : FP
                      : (is_fraud ? 3 : 1);  // FN : TN
    ++counts[simple][outcome];
  }
  TablePrinter t13({"Community type", "TP", "TN", "FP", "FN"});
  t13.AddRow({"simple (1 buyer)", std::to_string(counts[0][0]),
              std::to_string(counts[0][1]), std::to_string(counts[0][2]),
              std::to_string(counts[0][3])});
  t13.AddRow({"complex (>1 buyer)", std::to_string(counts[1][0]),
              std::to_string(counts[1][1]), std::to_string(counts[1][2]),
              std::to_string(counts[1][3])});
  std::cout << "\nTable 13 analogue (detector outcomes by community "
               "complexity):\n";
  t13.Print(std::cout);
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::Run();
  return 0;
}
