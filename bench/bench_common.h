#ifndef XFRAUD_BENCH_BENCH_COMMON_H_
#define XFRAUD_BENCH_BENCH_COMMON_H_

// Shared helpers for the reproduction benchmarks. Every bench binary prints
// the paper table/figure it regenerates, using the scaled-down simulated
// datasets (see DESIGN.md §1 for the substitution rationale and
// EXPERIMENTS.md for paper-vs-measured numbers).

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "xfraud/xfraud.h"

namespace xfraud::bench {

/// Paper seeds "A" and "B" (Table 7): two model-init/training seeds.
inline constexpr uint64_t kSeedA = 1001;
inline constexpr uint64_t kSeedB = 2002;

/// True when XFRAUD_BENCH_FAST=1: shrink epochs/datasets for smoke runs.
inline bool FastMode() {
  const char* env = std::getenv("XFRAUD_BENCH_FAST");
  return env != nullptr && std::string(env) == "1";
}

/// XFRAUD_SAMPLE_WORKERS overrides the benches' BatchLoader worker count
/// (default 0 = serial, keeping the timed sections free of thread
/// contention on the single-core reproduction host; results are
/// bit-identical at any setting).
inline int SampleWorkersFromEnv(int fallback = 0) {
  const char* env = std::getenv("XFRAUD_SAMPLE_WORKERS");
  return env != nullptr ? std::atoi(env) : fallback;
}

inline core::DetectorConfig DetectorConfigFor(const graph::HeteroGraph& g) {
  core::DetectorConfig c;
  c.feature_dim = g.feature_dim();
  c.hidden_dim = 32;
  c.num_heads = 4;
  c.num_layers = 2;
  c.dropout = 0.2f;
  return c;
}

inline std::unique_ptr<core::GnnModel> MakeModel(const std::string& name,
                                                 const graph::HeteroGraph& g,
                                                 uint64_t seed) {
  Rng rng(seed);
  if (name == "GAT") {
    baselines::GatConfig c;
    c.feature_dim = g.feature_dim();
    c.hidden_dim = 32;
    c.num_heads = 4;
    c.num_layers = 2;
    return std::make_unique<baselines::GatModel>(c, &rng);
  }
  if (name == "GEM") {
    baselines::GemConfig c;
    c.feature_dim = g.feature_dim();
    c.hidden_dim = 32;
    c.num_layers = 2;
    return std::make_unique<baselines::GemModel>(c, &rng);
  }
  return std::make_unique<core::XFraudDetector>(DetectorConfigFor(g), &rng);
}

/// Training protocol shared by the end-to-end benches: AdamW, clip 0.25,
/// fraud-upweighted CE (the paper trains on the imbalanced sampled sets).
inline train::TrainOptions BenchTrainOptions(uint64_t seed, int epochs) {
  train::TrainOptions opts;
  opts.max_epochs = epochs;
  opts.patience = epochs;  // fixed-epoch protocol like the paper's 128
  opts.batch_size = 256;
  opts.lr = 2e-3f;
  opts.clip = 0.25f;
  opts.class_weights = {1.0f, 4.0f};
  opts.seed = seed;
  opts.num_sample_workers = SampleWorkersFromEnv();
  return opts;
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::cout << "\n==== " << title << " ====\n"
            << "reproduces: " << paper << "\n\n";
}

/// Applies the XFRAUD_OBS env knob (0 disables all metric recording — the
/// baseline of the instrumentation-overhead comparison) and XFRAUD_TRACE=1
/// (prints ScopedSpan lines to stderr). Call at the top of a bench main.
inline void InitObsFromEnv() {
  const char* env = std::getenv("XFRAUD_OBS");
  if (env != nullptr && std::string(env) == "0") obs::SetEnabled(false);
  const char* trace = std::getenv("XFRAUD_TRACE");
  if (trace != nullptr && std::string(trace) == "1") {
    obs::SetTraceLogging(true);
  }
}

/// Prints the global registry as a table, and — when XFRAUD_METRICS_OUT is
/// set — writes the JSON snapshot there so BENCH_*.json entries can carry
/// the per-phase breakdown alongside the headline timings. Call at the end
/// of a bench's Run(); no-op when obs is disabled.
inline void EmitObsSnapshot() {
  if (!obs::IsEnabled()) return;
  std::cout << "\n-- observability registry snapshot (p50/p95/p99 are "
               "log-bucket estimates; see DESIGN.md §8) --\n";
  obs::Registry::Global().PrintTable(std::cout);
  const char* out = std::getenv("XFRAUD_METRICS_OUT");
  if (out != nullptr && *out != '\0') {
    Status s = obs::Registry::Global().WriteJsonFile(out);
    if (s.ok()) {
      std::cout << "wrote metrics snapshot to " << out << "\n";
    } else {
      std::cout << "metrics snapshot failed: " << s.ToString() << "\n";
    }
  }
}

}  // namespace xfraud::bench

#endif  // XFRAUD_BENCH_BENCH_COMMON_H_
