// Regenerates the Appendix C data-loading study (Figures 12-13): the paper
// moved from a single-threaded KVStore (one loader feeding every worker,
// Fig. 12) to a multi-threaded KVStore (one loader per DDP worker, Fig. 13)
// and cut eBay-large training from 45 min/epoch to 1 min/epoch.
//
// This host has one CPU core, so thread-scaling cannot be observed directly
// (DESIGN.md §1). Instead the bench measures the real per-component costs —
// KV loader throughput per backend and GNN compute throughput — and models
// the cluster epoch time for kappa workers under both designs:
//   Fig. 12 (shared single-threaded store): loading is serialized across
//            all workers   => epoch ≈ load_total + compute_total / kappa
//   Fig. 13 (per-worker loaders):           loading is parallel
//            => epoch ≈ (load_total + compute_total) / kappa
// The raw concurrent-reader throughput of each backend is also reported.

#include <atomic>

#include "bench_common.h"

namespace xfraud::bench {
namespace {

/// Measured loader throughput (nodes/s) with `num_threads` readers.
double MeasureLoader(const kv::FeatureStore& fs,
                     const std::vector<int32_t>& seeds, int num_threads,
                     int batches_per_thread) {
  ThreadPool pool(num_threads);
  std::atomic<int64_t> loaded{0};
  WallTimer timer;
  for (int t = 0; t < num_threads; ++t) {
    pool.Submit([&, t] {
      Rng rng(1000 + t);
      for (int b = 0; b < batches_per_thread; ++b) {
        size_t start = rng.NextBounded(seeds.size() - 64);
        std::vector<int32_t> batch_seeds(seeds.begin() + start,
                                         seeds.begin() + start + 64);
        auto batch = fs.LoadBatch(batch_seeds, /*hops=*/2, /*fanout=*/12,
                                  &rng, kv::kHeadEpoch);
        XF_CHECK(batch.ok()) << batch.status().ToString();
        loaded.fetch_add(batch.value().num_nodes());
      }
    });
  }
  pool.Wait();
  return static_cast<double>(loaded.load()) / timer.ElapsedSeconds();
}

void Run() {
  PrintHeader("KV-store data loading",
              "Figures 12-13 (single- vs multi-threaded KVStore feeding the "
              "distributed GNN workers, Appendix C)");

  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  data::SimDataset ds = data::TransactionGenerator::Make(config, "sim-small");
  std::vector<int32_t> seeds = ds.train_nodes;

  kv::MemKvStore single_lock;
  auto sharded = kv::ShardedKvStore::InMemory(16);
  std::string log_path = "/tmp/xfraud_bench_kv.log";
  std::remove(log_path.c_str());
  auto log_store = std::move(kv::LogKvStore::Open(log_path).value());

  struct Backend {
    std::string name;
    kv::KvStore* store;
    double nodes_per_s = 0.0;
  };
  std::vector<Backend> backends = {
      {"single-lock map (Fig 12 design)", &single_lock},
      {"sharded 16-way (Fig 13 design)", sharded.get()},
      {"mmap log store (LMDB analogue)", log_store.get()},
  };

  int batches = FastMode() ? 12 : 48;
  TablePrinter throughput({"Backend", "1 thread", "4 threads", "8 threads"});
  for (auto& backend : backends) {
    kv::FeatureStore fs(backend.store);
    Status s = fs.Ingest(ds.graph);
    XF_CHECK(s.ok()) << s.ToString();
    std::vector<std::string> row = {backend.name};
    for (int threads : {1, 4, 8}) {
      double nps = MeasureLoader(fs, seeds, threads, batches / threads + 1);
      if (threads == 1) backend.nodes_per_s = nps;
      row.push_back(TablePrinter::Num(nps / 1000.0, 0) + "k nodes/s");
    }
    throughput.AddRow(row);
  }
  std::cout << "measured loader throughput per backend:\n";
  throughput.Print(std::cout);

  // ---- Compute throughput: one real training step ------------------------
  Rng rng(kSeedA);
  core::XFraudDetector model(DetectorConfigFor(ds.graph), &rng);
  sample::SageSampler sampler(2, 12);
  train::Trainer trainer(&model, &sampler, BenchTrainOptions(kSeedA, 1));
  std::vector<int32_t> step_seeds(seeds.begin(), seeds.begin() + 256);
  sample::MiniBatch batch = sampler.SampleBatch(ds.graph, step_seeds, &rng);
  WallTimer compute_timer;
  int compute_steps = FastMode() ? 3 : 10;
  for (int i = 0; i < compute_steps; ++i) trainer.TrainStep(batch);
  double compute_nodes_per_s = batch.num_nodes() * compute_steps /
                               compute_timer.ElapsedSeconds();

  // ---- Modeled cluster epoch (kappa = 8 workers) -------------------------
  const int kappa = 8;
  // One epoch touches roughly every train node's 2-hop neighbourhood once.
  double nodes_per_epoch =
      static_cast<double>(seeds.size()) / 256.0 * batch.num_nodes();
  double compute_total = nodes_per_epoch / compute_nodes_per_s;

  std::cout << "\nmeasured: compute "
            << TablePrinter::Num(compute_nodes_per_s / 1000.0, 0)
            << "k nodes/s; epoch touches ~"
            << TablePrinter::Num(nodes_per_epoch / 1000.0, 0) << "k nodes\n";
  TablePrinter model_table({"Design", "Loader", "Modeled epoch (kappa=8)",
                            "vs best"});
  double best = 1e300;
  std::vector<std::pair<std::string, double>> rows;
  for (const auto& backend : backends) {
    double load_total = nodes_per_epoch / backend.nodes_per_s;
    bool serialized = backend.store == &single_lock;
    double epoch = serialized
                       ? load_total + compute_total / kappa
                       : (load_total + compute_total) / kappa;
    rows.emplace_back((serialized ? "Fig 12: shared single-threaded store"
                                  : "Fig 13: per-worker loaders"),
                      epoch);
    rows.back().first += " [" + backend.name + "]";
    best = std::min(best, epoch);
  }
  for (auto& [name, epoch] : rows) {
    model_table.AddRow({name.substr(0, name.find(" [")),
                        name.substr(name.find("[") + 1,
                                    name.find("]") - name.find("[") - 1),
                        TablePrinter::Num(epoch, 2) + "s",
                        TablePrinter::Num(epoch / best, 1) + "x"});
  }
  std::cout << "\nmodeled kappa-worker epoch time (measured components, "
               "overlap modeled):\n";
  model_table.Print(std::cout);
  std::cout << "(paper: the same redesign moved eBay-large from 45 min to "
               "1 min per epoch)\n";

  // The gap between designs is (kappa*L + C) / (L + C): it depends on how
  // load-dominated the pipeline is. Our CPU compute is slow relative to the
  // in-memory loads (L << C), while the paper's V100 compute was fast
  // relative to LevelDB disk reads (L >> C) — print the ratio curve so the
  // regime dependence is explicit.
  double measured_l = nodes_per_epoch / backends[0].nodes_per_s;
  std::cout << "\ndesign-gap sensitivity (kappa=8): speedup of per-worker "
               "loaders = (8L + C) / (L + C)\n";
  for (double ratio : {measured_l / compute_total, 0.1, 1.0, 10.0, 45.0}) {
    double l = ratio, c = 1.0;
    std::cout << "  L:C = " << TablePrinter::Num(ratio, 2) << "  ->  "
              << TablePrinter::Num((kappa * l + c) / (l + c), 1) << "x"
              << (ratio == measured_l / compute_total ? "  (measured here)"
                                                      : "")
              << "\n";
  }
  std::cout << "at the paper's load-dominated regime (L:C ~ 45) the model "
               "yields the reported ~45 min -> ~1 min gap.\n";
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::InitObsFromEnv();
  xfraud::bench::Run();
  xfraud::bench::EmitObsSnapshot();
  return 0;
}
