// Ablation of the detector's design choices called out in DESIGN.md:
//   - heterogeneity: typed attention + type embeddings (full detector) vs a
//     homogeneous attention model (GAT) vs typed mean aggregation (GEM);
//   - attention heads: 1 vs 2 vs 4;
//   - depth: 1 vs 2 vs 3 conv layers;
//   - residual connections on/off;
//   - class-weighted loss on/off (the paper trains on a 4-5% fraud mix).
// This extends the paper's own ablation (§4.2 covers only the sampler) to
// the architecture, using sim-small so one run stays cheap.

#include "bench_common.h"

namespace xfraud::bench {
namespace {

double TrainDetector(const data::SimDataset& ds, core::DetectorConfig config,
                     bool class_weights, int epochs, double* epoch_secs) {
  Rng rng(kSeedA);
  core::XFraudDetector model(config, &rng);
  sample::SageSampler sampler(2, 12);
  train::TrainOptions opts = BenchTrainOptions(kSeedA, epochs);
  if (!class_weights) opts.class_weights.clear();
  train::Trainer trainer(&model, &sampler, opts);
  auto result = trainer.Train(ds);
  if (epoch_secs != nullptr) *epoch_secs = result.mean_epoch_seconds;
  return trainer.Evaluate(ds.graph, ds.test_nodes).auc;
}

void Run() {
  PrintHeader("Detector architecture ablation",
              "DESIGN.md ablation targets (extends the paper's §4.2 sampler "
              "ablation to the architecture)");

  data::GeneratorConfig gconfig = data::TransactionGenerator::SimSmall();
  gconfig.feature_signal = 0.8;  // leave headroom for structural gains
  data::SimDataset ds = data::TransactionGenerator::Make(gconfig, "sim-small");
  int epochs = FastMode() ? 4 : 16;

  TablePrinter table({"Variant", "AUC", "Train (s/epoch)"});
  auto base = DetectorConfigFor(ds.graph);

  auto add = [&](const std::string& name, core::DetectorConfig config,
                 bool class_weights) {
    double secs = 0.0;
    double auc = TrainDetector(ds, config, class_weights, epochs, &secs);
    table.AddRow({name, TablePrinter::Num(auc, 4),
                  TablePrinter::Num(secs, 3)});
  };

  add("full detector (2 layers, 4 heads, residual, weighted CE)", base,
      true);

  core::DetectorConfig one_head = base;
  one_head.num_heads = 1;
  add("1 attention head", one_head, true);
  core::DetectorConfig two_heads = base;
  two_heads.num_heads = 2;
  add("2 attention heads", two_heads, true);

  core::DetectorConfig shallow = base;
  shallow.num_layers = 1;
  add("1 conv layer", shallow, true);
  core::DetectorConfig deep = base;
  deep.num_layers = 3;
  add("3 conv layers", deep, true);

  core::DetectorConfig no_residual = base;
  no_residual.use_residual = false;
  add("no residual connections", no_residual, true);

  add("unweighted cross entropy", base, false);

  // Baselines under the identical protocol for the heterogeneity ablation.
  for (const std::string& name : {std::string("GAT"), std::string("GEM")}) {
    Rng rng(kSeedA);
    auto model = MakeModel(name, ds.graph, kSeedA);
    sample::SageSampler sampler(2, 12);
    train::TrainOptions opts = BenchTrainOptions(kSeedA, epochs);
    train::Trainer trainer(model.get(), &sampler, opts);
    auto result = trainer.Train(ds);
    table.AddRow({name + " (heterogeneity ablation)",
                  TablePrinter::Num(
                      trainer.Evaluate(ds.graph, ds.test_nodes).auc, 4),
                  TablePrinter::Num(result.mean_epoch_seconds, 3)});
  }

  table.Print(std::cout);
  std::cout << "(expected shape: the full detector is at or near the top; "
               "removing heads/layers/typing costs AUC; the weighted CE "
               "matters on the imbalanced mix)\n";
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::Run();
  return 0;
}
