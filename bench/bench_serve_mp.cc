// Multi-process serving tier: in-process vs socket-transport latency, and
// the cost of chaos (DESIGN.md §16).
//
// Section A scores the same request stream through (1) an in-process
// ScoringService over a LogKvStore cell and (2) a Router speaking CRC'd
// XFRM frames to real forked shard-server processes, and prints both
// latency distributions side by side — the wire + process-hop overhead in
// milliseconds. The scores themselves are asserted bit-identical: the
// socket tier is the same pure function behind a transport.
//
// Section B re-runs the socket tier under a kill_server chaos plan (every
// shard's primary SIGKILLed mid-load, supervisor respawns from the WAL)
// and reports the tail next to the clean run, with the failover/respawn
// counters that explain the difference.

#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.h"

namespace xfraud::bench {
namespace {

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (rank - lo);
}

int64_t CounterValue(const char* name) {
  return obs::Registry::Global().counter(name)->value();
}

std::string BenchDir(const std::string& tag) {
  std::string dir = "/tmp/xf-bench-smp-" + tag + "-" +
                    std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

serve::ServiceOptions BenchServiceOptions() {
  serve::ServiceOptions options;
  options.deadline_s = 30.0;  // generous: these sections measure latency
  return options;
}

struct TierRun {
  std::vector<double> scores;
  std::vector<double> wall_s;  // per-request end-to-end latency
  int respawns = 0;
  int64_t failovers = 0;
  int64_t redials = 0;
};

/// The in-process baseline: same WAL write path, same detector seed, same
/// service options — everything but the processes and the wire.
TierRun RunInProcess(const data::SimDataset& ds,
                     const std::vector<int32_t>& nodes) {
  std::string dir = BenchDir("inproc");
  std::filesystem::create_directories(dir);
  auto store = kv::LogKvStore::Open(dir + "/cell.log");
  XF_CHECK(store.ok()) << store.status().ToString();
  kv::FeatureStore features(store.value().get());
  XF_CHECK(features.Ingest(ds.graph).ok());
  auto epoch = store.value()->PublishEpoch();
  XF_CHECK(epoch.ok());
  Rng model_rng(kSeedA);
  core::XFraudDetector detector(DetectorConfigFor(ds.graph), &model_rng);
  serve::ScoringService service(&detector, &features, BenchServiceOptions());

  TierRun run;
  for (size_t i = 0; i < nodes.size(); ++i) {
    WallTimer timer;
    auto resp = service.ScoreAt(static_cast<int64_t>(i), nodes[i],
                                /*deadline_s=*/30.0, epoch.value());
    XF_CHECK(resp.ok()) << resp.status().ToString();
    run.wall_s.push_back(timer.ElapsedSeconds());
    run.scores.push_back(resp.value().score);
  }
  std::filesystem::remove_all(dir);
  return run;
}

TierRun RunSocketTier(const data::SimDataset& ds,
                      const std::vector<int32_t>& nodes,
                      const std::string& tag, const fault::FaultPlan& plan) {
  std::string dir = BenchDir(tag);
  serve::SupervisorOptions options;
  options.dir = dir;
  options.num_shards = 2;
  options.num_replicas = 2;
  options.detector = DetectorConfigFor(ds.graph);
  options.model_seed = kSeedA;
  options.service = BenchServiceOptions();
  options.plan = plan;
  auto sup = serve::Supervisor::Start(ds.graph, options);
  XF_CHECK(sup.ok()) << sup.status().ToString();

  const int64_t failovers_before = CounterValue("serve/router/failovers");
  const int64_t redials_before = CounterValue("serve/router/redials");
  serve::Router router(sup.value()->MakeRouterOptions());
  TierRun run;
  for (size_t i = 0; i < nodes.size(); ++i) {
    WallTimer timer;
    auto resp = router.Score(static_cast<int64_t>(i), nodes[i]);
    XF_CHECK(resp.ok()) << "request " << i << ": "
                        << resp.status().ToString();
    run.wall_s.push_back(timer.ElapsedSeconds());
    run.scores.push_back(resp.value().score);
  }
  run.respawns = sup.value()->restarts();
  run.failovers = CounterValue("serve/router/failovers") - failovers_before;
  run.redials = CounterValue("serve/router/redials") - redials_before;
  XF_CHECK(sup.value()->Stop().ok());
  std::filesystem::remove_all(dir);
  return run;
}

void AddRow(TablePrinter* table, const std::string& label,
            const TierRun& run) {
  table->AddRow({label, TablePrinter::Num(Percentile(run.wall_s, 0.50) * 1e3, 2),
                 TablePrinter::Num(Percentile(run.wall_s, 0.95) * 1e3, 2),
                 TablePrinter::Num(Percentile(run.wall_s, 0.99) * 1e3, 2),
                 std::to_string(run.respawns), std::to_string(run.failovers),
                 std::to_string(run.redials)});
}

void Run() {
  PrintHeader("Multi-process serving: transport overhead & chaos cost",
              "serving-tier robustness study (DESIGN.md §16; paper §3.3.3 "
              "deployment context)");

  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  if (FastMode()) {
    config.num_buyers = 300;
    config.num_fraud_rings = 8;
  }
  data::SimDataset ds = data::TransactionGenerator::Make(config, "serve-mp");
  auto labeled = ds.graph.LabeledTransactions();
  XF_CHECK(!labeled.empty());
  const int num_requests = FastMode() ? 24 : 120;
  std::vector<int32_t> nodes;
  for (int i = 0; i < num_requests; ++i) {
    nodes.push_back(labeled[static_cast<size_t>(i) % labeled.size()]);
  }

  std::cout << "-- A: in-process vs socket transport (" << num_requests
            << " requests, 2 shards x 2 replica processes) --\n";
  const TierRun inproc = RunInProcess(ds, nodes);
  const TierRun socket_clean =
      RunSocketTier(ds, nodes, "clean", fault::FaultPlan{});
  // The tier's determinism contract, checked at bench time too: the wire
  // moves IEEE-754 bit patterns, so equality is exact.
  for (size_t i = 0; i < nodes.size(); ++i) {
    XF_CHECK(socket_clean.scores[i] == inproc.scores[i])
        << "request " << i << " diverged across transports";
  }

  std::cout << "-- B: socket transport under kill_server chaos (every "
               "shard's primary SIGKILLed on its 3rd request) --\n";
  auto plan = fault::FaultPlan::Parse("seed=20260807,kill_server=0@2");
  XF_CHECK(plan.ok()) << plan.status().ToString();
  const TierRun socket_chaos =
      RunSocketTier(ds, nodes, "chaos", plan.value());
  for (size_t i = 0; i < nodes.size(); ++i) {
    XF_CHECK(socket_chaos.scores[i] == inproc.scores[i])
        << "request " << i << " diverged under chaos";
  }

  TablePrinter table({"config", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                      "respawns", "failovers", "redials"});
  AddRow(&table, "in-process", inproc);
  AddRow(&table, "socket, clean", socket_clean);
  AddRow(&table, "socket, kill_server chaos", socket_chaos);
  table.Print(std::cout);
  std::cout << "all " << num_requests * 3
            << " scores bit-identical across transports and chaos\n";
  EmitObsSnapshot();
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::bench::InitObsFromEnv();
  xfraud::bench::Run();
  return 0;
}
