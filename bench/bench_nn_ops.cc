// Microbenchmarks of the autograd substrate (google-benchmark): the ops on
// the detector's critical path, forward and forward+backward, plus the
// before/after pairs that gate each nn::kernels fusion (blocked vs naive
// GEMM, fused vs composed linear and attention aggregate). Useful for
// tracking regressions in the engine that every experiment sits on.
//
// XFRAUD_KERNEL_THREADS sets the kernel worker count (default 1; results
// are bit-identical at any value, only the timings move).

#include <cstdlib>

#include <benchmark/benchmark.h>

#include "xfraud/nn/kernels.h"
#include "xfraud/nn/modules.h"
#include "xfraud/nn/ops.h"

namespace xfraud::nn {
namespace {

void BM_MatMulForward(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Var a(Tensor::Uniform(n, 64, 1.0f, &rng), false);
  Var b(Tensor::Uniform(64, 64, 1.0f, &rng), false);
  for (auto _ : state) {
    Var c = MatMul(a, b);
    benchmark::DoNotOptimize(c.value().data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64);
}
BENCHMARK(BM_MatMulForward)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GemmReference(benchmark::State& state) {
  // The naive ikj GEMM the blocked kernel replaced — the "before" side of
  // the BM_MatMulForward gate, kept runnable in the same binary.
  int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Uniform(n, 64, 1.0f, &rng);
  Tensor b = Tensor::Uniform(64, 64, 1.0f, &rng);
  Tensor c(n, 64);
  for (auto _ : state) {
    kernels::reference::Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64);
}
BENCHMARK(BM_GemmReference)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MatMulTrain(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(2);
  Var a(Tensor::Uniform(n, 64, 1.0f, &rng), true);
  Var b(Tensor::Uniform(64, 64, 1.0f, &rng), true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    Var loss = Sum(MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(a.grad().data());
  }
  // Forward GEMM plus the two backward products, all n x 64 x 64 shaped.
  state.SetItemsProcessed(state.iterations() * 3 * n * 64 * 64);
}
BENCHMARK(BM_MatMulTrain)->Arg(256)->Arg(1024);

void BM_LinearFused(benchmark::State& state) {
  // Fused x·W + b + ReLU forward/backward...
  int64_t n = state.range(0);
  Rng rng(7);
  Linear lin(64, 64, &rng);
  Var x(Tensor::Uniform(n, 64, 1.0f, &rng), true);
  for (auto _ : state) {
    x.ZeroGrad();
    lin.ZeroGrad();
    Var loss = Sum(lin.Forward(x, kernels::Activation::kRelu));
    loss.Backward();
    benchmark::DoNotOptimize(x.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64);
}
BENCHMARK(BM_LinearFused)->Arg(256)->Arg(1024);

void BM_LinearComposed(benchmark::State& state) {
  // ...vs the composed MatMul + AddRowBroadcast + Relu chain it replaced.
  int64_t n = state.range(0);
  Rng rng(7);
  Linear lin(64, 64, &rng);
  Var x(Tensor::Uniform(n, 64, 1.0f, &rng), true);
  Var bias(Tensor(1, 64, 0.01f), true);
  for (auto _ : state) {
    x.ZeroGrad();
    lin.ZeroGrad();
    bias.ZeroGrad();
    Var loss =
        Sum(Relu(AddRowBroadcast(MatMul(x, lin.weight()), bias)));
    loss.Backward();
    benchmark::DoNotOptimize(x.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64);
}
BENCHMARK(BM_LinearComposed)->Arg(256)->Arg(1024);

void BM_AttentionAggregateFused(benchmark::State& state) {
  // Fused segment-softmax -> per-head weighting -> scatter-add...
  int64_t edges = state.range(0);
  int64_t nodes = edges / 2 + 1;
  const int64_t kHeads = 4;
  const int64_t kHeadDim = 16;
  Rng rng(8);
  Var scores(Tensor::Uniform(edges, kHeads, 1.0f, &rng), true);
  Var values(Tensor::Uniform(edges, kHeads * kHeadDim, 1.0f, &rng), true);
  std::vector<int32_t> dst(edges);
  for (auto& d : dst) d = static_cast<int32_t>(rng.NextBounded(nodes));
  for (auto _ : state) {
    scores.ZeroGrad();
    values.ZeroGrad();
    Var loss = Sum(AttentionAggregate(scores, values, dst, nodes, kHeadDim,
                                      /*dropout_p=*/0.0f, /*training=*/false,
                                      nullptr));
    loss.Backward();
    benchmark::DoNotOptimize(scores.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_AttentionAggregateFused)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AttentionAggregateComposed(benchmark::State& state) {
  // ...vs the composed SegmentSoftmax + per-head SliceCols/MulColBroadcast/
  // ConcatCols + ScatterAddRows chain it replaced in HeteroConv.
  int64_t edges = state.range(0);
  int64_t nodes = edges / 2 + 1;
  const int64_t kHeads = 4;
  const int64_t kHeadDim = 16;
  Rng rng(8);
  Var scores(Tensor::Uniform(edges, kHeads, 1.0f, &rng), true);
  Var values(Tensor::Uniform(edges, kHeads * kHeadDim, 1.0f, &rng), true);
  std::vector<int32_t> dst(edges);
  for (auto& d : dst) d = static_cast<int32_t>(rng.NextBounded(nodes));
  for (auto _ : state) {
    scores.ZeroGrad();
    values.ZeroGrad();
    Var att = SegmentSoftmax(scores, dst, nodes);
    Var messages;
    for (int64_t h = 0; h < kHeads; ++h) {
      Var v_h = SliceCols(values, h * kHeadDim, kHeadDim);
      Var att_h = SliceCols(att, h, 1);
      Var msg_h = MulColBroadcast(v_h, att_h);
      messages = messages.defined() ? ConcatCols(messages, msg_h) : msg_h;
    }
    Var loss = Sum(ScatterAddRows(messages, dst, nodes));
    loss.Backward();
    benchmark::DoNotOptimize(scores.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_AttentionAggregateComposed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SegmentSoftmax(benchmark::State& state) {
  int64_t edges = state.range(0);
  Rng rng(3);
  Var scores(Tensor::Uniform(edges, 4, 1.0f, &rng), false);
  std::vector<int32_t> segments(edges);
  int64_t num_segments = edges / 3 + 1;
  for (int64_t e = 0; e < edges; ++e) {
    segments[e] = static_cast<int32_t>(rng.NextBounded(num_segments));
  }
  for (auto _ : state) {
    Var att = SegmentSoftmax(scores, segments, num_segments);
    benchmark::DoNotOptimize(att.value().data());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_SegmentSoftmax)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ScatterGather(benchmark::State& state) {
  int64_t edges = state.range(0);
  int64_t nodes = edges / 2 + 1;
  Rng rng(4);
  Var h(Tensor::Uniform(nodes, 32, 1.0f, &rng), false);
  std::vector<int32_t> src(edges), dst(edges);
  for (int64_t e = 0; e < edges; ++e) {
    src[e] = static_cast<int32_t>(rng.NextBounded(nodes));
    dst[e] = static_cast<int32_t>(rng.NextBounded(nodes));
  }
  for (auto _ : state) {
    Var agg = ScatterAddRows(IndexRows(h, src), dst, nodes);
    benchmark::DoNotOptimize(agg.value().data());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_ScatterGather)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MlpTrainStep(benchmark::State& state) {
  int64_t batch = state.range(0);
  Rng rng(5);
  Mlp mlp(96, 32, 2, 0.2f, &rng);
  Var x(Tensor::Uniform(batch, 96, 1.0f, &rng), false);
  std::vector<int> labels(batch);
  for (auto& l : labels) l = rng.NextBernoulli(0.05);
  for (auto _ : state) {
    mlp.ZeroGrad();
    Var loss = CrossEntropy(mlp.Forward(x, true, &rng), labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpTrainStep)->Arg(256)->Arg(1024);

void BM_LayerNormForward(benchmark::State& state) {
  int64_t rows = state.range(0);
  Rng rng(6);
  LayerNormModule norm(64);
  Var x(Tensor::Uniform(rows, 64, 1.0f, &rng), false);
  for (auto _ : state) {
    Var y = norm.Forward(x);
    benchmark::DoNotOptimize(y.value().data());
  }
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_LayerNormForward)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace xfraud::nn

int main(int argc, char** argv) {
  const char* threads = std::getenv("XFRAUD_KERNEL_THREADS");
  if (threads != nullptr) {
    xfraud::nn::kernels::SetNumThreads(std::atoi(threads));
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
