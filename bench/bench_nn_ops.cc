// Microbenchmarks of the autograd substrate (google-benchmark): the ops on
// the detector's critical path, forward and forward+backward. Useful for
// tracking regressions in the engine that every experiment sits on.

#include <benchmark/benchmark.h>

#include "xfraud/nn/modules.h"
#include "xfraud/nn/ops.h"

namespace xfraud::nn {
namespace {

void BM_MatMulForward(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Var a(Tensor::Uniform(n, 64, 1.0f, &rng), false);
  Var b(Tensor::Uniform(64, 64, 1.0f, &rng), false);
  for (auto _ : state) {
    Var c = MatMul(a, b);
    benchmark::DoNotOptimize(c.value().data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64);
}
BENCHMARK(BM_MatMulForward)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MatMulTrain(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(2);
  Var a(Tensor::Uniform(n, 64, 1.0f, &rng), true);
  Var b(Tensor::Uniform(64, 64, 1.0f, &rng), true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    Var loss = Sum(MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(a.grad().data());
  }
}
BENCHMARK(BM_MatMulTrain)->Arg(256)->Arg(1024);

void BM_SegmentSoftmax(benchmark::State& state) {
  int64_t edges = state.range(0);
  Rng rng(3);
  Var scores(Tensor::Uniform(edges, 4, 1.0f, &rng), false);
  std::vector<int32_t> segments(edges);
  int64_t num_segments = edges / 3 + 1;
  for (int64_t e = 0; e < edges; ++e) {
    segments[e] = static_cast<int32_t>(rng.NextBounded(num_segments));
  }
  for (auto _ : state) {
    Var att = SegmentSoftmax(scores, segments, num_segments);
    benchmark::DoNotOptimize(att.value().data());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_SegmentSoftmax)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ScatterGather(benchmark::State& state) {
  int64_t edges = state.range(0);
  int64_t nodes = edges / 2 + 1;
  Rng rng(4);
  Var h(Tensor::Uniform(nodes, 32, 1.0f, &rng), false);
  std::vector<int32_t> src(edges), dst(edges);
  for (int64_t e = 0; e < edges; ++e) {
    src[e] = static_cast<int32_t>(rng.NextBounded(nodes));
    dst[e] = static_cast<int32_t>(rng.NextBounded(nodes));
  }
  for (auto _ : state) {
    Var agg = ScatterAddRows(IndexRows(h, src), dst, nodes);
    benchmark::DoNotOptimize(agg.value().data());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_ScatterGather)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MlpTrainStep(benchmark::State& state) {
  int64_t batch = state.range(0);
  Rng rng(5);
  Mlp mlp(96, 32, 2, 0.2f, &rng);
  Var x(Tensor::Uniform(batch, 96, 1.0f, &rng), false);
  std::vector<int> labels(batch);
  for (auto& l : labels) l = rng.NextBernoulli(0.05);
  for (auto _ : state) {
    mlp.ZeroGrad();
    Var loss = CrossEntropy(mlp.Forward(x, true, &rng), labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpTrainStep)->Arg(256)->Arg(1024);

void BM_LayerNormForward(benchmark::State& state) {
  int64_t rows = state.range(0);
  Rng rng(6);
  LayerNormModule norm(64);
  Var x(Tensor::Uniform(rows, 64, 1.0f, &rng), false);
  for (auto _ : state) {
    Var y = norm.Forward(x);
    benchmark::DoNotOptimize(y.value().data());
  }
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_LayerNormForward)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace xfraud::nn

BENCHMARK_MAIN();
