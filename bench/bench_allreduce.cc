// Micro-benchmark of the dist::Communicator collectives, both backends:
//
//   InProcessGroup (blocking)  — the shared-memory baseline; "latency" here
//                                is thread synchronization only, and its
//                                comm_seconds()/bytes_on_wire() stay zero
//                                (the trainer models its sync cost instead).
//   SocketCommunicator         — the real ring over unix sockets; measures
//                                per-round latency and on-wire throughput
//                                across a payload sweep, the numbers that
//                                back DistributedEpoch.measured_comm_seconds.
//
// For each payload size, `world` threads run `rounds` AllReduceSum(f32)
// rounds; the table reports per-round wall time and effective payload
// bandwidth (payload bytes reduced per second of the slowest rank). A ring
// all-reduce moves each payload ~2x around the ring, so wire bytes exceed
// payload bytes by ~2(world-1)/world plus frame headers — reported in the
// last column.
//
// XFRAUD_BENCH_FAST=1 shrinks the sweep; XFRAUD_METRICS_OUT=<path>.json
// writes the obs registry snapshot (dist/comm/* counters) at exit.

#include <filesystem>
#include <functional>
#include <system_error>
#include <thread>

#include "bench_common.h"

namespace xfraud::bench {
namespace {

struct SweepPoint {
  size_t elements;
  int rounds;
};

struct Measurement {
  double seconds_per_round = 0.0;
  int64_t wire_bytes = 0;  // total across ranks, socket only
};

/// Runs `rounds` all-reduce rounds over `world` communicators (one thread
/// per rank) and returns the slowest-path per-round time.
Measurement RunRounds(const std::function<dist::Communicator*(int)>& comm,
                      int world, size_t elements, int rounds) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world));
  WallTimer timer;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> payload(elements, static_cast<float>(r + 1));
      for (int round = 0; round < rounds; ++round) {
        Status s = comm(r)->AllReduceSum(std::span<float>(payload));
        XF_CHECK(s.ok()) << s.ToString();
      }
    });
  }
  for (auto& t : threads) t.join();
  Measurement m;
  m.seconds_per_round = timer.ElapsedSeconds() / rounds;
  for (int r = 0; r < world; ++r) m.wire_bytes += comm(r)->bytes_on_wire();
  return m;
}

void Run() {
  PrintHeader("Communicator all-reduce",
              "transport layer of §3.3.2's DDP training (DESIGN.md §12): "
              "in-process group vs socket ring");

  const int world = 4;
  std::vector<SweepPoint> sweep = {{1 << 10, 50},
                                   {1 << 14, 20},
                                   {1 << 18, 8},
                                   {1 << 20, 3}};
  if (FastMode()) sweep = {{1 << 10, 5}, {1 << 14, 3}};

  TablePrinter table({"backend", "payload (floats)", "rounds", "ms/round",
                      "payload MB/s", "wire bytes/round"});
  for (const SweepPoint& point : sweep) {
    const double payload_mb =
        static_cast<double>(point.elements * sizeof(float)) / (1024 * 1024);
    {
      dist::InProcessGroup group(world, /*blocking=*/true);
      Measurement m = RunRounds(
          [&group](int r) { return group.communicator(r); }, world,
          point.elements, point.rounds);
      table.AddRow({"inproc", std::to_string(point.elements),
                    std::to_string(point.rounds),
                    TablePrinter::Num(m.seconds_per_round * 1e3, 3),
                    TablePrinter::Num(payload_mb / m.seconds_per_round, 1),
                    "0"});
    }
    {
      std::string dir = "/tmp/xfraud-bench-allreduce";
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      XF_CHECK(!ec) << ec.message();
      dist::Endpoint rdzv =
          dist::ParseEndpoint("unix:" + dir + "/rdzv.sock").value();
      auto host = dist::RendezvousHost::Create(rdzv, world);
      XF_CHECK(host.ok()) << host.status().ToString();
      std::vector<std::unique_ptr<dist::SocketCommunicator>> comms(
          static_cast<size_t>(world));
      std::vector<std::thread> connectors;
      for (int r = 0; r < world; ++r) {
        connectors.emplace_back([&, r] {
          dist::SocketCommOptions o;
          o.rank = r;
          o.world = world;
          o.rendezvous = rdzv;
          auto c = dist::SocketCommunicator::Connect(
              o, r == 0 ? host.value().get() : nullptr);
          XF_CHECK(c.ok()) << c.status().ToString();
          comms[static_cast<size_t>(r)] = std::move(c).value();
        });
      }
      for (auto& t : connectors) t.join();
      Measurement m = RunRounds(
          [&comms](int r) {
            return comms[static_cast<size_t>(r)].get();
          },
          world, point.elements, point.rounds);
      table.AddRow(
          {"socket", std::to_string(point.elements),
           std::to_string(point.rounds),
           TablePrinter::Num(m.seconds_per_round * 1e3, 3),
           TablePrinter::Num(payload_mb / m.seconds_per_round, 1),
           TablePrinter::Num(
               static_cast<double>(m.wire_bytes) / point.rounds, 0)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nthe socket rows are real transport cost (what mp-mode "
               "training reports as 'measured comm'); the inproc rows are "
               "thread-synchronization overhead only, which is why that "
               "backend's sync cost is modeled, not measured.\n";
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::InitObsFromEnv();
  xfraud::bench::Run();
  xfraud::bench::EmitObsSnapshot();
  return 0;
}
