// Online-serving tail latency under replica faults (DESIGN.md §11).
//
// Section A runs the scoring service on a VirtualClock against a topology
// with one injected slow replica (+5ms per read) and compares hedged vs
// unhedged reads: identical request streams, exact per-request latency
// percentiles, plus the hedge/failover counters that explain the shape.
// Because the clock is virtual, the injected milliseconds replay instantly
// and the numbers are bit-identical across runs.
//
// Section B offers increasing concurrent load to a service with a small
// admission limit (real clock, real threads) and reports the shed rate and
// goodput at each offered load — the load-shedding curve.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace xfraud::bench {
namespace {

/// Exact percentile (nearest-rank with interpolation) over raw samples —
/// unlike the obs histogram's log-bucket estimate, this is bench-grade.
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

int64_t CounterValue(const char* name) {
  return obs::Registry::Global().counter(name)->value();
}

struct TailRow {
  std::string config;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  int64_t hedged = 0;
  int64_t hedge_wins = 0;
  int64_t failovers = 0;
};

TailRow RunTailConfig(const data::SimDataset& ds, const std::string& label,
                      double hedge_delay_s, int num_requests) {
  VirtualClock clock;
  serve::TopologyOptions topo;
  topo.num_shards = 4;
  topo.num_replicas = 3;
  topo.clock = &clock;
  topo.replication.hedge_delay_s = hedge_delay_s;
  // Replica 2 answers, but slowly: +5ms on every read it serves.
  auto plan = fault::FaultPlan::Parse("seed=20260805,slow_replica=2@0.005");
  XF_CHECK(plan.ok()) << plan.status().ToString();
  topo.plan = plan.value();
  serve::ServingTopology topology(topo);
  XF_CHECK(topology.Ingest(ds.graph).ok());

  kv::FeatureStore features(topology.serving());
  Rng model_rng(kSeedA);
  core::XFraudDetector model(DetectorConfigFor(ds.graph), &model_rng);
  serve::ServiceOptions options;
  options.deadline_s = 60.0;  // generous: this section measures latency
  options.clock = &clock;
  serve::ScoringService service(&model, &features, options);

  const int64_t hedged_before = CounterValue("kv/replicated/hedged_reads");
  const int64_t wins_before = CounterValue("kv/replicated/hedge_wins");
  const int64_t failovers_before = CounterValue("kv/replicated/failovers");

  std::vector<double> latencies;
  latencies.reserve(num_requests);
  for (int i = 0; i < num_requests; ++i) {
    const int32_t node =
        ds.test_nodes[static_cast<size_t>(i) % ds.test_nodes.size()];
    auto resp = service.Score(/*request_id=*/i, node);
    XF_CHECK(resp.ok()) << resp.status().ToString();
    latencies.push_back(resp.value().latency_s);
  }

  TailRow row;
  row.config = label;
  row.p50_ms = Percentile(latencies, 0.50) * 1e3;
  row.p95_ms = Percentile(latencies, 0.95) * 1e3;
  row.p99_ms = Percentile(latencies, 0.99) * 1e3;
  row.hedged = CounterValue("kv/replicated/hedged_reads") - hedged_before;
  row.hedge_wins = CounterValue("kv/replicated/hedge_wins") - wins_before;
  row.failovers =
      CounterValue("kv/replicated/failovers") - failovers_before;
  return row;
}

void RunSectionA(const data::SimDataset& ds, int num_requests) {
  std::cout << "-- A: tail latency with one slow replica (virtual clock, "
            << num_requests << " requests, 4 shards x 3 replicas, "
            << "slow_replica=2@5ms) --\n";
  std::vector<TailRow> rows;
  rows.push_back(
      RunTailConfig(ds, "no hedging", /*hedge_delay_s=*/-1.0, num_requests));
  rows.push_back(RunTailConfig(ds, "hedge @ 1ms", /*hedge_delay_s=*/0.001,
                               num_requests));

  TablePrinter table({"config", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                      "hedged", "wins", "failovers"});
  for (const TailRow& r : rows) {
    table.AddRow({r.config, TablePrinter::Num(r.p50_ms, 2),
                  TablePrinter::Num(r.p95_ms, 2),
                  TablePrinter::Num(r.p99_ms, 2), std::to_string(r.hedged),
                  std::to_string(r.hedge_wins),
                  std::to_string(r.failovers)});
  }
  table.Print(std::cout);
  const double cut = rows[0].p99_ms > 0.0
                         ? 100.0 * (rows[0].p99_ms - rows[1].p99_ms) /
                               rows[0].p99_ms
                         : 0.0;
  std::cout << "hedged reads cut p99 by " << TablePrinter::Num(cut, 1)
            << "% against the slow replica\n\n";
}

void RunSectionB(const data::SimDataset& ds, int requests_per_thread) {
  std::cout << "-- B: load shedding at increasing offered load (real "
               "clock, max_inflight=2, shed_policy=failfast) --\n";

  kv::MemKvStore store;
  kv::FeatureStore features(&store);
  XF_CHECK(features.Ingest(ds.graph).ok());
  Rng model_rng(kSeedA);
  core::XFraudDetector model(DetectorConfigFor(ds.graph), &model_rng);

  TablePrinter table({"threads", "requests", "ok", "shed", "shed rate",
                      "p99 (ms)"});
  for (int threads : {1, 2, 4, 8}) {
    serve::ServiceOptions options;
    options.max_inflight = 2;
    options.shed_policy = serve::ShedPolicy::kFailFast;
    options.deadline_s = 5.0;
    serve::ScoringService service(&model, &features, options);

    std::atomic<int> ok_count{0};
    std::atomic<int> shed_count{0};
    std::vector<double> latencies(
        static_cast<size_t>(threads) * requests_per_thread, 0.0);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < requests_per_thread; ++i) {
          const int64_t request_id =
              static_cast<int64_t>(t) * requests_per_thread + i;
          const int32_t node =
              ds.test_nodes[static_cast<size_t>(request_id) %
                            ds.test_nodes.size()];
          auto resp = service.Score(request_id, node);
          if (resp.ok()) {
            ok_count.fetch_add(1);
            latencies[static_cast<size_t>(request_id)] =
                resp.value().latency_s;
          } else {
            shed_count.fetch_add(1);
          }
        }
      });
    }
    for (auto& w : workers) w.join();

    std::vector<double> ok_latencies;
    for (double l : latencies) {
      if (l > 0.0) ok_latencies.push_back(l);
    }
    const int total = threads * requests_per_thread;
    table.AddRow({std::to_string(threads), std::to_string(total),
                  std::to_string(ok_count.load()),
                  std::to_string(shed_count.load()),
                  TablePrinter::Num(
                      static_cast<double>(shed_count.load()) / total, 3),
                  TablePrinter::Num(Percentile(ok_latencies, 0.99) * 1e3,
                                    2)});
  }
  table.Print(std::cout);
  std::cout << "admitted requests keep bounded latency; excess offered "
               "load is refused fast instead of queueing\n";
}

void Run() {
  PrintHeader("Online scoring tail latency & load shedding",
              "serving robustness study (DESIGN.md §11; paper §3.3.3 "
              "deployment context)");

  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  if (FastMode()) {
    config.num_buyers = 300;
    config.num_fraud_rings = 8;
  }
  data::SimDataset ds = data::TransactionGenerator::Make(config, "serve");

  const int tail_requests = FastMode() ? 40 : 200;
  const int shed_requests_per_thread = FastMode() ? 8 : 40;
  RunSectionA(ds, tail_requests);
  RunSectionB(ds, shed_requests_per_thread);
  EmitObsSnapshot();
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::bench::InitObsFromEnv();
  xfraud::bench::Run();
  return 0;
}
