// Continuous-ingest chaos harness (DESIGN.md §15).
//
// Section A drives sustained transaction ingestion through the streaming
// topology — append/publish epochs on one thread, concurrent pinned-epoch
// scoring on reader threads, the background compactor garbage-collecting
// behind the pins — under a chaos plan (kill_replica + torn_write +
// stall_compaction), and reports per-epoch publish latency, retries forced
// by torn writes, scoring throughput, and compaction cycles. Every scored
// (request_id, epoch) pair is re-scored at the end against its still-pinned
// epoch and must match bit-for-bit: the harness *asserts* zero torn reads.
//
// Section B measures the cost of crash recovery: reopen the chaos-written
// directory and time StreamingTopology::Open's replay + reattach.

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace xfraud::bench {
namespace {

struct IngestStats {
  int epochs = 0;
  int64_t txns = 0;
  int64_t publish_retries = 0;
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
  int64_t scores = 0;
  int64_t torn_writes = 0;
  int64_t compaction_stalls = 0;
  int64_t compaction_cycles = 0;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

IngestStats RunChaosIngest(const std::string& dir,
                           const std::vector<graph::TransactionRecord>&
                               records,
                           size_t batch, int reader_threads) {
  stream::StreamingOptions options;
  options.dir = dir;
  options.num_shards = 2;
  options.num_replicas = 2;
  auto plan = fault::FaultPlan::Parse(
      "seed=20260805,kill_replica=1,torn_write=0.001,"
      "stall_compaction=0.0005");
  XF_CHECK(plan.ok()) << plan.status().ToString();
  options.plan = plan.value();
  auto topo = stream::StreamingTopology::Open(std::move(options));
  XF_CHECK(topo.ok()) << topo.status().ToString();
  stream::StreamingTopology* t = topo.value().get();

  core::DetectorConfig model_config;
  model_config.feature_dim =
      static_cast<int64_t>(records[0].features.size());
  model_config.hidden_dim = 16;
  model_config.num_heads = 2;
  model_config.num_layers = 1;
  Rng model_rng(kSeedA);
  core::XFraudDetector model(model_config, &model_rng);
  serve::ServiceOptions service_options;
  service_options.deadline_s = 0.0;  // determinism study, not latency
  serve::ScoringService service(&model, t->features(), service_options);

  t->ingestor()->StartCompactor(Clock::Real(), /*interval_s=*/0.002,
                                t->injector());

  IngestStats stats;
  std::vector<double> publish_ms;
  std::atomic<bool> done{false};
  std::atomic<int64_t> scored{0};

  // Readers: pin the latest epoch, score a transaction against it, and
  // remember (request_id, node, score) plus the still-pinned view for the
  // replay audit — an audited epoch stays pinned to the end, so compaction
  // must preserve it no matter how far the writer advances.
  struct Scored {
    int64_t request_id;
    int32_t node;
    double score;
    stream::GraphView view;
  };
  std::mutex audit_mu;
  std::vector<Scored> audit;
  std::vector<std::thread> readers;
  for (int r = 0; r < reader_threads; ++r) {
    readers.emplace_back([&, r] {
      int64_t request_id = 1000000 * (r + 1);
      while (!done.load(std::memory_order_relaxed)) {
        auto view = t->OpenView();
        if (!view.ok()) continue;  // nothing published yet
        // Node 0 is the first transaction — present in every epoch.
        const int32_t node = 0;
        auto resp = service.ScoreAt(++request_id, node, /*deadline_s=*/0.0,
                                    view.value().epoch());
        XF_CHECK(resp.ok()) << resp.status().ToString();
        scored.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(audit_mu);
        if (audit.size() < 64) {
          audit.push_back({request_id, node, resp.value().score,
                           std::move(view).value()});
        }
      }
    });
  }

  // Writer: the bench's timed section — publish latency under chaos.
  size_t next = 0;
  while (next < records.size()) {
    for (size_t i = 0; i < batch && next < records.size(); ++i) {
      Status s = t->ingestor()->Append(records[next++]);
      XF_CHECK(s.ok()) << s.ToString();
    }
    WallTimer timer;
    Result<uint64_t> epoch = t->ingestor()->PublishEpoch();
    while (!epoch.ok()) {
      ++stats.publish_retries;
      epoch = t->ingestor()->PublishEpoch();
    }
    publish_ms.push_back(timer.ElapsedSeconds() * 1e3);
    ++stats.epochs;
  }
  done.store(true);
  for (auto& th : readers) th.join();
  t->ingestor()->StopCompactor();

  // The replay audit: every sampled (request, epoch) score reproduces
  // bit-identically after ingest finished and the compactor ran — the
  // audited epochs stayed pinned, so GC worked around them. A mismatch
  // aborts the bench.
  for (Scored& s : audit) {
    auto again = service.ScoreAt(s.request_id, s.node, /*deadline_s=*/0.0,
                                 s.view.epoch());
    XF_CHECK(again.ok()) << again.status().ToString();
    XF_CHECK(again.value().score == s.score)
        << "torn read: epoch " << s.view.epoch() << " request "
        << s.request_id;
    s.view.Release();
  }

  stats.txns = static_cast<int64_t>(next);
  stats.publish_p50_ms = Percentile(publish_ms, 0.5);
  stats.publish_p99_ms = Percentile(publish_ms, 0.99);
  stats.scores = scored.load();
  stats.torn_writes = t->injector()->injected_torn_writes();
  stats.compaction_stalls = t->injector()->injected_compaction_stalls();
  stats.compaction_cycles = t->ingestor()->compaction_cycles();
  return stats;
}

void Run() {
  PrintHeader("Continuous-ingest chaos harness",
              "streaming robustness study (DESIGN.md §15; epoch/MVCC "
              "snapshots under kill_replica/torn_write/stall_compaction)");

  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.feature_dim = 16;
  if (FastMode()) {
    config.num_buyers = 150;
    config.txns_per_buyer_mean = 2.0;
    config.num_fraud_rings = 4;
    config.num_stolen_cards = 8;
  }
  data::TransactionGenerator gen(config);
  const std::vector<graph::TransactionRecord> records =
      gen.GenerateRecords();
  const size_t batch = FastMode() ? 25 : 100;
  const int readers = 2;
  const std::string dir = "/tmp/xfraud-bench-continuous-ingest";
  XF_CHECK_EQ(std::system(("rm -rf " + dir).c_str()), 0);

  WallTimer total;
  IngestStats stats = RunChaosIngest(dir, records, batch, readers);
  const double ingest_s = total.ElapsedSeconds();

  TablePrinter table({"metric", "value"});
  table.AddRow({"transactions ingested", std::to_string(stats.txns)});
  table.AddRow({"epochs published", std::to_string(stats.epochs)});
  table.AddRow({"publish retries (torn writes)",
                std::to_string(stats.publish_retries)});
  table.AddRow({"publish p50 (ms)", TablePrinter::Num(stats.publish_p50_ms,
                                                      2)});
  table.AddRow({"publish p99 (ms)", TablePrinter::Num(stats.publish_p99_ms,
                                                      2)});
  table.AddRow({"ingest throughput (txn/s)",
                TablePrinter::Num(static_cast<double>(stats.txns) /
                                      ingest_s,
                                  1)});
  table.AddRow({"concurrent pinned-epoch scores",
                std::to_string(stats.scores)});
  table.AddRow({"injected torn writes", std::to_string(stats.torn_writes)});
  table.AddRow({"injected compaction stalls",
                std::to_string(stats.compaction_stalls)});
  table.AddRow({"compaction cycles", std::to_string(stats.compaction_cycles)});
  table.Print(std::cout);
  std::cout << "replay audit: every sampled pinned-epoch score reproduced "
               "bit-identically after chaos + compaction\n";

  // Section B: crash-recovery cost — reopen the chaos-written grid.
  WallTimer reopen;
  stream::StreamingOptions options;
  options.dir = dir;
  auto topo = stream::StreamingTopology::Open(std::move(options));
  XF_CHECK(topo.ok()) << topo.status().ToString();
  std::cout << "\nrecovery: reopened " << dir << " (replay + reattach) in "
            << TablePrinter::Num(reopen.ElapsedSeconds() * 1e3, 1)
            << " ms at epoch "
            << topo.value()->epochs()->published_epoch() << " with "
            << topo.value()->ingestor()->num_nodes() << " nodes\n";

  EmitObsSnapshot();
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::bench::InitObsFromEnv();
  xfraud::bench::Run();
  return 0;
}
