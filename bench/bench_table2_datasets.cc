// Regenerates paper Table 2 (dataset summary), Table 6 (node-type counts)
// and the Figure 1 / Table 5 landscape rows for the simulated datasets that
// substitute the proprietary eBay graphs (DESIGN.md §1).

#include "bench_common.h"

namespace xfraud::bench {
namespace {

void Run() {
  PrintHeader("Dataset statistics",
              "Table 2 (dataset summary), Table 6 (node type counts), "
              "Figure 1 / Table 5 (edges-per-node landscape)");

  struct Spec {
    std::string name;
    data::GeneratorConfig config;
    std::string paper_analogue;
  };
  std::vector<Spec> specs = {
      {"sim-small", data::TransactionGenerator::SimSmall(),
       "eBay-small (289K nodes, 613K edges, 4.30% fraud, 114-d)"},
      {"sim-large", data::TransactionGenerator::SimLarge(),
       "eBay-large (8.9M nodes, 13.2M edges, 3.57% fraud, 480-d)"},
  };
  if (!FastMode()) {
    specs.push_back({"sim-xlarge", data::TransactionGenerator::SimXLarge(),
                     "eBay-xlarge (1.1B nodes, 3.7B edges, 4.33% fraud, "
                     "480-d)"});
  }

  TablePrinter table2({"Dataset", "Features", "Graph type", "#Nodes",
                       "#Edges(undirected)", "Fraud%", "Edges/Node"});
  TablePrinter table6({"Dataset", "txn", "pmt", "email", "addr", "buyer"});

  for (const auto& spec : specs) {
    WallTimer timer;
    data::SimDataset ds =
        data::TransactionGenerator::Make(spec.config, spec.name);
    const auto& g = ds.graph;
    int64_t undirected = g.num_edges() / 2;
    table2.AddRow({spec.name, std::to_string(g.feature_dim()), "hetero",
                   std::to_string(g.num_nodes()), std::to_string(undirected),
                   TablePrinter::Num(g.FraudRate() * 100.0, 2) + "%",
                   TablePrinter::Num(static_cast<double>(undirected) /
                                         g.num_nodes(),
                                     2)});
    auto counts = g.NodeTypeCounts();
    auto pct = [&](graph::NodeType t) {
      int64_t c = counts[static_cast<int>(t)];
      return std::to_string(c) + " (" +
             TablePrinter::Num(100.0 * c / g.num_nodes(), 1) + "%)";
    };
    table6.AddRow({spec.name, pct(graph::NodeType::kTxn),
                   pct(graph::NodeType::kPmt), pct(graph::NodeType::kEmail),
                   pct(graph::NodeType::kAddr),
                   pct(graph::NodeType::kBuyer)});
    std::cout << "built " << spec.name << " in "
              << TablePrinter::Num(timer.ElapsedSeconds(), 1) << "s  (paper: "
              << spec.paper_analogue << ")\n";
  }

  std::cout << "\nTable 2 analogue (simulated datasets):\n";
  table2.Print(std::cout);
  std::cout << "\nTable 6 analogue (node type mix):\n";
  table6.Print(std::cout);

  std::cout << "\nFigure 1 / Table 5 context (edges-per-node of published "
               "hetero graphs vs ours):\n";
  TablePrinter landscape({"Dataset", "#Nodes", "#Edges", "Edges/Node"});
  landscape.AddRow({"OAG (HGT)", "179M", "2B", "11.17"});
  landscape.AddRow({"GEM-graph", "8M", "10M", "1.67"});
  landscape.AddRow({"eBay-small (paper)", "288,853", "612,904", "2.12"});
  landscape.AddRow({"eBay-large (paper)", "8,857,866", "13,158,984", "1.49"});
  landscape.AddRow({"eBay-xlarge (paper)", "1.1B", "3.7B", "3.36"});
  landscape.Print(std::cout);
  std::cout << "\nTakeaway: the simulated graphs sit in the same sparse "
               "regime (~1.5-3.4 edges/node) that motivates detector+'s "
               "cheap sampler (paper §3.2.3).\n";
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::Run();
  return 0;
}
