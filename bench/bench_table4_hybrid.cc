// Regenerates paper Table 4 (top-k hit rates of the hybrid explainer on the
// 20 test communities) and Table 12 (train/test hit rates of edge
// betweenness, GNNExplainer, hybrid-ridge and hybrid-grid across k, with the
// grid's learned centrality coefficient A), plus the Appendix F polynomial
// degree scan.

#include "bench_common.h"

namespace xfraud::bench {
namespace {

void Run() {
  PrintHeader("Hybrid explainer",
              "Table 4 (test hit rates), Table 12 (train/test + learned A), "
              "Appendix F polynomial-degree scan");

  explain::StudyOptions options;
  if (FastMode()) {
    options.detector_epochs = 6;
    options.all_measures = false;
  }
  explain::CommunityStudy study(options);
  std::cout << "study: " << study.communities().size()
            << " communities, 21 train / "
            << study.communities().size() - 21 << " test (paper: 21/20)\n";

  // The hybrid uses the best top-5 centrality from Table 1: edge
  // betweenness (paper Appendix F).
  auto all = study.Weights(explain::CentralityMeasure::kEdgeBetweenness);
  std::vector<explain::CommunityWeights> train, test;
  explain::CommunityStudy::SplitTrainTest(all, &train, &test);

  Rng rng(7);
  auto mean_rate = [&rng](const std::vector<explain::CommunityWeights>& set,
                          int k, auto weight_of) {
    double total = 0.0;
    for (const auto& c : set) {
      total += explain::TopkHitRate(c.human, weight_of(c), k, &rng);
    }
    return set.empty() ? 0.0 : total / set.size();
  };

  const std::vector<int> ks = {5, 10, 15, 20, 25, 30, 35, 40, 45};
  TablePrinter t12({"H(_)", "EdgeBetw train", "EdgeBetw test",
                    "GNNExpl train", "GNNExpl test", "Hyb(ridge) train",
                    "Hyb(ridge) test", "Hyb(grid) train", "Hyb(grid) test",
                    "A_train(grid)"});
  TablePrinter t4({"H(_)", "Edge betweenness H(c)", "GNNExplainer H(e)",
                   "Hybrid (ridge) H(h)", "Hybrid (grid) H(h)"});

  for (int k : ks) {
    explain::HybridExplainer ridge =
        explain::HybridExplainer::FitRidge(train, k, &rng);
    explain::HybridExplainer grid =
        explain::HybridExplainer::FitGrid(train, k, &rng);

    auto centrality_of = [](const explain::CommunityWeights& c) {
      return c.centrality;
    };
    auto explainer_of = [](const explain::CommunityWeights& c) {
      return c.explainer;
    };
    double c_train = mean_rate(train, k, centrality_of);
    double c_test = mean_rate(test, k, centrality_of);
    double e_train = mean_rate(train, k, explainer_of);
    double e_test = mean_rate(test, k, explainer_of);
    double r_train = ridge.MeanHitRate(train, k, &rng);
    double r_test = ridge.MeanHitRate(test, k, &rng);
    double g_train = grid.MeanHitRate(train, k, &rng);
    double g_test = grid.MeanHitRate(test, k, &rng);

    t12.AddRow({"Top" + std::to_string(k), TablePrinter::Num(c_train, 4),
                TablePrinter::Num(c_test, 4), TablePrinter::Num(e_train, 4),
                TablePrinter::Num(e_test, 4), TablePrinter::Num(r_train, 4),
                TablePrinter::Num(r_test, 4), TablePrinter::Num(g_train, 4),
                TablePrinter::Num(g_test, 4),
                TablePrinter::Num(grid.a(), 2)});
    if (k <= 25) {
      t4.AddRow({"Top" + std::to_string(k), TablePrinter::Num(c_test, 4),
                 TablePrinter::Num(e_test, 4), TablePrinter::Num(r_test, 4),
                 TablePrinter::Num(g_test, 4)});
    }
  }

  std::cout << "\nTable 4 analogue (test communities):\n";
  t4.Print(std::cout);
  std::cout << "(paper shape: the hybrid is at least as good as the better "
               "of its two components at most k)\n";

  std::cout << "\nTable 12 analogue (train/test + grid coefficient A):\n";
  t12.Print(std::cout);

  Rng poly_rng(13);
  int best_degree = explain::BestPolynomialDegree(train, 10, &poly_rng, 3);
  std::cout << "\nAppendix F polynomial scan: best feature degree d = "
            << best_degree << " (paper: d = 1, a linear combination)\n";
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::Run();
  return 0;
}
