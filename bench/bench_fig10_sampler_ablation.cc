// Regenerates paper Figure 10 and §4.2: the ablation of xFraud detector
// (= HGT, with HGSampling) vs xFraud detector+ (GraphSAGE-style sampler) on
// the small and large datasets — total inference time on the test set and
// the resulting AUC. The network is identical; only the sampler differs
// (§3.2.3), and on sparse transaction graphs HGSampling's type-budget
// bookkeeping makes it markedly more expensive at matched coverage.

#include "bench_common.h"

namespace xfraud::bench {
namespace {

struct AblationRow {
  std::string dataset;
  std::string variant;
  double auc = 0.0;
  double train_epoch_s = 0.0;
  double inference_total_s = 0.0;
};

AblationRow RunVariant(const data::SimDataset& ds, bool use_hgt_sampler,
                       int epochs) {
  AblationRow row;
  row.dataset = ds.name;
  row.variant = use_hgt_sampler ? "detector (HGT / HGSampling)"
                                : "detector+ (GraphSAGE sampler)";

  Rng rng(kSeedA);
  core::XFraudDetector model(DetectorConfigFor(ds.graph), &rng);

  // Matched coverage: both samplers target ~2-hop neighbourhoods of similar
  // size. HGSampling's width scales with the batch (as pyHGT's
  // sampled_number does), which is exactly where its per-candidate budget
  // bookkeeping gets expensive on sparse graphs (§3.2.3).
  sample::SageSampler sage(2, 12);
  sample::HgSampler hgt(4, 4, /*width_per_seed=*/true);
  const sample::Sampler* sampler =
      use_hgt_sampler ? static_cast<const sample::Sampler*>(&hgt)
                      : static_cast<const sample::Sampler*>(&sage);

  train::TrainOptions opts = BenchTrainOptions(kSeedA, epochs);
  train::Trainer trainer(&model, sampler, opts);
  auto result = trainer.Train(ds);
  row.train_epoch_s = result.mean_epoch_seconds;

  WallTimer timer;
  auto eval = trainer.Evaluate(ds.graph, ds.test_nodes, /*batch_size=*/640);
  row.inference_total_s = timer.ElapsedSeconds();
  row.auc = eval.auc;
  return row;
}

void Run() {
  PrintHeader("Sampler ablation: detector (HGT) vs detector+",
              "Figure 10 (total test inference time, log scale, and AUC on "
              "the small and large datasets)");

  bool fast = FastMode();
  std::vector<data::GeneratorConfig> configs = {
      data::TransactionGenerator::SimSmall()};
  std::vector<std::string> names = {"sim-small"};
  if (!fast) {
    configs.push_back(data::TransactionGenerator::SimLarge());
    names.push_back("sim-large");
  }
  int epochs = fast ? 3 : 8;

  TablePrinter table({"Dataset", "Variant", "AUC", "Train (s/epoch)",
                      "Test inference (s total)", "Speedup"});
  for (size_t i = 0; i < configs.size(); ++i) {
    data::SimDataset ds =
        data::TransactionGenerator::Make(configs[i], names[i]);
    AblationRow hgt = RunVariant(ds, /*use_hgt_sampler=*/true, epochs);
    AblationRow sage = RunVariant(ds, /*use_hgt_sampler=*/false, epochs);
    table.AddRow({hgt.dataset, hgt.variant, TablePrinter::Num(hgt.auc, 4),
                  TablePrinter::Num(hgt.train_epoch_s, 3),
                  TablePrinter::Num(hgt.inference_total_s, 3), "1.0x"});
    table.AddRow({sage.dataset, sage.variant, TablePrinter::Num(sage.auc, 4),
                  TablePrinter::Num(sage.train_epoch_s, 3),
                  TablePrinter::Num(sage.inference_total_s, 3),
                  TablePrinter::Num(
                      hgt.inference_total_s / sage.inference_total_s, 1) +
                      "x"});
  }
  table.Print(std::cout);
  std::cout << "(paper shape: detector+ is ~5-7x faster at inference with "
               "equal or slightly better AUC — 0.7248 vs 0.7262 on small, "
               "0.8683 vs 0.8690 on large)\n";
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::InitObsFromEnv();
  xfraud::bench::Run();
  xfraud::bench::EmitObsSnapshot();
  return 0;
}
