// Regenerates the Appendix H.5 production protocol: score period T with a
// model trained on earlier periods, comparing a stale period-0 model, an
// incrementally fine-tuned model, and a from-scratch cumulative retrain.
// The paper argues for combining historical and up-to-date data because
// ring attacks are "cultivated" over time and burst late; the generator
// plants exactly those bursts.

#include "bench_common.h"

#include "xfraud/train/incremental.h"

namespace xfraud::bench {
namespace {

void Run() {
  PrintHeader("Incremental / online retraining",
              "Appendix H.5 (production scenario: periodic model updates)");

  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.num_periods = 5;
  config.num_buyers = FastMode() ? 1200 : 2500;
  config.num_fraud_rings = FastMode() ? 12 : 24;
  config.num_stolen_cards = FastMode() ? 24 : 48;
  data::TransactionGenerator generator(config);
  auto records = generator.GenerateRecords();
  std::cout << "log: " << records.size() << " transactions over "
            << config.num_periods << " periods\n";

  train::IncrementalOptions options;
  options.detector.feature_dim = config.feature_dim;
  options.train = BenchTrainOptions(kSeedA, FastMode() ? 4 : 10);
  options.finetune_epochs = FastMode() ? 2 : 4;
  train::IncrementalEvaluation evaluation(options);
  auto reports = evaluation.Run(records);

  TablePrinter table({"Period", "#Txns", "stale (train@0)",
                      "incremental (fine-tune)", "cumulative (retrain)"});
  double stale_sum = 0, inc_sum = 0, cum_sum = 0;
  for (const auto& r : reports) {
    table.AddRow({std::to_string(r.period), std::to_string(r.transactions),
                  TablePrinter::Num(r.stale_auc, 4),
                  TablePrinter::Num(r.incremental_auc, 4),
                  TablePrinter::Num(r.cumulative_auc, 4)});
    stale_sum += r.stale_auc;
    inc_sum += r.incremental_auc;
    cum_sum += r.cumulative_auc;
  }
  table.Print(std::cout);
  double n = static_cast<double>(reports.size());
  std::cout << "means: stale " << TablePrinter::Num(stale_sum / n, 4)
            << ", incremental " << TablePrinter::Num(inc_sum / n, 4)
            << ", cumulative " << TablePrinter::Num(cum_sum / n, 4) << "\n";
  std::cout << "(expected shape: incremental >= stale, cumulative the upper "
               "bound — periodic updates pay off because new rings keep "
               "appearing, Appendix H.5)\n";
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::InitObsFromEnv();
  xfraud::bench::Run();
  xfraud::bench::EmitObsSnapshot();
  return 0;
}
