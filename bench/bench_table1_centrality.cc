// Regenerates paper Table 1 (top-k hit rate of the 13 centrality measures,
// GNNExplainer, and random weights against human annotations on all 41
// communities) and Figure 7 (the per-community centrality-vs-explainer
// trade-off that motivates the hybrid explainer).

#include "bench_common.h"

namespace xfraud::bench {
namespace {

void Run() {
  PrintHeader("Explainability micro-benchmark",
              "Table 1 (hit rates of 13 centrality measures vs GNNExplainer "
              "vs random), Figure 7 (per-community trade-off)");

  explain::StudyOptions options;
  if (FastMode()) {
    options.detector_epochs = 6;
    options.all_measures = false;
  }
  WallTimer timer;
  explain::CommunityStudy study(options);
  std::cout << "study: " << study.communities().size()
            << " communities (paper: 41; 18 fraud-seeded, 23 benign), "
            << "detector test AUC "
            << TablePrinter::Num(study.test_auc(), 4)
            << " (paper sample AUC 0.8188), built in "
            << TablePrinter::Num(timer.ElapsedSeconds(), 1) << "s\n";
  int64_t edges = 0;
  for (const auto& c : study.communities()) {
    edges += static_cast<int64_t>(c.undirected.size());
  }
  std::cout << "avg edges per community: "
            << TablePrinter::Num(
                   static_cast<double>(edges) / study.communities().size(), 1)
            << " (paper: 81.56)\n";

  const std::vector<int> ks = {5, 10, 15, 20, 25};
  Rng rng(99);
  TablePrinter table({"Measure", "H_Top5", "H_Top10", "H_Top15", "H_Top20",
                      "H_Top25"});

  auto row_for = [&](const std::string& name,
                     const std::function<double(
                         const explain::CommunityRecord&, int)>& rate) {
    std::vector<std::string> row = {name};
    for (int k : ks) {
      double total = 0.0;
      for (const auto& c : study.communities()) total += rate(c, k);
      row.push_back(
          TablePrinter::Num(total / study.communities().size(), 3));
    }
    table.AddRow(row);
  };

  for (int m = 0; m < explain::kNumCentralityMeasures; ++m) {
    auto measure = static_cast<explain::CentralityMeasure>(m);
    if (!options.all_measures &&
        (measure == explain::CentralityMeasure::kCommunicabilityBetweenness ||
         measure == explain::CentralityMeasure::kSubgraph)) {
      continue;
    }
    row_for(explain::CentralityMeasureName(measure),
            [&, m](const explain::CommunityRecord& c, int k) {
              return explain::TopkHitRate(c.human_edges,
                                          c.centrality_edges[m], k, &rng);
            });
  }
  row_for("GNNExplainer weights",
          [&](const explain::CommunityRecord& c, int k) {
            return explain::TopkHitRate(c.human_edges, c.explainer_edges, k,
                                        &rng);
          });
  row_for("random weights", [&](const explain::CommunityRecord& c, int k) {
    return explain::RandomHitRate(c.human_edges, k, &rng, 10);
  });
  std::cout << "\nTable 1 analogue:\n";
  table.Print(std::cout);
  std::cout << "(paper shape: all informed measures cluster well above "
               "random; no single measure dominates)\n";

  // ---- Figure 7: per-community delta H(e) - H(c) --------------------------
  std::cout << "\nFigure 7 analogue: per-community H(e) - H(c) at top10 "
               "(best-4 centrality measures)\n";
  const explain::CentralityMeasure best4[] = {
      explain::CentralityMeasure::kEdgeBetweenness,
      explain::CentralityMeasure::kDegree,
      explain::CentralityMeasure::kEdgeLoad,
      explain::CentralityMeasure::kCloseness,
  };
  for (auto measure : best4) {
    std::cout << explain::CentralityMeasureName(measure) << ": ";
    int explainer_wins = 0, centrality_wins = 0;
    for (const auto& c : study.communities()) {
      double he =
          explain::TopkHitRate(c.human_edges, c.explainer_edges, 10, &rng);
      double hc = explain::TopkHitRate(
          c.human_edges, c.centrality_edges[static_cast<int>(measure)], 10,
          &rng);
      double delta = he - hc;
      explainer_wins += delta > 0.02;
      centrality_wins += delta < -0.02;
      std::cout << (delta > 0.02 ? "+" : (delta < -0.02 ? "-" : "."));
    }
    std::cout << "  (explainer wins " << explainer_wins
              << ", centrality wins " << centrality_wins << ")\n";
  }
  std::cout << "(paper shape: signs alternate across communities — neither "
               "measure dominates, motivating the hybrid explainer)\n";
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::Run();
  return 0;
}
