// The paper's end-to-end evaluation on eBay-xlarge, regenerated on
// sim-xlarge (DESIGN.md §1):
//   Table 3 / Table 7 — AUC/AP/accuracy, train s/epoch, inference s/batch
//                        for GAT, GEM, xFraud detector+ on 8 and 16 workers,
//                        seeds A and B;
//   Figure 8  — precision/recall curves per setting;
//   Figure 9  — ROC curves for FPR < 0.1;  Figure 15 — full-range ROC;
//   Figure 14 — convergence (val AUC per epoch);
//   Tables 14-16 — TPR/FNR/FPR/TNR at score thresholds;
//   Tables 17-19 — precision/recall at score thresholds + the Appendix H.4
//                  production back-projection.
//
// All 12 runs share one synthetic workload; "train s/epoch" is the
// simulated cluster epoch time (max over workers of measured per-worker
// compute + modeled sync; this host has one core — see DESIGN.md).

#include <cmath>
#include <map>

#include "bench_common.h"

namespace xfraud::bench {
namespace {

struct RunResult {
  std::string model;
  int workers = 8;
  std::string seed_name;
  train::EvalResult test;
  dist::DistributedResult dist;
};

RunResult RunOne(const data::SimDataset& ds, const std::string& model_name,
                 int workers, const std::string& seed_name, uint64_t seed,
                 int epochs) {
  std::vector<std::unique_ptr<core::GnnModel>> replicas;
  std::vector<core::GnnModel*> ptrs;
  for (int w = 0; w < workers; ++w) {
    replicas.push_back(MakeModel(model_name, ds.graph, seed));
    ptrs.push_back(replicas.back().get());
  }
  sample::SageSampler sampler(2, 12);
  dist::DistributedOptions options;
  options.num_workers = workers;
  options.num_clusters = 128;
  options.train = BenchTrainOptions(seed, epochs);

  RunResult out;
  out.model = model_name;
  out.workers = workers;
  out.seed_name = seed_name;
  dist::DistributedTrainer trainer(ptrs, &sampler, options);
  out.dist = trainer.Train(ds);

  // Test-set scores + per-batch timings via replica 0 on the full graph
  // (batch of 640 nodes, like the paper's inference measurements).
  // Trainer::Evaluate runs the BatchLoader pipeline and reports sampling
  // and model-forward time separately — the paper's "inference (s/batch)"
  // is the forward column.
  sample::SageSampler eval_sampler(2, 12);
  train::TrainOptions eval_opts;
  eval_opts.seed = seed ^ 0xFEED;
  eval_opts.num_sample_workers = SampleWorkersFromEnv();
  train::Trainer evaluator(ptrs[0], &eval_sampler, eval_opts);
  out.test = evaluator.Evaluate(ds.graph, ds.test_nodes, 640);
  return out;
}

void PrintCurves(const std::vector<RunResult>& runs) {
  std::cout << "\n-- Figure 8 analogue: precision/recall curves "
               "(per model, seed A, both worker counts) --\n";
  for (const auto& r : runs) {
    if (r.seed_name != "A") continue;
    auto curve = train::ThinCurve(train::PrCurve(r.test.scores,
                                                 r.test.labels),
                                  12);
    std::cout << r.model << " (" << r.workers << " workers): ";
    for (const auto& p : curve) {
      std::cout << "(r=" << TablePrinter::Num(p.x, 2)
                << ",p=" << TablePrinter::Num(p.y, 2) << ") ";
    }
    std::cout << "\n";
  }

  std::cout << "\n-- Figure 9 analogue: ROC, zoom FPR < 0.1 --\n";
  for (const auto& r : runs) {
    if (r.seed_name != "A") continue;
    auto curve = train::RocCurve(r.test.scores, r.test.labels);
    std::vector<train::CurvePoint> zoom;
    for (const auto& p : curve) {
      if (p.x <= 0.1) zoom.push_back(p);
    }
    zoom = train::ThinCurve(zoom, 10);
    std::cout << r.model << " (" << r.workers << " workers): ";
    for (const auto& p : zoom) {
      std::cout << "(fpr=" << TablePrinter::Num(p.x, 3)
                << ",tpr=" << TablePrinter::Num(p.y, 3) << ") ";
    }
    std::cout << "\n";
  }

  std::cout << "\n-- Figure 15 analogue: ROC, full range --\n";
  for (const auto& r : runs) {
    if (r.seed_name != "A") continue;
    auto curve =
        train::ThinCurve(train::RocCurve(r.test.scores, r.test.labels), 10);
    std::cout << r.model << " (" << r.workers << " workers): ";
    for (const auto& p : curve) {
      std::cout << "(" << TablePrinter::Num(p.x, 2) << ","
                << TablePrinter::Num(p.y, 2) << ") ";
    }
    std::cout << "\n";
  }
}

void PrintThresholdTables(const std::vector<RunResult>& runs) {
  const std::vector<double> coarse = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9};
  std::cout << "\n-- Tables 14-16 analogue: TPR / TNR at thresholds "
               "(FNR = 1-TPR, FPR = 1-TNR) --\n";
  TablePrinter rates({"Model", "workers", "seed", "metric", "0.1", "0.3",
                      "0.5", "0.7", "0.9"});
  for (const auto& r : runs) {
    std::vector<std::string> tpr_row = {r.model, std::to_string(r.workers),
                                        r.seed_name, "TPR"};
    std::vector<std::string> tnr_row = {r.model, std::to_string(r.workers),
                                        r.seed_name, "TNR"};
    for (double t : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      auto m = train::MetricsAtThreshold(r.test.scores, r.test.labels, t);
      tpr_row.push_back(m.any_predicted_positive
                            ? TablePrinter::Num(m.tpr, 4)
                            : "-");
      tnr_row.push_back(TablePrinter::Num(m.tnr, 4));
    }
    rates.AddRow(tpr_row);
    rates.AddRow(tnr_row);
  }
  rates.Print(std::cout);

  std::cout << "\n-- Tables 17-19 analogue: precision / recall at "
               "thresholds --\n";
  TablePrinter pr({"Model", "workers", "seed", "metric", "0.5", "0.7", "0.9",
                   "0.95", "0.98"});
  for (const auto& r : runs) {
    std::vector<std::string> p_row = {r.model, std::to_string(r.workers),
                                      r.seed_name, "precision"};
    std::vector<std::string> r_row = {r.model, std::to_string(r.workers),
                                      r.seed_name, "recall"};
    for (double t : {0.5, 0.7, 0.9, 0.95, 0.98}) {
      auto m = train::MetricsAtThreshold(r.test.scores, r.test.labels, t);
      p_row.push_back(m.any_predicted_positive
                          ? TablePrinter::Num(m.precision, 4)
                          : "-");
      r_row.push_back(m.any_predicted_positive
                          ? TablePrinter::Num(m.recall, 4)
                          : "-");
    }
    pr.AddRow(p_row);
    pr.AddRow(r_row);
  }
  pr.Print(std::cout);

  // Appendix H.4: high-precision operating point of detector+ projected
  // back to the pre-downsampling stream (1% benign kept).
  std::cout << "\n-- Appendix H.4: production back-projection (detector+, "
               "seed A, 8 workers) --\n";
  for (const auto& r : runs) {
    if (r.model != "xFraud detector+" || r.workers != 8 ||
        r.seed_name != "A") {
      continue;
    }
    // Find thresholds giving ~0.1 / ~0.2 recall.
    for (double target_recall : {0.1, 0.2, 0.3}) {
      double best_t = 0.5;
      for (double t = 0.999; t > 0.5; t -= 0.001) {
        auto m = train::MetricsAtThreshold(r.test.scores, r.test.labels, t);
        if (m.recall >= target_recall) {
          best_t = t;
          break;
        }
      }
      auto m = train::MetricsAtThreshold(r.test.scores, r.test.labels,
                                         best_t);
      double projected = train::BackProjectPrecision(m.precision, 0.01);
      std::cout << "recall~" << target_recall << ": threshold "
                << TablePrinter::Num(best_t, 3) << ", sampled precision "
                << TablePrinter::Num(m.precision, 3)
                << " -> stream precision "
                << TablePrinter::Num(projected, 3) << " (paper: 0.98->0.32 "
                << "at recall 0.1; 0.95->0.16 at recall 0.2)\n";
    }
  }
}

// Batch pipeline ablation (sim-small, single replica): the same training
// run with 0 / 2 / 4 sampler workers. Loss trajectories are bit-identical
// by construction (per-batch RNG streams), so the only difference is where
// sampling time goes: serially before each step, or overlapped with it.
//
// The config is the sampling-bound corner of the design space — the
// HGSampling sampler (whose per-type budget bookkeeping makes it the
// expensive sampler, the effect Figure 10 measures) feeding a small
// detector — because that is where a prefetch pipeline has anything to
// hide; with detector+'s SageSampler, sampling is <1% of an epoch and
// pipelining is free but irrelevant. Each row reports its own measured
// sample/compute split plus the overlap-model epoch time derived from
// those same measurements (sample + compute serial, max(sample, compute)
// pipelined), so the speedup column is insensitive to machine load.
// On a multi-core host the wall column itself shows the win; this
// reproduction host has one core, so concurrency is modeled, like the
// distributed simulation (DESIGN.md §1).
void PipelineAblation(int epochs) {
  std::cout << "\n-- Batch pipeline ablation: serial vs pipelined sampling "
               "(detector/HGSampling, sim-small, seed A) --\n";
  data::SimDataset small = data::TransactionGenerator::Make(
      data::TransactionGenerator::SimSmall(), "sim-small");
  TablePrinter table({"sample workers", "epoch s (wall)", "sample s/epoch",
                      "compute s/epoch", "epoch s (overlap model)",
                      "model speedup", "final loss"});
  double serial_loss = 0.0;
  bool identical = true;
  for (int workers : {0, 2, 4}) {
    Rng model_rng(kSeedA);
    core::DetectorConfig dc;
    dc.feature_dim = small.graph.feature_dim();
    dc.hidden_dim = 8;
    dc.num_heads = 2;
    dc.num_layers = 1;
    core::XFraudDetector model(dc, &model_rng);
    sample::HgSampler sampler(/*depth=*/6, /*width=*/192);
    train::TrainOptions opts = BenchTrainOptions(kSeedA, epochs);
    opts.num_sample_workers = workers;
    train::Trainer trainer(&model, &sampler, opts);
    train::TrainResult result = trainer.Train(small);
    double sample = result.mean_epoch_sample_seconds;
    double compute = result.mean_epoch_compute_seconds;
    double serial_modeled = sample + compute;
    double modeled = workers > 0 ? std::max(sample, compute) : serial_modeled;
    double final_loss = result.history.back().train_loss;
    if (workers == 0) {
      serial_loss = final_loss;
    } else if (final_loss != serial_loss) {
      identical = false;
    }
    table.AddRow({std::to_string(workers),
                  TablePrinter::Num(result.mean_epoch_seconds, 3),
                  TablePrinter::Num(sample, 3), TablePrinter::Num(compute, 3),
                  TablePrinter::Num(modeled, 3),
                  workers == 0
                      ? std::string("-")
                      : TablePrinter::Num(serial_modeled / modeled, 2) + "x",
                  TablePrinter::Num(final_loss, 6)});
  }
  table.Print(std::cout);
  std::cout << (identical
                    ? "loss trajectories bit-identical across worker counts\n"
                    : "WARNING: loss trajectories diverged across worker "
                      "counts (pipeline determinism bug)\n");
}

void Run() {
  bool fast = FastMode();
  PrintHeader("End-to-end distributed evaluation",
              "Table 3, Table 7, Figures 8/9/14/15, Tables 14-19");

  data::GeneratorConfig config = fast
                                     ? data::TransactionGenerator::SimSmall()
                                     : data::TransactionGenerator::SimXLarge();
  data::SimDataset ds = data::TransactionGenerator::Make(
      config, fast ? "sim-small" : "sim-xlarge");
  std::cout << "dataset: " << ds.name << " (" << ds.graph.num_nodes()
            << " nodes, " << ds.graph.num_edges() / 2 << " undirected edges, "
            << TablePrinter::Num(ds.graph.FraudRate() * 100, 2)
            << "% fraud)\n";

  int epochs = fast ? 3 : 6;
  std::vector<std::string> models = {"GAT", "GEM", "xFraud detector+"};
  std::vector<int> worker_counts = {8, 16};
  std::vector<std::pair<std::string, uint64_t>> seeds = {{"A", kSeedA},
                                                         {"B", kSeedB}};
  std::vector<RunResult> runs;
  for (const auto& model : models) {
    for (int workers : worker_counts) {
      for (const auto& [seed_name, seed] : seeds) {
        WallTimer t;
        runs.push_back(RunOne(ds, model, workers, seed_name, seed, epochs));
        std::cout << "ran " << model << " x" << workers << " seed "
                  << seed_name << " in "
                  << TablePrinter::Num(t.ElapsedSeconds(), 1) << "s (AUC "
                  << TablePrinter::Num(runs.back().test.auc, 4) << ")\n";
      }
    }
  }

  // ---- Table 7 (full) and Table 3 (seed-averaged) ------------------------
  std::cout << "\n-- Table 7 analogue: per-seed results --\n";
  TablePrinter t7({"Model", "# workers", "Seed", "Accuracy", "AP", "AUC",
                   "Train (s/epoch, sim)", "Inference (s/batch)",
                   "Sampling (s/batch)"});
  for (const auto& r : runs) {
    char inference[64];
    std::snprintf(inference, sizeof(inference), "%.4f +/- %.4f",
                  r.test.secs_per_batch_mean, r.test.secs_per_batch_std);
    char sampling[64];
    std::snprintf(sampling, sizeof(sampling), "%.4f +/- %.4f",
                  r.test.sample_secs_per_batch_mean,
                  r.test.sample_secs_per_batch_std);
    t7.AddRow({r.model, std::to_string(r.workers), r.seed_name,
               TablePrinter::Num(r.test.accuracy, 4),
               TablePrinter::Num(r.test.ap, 4),
               TablePrinter::Num(r.test.auc, 4),
               TablePrinter::Num(r.dist.mean_simulated_epoch_seconds, 3),
               inference, sampling});
  }
  t7.Print(std::cout);
  std::cout << "(inference is model forward only; sampling is reported "
               "separately and overlaps it when sample workers are on)\n";

  std::cout << "\n-- Table 3 analogue: averaged over seeds A/B --\n";
  TablePrinter t3({"# workers", "Model", "AUC", "Train (s/epoch, sim)",
                   "Inference (s/batch)", "Speedup vs 8"});
  std::map<std::string, double> epoch8;
  for (int workers : worker_counts) {
    for (const auto& model : models) {
      double auc = 0.0, epoch_s = 0.0, inf = 0.0;
      int n = 0;
      for (const auto& r : runs) {
        if (r.model != model || r.workers != workers) continue;
        auc += r.test.auc;
        epoch_s += r.dist.mean_simulated_epoch_seconds;
        inf += r.test.secs_per_batch_mean;
        ++n;
      }
      auc /= n;
      epoch_s /= n;
      inf /= n;
      std::string speedup = "-";
      if (workers == 8) {
        epoch8[model] = epoch_s;
      } else {
        speedup = TablePrinter::Num(epoch8[model] / epoch_s, 2) + "x";
      }
      t3.AddRow({std::to_string(workers), model, TablePrinter::Num(auc, 4),
                 TablePrinter::Num(epoch_s, 3), TablePrinter::Num(inf, 4),
                 speedup});
    }
  }
  t3.Print(std::cout);
  std::cout << "(paper shape: detector+ best AUC; GEM fastest inference; "
               "16 workers ~1.8x faster per epoch with equal-or-lower "
               "AUC)\n";

  // ---- Figure 14: convergence ---------------------------------------------
  std::cout << "\n-- Figure 14 analogue: val AUC per epoch --\n";
  for (const auto& r : runs) {
    std::cout << r.model << " x" << r.workers << " seed " << r.seed_name
              << ": ";
    for (const auto& e : r.dist.history) {
      std::cout << TablePrinter::Num(e.val_auc, 3) << " ";
    }
    std::cout << "\n";
  }

  PrintCurves(runs);
  PrintThresholdTables(runs);
  PipelineAblation(fast ? 2 : 3);
  EmitObsSnapshot();
}

}  // namespace
}  // namespace xfraud::bench

int main() {
  xfraud::SetMinLogLevel(xfraud::LogLevel::kWarning);
  xfraud::bench::InitObsFromEnv();
  xfraud::bench::Run();
  return 0;
}
