#include "xfraud/core/gnn_model.h"

#include "xfraud/common/logging.h"

namespace xfraud::core {

nn::Var ApplyTypedLinear(const std::vector<nn::Linear>& linears,
                         const nn::Var& x,
                         const std::vector<int32_t>& types) {
  XF_CHECK_EQ(static_cast<size_t>(x.rows()), types.size());
  // Group rows by type; apply each type's linear to its group; scatter the
  // disjoint groups back into one output block.
  std::vector<std::vector<int32_t>> rows_by_type(linears.size());
  for (size_t r = 0; r < types.size(); ++r) {
    XF_CHECK_GE(types[r], 0);
    XF_CHECK_LT(static_cast<size_t>(types[r]), linears.size());
    rows_by_type[types[r]].push_back(static_cast<int32_t>(r));
  }
  nn::Var out;
  for (size_t t = 0; t < linears.size(); ++t) {
    if (rows_by_type[t].empty()) continue;
    nn::Var gathered = nn::IndexRows(x, rows_by_type[t]);
    nn::Var mapped = linears[t].Forward(gathered);
    nn::Var scattered = nn::ScatterAddRows(mapped, rows_by_type[t], x.rows());
    out = out.defined() ? nn::Add(out, scattered) : scattered;
  }
  XF_CHECK(out.defined()) << "typed linear over empty input";
  return out;
}

std::vector<double> FraudProbabilities(const nn::Var& logits) {
  nn::Var probs = nn::RowSoftmax(logits);
  std::vector<double> out(probs.rows());
  for (int64_t r = 0; r < probs.rows(); ++r) {
    out[r] = probs.value().At(r, 1);
  }
  return out;
}

}  // namespace xfraud::core
