#include "xfraud/core/detector.h"

#include "xfraud/common/logging.h"

namespace xfraud::core {

using nn::Var;

XFraudDetector::XFraudDetector(DetectorConfig config, xfraud::Rng* rng)
    : config_(config),
      input_proj_(config.feature_dim, config.hidden_dim, rng),
      head_(config.hidden_dim + config.feature_dim, config.hidden_dim, 2,
            config.dropout, rng) {
  // Node-type embeddings are zero-initialized (paper §3.2.2 item (1)).
  node_type_emb_ = Var(nn::Tensor(graph::kNumNodeTypes, config.hidden_dim),
                       /*requires_grad=*/true);
  layers_.reserve(config.num_layers);
  for (int l = 0; l < config.num_layers; ++l) {
    layers_.push_back(std::make_unique<HeteroConvLayer>(
        config.hidden_dim, config.num_heads, config.dropout,
        /*first_layer=*/l == 0, config.use_residual, rng));
  }
}

Var XFraudDetector::Encode(const sample::MiniBatch& batch,
                           const ForwardOptions& options) const {
  Var features = options.features_override != nullptr
                     ? *options.features_override
                     : nn::Constant(batch.features);
  XF_CHECK_EQ(features.cols(), config_.feature_dim);

  // Layer-0 input: projected transaction features plus the (zero-init,
  // learnable) node-type embedding — entities start from their type alone.
  Var h = nn::Add(input_proj_.Forward(features),
                  nn::IndexRows(node_type_emb_, batch.node_types));
  for (const auto& layer : layers_) {
    h = layer->Forward(h, batch.node_types, batch.edge_src, batch.edge_dst,
                       batch.edge_types, options);
  }
  return h;
}

Var XFraudDetector::Forward(const sample::MiniBatch& batch,
                            const ForwardOptions& options) const {
  XF_CHECK(!batch.target_locals.empty());
  Var h = Encode(batch, options);

  // Step (3) of §3.2.1: tanh of the GNN representation, concatenated with
  // the raw transaction features, into the feed-forward head.
  Var target_repr = nn::Tanh(nn::IndexRows(h, batch.target_locals));
  Var features = options.features_override != nullptr
                     ? *options.features_override
                     : nn::Constant(batch.features);
  Var target_raw = nn::IndexRows(features, batch.target_locals);
  Var head_in = nn::ConcatCols(target_repr, target_raw);
  return head_.Forward(head_in, options.training, options.rng);
}

void XFraudDetector::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParameter>* out) const {
  input_proj_.CollectParameters(prefix + "input_proj.", out);
  out->push_back({prefix + "node_type_emb", node_type_emb_});
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l]->CollectParameters(
        prefix + "layer" + std::to_string(l) + ".", out);
  }
  head_.CollectParameters(prefix + "head.", out);
}

}  // namespace xfraud::core
