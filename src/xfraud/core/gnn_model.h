#ifndef XFRAUD_CORE_GNN_MODEL_H_
#define XFRAUD_CORE_GNN_MODEL_H_

#include <string>

#include "xfraud/common/rng.h"
#include "xfraud/nn/modules.h"
#include "xfraud/nn/ops.h"
#include "xfraud/sample/sampler.h"

namespace xfraud::core {

/// Per-forward-pass options shared by the detector and the baselines.
struct ForwardOptions {
  /// Enables dropout and tape construction for parameters.
  bool training = false;
  /// RNG for dropout; required when training.
  xfraud::Rng* rng = nullptr;
  /// Optional [E,1] differentiable edge weights in (0,1], multiplied onto
  /// every per-edge message. This is the hook GNNExplainer's edge mask uses
  /// (paper Fig. 4 right / Appendix D); nullptr means all-ones.
  const nn::Var* edge_mask = nullptr;
  /// Optional [N,F] differentiable replacement of the batch features
  /// (GNNExplainer's node-feature mask applies here); nullptr uses
  /// batch.features as a constant.
  const nn::Var* features_override = nullptr;
};

/// Common interface of the trainable node classifiers: the xFraud detector
/// (core contribution) and the GAT / GEM baselines. Forward returns the
/// [num_targets, 2] logits for batch.target_locals.
class GnnModel : public nn::Module {
 public:
  ~GnnModel() override = default;

  virtual nn::Var Forward(const sample::MiniBatch& batch,
                          const ForwardOptions& options) const = 0;

  virtual std::string name() const = 0;
};

/// Applies per-node-type linear maps: rows of `x` whose type (per `types`)
/// is t go through `linears[t]`. The typed Q/K/V projections of paper
/// eqs. 2-7 are built from this.
nn::Var ApplyTypedLinear(const std::vector<nn::Linear>& linears,
                         const nn::Var& x,
                         const std::vector<int32_t>& types);

/// Fraud probabilities (softmax of the [N, 2] logits' fraud column) — the
/// score every consumer of Forward reports: trainer evaluation, the
/// explainers, the CLI, and the online ScoringService.
std::vector<double> FraudProbabilities(const nn::Var& logits);

}  // namespace xfraud::core

#endif  // XFRAUD_CORE_GNN_MODEL_H_
