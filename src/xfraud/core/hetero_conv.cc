#include "xfraud/core/hetero_conv.h"

#include <cmath>

#include "xfraud/common/logging.h"

namespace xfraud::core {

using nn::Var;

HeteroConvLayer::HeteroConvLayer(int64_t dim, int num_heads, float dropout,
                                 bool first_layer, bool use_residual,
                                 xfraud::Rng* rng)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      dropout_(dropout),
      first_layer_(first_layer),
      use_residual_(use_residual),
      norm_(dim) {
  XF_CHECK_EQ(head_dim_ * num_heads, dim) << "dim must divide num_heads";
  q_linears_.reserve(graph::kNumNodeTypes);
  for (int t = 0; t < graph::kNumNodeTypes; ++t) {
    q_linears_.emplace_back(dim, dim, rng);
    k_linears_.emplace_back(dim, dim, rng);
    v_linears_.emplace_back(dim, dim, rng);
  }
  float bound = std::sqrt(6.0f / static_cast<float>(dim));
  w_att_src_ = Var(nn::Tensor::Uniform(graph::kNumNodeTypes, dim, bound, rng),
                   /*requires_grad=*/true);
  w_att_dst_ = Var(nn::Tensor::Uniform(graph::kNumNodeTypes, dim, bound, rng),
                   /*requires_grad=*/true);
  edge_type_emb_ = Var(nn::Tensor(graph::kNumEdgeTypes, dim, 0.0f),
                       /*requires_grad=*/true);
}

Var HeteroConvLayer::Forward(const Var& node_input,
                             const std::vector<int32_t>& node_types,
                             const std::vector<int32_t>& edge_src,
                             const std::vector<int32_t>& edge_dst,
                             const std::vector<int32_t>& edge_types,
                             const ForwardOptions& options) const {
  int64_t num_nodes = node_input.rows();
  XF_CHECK_EQ(node_input.cols(), dim_);
  XF_CHECK_EQ(edge_src.size(), edge_dst.size());
  XF_CHECK_EQ(edge_src.size(), edge_types.size());
  XF_CHECK_EQ(static_cast<int64_t>(node_types.size()), num_nodes);

  if (edge_src.empty()) {
    // Isolated batch: no messages; normalization + activation only.
    Var h = use_residual_ ? node_input : node_input;
    return nn::Relu(norm_.Forward(h));
  }

  // Per-row (edge or node) type vectors for the typed linears.
  std::vector<int32_t> src_types(edge_src.size());
  std::vector<int32_t> dst_types(edge_src.size());
  for (size_t e = 0; e < edge_src.size(); ++e) {
    XF_DCHECK_BOUNDS(edge_src[e], num_nodes);
    XF_DCHECK_BOUNDS(edge_dst[e], num_nodes);
    XF_DCHECK_BOUNDS(edge_types[e], graph::kNumEdgeTypes);
    src_types[e] = node_types[edge_src[e]];
    dst_types[e] = node_types[edge_dst[e]];
  }

  // Queries are per target node (eqs. 2/3), then gathered per edge.
  Var q_nodes = ApplyTypedLinear(q_linears_, node_input, node_types);
  Var q_edges = nn::IndexRows(q_nodes, edge_dst);

  // Keys/values are per edge: the source state plus — at the first layer —
  // the edge-type embedding (eqs. 4-7).
  Var kv_input = nn::IndexRows(node_input, edge_src);
  if (first_layer_) {
    kv_input = nn::Add(kv_input, nn::IndexRows(edge_type_emb_, edge_types));
  }
  Var k_edges = ApplyTypedLinear(k_linears_, kv_input, src_types);
  Var v_edges = ApplyTypedLinear(v_linears_, kv_input, src_types);

  // Per-edge attention parameter rows selected by endpoint type (eq. 8).
  Var w_src_edges = nn::IndexRows(w_att_src_, src_types);
  Var w_dst_edges = nn::IndexRows(w_att_dst_, dst_types);

  float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Var scores;  // [E, H]
  for (int h = 0; h < num_heads_; ++h) {
    int64_t off = h * head_dim_;
    Var k_h = nn::SliceCols(k_edges, off, head_dim_);
    Var q_h = nn::SliceCols(q_edges, off, head_dim_);
    Var ws_h = nn::SliceCols(w_src_edges, off, head_dim_);
    Var wd_h = nn::SliceCols(w_dst_edges, off, head_dim_);
    Var score_h = nn::Scale(nn::Add(nn::RowSum(nn::Mul(k_h, ws_h)),
                                    nn::RowSum(nn::Mul(q_h, wd_h))),
                            inv_sqrt_dk);
    scores = scores.defined() ? nn::ConcatCols(scores, score_h) : score_h;
  }

  Var agg;
  if (options.edge_mask == nullptr) {
    // Hot path (train + serve): eqs. 9-10 + the eq. 1 aggregate in one
    // fused kernel — softmax-normalize per target, per-head value
    // weighting, scatter-add — instead of five full passes over the [E,D]
    // message block. Bit-identical to the composed ops below, including
    // dropout RNG consumption.
    agg = nn::AttentionAggregate(scores, v_edges, edge_dst, num_nodes,
                                 head_dim_, dropout_, options.training,
                                 options.rng);
  } else {
    // Explainer path: the learned edge mask multiplies the message block
    // between weighting and aggregation, so it stays on the composed ops.
    // eq. 9: normalize over each target's in-neighbourhood, per head.
    Var att = nn::SegmentSoftmax(scores, edge_dst, num_nodes);
    att = nn::Dropout(att, dropout_, options.training, options.rng);

    // eq. 10: per-head value weighting, concatenated back to [E, dim].
    Var messages;
    for (int h = 0; h < num_heads_; ++h) {
      Var v_h = nn::SliceCols(v_edges, h * head_dim_, head_dim_);
      Var att_h = nn::SliceCols(att, h, 1);
      Var msg_h = nn::MulColBroadcast(v_h, att_h);
      messages = messages.defined() ? nn::ConcatCols(messages, msg_h) : msg_h;
    }
    messages = nn::MulColBroadcast(messages, *options.edge_mask);

    // eq. 1 aggregate (paper §3.2.1 step 2).
    agg = nn::ScatterAddRows(messages, edge_dst, num_nodes);
  }
  Var h = use_residual_ ? nn::Add(agg, node_input) : agg;
  return nn::Relu(norm_.Forward(h));
}

void HeteroConvLayer::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParameter>* out) const {
  for (int t = 0; t < graph::kNumNodeTypes; ++t) {
    std::string type_name = graph::NodeTypeName(static_cast<graph::NodeType>(t));
    q_linears_[t].CollectParameters(prefix + "q." + type_name + ".", out);
    k_linears_[t].CollectParameters(prefix + "k." + type_name + ".", out);
    v_linears_[t].CollectParameters(prefix + "v." + type_name + ".", out);
  }
  out->push_back({prefix + "w_att_src", w_att_src_});
  out->push_back({prefix + "w_att_dst", w_att_dst_});
  if (first_layer_) out->push_back({prefix + "edge_type_emb", edge_type_emb_});
  norm_.CollectParameters(prefix + "norm.", out);
}

}  // namespace xfraud::core
