#ifndef XFRAUD_CORE_HETERO_CONV_H_
#define XFRAUD_CORE_HETERO_CONV_H_

#include <vector>

#include "xfraud/core/gnn_model.h"
#include "xfraud/graph/hetero_graph.h"
#include "xfraud/nn/modules.h"

namespace xfraud::core {

/// One heterogeneous convolution layer of the xFraud detector
/// (paper §3.2.2, eqs. 2-10).
///
/// For every edge e = (v_s, v_t) and attention head i:
///   Q^i(v_t) = Q-Linear_{τ(v_t)}^i(input_t)                       (eq. 2/3)
///   K^i(v_s) = K-Linear_{τ(v_s)}^i(input_s [+ φ(e)^emb at l=1])   (eq. 4/5)
///   V^i(v_s) = V-Linear_{τ(v_s)}^i(input_s [+ φ(e)^emb at l=1])   (eq. 6/7)
///   α-head^i = (K^i(v_s)·w_att_{τ(v_s)} + Q^i(v_t)·w_att_{τ(v_t)}) / √d_k
///                                                                  (eq. 8)
///   α        = softmax over N(v_t) of the per-head scores          (eq. 9)
///   msg      = ‖_i V^i(v_s) ⊙ dropout(α-head^i)                    (eq. 10)
///   H^l[v_t] = Aggregate (sum over incoming messages)              (eq. 1)
/// followed by layer normalization and ReLU (paper §3.2.1 step 2), with an
/// optional residual connection.
///
/// Node-type embeddings and edge-type embeddings are zero-initialized
/// learnable tables (paper §3.2.2 item (1)); type embeddings enter the layer
/// inputs at l = 1 only, exactly as eqs. 2-7 prescribe. The attention
/// weights w_att are per-node-type vectors (one d_k block per head),
/// uniform-random initialized. The softmax in eq. 9 is a segment softmax
/// keyed by the target node, computed per head.
class HeteroConvLayer : public nn::Module {
 public:
  HeteroConvLayer(int64_t dim, int num_heads, float dropout, bool first_layer,
                  bool use_residual, xfraud::Rng* rng);

  /// Runs the layer. `node_input` is H^{l-1} [N, dim]; returns H^l [N, dim].
  /// `edge_mask` optionally rescales each edge's message ([E,1], explainer
  /// hook).
  nn::Var Forward(const nn::Var& node_input,
                  const std::vector<int32_t>& node_types,
                  const std::vector<int32_t>& edge_src,
                  const std::vector<int32_t>& edge_dst,
                  const std::vector<int32_t>& edge_types,
                  const ForwardOptions& options) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParameter>* out) const override;

 private:
  int64_t dim_;
  int num_heads_;
  int64_t head_dim_;
  float dropout_;
  bool first_layer_;
  bool use_residual_;

  std::vector<nn::Linear> q_linears_;  // one per node type
  std::vector<nn::Linear> k_linears_;
  std::vector<nn::Linear> v_linears_;
  nn::Var w_att_src_;  // [kNumNodeTypes, dim]: per-type, per-head d_k blocks
  nn::Var w_att_dst_;
  nn::Var edge_type_emb_;  // [kNumEdgeTypes, dim], zero-init (layer 1 only)
  nn::LayerNormModule norm_;
};

}  // namespace xfraud::core

#endif  // XFRAUD_CORE_HETERO_CONV_H_
