#ifndef XFRAUD_CORE_DETECTOR_H_
#define XFRAUD_CORE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "xfraud/core/gnn_model.h"
#include "xfraud/core/hetero_conv.h"
#include "xfraud/nn/modules.h"

namespace xfraud::core {

/// Hyperparameters of the xFraud detector. Paper values (Appendix C) are
/// n_hid=400, n_heads=8, n_layers=6, dropout=0.2 on GPU clusters; defaults
/// here are the CPU-scale equivalents used throughout the reproduction.
struct DetectorConfig {
  int64_t feature_dim = 64;
  int64_t hidden_dim = 32;
  int num_heads = 4;
  int num_layers = 2;
  float dropout = 0.2f;
  bool use_residual = true;
};

/// The xFraud detector (paper §3.2, Fig. 4 left): an input projection, L
/// self-attentive heterogeneous convolution layers, then — for each target
/// transaction — tanh of the GNN representation concatenated with the raw
/// transaction features, fed through a two-hidden-layer feed-forward head
/// (dropout, layer norm, ReLU) to produce a fraud/legit risk score.
///
/// detector vs detector+ differ only in the neighbourhood sampler
/// (HGSampling vs GraphSAGE-style, §3.2.3); this class is the shared network
/// and consumes whatever MiniBatch a sampler produced.
class XFraudDetector : public GnnModel {
 public:
  XFraudDetector(DetectorConfig config, xfraud::Rng* rng);

  nn::Var Forward(const sample::MiniBatch& batch,
                  const ForwardOptions& options) const override;

  /// Node representations H^L [N, hidden] (used by tests/analysis).
  nn::Var Encode(const sample::MiniBatch& batch,
                 const ForwardOptions& options) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParameter>* out) const override;

  std::string name() const override { return "xfraud_detector"; }

  const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
  nn::Linear input_proj_;       // feature_dim -> hidden
  nn::Var node_type_emb_;       // [kNumNodeTypes, hidden], zero-init
  std::vector<std::unique_ptr<HeteroConvLayer>> layers_;
  nn::Mlp head_;                // (hidden + feature_dim) -> 2 logits
};

}  // namespace xfraud::core

#endif  // XFRAUD_CORE_DETECTOR_H_
