#ifndef XFRAUD_DIST_PARTITION_H_
#define XFRAUD_DIST_PARTITION_H_

#include <vector>

#include "xfraud/common/rng.h"
#include "xfraud/graph/hetero_graph.h"

namespace xfraud::dist {

/// 1-D k-means (used by PIC on the embedding it produces). Returns the
/// cluster id per value.
std::vector<int> KMeans1D(const std::vector<double>& values, int k,
                          xfraud::Rng* rng, int iters = 50);

/// Power Iteration Clustering (Lin & Cohen 2010), the paper's graph
/// partitioner (§3.3.1): iterate v <- D^-1 W v on the (unit-weight)
/// affinity matrix with per-iteration renormalization; the truncated
/// iteration converges to a 1-D embedding that separates clusters, which a
/// k-means pass then cuts into `k` groups. Returns the cluster id per node.
/// Disconnected nodes converge to distinct plateau values and are separated
/// naturally.
std::vector<int> PowerIterationClustering(const graph::HeteroGraph& g, int k,
                                          xfraud::Rng* rng, int iters = 40);

/// §4 footnote 3: orders the clusters by ascending node count, then packs
/// them greedily into `num_groups` groups of ~|V|/num_groups nodes each so
/// every worker receives a similar load. Returns the group id per cluster.
std::vector<int> GroupClusters(const std::vector<int64_t>& cluster_sizes,
                               int num_groups);

/// End-to-end partitioning: PIC into `num_clusters` subgraphs, grouped into
/// `num_workers` balanced groups. Returns the worker id per node.
std::vector<int> PartitionForWorkers(const graph::HeteroGraph& g,
                                     int num_clusters, int num_workers,
                                     xfraud::Rng* rng);

}  // namespace xfraud::dist

#endif  // XFRAUD_DIST_PARTITION_H_
