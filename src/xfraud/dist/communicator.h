#ifndef XFRAUD_DIST_COMMUNICATOR_H_
#define XFRAUD_DIST_COMMUNICATOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "xfraud/common/status.h"

namespace xfraud::dist {

/// Collective-communication surface of the distributed runtime, shaped after
/// PyTorch's ProcessGroup backends. `DistributedTrainer` and the
/// multi-process worker loop speak only this interface; the backend decides
/// whether "the cluster" is kappa replicas in one address space
/// (InProcessGroup) or kappa real processes on a socket ring
/// (SocketCommunicator).
///
/// Semantics every backend must honour:
///  - AllReduceSum reduces element-wise in ascending-rank order — the sum is
///    the left fold ((r0 + r1) + r2) + ... — and every rank's buffer holds
///    the bit-identical result afterwards. Rank order is the contract that
///    keeps replicas bitwise synchronized across backends.
///  - Broadcast copies root's buffer into every rank's buffer.
///  - Gather delivers every rank's buffer to `root`, indexed by rank; ranks
///    may contribute different lengths.
///  - Barrier returns only once every rank has entered it.
///  - Collectives are matched by call order: every rank must issue the same
///    sequence of operations with the same element counts. A mismatch is
///    FailedPrecondition (in-process) or Corruption (socket, detected via
///    frame headers).
class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  virtual Status AllReduceSum(std::span<float> data) = 0;
  virtual Status AllReduceSum(std::span<double> data) = 0;
  virtual Status Broadcast(std::span<float> data, int root) = 0;
  virtual Status Broadcast(std::span<double> data, int root) = 0;
  virtual Status Barrier() = 0;
  virtual Status Gather(std::span<const float> send, int root,
                        std::vector<std::vector<float>>* recv) = 0;

  /// Wall seconds this rank has spent inside collectives. Zero for the
  /// in-process backend (its sync cost is modeled, not measured).
  virtual double comm_seconds() const = 0;

  /// Payload + header bytes this rank has put on the wire. Zero in-process.
  virtual int64_t bytes_on_wire() const = 0;
};

/// Shared-memory backend: one group object hands out `size` communicator
/// endpoints over a common buffer table.
///
/// Two completion modes:
///  - phased (default): a rank's collective call deposits its buffer and
///    returns immediately; the last rank's call executes the operation in
///    rank order and completes it for everyone. This matches the serial
///    driver in DistributedTrainer, where one thread plays every rank in
///    turn and a blocking collective would deadlock. Buffers passed to a
///    phased call must stay valid until the last rank's call of that
///    operation returns.
///  - blocking: each call waits (condition variable) until all ranks have
///    entered, mirroring a real collective. For threaded tests and benches.
///
/// Once any operation fails (signature mismatch across ranks), the group is
/// poisoned and every subsequent call returns the original error.
class InProcessGroup {
 public:
  explicit InProcessGroup(int size, bool blocking = false);
  ~InProcessGroup();

  int size() const;
  Communicator* communicator(int rank);

  /// Implementation detail (the group's buffer table); public only so the
  /// per-rank endpoints in the .cc can name it.
  struct Shared;

 private:
  std::shared_ptr<Shared> shared_;
  std::vector<std::unique_ptr<Communicator>> endpoints_;
};

}  // namespace xfraud::dist

#endif  // XFRAUD_DIST_COMMUNICATOR_H_
