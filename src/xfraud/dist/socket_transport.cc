#include "xfraud/dist/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "xfraud/common/logging.h"
#include "xfraud/common/rng.h"
#include "xfraud/obs/registry.h"

namespace xfraud::dist {

namespace {

std::string ErrnoText(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(ErrnoText("fcntl(O_NONBLOCK)"));
  }
  return Status::OK();
}

/// Waits for `events` readiness. Polls in <=100ms slices so an unlimited
/// deadline still re-checks errno state periodically; the budget itself
/// comes from the Deadline (whose clock was injected by the caller).
Status PollFor(int fd, short events, const Deadline& deadline) {
  for (;;) {
    double remaining = deadline.RemainingSeconds();
    if (remaining <= 0.0) {
      return Status::DeadlineExceeded("socket wait timed out");
    }
    int slice_ms = 100;
    if (!deadline.unlimited()) {
      slice_ms = static_cast<int>(
          std::min(remaining * 1000.0 + 1.0, 100.0));
      slice_ms = std::max(slice_ms, 1);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, slice_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("poll"));
    }
    // POLLHUP/POLLERR are reported through the subsequent read/write,
    // which maps them onto Unavailable with a precise message.
    if (rc > 0) return Status::OK();
  }
}

struct SockAddr {
  union {
    struct sockaddr base;
    struct sockaddr_un un;
    struct sockaddr_in in;
  } addr;
  socklen_t len = 0;
  int family = AF_UNIX;
};

Result<SockAddr> ToSockAddr(const Endpoint& ep) {
  SockAddr out;
  std::memset(&out.addr, 0, sizeof(out.addr));
  if (ep.kind == Endpoint::Kind::kUnix) {
    out.family = AF_UNIX;
    if (ep.path.size() + 1 > sizeof(out.addr.un.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + ep.path);
    }
    out.addr.un.sun_family = AF_UNIX;
    std::memcpy(out.addr.un.sun_path, ep.path.c_str(), ep.path.size() + 1);
    out.len = static_cast<socklen_t>(sizeof(out.addr.un));
    return out;
  }
  out.family = AF_INET;
  out.addr.in.sin_family = AF_INET;
  out.addr.in.sin_port = htons(ep.port);
  std::string host = ep.host.empty() || ep.host == "localhost"
                         ? std::string("127.0.0.1")
                         : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &out.addr.in.sin_addr) != 1) {
    return Status::InvalidArgument("tcp endpoint host must be an IPv4 "
                                   "literal or 'localhost', got " +
                                   ep.host);
  }
  out.len = static_cast<socklen_t>(sizeof(out.addr.in));
  return out;
}

void PutU32(unsigned char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

void PutU64(unsigned char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

uint32_t GetU32(const unsigned char* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const unsigned char* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

Result<UniqueFd> ListenOn(const Endpoint& ep, Endpoint* bound) {
  Result<SockAddr> addr = ToSockAddr(ep);
  if (!addr.ok()) return addr.status();
  UniqueFd fd(::socket(addr.value().family, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IoError(ErrnoText("socket"));
  XF_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  if (ep.kind == Endpoint::Kind::kUnix) {
    ::unlink(ep.path.c_str());  // a stale file from a crashed run
  } else {
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (::bind(fd.get(), &addr.value().addr.base, addr.value().len) != 0) {
    return Status::IoError(ErrnoText("bind " + ep.ToString()));
  }
  if (::listen(fd.get(), 64) != 0) {
    return Status::IoError(ErrnoText("listen " + ep.ToString()));
  }
  if (bound != nullptr) {
    *bound = ep;
    if (ep.kind == Endpoint::Kind::kTcp && ep.port == 0) {
      struct sockaddr_in got;
      socklen_t got_len = static_cast<socklen_t>(sizeof(got));
      if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&got),
                        &got_len) != 0) {
        return Status::IoError(ErrnoText("getsockname"));
      }
      bound->port = ntohs(got.sin_port);
    }
  }
  return fd;
}

Result<UniqueFd> DialEndpoint(const Endpoint& ep, const Deadline& deadline,
                              Clock* clock) {
  (void)clock;
  Result<SockAddr> addr = ToSockAddr(ep);
  if (!addr.ok()) return addr.status();
  UniqueFd fd(::socket(addr.value().family, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IoError(ErrnoText("socket"));
  XF_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  if (::connect(fd.get(), &addr.value().addr.base, addr.value().len) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      // ECONNREFUSED / ENOENT: the peer is not listening (yet) — IoError so
      // RetryWithBackoff keeps dialing.
      return Status::IoError(ErrnoText("connect " + ep.ToString()));
    }
    XF_RETURN_IF_ERROR(PollFor(fd.get(), POLLOUT, deadline));
    int err = 0;
    socklen_t err_len = static_cast<socklen_t>(sizeof(err));
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      return Status::IoError(ErrnoText("connect " + ep.ToString()));
    }
  }
  if (ep.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Result<UniqueFd> AcceptWithDeadline(int listener, const Deadline& deadline,
                                    Clock* clock) {
  (void)clock;
  for (;;) {
    int fd = ::accept(listener, nullptr, nullptr);
    if (fd >= 0) {
      UniqueFd out(fd);
      XF_RETURN_IF_ERROR(SetNonBlocking(out.get()));
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      // Transient: wait for the next pending connection.
      XF_RETURN_IF_ERROR(PollFor(listener, POLLIN, deadline));
      continue;
    }
    return Status::IoError(ErrnoText("accept"));
  }
}

Status SendAllBytes(int fd, const void* data, size_t n,
                    const Deadline& deadline, Clock* clock) {
  (void)clock;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  size_t left = n;
  while (left > 0) {
    ssize_t sent = ::send(fd, p, left, MSG_NOSIGNAL);
    if (sent > 0) {
      p += sent;
      left -= static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      XF_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline));
      continue;
    }
    if (sent < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Unavailable("peer closed the ring connection");
    }
    return Status::IoError(ErrnoText("send"));
  }
  return Status::OK();
}

Status RecvAllBytes(int fd, void* data, size_t n, const Deadline& deadline,
                    Clock* clock) {
  (void)clock;
  unsigned char* p = static_cast<unsigned char*>(data);
  size_t left = n;
  while (left > 0) {
    ssize_t got = ::recv(fd, p, left, 0);
    if (got > 0) {
      p += got;
      left -= static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      return Status::Unavailable("peer closed the ring connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      XF_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline));
      continue;
    }
    if (errno == ECONNRESET) {
      return Status::Unavailable("peer reset the ring connection");
    }
    return Status::IoError(ErrnoText("recv"));
  }
  return Status::OK();
}

Status SendFrame(int fd, FrameHeader header, const void* payload, size_t n,
                 const Deadline& deadline, Clock* clock) {
  SealFramePayload(&header, payload, n);
  std::array<unsigned char, kFrameHeaderBytes> buf;
  EncodeFrameHeader(header, buf.data());
  XF_RETURN_IF_ERROR(SendAllBytes(fd, buf.data(), buf.size(), deadline, clock));
  if (n > 0) {
    XF_RETURN_IF_ERROR(SendAllBytes(fd, payload, n, deadline, clock));
  }
  return Status::OK();
}

Status SendFrameCorrupting(int fd, FrameHeader header, const void* payload,
                           size_t n, int64_t corrupt_byte,
                           const Deadline& deadline, Clock* clock) {
  if (corrupt_byte < 0 || static_cast<uint64_t>(corrupt_byte) >= n) {
    return SendFrame(fd, header, payload, n, deadline, clock);
  }
  SealFramePayload(&header, payload, n);  // CRC of the *clean* payload
  std::vector<unsigned char> damaged(
      static_cast<const unsigned char*>(payload),
      static_cast<const unsigned char*>(payload) + n);
  damaged[static_cast<size_t>(corrupt_byte)] ^= 0x40;
  std::array<unsigned char, kFrameHeaderBytes> buf;
  EncodeFrameHeader(header, buf.data());
  XF_RETURN_IF_ERROR(SendAllBytes(fd, buf.data(), buf.size(), deadline, clock));
  return SendAllBytes(fd, damaged.data(), damaged.size(), deadline, clock);
}

Result<FrameHeader> RecvFrameHeader(int fd, const Deadline& deadline,
                                    Clock* clock) {
  std::array<unsigned char, kFrameHeaderBytes> buf;
  XF_RETURN_IF_ERROR(RecvAllBytes(fd, buf.data(), buf.size(), deadline, clock));
  return DecodeFrameHeader(buf.data());
}

Status RecvFramePayload(int fd, const FrameHeader& header,
                        std::vector<unsigned char>* payload,
                        const Deadline& deadline, Clock* clock) {
  payload->resize(header.payload_bytes);
  if (!payload->empty()) {
    XF_RETURN_IF_ERROR(RecvAllBytes(fd, payload->data(), payload->size(),
                                    deadline, clock));
  }
  return VerifyFramePayload(header, payload->data(), payload->size());
}

Status RecvFrameInto(int fd, FrameType want, void* payload,
                     size_t payload_bytes, const Deadline& deadline,
                     Clock* clock) {
  Result<FrameHeader> header = RecvFrameHeader(fd, deadline, clock);
  if (!header.ok()) return header.status();
  if (header.value().type != want) {
    return Status::Corruption(
        "frame type mismatch: want " +
        std::to_string(static_cast<int>(want)) + ", got " +
        std::to_string(static_cast<int>(header.value().type)));
  }
  if (header.value().payload_bytes != payload_bytes) {
    return Status::Corruption(
        "frame payload mismatch: want " + std::to_string(payload_bytes) +
        " bytes, got " + std::to_string(header.value().payload_bytes));
  }
  if (payload_bytes > 0) {
    XF_RETURN_IF_ERROR(
        RecvAllBytes(fd, payload, payload_bytes, deadline, clock));
  }
  return VerifyFramePayload(header.value(), payload, payload_bytes);
}

Result<int> WaitAnyReadable(const std::vector<int>& fds,
                            const Deadline& deadline, Clock* clock) {
  (void)clock;
  if (fds.empty()) {
    return Status::InvalidArgument("WaitAnyReadable needs at least one fd");
  }
  std::vector<struct pollfd> pfds(fds.size());
  for (;;) {
    double remaining = deadline.RemainingSeconds();
    if (remaining <= 0.0) {
      return Status::DeadlineExceeded("socket wait timed out");
    }
    int slice_ms = 100;
    if (!deadline.unlimited()) {
      slice_ms =
          static_cast<int>(std::min(remaining * 1000.0 + 1.0, 100.0));
      slice_ms = std::max(slice_ms, 1);
    }
    for (size_t i = 0; i < fds.size(); ++i) {
      pfds[i].fd = fds[i];
      pfds[i].events = POLLIN;
      pfds[i].revents = 0;
    }
    int rc = ::poll(pfds.data(), pfds.size(), slice_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("poll"));
    }
    if (rc > 0) {
      for (size_t i = 0; i < pfds.size(); ++i) {
        // HUP/ERR surface as readability: the next read maps them onto a
        // precise Unavailable, same as the single-fd PollFor contract.
        if (pfds[i].revents != 0) return static_cast<int>(i);
      }
    }
  }
}

// ---- SocketCommunicator ----------------------------------------------------

struct SocketCommunicator::Impl {
  int rank = 0;
  int world = 1;
  uint64_t generation = 0;
  double op_timeout_s = 60.0;
  Clock* clock = nullptr;

  UniqueFd pred;
  UniqueFd succ;
  uint64_t seq = 0;  // collective sequence number, validated on every frame
  Status broken = Status::OK();
  double comm_seconds = 0.0;
  int64_t bytes_on_wire = 0;
  std::vector<unsigned char> scratch;
  std::vector<float> scratch_f32;
  std::vector<double> scratch_f64;

  template <typename T>
  std::vector<T>& ScratchFor() {
    if constexpr (std::is_same_v<T, float>) {
      return scratch_f32;
    } else {
      return scratch_f64;
    }
  }

  obs::Counter* frames_sent = nullptr;
  obs::Counter* bytes_sent = nullptr;
  obs::Counter* comm_errors = nullptr;
  obs::Histogram* op_seconds = nullptr;

  void CloseRing() {
    pred.Reset();
    succ.Reset();
  }

  Status Send(FrameType type, uint16_t flags, const void* payload, size_t n,
              const Deadline& deadline) {
    FrameHeader header;
    header.type = type;
    header.flags = flags;
    header.rank = static_cast<uint32_t>(rank);
    header.seq = seq;
    XF_RETURN_IF_ERROR(
        SendFrame(succ.get(), header, payload, n, deadline, clock));
    frames_sent->Increment();
    bytes_sent->Add(static_cast<int64_t>(n + kFrameHeaderBytes));
    bytes_on_wire += static_cast<int64_t>(n + kFrameHeaderBytes);
    return Status::OK();
  }

  /// Receives a fixed-size frame from the predecessor and validates the
  /// full signature (type, dtype flags, sequence number).
  Status Recv(FrameType type, uint16_t flags, void* payload, size_t n,
              const Deadline& deadline) {
    Result<FrameHeader> header = RecvFrameHeader(pred.get(), deadline, clock);
    if (!header.ok()) return header.status();
    XF_RETURN_IF_ERROR(ValidateHeader(header.value(), type, flags, n));
    if (n > 0) {
      XF_RETURN_IF_ERROR(RecvAllBytes(pred.get(), payload, n, deadline, clock));
    }
    return VerifyFramePayload(header.value(), payload, n);
  }

  Status ValidateHeader(const FrameHeader& header, FrameType type,
                        uint16_t flags, size_t n) const {
    if (header.type != type || header.flags != flags) {
      return Status::Corruption(
          "collective mismatch: rank " + std::to_string(rank) +
          " expected frame type " + std::to_string(static_cast<int>(type)) +
          "/" + std::to_string(flags) + ", got " +
          std::to_string(static_cast<int>(header.type)) + "/" +
          std::to_string(header.flags));
    }
    if (header.seq != seq) {
      return Status::Corruption(
          "collective out of order: rank " + std::to_string(rank) +
          " at seq " + std::to_string(seq) + " received seq " +
          std::to_string(header.seq));
    }
    if (header.payload_bytes != n) {
      return Status::Corruption(
          "collective payload mismatch: want " + std::to_string(n) +
          " bytes, got " + std::to_string(header.payload_bytes));
    }
    return Status::OK();
  }

  template <typename T>
  static constexpr uint16_t DtypeFlag() {
    return static_cast<uint16_t>(std::is_same_v<T, float>
                                     ? FrameDtype::kFloat32
                                     : FrameDtype::kFloat64);
  }

  /// Two-pass ring all-reduce. Pass 1 walks the partial sum from rank 0
  /// around the ring — each rank computes (partial-from-left + own), which
  /// is exactly the ascending-rank left fold of the in-process backend, so
  /// the bits match. Pass 2 walks the finished sum back around. 2·world-1
  /// frames total.
  template <typename T>
  Status RingAllReduce(std::span<T> data) {
    const size_t bytes = data.size() * sizeof(T);
    const uint16_t dtype = DtypeFlag<T>();
    const Deadline deadline = Deadline::After(clock, op_timeout_s);
    if (rank == 0) {
      XF_RETURN_IF_ERROR(
          Send(FrameType::kReduce, dtype, data.data(), bytes, deadline));
      XF_RETURN_IF_ERROR(
          Recv(FrameType::kReduce, dtype, data.data(), bytes, deadline));
      return Send(FrameType::kResult, dtype, data.data(), bytes, deadline);
    }
    std::vector<T>& partial = ScratchFor<T>();
    partial.resize(data.size());
    XF_RETURN_IF_ERROR(
        Recv(FrameType::kReduce, dtype, partial.data(), bytes, deadline));
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = partial[i] + data[i];
    }
    XF_RETURN_IF_ERROR(
        Send(FrameType::kReduce, dtype, data.data(), bytes, deadline));
    XF_RETURN_IF_ERROR(
        Recv(FrameType::kResult, dtype, data.data(), bytes, deadline));
    if (rank != world - 1) {
      return Send(FrameType::kResult, dtype, data.data(), bytes, deadline);
    }
    return Status::OK();
  }

  template <typename T>
  Status RingBroadcast(std::span<T> data, int root) {
    const size_t bytes = data.size() * sizeof(T);
    const uint16_t dtype = DtypeFlag<T>();
    const Deadline deadline = Deadline::After(clock, op_timeout_s);
    const int distance = (rank - root + world) % world;
    if (distance == 0) {
      return Send(FrameType::kBroadcast, dtype, data.data(), bytes, deadline);
    }
    XF_RETURN_IF_ERROR(
        Recv(FrameType::kBroadcast, dtype, data.data(), bytes, deadline));
    if (distance != world - 1) {
      return Send(FrameType::kBroadcast, dtype, data.data(), bytes, deadline);
    }
    return Status::OK();
  }

  /// Two empty tokens around the ring. One circuit proves every rank has
  /// entered the barrier; the second proves every rank has seen the first,
  /// so nobody can lap a slow rank into the next collective's frames.
  Status RingBarrier() {
    const Deadline deadline = Deadline::After(clock, op_timeout_s);
    for (uint16_t circuit = 0; circuit < 2; ++circuit) {
      if (rank == 0) {
        XF_RETURN_IF_ERROR(
            Send(FrameType::kBarrier, circuit, nullptr, 0, deadline));
        XF_RETURN_IF_ERROR(
            Recv(FrameType::kBarrier, circuit, nullptr, 0, deadline));
      } else {
        XF_RETURN_IF_ERROR(
            Recv(FrameType::kBarrier, circuit, nullptr, 0, deadline));
        XF_RETURN_IF_ERROR(
            Send(FrameType::kBarrier, circuit, nullptr, 0, deadline));
      }
    }
    return Status::OK();
  }

  /// Entries accumulate around the ring from root's successor toward root:
  /// [u32 rank][u64 count][count f32] per contributor.
  Status RingGather(std::span<const float> send, int root,
                    std::vector<std::vector<float>>* recv) {
    const Deadline deadline = Deadline::After(clock, op_timeout_s);
    const int distance = (rank - root + world) % world;
    auto append_own = [&](std::vector<unsigned char>* buf) {
      const size_t at = buf->size();
      buf->resize(at + 12 + send.size() * sizeof(float));
      PutU32(buf->data() + at, static_cast<uint32_t>(rank));
      PutU64(buf->data() + at + 4, static_cast<uint64_t>(send.size()));
      if (!send.empty()) {
        std::memcpy(buf->data() + at + 12, send.data(),
                    send.size() * sizeof(float));
      }
    };
    if (distance == 0) {  // root
      if (recv == nullptr) {
        return Status::InvalidArgument("gather root needs a recv buffer");
      }
      recv->assign(static_cast<size_t>(world), {});
      (*recv)[static_cast<size_t>(root)].assign(send.begin(), send.end());
      Result<FrameHeader> header =
          RecvFrameHeader(pred.get(), deadline, clock);
      if (!header.ok()) return header.status();
      XF_RETURN_IF_ERROR(ValidateHeader(header.value(), FrameType::kGather, 0,
                                        header.value().payload_bytes));
      XF_RETURN_IF_ERROR(RecvFramePayload(pred.get(), header.value(),
                                          &scratch, deadline, clock));
      size_t at = 0;
      for (int i = 0; i < world - 1; ++i) {
        if (at + 12 > scratch.size()) {
          return Status::Corruption("gather payload truncated");
        }
        uint32_t from = GetU32(scratch.data() + at);
        uint64_t count = GetU64(scratch.data() + at + 4);
        at += 12;
        if (from >= static_cast<uint32_t>(world) ||
            at + count * sizeof(float) > scratch.size()) {
          return Status::Corruption("gather entry malformed");
        }
        (*recv)[from].assign(count, 0.0f);
        if (count > 0) {
          std::memcpy((*recv)[from].data(), scratch.data() + at,
                      count * sizeof(float));
        }
        at += count * sizeof(float);
      }
      return Status::OK();
    }
    std::vector<unsigned char> buf;
    if (distance > 1) {  // splice the upstream entries in front of ours
      Result<FrameHeader> header =
          RecvFrameHeader(pred.get(), deadline, clock);
      if (!header.ok()) return header.status();
      XF_RETURN_IF_ERROR(ValidateHeader(header.value(), FrameType::kGather, 0,
                                        header.value().payload_bytes));
      XF_RETURN_IF_ERROR(
          RecvFramePayload(pred.get(), header.value(), &buf, deadline, clock));
    }
    append_own(&buf);
    return Send(FrameType::kGather, 0, buf.data(), buf.size(), deadline);
  }

  template <typename Fn>
  Status Guarded(Fn&& op) {
    if (!broken.ok()) return broken;
    if (world == 1) {
      // Single-rank cluster: every collective is the identity.
      ++seq;
      return Status::OK();
    }
    const double start_s = clock->NowSeconds();
    ++seq;
    Status s = op();
    const double elapsed = clock->NowSeconds() - start_s;
    comm_seconds += elapsed;
    op_seconds->Record(elapsed);
    if (!s.ok()) {
      comm_errors->Increment();
      broken = s;
      // Waking the neighbours with EOF makes failure detection cascade
      // around the ring instead of waiting out op_timeout everywhere.
      CloseRing();
    }
    return s;
  }
};

SocketCommunicator::SocketCommunicator(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

SocketCommunicator::~SocketCommunicator() { Shutdown(); }

int SocketCommunicator::rank() const { return impl_->rank; }
int SocketCommunicator::size() const { return impl_->world; }
uint64_t SocketCommunicator::generation() const { return impl_->generation; }
double SocketCommunicator::comm_seconds() const {
  return impl_->comm_seconds;
}
int64_t SocketCommunicator::bytes_on_wire() const {
  return impl_->bytes_on_wire;
}

void SocketCommunicator::Shutdown() { impl_->CloseRing(); }

Status SocketCommunicator::AllReduceSum(std::span<float> data) {
  return impl_->Guarded([&] { return impl_->RingAllReduce(data); });
}
Status SocketCommunicator::AllReduceSum(std::span<double> data) {
  return impl_->Guarded([&] { return impl_->RingAllReduce(data); });
}
Status SocketCommunicator::Broadcast(std::span<float> data, int root) {
  if (root < 0 || root >= impl_->world) {
    return Status::InvalidArgument("broadcast root out of range");
  }
  return impl_->Guarded([&] { return impl_->RingBroadcast(data, root); });
}
Status SocketCommunicator::Broadcast(std::span<double> data, int root) {
  if (root < 0 || root >= impl_->world) {
    return Status::InvalidArgument("broadcast root out of range");
  }
  return impl_->Guarded([&] { return impl_->RingBroadcast(data, root); });
}
Status SocketCommunicator::Barrier() {
  return impl_->Guarded([&] { return impl_->RingBarrier(); });
}
Status SocketCommunicator::Gather(std::span<const float> send, int root,
                                  std::vector<std::vector<float>>* recv) {
  if (root < 0 || root >= impl_->world) {
    return Status::InvalidArgument("gather root out of range");
  }
  if (impl_->world == 1) {
    if (recv == nullptr) {
      return Status::InvalidArgument("gather root needs a recv buffer");
    }
    recv->assign(1, std::vector<float>(send.begin(), send.end()));
    ++impl_->seq;
    return Status::OK();
  }
  return impl_->Guarded([&] { return impl_->RingGather(send, root, recv); });
}

Result<std::unique_ptr<SocketCommunicator>> SocketCommunicator::Connect(
    const SocketCommOptions& options, RendezvousHost* host) {
  auto impl = std::make_unique<Impl>();
  impl->rank = options.rank;
  impl->world = options.world;
  impl->generation = options.generation;
  impl->op_timeout_s = options.op_timeout_s;
  impl->clock = options.clock != nullptr ? options.clock : Clock::Real();
  auto& registry = obs::Registry::Global();
  impl->frames_sent = registry.counter("dist/comm/frames_sent");
  impl->bytes_sent = registry.counter("dist/comm/bytes_sent");
  impl->comm_errors = registry.counter("dist/comm/errors");
  impl->op_seconds = registry.histogram("dist/comm/op_seconds");
  XF_CHECK(options.rank >= 0 && options.rank < options.world);
  if (options.world == 1) {
    return std::make_unique<SocketCommunicator>(std::move(impl));
  }
  XF_CHECK_EQ(host != nullptr, options.rank == 0);
  Clock* clock = impl->clock;

  // Ring listener first: a successor's connect() completes against the
  // listen backlog even before we accept, so creating every listener before
  // anyone dials rules out the circular-dial deadlock.
  Endpoint ring_ep;
  if (options.rendezvous.kind == Endpoint::Kind::kUnix) {
    std::string::size_type slash = options.rendezvous.path.rfind('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : options.rendezvous.path.substr(0, slash);
    ring_ep.kind = Endpoint::Kind::kUnix;
    ring_ep.path = dir + "/ring-" + std::to_string(options.rank) + ".sock";
  } else {
    ring_ep.kind = Endpoint::Kind::kTcp;
    ring_ep.host = options.rendezvous.host;
    ring_ep.port = 0;
  }
  Endpoint bound;
  Result<UniqueFd> listener = ListenOn(ring_ep, &bound);
  if (!listener.ok()) return listener.status();
  ring_ep = bound;

  const Deadline rendezvous_deadline =
      Deadline::After(clock, options.rendezvous_timeout_s);
  Endpoint succ_ep;
  if (options.rank == 0) {
    Result<Endpoint> assigned = host->Exchange(
        ring_ep, options.generation, rendezvous_deadline, clock);
    if (!assigned.ok()) return assigned.status();
    succ_ep = assigned.value();
  } else {
    uint64_t host_generation = options.generation;
    Result<Endpoint> assigned = JoinRendezvous(
        options.rendezvous, options.rank, options.world, ring_ep,
        options.generation, rendezvous_deadline, options.connect_retry,
        clock, &host_generation);
    if (!assigned.ok()) return assigned.status();
    succ_ep = assigned.value();
    impl->generation = host_generation;
  }

  // Dial the successor (its listener has existed since before it joined the
  // rendezvous) and introduce ourselves.
  RetryPolicy dial_retry = options.connect_retry;
  dial_retry.clock = clock;
  const uint64_t jitter_seed = Rng::StreamSeed(
      impl->generation, static_cast<uint64_t>(options.rank) + 0x52494E47ULL);
  Status dialed = RetryWithBackoff(dial_retry, jitter_seed, [&]() -> Status {
    Result<UniqueFd> fd = DialEndpoint(
        succ_ep, Deadline::After(clock, options.connect_timeout_s), clock);
    if (!fd.ok()) return fd.status();
    impl->succ = std::move(fd.value());
    return Status::OK();
  });
  if (!dialed.ok()) return dialed;
  FrameHeader hello;
  hello.type = FrameType::kHello;
  hello.rank = static_cast<uint32_t>(options.rank);
  hello.seq = impl->generation;
  XF_RETURN_IF_ERROR(SendFrame(impl->succ.get(), hello, nullptr, 0,
                               rendezvous_deadline, clock));

  // Accept the predecessor; drop strays (e.g. a half-open dial from a
  // previous generation) until the expected rank introduces itself.
  const int want_pred = (options.rank - 1 + options.world) % options.world;
  for (;;) {
    Result<UniqueFd> accepted =
        AcceptWithDeadline(listener.value().get(), rendezvous_deadline, clock);
    if (!accepted.ok()) return accepted.status();
    Result<FrameHeader> peer_hello =
        RecvFrameHeader(accepted.value().get(), rendezvous_deadline, clock);
    if (!peer_hello.ok()) continue;
    if (peer_hello.value().type != FrameType::kHello ||
        peer_hello.value().rank != static_cast<uint32_t>(want_pred) ||
        peer_hello.value().seq != impl->generation) {
      continue;
    }
    impl->pred = std::move(accepted.value());
    break;
  }
  if (ring_ep.kind == Endpoint::Kind::kUnix) {
    ::unlink(ring_ep.path.c_str());
  }
  return std::make_unique<SocketCommunicator>(std::move(impl));
}

}  // namespace xfraud::dist
