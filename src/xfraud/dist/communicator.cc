#include "xfraud/dist/communicator.h"

#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>

#include "xfraud/common/logging.h"

namespace xfraud::dist {

namespace {

enum class OpType {
  kNone,
  kAllReduceF32,
  kAllReduceF64,
  kBroadcastF32,
  kBroadcastF64,
  kBarrier,
  kGather,
};

const char* OpName(OpType op) {
  switch (op) {
    case OpType::kNone: return "none";
    case OpType::kAllReduceF32: return "allreduce<f32>";
    case OpType::kAllReduceF64: return "allreduce<f64>";
    case OpType::kBroadcastF32: return "broadcast<f32>";
    case OpType::kBroadcastF64: return "broadcast<f64>";
    case OpType::kBarrier: return "barrier";
    case OpType::kGather: return "gather";
  }
  return "?";
}

}  // namespace

/// The group's buffer table. Every collective deposits per-rank pointers
/// here; the last rank to arrive executes the operation in rank order.
struct InProcessGroup::Shared {
  int size = 0;
  bool blocking = false;

  std::mutex mu;
  std::condition_variable cv;
  uint64_t completed = 0;  // finished collectives (blocking-mode wait key)
  Status poison = Status::OK();

  // Current operation.
  OpType op = OpType::kNone;
  int root = -1;
  size_t count = 0;
  int arrived = 0;
  std::vector<int8_t> entered;
  std::vector<float*> f32;
  std::vector<double*> f64;
  std::vector<const float*> gather_send;
  std::vector<size_t> gather_count;
  std::vector<std::vector<std::vector<float>>*> gather_recv;

  void ResetOp() {
    op = OpType::kNone;
    root = -1;
    count = 0;
    arrived = 0;
    std::fill(entered.begin(), entered.end(), int8_t{0});
  }

  /// Runs the deposited operation. Reduction is the left fold in ascending
  /// rank order — the bit-identity contract shared with the socket ring.
  void Execute() {
    switch (op) {
      case OpType::kAllReduceF32: {
        float* acc = f32[0];
        for (int w = 1; w < size; ++w) {
          const float* src = f32[w];
          for (size_t i = 0; i < count; ++i) acc[i] += src[i];
        }
        for (int w = 1; w < size; ++w) {
          std::memcpy(f32[w], acc, count * sizeof(float));
        }
        break;
      }
      case OpType::kAllReduceF64: {
        double* acc = f64[0];
        for (int w = 1; w < size; ++w) {
          const double* src = f64[w];
          for (size_t i = 0; i < count; ++i) acc[i] += src[i];
        }
        for (int w = 1; w < size; ++w) {
          std::memcpy(f64[w], acc, count * sizeof(double));
        }
        break;
      }
      case OpType::kBroadcastF32:
        for (int w = 0; w < size; ++w) {
          if (w == root) continue;
          std::memcpy(f32[w], f32[root], count * sizeof(float));
        }
        break;
      case OpType::kBroadcastF64:
        for (int w = 0; w < size; ++w) {
          if (w == root) continue;
          std::memcpy(f64[w], f64[root], count * sizeof(double));
        }
        break;
      case OpType::kGather: {
        std::vector<std::vector<float>>* out = gather_recv[root];
        out->assign(static_cast<size_t>(size), {});
        for (int w = 0; w < size; ++w) {
          (*out)[w].assign(gather_send[w], gather_send[w] + gather_count[w]);
        }
        break;
      }
      case OpType::kBarrier:
      case OpType::kNone:
        break;
    }
    ResetOp();
    ++completed;
  }
};

namespace {

class InProcessCommunicator final : public Communicator {
 public:
  InProcessCommunicator(std::shared_ptr<InProcessGroup::Shared> shared,
                        int rank)
      : shared_(std::move(shared)), rank_(rank) {}

  int rank() const override { return rank_; }
  int size() const override { return shared_->size; }

  Status AllReduceSum(std::span<float> data) override {
    return Run(OpType::kAllReduceF32, /*root=*/-1, data.size(), data.data(),
               nullptr, nullptr, nullptr);
  }
  Status AllReduceSum(std::span<double> data) override {
    return Run(OpType::kAllReduceF64, /*root=*/-1, data.size(), nullptr,
               data.data(), nullptr, nullptr);
  }
  Status Broadcast(std::span<float> data, int root) override {
    return Run(OpType::kBroadcastF32, root, data.size(), data.data(), nullptr,
               nullptr, nullptr);
  }
  Status Broadcast(std::span<double> data, int root) override {
    return Run(OpType::kBroadcastF64, root, data.size(), nullptr, data.data(),
               nullptr, nullptr);
  }
  Status Barrier() override {
    return Run(OpType::kBarrier, /*root=*/-1, 0, nullptr, nullptr, nullptr,
               nullptr);
  }
  Status Gather(std::span<const float> send, int root,
                std::vector<std::vector<float>>* recv) override {
    return Run(OpType::kGather, root, send.size(), nullptr, nullptr,
               send.data(), recv);
  }

  double comm_seconds() const override { return 0.0; }
  int64_t bytes_on_wire() const override { return 0; }

 private:
  Status Poison(InProcessGroup::Shared& s, const std::string& msg) {
    s.poison = Status::FailedPrecondition("in-process group: " + msg);
    s.ResetOp();
    s.cv.notify_all();
    return s.poison;
  }

  Status Run(OpType op, int root, size_t count, float* f32, double* f64,
             const float* gather_send,
             std::vector<std::vector<float>>* gather_recv) {
    InProcessGroup::Shared& s = *shared_;
    std::unique_lock<std::mutex> lock(s.mu);
    if (!s.poison.ok()) return s.poison;
    const bool needs_root = op == OpType::kBroadcastF32 ||
                            op == OpType::kBroadcastF64 ||
                            op == OpType::kGather;
    if (needs_root && (root < 0 || root >= s.size)) {
      return Status::InvalidArgument("in-process group: root " +
                                     std::to_string(root) + " out of range");
    }
    if (op == OpType::kGather && rank_ == root && gather_recv == nullptr) {
      return Status::InvalidArgument(
          "in-process group: gather root needs a recv buffer");
    }
    if (s.arrived == 0) {
      s.op = op;
      s.root = root;
      s.count = count;
    } else if (s.op != op || s.root != root ||
               (op != OpType::kGather && s.count != count)) {
      return Poison(s, std::string("operation mismatch: rank ") +
                           std::to_string(rank_) + " issued " + OpName(op) +
                           "[" + std::to_string(count) + "] against pending " +
                           OpName(s.op) + "[" + std::to_string(s.count) + "]");
    }
    if (s.entered[static_cast<size_t>(rank_)] != 0) {
      return Poison(s, "rank " + std::to_string(rank_) +
                           " re-entered a pending collective");
    }
    s.entered[static_cast<size_t>(rank_)] = 1;
    s.f32[static_cast<size_t>(rank_)] = f32;
    s.f64[static_cast<size_t>(rank_)] = f64;
    s.gather_send[static_cast<size_t>(rank_)] = gather_send;
    s.gather_count[static_cast<size_t>(rank_)] = count;
    s.gather_recv[static_cast<size_t>(rank_)] = gather_recv;
    ++s.arrived;
    if (s.arrived == s.size) {
      s.Execute();
      s.cv.notify_all();
      return Status::OK();
    }
    if (s.blocking) {
      const uint64_t gen = s.completed;
      s.cv.wait(lock,
                [&] { return s.completed != gen || !s.poison.ok(); });
      return s.poison;
    }
    // Phased mode: deposit-and-return. The last rank's call will execute
    // the operation against the pointers left here.
    return Status::OK();
  }

  std::shared_ptr<InProcessGroup::Shared> shared_;
  int rank_;
};

}  // namespace

InProcessGroup::InProcessGroup(int size, bool blocking) {
  XF_CHECK(size >= 1);
  shared_ = std::make_shared<Shared>();
  shared_->size = size;
  shared_->blocking = blocking;
  shared_->entered.assign(static_cast<size_t>(size), 0);
  shared_->f32.assign(static_cast<size_t>(size), nullptr);
  shared_->f64.assign(static_cast<size_t>(size), nullptr);
  shared_->gather_send.assign(static_cast<size_t>(size), nullptr);
  shared_->gather_count.assign(static_cast<size_t>(size), 0);
  shared_->gather_recv.assign(static_cast<size_t>(size), nullptr);
  for (int r = 0; r < size; ++r) {
    endpoints_.push_back(
        std::make_unique<InProcessCommunicator>(shared_, r));
  }
}

InProcessGroup::~InProcessGroup() = default;

int InProcessGroup::size() const { return shared_->size; }

Communicator* InProcessGroup::communicator(int rank) {
  XF_CHECK(rank >= 0 && rank < shared_->size);
  return endpoints_[static_cast<size_t>(rank)].get();
}

}  // namespace xfraud::dist
