#include "xfraud/dist/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "xfraud/common/logging.h"

namespace xfraud::dist {

std::vector<int> KMeans1D(const std::vector<double>& values, int k,
                          xfraud::Rng* rng, int iters) {
  XF_CHECK_GT(k, 0);
  int64_t n = static_cast<int64_t>(values.size());
  if (n == 0) return {};
  k = std::min<int>(k, static_cast<int>(n));

  // Init centers at evenly spaced quantiles (stable for 1-D data).
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> centers(k);
  for (int c = 0; c < k; ++c) {
    centers[c] = sorted[(n - 1) * (2 * c + 1) / (2 * k)];
  }

  std::vector<int> assign(n, 0);
  for (int it = 0; it < iters; ++it) {
    bool changed = false;
    for (int64_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        double d = std::fabs(values[i] - centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    std::vector<double> sum(k, 0.0);
    std::vector<int64_t> count(k, 0);
    for (int64_t i = 0; i < n; ++i) {
      sum[assign[i]] += values[i];
      ++count[assign[i]];
    }
    for (int c = 0; c < k; ++c) {
      if (count[c] > 0) {
        centers[c] = sum[c] / count[c];
      } else {
        // Re-seed an empty cluster at a random point.
        centers[c] = values[rng->NextBounded(n)];
        changed = true;
      }
    }
    if (!changed) break;
  }
  return assign;
}

std::vector<int> PowerIterationClustering(const graph::HeteroGraph& g, int k,
                                          xfraud::Rng* rng, int iters) {
  int64_t n = g.num_nodes();
  XF_CHECK_GT(n, 0);
  // Random init normalized to unit L1 norm (Lin & Cohen start from the
  // degree vector or random; random avoids the trivial stationary point).
  std::vector<double> v(n);
  double norm = 0.0;
  for (auto& x : v) {
    x = rng->NextUniform(0.5, 1.5);
    norm += std::fabs(x);
  }
  for (auto& x : v) x /= norm;

  std::vector<double> next(n);
  for (int it = 0; it < iters; ++it) {
    // Lazy walk: next = 1/2 v + 1/2 D^-1 W v. The transaction graph is
    // bipartite (txn <-> entity edges only), so the plain iteration
    // oscillates between the two sides; the lazy step damps the -1
    // eigenvalue and converges to the per-component consensus PIC needs.
    for (int64_t i = 0; i < n; ++i) {
      int64_t begin = g.InDegreeBegin(static_cast<int32_t>(i));
      int64_t end = g.InDegreeEnd(static_cast<int32_t>(i));
      if (begin == end) {
        next[i] = v[i];  // isolated node: keep its value
        continue;
      }
      double acc = 0.0;
      for (int64_t e = begin; e < end; ++e) acc += v[g.neighbors()[e]];
      next[i] = 0.5 * v[i] + 0.5 * acc / static_cast<double>(end - begin);
    }
    double l1 = 0.0;
    for (double x : next) l1 += std::fabs(x);
    if (l1 < 1e-300) break;
    for (int64_t i = 0; i < n; ++i) v[i] = next[i] / l1;
  }
  return KMeans1D(v, k, rng);
}

std::vector<int> GroupClusters(const std::vector<int64_t>& cluster_sizes,
                               int num_groups) {
  XF_CHECK_GT(num_groups, 0);
  int64_t total = std::accumulate(cluster_sizes.begin(), cluster_sizes.end(),
                                  int64_t{0});
  int64_t target = (total + num_groups - 1) / num_groups;  // ceil(|V|/kappa)

  // Ascending size order (footnote 3), then fill group after group.
  std::vector<size_t> order(cluster_sizes.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return cluster_sizes[a] < cluster_sizes[b];
  });

  std::vector<int> group_of(cluster_sizes.size(), 0);
  int group = 0;
  int64_t filled = 0;
  size_t remaining = order.size();
  for (size_t idx : order) {
    group_of[idx] = group;
    filled += cluster_sizes[idx];
    --remaining;
    // Advance when the group reached its quota — or when every remaining
    // group must receive at least one of the remaining clusters.
    bool must_reserve =
        remaining > 0 &&
        remaining <= static_cast<size_t>(num_groups - group - 1);
    if ((filled >= target || must_reserve) && group + 1 < num_groups) {
      ++group;
      filled = 0;
    }
  }
  return group_of;
}

std::vector<int> PartitionForWorkers(const graph::HeteroGraph& g,
                                     int num_clusters, int num_workers,
                                     xfraud::Rng* rng) {
  std::vector<int> cluster_of = PowerIterationClustering(g, num_clusters, rng);
  std::vector<int64_t> sizes(num_clusters, 0);
  for (int c : cluster_of) ++sizes[c];
  std::vector<int> group_of_cluster = GroupClusters(sizes, num_workers);
  std::vector<int> worker_of(g.num_nodes());
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    worker_of[v] = group_of_cluster[cluster_of[v]];
  }
  return worker_of;
}

}  // namespace xfraud::dist
