#include "xfraud/dist/rendezvous.h"

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "xfraud/common/frame.h"
#include "xfraud/common/logging.h"
#include "xfraud/common/rng.h"
#include "xfraud/dist/socket_transport.h"
#include "xfraud/obs/registry.h"

namespace xfraud::dist {

std::string Endpoint::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Result<Endpoint> ParseEndpoint(std::string_view spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = std::string(spec.substr(5));
    if (ep.path.empty()) {
      return Status::InvalidArgument("unix endpoint needs a path");
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    std::string_view rest = spec.substr(4);
    std::string_view::size_type colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon + 1 >= rest.size()) {
      return Status::InvalidArgument(
          "tcp endpoint must be tcp:<host>:<port>, got " + std::string(spec));
    }
    ep.kind = Endpoint::Kind::kTcp;
    ep.host = std::string(rest.substr(0, colon));
    int port = 0;
    for (char c : rest.substr(colon + 1)) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("tcp endpoint port must be numeric");
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("tcp endpoint port out of range");
      }
    }
    ep.port = static_cast<uint16_t>(port);
    return ep;
  }
  return Status::InvalidArgument(
      "endpoint must start with unix: or tcp:, got " + std::string(spec));
}

RendezvousHost::RendezvousHost(UniqueFd listener, int world)
    : listener_(std::move(listener)), world_(world) {}

RendezvousHost::~RendezvousHost() = default;

Result<std::unique_ptr<RendezvousHost>> RendezvousHost::Create(
    const Endpoint& ep, int world) {
  XF_CHECK(world >= 1);
  Result<UniqueFd> listener = ListenOn(ep, nullptr);
  if (!listener.ok()) return listener.status();
  return std::make_unique<RendezvousHost>(std::move(listener).value(), world);
}

Result<Endpoint> RendezvousHost::Exchange(const Endpoint& rank0_ring,
                                          uint64_t generation,
                                          const Deadline& deadline,
                                          Clock* clock) {
  obs::Registry::Global().counter("dist/comm/rendezvous_rounds")->Increment();
  std::vector<std::unique_ptr<UniqueFd>> conns(
      static_cast<size_t>(world_));  // per joining rank
  std::vector<Endpoint> rings(static_cast<size_t>(world_));
  rings[0] = rank0_ring;
  int joined = 0;
  while (joined < world_ - 1) {
    Result<UniqueFd> accepted =
        AcceptWithDeadline(listener_.get(), deadline, clock);
    if (!accepted.ok()) return accepted.status();
    // A malformed or truncated join (e.g. a stray dial from a process that
    // died mid-handshake) is dropped; the real joiner retries.
    Result<FrameHeader> join =
        RecvFrameHeader(accepted.value().get(), deadline, clock);
    if (!join.ok()) {
      if (join.status().IsDeadlineExceeded()) return join.status();
      continue;
    }
    if (join.value().type != FrameType::kJoin) continue;
    const uint32_t rank = join.value().rank;
    if (rank == 0 || rank >= static_cast<uint32_t>(world_)) continue;
    std::string spec(join.value().payload_bytes, '\0');
    if (!spec.empty()) {
      Status got = RecvAllBytes(accepted.value().get(), spec.data(),
                                spec.size(), deadline, clock);
      if (!got.ok()) {
        if (got.IsDeadlineExceeded()) return got;
        continue;
      }
    }
    // A CRC-damaged join is dropped like any other malformed one; the real
    // joiner's retry dial supplies a clean frame.
    if (!VerifyFramePayload(join.value(), spec.data(), spec.size()).ok()) {
      continue;
    }
    Result<Endpoint> ring = ParseEndpoint(spec);
    if (!ring.ok()) continue;
    // Duplicate rank: a restarted worker raced its own dead predecessor
    // connection — latest join wins.
    if (conns[rank] == nullptr) ++joined;
    conns[rank] = std::make_unique<UniqueFd>(std::move(accepted).value());
    rings[rank] = ring.value();
  }
  // Everyone is here: assign each joiner its ring successor.
  for (int rank = 1; rank < world_; ++rank) {
    const Endpoint& succ = rings[static_cast<size_t>((rank + 1) % world_)];
    const std::string spec = succ.ToString();
    FrameHeader assign;
    assign.type = FrameType::kAssign;
    assign.rank = static_cast<uint32_t>(rank);
    assign.seq = generation;
    Status sent =
        SendFrame(conns[static_cast<size_t>(rank)]->get(), assign,
                  spec.data(), spec.size(), deadline, clock);
    if (!sent.ok()) return sent;
  }
  return rings[static_cast<size_t>(world_ > 1 ? 1 : 0)];
}

Result<Endpoint> JoinRendezvous(const Endpoint& host, int rank, int world,
                                const Endpoint& my_ring, uint64_t generation,
                                const Deadline& deadline,
                                const RetryPolicy& connect_retry,
                                Clock* clock, uint64_t* host_generation) {
  XF_CHECK(rank >= 1 && rank < world);
  RetryPolicy policy = connect_retry;
  policy.clock = clock;
  const uint64_t jitter_seed = Rng::StreamSeed(
      generation, static_cast<uint64_t>(rank) + 0x52445A56ULL);  // "RDZV"
  UniqueFd conn;
  // The host may not be listening yet (process start order is arbitrary)
  // or may be busy finishing the previous generation; connect refusals are
  // IoError and therefore retried with backoff.
  Status dialed = RetryWithBackoff(policy, jitter_seed, [&]() -> Status {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("rendezvous join timed out");
    }
    Result<UniqueFd> fd = DialEndpoint(host, deadline, clock);
    if (!fd.ok()) return fd.status();
    conn = std::move(fd).value();
    return Status::OK();
  });
  if (!dialed.ok()) return dialed;

  const std::string spec = my_ring.ToString();
  FrameHeader join;
  join.type = FrameType::kJoin;
  join.rank = static_cast<uint32_t>(rank);
  join.seq = generation;
  XF_RETURN_IF_ERROR(SendFrame(conn.get(), join, spec.data(), spec.size(),
                               deadline, clock));

  Result<FrameHeader> assign = RecvFrameHeader(conn.get(), deadline, clock);
  if (!assign.ok()) return assign.status();
  if (assign.value().type != FrameType::kAssign ||
      assign.value().rank != static_cast<uint32_t>(rank)) {
    return Status::Corruption("rendezvous: unexpected assignment frame");
  }
  std::string succ_spec(assign.value().payload_bytes, '\0');
  if (!succ_spec.empty()) {
    XF_RETURN_IF_ERROR(RecvAllBytes(conn.get(), succ_spec.data(),
                                    succ_spec.size(), deadline, clock));
  }
  XF_RETURN_IF_ERROR(
      VerifyFramePayload(assign.value(), succ_spec.data(), succ_spec.size()));
  if (host_generation != nullptr) {
    *host_generation = assign.value().seq;
  }
  return ParseEndpoint(succ_spec);
}

}  // namespace xfraud::dist
