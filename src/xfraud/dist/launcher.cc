#include "xfraud/dist/launcher.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>
#include <vector>

#include "xfraud/common/logging.h"
#include "xfraud/obs/registry.h"

namespace xfraud::dist {

namespace {

/// One forked rank. pid < 0 means "exited cleanly".
struct Child {
  pid_t pid = -1;
  int restarts = 0;
};

pid_t ForkWorker(const data::SimDataset& ds, DistWorkerOptions worker,
                 int rank, bool suppress_kill) {
  worker.rank = rank;
  worker.suppress_kill = suppress_kill;
  pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure, pid == -1)
  // Child: run the rank to completion and leave through _exit so no parent
  // state (atexit hooks, stream buffers) runs twice.
  Result<DistributedResult> run = RunDistWorker(ds, worker);
  if (!run.ok()) {
    XF_LOG(Error) << "dist worker " << rank
                  << " failed: " << run.status().message();
    ::_exit(3);
  }
  ::_exit(0);
}

void KillRemaining(std::vector<Child>* children) {
  for (Child& c : *children) {
    if (c.pid > 0) {
      ::kill(c.pid, SIGKILL);
      ::waitpid(c.pid, nullptr, 0);
      c.pid = -1;
    }
  }
}

}  // namespace

Result<ProcessClusterReport> RunProcessCluster(
    const data::SimDataset& ds, const ProcessClusterOptions& options) {
  const int world = options.worker.world;
  XF_CHECK(world >= 1);
  Clock* clock = options.clock != nullptr ? options.clock : Clock::Real();

  DistWorkerOptions worker = options.worker;
  XF_CHECK(!worker.checkpoint_dir.empty());
  std::error_code ec;
  std::filesystem::create_directories(worker.checkpoint_dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " +
                           worker.checkpoint_dir + ": " + ec.message());
  }
  if (worker.rendezvous.empty()) {
    // AF_UNIX paths are capped around ~100 chars; checkpoint dirs under
    // /tmp stay well inside that.
    worker.rendezvous = "unix:" + worker.checkpoint_dir + "/rdzv.sock";
  }

  obs::Counter* forks =
      obs::Registry::Global().counter("dist/launcher/forks");
  obs::Counter* signal_deaths =
      obs::Registry::Global().counter("dist/launcher/signal_deaths");

  ProcessClusterReport report;
  std::vector<Child> children(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    pid_t pid = ForkWorker(ds, worker, r, worker.suppress_kill);
    if (pid < 0) {
      KillRemaining(&children);
      return Status::IoError("fork failed for dist worker rank " +
                             std::to_string(r));
    }
    forks->Increment();
    children[static_cast<size_t>(r)].pid = pid;
  }

  const Deadline deadline = Deadline::After(clock, options.overall_timeout_s);
  int running = world;
  while (running > 0) {
    if (deadline.Expired()) {
      KillRemaining(&children);
      return Status::DeadlineExceeded(
          "process cluster exceeded its overall timeout");
    }
    int status = 0;
    pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid == 0 || (pid < 0 && errno == EINTR)) {
      clock->SleepFor(0.01);
      continue;
    }
    if (pid < 0) {
      KillRemaining(&children);
      return Status::IoError("waitpid failed while supervising dist workers");
    }
    int rank = -1;
    for (int r = 0; r < world; ++r) {
      if (children[static_cast<size_t>(r)].pid == pid) rank = r;
    }
    if (rank < 0) continue;  // not one of ours (shouldn't happen)
    Child& child = children[static_cast<size_t>(rank)];
    child.pid = -1;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      --running;
      continue;
    }
    if (WIFSIGNALED(status)) {
      // A real process death (the fault plan's SIGKILL lands here). Restart
      // the rank with the kill suppressed; it resumes from its checkpoint
      // and rejoins the ring under the next generation.
      signal_deaths->Increment();
      report.kills_observed.push_back(rank);
      if (child.restarts >= options.max_restarts_per_rank) {
        KillRemaining(&children);
        return Status::Internal(
            "dist worker rank " + std::to_string(rank) +
            " exhausted its restart budget");
      }
      ++child.restarts;
      ++report.restarts;
      XF_LOG(Info) << "dist launcher restarting rank " << rank
                   << " after signal " << WTERMSIG(status) << " (restart "
                   << child.restarts << ")";
      pid_t again = ForkWorker(ds, worker, rank, /*suppress_kill=*/true);
      if (again < 0) {
        KillRemaining(&children);
        return Status::IoError("fork failed restarting dist worker rank " +
                               std::to_string(rank));
      }
      forks->Increment();
      child.pid = again;
      continue;
    }
    // A clean-but-failing exit is a worker-reported error, not a machine
    // loss: restarting would loop on the same failure.
    KillRemaining(&children);
    return Status::Internal("dist worker rank " + std::to_string(rank) +
                            " exited with code " +
                            std::to_string(WEXITSTATUS(status)));
  }

  Result<DistributedResult> result =
      LoadDistResult(worker.checkpoint_dir + "/result.bin");
  if (!result.ok()) return result.status();
  report.result = std::move(result).value();
  return report;
}

}  // namespace xfraud::dist
