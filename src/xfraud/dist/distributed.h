#ifndef XFRAUD_DIST_DISTRIBUTED_H_
#define XFRAUD_DIST_DISTRIBUTED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "xfraud/common/retry.h"
#include "xfraud/core/gnn_model.h"
#include "xfraud/data/generator.h"
#include "xfraud/dist/communicator.h"
#include "xfraud/sample/sampler.h"
#include "xfraud/train/trainer.h"

namespace xfraud::fault {
class FaultInjector;
}  // namespace xfraud::fault

namespace xfraud::dist {

/// Stream tags of the distributed simulation's independent sampling roots
/// (per-worker training streams and the rank-0 evaluation stream). Shared
/// with the multi-process worker (dist/worker.h), which must derive the
/// exact same per-(epoch, rank) loader streams for a fault-free socket run
/// to be bit-identical to the in-process run.
inline constexpr uint64_t kDistSampleTag = 0x44495354ULL;  // "DIST"
inline constexpr uint64_t kDistEvalTag = 0x4456414CULL;    // "DVAL"

/// What the cluster does when a worker dies mid-epoch (the fault model a
/// production DDP job needs; injected deterministically via
/// fault::FaultInjector for tests).
enum class FailureRecovery {
  /// Survivors absorb the dead worker's remaining batches this epoch
  /// (elastic, kappa-1 semantics); the dead replica re-syncs parameters and
  /// optimizer state from a survivor at the epoch boundary.
  kElastic,
  /// Roll every replica back to the epoch-start snapshot and re-run the
  /// epoch without the dead worker's failure (it "restarted").
  kRestartEpoch,
};

/// Options of the distributed-training simulation (paper §3.3, §4).
struct DistributedOptions {
  int num_workers = 8;    // kappa
  int num_clusters = 128;  // PIC subgraphs before grouping
  /// Shared training protocol. train.num_sample_workers /
  /// train.prefetch_depth configure each replica's BatchLoader pipeline
  /// (every replica prefetches batches from its partition with that many
  /// sampler threads).
  train::TrainOptions train;
  /// Modeled per-step all-reduce latency added to the simulated cluster
  /// epoch time (gradient exchange is not free on a real cluster).
  double sync_overhead_seconds = 0.002;
  /// Optional chaos source (not owned). Its plan's kill_worker@epoch:step
  /// kills that worker mid-epoch; with kv_backed_loaders it also injects
  /// KV faults into every worker's feature reads.
  fault::FaultInjector* fault_injector = nullptr;
  /// Recovery policy when fault_injector kills a worker.
  FailureRecovery recovery = FailureRecovery::kElastic;
  /// Serve each worker's batch features from a per-worker KV-backed
  /// FeatureStore built over its partition (the paper's §3.3.3 serving
  /// topology: one KV loader per worker; partitions use local node ids, so
  /// stores cannot be shared). Required for KV fault injection to reach the
  /// distributed path.
  bool kv_backed_loaders = false;
  /// Retry policy of every worker's feature reads (see common/retry.h).
  /// Defaults to a single attempt; raise max_attempts to ride out injected
  /// or real transient KV errors.
  RetryPolicy kv_retry;
  /// Collective backend, one endpoint per rank (communicators[w] must have
  /// rank() == w and size() == num_workers). Not owned. Empty means the
  /// trainer builds its own phased InProcessGroup, which reproduces the
  /// historical shared-memory semantics bit-identically.
  std::vector<Communicator*> communicators;
};

/// Per-epoch record of the distributed run.
struct DistributedEpoch {
  int epoch = 0;
  double train_loss = 0.0;
  double val_auc = 0.0;
  /// Measured wall-clock of this epoch (all workers ran on this machine).
  double wall_seconds = 0.0;
  /// Slowest worker's neighbourhood-sampling cost this epoch (measured in
  /// the BatchLoader, wherever it ran).
  double max_worker_sample_seconds = 0.0;
  /// Slowest worker's gradient-compute (forward+backward) cost this epoch.
  double max_worker_compute_seconds = 0.0;
  /// Sync cost of this epoch, split by provenance so the two are never
  /// summed: exactly one of the pair is nonzero. `modeled_sync_seconds` is
  /// the in-process model (sync_overhead_seconds × steps);
  /// `measured_comm_seconds` is the slowest rank's measured time inside
  /// collectives when the backend is a real transport
  /// (Communicator::comm_seconds() > 0, i.e. the socket ring).
  double modeled_sync_seconds = 0.0;
  double measured_comm_seconds = 0.0;
  /// The epoch's sync cost: measured when the backend measures, else the
  /// model.
  double sync_seconds() const {
    return measured_comm_seconds > 0.0 ? measured_comm_seconds
                                       : modeled_sync_seconds;
  }
  /// Simulated cluster wall-clock: max over workers of their measured
  /// epoch cost plus sync_seconds() — what a kappa-machine cluster
  /// would take, since workers compute concurrently there. A worker's
  /// epoch cost is sample+compute on the serial path, and
  /// max(sample, compute) when sampler workers pipeline batches ahead of
  /// the gradient step (train.num_sample_workers > 0), since sampling then
  /// overlaps compute. (This host has one core, so thread wall-clock would
  /// not show the paper's speedup; the per-worker costs are measured for
  /// real, only the overlap is modeled. See DESIGN.md §1.)
  double simulated_cluster_seconds = 0.0;
  /// Fault accounting: which worker died this epoch (-1 = none), how many
  /// of its batches survivors absorbed (elastic), whether the epoch was
  /// rolled back and re-run (restart), and what the recovery itself cost in
  /// wall-clock seconds (extra forward/backward on survivors + the rejoin
  /// parameter/optimizer sync, or the snapshot restore).
  int killed_worker = -1;
  int64_t redistributed_batches = 0;
  bool restarted = false;
  double recovery_seconds = 0.0;
};

struct DistributedResult {
  std::vector<DistributedEpoch> history;
  double best_val_auc = 0.0;
  double mean_wall_epoch_seconds = 0.0;
  double mean_simulated_epoch_seconds = 0.0;
  /// Node counts of each worker's partition (balance diagnostics).
  std::vector<int64_t> partition_nodes;
  /// Fraction of directed edges cut by the partitioning.
  double edge_cut_fraction = 0.0;
};

/// DistributedDataParallel simulation (paper §3.3.2): `num_workers` model
/// replicas with identical initial weights, each training on its own PIC
/// partition of the graph. Every step, each replica computes gradients on a
/// mini-batch drawn from its partition; gradients are averaged across
/// replicas (the DDP all-reduce) and the identical update is applied to
/// every replica, keeping them synchronized — exactly PyTorch DDP's
/// semantics. Because each worker only sees its partition's induced
/// subgraph, neighbourhoods are restrained, reproducing the paper's
/// quality/efficiency trade-off (§4.1: more machines, faster epochs, lower
/// AUC).
class DistributedTrainer {
 public:
  /// `replicas` must be identically-initialized models (same seed).
  DistributedTrainer(std::vector<core::GnnModel*> replicas,
                     const sample::Sampler* sampler,
                     DistributedOptions options);

  /// Partitions ds.graph, trains, and evaluates replica 0 against the
  /// global validation split each epoch.
  DistributedResult Train(const data::SimDataset& ds);

 private:
  std::vector<core::GnnModel*> replicas_;
  const sample::Sampler* sampler_;
  DistributedOptions options_;
};

}  // namespace xfraud::dist

#endif  // XFRAUD_DIST_DISTRIBUTED_H_
