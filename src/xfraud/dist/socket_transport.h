#ifndef XFRAUD_DIST_SOCKET_TRANSPORT_H_
#define XFRAUD_DIST_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "xfraud/common/clock.h"
#include "xfraud/common/fd.h"
#include "xfraud/common/frame.h"
#include "xfraud/common/retry.h"
#include "xfraud/common/status.h"
#include "xfraud/dist/communicator.h"
#include "xfraud/dist/rendezvous.h"

namespace xfraud::dist {

// ---- Low-level nonblocking socket I/O under a Deadline ---------------------
//
// All blocking is poll()-based with the remaining deadline budget as the
// timeout, so a dead peer costs at most the deadline, never a hang. Error
// mapping: expiry -> DeadlineExceeded; peer closed / reset -> Unavailable;
// transient connect failures (ECONNREFUSED, missing unix path) -> IoError so
// RetryWithBackoff (common/retry.h) treats them as retryable.

/// Dials `ep`; the returned fd is connected and nonblocking.
Result<UniqueFd> DialEndpoint(const Endpoint& ep, const Deadline& deadline,
                              Clock* clock);

/// Accepts one connection from a nonblocking listener.
Result<UniqueFd> AcceptWithDeadline(int listener, const Deadline& deadline,
                                    Clock* clock);

Status SendAllBytes(int fd, const void* data, size_t n,
                    const Deadline& deadline, Clock* clock);
Status RecvAllBytes(int fd, void* data, size_t n, const Deadline& deadline,
                    Clock* clock);

/// Writes header + payload. `header.payload_bytes` and `header.payload_crc`
/// are sealed from `n` / the payload bytes (SealFramePayload), so every
/// frame on the wire carries a receiver-verifiable payload checksum.
Status SendFrame(int fd, FrameHeader header, const void* payload, size_t n,
                 const Deadline& deadline, Clock* clock);

/// SendFrame with wire-level fault injection: the header is sealed over the
/// *clean* payload, then byte `corrupt_byte` of the payload is flipped
/// before it hits the wire — the receiver must detect the damage through
/// the payload CRC. `corrupt_byte` outside [0, n) sends the frame intact.
Status SendFrameCorrupting(int fd, FrameHeader header, const void* payload,
                           size_t n, int64_t corrupt_byte,
                           const Deadline& deadline, Clock* clock);

/// Reads and validates one frame header (payload is read by the caller,
/// who is responsible for VerifyFramePayload once it has the bytes).
Result<FrameHeader> RecvFrameHeader(int fd, const Deadline& deadline,
                                    Clock* clock);

/// Reads `header.payload_bytes` of payload for an already-received header
/// into `*payload` (resized) and verifies the payload CRC; Corruption on a
/// flipped or torn payload.
Status RecvFramePayload(int fd, const FrameHeader& header,
                        std::vector<unsigned char>* payload,
                        const Deadline& deadline, Clock* clock);

/// Reads one frame that must match `want` type with exactly
/// `payload_bytes` of payload, into `payload` (CRC-verified).
Status RecvFrameInto(int fd, FrameType want, void* payload,
                     size_t payload_bytes, const Deadline& deadline,
                     Clock* clock);

/// Waits until any fd in `fds` is readable and returns its index in `fds`
/// (ties break toward the lowest index); DeadlineExceeded on expiry. The
/// serving tier's event loops (shard server, router hedging) multiplex
/// connections through this instead of issuing their own poll() — socket
/// readiness stays a dist/ primitive.
Result<int> WaitAnyReadable(const std::vector<int>& fds,
                            const Deadline& deadline, Clock* clock);

// ---- SocketCommunicator ----------------------------------------------------

struct SocketCommOptions {
  int rank = 0;
  int world = 1;
  /// Rendezvous endpoint spec (`unix:<path>` or `tcp:host:port`).
  Endpoint rendezvous;
  /// Per-connect budget when dialing the rendezvous or ring successor.
  double connect_timeout_s = 10.0;
  /// Budget for one collective (the slowest frame hop within it).
  double op_timeout_s = 60.0;
  /// Budget for the whole cluster to assemble at the rendezvous.
  double rendezvous_timeout_s = 60.0;
  /// Backoff policy for dialing a host that is not listening yet.
  RetryPolicy connect_retry{.max_attempts = 50,
                            .initial_backoff_s = 0.002,
                            .max_backoff_s = 0.25,
                            .deadline_s = 60.0};
  /// Rendezvous generation this rank believes it is joining; the host's
  /// assignment overrides it (read back via generation()).
  uint64_t generation = 0;
  /// Time source; nullptr means Clock::Real(). Socket readiness still comes
  /// from poll(), so a VirtualClock only makes sense for already-ready fds.
  Clock* clock = nullptr;
};

/// Ring transport over local sockets: every rank owns a listening "ring"
/// endpoint, learns its successor from the rank-0 rendezvous, dials it, and
/// accepts its predecessor. Collectives are single- or double-pass ring
/// walks (see DESIGN.md §12) whose reduction order is the same ascending-
/// rank left fold as the in-process backend, so results are bit-identical
/// across backends.
///
/// Any frame error (timeout, peer death, header mismatch) breaks the ring:
/// the failing call tears down both ring connections — waking the
/// neighbours with EOF so failure detection cascades around the ring — and
/// every subsequent collective fails fast with the original error. Recovery
/// is the caller's job: roll back to the epoch-start checkpoint, bump the
/// generation, and Connect() a fresh communicator.
class SocketCommunicator final : public Communicator {
 public:
  /// Full connection dance: bind the ring listener, rendezvous (rank 0
  /// hosts via `host`, which must be non-null iff rank == 0 and world > 1),
  /// dial the successor, accept the predecessor, exchange hellos.
  static Result<std::unique_ptr<SocketCommunicator>> Connect(
      const SocketCommOptions& options, RendezvousHost* host);

  ~SocketCommunicator() override;

  int rank() const override;
  int size() const override;
  Status AllReduceSum(std::span<float> data) override;
  Status AllReduceSum(std::span<double> data) override;
  Status Broadcast(std::span<float> data, int root) override;
  Status Broadcast(std::span<double> data, int root) override;
  Status Barrier() override;
  Status Gather(std::span<const float> send, int root,
                std::vector<std::vector<float>>* recv) override;
  double comm_seconds() const override;
  int64_t bytes_on_wire() const override;

  /// Generation assigned by the rendezvous host at Connect time.
  uint64_t generation() const;

  /// Closes both ring connections (idempotent). Neighbours see EOF and fail
  /// their in-flight collective with Unavailable.
  void Shutdown();

  struct Impl;
  /// Use Connect() — public only so make_unique can reach it; Impl is not
  /// constructible outside this class's implementation.
  explicit SocketCommunicator(std::unique_ptr<Impl> impl);

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace xfraud::dist

#endif  // XFRAUD_DIST_SOCKET_TRANSPORT_H_
