#include "xfraud/dist/distributed.h"

#include <algorithm>
#include <cmath>

#include "xfraud/common/logging.h"
#include "xfraud/common/timer.h"
#include "xfraud/dist/partition.h"
#include "xfraud/graph/subgraph.h"
#include "xfraud/nn/optim.h"

namespace xfraud::dist {

using train::FraudProbabilities;

DistributedTrainer::DistributedTrainer(std::vector<core::GnnModel*> replicas,
                                       const sample::Sampler* sampler,
                                       DistributedOptions options)
    : replicas_(std::move(replicas)),
      sampler_(sampler),
      options_(options) {
  XF_CHECK_EQ(replicas_.size(), static_cast<size_t>(options_.num_workers));
}

DistributedResult DistributedTrainer::Train(const data::SimDataset& ds) {
  const int kappa = options_.num_workers;
  DistributedResult result;
  xfraud::Rng rng(options_.train.seed * 0x2545F491ULL + 0xBEEF);

  // ---- Partition: PIC -> 128 clusters -> kappa balanced groups ----------
  std::vector<int> worker_of =
      PartitionForWorkers(ds.graph, options_.num_clusters, kappa, &rng);

  std::vector<std::vector<int32_t>> worker_nodes(kappa);
  for (int64_t v = 0; v < ds.graph.num_nodes(); ++v) {
    worker_nodes[worker_of[v]].push_back(static_cast<int32_t>(v));
  }
  // Edge-cut diagnostic: fraction of directed edges crossing partitions.
  int64_t cut = 0;
  for (int64_t v = 0; v < ds.graph.num_nodes(); ++v) {
    for (int64_t e = ds.graph.InDegreeBegin(static_cast<int32_t>(v));
         e < ds.graph.InDegreeEnd(static_cast<int32_t>(v)); ++e) {
      cut += worker_of[ds.graph.neighbors()[e]] != worker_of[v];
    }
  }
  result.edge_cut_fraction =
      ds.graph.num_edges() > 0
          ? static_cast<double>(cut) / ds.graph.num_edges()
          : 0.0;

  // Each worker materializes its induced partition graph (its whole world).
  struct Worker {
    graph::HeteroGraph graph;
    std::vector<int32_t> local_train;  // local train seed ids
    std::unique_ptr<nn::AdamW> optimizer;
    xfraud::Rng rng{0};
    size_t cursor = 0;
    double compute_seconds = 0.0;  // this epoch
    double loss_sum = 0.0;
    int64_t steps = 0;
  };
  std::vector<Worker> workers(kappa);
  std::vector<int8_t> in_train(ds.graph.num_nodes(), 0);
  for (int32_t v : ds.train_nodes) in_train[v] = 1;
  for (int w = 0; w < kappa; ++w) {
    result.partition_nodes.push_back(
        static_cast<int64_t>(worker_nodes[w].size()));
    std::vector<int32_t> local_to_global;
    workers[w].graph =
        graph::InducedGraph(ds.graph, worker_nodes[w], &local_to_global);
    for (size_t local = 0; local < local_to_global.size(); ++local) {
      if (in_train[local_to_global[local]]) {
        workers[w].local_train.push_back(static_cast<int32_t>(local));
      }
    }
    workers[w].optimizer = std::make_unique<nn::AdamW>(
        replicas_[w]->Parameters(),
        nn::AdamWOptions{.lr = options_.train.lr,
                         .weight_decay = options_.train.weight_decay});
    workers[w].rng = xfraud::Rng(options_.train.seed + 1000 + w);
    workers[w].rng.Shuffle(&workers[w].local_train);
  }

  // Steps per epoch: the busiest worker's batch count (others wrap).
  size_t max_train = 1;
  for (const auto& w : workers) {
    max_train = std::max(max_train, w.local_train.size());
  }
  int64_t steps_per_epoch = static_cast<int64_t>(
      (max_train + options_.train.batch_size - 1) /
      options_.train.batch_size);

  // Validation via replica 0 on the full graph.
  sample::SageSampler eval_sampler(2, 12);
  auto evaluate = [&](const std::vector<int32_t>& nodes) {
    train::EvalResult eval;
    core::ForwardOptions fwd;
    xfraud::Rng eval_rng(7);
    for (size_t begin = 0; begin < nodes.size(); begin += 640) {
      size_t end = std::min(begin + 640, nodes.size());
      std::vector<int32_t> seeds(nodes.begin() + begin, nodes.begin() + end);
      sample::MiniBatch batch =
          eval_sampler.SampleBatch(ds.graph, seeds, &eval_rng);
      nn::Var logits = replicas_[0]->Forward(batch, fwd);
      auto probs = FraudProbabilities(logits);
      eval.scores.insert(eval.scores.end(), probs.begin(), probs.end());
      eval.labels.insert(eval.labels.end(), batch.target_labels.begin(),
                         batch.target_labels.end());
    }
    eval.auc = train::RocAuc(eval.scores, eval.labels);
    return eval;
  };

  auto params0 = replicas_[0]->Parameters();
  std::vector<std::vector<nn::NamedParameter>> params(kappa);
  for (int w = 0; w < kappa; ++w) params[w] = replicas_[w]->Parameters();

  int stale = 0;
  for (int epoch = 0; epoch < options_.train.max_epochs; ++epoch) {
    WallTimer epoch_timer;
    for (auto& w : workers) {
      w.compute_seconds = 0.0;
      w.loss_sum = 0.0;
      w.steps = 0;
    }
    for (int64_t step = 0; step < steps_per_epoch; ++step) {
      // Phase 1: every worker computes gradients on its own partition.
      // (Run serially on this single-core host; each worker's compute time
      // is measured individually to model the concurrent cluster.)
      for (int w = 0; w < kappa; ++w) {
        Worker& worker = workers[w];
        if (worker.local_train.empty()) {
          for (auto& p : params[w]) p.var.ZeroGrad();
          continue;
        }
        WallTimer t;
        std::vector<int32_t> seeds;
        for (int b = 0; b < options_.train.batch_size; ++b) {
          if (worker.cursor >= worker.local_train.size()) {
            worker.cursor = 0;
            worker.rng.Shuffle(&worker.local_train);
          }
          seeds.push_back(worker.local_train[worker.cursor++]);
        }
        // Dedup seeds that wrapped around within one batch.
        std::sort(seeds.begin(), seeds.end());
        seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
        sample::MiniBatch batch =
            sampler_->SampleBatch(worker.graph, seeds, &worker.rng);
        core::ForwardOptions fwd;
        fwd.training = true;
        fwd.rng = &worker.rng;
        nn::Var logits = replicas_[w]->Forward(batch, fwd);
        nn::Var loss = nn::CrossEntropy(logits, batch.target_labels,
                                        options_.train.class_weights);
        worker.optimizer->ZeroGrad();
        loss.Backward();
        worker.loss_sum += loss.item();
        ++worker.steps;
        worker.compute_seconds += t.ElapsedSeconds();
      }

      // Phase 2: DDP all-reduce — average gradients across replicas and
      // write the mean back into every replica's gradient buffers.
      for (size_t p = 0; p < params0.size(); ++p) {
        nn::Tensor& acc = params[0][p].var.grad();
        for (int w = 1; w < kappa; ++w) {
          acc.AddInPlace(params[w][p].var.grad());
        }
        acc.ScaleInPlace(1.0f / static_cast<float>(kappa));
        for (int w = 1; w < kappa; ++w) {
          params[w][p].var.grad() = acc;
        }
      }

      // Phase 3: identical optimizer step on every replica (states match,
      // so replicas stay synchronized).
      for (int w = 0; w < kappa; ++w) {
        workers[w].optimizer->ClipGradNorm(options_.train.clip);
        workers[w].optimizer->Step();
      }
    }

    double wall = epoch_timer.ElapsedSeconds();
    double slowest = 0.0;
    double loss_sum = 0.0;
    int64_t loss_steps = 0;
    for (const auto& w : workers) {
      slowest = std::max(slowest, w.compute_seconds);
      loss_sum += w.loss_sum;
      loss_steps += w.steps;
    }

    train::EvalResult val = evaluate(ds.val_nodes);
    DistributedEpoch stats;
    stats.epoch = epoch;
    stats.train_loss = loss_steps > 0 ? loss_sum / loss_steps : 0.0;
    stats.val_auc = val.auc;
    stats.wall_seconds = wall;
    stats.simulated_cluster_seconds =
        slowest + options_.sync_overhead_seconds * steps_per_epoch;
    result.history.push_back(stats);

    if (options_.train.verbose) {
      XF_LOG(Info) << "dist(" << kappa << ") epoch " << epoch << " loss "
                   << stats.train_loss << " val_auc " << val.auc << " sim "
                   << stats.simulated_cluster_seconds << "s";
    }
    if (val.auc > result.best_val_auc) {
      result.best_val_auc = val.auc;
      stale = 0;
    } else if (++stale >= options_.train.patience) {
      break;
    }
  }

  for (const auto& e : result.history) {
    result.mean_wall_epoch_seconds += e.wall_seconds;
    result.mean_simulated_epoch_seconds += e.simulated_cluster_seconds;
  }
  if (!result.history.empty()) {
    result.mean_wall_epoch_seconds /= result.history.size();
    result.mean_simulated_epoch_seconds /= result.history.size();
  }
  return result;
}

}  // namespace xfraud::dist
