#include "xfraud/dist/distributed.h"

#include <algorithm>
#include <cmath>

#include "xfraud/common/logging.h"
#include "xfraud/common/timer.h"
#include "xfraud/dist/partition.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/fault/faulty_kv.h"
#include "xfraud/graph/subgraph.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/kv/mem_kv.h"
#include "xfraud/nn/optim.h"
#include "xfraud/obs/registry.h"
#include "xfraud/obs/trace.h"
#include "xfraud/sample/batch_loader.h"

namespace xfraud::dist {

using train::FraudProbabilities;

DistributedTrainer::DistributedTrainer(std::vector<core::GnnModel*> replicas,
                                       const sample::Sampler* sampler,
                                       DistributedOptions options)
    : replicas_(std::move(replicas)),
      sampler_(sampler),
      options_(options) {
  XF_CHECK_EQ(replicas_.size(), static_cast<size_t>(options_.num_workers));
}

DistributedResult DistributedTrainer::Train(const data::SimDataset& ds) {
  const int kappa = options_.num_workers;
  DistributedResult result;
  xfraud::Rng rng(options_.train.seed * 0x2545F491ULL + 0xBEEF);

  // ---- Partition: PIC -> 128 clusters -> kappa balanced groups ----------
  std::vector<int> worker_of =
      PartitionForWorkers(ds.graph, options_.num_clusters, kappa, &rng);

  std::vector<std::vector<int32_t>> worker_nodes(kappa);
  for (int64_t v = 0; v < ds.graph.num_nodes(); ++v) {
    worker_nodes[worker_of[v]].push_back(static_cast<int32_t>(v));
  }
  // Edge-cut diagnostic: fraction of directed edges crossing partitions.
  int64_t cut = 0;
  for (int64_t v = 0; v < ds.graph.num_nodes(); ++v) {
    for (int64_t e = ds.graph.InDegreeBegin(static_cast<int32_t>(v));
         e < ds.graph.InDegreeEnd(static_cast<int32_t>(v)); ++e) {
      cut += worker_of[ds.graph.neighbors()[e]] != worker_of[v];
    }
  }
  result.edge_cut_fraction =
      ds.graph.num_edges() > 0
          ? static_cast<double>(cut) / ds.graph.num_edges()
          : 0.0;

  // Each worker materializes its induced partition graph (its whole world).
  struct Worker {
    graph::HeteroGraph graph;
    std::vector<int32_t> local_train;  // local train seed ids
    std::unique_ptr<nn::AdamW> optimizer;
    xfraud::Rng rng{0};
    size_t cursor = 0;
    std::unique_ptr<sample::BatchLoader> loader;  // this epoch's pipeline
    double compute_seconds = 0.0;  // this epoch
    double sample_seconds = 0.0;   // this epoch
    double loss_sum = 0.0;
    int64_t steps = 0;
    bool alive = true;
    // KV serving path (kv_backed_loaders): the worker's partition ingested
    // into its own store — partitions use local node ids, so stores cannot
    // be shared across workers — optionally fronted by a fault decorator.
    std::unique_ptr<kv::MemKvStore> kv;
    std::unique_ptr<fault::FaultyKvStore> faulty_kv;
    std::unique_ptr<kv::FeatureStore> features;
  };
  fault::FaultInjector* injector = options_.fault_injector;
  std::vector<Worker> workers(kappa);
  std::vector<int8_t> in_train(ds.graph.num_nodes(), 0);
  for (int32_t v : ds.train_nodes) in_train[v] = 1;
  for (int w = 0; w < kappa; ++w) {
    result.partition_nodes.push_back(
        static_cast<int64_t>(worker_nodes[w].size()));
    std::vector<int32_t> local_to_global;
    workers[w].graph =
        graph::InducedGraph(ds.graph, worker_nodes[w], &local_to_global);
    for (size_t local = 0; local < local_to_global.size(); ++local) {
      if (in_train[local_to_global[local]]) {
        workers[w].local_train.push_back(static_cast<int32_t>(local));
      }
    }
    workers[w].optimizer = std::make_unique<nn::AdamW>(
        replicas_[w]->Parameters(),
        nn::AdamWOptions{.lr = options_.train.lr,
                         .weight_decay = options_.train.weight_decay});
    workers[w].rng = xfraud::Rng(options_.train.seed + 1000 + w);
    workers[w].rng.Shuffle(&workers[w].local_train);
    if (options_.kv_backed_loaders) {
      workers[w].kv = std::make_unique<kv::MemKvStore>();
      // Ingest through the raw store — faults belong to the serving path,
      // not to the one-time bulk load of a frozen per-worker partition.
      kv::FeatureStore ingest(workers[w].kv.get());
      // xfraud-analyze: allow(ingest-bypass)
      Status ingested = ingest.Ingest(workers[w].graph);
      XF_CHECK(ingested.ok());
      kv::KvStore* serving = workers[w].kv.get();
      if (injector != nullptr) {
        workers[w].faulty_kv = std::make_unique<fault::FaultyKvStore>(
            workers[w].kv.get(), injector);
        serving = workers[w].faulty_kv.get();
      }
      workers[w].features = std::make_unique<kv::FeatureStore>(serving);
      workers[w].features->set_retry_policy(options_.kv_retry);
    }
  }

  // Steps per epoch: the busiest worker's batch count (others wrap).
  size_t max_train = 1;
  for (const auto& w : workers) {
    max_train = std::max(max_train, w.local_train.size());
  }
  int64_t steps_per_epoch = static_cast<int64_t>(
      (max_train + options_.train.batch_size - 1) /
      options_.train.batch_size);

  // Loader knobs shared by every sampling pipeline of the simulation.
  const sample::LoaderOptions loader_opts{
      .num_workers = options_.train.num_sample_workers,
      .prefetch_depth = options_.train.prefetch_depth};
  const bool pipelined = loader_opts.num_workers > 0;

  // Validation via replica 0 on the full graph, through its own loader on
  // a dedicated eval stream.
  sample::SageSampler eval_sampler(2, 12);
  const uint64_t eval_stream =
      xfraud::Rng::StreamSeed(options_.train.seed, kDistEvalTag);
  auto evaluate = [&](const std::vector<int32_t>& nodes) {
    train::EvalResult eval;
    core::ForwardOptions fwd;
    sample::BatchLoader loader(
        &ds.graph, &eval_sampler,
        sample::BatchLoader::MakeSeedBatches(nodes, 640), eval_stream,
        loader_opts);
    while (auto loaded = loader.Next()) {
      nn::Var logits = replicas_[0]->Forward(loaded->batch, fwd);
      auto probs = FraudProbabilities(logits);
      eval.scores.insert(eval.scores.end(), probs.begin(), probs.end());
      eval.labels.insert(eval.labels.end(),
                         loaded->batch.target_labels.begin(),
                         loaded->batch.target_labels.end());
    }
    eval.auc = train::RocAuc(eval.scores, eval.labels);
    return eval;
  };

  auto params0 = replicas_[0]->Parameters();
  std::vector<std::vector<nn::NamedParameter>> params(kappa);
  for (int w = 0; w < kappa; ++w) params[w] = replicas_[w]->Parameters();

  // Collective backend. With no injected communicators the trainer owns a
  // phased InProcessGroup: each rank's collective call deposits its buffer
  // and returns, and the last rank's call executes the operation — the
  // pattern a serial driver needs (a blocking collective would deadlock the
  // single thread playing every rank in turn).
  std::unique_ptr<InProcessGroup> owned_group;
  std::vector<Communicator*> comm = options_.communicators;
  if (comm.empty()) {
    owned_group = std::make_unique<InProcessGroup>(kappa);
    for (int w = 0; w < kappa; ++w) {
      comm.push_back(owned_group->communicator(w));
    }
  }
  XF_CHECK_EQ(comm.size(), static_cast<size_t>(kappa));
  for (int w = 0; w < kappa; ++w) {
    XF_CHECK_EQ(comm[w]->rank(), w);
    XF_CHECK_EQ(comm[w]->size(), kappa);
  }

  // Simulated comms accounting: a ring all-reduce over kappa workers moves
  // 2*(kappa-1) gradient-buffer copies across the cluster per round (the
  // reduce-scatter plus the all-gather). Measured as modeled volume — this
  // host runs the replicas serially, but byte counts are what a real
  // cluster's NICs would carry.
  auto& obs_registry = obs::Registry::Global();
  obs::Counter* allreduce_rounds = obs_registry.counter("dist/allreduce_rounds");
  obs::Counter* allreduce_bytes = obs_registry.counter("dist/allreduce_bytes");
  obs::Histogram* round_bytes = obs_registry.histogram("dist/round_bytes");
  obs::Counter* worker_kills = obs_registry.counter("dist/worker_kills");
  obs::Counter* redistributed_ctr =
      obs_registry.counter("dist/redistributed_batches");
  obs::Counter* epoch_restarts = obs_registry.counter("dist/epoch_restarts");
  obs_registry.gauge("dist/workers")->Set(static_cast<double>(kappa));
  int64_t param_floats = 0;
  for (const auto& p : params0) param_floats += p.var.value().size();
  const int64_t ring_bytes_per_round =
      2 * static_cast<int64_t>(kappa - 1) * param_floats *
      static_cast<int64_t>(sizeof(float));

  // Epoch-start state for FailureRecovery::kRestartEpoch: enough to re-run
  // the epoch exactly (replicas are synchronized, so one parameter/optimizer
  // image covers all of them; the shuffle walk is per-worker).
  struct EpochSnapshot {
    std::vector<nn::Tensor> params;
    std::vector<nn::Tensor> opt_m;
    std::vector<nn::Tensor> opt_v;
    int64_t opt_step = 0;
    std::vector<xfraud::Rng::State> rng;
    std::vector<size_t> cursor;
    std::vector<std::vector<int32_t>> order;
  };

  int stale = 0;
  for (int epoch = 0; epoch < options_.train.max_epochs; ++epoch) {
    obs::ScopedSpan epoch_span("dist/epoch");
    WallTimer epoch_timer;
    std::vector<double> comm_seconds_at_start(kappa);
    for (int w = 0; w < kappa; ++w) {
      comm_seconds_at_start[w] = comm[w]->comm_seconds();
    }
    const bool may_kill_this_epoch =
        injector != nullptr && injector->plan().kill_worker >= 0 &&
        injector->plan().kill_epoch == epoch;
    EpochSnapshot snap;
    if (may_kill_this_epoch &&
        options_.recovery == FailureRecovery::kRestartEpoch) {
      for (const auto& p : params0) snap.params.push_back(p.var.value());
      snap.opt_m = workers[0].optimizer->first_moments();
      snap.opt_v = workers[0].optimizer->second_moments();
      snap.opt_step = workers[0].optimizer->step_count();
      for (int w = 0; w < kappa; ++w) {
        snap.rng.push_back(workers[w].rng.GetState());
        snap.cursor.push_back(workers[w].cursor);
        snap.order.push_back(workers[w].local_train);
      }
    }

    int killed_this_epoch = -1;  // reported in DistributedEpoch
    int killed = -1;             // elastic: dead for the rest of this run
    int64_t redistributed = 0;
    double recovery_seconds = 0.0;
    bool epoch_restarted = false;
    bool suppress_kill = false;
    bool rerun;
    do {
      rerun = false;
      killed = -1;
      redistributed = 0;
      for (int w = 0; w < kappa; ++w) {
        Worker& worker = workers[w];
        worker.compute_seconds = 0.0;
        worker.sample_seconds = 0.0;
        worker.loss_sum = 0.0;
        worker.steps = 0;
        // Plan the worker's epoch up front (cursor walk with reshuffle on
        // wrap, dedup of seeds that wrapped within a batch) and hand the
        // plan to a BatchLoader so sampler threads can prefetch ahead of
        // the gradient steps. The plan only draws shuffles from worker.rng;
        // sampling itself runs on per-batch streams.
        worker.loader = nullptr;
        if (worker.local_train.empty()) continue;
        std::vector<std::vector<int32_t>> plan;
        plan.reserve(steps_per_epoch);
        for (int64_t step = 0; step < steps_per_epoch; ++step) {
          std::vector<int32_t> seeds;
          for (int b = 0; b < options_.train.batch_size; ++b) {
            if (worker.cursor >= worker.local_train.size()) {
              worker.cursor = 0;
              worker.rng.Shuffle(&worker.local_train);
            }
            seeds.push_back(worker.local_train[worker.cursor++]);
          }
          std::sort(seeds.begin(), seeds.end());
          seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
          plan.push_back(std::move(seeds));
        }
        sample::LoaderOptions wopts = loader_opts;
        wopts.feature_store = worker.features.get();
        worker.loader = std::make_unique<sample::BatchLoader>(
            &worker.graph, sampler_, std::move(plan),
            xfraud::Rng::StreamSeed(
                xfraud::Rng::StreamSeed(options_.train.seed, kDistSampleTag),
                static_cast<uint64_t>(epoch) * kappa + w),
            wopts);
      }
      for (int64_t step = 0; step < steps_per_epoch; ++step) {
        // Phase 1: every worker computes gradients on its own partition.
        // (Run serially on this single-core host; each worker's sampling
        // and compute times are measured individually to model the
        // concurrent cluster.)
        int extra_this_step = 0;
        for (int w = 0; w < kappa; ++w) {
          Worker& worker = workers[w];
          if (!suppress_kill && injector != nullptr &&
              injector->ShouldKillWorker(w, epoch, step)) {
            XF_CHECK(kappa >= 2);  // a dead lone worker has no recovery
            worker_kills->Increment();
            killed_this_epoch = w;
            if (options_.recovery == FailureRecovery::kRestartEpoch) {
              rerun = true;
              break;
            }
            killed = w;
            worker.alive = false;
          }
          if (!worker.alive || worker.loader == nullptr) {
            // Dead (or partition-less) workers contribute zero gradient;
            // clearing every step also discards the mean the all-reduce
            // copy-back wrote into this replica's buffers last step.
            for (auto& p : params[w]) p.var.ZeroGrad();
            continue;
          }
          auto loaded = worker.loader->Next();
          XF_CHECK(loaded.has_value());
          worker.sample_seconds += loaded->sample_seconds;
          WallTimer t;
          core::ForwardOptions fwd;
          fwd.training = true;
          fwd.rng = &worker.rng;
          nn::Var logits = replicas_[w]->Forward(loaded->batch, fwd);
          nn::Var loss = nn::CrossEntropy(logits, loaded->batch.target_labels,
                                          options_.train.class_weights);
          worker.optimizer->ZeroGrad();
          loss.Backward();
          worker.loss_sum += loss.item();
          ++worker.steps;
          worker.compute_seconds += t.ElapsedSeconds();
        }
        if (rerun) break;

        // Elastic recovery: one survivor per step absorbs the next of the
        // dead worker's planned batches (its loader still holds them — a
        // MiniBatch is self-contained, so any replica can train on it).
        // The extra backward accumulates onto the survivor's own gradient
        // (no ZeroGrad between the two), exactly like DDP gradient
        // accumulation.
        if (killed >= 0 && workers[killed].loader != nullptr) {
          auto extra = workers[killed].loader->Next();
          if (extra.has_value()) {
            WallTimer t;
            int s = static_cast<int>(
                (static_cast<int64_t>(killed) + 1 + step) % kappa);
            if (s == killed) s = (s + 1) % kappa;
            core::ForwardOptions fwd;
            fwd.training = true;
            fwd.rng = &workers[s].rng;
            nn::Var logits = replicas_[s]->Forward(extra->batch, fwd);
            nn::Var loss =
                nn::CrossEntropy(logits, extra->batch.target_labels,
                                 options_.train.class_weights);
            loss.Backward();
            workers[s].loss_sum += loss.item();
            ++workers[s].steps;
            workers[s].sample_seconds += extra->sample_seconds;
            recovery_seconds += t.ElapsedSeconds();
            redistributed_ctr->Increment();
            ++redistributed;
            extra_this_step = 1;
          } else {
            workers[killed].loader = nullptr;
          }
        }

        // Phase 2: DDP all-reduce — average gradients across replicas and
        // write the mean back into every replica's gradient buffers. The
        // denominator is the number of batch-gradients contributed this
        // step: kappa normally, one less when a worker is dead, plus one
        // when a survivor absorbed a redistributed batch.
        allreduce_rounds->Increment();
        allreduce_bytes->Add(ring_bytes_per_round);
        round_bytes->Record(static_cast<double>(ring_bytes_per_round));
        const int contributions =
            kappa - (killed >= 0 ? 1 : 0) + extra_this_step;
        const float inv_contributions =
            1.0f / static_cast<float>(contributions);
        for (size_t p = 0; p < params0.size(); ++p) {
          for (int w = 0; w < kappa; ++w) {
            nn::Tensor& g = params[w][p].var.grad();
            Status reduced = comm[w]->AllReduceSum(
                std::span<float>(g.data(), static_cast<size_t>(g.size())));
            XF_CHECK(reduced.ok()) << reduced.message();
          }
          // Every rank scales its own copy of the (bit-identical) sum by
          // the same scalar, which lands on the same bits the historical
          // scale-then-copy produced.
          for (int w = 0; w < kappa; ++w) {
            params[w][p].var.grad().ScaleInPlace(inv_contributions);
          }
        }

        // Phase 3: identical optimizer step on every live replica (states
        // match, so they stay synchronized; a dead replica freezes until
        // its end-of-epoch rejoin).
        for (int w = 0; w < kappa; ++w) {
          if (w == killed) continue;
          workers[w].optimizer->ClipGradNorm(options_.train.clip);
          workers[w].optimizer->Step();
        }
      }
      if (rerun) {
        // Roll every replica back to the epoch-start image and re-run the
        // epoch with the failure suppressed (the worker "restarted").
        WallTimer t;
        for (int w = 0; w < kappa; ++w) {
          for (size_t p = 0; p < params[w].size(); ++p) {
            params[w][p].var.mutable_value() = snap.params[p];
          }
          Status restored = workers[w].optimizer->SetState(
              snap.opt_m, snap.opt_v, snap.opt_step);
          XF_CHECK(restored.ok());
          workers[w].rng.SetState(snap.rng[w]);
          workers[w].cursor = snap.cursor[w];
          workers[w].local_train = snap.order[w];
          workers[w].loader = nullptr;
        }
        recovery_seconds += t.ElapsedSeconds();
        epoch_restarted = true;
        suppress_kill = true;
        epoch_restarts->Increment();
      }
    } while (rerun);

    // Elastic rejoin: the dead replica re-enters the next epoch with a
    // survivor's parameters and optimizer state, moved as Broadcast
    // collectives rooted at a survivor so the rejoin protocol is the same
    // whatever the backend. Survivors broadcast-receive values identical to
    // what they already hold (replicas are synchronized), so only the dead
    // rank observes a change.
    if (killed >= 0) {
      WallTimer t;
      const int src = killed == 0 ? 1 : 0;
      for (size_t p = 0; p < params0.size(); ++p) {
        for (int w = 0; w < kappa; ++w) {
          nn::Tensor& v = params[w][p].var.mutable_value();
          Status synced = comm[w]->Broadcast(
              std::span<float>(v.data(), static_cast<size_t>(v.size())), src);
          XF_CHECK(synced.ok()) << synced.message();
        }
      }
      // Optimizer state travels through per-rank staging buffers: moments
      // are broadcast tensor-by-tensor, then installed with SetState on
      // every rank (a no-op on survivors, the rejoin on the dead rank).
      std::vector<std::vector<nn::Tensor>> moments_m(kappa);
      std::vector<std::vector<nn::Tensor>> moments_v(kappa);
      std::vector<std::vector<double>> step_buf(
          kappa, std::vector<double>(1, 0.0));
      for (int w = 0; w < kappa; ++w) {
        moments_m[w] = workers[w].optimizer->first_moments();
        moments_v[w] = workers[w].optimizer->second_moments();
        step_buf[w][0] =
            static_cast<double>(workers[w].optimizer->step_count());
      }
      for (size_t p = 0; p < params0.size(); ++p) {
        for (int w = 0; w < kappa; ++w) {
          nn::Tensor& m = moments_m[w][p];
          Status synced = comm[w]->Broadcast(
              std::span<float>(m.data(), static_cast<size_t>(m.size())), src);
          XF_CHECK(synced.ok()) << synced.message();
        }
        for (int w = 0; w < kappa; ++w) {
          nn::Tensor& v2 = moments_v[w][p];
          Status synced = comm[w]->Broadcast(
              std::span<float>(v2.data(), static_cast<size_t>(v2.size())),
              src);
          XF_CHECK(synced.ok()) << synced.message();
        }
      }
      for (int w = 0; w < kappa; ++w) {
        Status synced =
            comm[w]->Broadcast(std::span<double>(step_buf[w]), src);
        XF_CHECK(synced.ok()) << synced.message();
      }
      for (int w = 0; w < kappa; ++w) {
        Status installed = workers[w].optimizer->SetState(
            moments_m[w], moments_v[w],
            static_cast<int64_t>(step_buf[w][0]));
        XF_CHECK(installed.ok()) << installed.message();
      }
      workers[killed].alive = true;
      recovery_seconds += t.ElapsedSeconds();
    }

    double wall = epoch_timer.ElapsedSeconds();
    double slowest = 0.0;
    double slowest_sample = 0.0;
    double slowest_compute = 0.0;
    double loss_sum = 0.0;
    int64_t loss_steps = 0;
    for (auto& w : workers) {
      // A pipelined worker overlaps sampling with compute, so its epoch
      // costs the larger of the two; the serial path pays the sum.
      double worker_epoch =
          pipelined ? std::max(w.compute_seconds, w.sample_seconds)
                    : w.compute_seconds + w.sample_seconds;
      slowest = std::max(slowest, worker_epoch);
      slowest_sample = std::max(slowest_sample, w.sample_seconds);
      slowest_compute = std::max(slowest_compute, w.compute_seconds);
      loss_sum += w.loss_sum;
      loss_steps += w.steps;
      w.loader = nullptr;  // epoch plan exhausted; release sampler threads
    }

    train::EvalResult val = evaluate(ds.val_nodes);
    DistributedEpoch stats;
    stats.epoch = epoch;
    stats.train_loss = loss_steps > 0 ? loss_sum / loss_steps : 0.0;
    stats.val_auc = val.auc;
    stats.wall_seconds = wall;
    stats.max_worker_sample_seconds = slowest_sample;
    stats.max_worker_compute_seconds = slowest_compute;
    // Sync cost: measured when the backend measures (slowest rank's time
    // inside collectives this epoch), modeled otherwise — never both.
    double measured_comm = 0.0;
    for (int w = 0; w < kappa; ++w) {
      measured_comm = std::max(
          measured_comm, comm[w]->comm_seconds() - comm_seconds_at_start[w]);
    }
    if (measured_comm > 0.0) {
      stats.measured_comm_seconds = measured_comm;
    } else {
      stats.modeled_sync_seconds =
          options_.sync_overhead_seconds * steps_per_epoch;
    }
    stats.simulated_cluster_seconds = slowest + stats.sync_seconds();
    stats.killed_worker = killed_this_epoch;
    stats.redistributed_batches = redistributed;
    stats.restarted = epoch_restarted;
    stats.recovery_seconds = recovery_seconds;
    result.history.push_back(stats);

    if (options_.train.verbose) {
      XF_LOG(Info) << "dist(" << kappa << ") epoch " << epoch << " loss "
                   << stats.train_loss << " val_auc " << val.auc << " sim "
                   << stats.simulated_cluster_seconds << "s";
    }
    if (val.auc > result.best_val_auc) {
      result.best_val_auc = val.auc;
      stale = 0;
    } else if (++stale >= options_.train.patience) {
      break;
    }
  }

  for (const auto& e : result.history) {
    result.mean_wall_epoch_seconds += e.wall_seconds;
    result.mean_simulated_epoch_seconds += e.simulated_cluster_seconds;
  }
  if (!result.history.empty()) {
    result.mean_wall_epoch_seconds /= result.history.size();
    result.mean_simulated_epoch_seconds /= result.history.size();
  }
  return result;
}

}  // namespace xfraud::dist
