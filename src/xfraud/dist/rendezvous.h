#ifndef XFRAUD_DIST_RENDEZVOUS_H_
#define XFRAUD_DIST_RENDEZVOUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "xfraud/common/clock.h"
#include "xfraud/common/fd.h"
#include "xfraud/common/retry.h"
#include "xfraud/common/status.h"

namespace xfraud::dist {

/// A socket address: `unix:<path>` (AF_UNIX, path under ~100 chars) or
/// `tcp:<host>:<port>` (AF_INET, loopback-oriented).
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // unix
  std::string host;  // tcp
  uint16_t port = 0;  // tcp

  std::string ToString() const;
};

Result<Endpoint> ParseEndpoint(std::string_view spec);

/// Creates a nonblocking listening socket bound to `ep`. For tcp with
/// port 0 the kernel-assigned port is resolved into `*bound`; for unix the
/// path is unlinked first so a stale socket file from a crashed run cannot
/// block the bind.
Result<UniqueFd> ListenOn(const Endpoint& ep, Endpoint* bound);

/// Rank-0 side of the rendezvous. Owns the listener on the well-known
/// endpoint for the lifetime of the run so it can serve successive
/// generations: the first at startup, then one per recovery round after a
/// worker death. Protocol per generation (all frames common/frame.h):
///
///   joiner -> host   kJoin   {rank, seq=generation, payload=ring endpoint}
///   host -> joiner   kAssign {rank=joiner, seq=host generation,
///                             payload=successor's ring endpoint}
///
/// The host collects world-1 joins (duplicate ranks overwrite — a restarted
/// worker may race its own earlier half-open connection), computes the ring
/// successor map including its own ring endpoint, and replies to every
/// joiner. Joins carrying a stale generation are accepted; the assignment
/// carries the host's generation, which the joiner adopts.
class RendezvousHost {
 public:
  /// Binds the rendezvous listener. `world` is the full cluster size
  /// including rank 0.
  static Result<std::unique_ptr<RendezvousHost>> Create(const Endpoint& ep,
                                                        int world);
  ~RendezvousHost();

  /// Runs one generation and returns rank 0's successor ring endpoint.
  /// `rank0_ring` is rank 0's own ring listener endpoint (given out to
  /// rank world-1). Fails with DeadlineExceeded if the cluster does not
  /// assemble before `deadline`.
  Result<Endpoint> Exchange(const Endpoint& rank0_ring, uint64_t generation,
                            const Deadline& deadline, Clock* clock);

  /// Use Create() — public only so make_unique can reach it.
  RendezvousHost(UniqueFd listener, int world);

 private:
  UniqueFd listener_;
  int world_;
};

/// Rank>0 side: dials the host with retry-with-backoff (the host may not be
/// listening yet at process start, and is briefly busy between generations),
/// announces this rank's ring endpoint, and returns the assigned successor
/// endpoint. On success `*host_generation` holds the host's generation.
Result<Endpoint> JoinRendezvous(const Endpoint& host, int rank, int world,
                                const Endpoint& my_ring, uint64_t generation,
                                const Deadline& deadline,
                                const RetryPolicy& connect_retry,
                                Clock* clock, uint64_t* host_generation);

}  // namespace xfraud::dist

#endif  // XFRAUD_DIST_RENDEZVOUS_H_
