#include "xfraud/dist/worker.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "xfraud/common/atomic_file.h"
#include "xfraud/common/logging.h"
#include "xfraud/common/timer.h"
#include "xfraud/dist/partition.h"
#include "xfraud/dist/socket_transport.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/graph/subgraph.h"
#include "xfraud/nn/ops.h"
#include "xfraud/nn/optim.h"
#include "xfraud/nn/serialize.h"
#include "xfraud/sample/batch_loader.h"
#include "xfraud/train/trainer.h"

namespace xfraud::dist {

namespace {

// ---- Worker checkpoint ("XFDC") -------------------------------------------
//
// Written at every epoch boundary, so it is both the rollback image for
// comm-failure recovery (survivors reload it in-process) and the resume
// image for a SIGKILLed rank (the launcher's restarted process loads it at
// startup). Same CRC-footer file format discipline as the trainer
// checkpoint (train/checkpoint.cc).

constexpr char kCkptMagic[4] = {'X', 'F', 'D', 'C'};
constexpr uint32_t kCkptVersion = 1;

constexpr char kResultMagic[4] = {'X', 'F', 'D', 'R'};
constexpr uint32_t kResultVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len) || len > (1u << 20)) return false;
  s->resize(len);
  in.read(s->data(), len);
  return static_cast<bool>(in);
}

void WriteTensor(std::ostream& out, const nn::Tensor& t) {
  WritePod(out, t.rows());
  WritePod(out, t.cols());
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
}

bool ReadTensor(std::istream& in, nn::Tensor* t) {
  int64_t rows = 0, cols = 0;
  if (!ReadPod(in, &rows) || !ReadPod(in, &cols) || rows < 0 || cols < 0) {
    return false;
  }
  *t = nn::Tensor(rows, cols);
  in.read(reinterpret_cast<char*>(t->data()),
          static_cast<std::streamsize>(rows * cols * sizeof(float)));
  return static_cast<bool>(in);
}

/// The non-parameter part of a rank's epoch-boundary state.
struct WorkerState {
  int32_t next_epoch = 0;
  double best_val_auc = 0.0;
  int32_t stale = 0;
  xfraud::Rng::State rng;
  uint64_t cursor = 0;
  std::vector<int32_t> order;  // shuffled local train seeds
};

Status SaveWorkerCheckpoint(const std::string& path, uint64_t seed,
                            const WorkerState& st,
                            const std::vector<nn::NamedParameter>& params,
                            const nn::AdamW& optimizer) {
  std::ostringstream out;
  out.write(kCkptMagic, 4);
  WritePod(out, kCkptVersion);
  WritePod(out, seed);
  WritePod(out, st.next_epoch);
  WritePod(out, st.best_val_auc);
  WritePod(out, st.stale);
  for (uint64_t s : st.rng.s) WritePod(out, s);
  WritePod(out, static_cast<uint8_t>(st.rng.has_cached_gaussian ? 1 : 0));
  WritePod(out, st.rng.cached_gaussian);
  WritePod(out, st.cursor);
  WritePod(out, static_cast<int64_t>(st.order.size()));
  out.write(reinterpret_cast<const char*>(st.order.data()),
            static_cast<std::streamsize>(st.order.size() * sizeof(int32_t)));

  const std::vector<nn::Tensor>& m = optimizer.first_moments();
  const std::vector<nn::Tensor>& v = optimizer.second_moments();
  if (m.size() != params.size() || v.size() != params.size()) {
    return Status::InvalidArgument(
        "worker checkpoint: optimizer state count != parameter count");
  }
  WritePod(out, static_cast<int64_t>(params.size()));
  for (size_t i = 0; i < params.size(); ++i) {
    WriteString(out, params[i].name);
    WriteTensor(out, params[i].var.value());
    WriteTensor(out, m[i]);
    WriteTensor(out, v[i]);
  }
  WritePod(out, optimizer.step_count());
  return AtomicWriteFileWithCrc(path, out.str());
}

Status LoadWorkerCheckpoint(const std::string& path, uint64_t seed,
                            WorkerState* st,
                            std::vector<nn::NamedParameter>* params,
                            nn::AdamW* optimizer) {
  Result<std::string> raw = ReadFileVerifyCrc(path);
  if (!raw.ok()) return raw.status();
  std::istringstream in(std::move(raw).value());

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kCkptMagic, 4) != 0) {
    return Status::Corruption("bad worker checkpoint magic: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kCkptVersion) {
    return Status::Corruption("unsupported worker checkpoint version in " +
                              path);
  }
  uint64_t saved_seed = 0;
  if (!ReadPod(in, &saved_seed)) {
    return Status::Corruption("truncated worker checkpoint: " + path);
  }
  if (saved_seed != seed) {
    return Status::InvalidArgument(
        "worker checkpoint " + path + " was written by a run with seed " +
        std::to_string(saved_seed) + ", not " + std::to_string(seed));
  }
  uint8_t has_gauss = 0;
  int64_t order_count = 0;
  bool ok = ReadPod(in, &st->next_epoch) && ReadPod(in, &st->best_val_auc) &&
            ReadPod(in, &st->stale);
  for (uint64_t& s : st->rng.s) ok = ok && ReadPod(in, &s);
  ok = ok && ReadPod(in, &has_gauss) && ReadPod(in, &st->rng.cached_gaussian) &&
       ReadPod(in, &st->cursor) && ReadPod(in, &order_count);
  if (!ok || order_count < 0 || st->next_epoch < 0) {
    return Status::Corruption("truncated worker checkpoint: " + path);
  }
  st->rng.has_cached_gaussian = has_gauss != 0;
  st->order.resize(static_cast<size_t>(order_count));
  in.read(reinterpret_cast<char*>(st->order.data()),
          static_cast<std::streamsize>(st->order.size() * sizeof(int32_t)));
  int64_t param_count = 0;
  if (!in || !ReadPod(in, &param_count) ||
      param_count != static_cast<int64_t>(params->size())) {
    return Status::Corruption(
        "worker checkpoint parameter count mismatch in " + path);
  }
  std::vector<nn::Tensor> m(params->size());
  std::vector<nn::Tensor> v(params->size());
  for (size_t i = 0; i < params->size(); ++i) {
    std::string name;
    nn::Tensor value;
    if (!ReadString(in, &name) || !ReadTensor(in, &value) ||
        !ReadTensor(in, &m[i]) || !ReadTensor(in, &v[i])) {
      return Status::Corruption("truncated worker checkpoint: " + path);
    }
    if (name != (*params)[i].name ||
        value.rows() != (*params)[i].var.value().rows() ||
        value.cols() != (*params)[i].var.value().cols()) {
      return Status::InvalidArgument(
          "worker checkpoint parameter " + name +
          " does not match the constructed model in " + path);
    }
    (*params)[i].var.mutable_value() = std::move(value);
  }
  int64_t step = 0;
  if (!ReadPod(in, &step)) {
    return Status::Corruption("truncated worker checkpoint: " + path);
  }
  return optimizer->SetState(std::move(m), std::move(v), step);
}

}  // namespace

Status SaveDistResult(const DistributedResult& result,
                      const std::string& path) {
  std::ostringstream out;
  out.write(kResultMagic, 4);
  WritePod(out, kResultVersion);
  WritePod(out, result.best_val_auc);
  WritePod(out, result.mean_wall_epoch_seconds);
  WritePod(out, result.mean_simulated_epoch_seconds);
  WritePod(out, result.edge_cut_fraction);
  WritePod(out, static_cast<int64_t>(result.partition_nodes.size()));
  for (int64_t n : result.partition_nodes) WritePod(out, n);
  WritePod(out, static_cast<int64_t>(result.history.size()));
  for (const DistributedEpoch& e : result.history) {
    WritePod(out, static_cast<int32_t>(e.epoch));
    WritePod(out, e.train_loss);
    WritePod(out, e.val_auc);
    WritePod(out, e.wall_seconds);
    WritePod(out, e.max_worker_sample_seconds);
    WritePod(out, e.max_worker_compute_seconds);
    WritePod(out, e.modeled_sync_seconds);
    WritePod(out, e.measured_comm_seconds);
    WritePod(out, e.simulated_cluster_seconds);
    WritePod(out, static_cast<int32_t>(e.killed_worker));
    WritePod(out, e.redistributed_batches);
    WritePod(out, static_cast<uint8_t>(e.restarted ? 1 : 0));
    WritePod(out, e.recovery_seconds);
  }
  return AtomicWriteFileWithCrc(path, out.str());
}

Result<DistributedResult> LoadDistResult(const std::string& path) {
  Result<std::string> raw = ReadFileVerifyCrc(path);
  if (!raw.ok()) return raw.status();
  std::istringstream in(std::move(raw).value());
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kResultMagic, 4) != 0) {
    return Status::Corruption("bad dist result magic: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kResultVersion) {
    return Status::Corruption("unsupported dist result version in " + path);
  }
  DistributedResult result;
  int64_t partitions = 0;
  if (!ReadPod(in, &result.best_val_auc) ||
      !ReadPod(in, &result.mean_wall_epoch_seconds) ||
      !ReadPod(in, &result.mean_simulated_epoch_seconds) ||
      !ReadPod(in, &result.edge_cut_fraction) || !ReadPod(in, &partitions) ||
      partitions < 0) {
    return Status::Corruption("truncated dist result: " + path);
  }
  result.partition_nodes.resize(static_cast<size_t>(partitions));
  for (int64_t& n : result.partition_nodes) {
    if (!ReadPod(in, &n)) {
      return Status::Corruption("truncated dist result: " + path);
    }
  }
  int64_t epochs = 0;
  if (!ReadPod(in, &epochs) || epochs < 0) {
    return Status::Corruption("truncated dist result: " + path);
  }
  result.history.resize(static_cast<size_t>(epochs));
  for (DistributedEpoch& e : result.history) {
    int32_t epoch = 0, killed = 0;
    uint8_t restarted = 0;
    bool ok = ReadPod(in, &epoch) && ReadPod(in, &e.train_loss) &&
              ReadPod(in, &e.val_auc) && ReadPod(in, &e.wall_seconds) &&
              ReadPod(in, &e.max_worker_sample_seconds) &&
              ReadPod(in, &e.max_worker_compute_seconds) &&
              ReadPod(in, &e.modeled_sync_seconds) &&
              ReadPod(in, &e.measured_comm_seconds) &&
              ReadPod(in, &e.simulated_cluster_seconds) &&
              ReadPod(in, &killed) && ReadPod(in, &e.redistributed_batches) &&
              ReadPod(in, &restarted) && ReadPod(in, &e.recovery_seconds);
    if (!ok) return Status::Corruption("truncated dist result: " + path);
    e.epoch = epoch;
    e.killed_worker = killed;
    e.restarted = restarted != 0;
  }
  return result;
}

Result<DistributedResult> RunDistWorker(const data::SimDataset& ds,
                                        const DistWorkerOptions& options) {
  const int rank = options.rank;
  const int world = options.world;
  XF_CHECK(rank >= 0 && rank < world);
  XF_CHECK_EQ(options.dist.num_workers, world);
  XF_CHECK(!options.dist.kv_backed_loaders)
      << "kv_backed_loaders is not supported in multi-process mode";
  if (world > 1 && options.fault_plan.kill_worker == 0) {
    return Status::InvalidArgument(
        "multi-process mode cannot kill rank 0: it hosts the rendezvous and "
        "owns the run's history (see DESIGN.md §12)");
  }
  const train::TrainOptions& topt = options.dist.train;

  // Model + optimizer, identical on every rank (same init stream).
  xfraud::Rng model_rng(options.model_seed);
  core::XFraudDetector model(options.detector, &model_rng);
  std::vector<nn::NamedParameter> params = model.Parameters();
  nn::AdamW optimizer(params,
                      nn::AdamWOptions{.lr = topt.lr,
                                       .weight_decay = topt.weight_decay});

  // ---- Partition, exactly like DistributedTrainer::Train ------------------
  // Every rank recomputes the full deterministic partition (same seed, same
  // PIC/k-means draws), then materializes only its own induced subgraph.
  xfraud::Rng prng(topt.seed * 0x2545F491ULL + 0xBEEF);
  std::vector<int> worker_of =
      PartitionForWorkers(ds.graph, options.dist.num_clusters, world, &prng);
  std::vector<std::vector<int32_t>> worker_nodes(static_cast<size_t>(world));
  for (int64_t v = 0; v < ds.graph.num_nodes(); ++v) {
    worker_nodes[static_cast<size_t>(worker_of[static_cast<size_t>(v)])]
        .push_back(static_cast<int32_t>(v));
  }
  std::vector<int8_t> in_train(static_cast<size_t>(ds.graph.num_nodes()), 0);
  for (int32_t v : ds.train_nodes) in_train[static_cast<size_t>(v)] = 1;

  std::vector<int32_t> local_to_global;
  graph::HeteroGraph my_graph = graph::InducedGraph(
      ds.graph, worker_nodes[static_cast<size_t>(rank)], &local_to_global);
  std::vector<int32_t> local_train;
  for (size_t local = 0; local < local_to_global.size(); ++local) {
    if (in_train[static_cast<size_t>(local_to_global[local])]) {
      local_train.push_back(static_cast<int32_t>(local));
    }
  }

  // Steps per epoch: the busiest rank's batch count (same formula as the
  // in-process driver; a partition's train count equals its local_train
  // size there).
  size_t max_train = 1;
  for (int w = 0; w < world; ++w) {
    size_t n = 0;
    for (int32_t v : worker_nodes[static_cast<size_t>(w)]) {
      n += in_train[static_cast<size_t>(v)] != 0 ? 1u : 0u;
    }
    max_train = std::max(max_train, n);
  }
  const int64_t steps_per_epoch = static_cast<int64_t>(
      (max_train + static_cast<size_t>(topt.batch_size) - 1) /
      static_cast<size_t>(topt.batch_size));

  sample::SageSampler train_sampler(options.sampler_hops,
                                    options.sampler_fanout);
  const sample::LoaderOptions loader_opts{
      .num_workers = topt.num_sample_workers,
      .prefetch_depth = topt.prefetch_depth};
  const bool pipelined = loader_opts.num_workers > 0;

  xfraud::Rng wrng(topt.seed + 1000 + static_cast<uint64_t>(rank));
  wrng.Shuffle(&local_train);
  size_t cursor = 0;
  int start_epoch = 0;
  double best = 0.0;
  int stale = 0;

  // Resume: a restarted rank picks up from its last epoch-boundary image.
  const std::string ckpt_path =
      options.checkpoint_dir + "/rank-" + std::to_string(rank) + ".ckpt";
  {
    WorkerState loaded;
    Status resumed =
        LoadWorkerCheckpoint(ckpt_path, topt.seed, &loaded, &params,
                             &optimizer);
    if (resumed.ok()) {
      start_epoch = loaded.next_epoch;
      best = loaded.best_val_auc;
      stale = loaded.stale;
      wrng.SetState(loaded.rng);
      cursor = static_cast<size_t>(loaded.cursor);
      local_train = loaded.order;
      XF_LOG(Info) << "dist worker " << rank << " resumed at epoch "
                   << start_epoch << " from " << ckpt_path;
    } else if (!resumed.IsNotFound()) {
      return resumed;
    }
  }

  fault::FaultInjector injector(options.fault_plan);

  // ---- Transport ----------------------------------------------------------
  Endpoint rdzv_ep;
  if (world > 1) {
    Result<Endpoint> parsed = ParseEndpoint(options.rendezvous);
    if (!parsed.ok()) return parsed.status();
    rdzv_ep = parsed.value();
  }
  std::unique_ptr<RendezvousHost> host;
  if (world > 1 && rank == 0) {
    Result<std::unique_ptr<RendezvousHost>> created =
        RendezvousHost::Create(rdzv_ep, world);
    if (!created.ok()) return created.status();
    host = std::move(created).value();
  }
  uint64_t generation = 0;
  std::unique_ptr<SocketCommunicator> comm;
  auto connect = [&]() -> Status {
    SocketCommOptions copt;
    copt.rank = rank;
    copt.world = world;
    copt.rendezvous = rdzv_ep;
    copt.connect_timeout_s = options.connect_timeout_s;
    copt.op_timeout_s = options.op_timeout_s;
    copt.rendezvous_timeout_s = options.rendezvous_timeout_s;
    copt.generation = generation;
    Result<std::unique_ptr<SocketCommunicator>> connected =
        SocketCommunicator::Connect(copt, host.get());
    if (!connected.ok()) return connected.status();
    comm = std::move(connected).value();
    generation = comm->generation();
    return Status::OK();
  };
  XF_RETURN_IF_ERROR(connect());

  // Rank-0 evaluation on the full graph, same stream/sampler/batching as the
  // in-process driver.
  sample::SageSampler eval_sampler(2, 12);
  const uint64_t eval_stream =
      xfraud::Rng::StreamSeed(topt.seed, kDistEvalTag);
  auto evaluate = [&]() {
    train::EvalResult eval;
    core::ForwardOptions fwd;
    sample::BatchLoader loader(
        &ds.graph, &eval_sampler,
        sample::BatchLoader::MakeSeedBatches(ds.val_nodes, 640), eval_stream,
        loader_opts);
    while (auto loaded = loader.Next()) {
      nn::Var logits = model.Forward(loaded->batch, fwd);
      auto probs = train::FraudProbabilities(logits);
      eval.scores.insert(eval.scores.end(), probs.begin(), probs.end());
      eval.labels.insert(eval.labels.end(),
                         loaded->batch.target_labels.begin(),
                         loaded->batch.target_labels.end());
    }
    eval.auc = train::RocAuc(eval.scores, eval.labels);
    return eval;
  };

  DistributedResult result;
  if (rank == 0) {
    for (int w = 0; w < world; ++w) {
      result.partition_nodes.push_back(
          static_cast<int64_t>(worker_nodes[static_cast<size_t>(w)].size()));
    }
    int64_t cut = 0;
    for (int64_t v = 0; v < ds.graph.num_nodes(); ++v) {
      for (int64_t e = ds.graph.InDegreeBegin(static_cast<int32_t>(v));
           e < ds.graph.InDegreeEnd(static_cast<int32_t>(v)); ++e) {
        cut += worker_of[static_cast<size_t>(ds.graph.neighbors()[e])] !=
               worker_of[static_cast<size_t>(v)];
      }
    }
    result.edge_cut_fraction =
        ds.graph.num_edges() > 0
            ? static_cast<double>(cut) / ds.graph.num_edges()
            : 0.0;
  }

  // ---- Epoch loop ---------------------------------------------------------
  int recovery_rounds = 0;
  const float inv_world = 1.0f / static_cast<float>(world);
  for (int epoch = start_epoch; epoch < topt.max_epochs; ++epoch) {
    {
      WorkerState snap;
      snap.next_epoch = epoch;
      snap.best_val_auc = best;
      snap.stale = stale;
      snap.rng = wrng.GetState();
      snap.cursor = static_cast<uint64_t>(cursor);
      snap.order = local_train;
      XF_RETURN_IF_ERROR(
          SaveWorkerCheckpoint(ckpt_path, topt.seed, snap, params,
                               optimizer));
    }

    WallTimer epoch_timer;
    bool restarted_this_epoch = false;
    double recovery_seconds = 0.0;
    double train_loss = 0.0;
    double val_auc = 0.0;
    double sample_seconds = 0.0;
    double compute_seconds = 0.0;
    std::vector<std::vector<float>> gathered;

    for (;;) {
      const double comm_at_start = comm->comm_seconds();
      const bool suppress = options.suppress_kill || restarted_this_epoch;
      Status attempt = [&]() -> Status {
        sample_seconds = 0.0;
        compute_seconds = 0.0;
        double loss_sum = 0.0;
        int64_t steps = 0;
        // Plan this rank's epoch up front (cursor walk with reshuffle on
        // wrap, dedup within a batch) — the same walk, against the same rng,
        // as the in-process driver.
        std::unique_ptr<sample::BatchLoader> loader;
        if (!local_train.empty()) {
          std::vector<std::vector<int32_t>> plan;
          plan.reserve(static_cast<size_t>(steps_per_epoch));
          for (int64_t step = 0; step < steps_per_epoch; ++step) {
            std::vector<int32_t> seeds;
            for (int b = 0; b < topt.batch_size; ++b) {
              if (cursor >= local_train.size()) {
                cursor = 0;
                wrng.Shuffle(&local_train);
              }
              seeds.push_back(local_train[cursor++]);
            }
            std::sort(seeds.begin(), seeds.end());
            seeds.erase(std::unique(seeds.begin(), seeds.end()),
                        seeds.end());
            plan.push_back(std::move(seeds));
          }
          loader = std::make_unique<sample::BatchLoader>(
              &my_graph, &train_sampler, std::move(plan),
              xfraud::Rng::StreamSeed(
                  xfraud::Rng::StreamSeed(topt.seed, kDistSampleTag),
                  static_cast<uint64_t>(epoch) *
                          static_cast<uint64_t>(world) +
                      static_cast<uint64_t>(rank)),
              loader_opts);
        }
        for (int64_t step = 0; step < steps_per_epoch; ++step) {
          if (!suppress && injector.ShouldKillWorker(rank, epoch, step)) {
            XF_LOG(Info) << "dist worker " << rank
                         << " executing planned SIGKILL at epoch " << epoch
                         << " step " << step;
            fault::KillCurrentProcess();
          }
          if (loader != nullptr) {
            auto loaded = loader->Next();
            XF_CHECK(loaded.has_value());
            sample_seconds += loaded->sample_seconds;
            WallTimer t;
            core::ForwardOptions fwd;
            fwd.training = true;
            fwd.rng = &wrng;
            nn::Var logits = model.Forward(loaded->batch, fwd);
            nn::Var loss = nn::CrossEntropy(
                logits, loaded->batch.target_labels, topt.class_weights);
            optimizer.ZeroGrad();
            loss.Backward();
            loss_sum += loss.item();
            ++steps;
            compute_seconds += t.ElapsedSeconds();
          } else {
            // A partition-less rank contributes zero gradient but still
            // participates in every collective.
            for (auto& p : params) p.var.ZeroGrad();
          }
          for (auto& p : params) {
            nn::Tensor& g = p.var.grad();
            XF_RETURN_IF_ERROR(comm->AllReduceSum(std::span<float>(
                g.data(), static_cast<size_t>(g.size()))));
            // Same scalar on every rank over the bit-identical sum — the
            // DDP gradient mean. World is the denominator even under chaos:
            // recovery re-runs the epoch at full strength, never elastic.
            g.ScaleInPlace(inv_world);
          }
          optimizer.ClipGradNorm(topt.clip);
          optimizer.Step();
        }
        // Cluster loss: the ring's ascending-rank fold reproduces the
        // serial driver's worker-order accumulation bit for bit.
        double loss_buf[2] = {loss_sum, static_cast<double>(steps)};
        XF_RETURN_IF_ERROR(
            comm->AllReduceSum(std::span<double>(loss_buf, 2)));
        train_loss = loss_buf[1] > 0.0 ? loss_buf[0] / loss_buf[1] : 0.0;
        double val_buf[1] = {0.0};
        if (rank == 0) val_buf[0] = evaluate().auc;
        XF_RETURN_IF_ERROR(
            comm->Broadcast(std::span<double>(val_buf, 1), 0));
        val_auc = val_buf[0];
        const float my_stats[3] = {
            static_cast<float>(sample_seconds),
            static_cast<float>(compute_seconds),
            static_cast<float>(comm->comm_seconds() - comm_at_start)};
        gathered.clear();
        return comm->Gather(std::span<const float>(my_stats, 3), 0,
                            rank == 0 ? &gathered : nullptr);
      }();
      if (attempt.ok()) break;
      // A peer died or a collective timed out. Tear the ring down (waking
      // neighbours with EOF), roll back to the epoch-start image, and
      // reassemble under the next generation — the launcher meanwhile
      // restarts the dead rank, which resumes from its own checkpoint.
      if (++recovery_rounds > options.max_recovery_rounds) return attempt;
      XF_LOG(Info) << "dist worker " << rank << " epoch " << epoch
                   << " comm failure (" << attempt.message()
                   << "); rolling back and rejoining as generation "
                   << generation + 1;
      WallTimer recovery_timer;
      comm->Shutdown();
      comm = nullptr;
      WorkerState snap;
      XF_RETURN_IF_ERROR(LoadWorkerCheckpoint(ckpt_path, topt.seed, &snap,
                                              &params, &optimizer));
      XF_CHECK_EQ(snap.next_epoch, epoch);
      best = snap.best_val_auc;
      stale = snap.stale;
      wrng.SetState(snap.rng);
      cursor = static_cast<size_t>(snap.cursor);
      local_train = snap.order;
      ++generation;
      XF_RETURN_IF_ERROR(connect());
      restarted_this_epoch = true;
      recovery_seconds += recovery_timer.ElapsedSeconds();
    }

    if (rank == 0) {
      XF_CHECK_EQ(gathered.size(), static_cast<size_t>(world));
      DistributedEpoch stats;
      stats.epoch = epoch;
      stats.train_loss = train_loss;
      stats.val_auc = val_auc;
      stats.wall_seconds = epoch_timer.ElapsedSeconds();
      double slowest = 0.0;
      double measured_comm = 0.0;
      for (const std::vector<float>& g : gathered) {
        XF_CHECK_EQ(g.size(), static_cast<size_t>(3));
        const double s = g[0], c = g[1], cm = g[2];
        stats.max_worker_sample_seconds =
            std::max(stats.max_worker_sample_seconds, s);
        stats.max_worker_compute_seconds =
            std::max(stats.max_worker_compute_seconds, c);
        slowest = std::max(slowest, pipelined ? std::max(s, c) : s + c);
        measured_comm = std::max(measured_comm, cm);
      }
      // The socket backend measures its sync cost, so modeled_sync_seconds
      // stays zero — the split DistributedEpoch documents.
      stats.measured_comm_seconds = measured_comm;
      stats.simulated_cluster_seconds = slowest + stats.sync_seconds();
      stats.restarted = restarted_this_epoch;
      stats.recovery_seconds = recovery_seconds;
      result.history.push_back(stats);
      if (topt.verbose) {
        XF_LOG(Info) << "dist-mp(" << world << ") epoch " << epoch
                     << " loss " << stats.train_loss << " val_auc "
                     << stats.val_auc << " sim "
                     << stats.simulated_cluster_seconds << "s";
      }
    }

    // Early stopping, decided identically on every rank from the broadcast
    // val AUC (same comparison as the in-process driver).
    if (val_auc > best) {
      best = val_auc;
      stale = 0;
    } else if (++stale >= topt.patience) {
      break;
    }
  }

  result.best_val_auc = best;
  if (rank == 0) {
    for (const DistributedEpoch& e : result.history) {
      result.mean_wall_epoch_seconds += e.wall_seconds;
      result.mean_simulated_epoch_seconds += e.simulated_cluster_seconds;
    }
    if (!result.history.empty()) {
      result.mean_wall_epoch_seconds /=
          static_cast<double>(result.history.size());
      result.mean_simulated_epoch_seconds /=
          static_cast<double>(result.history.size());
    }
    XF_RETURN_IF_ERROR(nn::SaveParameters(
        params, options.checkpoint_dir + "/final_model.ckpt"));
    XF_RETURN_IF_ERROR(
        SaveDistResult(result, options.checkpoint_dir + "/result.bin"));
  }
  return result;
}

}  // namespace xfraud::dist
