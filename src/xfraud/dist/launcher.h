#ifndef XFRAUD_DIST_LAUNCHER_H_
#define XFRAUD_DIST_LAUNCHER_H_

#include <vector>

#include "xfraud/common/clock.h"
#include "xfraud/dist/worker.h"

namespace xfraud::dist {

struct ProcessClusterOptions {
  /// Per-rank template: `rank` and `suppress_kill` are overwritten per
  /// process; `world` is the cluster size; an empty `rendezvous` defaults to
  /// `unix:<checkpoint_dir>/rdzv.sock`. `checkpoint_dir` is created if
  /// missing.
  DistWorkerOptions worker;
  /// Restart budget per rank. A rank that dies by signal (the fault plan's
  /// SIGKILL, or a real crash) is re-forked with the kill suppressed, up to
  /// this many times; exhausting the budget fails the run.
  int max_restarts_per_rank = 2;
  /// Whole-cluster wall budget; expiry kills every worker and fails with
  /// DeadlineExceeded.
  double overall_timeout_s = 600.0;
  /// nullptr means Clock::Real(). (Workers always run on real time in their
  /// own processes; the clock only paces the monitor loop.)
  Clock* clock = nullptr;
};

struct ProcessClusterReport {
  /// Rank 0's result, loaded from `<checkpoint_dir>/result.bin`.
  DistributedResult result;
  /// Total re-forks across all ranks.
  int restarts = 0;
  /// Ranks observed dying by signal, in observation order (one entry per
  /// death, so a twice-killed rank appears twice).
  std::vector<int> kills_observed;
};

/// Forks one real OS process per rank (children inherit the in-memory
/// dataset), runs RunDistWorker in each, and supervises them with waitpid:
/// a signal death is recorded and the rank re-forked with `suppress_kill`
/// set (it resumes from its CRC checkpoint and rejoins the ring at the next
/// generation); a nonzero exit or an exhausted restart budget kills the
/// remaining workers and fails the run. Returns once every rank has exited
/// cleanly.
Result<ProcessClusterReport> RunProcessCluster(
    const data::SimDataset& ds, const ProcessClusterOptions& options);

}  // namespace xfraud::dist

#endif  // XFRAUD_DIST_LAUNCHER_H_
