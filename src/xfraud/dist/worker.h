#ifndef XFRAUD_DIST_WORKER_H_
#define XFRAUD_DIST_WORKER_H_

#include <cstdint>
#include <string>

#include "xfraud/core/detector.h"
#include "xfraud/data/generator.h"
#include "xfraud/dist/distributed.h"
#include "xfraud/fault/fault_plan.h"

namespace xfraud::dist {

/// One rank of a socket-backed multi-process cluster. Unlike the in-process
/// simulation, a "worker" here is this whole process: kill_worker in the
/// fault plan is a real SIGKILL of this process, and recovery is a real
/// restart that resumes from the rank's CRC checkpoint.
struct DistWorkerOptions {
  int rank = 0;
  int world = 1;
  /// Rendezvous endpoint spec (`unix:<path>` or `tcp:host:port`). Rank 0
  /// hosts it; everyone else dials it.
  std::string rendezvous;
  /// Replica architecture + init seed: every rank builds the same model
  /// from Rng(model_seed), which is what keeps replicas synchronized from
  /// step zero.
  core::DetectorConfig detector;
  uint64_t model_seed = 7;
  /// Training protocol (num_workers must equal `world`). kv_backed_loaders
  /// is not supported in multi-process mode; fault_injector is ignored in
  /// favour of `fault_plan` below (each process builds its own injector).
  DistributedOptions dist;
  /// Deterministic chaos plan; kill_worker=<rank>@<epoch>:<step> SIGKILLs
  /// this process at that point.
  fault::FaultPlan fault_plan;
  /// Suppress the planned kill (set by the launcher on the restarted
  /// process so the kill fires exactly once).
  bool suppress_kill = false;
  /// Directory of the per-rank checkpoints (`rank-<r>.ckpt`), rank 0's
  /// result file (`result.bin`) and final model (`final_model.ckpt`).
  std::string checkpoint_dir;
  /// Neighbourhood sampler of the training loaders (evaluation uses the
  /// same fixed SageSampler(2, 12) as the in-process path).
  int sampler_hops = 2;
  int sampler_fanout = 8;
  /// Transport budgets (see SocketCommOptions).
  double op_timeout_s = 60.0;
  double rendezvous_timeout_s = 60.0;
  double connect_timeout_s = 10.0;
  /// Comm-failure recovery rounds (rollback + re-rendezvous) before the
  /// rank gives up.
  int max_recovery_rounds = 3;
};

/// Runs one rank to completion: partitions ds.graph exactly like
/// DistributedTrainer (same seeds, same streams, same reduction order — a
/// fault-free socket run is bit-identical to the in-process run), trains
/// over the socket ring, writes a checkpoint at every epoch boundary, and
/// on a collective failure rolls back to that checkpoint, re-rendezvouses
/// under the next generation, and re-runs the epoch (restart-epoch
/// recovery).
///
/// Rank 0 additionally evaluates on the full graph each epoch, decides
/// early stopping (broadcast to all ranks), writes `result.bin` and
/// `final_model.ckpt` into checkpoint_dir, and returns the populated
/// DistributedResult; other ranks return an empty result.
Result<DistributedResult> RunDistWorker(const data::SimDataset& ds,
                                        const DistWorkerOptions& options);

/// result.bin (de)serialization — written by rank 0, read by the launcher.
Status SaveDistResult(const DistributedResult& result,
                      const std::string& path);
Result<DistributedResult> LoadDistResult(const std::string& path);

}  // namespace xfraud::dist

#endif  // XFRAUD_DIST_WORKER_H_
