#include "xfraud/explain/gnn_explainer.h"

#include <cmath>

#include "xfraud/common/logging.h"
#include "xfraud/nn/optim.h"
#include "xfraud/train/trainer.h"

namespace xfraud::explain {

using nn::Var;

namespace {

/// Bernoulli entropy of a mask in (0,1), averaged:
/// mean(-m log(m+eps) - (1-m) log(1-m+eps)).
Var MeanEntropy(const Var& mask) {
  const float eps = 1e-6f;
  Var ent = nn::Scale(
      nn::Add(nn::Mul(mask, nn::Log(nn::AddConst(mask, eps))),
              nn::Mul(nn::AddConst(nn::Scale(mask, -1.0f), 1.0f),
                      nn::Log(nn::AddConst(nn::Scale(mask, -1.0f),
                                           1.0f + eps)))),
      -1.0f);
  return nn::Mean(ent);
}

}  // namespace

GnnExplainer::GnnExplainer(const core::GnnModel* model,
                           GnnExplainerOptions options)
    : model_(model), options_(options), rng_(options.seed) {}

Explanation GnnExplainer::Explain(const sample::MiniBatch& batch) {
  XF_CHECK(!batch.target_locals.empty());

  // The explanation target is the *detector's* prediction, not the ground
  // truth: GNNExplainer asks "which edges made the model say this".
  core::ForwardOptions eval_opts;  // no dropout, no masks
  Var base_logits = model_->Forward(batch, eval_opts);
  int predicted = base_logits.value().At(0, 1) > base_logits.value().At(0, 0)
                      ? 1
                      : 0;

  // Random initialization of the mask parameters (Appendix D). The init
  // scale is small (as in the reference GNNExplainer implementation) so the
  // learned ranking reflects gradient signal rather than the initial draw.
  Var edge_params(nn::Tensor::Gaussian(batch.num_edges(), 1, 0.1f, &rng_),
                  /*requires_grad=*/true);
  Var feat_params(
      nn::Tensor::Gaussian(batch.num_nodes(), batch.features.cols(), 0.1f,
                           &rng_),
      /*requires_grad=*/true);

  nn::AdamW optimizer({{"edge_mask", edge_params}, {"feat_mask", feat_params}},
                      nn::AdamWOptions{.lr = options_.lr, .weight_decay = 0});
  std::vector<int> target = {predicted};

  double final_loss = 0.0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    Var edge_mask = nn::Sigmoid(edge_params);
    Var feat_mask = nn::Sigmoid(feat_params);
    Var masked_features = nn::Mul(nn::Constant(batch.features), feat_mask);

    core::ForwardOptions opts;
    opts.edge_mask = &edge_mask;
    opts.features_override = &masked_features;
    Var logits = model_->Forward(batch, opts);

    Var loss = nn::CrossEntropy(logits, target);                  // eq. 11
    loss = nn::Add(loss, nn::Scale(nn::Sum(edge_mask),            // eq. 12
                                   options_.beta_edge_size));
    loss = nn::Add(loss, nn::Scale(MeanEntropy(edge_mask),
                                   options_.beta_edge_entropy));
    loss = nn::Add(loss, nn::Scale(nn::Mean(feat_mask),           // eq. 13
                                   options_.beta_node_feature_size));
    loss = nn::Add(loss, nn::Scale(MeanEntropy(feat_mask),
                                   options_.beta_node_feature_entropy));

    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    final_loss = loss.item();
  }

  Explanation result;
  result.predicted_label = predicted;
  result.final_loss = final_loss;
  nn::Tensor mask_values = nn::Sigmoid(edge_params).value();
  result.edge_mask.resize(batch.num_edges());
  for (int64_t e = 0; e < batch.num_edges(); ++e) {
    result.edge_mask[e] = mask_values.At(e, 0);
  }
  result.node_feature_mask = nn::Sigmoid(feat_params).value();

  // Undirected weights: larger of the two directions (paper footnote 4).
  result.undirected_edges = graph::UndirectedEdges(batch.sub);
  result.undirected_edge_weights.reserve(result.undirected_edges.size());
  for (const auto& e : result.undirected_edges) {
    double w = 0.0;
    if (e.directed_a >= 0) w = std::max(w, result.edge_mask[e.directed_a]);
    if (e.directed_b >= 0) w = std::max(w, result.edge_mask[e.directed_b]);
    result.undirected_edge_weights.push_back(w);
  }
  return result;
}

}  // namespace xfraud::explain
