#include "xfraud/explain/feature_importance.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "xfraud/common/logging.h"
#include "xfraud/common/table_printer.h"
#include "xfraud/graph/hetero_graph.h"

namespace xfraud::explain {

FeatureImportance ComputeFeatureImportance(const Explanation& explanation,
                                           const sample::MiniBatch& batch) {
  const nn::Tensor& mask = explanation.node_feature_mask;
  XF_CHECK_EQ(mask.rows(), batch.num_nodes());
  XF_CHECK(!batch.target_locals.empty());
  int32_t seed = batch.target_locals.front();
  int64_t dims = mask.cols();

  FeatureImportance out;
  out.seed.resize(dims);
  for (int64_t c = 0; c < dims; ++c) out.seed[c] = mask.At(seed, c);

  // Mean over transaction rows only: entity nodes have zero features, so
  // their masks are regularizer artifacts, not signal.
  out.community_mean.assign(dims, 0.0);
  int64_t txn_count = 0;
  for (int64_t v = 0; v < batch.num_nodes(); ++v) {
    if (batch.node_types[v] !=
        static_cast<int32_t>(graph::NodeType::kTxn)) {
      continue;
    }
    ++txn_count;
    for (int64_t c = 0; c < dims; ++c) {
      out.community_mean[c] += mask.At(v, c);
    }
  }
  if (txn_count > 0) {
    for (auto& m : out.community_mean) m /= static_cast<double>(txn_count);
  }
  out.seed_excess.resize(dims);
  for (int64_t c = 0; c < dims; ++c) {
    out.seed_excess[c] = out.seed[c] - out.community_mean[c];
  }
  return out;
}

std::vector<int> TopDimensions(const std::vector<double>& importance,
                               int k) {
  std::vector<int> order(importance.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return importance[a] > importance[b];
  });
  order.resize(std::min<size_t>(k, order.size()));
  return order;
}

std::string RenderFeatureImportance(const FeatureImportance& importance,
                                    int top_k) {
  std::ostringstream os;
  auto section = [&](const char* title, const std::vector<double>& values) {
    os << title << ":";
    for (int dim : TopDimensions(values, top_k)) {
      os << "  f[" << dim << "]=" << TablePrinter::Num(values[dim], 3);
    }
    os << "\n";
  };
  section("seed feature importance", importance.seed);
  section("community mean importance", importance.community_mean);
  section("seed excess (investigation leads)", importance.seed_excess);
  return os.str();
}

}  // namespace xfraud::explain
