#ifndef XFRAUD_EXPLAIN_HIT_RATE_H_
#define XFRAUD_EXPLAIN_HIT_RATE_H_

#include <vector>

#include "xfraud/common/rng.h"

namespace xfraud::explain {

/// The paper's agreement metric (§3.4.1): H_topk = |topk(human) ∩
/// topk(explainer)| / k. Human edge-importance scores are coarse (multiples
/// of 1/5 in [0,2]) so top-k sets are tie-ridden; following Appendix E, ties
/// are broken by averaging the hit rate over `draws` random tie-breaking
/// draws on BOTH rankings.
double TopkHitRate(const std::vector<double>& reference,
                   const std::vector<double>& candidate, int k,
                   xfraud::Rng* rng, int draws = 100);

/// Hit rate of uniformly random edge weights against `reference`, averaged
/// over `repeats` weight draws (the paper's random baseline, Table 8).
double RandomHitRate(const std::vector<double>& reference, int k,
                     xfraud::Rng* rng, int repeats = 10, int draws = 100);

/// Indices of the k largest values, breaking ties randomly.
std::vector<int> TopkIndices(const std::vector<double>& values, int k,
                             xfraud::Rng* rng);

}  // namespace xfraud::explain

#endif  // XFRAUD_EXPLAIN_HIT_RATE_H_
