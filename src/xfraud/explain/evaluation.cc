#include "xfraud/explain/evaluation.h"

#include <algorithm>

#include "xfraud/common/logging.h"
#include "xfraud/train/trainer.h"

namespace xfraud::explain {

CommunityStudy::CommunityStudy(StudyOptions options) : options_(options) {
  // 1. Workload + detector, as in §5.1 (the study runs on the small set).
  data::GeneratorConfig config = data::TransactionGenerator::SimSmall();
  config.seed = options.seed;
  // Weaker transaction features put the study's detector near the paper's
  // reported sample AUC (81.88%, §5.1) and make predictions depend on the
  // graph rather than the raw-feature path of the head — which is what the
  // edge-mask explanation is about.
  config.feature_signal = 0.55;
  dataset_ = data::TransactionGenerator::Make(config, "sim-small");

  xfraud::Rng rng(options.seed ^ 0xABCDEF);
  core::DetectorConfig dc;
  dc.feature_dim = dataset_.graph.feature_dim();
  dc.hidden_dim = 32;
  dc.num_heads = 4;
  // Three conv layers so the receptive field covers the full 3-hop
  // community: every community edge can influence the seed's logits and
  // therefore receives real gradient through the explainer's edge mask.
  dc.num_layers = 3;
  detector_ = std::make_unique<core::XFraudDetector>(dc, &rng);

  sample::SageSampler sampler(2, 12);
  train::TrainOptions topts;
  topts.max_epochs = options.detector_epochs;
  topts.patience = options.detector_epochs;
  topts.batch_size = 256;
  topts.lr = 2e-3f;
  topts.class_weights = {1.0f, 4.0f};
  topts.seed = options.seed;
  train::Trainer trainer(detector_.get(), &sampler, topts);
  trainer.Train(dataset_);
  test_auc_ = trainer.Evaluate(dataset_.graph, dataset_.test_nodes).auc;

  // 2. Pick 18 fraud-seeded + 23 benign-seeded communities from the test
  // split with usable sizes.
  std::vector<int32_t> test_nodes = dataset_.test_nodes;
  rng.Shuffle(&test_nodes);
  int fraud_left = options.fraud_communities;
  int benign_left = options.benign_communities;
  data::AnnotationSimulator annotator(
      data::AnnotationSimulator::Options{.seed = options.seed ^ 0x5150});
  GnnExplainer explainer(detector_.get(),
                         GnnExplainerOptions{.seed = options.seed ^ 0xE});
  xfraud::Rng centrality_rng(options.seed ^ 0xC3);

  for (int32_t seed_node : test_nodes) {
    if (fraud_left == 0 && benign_left == 0) break;
    int8_t label = dataset_.graph.label(seed_node);
    int& quota = label == graph::kLabelFraud ? fraud_left : benign_left;
    if (quota == 0) continue;
    // The paper's community takes everything connected to the seed; on the
    // simulated workload shared warehouses weld most of the graph into one
    // component, so the local analogue is the fanout-capped 3-hop
    // neighbourhood — the same local risk-propagation context the case
    // studies (Figs. 11/16/17) show.
    graph::Subgraph sub = graph::KHopSubgraph(dataset_.graph, seed_node,
                                              /*hops=*/3, /*fanout=*/10,
                                              &centrality_rng);
    if (sub.num_nodes() > options.max_community_nodes) continue;
    if (sub.num_nodes() < options.min_community_nodes) continue;
    auto undirected = graph::UndirectedEdges(sub);
    if (undirected.size() < 10) continue;
    --quota;

    CommunityRecord record;
    record.seed_label = label;
    record.undirected = undirected;

    // Simulated expert annotations -> node importance -> edge importance
    // ("avg" aggregation; Appendix E finds no substantial difference).
    record.annotations = annotator.Annotate(dataset_.graph, sub);
    record.node_importance =
        data::AnnotationSimulator::NodeImportance(record.annotations);
    record.human_edges = data::EdgeImportanceFromNodes(
        record.node_importance, undirected, data::EdgeAggregation::kAvg);

    // GNNExplainer on the community (the seed is the node-to-explain).
    sample::MiniBatch batch =
        sample::MakeBatch(dataset_.graph, sub, {seed_node});
    record.sub = batch.sub;
    Explanation explanation = explainer.Explain(batch);
    record.explainer_edges = explanation.undirected_edge_weights;
    {
      core::ForwardOptions eval;
      nn::Var logits = detector_->Forward(batch, eval);
      record.seed_score = train::FraudProbabilities(logits)[0];
    }

    // All 13 centrality measures (or the cheap 11).
    record.centrality_edges.resize(kNumCentralityMeasures);
    for (int m = 0; m < kNumCentralityMeasures; ++m) {
      auto measure = static_cast<CentralityMeasure>(m);
      if (!options.all_measures &&
          (measure == CentralityMeasure::kCommunicabilityBetweenness ||
           measure == CentralityMeasure::kSubgraph)) {
        continue;
      }
      record.centrality_edges[m] = EdgeWeightsByCentrality(
          undirected, sub.num_nodes(), measure, &centrality_rng);
    }
    communities_.push_back(std::move(record));
  }
  XF_CHECK_GE(communities_.size(), 30u)
      << "not enough usable communities in the test split";
}

std::vector<CommunityWeights> CommunityStudy::Weights(
    CentralityMeasure measure) const {
  std::vector<CommunityWeights> out;
  out.reserve(communities_.size());
  for (const auto& record : communities_) {
    CommunityWeights w;
    w.centrality = record.centrality_edges[static_cast<int>(measure)];
    w.explainer = record.explainer_edges;
    w.human = record.human_edges;
    XF_CHECK(!w.centrality.empty());
    out.push_back(std::move(w));
  }
  return out;
}

void CommunityStudy::SplitTrainTest(const std::vector<CommunityWeights>& all,
                                    std::vector<CommunityWeights>* train,
                                    std::vector<CommunityWeights>* test) {
  // §5.1: first 21 communities train, last 20 test.
  size_t n_train = std::min<size_t>(21, all.size());
  train->assign(all.begin(), all.begin() + n_train);
  test->assign(all.begin() + n_train, all.end());
}

}  // namespace xfraud::explain
