#ifndef XFRAUD_EXPLAIN_HYBRID_H_
#define XFRAUD_EXPLAIN_HYBRID_H_

#include <vector>

#include "xfraud/common/rng.h"

namespace xfraud::explain {

/// Per-community inputs to the hybrid explainer: the task-agnostic
/// centrality edge weights w(c), the task-aware GNNExplainer edge weights
/// w(e), and the human (simulated-annotator) edge-importance reference.
struct CommunityWeights {
  std::vector<double> centrality;  // w(c)
  std::vector<double> explainer;   // w(e)
  std::vector<double> human;       // reference edge importance
};

/// The learnable hybrid explainer of paper §3.4.2 / Appendix F: combined
/// edge weights A·w(c) + B·w(e), with the coefficients learned on training
/// communities either by ridge regression against the human scores or by
/// directly maximizing the average top-k hit rate over a grid.
class HybridExplainer {
 public:
  /// Fits A, B by ridge regression of human scores on [w(c), w(e)] pooled
  /// over the training communities, with L2 strength `alpha` selected from
  /// `alphas` by training-set hit rate at `k` (Appendix F (3)).
  static HybridExplainer FitRidge(
      const std::vector<CommunityWeights>& train, int k, xfraud::Rng* rng,
      const std::vector<double>& alphas = {0.01, 0.25, 0.5, 0.75, 0.99});

  /// Grid search A ∈ {0.00, 0.01, ..., 1.00}, B = 1 - A, maximizing the
  /// average top-k hit rate on the training communities (Appendix F (2)).
  static HybridExplainer FitGrid(const std::vector<CommunityWeights>& train,
                                 int k, xfraud::Rng* rng);

  /// Combined weights A·w(c) + B·w(e) for one community.
  std::vector<double> Combine(const CommunityWeights& community) const;

  /// Mean top-k hit rate of the combined weights over `communities`.
  double MeanHitRate(const std::vector<CommunityWeights>& communities, int k,
                     xfraud::Rng* rng) const;

  double a() const { return a_; }
  double b() const { return b_; }

 private:
  HybridExplainer(double a, double b) : a_(a), b_(b) {}

  double a_ = 0.5;  // centrality coefficient
  double b_ = 0.5;  // explainer coefficient
};

/// Appendix F (1): fits polynomial combinations of degree d ∈ [1, max_degree]
/// by ridge regression and returns the degree with the best mean train hit
/// rate (the paper finds d = 1 is the best fit).
int BestPolynomialDegree(const std::vector<CommunityWeights>& train, int k,
                         xfraud::Rng* rng, int max_degree = 3);

/// Plain ridge regression: solves (X^T X + alpha I) beta = X^T y.
/// Exposed for tests.
std::vector<double> RidgeRegression(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    double alpha);

}  // namespace xfraud::explain

#endif  // XFRAUD_EXPLAIN_HYBRID_H_
