#ifndef XFRAUD_EXPLAIN_CENTRALITY_H_
#define XFRAUD_EXPLAIN_CENTRALITY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "xfraud/common/rng.h"
#include "xfraud/graph/subgraph.h"

namespace xfraud::explain {

/// A plain undirected graph, the domain of the centrality measures. In the
/// explainer pipeline this is either a community itself (edge measures) or
/// its line graph (node measures used as edge measures, Appendix F).
struct SimpleGraph {
  int n = 0;
  std::vector<std::pair<int, int>> edges;
  std::vector<std::vector<int>> adj;

  static SimpleGraph FromEdges(int n, std::vector<std::pair<int, int>> edges);

  int64_t num_edges() const { return static_cast<int64_t>(edges.size()); }
};

// ---- Node centralities ----------------------------------------------------
// All follow the standard (networkx-compatible) definitions; exact values on
// canonical graphs are verified in tests/centrality_test.cc.

/// degree / (n-1).
std::vector<double> DegreeCentrality(const SimpleGraph& g);

/// Freeman closeness with the Wasserman-Faust component scaling.
std::vector<double> ClosenessCentrality(const SimpleGraph& g);

/// Harmonic centrality: sum of 1/d(v, u) over u != v.
std::vector<double> HarmonicCentrality(const SimpleGraph& g);

/// Brandes shortest-path betweenness, normalized by (n-1)(n-2)/2.
std::vector<double> BetweennessCentrality(const SimpleGraph& g);

/// Newman-Goh load centrality: unit packets from every source to every
/// target, split equally among shortest-path predecessors at each hop.
/// Normalized like betweenness.
std::vector<double> LoadCentrality(const SimpleGraph& g);

/// Dominant eigenvector of the adjacency matrix (power iteration),
/// normalized to unit Euclidean norm.
std::vector<double> EigenvectorCentrality(const SimpleGraph& g);

/// Estrada subgraph centrality: diag(expm(A)).
std::vector<double> SubgraphCentrality(const SimpleGraph& g);

/// Estrada-Hatano communicability betweenness.
std::vector<double> CommunicabilityBetweenness(const SimpleGraph& g);

/// Newman current-flow (random-walk) betweenness via the Laplacian
/// pseudo-inverse; endpoint flows excluded; normalized by (n-1)(n-2)/2.
std::vector<double> CurrentFlowBetweenness(const SimpleGraph& g);

/// Current-flow closeness (information centrality):
/// (n-1) / sum_t (C_vv + C_tt - 2 C_vt).
std::vector<double> CurrentFlowCloseness(const SimpleGraph& g);

/// Monte-Carlo approximation of current-flow betweenness: `samples` random
/// (s, t) pairs instead of all pairs.
std::vector<double> ApproxCurrentFlowBetweenness(const SimpleGraph& g,
                                                 xfraud::Rng* rng,
                                                 int samples = 64);

// ---- Edge centralities -----------------------------------------------------

/// Brandes edge betweenness, normalized by n(n-1)/2.
std::vector<double> EdgeBetweenness(const SimpleGraph& g);

/// Edge load: shortest-path packet flow crossing each edge.
std::vector<double> EdgeLoad(const SimpleGraph& g);

// ---- The Table 1 measure suite ---------------------------------------------

/// The 13 measures of paper Table 1, in its row order.
enum class CentralityMeasure {
  kEdgeBetweenness = 0,
  kEdgeLoad,
  kApproxCurrentFlowBetweenness,
  kBetweenness,
  kCloseness,
  kCommunicabilityBetweenness,
  kCurrentFlowBetweenness,
  kCurrentFlowCloseness,
  kDegree,
  kEigenvector,
  kHarmonic,
  kLoad,
  kSubgraph,
};

inline constexpr int kNumCentralityMeasures = 13;

const char* CentralityMeasureName(CentralityMeasure measure);

/// Edge weights of a community under `measure` (Appendix F): edge measures
/// run on the community graph directly; node measures run on its line graph,
/// whose vertices are exactly the community's undirected edges.
std::vector<double> EdgeWeightsByCentrality(
    const std::vector<graph::UndirectedEdge>& edges, int64_t num_nodes,
    CentralityMeasure measure, xfraud::Rng* rng);

}  // namespace xfraud::explain

#endif  // XFRAUD_EXPLAIN_CENTRALITY_H_
