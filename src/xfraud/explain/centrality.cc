#include "xfraud/explain/centrality.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "xfraud/common/logging.h"
#include "xfraud/la/matrix.h"

namespace xfraud::explain {

namespace {

/// BFS shortest-path structure from one source: distances, predecessor
/// lists, path counts, and nodes in non-decreasing distance order.
struct BfsTree {
  std::vector<int> dist;
  std::vector<std::vector<int>> preds;
  std::vector<double> sigma;  // number of shortest paths
  std::vector<int> order;     // BFS order
};

BfsTree Bfs(const SimpleGraph& g, int source) {
  BfsTree t;
  t.dist.assign(g.n, -1);
  t.preds.assign(g.n, {});
  t.sigma.assign(g.n, 0.0);
  t.order.reserve(g.n);
  std::deque<int> queue = {source};
  t.dist[source] = 0;
  t.sigma[source] = 1.0;
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    t.order.push_back(v);
    for (int u : g.adj[v]) {
      if (t.dist[u] < 0) {
        t.dist[u] = t.dist[v] + 1;
        queue.push_back(u);
      }
      if (t.dist[u] == t.dist[v] + 1) {
        t.sigma[u] += t.sigma[v];
        t.preds[u].push_back(v);
      }
    }
  }
  return t;
}

la::Matrix Adjacency(const SimpleGraph& g) {
  la::Matrix a(g.n, g.n);
  for (const auto& [u, v] : g.edges) {
    a(u, v) = 1.0;
    a(v, u) = 1.0;
  }
  return a;
}

la::Matrix Laplacian(const SimpleGraph& g) {
  la::Matrix l(g.n, g.n);
  for (const auto& [u, v] : g.edges) {
    l(u, v) -= 1.0;
    l(v, u) -= 1.0;
    l(u, u) += 1.0;
    l(v, v) += 1.0;
  }
  return l;
}

double PairNormalization(int n) {
  // (n-1)(n-2)/2, the number of pairs excluding a given node.
  return n > 2 ? (static_cast<double>(n) - 1) * (n - 2) / 2.0 : 1.0;
}

/// Shared core of exact/approximate current-flow betweenness: accumulates
/// the node throughput for the given (s, t) pairs.
std::vector<double> CurrentFlowCore(
    const SimpleGraph& g, const la::Matrix& c,
    const std::vector<std::pair<int, int>>& pairs, double scale) {
  std::vector<double> out(g.n, 0.0);
  for (const auto& [s, t] : pairs) {
    for (int v = 0; v < g.n; ++v) {
      if (v == s || v == t) continue;
      double through = 0.0;
      for (int u : g.adj[v]) {
        double current = c(v, s) - c(v, t) - c(u, s) + c(u, t);
        through += std::fabs(current);
      }
      out[v] += 0.5 * through;
    }
  }
  for (double& x : out) x *= scale;
  return out;
}

}  // namespace

SimpleGraph SimpleGraph::FromEdges(int n,
                                   std::vector<std::pair<int, int>> edges) {
  SimpleGraph g;
  g.n = n;
  g.edges = std::move(edges);
  g.adj.assign(n, {});
  for (const auto& [u, v] : g.edges) {
    XF_CHECK_GE(u, 0);
    XF_CHECK_LT(u, n);
    XF_CHECK_GE(v, 0);
    XF_CHECK_LT(v, n);
    XF_CHECK_NE(u, v);
    g.adj[u].push_back(v);
    g.adj[v].push_back(u);
  }
  return g;
}

std::vector<double> DegreeCentrality(const SimpleGraph& g) {
  std::vector<double> out(g.n, 0.0);
  double norm = g.n > 1 ? 1.0 / (g.n - 1) : 1.0;
  for (int v = 0; v < g.n; ++v) {
    out[v] = static_cast<double>(g.adj[v].size()) * norm;
  }
  return out;
}

std::vector<double> ClosenessCentrality(const SimpleGraph& g) {
  std::vector<double> out(g.n, 0.0);
  for (int v = 0; v < g.n; ++v) {
    BfsTree t = Bfs(g, v);
    double total = 0.0;
    int reachable = 0;
    for (int u = 0; u < g.n; ++u) {
      if (u != v && t.dist[u] > 0) {
        total += t.dist[u];
        ++reachable;
      }
    }
    if (total > 0.0 && g.n > 1) {
      // Wasserman-Faust scaling for disconnected graphs.
      out[v] = (reachable / total) * (reachable / (g.n - 1.0));
    }
  }
  return out;
}

std::vector<double> HarmonicCentrality(const SimpleGraph& g) {
  std::vector<double> out(g.n, 0.0);
  for (int v = 0; v < g.n; ++v) {
    BfsTree t = Bfs(g, v);
    for (int u = 0; u < g.n; ++u) {
      if (u != v && t.dist[u] > 0) out[v] += 1.0 / t.dist[u];
    }
  }
  return out;
}

std::vector<double> BetweennessCentrality(const SimpleGraph& g) {
  std::vector<double> out(g.n, 0.0);
  for (int s = 0; s < g.n; ++s) {
    BfsTree t = Bfs(g, s);
    std::vector<double> delta(g.n, 0.0);
    for (auto it = t.order.rbegin(); it != t.order.rend(); ++it) {
      int w = *it;
      for (int p : t.preds[w]) {
        delta[p] += t.sigma[p] / t.sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) out[w] += delta[w];
    }
  }
  // Each unordered pair is counted from both endpoints.
  double norm = 1.0 / (2.0 * PairNormalization(g.n));
  for (double& x : out) x *= norm;
  return out;
}

std::vector<double> LoadCentrality(const SimpleGraph& g) {
  std::vector<double> out(g.n, 0.0);
  for (int s = 0; s < g.n; ++s) {
    // Each reachable node is the destination of one unit packet from s;
    // packets travel backward through predecessors, split equally.
    std::vector<double> flow(g.n, 1.0);
    BfsTree t = Bfs(g, s);
    for (auto it = t.order.rbegin(); it != t.order.rend(); ++it) {
      int w = *it;
      if (w == s) continue;
      double share = flow[w] / static_cast<double>(t.preds[w].size());
      for (int p : t.preds[w]) flow[p] += share;
      out[w] += flow[w] - 1.0;  // exclude the packet terminating at w
    }
  }
  double norm = 1.0 / (2.0 * PairNormalization(g.n));
  for (double& x : out) x *= norm;
  return out;
}

std::vector<double> EigenvectorCentrality(const SimpleGraph& g) {
  if (g.n == 0) return {};
  // Power-iterate A + I: same eigenvectors, but the shift breaks the ±λ
  // eigenvalue symmetry of bipartite graphs that makes plain power
  // iteration oscillate (networkx applies the same shift).
  la::Matrix shifted = Adjacency(g).Add(la::Matrix::Identity(g.n));
  return la::PowerIteration(shifted, 2000, 1e-12);
}

std::vector<double> SubgraphCentrality(const SimpleGraph& g) {
  la::Matrix e = la::Expm(Adjacency(g));
  std::vector<double> out(g.n);
  for (int v = 0; v < g.n; ++v) out[v] = e(v, v);
  return out;
}

std::vector<double> CommunicabilityBetweenness(const SimpleGraph& g) {
  std::vector<double> out(g.n, 0.0);
  if (g.n < 3) return out;
  la::Matrix a = Adjacency(g);
  la::Matrix big_g = la::Expm(a);
  double norm = 1.0 / ((g.n - 1.0) * (g.n - 1.0) - (g.n - 1.0));
  for (int r = 0; r < g.n; ++r) {
    // Remove node r's connections and recompute the communicability.
    la::Matrix a_r = a;
    for (int i = 0; i < g.n; ++i) {
      a_r(r, i) = 0.0;
      a_r(i, r) = 0.0;
    }
    la::Matrix e_r = la::Expm(a_r);
    double omega = 0.0;
    for (int p = 0; p < g.n; ++p) {
      if (p == r) continue;
      for (int q = 0; q < g.n; ++q) {
        if (q == r || q == p) continue;
        double gpq = big_g(p, q);
        if (gpq <= 1e-15) continue;
        omega += (gpq - e_r(p, q)) / gpq;
      }
    }
    out[r] = omega * norm;
  }
  return out;
}

std::vector<double> CurrentFlowBetweenness(const SimpleGraph& g) {
  if (g.n < 3) return std::vector<double>(g.n, 0.0);
  la::Matrix c = la::PseudoInverseSymmetric(Laplacian(g));
  std::vector<std::pair<int, int>> pairs;
  for (int s = 0; s < g.n; ++s) {
    for (int t = s + 1; t < g.n; ++t) pairs.emplace_back(s, t);
  }
  return CurrentFlowCore(g, c, pairs, 1.0 / PairNormalization(g.n));
}

std::vector<double> CurrentFlowCloseness(const SimpleGraph& g) {
  std::vector<double> out(g.n, 0.0);
  if (g.n < 2) return out;
  la::Matrix c = la::PseudoInverseSymmetric(Laplacian(g));
  for (int v = 0; v < g.n; ++v) {
    double total = 0.0;
    for (int t = 0; t < g.n; ++t) {
      if (t == v) continue;
      total += c(v, v) + c(t, t) - 2.0 * c(v, t);
    }
    out[v] = total > 1e-15 ? (g.n - 1.0) / total : 0.0;
  }
  return out;
}

std::vector<double> ApproxCurrentFlowBetweenness(const SimpleGraph& g,
                                                 xfraud::Rng* rng,
                                                 int samples) {
  if (g.n < 3) return std::vector<double>(g.n, 0.0);
  la::Matrix c = la::PseudoInverseSymmetric(Laplacian(g));
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    int s = static_cast<int>(rng->NextBounded(g.n));
    int t = static_cast<int>(rng->NextBounded(g.n));
    while (t == s) t = static_cast<int>(rng->NextBounded(g.n));
    pairs.emplace_back(s, t);
  }
  // Scale the sampled-pair average up to the all-pairs count, then apply
  // the exact measure's normalization so values are comparable.
  double all_pairs = static_cast<double>(g.n) * (g.n - 1) / 2.0;
  double scale = all_pairs / static_cast<double>(samples) /
                 PairNormalization(g.n);
  return CurrentFlowCore(g, c, pairs, scale);
}

std::vector<double> EdgeBetweenness(const SimpleGraph& g) {
  // Map unordered pair -> edge index for accumulation.
  std::vector<double> out(g.edges.size(), 0.0);
  std::vector<std::vector<std::pair<int, int>>> edge_index(g.n);
  for (size_t e = 0; e < g.edges.size(); ++e) {
    auto [u, v] = g.edges[e];
    edge_index[u].emplace_back(v, static_cast<int>(e));
    edge_index[v].emplace_back(u, static_cast<int>(e));
  }
  auto find_edge = [&](int u, int v) {
    for (const auto& [nbr, idx] : edge_index[u]) {
      if (nbr == v) return idx;
    }
    XF_CHECK(false) << "edge not found";
    return -1;
  };

  for (int s = 0; s < g.n; ++s) {
    BfsTree t = Bfs(g, s);
    std::vector<double> delta(g.n, 0.0);
    for (auto it = t.order.rbegin(); it != t.order.rend(); ++it) {
      int w = *it;
      for (int p : t.preds[w]) {
        double share = t.sigma[p] / t.sigma[w] * (1.0 + delta[w]);
        out[find_edge(p, w)] += share;
        delta[p] += share;
      }
    }
  }
  double norm = g.n > 1 ? 1.0 / (static_cast<double>(g.n) * (g.n - 1)) : 1.0;
  for (double& x : out) x *= norm;  // both directions counted => n(n-1)/2 * 2
  return out;
}

std::vector<double> EdgeLoad(const SimpleGraph& g) {
  std::vector<double> out(g.edges.size(), 0.0);
  std::vector<std::vector<std::pair<int, int>>> edge_index(g.n);
  for (size_t e = 0; e < g.edges.size(); ++e) {
    auto [u, v] = g.edges[e];
    edge_index[u].emplace_back(v, static_cast<int>(e));
    edge_index[v].emplace_back(u, static_cast<int>(e));
  }
  auto find_edge = [&](int u, int v) {
    for (const auto& [nbr, idx] : edge_index[u]) {
      if (nbr == v) return idx;
    }
    XF_CHECK(false) << "edge not found";
    return -1;
  };

  for (int s = 0; s < g.n; ++s) {
    std::vector<double> flow(g.n, 1.0);
    BfsTree t = Bfs(g, s);
    for (auto it = t.order.rbegin(); it != t.order.rend(); ++it) {
      int w = *it;
      if (w == s) continue;
      double share = flow[w] / static_cast<double>(t.preds[w].size());
      for (int p : t.preds[w]) {
        flow[p] += share;
        out[find_edge(p, w)] += share;
      }
    }
  }
  return out;
}

const char* CentralityMeasureName(CentralityMeasure measure) {
  switch (measure) {
    case CentralityMeasure::kEdgeBetweenness:
      return "edge betweenness";
    case CentralityMeasure::kEdgeLoad:
      return "edge load";
    case CentralityMeasure::kApproxCurrentFlowBetweenness:
      return "approximate current flow betweenness";
    case CentralityMeasure::kBetweenness:
      return "betweenness";
    case CentralityMeasure::kCloseness:
      return "closeness";
    case CentralityMeasure::kCommunicabilityBetweenness:
      return "communicability betweenness";
    case CentralityMeasure::kCurrentFlowBetweenness:
      return "current flow betweenness";
    case CentralityMeasure::kCurrentFlowCloseness:
      return "current flow closeness";
    case CentralityMeasure::kDegree:
      return "degree";
    case CentralityMeasure::kEigenvector:
      return "eigenvector";
    case CentralityMeasure::kHarmonic:
      return "harmonic";
    case CentralityMeasure::kLoad:
      return "load";
    case CentralityMeasure::kSubgraph:
      return "subgraph";
  }
  return "?";
}

std::vector<double> EdgeWeightsByCentrality(
    const std::vector<graph::UndirectedEdge>& edges, int64_t num_nodes,
    CentralityMeasure measure, xfraud::Rng* rng) {
  // Edge measures run on the community graph itself.
  if (measure == CentralityMeasure::kEdgeBetweenness ||
      measure == CentralityMeasure::kEdgeLoad) {
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(edges.size());
    for (const auto& e : edges) pairs.emplace_back(e.u, e.v);
    SimpleGraph g = SimpleGraph::FromEdges(static_cast<int>(num_nodes),
                                           std::move(pairs));
    return measure == CentralityMeasure::kEdgeBetweenness ? EdgeBetweenness(g)
                                                          : EdgeLoad(g);
  }

  // Node measures run on the line graph, whose vertex i is community edge i.
  auto line_adj = graph::LineGraphAdjacency(edges, num_nodes);
  std::vector<std::pair<int, int>> line_edges;
  for (size_t u = 0; u < line_adj.size(); ++u) {
    for (int v : line_adj[u]) {
      if (static_cast<int>(u) < v) {
        line_edges.emplace_back(static_cast<int>(u), v);
      }
    }
  }
  SimpleGraph lg = SimpleGraph::FromEdges(static_cast<int>(edges.size()),
                                          std::move(line_edges));
  switch (measure) {
    case CentralityMeasure::kApproxCurrentFlowBetweenness:
      XF_CHECK(rng != nullptr);
      return ApproxCurrentFlowBetweenness(lg, rng);
    case CentralityMeasure::kBetweenness:
      return BetweennessCentrality(lg);
    case CentralityMeasure::kCloseness:
      return ClosenessCentrality(lg);
    case CentralityMeasure::kCommunicabilityBetweenness:
      return CommunicabilityBetweenness(lg);
    case CentralityMeasure::kCurrentFlowBetweenness:
      return CurrentFlowBetweenness(lg);
    case CentralityMeasure::kCurrentFlowCloseness:
      return CurrentFlowCloseness(lg);
    case CentralityMeasure::kDegree:
      return DegreeCentrality(lg);
    case CentralityMeasure::kEigenvector:
      return EigenvectorCentrality(lg);
    case CentralityMeasure::kHarmonic:
      return HarmonicCentrality(lg);
    case CentralityMeasure::kLoad:
      return LoadCentrality(lg);
    case CentralityMeasure::kSubgraph:
      return SubgraphCentrality(lg);
    case CentralityMeasure::kEdgeBetweenness:
    case CentralityMeasure::kEdgeLoad:
      break;
  }
  XF_CHECK(false);
  return {};
}

}  // namespace xfraud::explain
