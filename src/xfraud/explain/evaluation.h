#ifndef XFRAUD_EXPLAIN_EVALUATION_H_
#define XFRAUD_EXPLAIN_EVALUATION_H_

#include <memory>
#include <vector>

#include "xfraud/core/detector.h"
#include "xfraud/data/annotation.h"
#include "xfraud/data/generator.h"
#include "xfraud/explain/centrality.h"
#include "xfraud/explain/gnn_explainer.h"
#include "xfraud/explain/hybrid.h"

namespace xfraud::explain {

/// Everything the quantitative explainer evaluation (paper §5.1) needs for
/// one community: the subgraph, the simulated annotations, the GNNExplainer
/// weights, and the per-measure centrality weights — all on the community's
/// undirected edges.
struct CommunityRecord {
  graph::Subgraph sub;
  std::vector<graph::UndirectedEdge> undirected;
  int seed_label = 0;                 // label of the seed transaction
  double seed_score = 0.0;            // detector fraud probability
  std::vector<std::vector<int>> annotations;  // [annotator][node]
  std::vector<double> node_importance;        // mean annotation per node
  std::vector<double> human_edges;    // edge importance (avg aggregation)
  std::vector<double> explainer_edges;  // GNNExplainer weights w(e)
  /// centrality_edges[m] = weights under CentralityMeasure m.
  std::vector<std::vector<double>> centrality_edges;
};

/// Configuration of the §5.1 study: 41 communities around randomly selected
/// test transactions, 18 fraud-seeded and 23 benign-seeded.
struct StudyOptions {
  int fraud_communities = 18;
  int benign_communities = 23;
  int min_community_nodes = 8;
  int max_community_nodes = 80;
  int detector_epochs = 20;
  uint64_t seed = 2021;
  /// Skip the two matrix-exponential measures (communicability betweenness
  /// is O(n) expm calls per community) when a cheap run is needed.
  bool all_measures = true;
};

/// The full §5.1 pipeline: generates a sim-small workload, trains the
/// detector+, samples the communities, simulates the annotators, runs
/// GNNExplainer per community, and computes the 13 centrality measures.
class CommunityStudy {
 public:
  explicit CommunityStudy(StudyOptions options);

  const std::vector<CommunityRecord>& communities() const {
    return communities_;
  }
  const data::SimDataset& dataset() const { return dataset_; }
  const core::XFraudDetector& detector() const { return *detector_; }
  double test_auc() const { return test_auc_; }

  /// CommunityWeights (w(c)=given measure, w(e), human) for each community.
  std::vector<CommunityWeights> Weights(CentralityMeasure measure) const;

  /// The paper's 21/20 train/test community split (§5.1).
  static void SplitTrainTest(const std::vector<CommunityWeights>& all,
                             std::vector<CommunityWeights>* train,
                             std::vector<CommunityWeights>* test);

 private:
  StudyOptions options_;
  data::SimDataset dataset_;
  std::unique_ptr<core::XFraudDetector> detector_;
  std::vector<CommunityRecord> communities_;
  double test_auc_ = 0.0;
};

}  // namespace xfraud::explain

#endif  // XFRAUD_EXPLAIN_EVALUATION_H_
