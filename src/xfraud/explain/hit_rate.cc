#include "xfraud/explain/hit_rate.h"

#include <algorithm>
#include <numeric>

#include "xfraud/common/logging.h"

namespace xfraud::explain {

std::vector<int> TopkIndices(const std::vector<double>& values, int k,
                             xfraud::Rng* rng) {
  int n = static_cast<int>(values.size());
  k = std::min(k, n);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Random tie-break: shuffle first, then stable-sort by value descending.
  rng->Shuffle(&order);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return values[a] > values[b];
  });
  order.resize(k);
  return order;
}

double TopkHitRate(const std::vector<double>& reference,
                   const std::vector<double>& candidate, int k,
                   xfraud::Rng* rng, int draws) {
  XF_CHECK_EQ(reference.size(), candidate.size());
  XF_CHECK_GT(k, 0);
  if (reference.empty()) return 0.0;
  int effective_k = std::min<int>(k, static_cast<int>(reference.size()));
  double total = 0.0;
  for (int d = 0; d < draws; ++d) {
    std::vector<int> ref_top = TopkIndices(reference, k, rng);
    std::vector<int> cand_top = TopkIndices(candidate, k, rng);
    std::sort(ref_top.begin(), ref_top.end());
    std::sort(cand_top.begin(), cand_top.end());
    std::vector<int> common;
    std::set_intersection(ref_top.begin(), ref_top.end(), cand_top.begin(),
                          cand_top.end(), std::back_inserter(common));
    total += static_cast<double>(common.size()) / effective_k;
  }
  return total / draws;
}

double RandomHitRate(const std::vector<double>& reference, int k,
                     xfraud::Rng* rng, int repeats, int draws) {
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    std::vector<double> random_weights(reference.size());
    for (auto& w : random_weights) w = rng->NextDouble();
    total += TopkHitRate(reference, random_weights, k, rng, draws);
  }
  return repeats > 0 ? total / repeats : 0.0;
}

}  // namespace xfraud::explain
