#include "xfraud/explain/visualize.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "xfraud/common/logging.h"

namespace xfraud::explain {

std::string DescribeNode(const graph::HeteroGraph& g,
                         const graph::Subgraph& community, int32_t local) {
  int32_t global = community.nodes[local];
  std::ostringstream os;
  os << local << ":" << graph::NodeTypeName(g.node_type(global));
  if (g.node_type(global) == graph::NodeType::kTxn) {
    switch (g.label(global)) {
      case graph::kLabelFraud:
        os << "(fraud)";
        break;
      case graph::kLabelBenign:
        os << "(benign)";
        break;
      default:
        os << "(?)";
        break;
    }
  }
  if (local == community.seed_local) os << "*";
  return os.str();
}

std::string RenderCommunity(const graph::HeteroGraph& g,
                            const graph::Subgraph& community,
                            const std::vector<double>& edge_weights,
                            int max_edges) {
  auto undirected = graph::UndirectedEdges(community);
  XF_CHECK_EQ(undirected.size(), edge_weights.size());

  std::ostringstream os;
  os << "community: " << community.num_nodes() << " nodes, "
     << undirected.size() << " undirected edges; seed "
     << DescribeNode(g, community, community.seed_local) << "\n";

  auto counts = std::vector<int>(graph::kNumNodeTypes, 0);
  int fraud = 0, benign = 0;
  for (int64_t v = 0; v < community.num_nodes(); ++v) {
    int32_t global = community.nodes[v];
    ++counts[static_cast<int>(g.node_type(global))];
    if (g.node_type(global) == graph::NodeType::kTxn) {
      if (g.label(global) == graph::kLabelFraud) ++fraud;
      if (g.label(global) == graph::kLabelBenign) ++benign;
    }
  }
  os << "  types:";
  for (int t = 0; t < graph::kNumNodeTypes; ++t) {
    os << " " << graph::NodeTypeName(static_cast<graph::NodeType>(t)) << "="
       << counts[t];
  }
  os << " | txn labels: fraud=" << fraud << " benign=" << benign << "\n";

  double max_w = 1e-12;
  for (double w : edge_weights) max_w = std::max(max_w, w);

  std::vector<size_t> order(undirected.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return edge_weights[a] > edge_weights[b];
  });

  int shown = 0;
  for (size_t idx : order) {
    if (shown++ >= max_edges) {
      os << "  ... (" << undirected.size() - max_edges << " more)\n";
      break;
    }
    const auto& e = undirected[idx];
    int bar = static_cast<int>(edge_weights[idx] / max_w * 20.0 + 0.5);
    os << "  [";
    for (int i = 0; i < 20; ++i) os << (i < bar ? '#' : ' ');
    os << "] " << DescribeNode(g, community, e.u) << " -- "
       << DescribeNode(g, community, e.v) << "  w="
       << edge_weights[idx] << "\n";
  }
  return os.str();
}

}  // namespace xfraud::explain
