#ifndef XFRAUD_EXPLAIN_VISUALIZE_H_
#define XFRAUD_EXPLAIN_VISUALIZE_H_

#include <string>
#include <vector>

#include "xfraud/graph/hetero_graph.h"
#include "xfraud/graph/subgraph.h"

namespace xfraud::explain {

/// Plain-text rendering of a community with explainer edge weights — the
/// reproduction's analogue of the paper's case-study figures (Figs. 6, 11,
/// 16, 17): every undirected edge is listed with endpoint types/labels and
/// a bar whose length encodes the (hybrid) edge weight; the thicker the
/// edge, the stronger its role in the seed's prediction.
///
/// `edge_weights` must align with UndirectedEdges(community). Edges are
/// printed in descending weight order; `max_edges` caps the listing.
std::string RenderCommunity(const graph::HeteroGraph& g,
                            const graph::Subgraph& community,
                            const std::vector<double>& edge_weights,
                            int max_edges = 25);

/// One-line description of a community node, e.g. "7:txn(fraud)" or
/// "12:addr" — used by RenderCommunity and the examples.
std::string DescribeNode(const graph::HeteroGraph& g,
                         const graph::Subgraph& community, int32_t local);

}  // namespace xfraud::explain

#endif  // XFRAUD_EXPLAIN_VISUALIZE_H_
