#include "xfraud/explain/hybrid.h"

#include <algorithm>
#include <cmath>

#include "xfraud/common/logging.h"
#include "xfraud/explain/hit_rate.h"
#include "xfraud/la/matrix.h"

namespace xfraud::explain {

namespace {

/// Rescales weights to [0, 1] per community so centrality and explainer
/// weights (different natural scales, §3.4.1) combine commensurably.
std::vector<double> Normalize(const std::vector<double>& w) {
  double lo = *std::min_element(w.begin(), w.end());
  double hi = *std::max_element(w.begin(), w.end());
  std::vector<double> out(w.size(), 0.0);
  if (hi - lo < 1e-15) return out;
  for (size_t i = 0; i < w.size(); ++i) out[i] = (w[i] - lo) / (hi - lo);
  return out;
}

double HitRateOfCoefficients(const std::vector<CommunityWeights>& communities,
                             double a, double b, int k, xfraud::Rng* rng) {
  double total = 0.0;
  for (const auto& c : communities) {
    std::vector<double> wc = Normalize(c.centrality);
    std::vector<double> we = Normalize(c.explainer);
    std::vector<double> combined(wc.size());
    for (size_t i = 0; i < wc.size(); ++i) combined[i] = a * wc[i] + b * we[i];
    total += TopkHitRate(c.human, combined, k, rng);
  }
  return communities.empty() ? 0.0 : total / communities.size();
}

}  // namespace

std::vector<double> RidgeRegression(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    double alpha) {
  XF_CHECK(!x.empty());
  XF_CHECK_EQ(x.size(), y.size());
  size_t d = x[0].size();
  la::Matrix xtx(d, d);
  std::vector<double> xty(d, 0.0);
  for (size_t r = 0; r < x.size(); ++r) {
    XF_CHECK_EQ(x[r].size(), d);
    for (size_t i = 0; i < d; ++i) {
      xty[i] += x[r][i] * y[r];
      for (size_t j = 0; j < d; ++j) xtx(i, j) += x[r][i] * x[r][j];
    }
  }
  for (size_t i = 0; i < d; ++i) xtx(i, i) += alpha;
  std::vector<double> beta;
  XF_CHECK(la::SolveLinearSystem(xtx, xty, &beta));
  return beta;
}

HybridExplainer HybridExplainer::FitRidge(
    const std::vector<CommunityWeights>& train, int k, xfraud::Rng* rng,
    const std::vector<double>& alphas) {
  // Pool normalized (w(c), w(e)) -> human rows across train communities.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const auto& c : train) {
    std::vector<double> wc = Normalize(c.centrality);
    std::vector<double> we = Normalize(c.explainer);
    for (size_t i = 0; i < wc.size(); ++i) {
      x.push_back({wc[i], we[i]});
      y.push_back(c.human[i]);
    }
  }
  double best_rate = -1.0;
  double best_a = 0.5, best_b = 0.5;
  for (double alpha : alphas) {
    std::vector<double> beta = RidgeRegression(x, y, alpha);
    double rate = HitRateOfCoefficients(train, beta[0], beta[1], k, rng);
    if (rate > best_rate) {
      best_rate = rate;
      best_a = beta[0];
      best_b = beta[1];
    }
  }
  return HybridExplainer(best_a, best_b);
}

HybridExplainer HybridExplainer::FitGrid(
    const std::vector<CommunityWeights>& train, int k, xfraud::Rng* rng) {
  double best_rate = -1.0;
  double best_a = 0.0;
  for (int step = 0; step <= 100; ++step) {
    double a = step / 100.0;
    double rate = HitRateOfCoefficients(train, a, 1.0 - a, k, rng);
    if (rate > best_rate) {
      best_rate = rate;
      best_a = a;
    }
  }
  return HybridExplainer(best_a, 1.0 - best_a);
}

std::vector<double> HybridExplainer::Combine(
    const CommunityWeights& community) const {
  std::vector<double> wc = Normalize(community.centrality);
  std::vector<double> we = Normalize(community.explainer);
  std::vector<double> out(wc.size());
  for (size_t i = 0; i < wc.size(); ++i) out[i] = a_ * wc[i] + b_ * we[i];
  return out;
}

double HybridExplainer::MeanHitRate(
    const std::vector<CommunityWeights>& communities, int k,
    xfraud::Rng* rng) const {
  return HitRateOfCoefficients(communities, a_, b_, k, rng);
}

int BestPolynomialDegree(const std::vector<CommunityWeights>& train, int k,
                         xfraud::Rng* rng, int max_degree) {
  int best_degree = 1;
  double best_rate = -1.0;
  for (int degree = 1; degree <= max_degree; ++degree) {
    // Polynomial features: all monomials wc^p * we^q with 1 <= p+q <= d.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    auto featurize = [degree](double wc, double we) {
      std::vector<double> row;
      for (int p = 0; p <= degree; ++p) {
        for (int q = 0; q <= degree - p; ++q) {
          if (p + q == 0) continue;
          row.push_back(std::pow(wc, p) * std::pow(we, q));
        }
      }
      return row;
    };
    for (const auto& c : train) {
      std::vector<double> wc = Normalize(c.centrality);
      std::vector<double> we = Normalize(c.explainer);
      for (size_t i = 0; i < wc.size(); ++i) {
        x.push_back(featurize(wc[i], we[i]));
        y.push_back(c.human[i]);
      }
    }
    std::vector<double> beta = RidgeRegression(x, y, 0.5);
    // Evaluate the fitted polynomial's hit rate on the train communities.
    double total = 0.0;
    for (const auto& c : train) {
      std::vector<double> wc = Normalize(c.centrality);
      std::vector<double> we = Normalize(c.explainer);
      std::vector<double> combined(wc.size(), 0.0);
      for (size_t i = 0; i < wc.size(); ++i) {
        std::vector<double> row = featurize(wc[i], we[i]);
        for (size_t j = 0; j < row.size(); ++j) {
          combined[i] += beta[j] * row[j];
        }
      }
      total += TopkHitRate(c.human, combined, k, rng);
    }
    double rate = train.empty() ? 0.0 : total / train.size();
    if (rate > best_rate + 1e-9) {
      best_rate = rate;
      best_degree = degree;
    }
  }
  return best_degree;
}

}  // namespace xfraud::explain
