#ifndef XFRAUD_EXPLAIN_GNN_EXPLAINER_H_
#define XFRAUD_EXPLAIN_GNN_EXPLAINER_H_

#include <vector>

#include "xfraud/core/gnn_model.h"
#include "xfraud/nn/tensor.h"
#include "xfraud/sample/sampler.h"

namespace xfraud::explain {

/// Hyperparameters of the extended GNNExplainer (paper Appendix D):
/// epochs=100, lr=0.01, β_edge_size=0.005, β_edge_entropy=1,
/// β_node_feature_size=1, β_node_feature_entropy=0.1.
struct GnnExplainerOptions {
  int epochs = 100;
  float lr = 0.01f;
  float beta_edge_size = 0.005f;
  float beta_edge_entropy = 1.0f;
  float beta_node_feature_size = 1.0f;
  float beta_node_feature_entropy = 0.1f;
  uint64_t seed = 17;
};

/// The learned explanation for one node-to-explain.
struct Explanation {
  /// Sigmoid edge-mask value per *directed* edge of the community subgraph.
  std::vector<double> edge_mask;
  /// Per-undirected-edge weights: max of the two directions (footnote 4).
  std::vector<double> undirected_edge_weights;
  /// The undirected edges the weights refer to.
  std::vector<graph::UndirectedEdge> undirected_edges;
  /// Node-feature mask [N, F] (sigmoid values) — the extension over the
  /// vanilla GNNExplainer: feature importance for ALL community nodes.
  nn::Tensor node_feature_mask;
  /// The label the detector predicts for the seed (the explanation target).
  int predicted_label = 0;
  double final_loss = 0.0;
};

/// The task-aware half of the xFraud explainer (paper §3.4, Appendix D):
/// a reimplementation of GNNExplainer extended with an all-nodes feature
/// mask. It freezes the trained detector (evaluation mode), attaches a
/// random-initialized edge mask M_E = σ(E_S) and feature mask M_V = σ(V_S),
/// and minimizes
///
///   CE(detector(masked graph), predicted label)          (eq. 11)
///   + β_es Σ M_E + β_ee mean-entropy(M_E)                (eq. 12)
///   + β_nfs mean(M_V) + β_nfe mean-entropy(M_V)          (eq. 13)
///
/// by gradient descent on the masks only. High edge-mask values mark the
/// edges whose messages the prediction depends on.
class GnnExplainer {
 public:
  GnnExplainer(const core::GnnModel* model, GnnExplainerOptions options);

  /// Explains the first target of `batch` (the community seed).
  Explanation Explain(const sample::MiniBatch& batch);

 private:
  const core::GnnModel* model_;
  GnnExplainerOptions options_;
  xfraud::Rng rng_;
};

}  // namespace xfraud::explain

#endif  // XFRAUD_EXPLAIN_GNN_EXPLAINER_H_
