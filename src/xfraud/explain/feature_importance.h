#ifndef XFRAUD_EXPLAIN_FEATURE_IMPORTANCE_H_
#define XFRAUD_EXPLAIN_FEATURE_IMPORTANCE_H_

#include <string>
#include <vector>

#include "xfraud/explain/gnn_explainer.h"

namespace xfraud::explain {

/// Per-dimension importance extracted from the explainer's node-feature
/// masks. The extension over the vanilla GNNExplainer (paper Appendix D) is
/// that masks exist for ALL community nodes, so importance can be reported
/// for the seed alone, averaged over the community's transactions, or
/// contrasted between the two (dimensions the seed relies on unusually
/// heavily are investigation leads for the BU).
struct FeatureImportance {
  /// Mask values of the seed transaction, one per feature dimension.
  std::vector<double> seed;
  /// Mean mask over all transaction nodes of the community.
  std::vector<double> community_mean;
  /// seed - community_mean: positive = dimension matters more for the seed.
  std::vector<double> seed_excess;
};

/// Computes the three views from one explanation + its batch.
FeatureImportance ComputeFeatureImportance(const Explanation& explanation,
                                           const sample::MiniBatch& batch);

/// Indices of the `k` largest values (no tie randomization; stable order).
std::vector<int> TopDimensions(const std::vector<double>& importance, int k);

/// Human-readable report of the top-k dimensions of each view.
std::string RenderFeatureImportance(const FeatureImportance& importance,
                                    int top_k = 5);

}  // namespace xfraud::explain

#endif  // XFRAUD_EXPLAIN_FEATURE_IMPORTANCE_H_
