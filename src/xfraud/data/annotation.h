#ifndef XFRAUD_DATA_ANNOTATION_H_
#define XFRAUD_DATA_ANNOTATION_H_

#include <vector>

#include "xfraud/common/rng.h"
#include "xfraud/graph/hetero_graph.h"
#include "xfraud/graph/subgraph.h"

namespace xfraud::data {

/// Simulated stand-in for the paper's five expert annotators (Appendix E):
/// each annotator assigns every community node an importance score in
/// {0, 1, 2} for how much it matters to the seed prediction.
///
/// The annotators read a latent ground-truth importance that mixes
///  (a) topology: how structurally central the node is in the community, and
///  (b) task signal: how strongly the node touches fraudulent transactions.
/// The mix is exactly the trade-off the paper observes between centrality
/// measures (topology-aware) and GNNExplainer (task-aware), which the hybrid
/// explainer exploits (§3.4). Per-annotator bias and noise are calibrated so
/// the inter-annotator agreement lands near the paper's reported κ ≈ 0.53,
/// with random annotators near 0.
class AnnotationSimulator {
 public:
  struct Options {
    int num_annotators = 5;
    double topology_weight = 0.5;  // weight of (a)
    double task_weight = 0.5;      // weight of (b)
    double annotator_bias_std = 0.15;
    double annotator_noise_std = 0.22;
    uint64_t seed = 7;
  };

  explicit AnnotationSimulator(Options options);

  /// Per-annotator scores: result[a][local_node] in {0,1,2}.
  std::vector<std::vector<int>> Annotate(const graph::HeteroGraph& g,
                                         const graph::Subgraph& community);

  /// Mean across annotators -> node importance in [0,2] (Appendix E).
  static std::vector<double> NodeImportance(
      const std::vector<std::vector<int>>& annotations);

  /// Uniform random annotations over {0,1,2} (the paper's IAA control).
  std::vector<std::vector<int>> AnnotateRandom(int64_t num_nodes);

 private:
  Options options_;
  xfraud::Rng rng_;
};

/// Aggregation of node importance into edge importance (Appendix E): the
/// paper evaluates averaging, summing and taking the minimum of the two
/// endpoint scores and finds no substantial difference.
enum class EdgeAggregation { kAvg, kSum, kMin };

/// Edge importance scores for the undirected edges of a community.
std::vector<double> EdgeImportanceFromNodes(
    const std::vector<double>& node_importance,
    const std::vector<graph::UndirectedEdge>& edges, EdgeAggregation agg);

/// Unweighted Cohen's kappa between two categorical annotation vectors.
double CohensKappa(const std::vector<int>& a, const std::vector<int>& b,
                   int num_categories = 3);

/// Mean pairwise Cohen's kappa across all annotator pairs.
double MeanPairwiseKappa(const std::vector<std::vector<int>>& annotations,
                         int num_categories = 3);

}  // namespace xfraud::data

#endif  // XFRAUD_DATA_ANNOTATION_H_
