#include "xfraud/data/prefilter.h"

#include <algorithm>
#include <cstdio>

#include "xfraud/common/logging.h"

namespace xfraud::data {

std::string Rule::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "feature[%d] %s %.3f (p=%.2f r=%.2f)", dim,
                greater ? ">=" : "<=", threshold, precision, recall);
  return buf;
}

RuleFilter RuleFilter::Fit(
    const std::vector<graph::TransactionRecord>& records,
    const Options& options) {
  RuleFilter filter;
  if (records.empty()) return filter;
  int64_t dims = static_cast<int64_t>(records[0].features.size());
  int64_t total_fraud = 0;
  for (const auto& r : records) {
    total_fraud += r.label == graph::kLabelFraud;
  }
  if (total_fraud == 0) return filter;
  double base_rate = static_cast<double>(total_fraud) / records.size();
  double precision_floor =
      std::max(options.min_precision, options.min_lift * base_rate);

  // `covered` marks frauds already caught by accepted rules, so each new
  // rule is scored by the *additional* fraud it recovers (greedy set cover).
  std::vector<char> covered(records.size(), 0);

  for (int round = 0; round < options.max_rules; ++round) {
    Rule best;
    double best_gain = 0.0;
    for (int64_t dim = 0; dim < dims; ++dim) {
      // Candidate thresholds: uniform quantiles plus geometric tail
      // quantiles — fraud is rare, so the informative thresholds often sit
      // in the extreme tails a uniform grid never reaches.
      std::vector<float> values;
      values.reserve(records.size());
      for (const auto& r : records) values.push_back(r.features[dim]);
      std::sort(values.begin(), values.end());
      std::vector<float> thresholds;
      for (int q = 1; q < options.quantiles; ++q) {
        thresholds.push_back(values[values.size() * q / options.quantiles]);
      }
      for (size_t tail = 1; tail < values.size(); tail *= 2) {
        thresholds.push_back(values[values.size() - tail]);  // upper tail
        thresholds.push_back(values[tail - 1]);              // lower tail
      }
      std::sort(thresholds.begin(), thresholds.end());
      thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                       thresholds.end());
      for (float threshold : thresholds) {
        for (bool greater : {true, false}) {
          Rule rule;
          rule.dim = static_cast<int>(dim);
          rule.threshold = threshold;
          rule.greater = greater;
          int64_t fires = 0, hits = 0, new_hits = 0;
          for (size_t i = 0; i < records.size(); ++i) {
            if (!rule.Fires(records[i].features)) continue;
            ++fires;
            if (records[i].label == graph::kLabelFraud) {
              ++hits;
              new_hits += covered[i] ? 0 : 1;
            }
          }
          if (fires == 0) continue;
          double precision = static_cast<double>(hits) / fires;
          if (precision < precision_floor) continue;
          // Gain: newly covered fraud, slightly preferring tighter rules.
          double gain = new_hits * precision;
          if (gain > best_gain) {
            best_gain = gain;
            best = rule;
            best.precision = precision;
            best.recall = static_cast<double>(hits) / total_fraud;
          }
        }
      }
    }
    if (best_gain <= 0.0) break;
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i].label == graph::kLabelFraud &&
          best.Fires(records[i].features)) {
        covered[i] = 1;
      }
    }
    filter.rules_.push_back(best);
  }
  return filter;
}

bool RuleFilter::Keep(const graph::TransactionRecord& record) const {
  for (const auto& rule : rules_) {
    if (rule.Fires(record.features)) return true;
  }
  return false;
}

PipelineResult RunLabelPipeline(
    const std::vector<graph::TransactionRecord>& stream,
    const RuleFilter& filter, double benign_keep_fraction, xfraud::Rng* rng) {
  XF_CHECK(rng != nullptr);
  PipelineResult result;
  result.benign_keep_fraction = benign_keep_fraction;

  auto stage_of = [](const std::string& name,
                     const std::vector<graph::TransactionRecord>& records) {
    PipelineStage stage;
    stage.name = name;
    stage.transactions = static_cast<int64_t>(records.size());
    for (const auto& r : records) {
      stage.frauds += r.label == graph::kLabelFraud;
    }
    stage.fraud_rate = stage.transactions > 0
                           ? static_cast<double>(stage.frauds) /
                                 stage.transactions
                           : 0.0;
    return stage;
  };

  result.stages.push_back(stage_of("(1) raw stream", stream));

  std::vector<graph::TransactionRecord> filtered;
  for (const auto& r : stream) {
    if (filter.Keep(r)) filtered.push_back(r);
  }
  result.stages.push_back(stage_of("(2) after rule filter", filtered));

  for (auto& r : filtered) {
    bool keep_label = r.label == graph::kLabelFraud ||
                      rng->NextBernoulli(benign_keep_fraction);
    if (keep_label) {
      result.sampled.push_back(r);
    } else {
      r.label = graph::kLabelUnknown;
    }
    result.graph_records.push_back(std::move(r));
  }
  result.stages.push_back(stage_of("(3) frauds + sampled benign",
                                   result.sampled));
  return result;
}

}  // namespace xfraud::data
