#include "xfraud/data/annotation.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "xfraud/common/logging.h"

namespace xfraud::data {

using graph::Subgraph;
using graph::UndirectedEdge;

AnnotationSimulator::AnnotationSimulator(Options options)
    : options_(options), rng_(options.seed) {}

std::vector<std::vector<int>> AnnotationSimulator::Annotate(
    const graph::HeteroGraph& g, const Subgraph& community) {
  int64_t n = community.num_nodes();

  // Topology component: how much of the community's risk can only reach the
  // seed *through* this node. The annotation protocol (Appendix E) asks how
  // important a node is "when the seed node prediction is made", i.e. its
  // role on propagation paths toward the seed — computed here as the
  // single-source Brandes dependency of the seed, expressed as a percentile
  // rank for spread. This is what makes human judgment resemble (but not
  // equal) betweenness-style measures, the agreement §5.1 quantifies.
  auto undirected = UndirectedEdges(community);
  std::vector<std::vector<int32_t>> adj(n);
  for (const auto& e : undirected) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<double> dependency(n, 0.0);
  {
    int32_t seed = community.seed_local >= 0 ? community.seed_local : 0;
    std::vector<int> dist(n, -1);
    std::vector<double> sigma(n, 0.0);
    std::vector<std::vector<int32_t>> preds(n);
    std::vector<int32_t> order_bfs;
    std::deque<int32_t> queue = {seed};
    dist[seed] = 0;
    sigma[seed] = 1.0;
    while (!queue.empty()) {
      int32_t v = queue.front();
      queue.pop_front();
      order_bfs.push_back(v);
      for (int32_t u : adj[v]) {
        if (dist[u] < 0) {
          dist[u] = dist[v] + 1;
          queue.push_back(u);
        }
        if (dist[u] == dist[v] + 1) {
          sigma[u] += sigma[v];
          preds[u].push_back(v);
        }
      }
    }
    for (auto it = order_bfs.rbegin(); it != order_bfs.rend(); ++it) {
      int32_t w = *it;
      for (int32_t p : preds[w]) {
        dependency[p] += sigma[p] / sigma[w] * (1.0 + dependency[w]);
      }
    }
    dependency[seed] = *std::max_element(dependency.begin(),
                                         dependency.end());
  }
  std::vector<double> topo(n, 0.0);
  {
    std::vector<int> order(n);
    for (int64_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return dependency[a] < dependency[b];
    });
    // Midrank percentile: ties share the average rank.
    int64_t i = 0;
    while (i < n) {
      int64_t j = i;
      while (j + 1 < n &&
             dependency[order[j + 1]] == dependency[order[i]]) {
        ++j;
      }
      double pct = n > 1 ? 0.5 * (i + j) / static_cast<double>(n - 1) : 0.0;
      for (int64_t k = i; k <= j; ++k) topo[order[k]] = pct;
      i = j + 1;
    }
  }

  // Fraud adjacency (task component): the fraction of a node's incident
  // transactions (including itself) that are fraudulent.
  std::vector<double> fraud_adj(n, 0.0);
  std::vector<double> txn_count(n, 0.0);
  auto consider = [&](int32_t local, int32_t global) {
    if (g.node_type(global) != graph::NodeType::kTxn) return;
    if (g.label(global) == graph::kLabelUnknown) return;
    txn_count[local] += 1.0;
    fraud_adj[local] += g.label(global) == graph::kLabelFraud ? 1.0 : 0.0;
  };
  for (int64_t v = 0; v < n; ++v) consider(static_cast<int32_t>(v),
                                           community.nodes[v]);
  for (const auto& e : undirected) {
    consider(e.u, community.nodes[e.v]);
    consider(e.v, community.nodes[e.u]);
  }
  for (int64_t v = 0; v < n; ++v) {
    if (txn_count[v] > 0) fraud_adj[v] /= txn_count[v];
  }

  // Latent ground truth in [0, 1].
  std::vector<double> truth(n);
  for (int64_t v = 0; v < n; ++v) {
    truth[v] = options_.topology_weight * topo[v] +
               options_.task_weight * fraud_adj[v];
  }

  std::vector<std::vector<int>> annotations(options_.num_annotators);
  for (int a = 0; a < options_.num_annotators; ++a) {
    double bias = options_.annotator_bias_std * rng_.NextGaussian();
    annotations[a].resize(n);
    for (int64_t v = 0; v < n; ++v) {
      // Gain/offset spread the latent truth across the three categories
      // (plain 2*truth concentrates nearly everything on "1", which both
      // deflates the inter-annotator kappa and erases the ranking the
      // hit-rate metric needs).
      double reading = 2.6 * truth[v] - 0.3 + bias +
                       options_.annotator_noise_std * rng_.NextGaussian();
      int score = static_cast<int>(std::lround(reading));
      annotations[a][v] = std::clamp(score, 0, 2);
    }
  }
  return annotations;
}

std::vector<std::vector<int>> AnnotationSimulator::AnnotateRandom(
    int64_t num_nodes) {
  std::vector<std::vector<int>> annotations(options_.num_annotators);
  for (auto& row : annotations) {
    row.resize(num_nodes);
    for (auto& v : row) v = static_cast<int>(rng_.NextBounded(3));
  }
  return annotations;
}

std::vector<double> AnnotationSimulator::NodeImportance(
    const std::vector<std::vector<int>>& annotations) {
  XF_CHECK(!annotations.empty());
  size_t n = annotations[0].size();
  std::vector<double> mean(n, 0.0);
  for (const auto& row : annotations) {
    XF_CHECK_EQ(row.size(), n);
    for (size_t v = 0; v < n; ++v) mean[v] += row[v];
  }
  for (auto& m : mean) m /= static_cast<double>(annotations.size());
  return mean;
}

std::vector<double> EdgeImportanceFromNodes(
    const std::vector<double>& node_importance,
    const std::vector<UndirectedEdge>& edges, EdgeAggregation agg) {
  std::vector<double> out(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    double a = node_importance[edges[e].u];
    double b = node_importance[edges[e].v];
    switch (agg) {
      case EdgeAggregation::kAvg:
        out[e] = 0.5 * (a + b);
        break;
      case EdgeAggregation::kSum:
        out[e] = a + b;
        break;
      case EdgeAggregation::kMin:
        out[e] = std::min(a, b);
        break;
    }
  }
  return out;
}

double CohensKappa(const std::vector<int>& a, const std::vector<int>& b,
                   int num_categories) {
  XF_CHECK_EQ(a.size(), b.size());
  XF_CHECK(!a.empty());
  double n = static_cast<double>(a.size());
  std::vector<double> pa(num_categories, 0.0), pb(num_categories, 0.0);
  double agree = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    XF_CHECK_LT(a[i], num_categories);
    XF_CHECK_LT(b[i], num_categories);
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
    agree += a[i] == b[i] ? 1.0 : 0.0;
  }
  double po = agree / n;
  double pe = 0.0;
  for (int c = 0; c < num_categories; ++c) pe += (pa[c] / n) * (pb[c] / n);
  if (std::fabs(1.0 - pe) < 1e-12) return 1.0;  // degenerate: total agreement
  return (po - pe) / (1.0 - pe);
}

double MeanPairwiseKappa(const std::vector<std::vector<int>>& annotations,
                         int num_categories) {
  double total = 0.0;
  int pairs = 0;
  for (size_t i = 0; i < annotations.size(); ++i) {
    for (size_t j = i + 1; j < annotations.size(); ++j) {
      total += CohensKappa(annotations[i], annotations[j], num_categories);
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / pairs;
}

}  // namespace xfraud::data
