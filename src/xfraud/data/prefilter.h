#ifndef XFRAUD_DATA_PREFILTER_H_
#define XFRAUD_DATA_PREFILTER_H_

#include <string>
#include <vector>

#include "xfraud/common/rng.h"
#include "xfraud/graph/graph_builder.h"

namespace xfraud::data {

/// A single interpretable rule: fires when feature[dim] >= threshold
/// (or <= when `greater` is false). The BU's production pre-filter is a
/// rule-mining system (skope-rules, paper footnote 6); this module plays
/// that role in the reproduction's label pipeline.
struct Rule {
  int dim = 0;
  float threshold = 0.0f;
  bool greater = true;
  /// Training-set precision/recall of this rule alone (diagnostics).
  double precision = 0.0;
  double recall = 0.0;

  bool Fires(const std::vector<float>& features) const {
    float v = features[dim];
    return greater ? v >= threshold : v <= threshold;
  }

  std::string ToString() const;
};

/// Greedy rule miner over single-feature threshold rules ("decision
/// stumps"), in the spirit of skope-rules: candidate thresholds are feature
/// quantiles; rules must reach `min_precision` on the training records; the
/// filter keeps a transaction when ANY rule fires (union of rules = the
/// "suspicious" stream that survives pre-filtering).
class RuleFilter {
 public:
  struct Options {
    int max_rules = 8;
    /// A rule is accepted when its precision reaches
    /// max(min_precision, min_lift * base_fraud_rate): on realistic streams
    /// the base rate is a fraction of a percent, so the lift criterion is
    /// the binding one (a pre-filter concentrates fraud, it does not need
    /// to be precise in absolute terms).
    double min_precision = 0.0;
    double min_lift = 3.0;
    int quantiles = 16;
  };

  /// Mines rules from labeled records.
  static RuleFilter Fit(const std::vector<graph::TransactionRecord>& records,
                        const Options& options);

  /// True when any mined rule fires — the transaction stays in the stream.
  bool Keep(const graph::TransactionRecord& record) const;

  const std::vector<Rule>& rules() const { return rules_; }

 private:
  std::vector<Rule> rules_;
};

/// Statistics of one stage of the Appendix B label pipeline.
struct PipelineStage {
  std::string name;
  int64_t transactions = 0;
  int64_t frauds = 0;
  double fraud_rate = 0.0;
};

/// The paper's three-step labeling pipeline (Appendix B / H.4):
///   (1) the raw stream (fraud rate ~0.016% at eBay),
///   (2) rule-based pre-filtering that discards obviously low-risk benign
///       traffic while keeping (nearly) all fraud (-> 0.043%),
///   (3) keep all frauds + `benign_keep_fraction` of benign for training
///       labels (-> 4.33%).
/// Returns per-stage statistics and the surviving record set of stage 3.
struct PipelineResult {
  std::vector<PipelineStage> stages;
  /// Stage-3 labeled records (all frauds + the benign sample).
  std::vector<graph::TransactionRecord> sampled;
  /// Every stage-2 record, with labels blanked (kLabelUnknown) on the
  /// transactions that were NOT sampled: "the other transactions are still
  /// in the graph, but without supervised labels" (Appendix B). Build the
  /// training graph from these.
  std::vector<graph::TransactionRecord> graph_records;
  /// The keep fraction actually applied at stage (3).
  double benign_keep_fraction = 0.0;
};

PipelineResult RunLabelPipeline(
    const std::vector<graph::TransactionRecord>& stream,
    const RuleFilter& filter, double benign_keep_fraction, xfraud::Rng* rng);

}  // namespace xfraud::data

#endif  // XFRAUD_DATA_PREFILTER_H_
