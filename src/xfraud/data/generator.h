#ifndef XFRAUD_DATA_GENERATOR_H_
#define XFRAUD_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xfraud/common/rng.h"
#include "xfraud/graph/graph_builder.h"
#include "xfraud/graph/hetero_graph.h"

namespace xfraud::data {

/// Configuration of the synthetic e-commerce workload that stands in for the
/// proprietary eBay transaction logs (see DESIGN.md §1). The generator
/// reproduces the *structural* fraud patterns the paper describes:
///
///  - a benign long tail of buyers with their own email/payment/address,
///  - fraud rings sharing stolen payment tokens and drop addresses, with a
///    fraction of camouflage (legit-looking) transactions (§5.2, App. G),
///  - stolen-card events: a legitimate buyer's token reused by fraudsters,
///    so a benign account carries fraudulent transactions (§1, §3.2.1),
///  - shared warehouse addresses linked to mixed benign/fraud traffic
///    (the Figure 11 true-positive pattern),
///  - guest checkouts with no buyer account (§3.2.1).
struct GeneratorConfig {
  /// Size knobs.
  int64_t num_buyers = 2000;
  double txns_per_buyer_mean = 2.5;
  int num_fraud_rings = 25;
  int ring_buyers_min = 1, ring_buyers_max = 4;
  int ring_txns_min = 6, ring_txns_max = 18;
  int num_stolen_cards = 60;
  int num_warehouses = 6;

  /// Behaviour knobs.
  double camouflage_rate = 0.15;       // legit txns inside fraud rings
  double warehouse_use_rate = 0.03;    // benign txns shipping to a warehouse
  double guest_checkout_rate = 0.04;   // txns without a buyer account
  double second_entity_rate = 0.25;    // buyers owning a 2nd pmt/addr

  /// Number of time periods ("months") the log spans; ring attacks burst
  /// within a random 1-2 period window, stolen-card events land in a random
  /// period, benign traffic spreads uniformly (Appendix H.5 protocols).
  int num_periods = 1;

  /// Feature model: class-conditional signal embedded in a random subspace.
  int feature_dim = 64;
  double feature_signal = 1.0;  // mean separation of the risk dimensions
  double feature_noise = 1.0;   // iid noise stddev on all dimensions

  uint64_t seed = 42;
};

/// A generated workload plus its train/val/test split over labeled
/// transaction node ids.
struct SimDataset {
  std::string name;
  graph::HeteroGraph graph;
  std::vector<int32_t> train_nodes;
  std::vector<int32_t> val_nodes;
  std::vector<int32_t> test_nodes;
};

/// Generates synthetic transaction logs and packages them into datasets.
class TransactionGenerator {
 public:
  explicit TransactionGenerator(GeneratorConfig config);

  /// Produces the full transaction log (shuffled).
  std::vector<graph::TransactionRecord> GenerateRecords();

  /// Builds the graph and a (train, val, test) split of labeled txn nodes.
  static SimDataset BuildDataset(
      const std::vector<graph::TransactionRecord>& records,
      const std::string& name, double train_frac, double val_frac,
      uint64_t split_seed);

  /// One-call convenience: generate + build with a 70/10/20 split.
  static SimDataset Make(const GeneratorConfig& config,
                         const std::string& name);

  /// Scaled-down analogues of the paper's three datasets (Table 2).
  /// Proportions (node-type mix, sparsity, fraud rate) follow the paper;
  /// absolute sizes are laptop-scale (documented in DESIGN.md).
  static GeneratorConfig SimSmall();   // ~6K txns, 64-d features
  static GeneratorConfig SimLarge();   // ~20K txns, 128-d features
  static GeneratorConfig SimXLarge();  // ~60K txns, 128-d features

 private:
  /// Draws a feature vector whose risk subspace reflects `fraud`.
  std::vector<float> MakeFeatures(bool fraud);

  GeneratorConfig config_;
  xfraud::Rng rng_;
  std::vector<double> risk_directions_;  // per-dim weight of the risk signal
  int64_t next_txn_ = 0;
};

}  // namespace xfraud::data

#endif  // XFRAUD_DATA_GENERATOR_H_
