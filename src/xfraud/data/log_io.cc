#include "xfraud/data/log_io.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "xfraud/common/atomic_file.h"

namespace xfraud::data {

namespace {

constexpr char kHeader[] =
    "txn_id\tbuyer_id\temail\tpayment_token\tshipping_address\tlabel\t"
    "period\tfeatures";

const char* LabelName(int8_t label) {
  switch (label) {
    case graph::kLabelFraud:
      return "fraud";
    case graph::kLabelBenign:
      return "benign";
    default:
      return "unknown";
  }
}

Result<int8_t> ParseLabel(const std::string& text) {
  if (text == "fraud") return graph::kLabelFraud;
  if (text == "benign") return graph::kLabelBenign;
  if (text == "unknown") return graph::kLabelUnknown;
  return Status::InvalidArgument("bad label: " + text);
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

}  // namespace

Status WriteTransactionLog(
    const std::vector<graph::TransactionRecord>& records,
    const std::string& path) {
  std::ostringstream out;
  out << kHeader << "\n";
  for (const auto& r : records) {
    out << r.txn_id << '\t' << r.buyer_id << '\t' << r.email << '\t'
        << r.payment_token << '\t' << r.shipping_address << '\t'
        << LabelName(r.label) << '\t' << r.period << '\t';
    for (size_t i = 0; i < r.features.size(); ++i) {
      if (i > 0) out << ',';
      out << r.features[i];
    }
    out << '\n';
  }
  return AtomicWriteFile(path, out.str());
}

Result<std::vector<graph::TransactionRecord>> ReadTransactionLog(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing or bad header in " + path);
  }
  std::vector<graph::TransactionRecord> records;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = SplitTabs(line);
    if (fields.size() != 8) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 8 fields, got " +
                                     std::to_string(fields.size()));
    }
    graph::TransactionRecord r;
    r.txn_id = fields[0];
    r.buyer_id = fields[1];
    r.email = fields[2];
    r.payment_token = fields[3];
    r.shipping_address = fields[4];
    Result<int8_t> label = ParseLabel(fields[5]);
    if (!label.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + label.status().message());
    }
    r.label = label.value();
    try {
      r.period = std::stoi(fields[6]);
    } catch (...) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad period " + fields[6]);
    }
    std::stringstream feats(fields[7]);
    std::string token;
    while (std::getline(feats, token, ',')) {
      try {
        r.features.push_back(std::stof(token));
      } catch (...) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad feature " + token);
      }
    }
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace xfraud::data
