#ifndef XFRAUD_DATA_LOG_IO_H_
#define XFRAUD_DATA_LOG_IO_H_

#include <string>
#include <vector>

#include "xfraud/common/status.h"
#include "xfraud/graph/graph_builder.h"

namespace xfraud::data {

/// Tab-separated transaction-log import/export, so externally produced logs
/// can be fed into the graph constructor (paper Fig. 2's ingestion path).
///
/// Format (one transaction per line, header row required):
///   txn_id \t buyer_id \t email \t payment_token \t shipping_address
///   \t label \t period \t f0,f1,...,f{D-1}
/// label is "fraud", "benign" or "unknown"; features are comma-separated
/// floats. Empty entity fields denote absent linkages (guest checkout etc.).
Status WriteTransactionLog(
    const std::vector<graph::TransactionRecord>& records,
    const std::string& path);

/// Parses a log written by WriteTransactionLog (or produced externally in
/// the same format). Malformed lines yield InvalidArgument with the line
/// number in the message.
Result<std::vector<graph::TransactionRecord>> ReadTransactionLog(
    const std::string& path);

}  // namespace xfraud::data

#endif  // XFRAUD_DATA_LOG_IO_H_
