#include "xfraud/data/generator.h"

#include <algorithm>
#include <cmath>

#include "xfraud/common/logging.h"

namespace xfraud::data {

using graph::TransactionRecord;

TransactionGenerator::TransactionGenerator(GeneratorConfig config)
    : config_(config), rng_(config.seed) {
  // A random quarter of the feature dimensions carry the risk signal the
  // paper's "company risk identifier" would provide; weights are fixed per
  // generator so the signal is consistent across all transactions.
  risk_directions_.assign(config_.feature_dim, 0.0);
  int signal_dims = std::max(1, config_.feature_dim / 4);
  for (int i = 0; i < signal_dims; ++i) {
    risk_directions_[i] = rng_.NextUniform(0.3, 1.0);
  }
  // Shuffle so the signal subspace is not the leading dims.
  rng_.Shuffle(&risk_directions_);
}

std::vector<float> TransactionGenerator::MakeFeatures(bool fraud) {
  // Latent risk score: overlapping class-conditional Gaussians. Overlap is
  // what keeps feature-only classification imperfect, leaving headroom for
  // the graph structure to matter.
  double risk = fraud ? 1.0 + 0.5 * rng_.NextGaussian()
                      : 0.5 * rng_.NextGaussian();
  std::vector<float> f(config_.feature_dim);
  for (int i = 0; i < config_.feature_dim; ++i) {
    double v = risk_directions_[i] * config_.feature_signal * risk +
               config_.feature_noise * rng_.NextGaussian();
    f[i] = static_cast<float>(v);
  }
  return f;
}

std::vector<TransactionRecord> TransactionGenerator::GenerateRecords() {
  std::vector<TransactionRecord> records;
  auto txn_id = [this] { return "t" + std::to_string(next_txn_++); };
  auto uniform_period = [this] {
    return static_cast<int32_t>(
        rng_.NextBounded(std::max(1, config_.num_periods)));
  };

  // Shared warehouse addresses: heavily reused, mixed-label linkage points.
  std::vector<std::string> warehouses;
  for (int w = 0; w < config_.num_warehouses; ++w) {
    warehouses.push_back("addr_warehouse" + std::to_string(w));
  }
  auto warehouse = [&] {
    return warehouses[rng_.NextBounded(warehouses.size())];
  };

  // ---- 1. Benign buyer population -------------------------------------
  struct BuyerProfile {
    std::string id, email;
    std::vector<std::string> pmts, addrs;
  };
  std::vector<BuyerProfile> buyers(config_.num_buyers);
  for (int64_t b = 0; b < config_.num_buyers; ++b) {
    BuyerProfile& profile = buyers[b];
    profile.id = "buyer" + std::to_string(b);
    profile.email = "email" + std::to_string(b);
    profile.pmts = {"pmt" + std::to_string(b) + "a"};
    if (rng_.NextBernoulli(config_.second_entity_rate)) {
      profile.pmts.push_back("pmt" + std::to_string(b) + "b");
    }
    profile.addrs = {"addr" + std::to_string(b) + "a"};
    if (rng_.NextBernoulli(config_.second_entity_rate)) {
      profile.addrs.push_back("addr" + std::to_string(b) + "b");
    }

    // Geometric-ish transaction count with the configured mean.
    int n_txn = 1;
    while (rng_.NextDouble() < 1.0 - 1.0 / config_.txns_per_buyer_mean) {
      ++n_txn;
    }
    for (int t = 0; t < n_txn; ++t) {
      TransactionRecord r;
      r.txn_id = txn_id();
      r.label = graph::kLabelBenign;
      bool guest = rng_.NextBernoulli(config_.guest_checkout_rate);
      r.buyer_id = guest ? "" : profile.id;
      r.email = profile.email;
      r.payment_token = profile.pmts[rng_.NextBounded(profile.pmts.size())];
      r.shipping_address =
          rng_.NextBernoulli(config_.warehouse_use_rate)
              ? warehouse()
              : profile.addrs[rng_.NextBounded(profile.addrs.size())];
      r.period = uniform_period();
      r.features = MakeFeatures(false);
      records.push_back(std::move(r));
    }
  }

  // ---- 2. Fraud rings ---------------------------------------------------
  for (int ring = 0; ring < config_.num_fraud_rings; ++ring) {
    int n_members = static_cast<int>(
        rng_.NextInt(config_.ring_buyers_min, config_.ring_buyers_max));
    std::vector<std::string> members;
    for (int m = 0; m < n_members; ++m) {
      members.push_back("fraudster" + std::to_string(ring) + "_" +
                        std::to_string(m));
    }
    // The ring's shared instruments: stolen tokens + a drop address.
    int n_tokens = static_cast<int>(rng_.NextInt(2, 4));
    std::vector<std::string> tokens;
    for (int p = 0; p < n_tokens; ++p) {
      tokens.push_back("pmt_stolen" + std::to_string(ring) + "_" +
                       std::to_string(p));
    }
    std::string drop_addr = rng_.NextBernoulli(0.5)
                                ? warehouse()
                                : "addr_drop" + std::to_string(ring);
    int n_txns = static_cast<int>(
        rng_.NextInt(config_.ring_txns_min, config_.ring_txns_max));
    // Ring attacks burst: all of the ring's transactions land within a
    // 1-2 period window (defaulters "cultivate then strike", App. H.5).
    int32_t ring_start = uniform_period();
    for (int t = 0; t < n_txns; ++t) {
      TransactionRecord r;
      r.txn_id = txn_id();
      r.period = std::min<int32_t>(
          ring_start + static_cast<int32_t>(rng_.NextBounded(2)),
          std::max(1, config_.num_periods) - 1);
      // Camouflage transactions "cultivate" the accounts (paper App. G).
      bool camo = rng_.NextBernoulli(config_.camouflage_rate);
      r.label = camo ? graph::kLabelBenign : graph::kLabelFraud;
      const std::string& member = members[rng_.NextBounded(members.size())];
      bool guest = rng_.NextBernoulli(config_.guest_checkout_rate * 2);
      r.buyer_id = guest ? "" : member;
      r.email = "email_" + member;
      r.payment_token = tokens[rng_.NextBounded(tokens.size())];
      r.shipping_address = drop_addr;
      r.features = MakeFeatures(r.label == graph::kLabelFraud);
      records.push_back(std::move(r));
    }
  }

  // ---- 3. Stolen-card events ---------------------------------------------
  // A legitimate buyer's token is reused by an attacker: the benign account
  // stays benign but its payment token becomes linked to fraud, which is why
  // xFraud flags *transactions*, not accounts (§3.2.1 vs GEM).
  for (int s = 0; s < config_.num_stolen_cards; ++s) {
    const BuyerProfile& victim = buyers[rng_.NextBounded(buyers.size())];
    const std::string& token =
        victim.pmts[rng_.NextBounded(victim.pmts.size())];
    int n_txns = static_cast<int>(rng_.NextInt(1, 4));
    std::string attacker_email = "email_attacker" + std::to_string(s);
    int32_t attack_period = uniform_period();
    for (int t = 0; t < n_txns; ++t) {
      TransactionRecord r;
      r.txn_id = txn_id();
      r.period = attack_period;
      r.label = graph::kLabelFraud;
      r.buyer_id = "";  // attackers hide behind guest checkout
      r.email = attacker_email;
      r.payment_token = token;
      r.shipping_address = rng_.NextBernoulli(0.6)
                               ? warehouse()
                               : "addr_attacker" + std::to_string(s);
      r.features = MakeFeatures(true);
      records.push_back(std::move(r));
    }
  }

  rng_.Shuffle(&records);
  return records;
}

SimDataset TransactionGenerator::BuildDataset(
    const std::vector<TransactionRecord>& records, const std::string& name,
    double train_frac, double val_frac, uint64_t split_seed) {
  graph::GraphBuilder builder;
  for (const auto& r : records) {
    Status s = builder.AddTransaction(r);
    XF_CHECK(s.ok()) << s.ToString();
  }
  SimDataset ds;
  ds.name = name;
  ds.graph = builder.Build();

  std::vector<int32_t> labeled = ds.graph.LabeledTransactions();
  Rng rng(split_seed);
  rng.Shuffle(&labeled);
  size_t n_train = static_cast<size_t>(labeled.size() * train_frac);
  size_t n_val = static_cast<size_t>(labeled.size() * val_frac);
  ds.train_nodes.assign(labeled.begin(), labeled.begin() + n_train);
  ds.val_nodes.assign(labeled.begin() + n_train,
                      labeled.begin() + n_train + n_val);
  ds.test_nodes.assign(labeled.begin() + n_train + n_val, labeled.end());
  return ds;
}

SimDataset TransactionGenerator::Make(const GeneratorConfig& config,
                                      const std::string& name) {
  TransactionGenerator gen(config);
  return BuildDataset(gen.GenerateRecords(), name, 0.7, 0.1,
                      config.seed ^ 0xD5);
}

GeneratorConfig TransactionGenerator::SimSmall() {
  GeneratorConfig c;
  c.num_buyers = 2000;
  c.num_fraud_rings = 15;
  c.num_stolen_cards = 35;
  c.feature_dim = 64;
  c.seed = 41;
  return c;
}

GeneratorConfig TransactionGenerator::SimLarge() {
  GeneratorConfig c;
  c.num_buyers = 7000;
  c.num_fraud_rings = 55;
  c.num_stolen_cards = 130;
  c.num_warehouses = 12;
  c.feature_dim = 128;
  c.seed = 43;
  return c;
}

GeneratorConfig TransactionGenerator::SimXLarge() {
  GeneratorConfig c;
  c.num_buyers = 20000;
  c.num_fraud_rings = 150;
  c.num_stolen_cards = 370;
  c.num_warehouses = 30;
  c.feature_dim = 128;
  c.seed = 47;
  return c;
}

}  // namespace xfraud::data
