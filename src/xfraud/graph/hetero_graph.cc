#include "xfraud/graph/hetero_graph.h"

#include "xfraud/common/logging.h"

namespace xfraud::graph {

const char* NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kTxn:
      return "txn";
    case NodeType::kPmt:
      return "pmt";
    case NodeType::kEmail:
      return "email";
    case NodeType::kAddr:
      return "addr";
    case NodeType::kBuyer:
      return "buyer";
  }
  return "?";
}

const char* EdgeTypeName(EdgeType type) {
  switch (type) {
    case EdgeType::kTxnToPmt:
      return "txn->pmt";
    case EdgeType::kPmtToTxn:
      return "pmt->txn";
    case EdgeType::kTxnToEmail:
      return "txn->email";
    case EdgeType::kEmailToTxn:
      return "email->txn";
    case EdgeType::kTxnToAddr:
      return "txn->addr";
    case EdgeType::kAddrToTxn:
      return "addr->txn";
    case EdgeType::kTxnToBuyer:
      return "txn->buyer";
    case EdgeType::kBuyerToTxn:
      return "buyer->txn";
  }
  return "?";
}

EdgeType TxnToEntityEdge(NodeType entity) {
  switch (entity) {
    case NodeType::kPmt:
      return EdgeType::kTxnToPmt;
    case NodeType::kEmail:
      return EdgeType::kTxnToEmail;
    case NodeType::kAddr:
      return EdgeType::kTxnToAddr;
    case NodeType::kBuyer:
      return EdgeType::kTxnToBuyer;
    case NodeType::kTxn:
      break;
  }
  XF_CHECK(false) << "txn is not a linking entity";
  return EdgeType::kTxnToPmt;
}

EdgeType EntityToTxnEdge(NodeType entity) {
  switch (entity) {
    case NodeType::kPmt:
      return EdgeType::kPmtToTxn;
    case NodeType::kEmail:
      return EdgeType::kEmailToTxn;
    case NodeType::kAddr:
      return EdgeType::kAddrToTxn;
    case NodeType::kBuyer:
      return EdgeType::kBuyerToTxn;
    case NodeType::kTxn:
      break;
  }
  XF_CHECK(false) << "txn is not a linking entity";
  return EdgeType::kPmtToTxn;
}

HeteroGraph::HeteroGraph(std::vector<NodeType> node_types,
                         std::vector<int64_t> offsets,
                         std::vector<int32_t> neighbors,
                         std::vector<EdgeType> edge_types,
                         nn::Tensor txn_features,
                         std::vector<int32_t> feature_row,
                         std::vector<int8_t> labels)
    : node_types_(std::move(node_types)),
      offsets_(std::move(offsets)),
      neighbors_(std::move(neighbors)),
      edge_types_(std::move(edge_types)),
      txn_features_(std::move(txn_features)),
      feature_row_(std::move(feature_row)),
      labels_(std::move(labels)) {
  XF_CHECK_EQ(offsets_.size(), node_types_.size() + 1);
  XF_CHECK_EQ(neighbors_.size(), edge_types_.size());
  XF_CHECK_EQ(feature_row_.size(), node_types_.size());
  XF_CHECK_EQ(labels_.size(), node_types_.size());
  // CSR contract: offsets bracket the edge array and are monotone, every
  // neighbour id is a valid node, every feature row points into the feature
  // block. A violation here is how a corrupt deserialized graph would
  // otherwise surface as silent out-of-bounds reads deep in the sampler.
  XF_CHECK_EQ(offsets_.front(), 0);
  XF_CHECK_EQ(offsets_.back(), static_cast<int64_t>(neighbors_.size()));
  for (size_t v = 0; v + 1 < offsets_.size(); ++v) {
    XF_CHECK_LE(offsets_[v], offsets_[v + 1]) << "offsets not monotone at " << v;
  }
  for (size_t e = 0; e < neighbors_.size(); ++e) {
    XF_DCHECK_BOUNDS(neighbors_[e], num_nodes()) << "edge " << e;
  }
  for (size_t v = 0; v < feature_row_.size(); ++v) {
    if (feature_row_[v] >= 0) {
      XF_CHECK_LT(feature_row_[v], txn_features_.rows()) << "node " << v;
    }
  }
}

std::vector<int32_t> HeteroGraph::LabeledTransactions() const {
  std::vector<int32_t> out;
  for (int64_t v = 0; v < num_nodes(); ++v) {
    if (node_types_[v] == NodeType::kTxn && labels_[v] != kLabelUnknown) {
      out.push_back(static_cast<int32_t>(v));
    }
  }
  return out;
}

std::vector<int32_t> HeteroGraph::NodesOfType(NodeType type) const {
  std::vector<int32_t> out;
  for (int64_t v = 0; v < num_nodes(); ++v) {
    if (node_types_[v] == type) out.push_back(static_cast<int32_t>(v));
  }
  return out;
}

std::vector<int64_t> HeteroGraph::NodeTypeCounts() const {
  std::vector<int64_t> counts(kNumNodeTypes, 0);
  for (NodeType t : node_types_) ++counts[static_cast<int>(t)];
  return counts;
}

double HeteroGraph::FraudRate() const {
  int64_t labeled = 0;
  int64_t fraud = 0;
  for (int64_t v = 0; v < num_nodes(); ++v) {
    if (node_types_[v] != NodeType::kTxn) continue;
    if (labels_[v] == kLabelUnknown) continue;
    ++labeled;
    fraud += labels_[v] == kLabelFraud;
  }
  return labeled == 0 ? 0.0 : static_cast<double>(fraud) / labeled;
}

double HeteroGraph::AvgDegree() const {
  return num_nodes() == 0
             ? 0.0
             : static_cast<double>(num_edges()) / num_nodes();
}

}  // namespace xfraud::graph
