#include "xfraud/graph/mini_batch.h"

#include <algorithm>
#include <utility>

#include "xfraud/common/check.h"

namespace xfraud::graph {

MiniBatch MakeBatch(const HeteroGraph& g, Subgraph sub,
                    const std::vector<int32_t>& seed_globals) {
  // Subgraph contract: parallel edge arrays agree and the local-id map
  // matches the node list. A sampler that violates these would materialize
  // a batch with silently misaligned messages rather than crash here.
  XF_CHECK_EQ(sub.src.size(), sub.dst.size());
  XF_CHECK_EQ(sub.src.size(), sub.etypes.size());
  XF_CHECK_EQ(sub.nodes.size(), sub.local_of.size());
  MiniBatch batch;
  batch.features = nn::Tensor(sub.num_nodes(), g.feature_dim());
  batch.node_types.resize(sub.num_nodes());
  for (int64_t local = 0; local < sub.num_nodes(); ++local) {
    int32_t global = sub.nodes[local];
    XF_DCHECK_BOUNDS(global, g.num_nodes());
    batch.node_types[local] = static_cast<int32_t>(g.node_type(global));
    if (g.HasFeatures(global)) {
      const float* src = g.Features(global);
      std::copy(src, src + g.feature_dim(), batch.features.Row(local));
    }
  }
  batch.edge_src = sub.src;
  batch.edge_dst = sub.dst;
  batch.edge_types.resize(sub.etypes.size());
  for (size_t e = 0; e < sub.etypes.size(); ++e) {
    batch.edge_types[e] = static_cast<int32_t>(sub.etypes[e]);
  }
  for (int32_t seed : seed_globals) {
    auto it = sub.local_of.find(seed);
    XF_CHECK(it != sub.local_of.end()) << "seed not in subgraph";
    int8_t label = g.label(seed);
    XF_CHECK_NE(label, kLabelUnknown);
    batch.target_locals.push_back(it->second);
    batch.target_labels.push_back(label);
  }
  batch.sub = std::move(sub);
  return batch;
}

}  // namespace xfraud::graph
