#ifndef XFRAUD_GRAPH_MINI_BATCH_H_
#define XFRAUD_GRAPH_MINI_BATCH_H_

#include <cstdint>
#include <vector>

#include "xfraud/graph/hetero_graph.h"
#include "xfraud/graph/subgraph.h"
#include "xfraud/nn/tensor.h"

namespace xfraud::graph {

/// A model-ready mini-batch: a subgraph materialized into tensors.
/// Local node 0..N-1; features are zero-filled for non-transaction nodes
/// (only txn nodes carry input features, paper §3.2.1).
///
/// Lives in graph/ (not sample/) so both producers of batches — the
/// in-memory samplers in sample/ and the KV-backed loader in kv/ — sit
/// *above* the type instead of kv/ reaching sideways into sample/ for it
/// (the layering inversion xfraud_analyze's module DAG forbids).
/// sample::MiniBatch remains as an alias for the established spelling.
struct MiniBatch {
  Subgraph sub;
  nn::Tensor features;                  // [N, F]
  std::vector<int32_t> node_types;      // [N] as ints
  std::vector<int32_t> edge_src;        // [E]
  std::vector<int32_t> edge_dst;        // [E]
  std::vector<int32_t> edge_types;      // [E] as ints
  std::vector<int32_t> target_locals;   // rows to classify
  std::vector<int> target_labels;       // 0/1 per target

  int64_t num_nodes() const { return static_cast<int64_t>(node_types.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edge_src.size()); }
};

/// Materializes a subgraph plus a set of labeled seed transactions into a
/// MiniBatch (the seeds must be members of the subgraph).
MiniBatch MakeBatch(const HeteroGraph& g, Subgraph sub,
                    const std::vector<int32_t>& seed_globals);

}  // namespace xfraud::graph

#endif  // XFRAUD_GRAPH_MINI_BATCH_H_
