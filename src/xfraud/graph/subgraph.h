#ifndef XFRAUD_GRAPH_SUBGRAPH_H_
#define XFRAUD_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "xfraud/common/rng.h"
#include "xfraud/graph/hetero_graph.h"

namespace xfraud::graph {

/// A node-induced subgraph with local ids, used both as the mini-batch
/// carrier for sampled training and as the "community" unit of the explainer
/// evaluation (paper §5.1: a community is the neighbourhood taken around a
/// transaction seed).
struct Subgraph {
  /// Local -> global node id.
  std::vector<int32_t> nodes;
  /// Global -> local node id.
  std::unordered_map<int32_t, int32_t> local_of;
  /// Directed edges in local ids (src sends a message to dst).
  std::vector<int32_t> src;
  std::vector<int32_t> dst;
  std::vector<EdgeType> etypes;
  /// Local id of the seed (when built around one; else -1).
  int32_t seed_local = -1;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(src.size()); }

  /// Local node types resolved against `g`.
  std::vector<NodeType> LocalNodeTypes(const HeteroGraph& g) const;
};

/// Undirected view of a subgraph: each unordered node pair appears once,
/// with the indices of its (up to two) directed edges. The explainer assigns
/// two weights to a bidirectional pair; evaluation takes the larger one
/// (paper footnote 4), which this view makes explicit.
struct UndirectedEdge {
  int32_t u;  // local id, u < v
  int32_t v;
  int32_t directed_a = -1;  // index into Subgraph::src of u->v (or -1)
  int32_t directed_b = -1;  // index of v->u (or -1)
};

std::vector<UndirectedEdge> UndirectedEdges(const Subgraph& sub);

/// Breadth-first k-hop expansion around `seed`. At each hop at most
/// `fanout` neighbours per node are followed (uniformly sampled when the
/// in-neighbourhood is larger; fanout < 0 means unlimited). All edges among
/// collected nodes are induced.
Subgraph KHopSubgraph(const HeteroGraph& g, int32_t seed, int hops,
                      int fanout, xfraud::Rng* rng);

/// The explainer's community: every node connected to `seed` (BFS over the
/// whole weakly-connected component), capped at `max_nodes` nodes.
Subgraph Community(const HeteroGraph& g, int32_t seed, int64_t max_nodes);

/// Materializes the node-induced subgraph over `nodes` as a standalone
/// HeteroGraph (features/labels copied). `local_to_global` receives the node
/// id mapping. Used to give each distributed worker its own partition graph
/// (paper §3.3.1): edges leaving the partition are cut, which is what
/// restrains each worker's field of neighbours (§4.1).
HeteroGraph InducedGraph(const HeteroGraph& g,
                         const std::vector<int32_t>& nodes,
                         std::vector<int32_t>* local_to_global);

/// Adjacency list of the line graph L(G) of the undirected edge set: one
/// vertex per undirected edge, connected when two edges share an endpoint.
/// Used to run node-centrality measures as edge centralities (Appendix F).
std::vector<std::vector<int32_t>> LineGraphAdjacency(
    const std::vector<UndirectedEdge>& edges, int64_t num_nodes);

}  // namespace xfraud::graph

#endif  // XFRAUD_GRAPH_SUBGRAPH_H_
