#include "xfraud/graph/graph_builder.h"

#include <algorithm>

#include "xfraud/common/logging.h"

namespace xfraud::graph {

Status GraphBuilder::AddTransaction(const TransactionRecord& record) {
  if (record.txn_id.empty()) {
    return Status::InvalidArgument("transaction id must be non-empty");
  }
  if (txn_ids_.count(record.txn_id) != 0) {
    return Status::AlreadyExists("duplicate transaction id: " + record.txn_id);
  }
  if (feature_dim_ < 0) {
    feature_dim_ = static_cast<int64_t>(record.features.size());
  } else if (feature_dim_ != static_cast<int64_t>(record.features.size())) {
    return Status::InvalidArgument(
        "inconsistent feature dimension for txn " + record.txn_id);
  }

  int32_t txn = static_cast<int32_t>(node_types_.size());
  node_types_.push_back(NodeType::kTxn);
  labels_.push_back(record.label);
  txn_ids_.emplace(record.txn_id, txn);
  txn_nodes_.push_back(txn);
  txn_features_.push_back(record.features);

  auto link = [&](NodeType type, const std::string& key) {
    if (key.empty()) return;
    int32_t entity = InternEntity(type, key);
    edges_.push_back({txn, entity, type});
  };
  link(NodeType::kBuyer, record.buyer_id);
  link(NodeType::kEmail, record.email);
  link(NodeType::kPmt, record.payment_token);
  link(NodeType::kAddr, record.shipping_address);
  return Status::OK();
}

int32_t GraphBuilder::InternEntity(NodeType type, const std::string& key) {
  auto& table = entity_ids_[static_cast<int>(type)];
  auto it = table.find(key);
  if (it != table.end()) return it->second;
  int32_t id = static_cast<int32_t>(node_types_.size());
  node_types_.push_back(type);
  labels_.push_back(kLabelUnknown);
  table.emplace(key, id);
  return id;
}

int32_t GraphBuilder::TxnNode(const std::string& txn_id) const {
  auto it = txn_ids_.find(txn_id);
  return it == txn_ids_.end() ? -1 : it->second;
}

HeteroGraph GraphBuilder::Build() const {
  int64_t n = static_cast<int64_t>(node_types_.size());

  // Each linkage contributes two directed edges: entity -> txn (consumed
  // when aggregating into the transaction) and txn -> entity.
  std::vector<int64_t> in_degree(n, 0);
  for (const auto& e : edges_) {
    ++in_degree[e.txn];
    ++in_degree[e.entity];
  }
  std::vector<int64_t> offsets(n + 1, 0);
  for (int64_t v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + in_degree[v];

  std::vector<int32_t> neighbors(offsets[n]);
  std::vector<EdgeType> edge_types(offsets[n]);
  std::vector<int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& e : edges_) {
    // Incoming edge of the txn: source is the entity.
    int64_t slot = cursor[e.txn]++;
    neighbors[slot] = e.entity;
    edge_types[slot] = EntityToTxnEdge(e.entity_type);
    // Incoming edge of the entity: source is the txn.
    slot = cursor[e.entity]++;
    neighbors[slot] = e.txn;
    edge_types[slot] = TxnToEntityEdge(e.entity_type);
  }

  int64_t dim = std::max<int64_t>(feature_dim_, 0);
  nn::Tensor features(static_cast<int64_t>(txn_features_.size()), dim);
  std::vector<int32_t> feature_row(n, -1);
  for (size_t i = 0; i < txn_features_.size(); ++i) {
    feature_row[txn_nodes_[i]] = static_cast<int32_t>(i);
    std::copy(txn_features_[i].begin(), txn_features_[i].end(),
              features.Row(static_cast<int64_t>(i)));
  }

  return HeteroGraph(node_types_, std::move(offsets), std::move(neighbors),
                     std::move(edge_types), std::move(features),
                     std::move(feature_row), labels_);
}

}  // namespace xfraud::graph
