#ifndef XFRAUD_GRAPH_SERIALIZE_H_
#define XFRAUD_GRAPH_SERIALIZE_H_

#include <string>

#include "xfraud/common/status.h"
#include "xfraud/graph/hetero_graph.h"

namespace xfraud::graph {

/// Writes a HeteroGraph to a binary file:
///   magic "XFGR", u32 version, i64 num_nodes, i64 num_edges,
///   i64 num_feature_rows, i64 feature_dim, then the raw arrays
///   (node types, offsets, neighbors, edge types, feature rows, labels,
///   feature payload), each preceded by nothing — sizes are implied by the
///   header. A trailing CRC-32 over the payload guards integrity.
Status SaveGraph(const HeteroGraph& g, const std::string& path);

/// Loads a graph written by SaveGraph. Corruption (bad magic/CRC/sizes)
/// yields a Corruption status.
Result<HeteroGraph> LoadGraph(const std::string& path);

}  // namespace xfraud::graph

#endif  // XFRAUD_GRAPH_SERIALIZE_H_
