#include "xfraud/graph/subgraph.h"

#include <algorithm>
#include <deque>
#include <map>

#include "xfraud/common/logging.h"

namespace xfraud::graph {

std::vector<NodeType> Subgraph::LocalNodeTypes(const HeteroGraph& g) const {
  std::vector<NodeType> types(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) types[i] = g.node_type(nodes[i]);
  return types;
}

std::vector<UndirectedEdge> UndirectedEdges(const Subgraph& sub) {
  std::map<std::pair<int32_t, int32_t>, UndirectedEdge> dedup;
  for (int64_t e = 0; e < sub.num_edges(); ++e) {
    int32_t a = sub.src[e];
    int32_t b = sub.dst[e];
    if (a == b) continue;
    bool forward = a < b;
    auto key = forward ? std::make_pair(a, b) : std::make_pair(b, a);
    auto [it, inserted] = dedup.try_emplace(key);
    if (inserted) {
      it->second.u = key.first;
      it->second.v = key.second;
    }
    // Orientation u->v is "directed_a", v->u is "directed_b".
    if (forward) {
      it->second.directed_a = static_cast<int32_t>(e);
    } else {
      it->second.directed_b = static_cast<int32_t>(e);
    }
  }
  std::vector<UndirectedEdge> out;
  out.reserve(dedup.size());
  for (auto& [key, edge] : dedup) out.push_back(edge);
  return out;
}

namespace {

/// Induces all edges of g among the collected nodes into `sub`.
void InduceEdges(const HeteroGraph& g, Subgraph* sub) {
  for (size_t local = 0; local < sub->nodes.size(); ++local) {
    int32_t v = sub->nodes[local];
    for (int64_t e = g.InDegreeBegin(v); e < g.InDegreeEnd(v); ++e) {
      int32_t u = g.neighbors()[e];
      auto it = sub->local_of.find(u);
      if (it == sub->local_of.end()) continue;
      sub->src.push_back(it->second);
      sub->dst.push_back(static_cast<int32_t>(local));
      sub->etypes.push_back(g.edge_types()[e]);
    }
  }
}

int32_t AddNode(Subgraph* sub, int32_t global) {
  auto [it, inserted] =
      sub->local_of.emplace(global, static_cast<int32_t>(sub->nodes.size()));
  if (inserted) sub->nodes.push_back(global);
  return it->second;
}

}  // namespace

Subgraph KHopSubgraph(const HeteroGraph& g, int32_t seed, int hops,
                      int fanout, xfraud::Rng* rng) {
  XF_CHECK_GE(seed, 0);
  XF_CHECK_LT(seed, g.num_nodes());
  Subgraph sub;
  sub.seed_local = AddNode(&sub, seed);

  std::vector<int32_t> frontier = {seed};
  for (int hop = 0; hop < hops && !frontier.empty(); ++hop) {
    std::vector<int32_t> next;
    for (int32_t v : frontier) {
      int64_t begin = g.InDegreeBegin(v);
      int64_t end = g.InDegreeEnd(v);
      int64_t degree = end - begin;
      if (fanout < 0 || degree <= fanout) {
        for (int64_t e = begin; e < end; ++e) {
          int32_t u = g.neighbors()[e];
          if (sub.local_of.count(u) == 0) {
            AddNode(&sub, u);
            next.push_back(u);
          }
        }
      } else {
        // Uniform sample without replacement via partial Fisher-Yates.
        XF_CHECK(rng != nullptr);
        std::vector<int64_t> slots(degree);
        for (int64_t i = 0; i < degree; ++i) slots[i] = begin + i;
        for (int i = 0; i < fanout; ++i) {
          int64_t j =
              i + static_cast<int64_t>(rng->NextBounded(degree - i));
          std::swap(slots[i], slots[j]);
          int32_t u = g.neighbors()[slots[i]];
          if (sub.local_of.count(u) == 0) {
            AddNode(&sub, u);
            next.push_back(u);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  InduceEdges(g, &sub);
  return sub;
}

Subgraph Community(const HeteroGraph& g, int32_t seed, int64_t max_nodes) {
  XF_CHECK_GE(seed, 0);
  XF_CHECK_LT(seed, g.num_nodes());
  Subgraph sub;
  sub.seed_local = AddNode(&sub, seed);
  std::deque<int32_t> queue = {seed};
  while (!queue.empty() &&
         static_cast<int64_t>(sub.nodes.size()) < max_nodes) {
    int32_t v = queue.front();
    queue.pop_front();
    for (int64_t e = g.InDegreeBegin(v); e < g.InDegreeEnd(v); ++e) {
      int32_t u = g.neighbors()[e];
      if (sub.local_of.count(u) != 0) continue;
      if (static_cast<int64_t>(sub.nodes.size()) >= max_nodes) break;
      AddNode(&sub, u);
      queue.push_back(u);
    }
  }
  InduceEdges(g, &sub);
  return sub;
}

HeteroGraph InducedGraph(const HeteroGraph& g,
                         const std::vector<int32_t>& nodes,
                         std::vector<int32_t>* local_to_global) {
  std::unordered_map<int32_t, int32_t> local_of;
  local_of.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    local_of.emplace(nodes[i], static_cast<int32_t>(i));
  }
  if (local_to_global != nullptr) *local_to_global = nodes;

  int64_t n = static_cast<int64_t>(nodes.size());
  std::vector<NodeType> node_types(n);
  std::vector<int8_t> labels(n);
  std::vector<int32_t> feature_row(n, -1);
  int64_t num_txn = 0;
  for (int64_t i = 0; i < n; ++i) {
    node_types[i] = g.node_type(nodes[i]);
    labels[i] = g.label(nodes[i]);
    if (g.HasFeatures(nodes[i])) feature_row[i] = static_cast<int32_t>(num_txn++);
  }
  nn::Tensor features(num_txn, g.feature_dim());
  for (int64_t i = 0; i < n; ++i) {
    if (feature_row[i] < 0) continue;
    const float* src = g.Features(nodes[i]);
    std::copy(src, src + g.feature_dim(), features.Row(feature_row[i]));
  }

  // Two passes over in-edges: degree count, then fill.
  std::vector<int64_t> offsets(n + 1, 0);
  for (int64_t i = 0; i < n; ++i) {
    int32_t v = nodes[i];
    int64_t degree = 0;
    for (int64_t e = g.InDegreeBegin(v); e < g.InDegreeEnd(v); ++e) {
      degree += local_of.count(g.neighbors()[e]) > 0;
    }
    offsets[i + 1] = offsets[i] + degree;
  }
  std::vector<int32_t> neighbors(offsets[n]);
  std::vector<EdgeType> edge_types(offsets[n]);
  for (int64_t i = 0; i < n; ++i) {
    int32_t v = nodes[i];
    int64_t slot = offsets[i];
    for (int64_t e = g.InDegreeBegin(v); e < g.InDegreeEnd(v); ++e) {
      auto it = local_of.find(g.neighbors()[e]);
      if (it == local_of.end()) continue;
      neighbors[slot] = it->second;
      edge_types[slot] = g.edge_types()[e];
      ++slot;
    }
  }
  return HeteroGraph(std::move(node_types), std::move(offsets),
                     std::move(neighbors), std::move(edge_types),
                     std::move(features), std::move(feature_row),
                     std::move(labels));
}

std::vector<std::vector<int32_t>> LineGraphAdjacency(
    const std::vector<UndirectedEdge>& edges, int64_t num_nodes) {
  // incident[v] = indices of undirected edges touching v.
  std::vector<std::vector<int32_t>> incident(num_nodes);
  for (size_t e = 0; e < edges.size(); ++e) {
    incident[edges[e].u].push_back(static_cast<int32_t>(e));
    incident[edges[e].v].push_back(static_cast<int32_t>(e));
  }
  std::vector<std::vector<int32_t>> adj(edges.size());
  for (const auto& inc : incident) {
    for (size_t i = 0; i < inc.size(); ++i) {
      for (size_t j = i + 1; j < inc.size(); ++j) {
        adj[inc[i]].push_back(inc[j]);
        adj[inc[j]].push_back(inc[i]);
      }
    }
  }
  // Two edges can share both endpoints only in multigraphs, which the
  // undirected dedup prevents; adjacency lists are therefore duplicate-free
  // except via distinct shared endpoints — dedup defensively anyway.
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

}  // namespace xfraud::graph
