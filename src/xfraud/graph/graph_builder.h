#ifndef XFRAUD_GRAPH_GRAPH_BUILDER_H_
#define XFRAUD_GRAPH_GRAPH_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "xfraud/common/status.h"
#include "xfraud/graph/hetero_graph.h"
#include "xfraud/nn/tensor.h"

namespace xfraud::graph {

/// One row of the transaction log (paper Fig. 3). Empty entity strings mean
/// the linkage is absent — e.g. guest checkouts have no buyer account
/// (paper §3.2.1) but can still be linked via email/payment/address.
struct TransactionRecord {
  std::string txn_id;
  std::string buyer_id;   // empty for guest checkout
  std::string email;
  std::string payment_token;
  std::string shipping_address;
  std::vector<float> features;
  int8_t label = kLabelUnknown;  // kLabelBenign / kLabelFraud / kLabelUnknown
  /// Coarse timestamp (e.g. month index) for temporal/incremental training
  /// protocols (paper Appendix H.5). Not part of the graph structure: the
  /// detector deliberately drops HGT's relative temporal encoding (§3.2.1).
  int32_t period = 0;
};

/// Converts transaction logs into a HeteroGraph (the paper's "graph
/// constructor", Fig. 2 / §3.1): each transaction and each distinct linking
/// entity becomes a node; each use of an entity by a transaction becomes a
/// pair of directed edges.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Appends one transaction. Returns InvalidArgument for duplicate txn ids
  /// or inconsistent feature dimensionality.
  Status AddTransaction(const TransactionRecord& record);

  /// Number of transactions added so far.
  int64_t num_transactions() const { return static_cast<int64_t>(txn_nodes_.size()); }

  /// Finalizes into an immutable CSR graph. The builder can keep receiving
  /// transactions afterwards (Build snapshots current state).
  HeteroGraph Build() const;

  /// Node id assigned to a transaction id; -1 if unknown.
  int32_t TxnNode(const std::string& txn_id) const;

 private:
  int32_t InternEntity(NodeType type, const std::string& key);

  struct PendingEdge {
    int32_t txn;
    int32_t entity;
    NodeType entity_type;
  };

  std::vector<NodeType> node_types_;
  std::vector<int8_t> labels_;
  std::vector<PendingEdge> edges_;
  std::unordered_map<std::string, int32_t> txn_ids_;
  // Entity keys are namespaced by type: the same string used as an email and
  // as an address must become two distinct nodes.
  std::unordered_map<std::string, int32_t> entity_ids_[kNumNodeTypes];
  std::vector<int32_t> txn_nodes_;
  std::vector<std::vector<float>> txn_features_;
  int64_t feature_dim_ = -1;
};

}  // namespace xfraud::graph

#endif  // XFRAUD_GRAPH_GRAPH_BUILDER_H_
