#include "xfraud/graph/serialize.h"

#include <cstring>
#include <sstream>
#include <vector>

#include "xfraud/common/atomic_file.h"
#include "xfraud/common/crc32.h"

namespace xfraud::graph {

namespace {

constexpr char kMagic[4] = {'X', 'F', 'G', 'R'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v, uint32_t* crc_acc,
              std::string* buffer) {
  const char* data = reinterpret_cast<const char*>(v.data());
  size_t bytes = v.size() * sizeof(T);
  out.write(data, static_cast<std::streamsize>(bytes));
  buffer->append(data, bytes);
  (void)crc_acc;
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVec(std::istream& in, size_t count, std::vector<T>* v,
             std::string* buffer) {
  v->resize(count);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) return false;
  buffer->append(reinterpret_cast<const char*>(v->data()),
                 count * sizeof(T));
  return true;
}

}  // namespace

Status SaveGraph(const HeteroGraph& g, const std::string& path) {
  // Serialize into memory, then publish via tmp-file + rename with a CRC32
  // footer over the whole image (the in-format checksum only covers the
  // payload arrays, not the header): crash-safe and torn-file-proof.
  std::ostringstream out;
  out.write(kMagic, 4);
  WritePod(out, kVersion);
  int64_t num_nodes = g.num_nodes();
  int64_t num_edges = g.num_edges();
  // Count feature rows.
  int64_t feature_rows = 0;
  for (int32_t v = 0; v < num_nodes; ++v) feature_rows += g.HasFeatures(v);
  int64_t feature_dim = g.feature_dim();
  WritePod(out, num_nodes);
  WritePod(out, num_edges);
  WritePod(out, feature_rows);
  WritePod(out, feature_dim);

  std::string crc_buffer;
  // Node types, labels, feature-row map.
  std::vector<uint8_t> types(num_nodes);
  std::vector<int8_t> labels(num_nodes);
  std::vector<int32_t> feature_row(num_nodes, -1);
  std::vector<float> features;
  features.reserve(feature_rows * feature_dim);
  int32_t next_row = 0;
  for (int32_t v = 0; v < num_nodes; ++v) {
    types[v] = static_cast<uint8_t>(g.node_type(v));
    labels[v] = g.label(v);
    if (g.HasFeatures(v)) {
      feature_row[v] = next_row++;
      const float* row = g.Features(v);
      features.insert(features.end(), row, row + feature_dim);
    }
  }
  std::vector<int64_t> offsets(num_nodes + 1);
  for (int32_t v = 0; v < num_nodes; ++v) offsets[v] = g.InDegreeBegin(v);
  offsets[num_nodes] = num_edges;
  std::vector<uint8_t> edge_types(num_edges);
  for (int64_t e = 0; e < num_edges; ++e) {
    edge_types[e] = static_cast<uint8_t>(g.edge_types()[e]);
  }

  WriteVec(out, types, nullptr, &crc_buffer);
  WriteVec(out, labels, nullptr, &crc_buffer);
  WriteVec(out, feature_row, nullptr, &crc_buffer);
  WriteVec(out, offsets, nullptr, &crc_buffer);
  WriteVec(out, g.neighbors(), nullptr, &crc_buffer);
  WriteVec(out, edge_types, nullptr, &crc_buffer);
  WriteVec(out, features, nullptr, &crc_buffer);

  uint32_t crc = Crc32(crc_buffer.data(), crc_buffer.size());
  WritePod(out, crc);
  return AtomicWriteFileWithCrc(path, out.str());
}

Result<HeteroGraph> LoadGraph(const std::string& path) {
  Result<std::string> raw = ReadFileVerifyCrc(path);
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) {
      return Status::IoError("cannot open for read: " + path);
    }
    return raw.status();
  }
  std::istringstream in(std::move(raw).value());
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad graph magic: " + path);
  }
  uint32_t version = 0;
  int64_t num_nodes = 0, num_edges = 0, feature_rows = 0, feature_dim = 0;
  if (!ReadPod(in, &version) || version != kVersion ||
      !ReadPod(in, &num_nodes) || !ReadPod(in, &num_edges) ||
      !ReadPod(in, &feature_rows) || !ReadPod(in, &feature_dim) ||
      num_nodes < 0 || num_edges < 0 || feature_rows < 0 ||
      feature_dim < 0) {
    return Status::Corruption("bad graph header: " + path);
  }

  std::string crc_buffer;
  std::vector<uint8_t> types;
  std::vector<int8_t> labels;
  std::vector<int32_t> feature_row;
  std::vector<int64_t> offsets;
  std::vector<int32_t> neighbors;
  std::vector<uint8_t> edge_types;
  std::vector<float> features;
  if (!ReadVec(in, num_nodes, &types, &crc_buffer) ||
      !ReadVec(in, num_nodes, &labels, &crc_buffer) ||
      !ReadVec(in, num_nodes, &feature_row, &crc_buffer) ||
      !ReadVec(in, num_nodes + 1, &offsets, &crc_buffer) ||
      !ReadVec(in, num_edges, &neighbors, &crc_buffer) ||
      !ReadVec(in, num_edges, &edge_types, &crc_buffer) ||
      !ReadVec(in, feature_rows * feature_dim, &features, &crc_buffer)) {
    return Status::Corruption("truncated graph payload: " + path);
  }
  uint32_t stored_crc = 0;
  if (!ReadPod(in, &stored_crc) ||
      stored_crc != Crc32(crc_buffer.data(), crc_buffer.size())) {
    return Status::Corruption("graph checksum mismatch: " + path);
  }

  std::vector<NodeType> node_types(num_nodes);
  for (int64_t v = 0; v < num_nodes; ++v) {
    if (types[v] >= kNumNodeTypes) {
      return Status::Corruption("bad node type in " + path);
    }
    node_types[v] = static_cast<NodeType>(types[v]);
  }
  std::vector<EdgeType> etypes(num_edges);
  for (int64_t e = 0; e < num_edges; ++e) {
    if (edge_types[e] >= kNumEdgeTypes) {
      return Status::Corruption("bad edge type in " + path);
    }
    etypes[e] = static_cast<EdgeType>(edge_types[e]);
  }
  nn::Tensor feature_tensor(feature_rows, feature_dim, std::move(features));
  return HeteroGraph(std::move(node_types), std::move(offsets),
                     std::move(neighbors), std::move(etypes),
                     std::move(feature_tensor), std::move(feature_row),
                     std::move(labels));
}

}  // namespace xfraud::graph
