#ifndef XFRAUD_GRAPH_HETERO_GRAPH_H_
#define XFRAUD_GRAPH_HETERO_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xfraud/common/check.h"
#include "xfraud/nn/tensor.h"

namespace xfraud::graph {

/// The five node types of the xFraud transaction graph (paper §3.1):
/// A := {txn, pmt, email, addr, buyer}.
enum class NodeType : uint8_t {
  kTxn = 0,
  kPmt = 1,
  kEmail = 2,
  kAddr = 3,
  kBuyer = 4,
};

inline constexpr int kNumNodeTypes = 5;

/// Directed edge types. Edges only connect transactions with linking
/// entities, in both directions, giving 2 x 4 relation types.
enum class EdgeType : uint8_t {
  kTxnToPmt = 0,
  kPmtToTxn = 1,
  kTxnToEmail = 2,
  kEmailToTxn = 3,
  kTxnToAddr = 4,
  kAddrToTxn = 5,
  kTxnToBuyer = 6,
  kBuyerToTxn = 7,
};

inline constexpr int kNumEdgeTypes = 8;

/// Human-readable names (for visualizations and tables).
const char* NodeTypeName(NodeType type);
const char* EdgeTypeName(EdgeType type);

/// Returns the directed edge type for txn -> entity and entity -> txn.
EdgeType TxnToEntityEdge(NodeType entity);
EdgeType EntityToTxnEdge(NodeType entity);

/// Label constants for transaction nodes.
inline constexpr int8_t kLabelUnknown = -1;
inline constexpr int8_t kLabelBenign = 0;
inline constexpr int8_t kLabelFraud = 1;

/// An immutable heterogeneous transaction graph in CSR form.
///
/// Only transaction nodes carry input features (paper §3.2.1); linking
/// entities start empty and acquire representations through convolution.
/// Directed edges are stored in a single CSR over *incoming* neighbours:
/// for a target node v, In(v) lists the sources that send messages to v —
/// the orientation message passing consumes. Every linkage produces both
/// directions, so the reverse adjacency is the same structure with swapped
/// edge types.
class HeteroGraph {
 public:
  HeteroGraph() = default;

  /// Builder-facing constructor; prefer GraphBuilder for assembly.
  HeteroGraph(std::vector<NodeType> node_types, std::vector<int64_t> offsets,
              std::vector<int32_t> neighbors, std::vector<EdgeType> edge_types,
              nn::Tensor txn_features, std::vector<int32_t> feature_row,
              std::vector<int8_t> labels);

  int64_t num_nodes() const { return static_cast<int64_t>(node_types_.size()); }
  /// Number of directed edges (2x the number of linkages).
  int64_t num_edges() const { return static_cast<int64_t>(neighbors_.size()); }

  NodeType node_type(int32_t v) const {
    XF_DCHECK_BOUNDS(v, num_nodes());
    return node_types_[v];
  }
  const std::vector<NodeType>& node_types() const { return node_types_; }

  /// In-neighbour range of v: indices into neighbors()/edge_types().
  int64_t InDegreeBegin(int32_t v) const {
    XF_DCHECK_BOUNDS(v, num_nodes());
    return offsets_[v];
  }
  int64_t InDegreeEnd(int32_t v) const {
    XF_DCHECK_BOUNDS(v, num_nodes());
    return offsets_[v + 1];
  }
  int64_t InDegree(int32_t v) const {
    XF_DCHECK_BOUNDS(v, num_nodes());
    return offsets_[v + 1] - offsets_[v];
  }

  const std::vector<int32_t>& neighbors() const { return neighbors_; }
  const std::vector<EdgeType>& edge_types() const { return edge_types_; }

  /// Feature dimensionality of transaction nodes.
  int64_t feature_dim() const { return txn_features_.cols(); }

  /// True when v is a transaction with a feature row.
  bool HasFeatures(int32_t v) const {
    XF_DCHECK_BOUNDS(v, num_nodes());
    return feature_row_[v] >= 0;
  }

  /// Feature row pointer for a transaction node v (pre: HasFeatures(v)).
  const float* Features(int32_t v) const {
    XF_DCHECK(HasFeatures(v)) << "node " << v << " has no feature row";
    return txn_features_.Row(feature_row_[v]);
  }

  /// Label of node v (kLabelUnknown for entities and unlabeled txns).
  int8_t label(int32_t v) const {
    XF_DCHECK_BOUNDS(v, num_nodes());
    return labels_[v];
  }
  const std::vector<int8_t>& labels() const { return labels_; }

  /// All transaction node ids with a known label.
  std::vector<int32_t> LabeledTransactions() const;

  /// All node ids of a given type.
  std::vector<int32_t> NodesOfType(NodeType type) const;

  /// Per-type node counts (Table 6).
  std::vector<int64_t> NodeTypeCounts() const;

  /// Fraction of labeled transactions flagged fraud (Table 2's Fraud%).
  double FraudRate() const;

  /// Average directed degree = num_edges()/num_nodes(), i.e. 2x the
  /// undirected edges-per-node statistic of Table 5.
  double AvgDegree() const;

 private:
  std::vector<NodeType> node_types_;
  std::vector<int64_t> offsets_;     // size num_nodes+1
  std::vector<int32_t> neighbors_;   // source node of each incoming edge
  std::vector<EdgeType> edge_types_;
  nn::Tensor txn_features_;          // [num_txn_with_features, F]
  std::vector<int32_t> feature_row_;  // node -> row in txn_features_, or -1
  std::vector<int8_t> labels_;
};

}  // namespace xfraud::graph

#endif  // XFRAUD_GRAPH_HETERO_GRAPH_H_
