#include "xfraud/baselines/rule_scorer.h"

namespace xfraud::baselines {

namespace {

// A rule with zero recorded precision (diagnostics were not computed) still
// deserves a vote; floor the weight so it contributes.
constexpr double kMinWeight = 1e-3;

double WeightOf(const data::Rule& rule) {
  return rule.precision > kMinWeight ? rule.precision : kMinWeight;
}

}  // namespace

RuleScorer::RuleScorer(std::vector<data::Rule> rules)
    : rules_(std::move(rules)) {
  for (const data::Rule& rule : rules_) weight_sum_ += WeightOf(rule);
}

double RuleScorer::Score(const std::vector<float>& features) const {
  if (rules_.empty()) return 0.5;
  double fired = 0.0;
  for (const data::Rule& rule : rules_) {
    if (rule.dim < 0 || static_cast<size_t>(rule.dim) >= features.size()) {
      continue;
    }
    if (rule.Fires(features)) fired += WeightOf(rule);
  }
  return fired / weight_sum_;
}

}  // namespace xfraud::baselines
