#include "xfraud/baselines/gem.h"

#include "xfraud/common/logging.h"
#include "xfraud/graph/hetero_graph.h"

namespace xfraud::baselines {

using nn::Var;

GemModel::Layer::Layer(int64_t dim, xfraud::Rng* rng) : self(dim, dim, rng),
                                                        norm(dim) {
  per_type.reserve(graph::kNumNodeTypes);
  for (int t = 0; t < graph::kNumNodeTypes; ++t) {
    per_type.emplace_back(dim, dim, rng, /*with_bias=*/false);
  }
}

GemModel::GemModel(GemConfig config, xfraud::Rng* rng)
    : config_(config),
      input_proj_(config.feature_dim, config.hidden_dim, rng),
      head_(config.hidden_dim + config.feature_dim, config.hidden_dim, 2,
            config.dropout, rng) {
  layers_.reserve(config.num_layers);
  for (int l = 0; l < config.num_layers; ++l) {
    layers_.emplace_back(config.hidden_dim, rng);
  }
}

Var GemModel::ForwardLayer(const Layer& layer, const Var& h,
                           const sample::MiniBatch& batch,
                           const core::ForwardOptions& options) const {
  int64_t num_nodes = h.rows();
  Var out = layer.self.Forward(h);
  if (!batch.edge_src.empty()) {
    // Per (target, source-type) mean normalization: count incoming edges of
    // each type, then scale each message by 1/count before scatter-adding.
    std::vector<std::vector<float>> counts(
        graph::kNumNodeTypes, std::vector<float>(num_nodes, 0.0f));
    std::vector<int32_t> src_type(batch.edge_src.size());
    for (size_t e = 0; e < batch.edge_src.size(); ++e) {
      src_type[e] = batch.node_types[batch.edge_src[e]];
      counts[src_type[e]][batch.edge_dst[e]] += 1.0f;
    }
    nn::Tensor inv_count(static_cast<int64_t>(batch.edge_src.size()), 1);
    for (size_t e = 0; e < batch.edge_src.size(); ++e) {
      inv_count.At(static_cast<int64_t>(e), 0) =
          1.0f / counts[src_type[e]][batch.edge_dst[e]];
    }

    Var gathered = nn::IndexRows(h, batch.edge_src);
    Var messages = nn::MulColBroadcast(gathered, nn::Constant(inv_count));
    if (options.edge_mask != nullptr) {
      messages = nn::MulColBroadcast(messages, *options.edge_mask);
    }
    // Σ_t W_t · mean_t: transform messages by the source type's weight and
    // aggregate; grouping by type keeps each W_t specific to its relation.
    Var typed = core::ApplyTypedLinear(layer.per_type, messages, src_type);
    out = nn::Add(out, nn::ScatterAddRows(typed, batch.edge_dst, num_nodes));
  }
  if (config_.use_residual) out = nn::Add(out, h);
  out = nn::Relu(layer.norm.Forward(out));
  return nn::Dropout(out, config_.dropout, options.training, options.rng);
}

Var GemModel::Forward(const sample::MiniBatch& batch,
                      const core::ForwardOptions& options) const {
  Var features = options.features_override != nullptr
                     ? *options.features_override
                     : nn::Constant(batch.features);
  Var h = input_proj_.Forward(features);
  for (const auto& layer : layers_) {
    h = ForwardLayer(layer, h, batch, options);
  }
  Var target_repr = nn::Tanh(nn::IndexRows(h, batch.target_locals));
  Var target_raw = nn::IndexRows(features, batch.target_locals);
  return head_.Forward(nn::ConcatCols(target_repr, target_raw),
                       options.training, options.rng);
}

void GemModel::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParameter>* out) const {
  input_proj_.CollectParameters(prefix + "input_proj.", out);
  for (size_t l = 0; l < layers_.size(); ++l) {
    std::string lp = prefix + "layer" + std::to_string(l) + ".";
    layers_[l].self.CollectParameters(lp + "self.", out);
    for (int t = 0; t < graph::kNumNodeTypes; ++t) {
      layers_[l].per_type[t].CollectParameters(
          lp + "type_" + graph::NodeTypeName(static_cast<graph::NodeType>(t)) +
              ".",
          out);
    }
    layers_[l].norm.CollectParameters(lp + "norm.", out);
  }
  head_.CollectParameters(prefix + "head.", out);
}

}  // namespace xfraud::baselines
