#ifndef XFRAUD_BASELINES_GAT_H_
#define XFRAUD_BASELINES_GAT_H_

#include <string>
#include <vector>

#include "xfraud/core/gnn_model.h"
#include "xfraud/nn/modules.h"

namespace xfraud::baselines {

/// Hyperparameters for the GAT baseline.
struct GatConfig {
  int64_t feature_dim = 64;
  int64_t hidden_dim = 32;
  int num_heads = 4;
  int num_layers = 2;
  float dropout = 0.2f;
  float leaky_slope = 0.2f;
  bool use_residual = true;
};

/// Graph Attention Network baseline (Velickovic et al.), as used in the
/// paper's Table 3. GAT treats the transaction graph as *homogeneous*: one
/// shared linear map and one additive attention per head, no node/edge type
/// information. Since linking entities carry no input features, GAT can only
/// separate them through learned states — the structural handicap that lets
/// the type-aware detector outperform it.
class GatModel : public core::GnnModel {
 public:
  GatModel(GatConfig config, xfraud::Rng* rng);

  nn::Var Forward(const sample::MiniBatch& batch,
                  const core::ForwardOptions& options) const override;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParameter>* out) const override;

  std::string name() const override { return "gat"; }

 private:
  struct Layer {
    nn::Linear proj;          // hidden -> hidden (all heads packed)
    nn::Var att_src;          // [1, hidden]: per-head d_k attention vectors
    nn::Var att_dst;          // [1, hidden]
    nn::LayerNormModule norm;
    Layer(int64_t dim, xfraud::Rng* rng, float bound);
  };

  nn::Var ForwardLayer(const Layer& layer, const nn::Var& h,
                       const sample::MiniBatch& batch,
                       const core::ForwardOptions& options) const;

  GatConfig config_;
  int64_t head_dim_;
  nn::Linear input_proj_;
  std::vector<Layer> layers_;
  nn::Mlp head_;
};

}  // namespace xfraud::baselines

#endif  // XFRAUD_BASELINES_GAT_H_
