#ifndef XFRAUD_BASELINES_GEM_H_
#define XFRAUD_BASELINES_GEM_H_

#include <string>
#include <vector>

#include "xfraud/core/gnn_model.h"
#include "xfraud/nn/modules.h"

namespace xfraud::baselines {

/// Hyperparameters for the GEM baseline.
struct GemConfig {
  int64_t feature_dim = 64;
  int64_t hidden_dim = 32;
  int num_layers = 2;
  float dropout = 0.2f;
  bool use_residual = true;
};

/// GEM baseline (Liu et al. 2018, "Heterogeneous graph neural networks for
/// malicious account detection"): a heterogeneous-GCN-style model that
/// aggregates the *mean* of each node-type's neighbourhood through a
/// type-specific weight matrix and sums the per-type aggregates with the
/// self state:
///
///   h_v^{l} = ReLU( W_self h_v^{l-1} + Σ_t W_t · mean_{u ∈ N_t(v)} h_u^{l-1} )
///
/// GEM knows the node types but has no attention — it cannot distinguish a
/// risky neighbour from a harmless one within the same type, which is the
/// capability gap to the xFraud detector (paper §3.2.1 "Comparison to GEM").
/// Its plain convolution also makes it the fastest model at inference, the
/// ordering Table 3 reports.
class GemModel : public core::GnnModel {
 public:
  GemModel(GemConfig config, xfraud::Rng* rng);

  nn::Var Forward(const sample::MiniBatch& batch,
                  const core::ForwardOptions& options) const override;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParameter>* out) const override;

  std::string name() const override { return "gem"; }

 private:
  struct Layer {
    nn::Linear self;
    std::vector<nn::Linear> per_type;  // one per source node type
    nn::LayerNormModule norm;
    Layer(int64_t dim, xfraud::Rng* rng);
  };

  nn::Var ForwardLayer(const Layer& layer, const nn::Var& h,
                       const sample::MiniBatch& batch,
                       const core::ForwardOptions& options) const;

  GemConfig config_;
  nn::Linear input_proj_;
  std::vector<Layer> layers_;
  nn::Mlp head_;
};

}  // namespace xfraud::baselines

#endif  // XFRAUD_BASELINES_GEM_H_
