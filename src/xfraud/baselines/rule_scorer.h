#ifndef XFRAUD_BASELINES_RULE_SCORER_H_
#define XFRAUD_BASELINES_RULE_SCORER_H_

#include <vector>

#include "xfraud/data/prefilter.h"

namespace xfraud::baselines {

/// Turns the mined pre-filter rules (data::RuleFilter — the reproduction's
/// stand-in for the BU's skope-rules system) into a cheap [0, 1] risk
/// score over a raw feature row: the precision-weighted vote of the rules
/// that fire. No graph, no KV reads beyond the seed's own features, no
/// model forward — which is exactly what makes it the degraded scorer the
/// serving layer falls back to when a request is shed or the GNN path is
/// unavailable (and a worth-tracking baseline in its own right).
class RuleScorer {
 public:
  /// Scores with the given rules; empty rules yield the neutral 0.5.
  explicit RuleScorer(std::vector<data::Rule> rules);

  static RuleScorer FromFilter(const data::RuleFilter& filter) {
    return RuleScorer(filter.rules());
  }

  /// Precision-weighted fraction of rules firing on `features`. Rules
  /// whose dimension is out of range for the row never fire (a degraded,
  /// truncated row must not crash the fallback). Returns 0.5 when no rules
  /// were mined.
  double Score(const std::vector<float>& features) const;

  size_t num_rules() const { return rules_.size(); }

 private:
  std::vector<data::Rule> rules_;
  double weight_sum_ = 0.0;
};

}  // namespace xfraud::baselines

#endif  // XFRAUD_BASELINES_RULE_SCORER_H_
