#include "xfraud/baselines/gat.h"

#include <cmath>

#include "xfraud/common/logging.h"

namespace xfraud::baselines {

using nn::Var;

GatModel::Layer::Layer(int64_t dim, xfraud::Rng* rng, float bound)
    : proj(dim, dim, rng),
      att_src(nn::Tensor::Uniform(1, dim, bound, rng), /*requires_grad=*/true),
      att_dst(nn::Tensor::Uniform(1, dim, bound, rng), /*requires_grad=*/true),
      norm(dim) {}

GatModel::GatModel(GatConfig config, xfraud::Rng* rng)
    : config_(config),
      head_dim_(config.hidden_dim / config.num_heads),
      input_proj_(config.feature_dim, config.hidden_dim, rng),
      head_(config.hidden_dim + config.feature_dim, config.hidden_dim, 2,
            config.dropout, rng) {
  XF_CHECK_EQ(head_dim_ * config.num_heads, config.hidden_dim);
  float bound = std::sqrt(6.0f / static_cast<float>(config.hidden_dim));
  layers_.reserve(config.num_layers);
  for (int l = 0; l < config.num_layers; ++l) {
    layers_.emplace_back(config.hidden_dim, rng, bound);
  }
}

Var GatModel::ForwardLayer(const Layer& layer, const Var& h,
                           const sample::MiniBatch& batch,
                           const core::ForwardOptions& options) const {
  int64_t num_nodes = h.rows();
  if (batch.edge_src.empty()) {
    return nn::Relu(layer.norm.Forward(h));
  }
  Var z = layer.proj.Forward(h);
  // Per-node attention halves: e_ij = LeakyReLU(a_src·z_i + a_dst·z_j),
  // computed per head via the packed attention vectors.
  Var z_src = nn::IndexRows(z, batch.edge_src);
  Var z_dst = nn::IndexRows(z, batch.edge_dst);

  Var scores;
  for (int head = 0; head < config_.num_heads; ++head) {
    int64_t off = head * head_dim_;
    Var a_s = nn::SliceCols(layer.att_src, off, head_dim_);
    Var a_d = nn::SliceCols(layer.att_dst, off, head_dim_);
    // Row-wise dot with a broadcast [1,d_k] vector == matmul with transpose.
    Var s_src = nn::MatMul(nn::SliceCols(z_src, off, head_dim_),
                           nn::Transpose(a_s));
    Var s_dst = nn::MatMul(nn::SliceCols(z_dst, off, head_dim_),
                           nn::Transpose(a_d));
    Var score_h = nn::LeakyRelu(nn::Add(s_src, s_dst), config_.leaky_slope);
    scores = scores.defined() ? nn::ConcatCols(scores, score_h) : score_h;
  }
  Var att = nn::SegmentSoftmax(scores, batch.edge_dst, num_nodes);
  att = nn::Dropout(att, config_.dropout, options.training, options.rng);

  Var messages;
  for (int head = 0; head < config_.num_heads; ++head) {
    Var v_h = nn::SliceCols(z_src, head * head_dim_, head_dim_);
    Var msg_h = nn::MulColBroadcast(v_h, nn::SliceCols(att, head, 1));
    messages = messages.defined() ? nn::ConcatCols(messages, msg_h) : msg_h;
  }
  if (options.edge_mask != nullptr) {
    messages = nn::MulColBroadcast(messages, *options.edge_mask);
  }
  Var agg = nn::ScatterAddRows(messages, batch.edge_dst, num_nodes);
  Var out = config_.use_residual ? nn::Add(agg, h) : agg;
  return nn::Relu(layer.norm.Forward(out));
}

Var GatModel::Forward(const sample::MiniBatch& batch,
                      const core::ForwardOptions& options) const {
  Var features = options.features_override != nullptr
                     ? *options.features_override
                     : nn::Constant(batch.features);
  Var h = input_proj_.Forward(features);
  for (const auto& layer : layers_) {
    h = ForwardLayer(layer, h, batch, options);
  }
  Var target_repr = nn::Tanh(nn::IndexRows(h, batch.target_locals));
  Var target_raw = nn::IndexRows(features, batch.target_locals);
  return head_.Forward(nn::ConcatCols(target_repr, target_raw),
                       options.training, options.rng);
}

void GatModel::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParameter>* out) const {
  input_proj_.CollectParameters(prefix + "input_proj.", out);
  for (size_t l = 0; l < layers_.size(); ++l) {
    std::string lp = prefix + "layer" + std::to_string(l) + ".";
    layers_[l].proj.CollectParameters(lp + "proj.", out);
    out->push_back({lp + "att_src", layers_[l].att_src});
    out->push_back({lp + "att_dst", layers_[l].att_dst});
    layers_[l].norm.CollectParameters(lp + "norm.", out);
  }
  head_.CollectParameters(prefix + "head.", out);
}

}  // namespace xfraud::baselines
