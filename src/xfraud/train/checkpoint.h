#ifndef XFRAUD_TRAIN_CHECKPOINT_H_
#define XFRAUD_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "xfraud/common/rng.h"
#include "xfraud/common/status.h"
#include "xfraud/nn/tensor.h"
#include "xfraud/train/trainer.h"

namespace xfraud::train {

/// Complete Trainer state at an epoch boundary — everything needed for a
/// resumed run to be bit-identical to one that never stopped:
///  - model parameters (by name),
///  - AdamW moments + step count (the bias-correction schedule),
///  - the training Rng (shuffles + dropout draws continue mid-stream),
///  - the current train-node permutation (epoch shuffles are cumulative:
///    epoch k shuffles the order epoch k-1 left behind, so restoring the
///    Rng without the order would permute a different base),
///  - early-stopping state and the epoch history.
struct TrainerCheckpoint {
  uint64_t seed = 0;  // TrainOptions::seed, verified on resume
  int next_epoch = 0;
  int stale = 0;
  int best_epoch = -1;
  double best_val_auc = 0.0;
  Rng::State rng;
  std::vector<int32_t> train_node_order;
  std::vector<EpochStats> history;
  std::vector<std::pair<std::string, nn::Tensor>> params;
  std::vector<nn::Tensor> opt_m;
  std::vector<nn::Tensor> opt_v;
  int64_t opt_step = 0;
};

/// Canonical checkpoint file inside a --checkpoint-dir.
std::string TrainerCheckpointPath(const std::string& dir);

/// Atomically writes the checkpoint (tmp + rename) with a CRC32 footer.
Status SaveTrainerCheckpoint(const TrainerCheckpoint& ckpt,
                             const std::string& path);

/// Loads and CRC-verifies a checkpoint. NotFound if the file does not
/// exist; Corruption for torn/truncated/bit-flipped files.
Result<TrainerCheckpoint> LoadTrainerCheckpoint(const std::string& path);

}  // namespace xfraud::train

#endif  // XFRAUD_TRAIN_CHECKPOINT_H_
