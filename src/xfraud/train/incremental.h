#ifndef XFRAUD_TRAIN_INCREMENTAL_H_
#define XFRAUD_TRAIN_INCREMENTAL_H_

#include <vector>

#include "xfraud/core/detector.h"
#include "xfraud/graph/graph_builder.h"
#include "xfraud/sample/sampler.h"
#include "xfraud/train/trainer.h"

namespace xfraud::train {

/// The Appendix H.5 production protocol: score the transactions of period T
/// with a model trained on earlier data. Three policies are compared:
///   - stale:       train once on period 0 and never update;
///   - incremental: after each period, fine-tune on that period's labels
///                  (the daily/weekly model-update loop the paper proposes);
///   - cumulative:  retrain from scratch on all history (upper bound).
struct IncrementalOptions {
  /// Protocol for the initial fit. Also carries the BatchLoader pipeline
  /// knobs (num_sample_workers, prefetch_depth), which every fit,
  /// fine-tune, and scoring pass in the protocol inherits.
  TrainOptions train;
  int finetune_epochs = 3;      // per-period incremental update
  core::DetectorConfig detector;
  uint64_t seed = 77;
};

/// Per-period test AUC of each policy (period >= 1; period 0 is train-only).
struct PeriodReport {
  int period = 0;
  int64_t transactions = 0;
  double stale_auc = 0.0;
  double incremental_auc = 0.0;
  double cumulative_auc = 0.0;
};

/// Runs the temporal protocol over a timestamped transaction log. The full
/// graph (all linkage history) is available to every policy — what differs
/// is which labels each model has trained on, mirroring production where
/// the graph is maintained continuously but labels arrive with chargeback
/// delay.
class IncrementalEvaluation {
 public:
  explicit IncrementalEvaluation(IncrementalOptions options);

  std::vector<PeriodReport> Run(
      const std::vector<graph::TransactionRecord>& records);

 private:
  IncrementalOptions options_;
};

}  // namespace xfraud::train

#endif  // XFRAUD_TRAIN_INCREMENTAL_H_
