#include "xfraud/train/incremental.h"

#include <algorithm>

#include "xfraud/common/logging.h"
#include "xfraud/nn/serialize.h"

namespace xfraud::train {

IncrementalEvaluation::IncrementalEvaluation(IncrementalOptions options)
    : options_(options) {}

std::vector<PeriodReport> IncrementalEvaluation::Run(
    const std::vector<graph::TransactionRecord>& records) {
  // Build the full linkage graph once; group labeled txn nodes by period.
  graph::GraphBuilder builder;
  int max_period = 0;
  for (const auto& r : records) {
    Status s = builder.AddTransaction(r);
    XF_CHECK(s.ok()) << s.ToString();
    max_period = std::max(max_period, static_cast<int>(r.period));
  }
  graph::HeteroGraph g = builder.Build();
  std::vector<std::vector<int32_t>> nodes_by_period(max_period + 1);
  for (const auto& r : records) {
    if (r.label == graph::kLabelUnknown) continue;
    nodes_by_period[r.period].push_back(builder.TxnNode(r.txn_id));
  }
  XF_CHECK_GE(max_period, 1) << "need at least two periods";

  sample::SageSampler sampler(2, 12);
  auto make_dataset = [&](const std::vector<int32_t>& train_nodes) {
    data::SimDataset ds;
    ds.graph = g;
    ds.train_nodes = train_nodes;
    // A small validation tail keeps early stopping functional.
    size_t val = std::max<size_t>(1, train_nodes.size() / 10);
    ds.val_nodes.assign(train_nodes.end() - val, train_nodes.end());
    ds.train_nodes.resize(train_nodes.size() - val);
    return ds;
  };

  auto fit = [&](core::XFraudDetector* model,
                 const std::vector<int32_t>& train_nodes, int epochs) {
    TrainOptions opts = options_.train;
    opts.max_epochs = epochs;
    opts.patience = epochs;
    Trainer trainer(model, &sampler, opts);
    trainer.Train(make_dataset(train_nodes));
  };
  auto evaluate = [&](core::XFraudDetector* model,
                      const std::vector<int32_t>& nodes) {
    TrainOptions opts = options_.train;
    Trainer trainer(model, &sampler, opts);
    return trainer.Evaluate(g, nodes).auc;
  };

  // Stale + incremental models both start from the period-0 fit.
  Rng stale_rng(options_.seed);
  core::XFraudDetector stale(options_.detector, &stale_rng);
  fit(&stale, nodes_by_period[0], options_.train.max_epochs);

  Rng inc_rng(options_.seed);  // identical init as `stale`
  core::XFraudDetector incremental(options_.detector, &inc_rng);
  auto params = incremental.Parameters();
  Status copied = nn::CopyParameters(stale.Parameters(), &params);
  XF_CHECK(copied.ok()) << copied.ToString();

  std::vector<PeriodReport> reports;
  std::vector<int32_t> history = nodes_by_period[0];
  for (int period = 1; period <= max_period; ++period) {
    const auto& test_nodes = nodes_by_period[period];
    if (test_nodes.size() < 20) continue;

    PeriodReport report;
    report.period = period;
    report.transactions = static_cast<int64_t>(test_nodes.size());
    report.stale_auc = evaluate(&stale, test_nodes);
    report.incremental_auc = evaluate(&incremental, test_nodes);

    // Cumulative upper bound: fresh model on all history.
    Rng cum_rng(options_.seed);
    core::XFraudDetector cumulative(options_.detector, &cum_rng);
    fit(&cumulative, history, options_.train.max_epochs);
    report.cumulative_auc = evaluate(&cumulative, test_nodes);
    reports.push_back(report);

    // After scoring period T, its labels arrive: fine-tune and extend
    // history for the next round.
    fit(&incremental, test_nodes, options_.finetune_epochs);
    history.insert(history.end(), test_nodes.begin(), test_nodes.end());
  }
  return reports;
}

}  // namespace xfraud::train
