#include "xfraud/train/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "xfraud/common/logging.h"

namespace xfraud::train {

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  XF_CHECK_EQ(scores.size(), labels.size());
  size_t n = scores.size();
  int64_t n_pos = 0;
  for (int l : labels) n_pos += l;
  int64_t n_neg = static_cast<int64_t>(n) - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;

  // Midranks: sort by score, assign average rank to ties.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    double mid = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] == 1) rank_sum_pos += rank[k];
  }
  double u = rank_sum_pos - static_cast<double>(n_pos) * (n_pos + 1) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& labels) {
  XF_CHECK_EQ(scores.size(), labels.size());
  int64_t n_pos = 0;
  for (int l : labels) n_pos += l;
  if (n_pos == 0) return 0.0;

  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  // Sum of ΔR * P over distinct-score thresholds: each tie group is one
  // block whose precision is evaluated at the block's end. A per-sample sum
  // would make AP depend on std::sort's (unspecified) order within a tie
  // group; processing whole blocks makes the value a pure function of the
  // (score, label) multiset. For all-distinct scores this reduces exactly
  // to the familiar per-positive precision sum.
  double ap = 0.0;
  int64_t tp = 0, fp = 0;
  size_t i = 0;
  while (i < order.size()) {
    double s = scores[order[i]];
    int64_t tie_pos = 0, tie_neg = 0;
    while (i < order.size() && scores[order[i]] == s) {
      if (labels[order[i]] == 1) {
        ++tie_pos;
      } else {
        ++tie_neg;
      }
      ++i;
    }
    tp += tie_pos;
    fp += tie_neg;
    if (tie_pos > 0) {
      double precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
      ap += precision * static_cast<double>(tie_pos);
    }
  }
  return ap / static_cast<double>(n_pos);
}

double Accuracy(const std::vector<double>& scores,
                const std::vector<int>& labels, double threshold) {
  XF_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;  // empty split: degrade, don't crash
  int64_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    int pred = scores[i] >= threshold ? 1 : 0;
    correct += pred == labels[i];
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

ThresholdMetrics MetricsAtThreshold(const std::vector<double>& scores,
                                    const std::vector<int>& labels,
                                    double threshold) {
  XF_CHECK_EQ(scores.size(), labels.size());
  ThresholdMetrics m;
  m.threshold = threshold;
  for (size_t i = 0; i < scores.size(); ++i) {
    bool pred = scores[i] >= threshold;
    if (pred) m.any_predicted_positive = true;
    if (pred && labels[i] == 1) ++m.tp;
    if (pred && labels[i] == 0) ++m.fp;
    if (!pred && labels[i] == 0) ++m.tn;
    if (!pred && labels[i] == 1) ++m.fn;
  }
  int64_t pos = m.tp + m.fn;
  int64_t neg = m.fp + m.tn;
  m.tpr = pos > 0 ? static_cast<double>(m.tp) / pos : 0.0;
  m.fnr = pos > 0 ? static_cast<double>(m.fn) / pos : 0.0;
  m.tnr = neg > 0 ? static_cast<double>(m.tn) / neg : 0.0;
  m.fpr = neg > 0 ? static_cast<double>(m.fp) / neg : 0.0;
  m.recall = m.tpr;
  m.precision =
      (m.tp + m.fp) > 0 ? static_cast<double>(m.tp) / (m.tp + m.fp) : 0.0;
  return m;
}

std::vector<CurvePoint> RocCurve(const std::vector<double>& scores,
                                 const std::vector<int>& labels) {
  XF_CHECK_EQ(scores.size(), labels.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  int64_t n_pos = 0;
  for (int l : labels) n_pos += l;
  int64_t n_neg = static_cast<int64_t>(labels.size()) - n_pos;

  std::vector<CurvePoint> curve;
  curve.push_back({0.0, 0.0, 1.0});
  int64_t tp = 0, fp = 0;
  size_t i = 0;
  while (i < order.size()) {
    double s = scores[order[i]];
    // Consume the whole tie group before emitting a point, so the curve is
    // independent of the sort's order within ties (same block discipline as
    // AveragePrecision above).
    while (i < order.size() && scores[order[i]] == s) {
      if (labels[order[i]] == 1) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    curve.push_back({n_neg > 0 ? static_cast<double>(fp) / n_neg : 0.0,
                     n_pos > 0 ? static_cast<double>(tp) / n_pos : 0.0, s});
  }
  return curve;
}

std::vector<CurvePoint> PrCurve(const std::vector<double>& scores,
                                const std::vector<int>& labels) {
  XF_CHECK_EQ(scores.size(), labels.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  int64_t n_pos = 0;
  for (int l : labels) n_pos += l;

  std::vector<CurvePoint> curve;
  int64_t tp = 0, fp = 0;
  size_t i = 0;
  while (i < order.size()) {
    double s = scores[order[i]];
    while (i < order.size() && scores[order[i]] == s) {
      if (labels[order[i]] == 1) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    double recall = n_pos > 0 ? static_cast<double>(tp) / n_pos : 0.0;
    double precision =
        (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 1.0;
    curve.push_back({recall, precision, s});
  }
  return curve;
}

std::vector<CurvePoint> ThinCurve(const std::vector<CurvePoint>& curve,
                                  size_t max_points) {
  if (curve.size() <= max_points || max_points < 2) return curve;
  std::vector<CurvePoint> out;
  out.reserve(max_points);
  double step = static_cast<double>(curve.size() - 1) /
                static_cast<double>(max_points - 1);
  for (size_t k = 0; k < max_points; ++k) {
    out.push_back(curve[static_cast<size_t>(std::lround(k * step))]);
  }
  return out;
}

double BackProjectPrecision(double sampled_precision,
                            double benign_keep_fraction) {
  XF_CHECK_GT(benign_keep_fraction, 0.0);
  if (sampled_precision <= 0.0) return 0.0;
  // On the sampled set: precision = TP / (TP + FP). In the original stream
  // each kept benign stands for 1/keep of them, so FP scales by 1/keep.
  double tp = sampled_precision;
  double fp = (1.0 - sampled_precision) / benign_keep_fraction;
  return tp / (tp + fp);
}

}  // namespace xfraud::train
