#include "xfraud/train/trainer.h"

#include <algorithm>
#include <cmath>

#include "xfraud/common/logging.h"
#include "xfraud/common/timer.h"

namespace xfraud::train {

std::vector<double> FraudProbabilities(const nn::Var& logits) {
  nn::Var probs = nn::RowSoftmax(logits);
  std::vector<double> out(probs.rows());
  for (int64_t r = 0; r < probs.rows(); ++r) {
    out[r] = probs.value().At(r, 1);
  }
  return out;
}

Trainer::Trainer(core::GnnModel* model, const sample::Sampler* sampler,
                 TrainOptions options)
    : model_(model),
      sampler_(sampler),
      options_(options),
      optimizer_(model->Parameters(),
                 nn::AdamWOptions{.lr = options.lr,
                                  .weight_decay = options.weight_decay}),
      rng_(options.seed * 0x9E3779B9ULL + 0x1234567ULL) {}

double Trainer::TrainStep(const sample::MiniBatch& batch) {
  core::ForwardOptions fwd;
  fwd.training = true;
  fwd.rng = &rng_;
  nn::Var logits = model_->Forward(batch, fwd);
  nn::Var loss =
      nn::CrossEntropy(logits, batch.target_labels, options_.class_weights);
  optimizer_.ZeroGrad();
  loss.Backward();
  optimizer_.ClipGradNorm(options_.clip);
  optimizer_.Step();
  return loss.item();
}

TrainResult Trainer::Train(const data::SimDataset& ds) {
  TrainResult result;
  std::vector<int32_t> train_nodes = ds.train_nodes;
  int stale = 0;
  double total_seconds = 0.0;

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    WallTimer timer;
    rng_.Shuffle(&train_nodes);
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (size_t begin = 0; begin < train_nodes.size();
         begin += options_.batch_size) {
      size_t end = std::min(begin + options_.batch_size, train_nodes.size());
      std::vector<int32_t> seeds(train_nodes.begin() + begin,
                                 train_nodes.begin() + end);
      sample::MiniBatch batch = sampler_->SampleBatch(ds.graph, seeds, &rng_);
      loss_sum += TrainStep(batch);
      ++batches;
    }
    double seconds = timer.ElapsedSeconds();
    total_seconds += seconds;

    EvalResult val = Evaluate(ds.graph, ds.val_nodes);
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = batches > 0 ? loss_sum / batches : 0.0;
    stats.val_auc = val.auc;
    stats.seconds = seconds;
    result.history.push_back(stats);
    if (options_.verbose) {
      XF_LOG(Info) << model_->name() << " epoch " << epoch << " loss "
                   << stats.train_loss << " val_auc " << val.auc << " ("
                   << seconds << "s)";
    }

    if (val.auc > result.best_val_auc) {
      result.best_val_auc = val.auc;
      result.best_epoch = epoch;
      stale = 0;
    } else if (++stale >= options_.patience) {
      break;
    }
  }
  if (!result.history.empty()) {
    result.mean_epoch_seconds =
        total_seconds / static_cast<double>(result.history.size());
  }
  return result;
}

EvalResult Trainer::Evaluate(const graph::HeteroGraph& g,
                             const std::vector<int32_t>& nodes,
                             int batch_size) {
  EvalResult result;
  std::vector<double> batch_secs;
  core::ForwardOptions fwd;  // inference: no dropout, no tape
  for (size_t begin = 0; begin < nodes.size(); begin += batch_size) {
    size_t end = std::min(begin + static_cast<size_t>(batch_size),
                          nodes.size());
    std::vector<int32_t> seeds(nodes.begin() + begin, nodes.begin() + end);
    WallTimer timer;
    sample::MiniBatch batch = sampler_->SampleBatch(g, seeds, &rng_);
    nn::Var logits = model_->Forward(batch, fwd);
    batch_secs.push_back(timer.ElapsedSeconds());
    std::vector<double> probs = FraudProbabilities(logits);
    result.scores.insert(result.scores.end(), probs.begin(), probs.end());
    result.labels.insert(result.labels.end(), batch.target_labels.begin(),
                         batch.target_labels.end());
  }
  if (!result.scores.empty()) {
    result.auc = RocAuc(result.scores, result.labels);
    result.ap = AveragePrecision(result.scores, result.labels);
    result.accuracy = Accuracy(result.scores, result.labels);
  }
  if (!batch_secs.empty()) {
    double mean = 0.0;
    for (double s : batch_secs) mean += s;
    mean /= batch_secs.size();
    double var = 0.0;
    for (double s : batch_secs) var += (s - mean) * (s - mean);
    var /= batch_secs.size();
    result.secs_per_batch_mean = mean;
    result.secs_per_batch_std = std::sqrt(var);
  }
  return result;
}

}  // namespace xfraud::train
