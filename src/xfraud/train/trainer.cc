#include "xfraud/train/trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <system_error>
#include <unordered_map>
#include <utility>

#include "xfraud/common/logging.h"
#include "xfraud/common/timer.h"
#include "xfraud/obs/registry.h"
#include "xfraud/obs/trace.h"
#include "xfraud/train/checkpoint.h"

namespace xfraud::train {

namespace {

// Cached global-registry handles for the per-phase epoch breakdown the
// paper's Sec. 5 efficiency story needs: where a gradient step's time goes
// (sample is recorded by the loader/sampler; forward/backward/optim here).
struct TrainerMetrics {
  obs::Histogram* forward_s;
  obs::Histogram* backward_s;
  obs::Histogram* optim_s;
  obs::Histogram* eval_forward_s;
  obs::Histogram* eval_sample_s;
  obs::Histogram* epoch_sample_s;
  obs::Histogram* epoch_compute_s;
  obs::Counter* epochs;
  obs::Counter* steps;
  obs::Gauge* last_val_auc;

  static const TrainerMetrics& Get() {
    static const TrainerMetrics m = [] {
      auto& r = obs::Registry::Global();
      return TrainerMetrics{r.histogram("trainer/forward_s"),
                            r.histogram("trainer/backward_s"),
                            r.histogram("trainer/optim_s"),
                            r.histogram("trainer/eval_forward_s"),
                            r.histogram("trainer/eval_sample_s"),
                            r.histogram("trainer/epoch_sample_s"),
                            r.histogram("trainer/epoch_compute_s"),
                            r.counter("trainer/epochs"),
                            r.counter("trainer/steps"),
                            r.gauge("trainer/last_val_auc")};
    }();
    return m;
  }
};

// Stream tags separating the trainer's independent RNG roots. Sampling and
// evaluation each get their own root split off the user seed, so drawing
// from one can never advance another.
constexpr uint64_t kSampleStreamTag = 0x5A4D504C45ULL;  // "SMPLE"
constexpr uint64_t kEvalStreamTag = 0x4556414CULL;      // "EVAL"

struct BatchTiming {
  double mean = 0.0;
  double std_dev = 0.0;
};

BatchTiming Summarize(const std::vector<double>& secs) {
  BatchTiming out;
  if (secs.empty()) return out;
  for (double s : secs) out.mean += s;
  out.mean /= secs.size();
  double var = 0.0;
  for (double s : secs) var += (s - out.mean) * (s - out.mean);
  out.std_dev = std::sqrt(var / secs.size());
  return out;
}

}  // namespace

Trainer::Trainer(core::GnnModel* model, const sample::Sampler* sampler,
                 TrainOptions options)
    : model_(model),
      sampler_(sampler),
      options_(options),
      optimizer_(model->Parameters(),
                 nn::AdamWOptions{.lr = options.lr,
                                  .weight_decay = options.weight_decay}),
      rng_(options.seed * 0x9E3779B9ULL + 0x1234567ULL),
      sample_root_(Rng::StreamSeed(options.seed, kSampleStreamTag)),
      eval_root_(Rng::StreamSeed(options.seed, kEvalStreamTag)) {}

double Trainer::TrainStep(const sample::MiniBatch& batch) {
  const TrainerMetrics& metrics = TrainerMetrics::Get();
  const bool timed = obs::IsEnabled();
  core::ForwardOptions fwd;
  fwd.training = true;
  fwd.rng = &rng_;
  WallTimer phase;
  nn::Var logits = model_->Forward(batch, fwd);
  nn::Var loss =
      nn::CrossEntropy(logits, batch.target_labels, options_.class_weights);
  if (timed) {
    metrics.forward_s->Record(phase.ElapsedSeconds());
    phase.Restart();
  }
  optimizer_.ZeroGrad();
  loss.Backward();
  if (timed) {
    metrics.backward_s->Record(phase.ElapsedSeconds());
    phase.Restart();
  }
  optimizer_.ClipGradNorm(options_.clip);
  optimizer_.Step();
  if (timed) metrics.optim_s->Record(phase.ElapsedSeconds());
  metrics.steps->Increment();
  return loss.item();
}

Status Trainer::SaveCheckpoint(int epoch,
                               const std::vector<int32_t>& train_nodes,
                               int stale, const TrainResult& result) {
  TrainerCheckpoint ckpt;
  ckpt.seed = options_.seed;
  ckpt.next_epoch = epoch + 1;
  ckpt.stale = stale;
  ckpt.best_epoch = result.best_epoch;
  ckpt.best_val_auc = result.best_val_auc;
  ckpt.rng = rng_.GetState();
  ckpt.train_node_order = train_nodes;
  ckpt.history = result.history;
  for (const nn::NamedParameter& p : model_->Parameters()) {
    ckpt.params.emplace_back(p.name, p.var.value());
  }
  ckpt.opt_m = optimizer_.first_moments();
  ckpt.opt_v = optimizer_.second_moments();
  ckpt.opt_step = optimizer_.step_count();
  return SaveTrainerCheckpoint(
      ckpt, TrainerCheckpointPath(options_.checkpoint_dir));
}

Status Trainer::TryResume(std::vector<int32_t>* train_nodes,
                          int* start_epoch, int* stale,
                          TrainResult* result) {
  Result<TrainerCheckpoint> loaded =
      LoadTrainerCheckpoint(TrainerCheckpointPath(options_.checkpoint_dir));
  if (!loaded.ok()) {
    // No checkpoint yet: a cold start under --resume is the normal first
    // run of an always-resume job. Anything else (corruption, I/O) is fatal.
    if (loaded.status().IsNotFound()) return Status::OK();
    return loaded.status();
  }
  const TrainerCheckpoint& ckpt = loaded.value();
  if (ckpt.seed != options_.seed) {
    return Status::FailedPrecondition(
        "checkpoint seed mismatch: checkpoint has " +
        std::to_string(ckpt.seed) + ", run has " +
        std::to_string(options_.seed));
  }
  std::unordered_map<std::string, const nn::Tensor*> by_name;
  for (const auto& [name, tensor] : ckpt.params) {
    by_name.emplace(name, &tensor);
  }
  for (nn::NamedParameter& p : model_->Parameters()) {
    auto it = by_name.find(p.name);
    if (it == by_name.end()) {
      return Status::Corruption("checkpoint missing parameter: " + p.name);
    }
    if (!it->second->SameShape(p.var.value())) {
      return Status::InvalidArgument("checkpoint shape mismatch for " +
                                     p.name);
    }
    p.var.mutable_value() = *it->second;
  }
  XF_RETURN_IF_ERROR(
      optimizer_.SetState(ckpt.opt_m, ckpt.opt_v, ckpt.opt_step));
  rng_.SetState(ckpt.rng);
  if (ckpt.train_node_order.size() != train_nodes->size()) {
    return Status::FailedPrecondition(
        "checkpoint train-set size mismatch: checkpoint has " +
        std::to_string(ckpt.train_node_order.size()) + " nodes, run has " +
        std::to_string(train_nodes->size()));
  }
  *train_nodes = ckpt.train_node_order;
  *start_epoch = ckpt.next_epoch;
  *stale = ckpt.stale;
  result->history = ckpt.history;
  result->best_epoch = ckpt.best_epoch;
  result->best_val_auc = ckpt.best_val_auc;
  return Status::OK();
}

TrainResult Trainer::Train(const data::SimDataset& ds) {
  TrainResult result;
  std::vector<int32_t> train_nodes = ds.train_nodes;
  int stale = 0;
  int start_epoch = 0;
  if (!options_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    if (ec) {
      result.error = Status::IoError("cannot create checkpoint dir " +
                                     options_.checkpoint_dir + ": " +
                                     ec.message());
      return result;
    }
  }
  if (!options_.checkpoint_dir.empty() && options_.resume) {
    Status s = TryResume(&train_nodes, &start_epoch, &stale, &result);
    if (!s.ok()) {
      result.error = s;
      return result;
    }
  }
  double total_seconds = 0.0;
  double total_sample = 0.0;
  double total_compute = 0.0;
  for (const EpochStats& e : result.history) {
    total_seconds += e.seconds;
    total_sample += e.sample_seconds;
    total_compute += e.compute_seconds;
  }
  sample::LoaderOptions loader_opts{.num_workers = options_.num_sample_workers,
                                    .prefetch_depth = options_.prefetch_depth,
                                    .feature_store = options_.feature_store};

  if (options_.trace) obs::SetTraceLogging(true);
  for (int epoch = start_epoch; epoch < options_.max_epochs; ++epoch) {
    obs::ScopedSpan epoch_span("trainer/epoch");
    WallTimer timer;
    rng_.Shuffle(&train_nodes);
    double loss_sum = 0.0;
    int64_t batches = 0;
    int64_t degraded = 0;
    double compute_seconds = 0.0;
    sample::BatchLoader loader(
        &ds.graph, sampler_,
        sample::BatchLoader::MakeSeedBatches(train_nodes, options_.batch_size),
        Rng::StreamSeed(sample_root_, static_cast<uint64_t>(epoch)),
        loader_opts);
    while (auto loaded = loader.Next()) {
      WallTimer step_timer;
      loss_sum += TrainStep(loaded->batch);
      compute_seconds += step_timer.ElapsedSeconds();
      ++batches;
      if (loaded->degraded) ++degraded;
    }
    result.total_batches += batches;
    result.degraded_batches += degraded;
    if (batches > 0 && static_cast<double>(degraded) /
                               static_cast<double>(batches) >
                           options_.max_degraded_frac) {
      result.error = Status::FailedPrecondition(
          "degraded-batch fraction " +
          std::to_string(static_cast<double>(degraded) /
                         static_cast<double>(batches)) +
          " exceeded --max-degraded-frac " +
          std::to_string(options_.max_degraded_frac) + " in epoch " +
          std::to_string(epoch));
      break;
    }
    double seconds = timer.ElapsedSeconds();
    total_seconds += seconds;
    total_sample += loader.total_sample_seconds();
    total_compute += compute_seconds;
    TrainerMetrics::Get().epochs->Increment();
    TrainerMetrics::Get().epoch_sample_s->Record(
        loader.total_sample_seconds());
    TrainerMetrics::Get().epoch_compute_s->Record(compute_seconds);

    EvalResult val = Evaluate(ds.graph, ds.val_nodes);
    TrainerMetrics::Get().last_val_auc->Set(val.auc);
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = batches > 0 ? loss_sum / batches : 0.0;
    stats.val_auc = val.auc;
    stats.seconds = seconds;
    stats.sample_seconds = loader.total_sample_seconds();
    stats.compute_seconds = compute_seconds;
    result.history.push_back(stats);
    if (options_.verbose) {
      XF_LOG(Info) << model_->name() << " epoch " << epoch << " loss "
                   << stats.train_loss << " val_auc " << val.auc << " ("
                   << seconds << "s)";
    }

    bool stop = false;
    if (val.auc > result.best_val_auc) {
      result.best_val_auc = val.auc;
      result.best_epoch = epoch;
      stale = 0;
    } else if (++stale >= options_.patience) {
      stop = true;
    }
    // Checkpoint after the early-stop bookkeeping so a resumed run
    // continues (or stops) with exactly the same decision state.
    if (!options_.checkpoint_dir.empty()) {
      Status s = SaveCheckpoint(epoch, train_nodes, stale, result);
      if (!s.ok()) {
        result.error = s;
        break;
      }
    }
    if (stop) break;
  }
  if (!result.history.empty()) {
    double n = static_cast<double>(result.history.size());
    result.mean_epoch_seconds = total_seconds / n;
    result.mean_epoch_sample_seconds = total_sample / n;
    result.mean_epoch_compute_seconds = total_compute / n;
  }
  return result;
}

EvalResult Trainer::Evaluate(const graph::HeteroGraph& g,
                             const std::vector<int32_t>& nodes,
                             int batch_size) {
  obs::ScopedSpan eval_span("trainer/evaluate");
  const TrainerMetrics& metrics = TrainerMetrics::Get();
  EvalResult result;
  std::vector<double> forward_secs;
  std::vector<double> sample_secs;
  core::ForwardOptions fwd;  // inference: no dropout, no tape
  sample::BatchLoader loader(
      &g, sampler_, sample::BatchLoader::MakeSeedBatches(nodes, batch_size),
      eval_root_,
      sample::LoaderOptions{.num_workers = options_.num_sample_workers,
                            .prefetch_depth = options_.prefetch_depth,
                            .feature_store = options_.feature_store});
  while (auto loaded = loader.Next()) {
    const sample::MiniBatch& batch = loaded->batch;
    WallTimer timer;
    nn::Var logits = model_->Forward(batch, fwd);
    forward_secs.push_back(timer.ElapsedSeconds());
    sample_secs.push_back(loaded->sample_seconds);
    metrics.eval_forward_s->Record(forward_secs.back());
    metrics.eval_sample_s->Record(loaded->sample_seconds);
    std::vector<double> probs = FraudProbabilities(logits);
    result.scores.insert(result.scores.end(), probs.begin(), probs.end());
    result.labels.insert(result.labels.end(), batch.target_labels.begin(),
                         batch.target_labels.end());
  }
  if (!result.scores.empty()) {
    result.auc = RocAuc(result.scores, result.labels);
    result.ap = AveragePrecision(result.scores, result.labels);
    result.accuracy = Accuracy(result.scores, result.labels);
  }
  BatchTiming forward = Summarize(forward_secs);
  result.secs_per_batch_mean = forward.mean;
  result.secs_per_batch_std = forward.std_dev;
  BatchTiming sampling = Summarize(sample_secs);
  result.sample_secs_per_batch_mean = sampling.mean;
  result.sample_secs_per_batch_std = sampling.std_dev;
  return result;
}

}  // namespace xfraud::train
