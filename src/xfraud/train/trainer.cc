#include "xfraud/train/trainer.h"

#include <algorithm>
#include <cmath>

#include "xfraud/common/logging.h"
#include "xfraud/common/timer.h"

namespace xfraud::train {

namespace {

// Stream tags separating the trainer's independent RNG roots. Sampling and
// evaluation each get their own root split off the user seed, so drawing
// from one can never advance another.
constexpr uint64_t kSampleStreamTag = 0x5A4D504C45ULL;  // "SMPLE"
constexpr uint64_t kEvalStreamTag = 0x4556414CULL;      // "EVAL"

struct BatchTiming {
  double mean = 0.0;
  double std_dev = 0.0;
};

BatchTiming Summarize(const std::vector<double>& secs) {
  BatchTiming out;
  if (secs.empty()) return out;
  for (double s : secs) out.mean += s;
  out.mean /= secs.size();
  double var = 0.0;
  for (double s : secs) var += (s - out.mean) * (s - out.mean);
  out.std_dev = std::sqrt(var / secs.size());
  return out;
}

}  // namespace

std::vector<double> FraudProbabilities(const nn::Var& logits) {
  nn::Var probs = nn::RowSoftmax(logits);
  std::vector<double> out(probs.rows());
  for (int64_t r = 0; r < probs.rows(); ++r) {
    out[r] = probs.value().At(r, 1);
  }
  return out;
}

Trainer::Trainer(core::GnnModel* model, const sample::Sampler* sampler,
                 TrainOptions options)
    : model_(model),
      sampler_(sampler),
      options_(options),
      optimizer_(model->Parameters(),
                 nn::AdamWOptions{.lr = options.lr,
                                  .weight_decay = options.weight_decay}),
      rng_(options.seed * 0x9E3779B9ULL + 0x1234567ULL),
      sample_root_(Rng::StreamSeed(options.seed, kSampleStreamTag)),
      eval_root_(Rng::StreamSeed(options.seed, kEvalStreamTag)) {}

double Trainer::TrainStep(const sample::MiniBatch& batch) {
  core::ForwardOptions fwd;
  fwd.training = true;
  fwd.rng = &rng_;
  nn::Var logits = model_->Forward(batch, fwd);
  nn::Var loss =
      nn::CrossEntropy(logits, batch.target_labels, options_.class_weights);
  optimizer_.ZeroGrad();
  loss.Backward();
  optimizer_.ClipGradNorm(options_.clip);
  optimizer_.Step();
  return loss.item();
}

TrainResult Trainer::Train(const data::SimDataset& ds) {
  TrainResult result;
  std::vector<int32_t> train_nodes = ds.train_nodes;
  int stale = 0;
  double total_seconds = 0.0;
  double total_sample = 0.0;
  double total_compute = 0.0;
  sample::LoaderOptions loader_opts{.num_workers = options_.num_sample_workers,
                                    .prefetch_depth = options_.prefetch_depth};

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    WallTimer timer;
    rng_.Shuffle(&train_nodes);
    double loss_sum = 0.0;
    int64_t batches = 0;
    double compute_seconds = 0.0;
    sample::BatchLoader loader(
        &ds.graph, sampler_,
        sample::BatchLoader::MakeSeedBatches(train_nodes, options_.batch_size),
        Rng::StreamSeed(sample_root_, static_cast<uint64_t>(epoch)),
        loader_opts);
    while (auto loaded = loader.Next()) {
      WallTimer step_timer;
      loss_sum += TrainStep(loaded->batch);
      compute_seconds += step_timer.ElapsedSeconds();
      ++batches;
    }
    double seconds = timer.ElapsedSeconds();
    total_seconds += seconds;
    total_sample += loader.total_sample_seconds();
    total_compute += compute_seconds;

    EvalResult val = Evaluate(ds.graph, ds.val_nodes);
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = batches > 0 ? loss_sum / batches : 0.0;
    stats.val_auc = val.auc;
    stats.seconds = seconds;
    stats.sample_seconds = loader.total_sample_seconds();
    stats.compute_seconds = compute_seconds;
    result.history.push_back(stats);
    if (options_.verbose) {
      XF_LOG(Info) << model_->name() << " epoch " << epoch << " loss "
                   << stats.train_loss << " val_auc " << val.auc << " ("
                   << seconds << "s)";
    }

    if (val.auc > result.best_val_auc) {
      result.best_val_auc = val.auc;
      result.best_epoch = epoch;
      stale = 0;
    } else if (++stale >= options_.patience) {
      break;
    }
  }
  if (!result.history.empty()) {
    double n = static_cast<double>(result.history.size());
    result.mean_epoch_seconds = total_seconds / n;
    result.mean_epoch_sample_seconds = total_sample / n;
    result.mean_epoch_compute_seconds = total_compute / n;
  }
  return result;
}

EvalResult Trainer::Evaluate(const graph::HeteroGraph& g,
                             const std::vector<int32_t>& nodes,
                             int batch_size) {
  EvalResult result;
  std::vector<double> forward_secs;
  std::vector<double> sample_secs;
  core::ForwardOptions fwd;  // inference: no dropout, no tape
  sample::BatchLoader loader(
      &g, sampler_, sample::BatchLoader::MakeSeedBatches(nodes, batch_size),
      eval_root_,
      sample::LoaderOptions{.num_workers = options_.num_sample_workers,
                            .prefetch_depth = options_.prefetch_depth});
  while (auto loaded = loader.Next()) {
    const sample::MiniBatch& batch = loaded->batch;
    WallTimer timer;
    nn::Var logits = model_->Forward(batch, fwd);
    forward_secs.push_back(timer.ElapsedSeconds());
    sample_secs.push_back(loaded->sample_seconds);
    std::vector<double> probs = FraudProbabilities(logits);
    result.scores.insert(result.scores.end(), probs.begin(), probs.end());
    result.labels.insert(result.labels.end(), batch.target_labels.begin(),
                         batch.target_labels.end());
  }
  if (!result.scores.empty()) {
    result.auc = RocAuc(result.scores, result.labels);
    result.ap = AveragePrecision(result.scores, result.labels);
    result.accuracy = Accuracy(result.scores, result.labels);
  }
  BatchTiming forward = Summarize(forward_secs);
  result.secs_per_batch_mean = forward.mean;
  result.secs_per_batch_std = forward.std_dev;
  BatchTiming sampling = Summarize(sample_secs);
  result.sample_secs_per_batch_mean = sampling.mean;
  result.sample_secs_per_batch_std = sampling.std_dev;
  return result;
}

}  // namespace xfraud::train
