#include "xfraud/train/trainer.h"

#include <algorithm>
#include <cmath>

#include "xfraud/common/logging.h"
#include "xfraud/common/timer.h"
#include "xfraud/obs/registry.h"
#include "xfraud/obs/trace.h"

namespace xfraud::train {

namespace {

// Cached global-registry handles for the per-phase epoch breakdown the
// paper's Sec. 5 efficiency story needs: where a gradient step's time goes
// (sample is recorded by the loader/sampler; forward/backward/optim here).
struct TrainerMetrics {
  obs::Histogram* forward_s;
  obs::Histogram* backward_s;
  obs::Histogram* optim_s;
  obs::Histogram* eval_forward_s;
  obs::Histogram* eval_sample_s;
  obs::Histogram* epoch_sample_s;
  obs::Histogram* epoch_compute_s;
  obs::Counter* epochs;
  obs::Counter* steps;
  obs::Gauge* last_val_auc;

  static const TrainerMetrics& Get() {
    static const TrainerMetrics m = [] {
      auto& r = obs::Registry::Global();
      return TrainerMetrics{r.histogram("trainer/forward_s"),
                            r.histogram("trainer/backward_s"),
                            r.histogram("trainer/optim_s"),
                            r.histogram("trainer/eval_forward_s"),
                            r.histogram("trainer/eval_sample_s"),
                            r.histogram("trainer/epoch_sample_s"),
                            r.histogram("trainer/epoch_compute_s"),
                            r.counter("trainer/epochs"),
                            r.counter("trainer/steps"),
                            r.gauge("trainer/last_val_auc")};
    }();
    return m;
  }
};

// Stream tags separating the trainer's independent RNG roots. Sampling and
// evaluation each get their own root split off the user seed, so drawing
// from one can never advance another.
constexpr uint64_t kSampleStreamTag = 0x5A4D504C45ULL;  // "SMPLE"
constexpr uint64_t kEvalStreamTag = 0x4556414CULL;      // "EVAL"

struct BatchTiming {
  double mean = 0.0;
  double std_dev = 0.0;
};

BatchTiming Summarize(const std::vector<double>& secs) {
  BatchTiming out;
  if (secs.empty()) return out;
  for (double s : secs) out.mean += s;
  out.mean /= secs.size();
  double var = 0.0;
  for (double s : secs) var += (s - out.mean) * (s - out.mean);
  out.std_dev = std::sqrt(var / secs.size());
  return out;
}

}  // namespace

std::vector<double> FraudProbabilities(const nn::Var& logits) {
  nn::Var probs = nn::RowSoftmax(logits);
  std::vector<double> out(probs.rows());
  for (int64_t r = 0; r < probs.rows(); ++r) {
    out[r] = probs.value().At(r, 1);
  }
  return out;
}

Trainer::Trainer(core::GnnModel* model, const sample::Sampler* sampler,
                 TrainOptions options)
    : model_(model),
      sampler_(sampler),
      options_(options),
      optimizer_(model->Parameters(),
                 nn::AdamWOptions{.lr = options.lr,
                                  .weight_decay = options.weight_decay}),
      rng_(options.seed * 0x9E3779B9ULL + 0x1234567ULL),
      sample_root_(Rng::StreamSeed(options.seed, kSampleStreamTag)),
      eval_root_(Rng::StreamSeed(options.seed, kEvalStreamTag)) {}

double Trainer::TrainStep(const sample::MiniBatch& batch) {
  const TrainerMetrics& metrics = TrainerMetrics::Get();
  const bool timed = obs::IsEnabled();
  core::ForwardOptions fwd;
  fwd.training = true;
  fwd.rng = &rng_;
  WallTimer phase;
  nn::Var logits = model_->Forward(batch, fwd);
  nn::Var loss =
      nn::CrossEntropy(logits, batch.target_labels, options_.class_weights);
  if (timed) {
    metrics.forward_s->Record(phase.ElapsedSeconds());
    phase.Restart();
  }
  optimizer_.ZeroGrad();
  loss.Backward();
  if (timed) {
    metrics.backward_s->Record(phase.ElapsedSeconds());
    phase.Restart();
  }
  optimizer_.ClipGradNorm(options_.clip);
  optimizer_.Step();
  if (timed) metrics.optim_s->Record(phase.ElapsedSeconds());
  metrics.steps->Increment();
  return loss.item();
}

TrainResult Trainer::Train(const data::SimDataset& ds) {
  TrainResult result;
  std::vector<int32_t> train_nodes = ds.train_nodes;
  int stale = 0;
  double total_seconds = 0.0;
  double total_sample = 0.0;
  double total_compute = 0.0;
  sample::LoaderOptions loader_opts{.num_workers = options_.num_sample_workers,
                                    .prefetch_depth = options_.prefetch_depth};

  if (options_.trace) obs::SetTraceLogging(true);
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    obs::ScopedSpan epoch_span("trainer/epoch");
    WallTimer timer;
    rng_.Shuffle(&train_nodes);
    double loss_sum = 0.0;
    int64_t batches = 0;
    double compute_seconds = 0.0;
    sample::BatchLoader loader(
        &ds.graph, sampler_,
        sample::BatchLoader::MakeSeedBatches(train_nodes, options_.batch_size),
        Rng::StreamSeed(sample_root_, static_cast<uint64_t>(epoch)),
        loader_opts);
    while (auto loaded = loader.Next()) {
      WallTimer step_timer;
      loss_sum += TrainStep(loaded->batch);
      compute_seconds += step_timer.ElapsedSeconds();
      ++batches;
    }
    double seconds = timer.ElapsedSeconds();
    total_seconds += seconds;
    total_sample += loader.total_sample_seconds();
    total_compute += compute_seconds;
    TrainerMetrics::Get().epochs->Increment();
    TrainerMetrics::Get().epoch_sample_s->Record(
        loader.total_sample_seconds());
    TrainerMetrics::Get().epoch_compute_s->Record(compute_seconds);

    EvalResult val = Evaluate(ds.graph, ds.val_nodes);
    TrainerMetrics::Get().last_val_auc->Set(val.auc);
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = batches > 0 ? loss_sum / batches : 0.0;
    stats.val_auc = val.auc;
    stats.seconds = seconds;
    stats.sample_seconds = loader.total_sample_seconds();
    stats.compute_seconds = compute_seconds;
    result.history.push_back(stats);
    if (options_.verbose) {
      XF_LOG(Info) << model_->name() << " epoch " << epoch << " loss "
                   << stats.train_loss << " val_auc " << val.auc << " ("
                   << seconds << "s)";
    }

    if (val.auc > result.best_val_auc) {
      result.best_val_auc = val.auc;
      result.best_epoch = epoch;
      stale = 0;
    } else if (++stale >= options_.patience) {
      break;
    }
  }
  if (!result.history.empty()) {
    double n = static_cast<double>(result.history.size());
    result.mean_epoch_seconds = total_seconds / n;
    result.mean_epoch_sample_seconds = total_sample / n;
    result.mean_epoch_compute_seconds = total_compute / n;
  }
  return result;
}

EvalResult Trainer::Evaluate(const graph::HeteroGraph& g,
                             const std::vector<int32_t>& nodes,
                             int batch_size) {
  obs::ScopedSpan eval_span("trainer/evaluate");
  const TrainerMetrics& metrics = TrainerMetrics::Get();
  EvalResult result;
  std::vector<double> forward_secs;
  std::vector<double> sample_secs;
  core::ForwardOptions fwd;  // inference: no dropout, no tape
  sample::BatchLoader loader(
      &g, sampler_, sample::BatchLoader::MakeSeedBatches(nodes, batch_size),
      eval_root_,
      sample::LoaderOptions{.num_workers = options_.num_sample_workers,
                            .prefetch_depth = options_.prefetch_depth});
  while (auto loaded = loader.Next()) {
    const sample::MiniBatch& batch = loaded->batch;
    WallTimer timer;
    nn::Var logits = model_->Forward(batch, fwd);
    forward_secs.push_back(timer.ElapsedSeconds());
    sample_secs.push_back(loaded->sample_seconds);
    metrics.eval_forward_s->Record(forward_secs.back());
    metrics.eval_sample_s->Record(loaded->sample_seconds);
    std::vector<double> probs = FraudProbabilities(logits);
    result.scores.insert(result.scores.end(), probs.begin(), probs.end());
    result.labels.insert(result.labels.end(), batch.target_labels.begin(),
                         batch.target_labels.end());
  }
  if (!result.scores.empty()) {
    result.auc = RocAuc(result.scores, result.labels);
    result.ap = AveragePrecision(result.scores, result.labels);
    result.accuracy = Accuracy(result.scores, result.labels);
  }
  BatchTiming forward = Summarize(forward_secs);
  result.secs_per_batch_mean = forward.mean;
  result.secs_per_batch_std = forward.std_dev;
  BatchTiming sampling = Summarize(sample_secs);
  result.sample_secs_per_batch_mean = sampling.mean;
  result.sample_secs_per_batch_std = sampling.std_dev;
  return result;
}

}  // namespace xfraud::train
