#ifndef XFRAUD_TRAIN_TRAINER_H_
#define XFRAUD_TRAIN_TRAINER_H_

#include <string>
#include <vector>

#include "xfraud/common/status.h"
#include "xfraud/core/gnn_model.h"
#include "xfraud/data/generator.h"
#include "xfraud/nn/optim.h"
#include "xfraud/sample/batch_loader.h"
#include "xfraud/sample/sampler.h"
#include "xfraud/train/metrics.h"

namespace xfraud::train {

/// Training hyperparameters. The paper's protocol (Appendix C): adamw,
/// clip=0.25, max_epochs=128, patience=32 — scaled down for CPU benches.
struct TrainOptions {
  int max_epochs = 30;
  int patience = 10;          // early stop on val AUC
  int batch_size = 128;       // seed transactions per mini-batch
  float lr = 1e-3f;
  float weight_decay = 0.01f;
  float clip = 0.25f;
  /// Optional class weights {w_benign, w_fraud} for the imbalanced CE loss.
  std::vector<float> class_weights;
  uint64_t seed = 0;
  bool verbose = false;
  /// Sampler worker threads prefetching mini-batches ahead of the gradient
  /// step (0 = sample inline). Any value yields bit-identical training:
  /// batch contents depend only on (seed, epoch, batch index).
  int num_sample_workers = 0;
  /// How many ready batches the sampler workers may buffer (backpressure
  /// bound of the pipeline queue).
  int prefetch_depth = 4;
  /// Observability: print obs::ScopedSpan trace lines (per epoch and per
  /// evaluation) to stderr. Phase timings (sample/forward/backward/optim)
  /// always accumulate in obs::Registry::Global() histograms unless the
  /// whole subsystem is switched off with obs::SetEnabled(false).
  bool trace = false;
  /// When set, batch feature rows are served from this KV-backed store
  /// (configure its RetryPolicy for transient-fault tolerance); batches
  /// whose reads exhaust retries are zero-imputed and flagged degraded
  /// instead of aborting the epoch. See LoaderOptions::feature_store.
  const kv::FeatureStore* feature_store = nullptr;
  /// Degraded-batch budget per epoch: if more than this fraction of an
  /// epoch's batches are degraded, the run fails (TrainResult::error =
  /// FailedPrecondition) — silent mass imputation would train on zeros.
  /// The default (1.0) never fails the run.
  double max_degraded_frac = 1.0;
  /// Epoch-granular checkpoint/resume. With `checkpoint_dir` set, a
  /// CRC-verified checkpoint is atomically written after every epoch; with
  /// `resume` also set, Train() restores the latest checkpoint (if one
  /// exists) and continues — bit-identical to a run that never stopped.
  std::string checkpoint_dir;
  bool resume = false;
};

/// Model scores on an evaluation split.
struct EvalResult {
  std::vector<double> scores;  // fraud probability per node
  std::vector<int> labels;
  double auc = 0.0;
  double ap = 0.0;
  double accuracy = 0.0;
  /// Mean / stddev wall-clock seconds of the model forward per evaluation
  /// batch (Table 3's "inference time (s/batch)"). Neighbourhood sampling
  /// is reported separately below — lumping it in here overstated
  /// inference cost by whatever the sampler happened to cost.
  double secs_per_batch_mean = 0.0;
  double secs_per_batch_std = 0.0;
  /// Mean / stddev wall-clock seconds of neighbourhood sampling per batch.
  double sample_secs_per_batch_mean = 0.0;
  double sample_secs_per_batch_std = 0.0;
};

/// Per-epoch training trace (Figure 14's convergence curves).
struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double val_auc = 0.0;
  double seconds = 0.0;          // measured wall-clock of the epoch
  double sample_seconds = 0.0;   // sampling cost, summed where it ran
  double compute_seconds = 0.0;  // forward+backward+step cost
};

struct TrainResult {
  std::vector<EpochStats> history;
  double best_val_auc = 0.0;
  int best_epoch = -1;
  double mean_epoch_seconds = 0.0;
  /// Mean per-epoch sampling / gradient-compute cost (components of
  /// mean_epoch_seconds; with sampler workers they overlap).
  double mean_epoch_sample_seconds = 0.0;
  double mean_epoch_compute_seconds = 0.0;
  /// Degraded-mode accounting (KV feature path): batches that trained on
  /// partially zero-imputed features, out of all batches drawn.
  int64_t degraded_batches = 0;
  int64_t total_batches = 0;
  /// OK unless the run aborted early: the degraded-batch fraction exceeded
  /// max_degraded_frac (FailedPrecondition), or checkpoint I/O failed.
  Status error;
};

/// Mini-batch trainer for any GnnModel: per epoch, shuffles the training
/// seeds, draws neighbourhoods through a sample::BatchLoader pipeline
/// (num_sample_workers prefetching threads; 0 = inline), and optimizes the
/// cross entropy of the risk score (paper eq. 11) with AdamW + gradient
/// clipping.
class Trainer {
 public:
  Trainer(core::GnnModel* model, const sample::Sampler* sampler,
          TrainOptions options);

  /// Trains on ds.train_nodes with early stopping on ds.val_nodes.
  TrainResult Train(const data::SimDataset& ds);

  /// Scores `nodes`, reporting metrics and per-batch sampling/inference
  /// timings. Sampling draws from an RNG stream forked off the seed, never
  /// from the training stream, so how often you evaluate cannot change the
  /// training trajectory, and repeated calls are identical.
  EvalResult Evaluate(const graph::HeteroGraph& g,
                      const std::vector<int32_t>& nodes, int batch_size = 640);

  /// One gradient step on an explicit batch; returns the loss. Exposed for
  /// the distributed trainer, which owns its own step loop.
  double TrainStep(const sample::MiniBatch& batch);

  nn::AdamW& optimizer() { return optimizer_; }
  core::GnnModel* model() { return model_; }

 private:
  /// Writes the post-epoch checkpoint (atomic + CRC) into checkpoint_dir.
  Status SaveCheckpoint(int epoch, const std::vector<int32_t>& train_nodes,
                        int stale, const TrainResult& result);
  /// Restores the checkpoint_dir checkpoint if resume is set and one
  /// exists. Outputs the epoch to continue from, the early-stop counter and
  /// the shuffled train-node order; OK + *start_epoch == 0 when starting
  /// cold.
  Status TryResume(std::vector<int32_t>* train_nodes, int* start_epoch,
                   int* stale, TrainResult* result);

  core::GnnModel* model_;
  const sample::Sampler* sampler_;
  TrainOptions options_;
  nn::AdamW optimizer_;
  /// Training stream: epoch shuffles and dropout. Sampling uses per-batch
  /// streams split off `sample_root_` (see BatchLoader), and evaluation
  /// uses `eval_root_`, so the three never perturb each other.
  xfraud::Rng rng_;
  uint64_t sample_root_;
  uint64_t eval_root_;
};

/// Fraud probabilities (softmax of the logits' fraud column). Lives in
/// core:: now that the serving path needs it below train's layer; this
/// alias keeps existing train-side callers working.
inline std::vector<double> FraudProbabilities(const nn::Var& logits) {
  return core::FraudProbabilities(logits);
}

}  // namespace xfraud::train

#endif  // XFRAUD_TRAIN_TRAINER_H_
