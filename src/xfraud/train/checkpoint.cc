#include "xfraud/train/checkpoint.h"

#include <cstring>
#include <sstream>

#include "xfraud/common/atomic_file.h"

namespace xfraud::train {

namespace {

constexpr char kMagic[4] = {'X', 'F', 'T', 'C'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len) || len > (1u << 20)) return false;
  s->resize(len);
  in.read(s->data(), len);
  return static_cast<bool>(in);
}

void WriteTensor(std::ostream& out, const nn::Tensor& t) {
  WritePod(out, t.rows());
  WritePod(out, t.cols());
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
}

bool ReadTensor(std::istream& in, nn::Tensor* t) {
  int64_t rows = 0, cols = 0;
  if (!ReadPod(in, &rows) || !ReadPod(in, &cols) || rows < 0 || cols < 0) {
    return false;
  }
  *t = nn::Tensor(rows, cols);
  in.read(reinterpret_cast<char*>(t->data()),
          static_cast<std::streamsize>(rows * cols * sizeof(float)));
  return static_cast<bool>(in);
}

}  // namespace

std::string TrainerCheckpointPath(const std::string& dir) {
  return dir + "/trainer.ckpt";
}

Status SaveTrainerCheckpoint(const TrainerCheckpoint& ckpt,
                             const std::string& path) {
  std::ostringstream out;
  out.write(kMagic, 4);
  WritePod(out, kVersion);
  WritePod(out, ckpt.seed);
  WritePod(out, ckpt.next_epoch);
  WritePod(out, ckpt.stale);
  WritePod(out, ckpt.best_epoch);
  WritePod(out, ckpt.best_val_auc);
  for (uint64_t s : ckpt.rng.s) WritePod(out, s);
  WritePod(out, static_cast<uint8_t>(ckpt.rng.has_cached_gaussian ? 1 : 0));
  WritePod(out, ckpt.rng.cached_gaussian);

  WritePod(out, static_cast<int64_t>(ckpt.train_node_order.size()));
  out.write(reinterpret_cast<const char*>(ckpt.train_node_order.data()),
            static_cast<std::streamsize>(ckpt.train_node_order.size() *
                                         sizeof(int32_t)));

  WritePod(out, static_cast<int64_t>(ckpt.history.size()));
  for (const EpochStats& e : ckpt.history) {
    WritePod(out, e.epoch);
    WritePod(out, e.train_loss);
    WritePod(out, e.val_auc);
    WritePod(out, e.seconds);
    WritePod(out, e.sample_seconds);
    WritePod(out, e.compute_seconds);
  }

  if (ckpt.opt_m.size() != ckpt.params.size() ||
      ckpt.opt_v.size() != ckpt.params.size()) {
    return Status::InvalidArgument(
        "checkpoint optimizer state count != parameter count");
  }
  WritePod(out, static_cast<int64_t>(ckpt.params.size()));
  for (size_t i = 0; i < ckpt.params.size(); ++i) {
    WriteString(out, ckpt.params[i].first);
    WriteTensor(out, ckpt.params[i].second);
    WriteTensor(out, ckpt.opt_m[i]);
    WriteTensor(out, ckpt.opt_v[i]);
  }
  WritePod(out, ckpt.opt_step);
  return AtomicWriteFileWithCrc(path, out.str());
}

Result<TrainerCheckpoint> LoadTrainerCheckpoint(const std::string& path) {
  Result<std::string> raw = ReadFileVerifyCrc(path);
  if (!raw.ok()) return raw.status();
  std::istringstream in(std::move(raw).value());

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad trainer checkpoint magic: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::Corruption("unsupported trainer checkpoint version in " +
                              path);
  }
  TrainerCheckpoint ckpt;
  uint8_t has_gaussian = 0;
  if (!ReadPod(in, &ckpt.seed) || !ReadPod(in, &ckpt.next_epoch) ||
      !ReadPod(in, &ckpt.stale) || !ReadPod(in, &ckpt.best_epoch) ||
      !ReadPod(in, &ckpt.best_val_auc)) {
    return Status::Corruption("truncated trainer checkpoint header: " + path);
  }
  for (uint64_t& s : ckpt.rng.s) {
    if (!ReadPod(in, &s)) {
      return Status::Corruption("truncated rng state in " + path);
    }
  }
  if (!ReadPod(in, &has_gaussian) ||
      !ReadPod(in, &ckpt.rng.cached_gaussian)) {
    return Status::Corruption("truncated rng state in " + path);
  }
  ckpt.rng.has_cached_gaussian = has_gaussian != 0;

  int64_t node_count = 0;
  if (!ReadPod(in, &node_count) || node_count < 0) {
    return Status::Corruption("bad train-node count in " + path);
  }
  ckpt.train_node_order.resize(static_cast<size_t>(node_count));
  in.read(reinterpret_cast<char*>(ckpt.train_node_order.data()),
          static_cast<std::streamsize>(node_count * sizeof(int32_t)));
  if (!in) {
    return Status::Corruption("truncated train-node order in " + path);
  }

  int64_t history_count = 0;
  if (!ReadPod(in, &history_count) || history_count < 0) {
    return Status::Corruption("bad history count in " + path);
  }
  ckpt.history.resize(static_cast<size_t>(history_count));
  for (EpochStats& e : ckpt.history) {
    if (!ReadPod(in, &e.epoch) || !ReadPod(in, &e.train_loss) ||
        !ReadPod(in, &e.val_auc) || !ReadPod(in, &e.seconds) ||
        !ReadPod(in, &e.sample_seconds) || !ReadPod(in, &e.compute_seconds)) {
      return Status::Corruption("truncated history in " + path);
    }
  }

  int64_t param_count = 0;
  if (!ReadPod(in, &param_count) || param_count < 0) {
    return Status::Corruption("bad parameter count in " + path);
  }
  ckpt.params.resize(static_cast<size_t>(param_count));
  ckpt.opt_m.resize(static_cast<size_t>(param_count));
  ckpt.opt_v.resize(static_cast<size_t>(param_count));
  for (int64_t i = 0; i < param_count; ++i) {
    if (!ReadString(in, &ckpt.params[i].first) ||
        !ReadTensor(in, &ckpt.params[i].second) ||
        !ReadTensor(in, &ckpt.opt_m[i]) || !ReadTensor(in, &ckpt.opt_v[i])) {
      return Status::Corruption("truncated parameter block in " + path);
    }
  }
  if (!ReadPod(in, &ckpt.opt_step) || ckpt.opt_step < 0) {
    return Status::Corruption("bad optimizer step count in " + path);
  }
  return ckpt;
}

}  // namespace xfraud::train
