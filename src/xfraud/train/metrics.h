#ifndef XFRAUD_TRAIN_METRICS_H_
#define XFRAUD_TRAIN_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xfraud::train {

/// Binary-classification metrics used across the paper's evaluation
/// (Tables 3, 7, 14-19; Figures 8, 9, 15). Scores are fraud probabilities,
/// labels are 0 (benign) / 1 (fraud).

/// Area under the ROC curve via the Mann-Whitney U statistic with midrank
/// tie handling. Returns 0.5 when either class is absent.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels);

/// Average precision (area under the PR curve, step interpolation). Tied
/// scores are processed as one block with the block-end precision, so the
/// value is a pure function of the (score, label) multiset — identical for
/// any permutation of the inputs.
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& labels);

/// Fraction of correct predictions at `threshold`. Returns 0.0 on empty
/// input (an empty evaluation split degrades gracefully).
double Accuracy(const std::vector<double>& scores,
                const std::vector<int>& labels, double threshold = 0.5);

/// Confusion-matrix rates at one score threshold (prediction = score >= t).
struct ThresholdMetrics {
  double threshold = 0.0;
  int64_t tp = 0, fp = 0, tn = 0, fn = 0;
  double tpr = 0.0;  // recall
  double tnr = 0.0;
  double fpr = 0.0;
  double fnr = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  /// True when at least one score reaches the threshold (Tables 15-19 print
  /// "-" otherwise).
  bool any_predicted_positive = false;
};

/// On empty input returns the zero-initialized struct (counts 0, rates 0.0,
/// any_predicted_positive false) rather than crashing.
ThresholdMetrics MetricsAtThreshold(const std::vector<double>& scores,
                                    const std::vector<int>& labels,
                                    double threshold);

/// One point of an ROC or PR curve.
struct CurvePoint {
  double x = 0.0;  // FPR (ROC) or recall (PR)
  double y = 0.0;  // TPR (ROC) or precision (PR)
  double threshold = 0.0;
};

/// Full ROC curve (one point per distinct score, plus the endpoints),
/// ordered by increasing FPR.
std::vector<CurvePoint> RocCurve(const std::vector<double>& scores,
                                 const std::vector<int>& labels);

/// Full PR curve ordered by increasing recall.
std::vector<CurvePoint> PrCurve(const std::vector<double>& scores,
                                const std::vector<int>& labels);

/// Downsamples a curve to ~`max_points` evenly spaced points for printing.
std::vector<CurvePoint> ThinCurve(const std::vector<CurvePoint>& curve,
                                  size_t max_points);

/// Appendix H.4: projects a precision measured on the *downsampled* label
/// set (all frauds kept, `benign_keep_fraction` of benign kept) back to the
/// pre-sampling stream, where every surviving false positive stands for
/// 1/keep_fraction benign transactions.
double BackProjectPrecision(double sampled_precision,
                            double benign_keep_fraction);

}  // namespace xfraud::train

#endif  // XFRAUD_TRAIN_METRICS_H_
