#ifndef XFRAUD_FAULT_FAULT_INJECTOR_H_
#define XFRAUD_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "xfraud/fault/fault_plan.h"

namespace xfraud::fault {

/// Thrown by fault decorators to simulate a process crash (a sampler worker
/// dying mid-batch). Distinct from CheckError so tests can tell an injected
/// crash apart from a real contract violation.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Turns a FaultPlan into a deterministic decision sequence. The fate of KV
/// op number i is a pure function of (plan.seed, i) — two injectors built
/// from the same plan make identical decisions in the same order, so any
/// failure found under chaos testing replays exactly.
///
/// Thread-safe: the op counter is atomic and each decision derives a
/// private Rng from Rng::StreamSeed(plan.seed ^ site_tag, op).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  enum class KvFault { kNone, kIoError, kCorruption, kTornWrite };

  /// Decides the fate of the next KV operation. `latency_s` (may be null)
  /// receives the extra latency to add before serving the op (0 if none);
  /// latency composes with errors — a slow failing disk is the common case.
  /// kTornWrite only applies to writes (a read-path decorator treats it as
  /// kNone): the Put persists a prefix of its value and reports IoError,
  /// the crash-during-write shape the WAL's CRC framing must absorb.
  KvFault NextKvFault(double* latency_s);

  /// Seconds the background compactor should stall before its next cycle
  /// (0 if the plan doesn't stall compaction). Deterministic — every cycle
  /// pays the same planned pause.
  double NextCompactionStall();

  /// Position-based verdict for one op on a store sitting at
  /// (replica_id, shard_id) in a serving topology (-1 for "not positioned").
  /// Returns true when the plan kills this replica or its whole shard (the
  /// op must fail), and adds the plan's slow-replica latency to *latency_s
  /// (may be null). Unlike NextKvFault this is not randomized — a dead
  /// replica is dead for every op, which is what failover tests need.
  bool NextReplicaFault(int replica_id, int shard_id, double* latency_s);

  /// True exactly at the planned (worker, epoch, step) kill point.
  bool ShouldKillWorker(int worker, int epoch, int64_t step) const {
    return worker == plan_.kill_worker && epoch == plan_.kill_epoch &&
           step == plan_.kill_step;
  }

  /// True for the planned sampler crash call (0-based call index).
  bool ShouldCrashSampler(int64_t call_index) const {
    return plan_.crash_batch >= 0 && call_index == plan_.crash_batch;
  }

  /// Claims the next sampler-call index (used by FaultySampler).
  int64_t NextSamplerCall() { return sampler_calls_.fetch_add(1); }

  /// True exactly at the planned shard-server self-kill point: this server
  /// hosts replica `replica` and is handling its own score request number
  /// `request_index` (0-based per-process count, so the respawned process —
  /// launched with the kill suppressed — never re-fires it).
  bool ShouldKillServer(int replica, int64_t request_index) const {
    return plan_.kill_server >= 0 && replica == plan_.kill_server &&
           request_index == plan_.kill_server_request;
  }

  /// Claims the next serve-tier wire-frame index (the router counts every
  /// request frame it sends).
  int64_t NextWireFrame() { return wire_frames_.fetch_add(1); }

  /// True for the planned wire corruption (0-based frame index). The
  /// sender flips one payload byte AFTER sealing the frame CRC
  /// (dist::SendFrameCorrupting); the receiver must report Corruption.
  bool ShouldCorruptFrame(int64_t frame_index) {
    const bool hit =
        plan_.corrupt_frame >= 0 && frame_index == plan_.corrupt_frame;
    if (hit) RecordFrameCorruption();
    return hit;
  }

  /// Deterministic payload byte to flip for frame `frame_index` (derived
  /// from the plan seed, so a replay damages the identical bit).
  int64_t CorruptByteFor(int64_t frame_index, size_t payload_bytes) const;

  const FaultPlan& plan() const { return plan_; }

  /// Totals for tests and reporting.
  int64_t injected_io_errors() const { return injected_io_errors_.load(); }
  int64_t injected_corruptions() const {
    return injected_corruptions_.load();
  }
  int64_t injected_latencies() const { return injected_latencies_.load(); }
  int64_t injected_replica_failures() const {
    return injected_replica_failures_.load();
  }
  int64_t injected_replica_slowdowns() const {
    return injected_replica_slowdowns_.load();
  }
  int64_t injected_torn_writes() const { return injected_torn_writes_.load(); }
  int64_t injected_compaction_stalls() const {
    return injected_compaction_stalls_.load();
  }
  int64_t injected_frame_corruptions() const {
    return injected_frame_corruptions_.load();
  }

 private:
  void RecordFrameCorruption();

  FaultPlan plan_;
  std::atomic<int64_t> kv_ops_{0};
  std::atomic<int64_t> sampler_calls_{0};
  std::atomic<int64_t> wire_frames_{0};
  std::atomic<int64_t> injected_frame_corruptions_{0};
  std::atomic<int64_t> injected_io_errors_{0};
  std::atomic<int64_t> injected_corruptions_{0};
  std::atomic<int64_t> injected_latencies_{0};
  std::atomic<int64_t> injected_replica_failures_{0};
  std::atomic<int64_t> injected_replica_slowdowns_{0};
  std::atomic<int64_t> injected_torn_writes_{0};
  std::atomic<int64_t> injected_compaction_stalls_{0};
};

/// Dies by SIGKILL, exactly like a machine loss: no destructors, no atexit,
/// no flushes. The process-cluster launcher (dist/launcher.h) observes the
/// signal in waitpid and restarts the rank. Used by the multi-process dist
/// worker at its planned ShouldKillWorker point; never returns.
[[noreturn]] void KillCurrentProcess();

}  // namespace xfraud::fault

#endif  // XFRAUD_FAULT_FAULT_INJECTOR_H_
