#include "xfraud/fault/faulty_sampler.h"

#include <string>

namespace xfraud::fault {

graph::Subgraph FaultySampler::Sample(const graph::HeteroGraph& g,
                                      const std::vector<int32_t>& seeds,
                                      xfraud::Rng* rng) const {
  const int64_t call = injector_->NextSamplerCall();
  if (injector_->ShouldCrashSampler(call)) {
    throw InjectedCrash("injected sampler crash on call " +
                        std::to_string(call));
  }
  return inner_->Sample(g, seeds, rng);
}

}  // namespace xfraud::fault
