#ifndef XFRAUD_FAULT_FAULT_PLAN_H_
#define XFRAUD_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "xfraud/common/status.h"

namespace xfraud::fault {

/// Declarative description of every fault a run should experience. The plan
/// is pure data; a FaultInjector turns it into a deterministic decision
/// sequence (seeded through Rng::StreamSeed), so the exact same failures
/// replay on every run with the same plan — a flaky-looking failure under
/// chaos testing is reproducible by rerunning with the printed plan string.
///
/// Spec grammar (comma-separated key=value, all keys optional):
///   seed=<u64>              decision-stream seed (default 1)
///   kv_error_rate=<f>       P(injected IoError) per KV op
///   kv_corrupt_rate=<f>     P(injected Corruption) per KV op
///   kv_latency_rate=<f>     P(added latency) per KV op
///   kv_latency_s=<f>        added latency when it fires (seconds)
///   kill_worker=<w>@<e>:<s> kill DDP worker w at epoch e, step s
///   crash_batch=<n>         sampler throws on its n-th SampleBatch call
///   kill_replica=<r>        every op on KV replica r fails (all shards)
///   kill_shard=<s>          every op on all replicas of shard s fails
///   slow_replica=<r>@<sec>  every op on replica r takes +<sec> latency
///   torn_write=<f>          P(a Put persists only a prefix, then errors)
///   stall_compaction=<sec>  background compaction pauses <sec> per cycle
///   kill_server=<r>[@<n>]   the replica-r shard-server process of every
///                           shard SIGKILLs itself on its n-th score
///                           request (default n=0) — a real process death
///                           the serve::Supervisor must absorb
///   corrupt_frame=<n>       flip one payload byte of the n-th serve-tier
///                           wire frame the router sends (the receiver must
///                           detect it via the frame payload CRC)
///
/// Example: "seed=7,kv_error_rate=0.05,kill_worker=1@0:3"
struct FaultPlan {
  uint64_t seed = 1;
  double kv_error_rate = 0.0;
  double kv_corrupt_rate = 0.0;
  double kv_latency_rate = 0.0;
  double kv_latency_s = 0.0;
  int kill_worker = -1;  // -1: no kill
  int kill_epoch = 0;
  int64_t kill_step = 0;
  int64_t crash_batch = -1;  // -1: no sampler crash
  /// Replica-level serving faults. They only bite on FaultyKvStore
  /// instances constructed with a replica/shard position (the serving
  /// topology); plain training-path decorators have position -1 and are
  /// unaffected, so a global chaos plan doesn't break non-replicated runs.
  int kill_replica = -1;            // -1: no replica kill
  int kill_shard = -1;              // -1: no shard kill
  int slow_replica = -1;            // -1: no slow replica
  double slow_replica_latency_s = 0.0;
  /// P(a Put writes a prefix of its value and then reports IoError) — the
  /// canonical crash-during-write shape the WAL's CRC must absorb.
  double torn_write_rate = 0.0;
  /// Seconds the background compactor stalls before each cycle (models a
  /// GC pause / slow disk holding the GC floor back while writers advance).
  double stall_compaction_s = 0.0;
  /// Multi-process serving faults (DESIGN.md §16). kill_server is a REAL
  /// SIGKILL: the replica-`kill_server` shard-server process of every shard
  /// kills itself on score request number kill_server_request (its own
  /// 0-based count); the supervisor observes the death and respawns it.
  int kill_server = -1;  // -1: no server kill
  int64_t kill_server_request = 0;
  /// 0-based index of the serve-tier wire frame whose payload gets one byte
  /// flipped on the wire (-1: none). Deterministic: the router counts the
  /// frames it sends.
  int64_t corrupt_frame = -1;

  /// True if the plan injects anything at all.
  bool any() const {
    return has_kv_faults() || kill_worker >= 0 || crash_batch >= 0 ||
           has_replica_faults() || stall_compaction_s > 0.0 ||
           has_server_faults();
  }
  /// True if any multi-process serving fault is planned.
  bool has_server_faults() const {
    return kill_server >= 0 || corrupt_frame >= 0;
  }
  /// True if any replica-position fault is planned.
  bool has_replica_faults() const {
    return kill_replica >= 0 || kill_shard >= 0 || slow_replica >= 0;
  }
  bool has_kv_faults() const {
    return kv_error_rate > 0.0 || kv_corrupt_rate > 0.0 ||
           kv_latency_rate > 0.0 || torn_write_rate > 0.0;
  }

  /// Parses the spec grammar above. Unknown keys, malformed numbers, or
  /// rates outside [0, 1] are InvalidArgument.
  static Result<FaultPlan> Parse(std::string_view spec);

  /// Reads XFRAUD_FAULT_PLAN from the environment; an unset or empty
  /// variable yields the default (inject-nothing) plan. This is how
  /// `tools/ci.sh --mode=faults` pushes a chaos profile into the test suite.
  static Result<FaultPlan> FromEnv();

  /// Canonical spec string (round-trips through Parse).
  std::string ToString() const;
};

}  // namespace xfraud::fault

#endif  // XFRAUD_FAULT_FAULT_PLAN_H_
