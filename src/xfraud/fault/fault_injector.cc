#include "xfraud/fault/fault_injector.h"

#include <signal.h>
#include <unistd.h>

#include "xfraud/common/rng.h"
#include "xfraud/obs/metrics.h"
#include "xfraud/obs/registry.h"

namespace xfraud::fault {

namespace {

// Site tag folded into the decision-stream seed so KV decisions are
// independent of any other injection site added later.
constexpr uint64_t kKvSiteTag = 0x4B564F50ULL;  // "KVOP"
// Serve-tier wire faults draw from their own stream: adding them must not
// perturb the KV decision sequence of plans written before they existed.
constexpr uint64_t kWireSiteTag = 0x57495245ULL;  // "WIRE"

struct FaultMetrics {
  obs::Counter* injected_io_errors;
  obs::Counter* injected_corruptions;
  obs::Counter* injected_latencies;
  obs::Counter* injected_replica_failures;
  obs::Counter* injected_replica_slowdowns;
  obs::Counter* injected_torn_writes;
  obs::Counter* injected_compaction_stalls;
  obs::Counter* injected_frame_corruptions;

  static const FaultMetrics& Get() {
    static FaultMetrics metrics = [] {
      auto& r = obs::Registry::Global();
      return FaultMetrics{r.counter("fault/injected_io_errors"),
                          r.counter("fault/injected_corruptions"),
                          r.counter("fault/injected_latencies"),
                          r.counter("fault/injected_replica_failures"),
                          r.counter("fault/injected_replica_slowdowns"),
                          r.counter("fault/injected_torn_writes"),
                          r.counter("fault/injected_compaction_stalls"),
                          r.counter("fault/injected_frame_corruptions")};
    }();
    return metrics;
  }
};

}  // namespace

FaultInjector::KvFault FaultInjector::NextKvFault(double* latency_s) {
  if (latency_s != nullptr) *latency_s = 0.0;
  if (!plan_.has_kv_faults()) return KvFault::kNone;
  const int64_t op = kv_ops_.fetch_add(1);
  Rng rng(Rng::StreamSeed(plan_.seed ^ kKvSiteTag,
                          static_cast<uint64_t>(op)));
  // Draw all decisions unconditionally so the stream layout is stable even
  // when individual rates are zero (torn_write draws last: plans written
  // before it existed replay the exact same error/corrupt/latency fates).
  const double u_error = rng.NextDouble();
  const double u_corrupt = rng.NextDouble();
  const double u_latency = rng.NextDouble();
  const double u_torn = rng.NextDouble();
  if (latency_s != nullptr && u_latency < plan_.kv_latency_rate) {
    *latency_s = plan_.kv_latency_s;
    injected_latencies_.fetch_add(1);
    FaultMetrics::Get().injected_latencies->Increment();
  }
  if (u_error < plan_.kv_error_rate) {
    injected_io_errors_.fetch_add(1);
    FaultMetrics::Get().injected_io_errors->Increment();
    return KvFault::kIoError;
  }
  if (u_corrupt < plan_.kv_corrupt_rate) {
    injected_corruptions_.fetch_add(1);
    FaultMetrics::Get().injected_corruptions->Increment();
    return KvFault::kCorruption;
  }
  if (u_torn < plan_.torn_write_rate) {
    injected_torn_writes_.fetch_add(1);
    FaultMetrics::Get().injected_torn_writes->Increment();
    return KvFault::kTornWrite;
  }
  return KvFault::kNone;
}

double FaultInjector::NextCompactionStall() {
  if (plan_.stall_compaction_s <= 0.0) return 0.0;
  injected_compaction_stalls_.fetch_add(1);
  FaultMetrics::Get().injected_compaction_stalls->Increment();
  return plan_.stall_compaction_s;
}

bool FaultInjector::NextReplicaFault(int replica_id, int shard_id,
                                     double* latency_s) {
  if (!plan_.has_replica_faults()) return false;
  if (latency_s != nullptr && replica_id >= 0 &&
      replica_id == plan_.slow_replica) {
    *latency_s += plan_.slow_replica_latency_s;
    injected_replica_slowdowns_.fetch_add(1);
    FaultMetrics::Get().injected_replica_slowdowns->Increment();
  }
  const bool killed =
      (replica_id >= 0 && replica_id == plan_.kill_replica) ||
      (shard_id >= 0 && shard_id == plan_.kill_shard);
  if (killed) {
    injected_replica_failures_.fetch_add(1);
    FaultMetrics::Get().injected_replica_failures->Increment();
  }
  return killed;
}

void FaultInjector::RecordFrameCorruption() {
  injected_frame_corruptions_.fetch_add(1);
  FaultMetrics::Get().injected_frame_corruptions->Increment();
}

int64_t FaultInjector::CorruptByteFor(int64_t frame_index,
                                      size_t payload_bytes) const {
  if (payload_bytes == 0) return -1;
  Rng rng(Rng::StreamSeed(plan_.seed ^ kWireSiteTag,
                          static_cast<uint64_t>(frame_index)));
  return static_cast<int64_t>(rng.NextUint64() %
                              static_cast<uint64_t>(payload_bytes));
}

void KillCurrentProcess() {
  ::kill(::getpid(), SIGKILL);
  // SIGKILL cannot be handled; execution never reaches this point, but the
  // compiler cannot know that.
  for (;;) {
  }
}

}  // namespace xfraud::fault
