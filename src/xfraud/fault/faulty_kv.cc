#include "xfraud/fault/faulty_kv.h"

namespace xfraud::fault {

Status FaultyKvStore::MaybeInject(std::string_view key, bool* torn) const {
  double replica_latency_s = 0.0;
  const bool replica_dead =
      injector_->NextReplicaFault(replica_id_, shard_id_, &replica_latency_s);
  // NextKvFault resets its latency output, so the two injected latencies
  // are drawn separately and summed (a slow replica with a flaky disk pays
  // both).
  double op_latency_s = 0.0;
  FaultInjector::KvFault fault = injector_->NextKvFault(&op_latency_s);
  const double latency_s = replica_latency_s + op_latency_s;
  if (latency_s > 0.0) clock_->SleepFor(latency_s);
  if (replica_dead) {
    return Status::IoError("replica " + std::to_string(replica_id_) +
                           " of shard " + std::to_string(shard_id_) +
                           " is down (injected) for key '" +
                           std::string(key) + "'");
  }
  switch (fault) {
    case FaultInjector::KvFault::kNone:
      return Status::OK();
    case FaultInjector::KvFault::kIoError:
      return Status::IoError("injected fault on key '" + std::string(key) +
                             "'");
    case FaultInjector::KvFault::kCorruption:
      return Status::Corruption("injected corruption on key '" +
                                std::string(key) + "'");
    case FaultInjector::KvFault::kTornWrite:
      // Only a write can tear. On a read path (torn == nullptr) the draw
      // is a no-op so read fates keep matching plans without torn_write.
      if (torn != nullptr) *torn = true;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FaultyKvStore::Put(std::string_view key, std::string_view value) {
  bool torn = false;
  XF_RETURN_IF_ERROR(MaybeInject(key, &torn));
  if (torn) {
    // The writer "died" mid-value: persist a prefix, then report the write
    // failed. Against an MVCC store the remnant lands in the uncommitted
    // pending epoch — the caller must retry (replacing it in place) before
    // publishing, so no committed epoch ever exposes the half value.
    Status inner = inner_->Put(key, value.substr(0, value.size() / 2));
    if (!inner.ok()) return inner;
    return Status::IoError("torn write (injected) on key '" +
                           std::string(key) + "'");
  }
  return inner_->Put(key, value);
}

Status FaultyKvStore::Get(std::string_view key, std::string* value) const {
  XF_RETURN_IF_ERROR(MaybeInject(key));
  return inner_->Get(key, value);
}

Status FaultyKvStore::Delete(std::string_view key) {
  return inner_->Delete(key);
}

int64_t FaultyKvStore::Count() const { return inner_->Count(); }

std::vector<std::string> FaultyKvStore::KeysWithPrefix(
    std::string_view prefix) const {
  return inner_->KeysWithPrefix(prefix);
}

Status FaultyKvStore::GetAt(std::string_view key, uint64_t epoch,
                            std::string* value) const {
  XF_RETURN_IF_ERROR(MaybeInject(key));
  return inner_->GetAt(key, epoch, value);
}

std::vector<std::string> FaultyKvStore::KeysWithPrefixAt(
    std::string_view prefix, uint64_t epoch) const {
  return inner_->KeysWithPrefixAt(prefix, epoch);
}

}  // namespace xfraud::fault
