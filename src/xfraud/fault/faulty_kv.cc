#include "xfraud/fault/faulty_kv.h"

namespace xfraud::fault {

Status FaultyKvStore::MaybeInject(std::string_view key) const {
  double replica_latency_s = 0.0;
  const bool replica_dead =
      injector_->NextReplicaFault(replica_id_, shard_id_, &replica_latency_s);
  // NextKvFault resets its latency output, so the two injected latencies
  // are drawn separately and summed (a slow replica with a flaky disk pays
  // both).
  double op_latency_s = 0.0;
  FaultInjector::KvFault fault = injector_->NextKvFault(&op_latency_s);
  const double latency_s = replica_latency_s + op_latency_s;
  if (latency_s > 0.0) clock_->SleepFor(latency_s);
  if (replica_dead) {
    return Status::IoError("replica " + std::to_string(replica_id_) +
                           " of shard " + std::to_string(shard_id_) +
                           " is down (injected) for key '" +
                           std::string(key) + "'");
  }
  switch (fault) {
    case FaultInjector::KvFault::kNone:
      return Status::OK();
    case FaultInjector::KvFault::kIoError:
      return Status::IoError("injected fault on key '" + std::string(key) +
                             "'");
    case FaultInjector::KvFault::kCorruption:
      return Status::Corruption("injected corruption on key '" +
                                std::string(key) + "'");
  }
  return Status::Internal("unreachable");
}

Status FaultyKvStore::Put(std::string_view key, std::string_view value) {
  XF_RETURN_IF_ERROR(MaybeInject(key));
  return inner_->Put(key, value);
}

Status FaultyKvStore::Get(std::string_view key, std::string* value) const {
  XF_RETURN_IF_ERROR(MaybeInject(key));
  return inner_->Get(key, value);
}

Status FaultyKvStore::Delete(std::string_view key) {
  return inner_->Delete(key);
}

int64_t FaultyKvStore::Count() const { return inner_->Count(); }

std::vector<std::string> FaultyKvStore::KeysWithPrefix(
    std::string_view prefix) const {
  return inner_->KeysWithPrefix(prefix);
}

}  // namespace xfraud::fault
