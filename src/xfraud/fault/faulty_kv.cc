#include "xfraud/fault/faulty_kv.h"

#include <chrono>
#include <thread>

namespace xfraud::fault {

Status FaultyKvStore::MaybeInject(std::string_view key) const {
  double latency_s = 0.0;
  FaultInjector::KvFault fault = injector_->NextKvFault(&latency_s);
  if (latency_s > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(latency_s));
  }
  switch (fault) {
    case FaultInjector::KvFault::kNone:
      return Status::OK();
    case FaultInjector::KvFault::kIoError:
      return Status::IoError("injected fault on key '" + std::string(key) +
                             "'");
    case FaultInjector::KvFault::kCorruption:
      return Status::Corruption("injected corruption on key '" +
                                std::string(key) + "'");
  }
  return Status::Internal("unreachable");
}

Status FaultyKvStore::Put(std::string_view key, std::string_view value) {
  XF_RETURN_IF_ERROR(MaybeInject(key));
  return inner_->Put(key, value);
}

Status FaultyKvStore::Get(std::string_view key, std::string* value) const {
  XF_RETURN_IF_ERROR(MaybeInject(key));
  return inner_->Get(key, value);
}

Status FaultyKvStore::Delete(std::string_view key) {
  return inner_->Delete(key);
}

int64_t FaultyKvStore::Count() const { return inner_->Count(); }

std::vector<std::string> FaultyKvStore::KeysWithPrefix(
    std::string_view prefix) const {
  return inner_->KeysWithPrefix(prefix);
}

}  // namespace xfraud::fault
