#ifndef XFRAUD_FAULT_FAULTY_KV_H_
#define XFRAUD_FAULT_FAULTY_KV_H_

#include <string>
#include <vector>

#include "xfraud/fault/fault_injector.h"
#include "xfraud/kv/kvstore.h"

namespace xfraud::fault {

/// KvStore decorator that injects the plan's KV faults (IoError,
/// Corruption, added latency) in front of any inner store. Wrap a
/// ShardedKvStore with this and hand it to a FeatureStore to chaos-test the
/// whole loader path without touching the store under test.
///
/// Only Get and Put are fault-injected (they are the serving path);
/// Delete/Count/KeysWithPrefix pass through untouched.
class FaultyKvStore : public kv::KvStore {
 public:
  /// Wraps (not owning) `inner`; decisions come from (not owning)
  /// `injector`. Both must outlive this store.
  FaultyKvStore(kv::KvStore* inner, FaultInjector* injector)
      : inner_(inner), injector_(injector) {}

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  int64_t Count() const override;
  std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const override;

 private:
  /// Applies the injector's verdict for one op; returns the injected error
  /// (after any injected latency) or OK to proceed to the inner store.
  Status MaybeInject(std::string_view key) const;

  kv::KvStore* inner_;
  FaultInjector* injector_;
};

}  // namespace xfraud::fault

#endif  // XFRAUD_FAULT_FAULTY_KV_H_
