#ifndef XFRAUD_FAULT_FAULTY_KV_H_
#define XFRAUD_FAULT_FAULTY_KV_H_

#include <string>
#include <vector>

#include "xfraud/common/clock.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/kv/kvstore.h"

namespace xfraud::fault {

/// KvStore decorator that injects the plan's KV faults (IoError,
/// Corruption, added latency) in front of any inner store. Wrap a
/// ShardedKvStore with this and hand it to a FeatureStore to chaos-test the
/// whole loader path without touching the store under test.
///
/// Only Get and Put are fault-injected (they are the serving path);
/// Delete/Count/KeysWithPrefix pass through untouched.
class FaultyKvStore : public kv::KvStore {
 public:
  /// Wraps (not owning) `inner`; decisions come from (not owning)
  /// `injector`. Both must outlive this store.
  ///
  /// `replica_id`/`shard_id` place this store in a serving topology so the
  /// plan's replica-level faults (kill_replica / kill_shard /
  /// slow_replica) apply; the default -1 ("not positioned") keeps the
  /// training-path behavior: only the randomized per-op faults fire.
  /// Injected latency sleeps on `clock` (nullptr: Clock::Real()), so chaos
  /// tests under a VirtualClock never block real time.
  explicit FaultyKvStore(kv::KvStore* inner, FaultInjector* injector,
                         int replica_id = -1, int shard_id = -1,
                         Clock* clock = nullptr)
      : inner_(inner),
        injector_(injector),
        replica_id_(replica_id),
        shard_id_(shard_id),
        clock_(clock != nullptr ? clock : Clock::Real()) {}

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  int64_t Count() const override;
  std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const override;
  Status GetAt(std::string_view key, uint64_t epoch,
               std::string* value) const override;
  std::vector<std::string> KeysWithPrefixAt(std::string_view prefix,
                                            uint64_t epoch) const override;

 private:
  /// Applies the injector's verdict for one op; returns the injected error
  /// (after any injected latency) or OK to proceed to the inner store. The
  /// verdicts compose in a fixed order — the slow-replica and per-op
  /// latency draws are summed and slept first, then the dead-replica
  /// verdict, then the randomized per-op fault — so adding a fault kind
  /// never cancels another. A torn-write verdict sets `*torn` (when the
  /// caller passed one; read paths pass nullptr and proceed clean) and
  /// returns OK: the *write* itself must happen, half-way.
  Status MaybeInject(std::string_view key, bool* torn = nullptr) const;

  kv::KvStore* inner_;
  FaultInjector* injector_;
  int replica_id_;
  int shard_id_;
  Clock* clock_;
};

}  // namespace xfraud::fault

#endif  // XFRAUD_FAULT_FAULTY_KV_H_
