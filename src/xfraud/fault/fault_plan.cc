#include "xfraud/fault/fault_plan.h"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace xfraud::fault {

namespace {

std::vector<std::string_view> SplitOn(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

Status ParseF64(std::string_view key, std::string_view text, double* out) {
  size_t consumed = 0;
  try {
    *out = std::stod(std::string(text), &consumed);
  } catch (const std::exception&) {
    return Status::InvalidArgument("fault plan: bad number for " +
                                   std::string(key) + ": '" +
                                   std::string(text) + "'");
  }
  if (consumed != text.size()) {
    return Status::InvalidArgument("fault plan: trailing junk in " +
                                   std::string(key) + ": '" +
                                   std::string(text) + "'");
  }
  return Status::OK();
}

Status ParseI64(std::string_view key, std::string_view text, int64_t* out) {
  size_t consumed = 0;
  try {
    *out = std::stoll(std::string(text), &consumed);
  } catch (const std::exception&) {
    return Status::InvalidArgument("fault plan: bad integer for " +
                                   std::string(key) + ": '" +
                                   std::string(text) + "'");
  }
  if (consumed != text.size()) {
    return Status::InvalidArgument("fault plan: trailing junk in " +
                                   std::string(key) + ": '" +
                                   std::string(text) + "'");
  }
  return Status::OK();
}

Status ParseRate(std::string_view key, std::string_view text, double* out) {
  XF_RETURN_IF_ERROR(ParseF64(key, text, out));
  if (*out < 0.0 || *out > 1.0) {
    return Status::InvalidArgument("fault plan: " + std::string(key) +
                                   " must be in [0, 1]");
  }
  return Status::OK();
}

// kill_worker=<w>@<e>:<s>
Status ParseKill(std::string_view text, FaultPlan* plan) {
  size_t at = text.find('@');
  size_t colon = text.find(':', at == std::string_view::npos ? 0 : at);
  if (at == std::string_view::npos || colon == std::string_view::npos) {
    return Status::InvalidArgument(
        "fault plan: kill_worker wants <worker>@<epoch>:<step>, got '" +
        std::string(text) + "'");
  }
  int64_t worker = 0, epoch = 0, step = 0;
  XF_RETURN_IF_ERROR(ParseI64("kill_worker", text.substr(0, at), &worker));
  XF_RETURN_IF_ERROR(
      ParseI64("kill_worker", text.substr(at + 1, colon - at - 1), &epoch));
  XF_RETURN_IF_ERROR(
      ParseI64("kill_worker", text.substr(colon + 1), &step));
  if (worker < 0 || epoch < 0 || step < 0) {
    return Status::InvalidArgument(
        "fault plan: kill_worker fields must be non-negative");
  }
  plan->kill_worker = static_cast<int>(worker);
  plan->kill_epoch = static_cast<int>(epoch);
  plan->kill_step = step;
  return Status::OK();
}

// slow_replica=<r>@<seconds>
Status ParseSlowReplica(std::string_view text, FaultPlan* plan) {
  size_t at = text.find('@');
  if (at == std::string_view::npos) {
    return Status::InvalidArgument(
        "fault plan: slow_replica wants <replica>@<seconds>, got '" +
        std::string(text) + "'");
  }
  int64_t replica = 0;
  XF_RETURN_IF_ERROR(
      ParseI64("slow_replica", text.substr(0, at), &replica));
  XF_RETURN_IF_ERROR(ParseF64("slow_replica", text.substr(at + 1),
                              &plan->slow_replica_latency_s));
  if (replica < 0 || plan->slow_replica_latency_s < 0.0) {
    return Status::InvalidArgument(
        "fault plan: slow_replica fields must be non-negative");
  }
  plan->slow_replica = static_cast<int>(replica);
  return Status::OK();
}

// kill_server=<replica>[@<request>]
Status ParseKillServer(std::string_view text, FaultPlan* plan) {
  size_t at = text.find('@');
  int64_t replica = 0;
  int64_t request = 0;
  XF_RETURN_IF_ERROR(
      ParseI64("kill_server", text.substr(0, at), &replica));
  if (at != std::string_view::npos) {
    XF_RETURN_IF_ERROR(
        ParseI64("kill_server", text.substr(at + 1), &request));
  }
  if (replica < 0 || request < 0) {
    return Status::InvalidArgument(
        "fault plan: kill_server fields must be non-negative");
  }
  plan->kill_server = static_cast<int>(replica);
  plan->kill_server_request = request;
  return Status::OK();
}

Status ParseIndex(std::string_view key, std::string_view text, int* out) {
  int64_t v = 0;
  XF_RETURN_IF_ERROR(ParseI64(key, text, &v));
  if (v < 0) {
    return Status::InvalidArgument("fault plan: " + std::string(key) +
                                   " must be non-negative");
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  spec = Trim(spec);
  if (spec.empty()) return plan;
  for (std::string_view part : SplitOn(spec, ',')) {
    part = Trim(part);
    if (part.empty()) continue;
    size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault plan: expected key=value, got '" +
                                     std::string(part) + "'");
    }
    std::string_view key = Trim(part.substr(0, eq));
    std::string_view value = Trim(part.substr(eq + 1));
    if (key == "seed") {
      int64_t seed = 0;
      XF_RETURN_IF_ERROR(ParseI64(key, value, &seed));
      plan.seed = static_cast<uint64_t>(seed);
    } else if (key == "kv_error_rate") {
      XF_RETURN_IF_ERROR(ParseRate(key, value, &plan.kv_error_rate));
    } else if (key == "kv_corrupt_rate") {
      XF_RETURN_IF_ERROR(ParseRate(key, value, &plan.kv_corrupt_rate));
    } else if (key == "kv_latency_rate") {
      XF_RETURN_IF_ERROR(ParseRate(key, value, &plan.kv_latency_rate));
    } else if (key == "kv_latency_s") {
      XF_RETURN_IF_ERROR(ParseF64(key, value, &plan.kv_latency_s));
      if (plan.kv_latency_s < 0.0) {
        return Status::InvalidArgument("fault plan: kv_latency_s < 0");
      }
    } else if (key == "kill_worker") {
      XF_RETURN_IF_ERROR(ParseKill(value, &plan));
    } else if (key == "crash_batch") {
      XF_RETURN_IF_ERROR(ParseI64(key, value, &plan.crash_batch));
    } else if (key == "kill_replica") {
      XF_RETURN_IF_ERROR(ParseIndex(key, value, &plan.kill_replica));
    } else if (key == "kill_shard") {
      XF_RETURN_IF_ERROR(ParseIndex(key, value, &plan.kill_shard));
    } else if (key == "slow_replica") {
      XF_RETURN_IF_ERROR(ParseSlowReplica(value, &plan));
    } else if (key == "torn_write") {
      XF_RETURN_IF_ERROR(ParseRate(key, value, &plan.torn_write_rate));
    } else if (key == "stall_compaction") {
      XF_RETURN_IF_ERROR(ParseF64(key, value, &plan.stall_compaction_s));
      if (plan.stall_compaction_s < 0.0) {
        return Status::InvalidArgument("fault plan: stall_compaction < 0");
      }
    } else if (key == "kill_server") {
      XF_RETURN_IF_ERROR(ParseKillServer(value, &plan));
    } else if (key == "corrupt_frame") {
      XF_RETURN_IF_ERROR(ParseI64(key, value, &plan.corrupt_frame));
      if (plan.corrupt_frame < 0) {
        return Status::InvalidArgument("fault plan: corrupt_frame < 0");
      }
    } else {
      return Status::InvalidArgument("fault plan: unknown key '" +
                                     std::string(key) + "'");
    }
  }
  return plan;
}

Result<FaultPlan> FaultPlan::FromEnv() {
  const char* spec = std::getenv("XFRAUD_FAULT_PLAN");
  if (spec == nullptr) return FaultPlan{};
  return Parse(spec);
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  out << "seed=" << seed;
  if (kv_error_rate > 0.0) out << ",kv_error_rate=" << kv_error_rate;
  if (kv_corrupt_rate > 0.0) out << ",kv_corrupt_rate=" << kv_corrupt_rate;
  if (kv_latency_rate > 0.0) {
    out << ",kv_latency_rate=" << kv_latency_rate
        << ",kv_latency_s=" << kv_latency_s;
  }
  if (kill_worker >= 0) {
    out << ",kill_worker=" << kill_worker << "@" << kill_epoch << ":"
        << kill_step;
  }
  if (crash_batch >= 0) out << ",crash_batch=" << crash_batch;
  if (kill_replica >= 0) out << ",kill_replica=" << kill_replica;
  if (kill_shard >= 0) out << ",kill_shard=" << kill_shard;
  if (slow_replica >= 0) {
    out << ",slow_replica=" << slow_replica << "@"
        << slow_replica_latency_s;
  }
  if (torn_write_rate > 0.0) out << ",torn_write=" << torn_write_rate;
  if (stall_compaction_s > 0.0) {
    out << ",stall_compaction=" << stall_compaction_s;
  }
  if (kill_server >= 0) {
    out << ",kill_server=" << kill_server << "@" << kill_server_request;
  }
  if (corrupt_frame >= 0) out << ",corrupt_frame=" << corrupt_frame;
  return out.str();
}

}  // namespace xfraud::fault
