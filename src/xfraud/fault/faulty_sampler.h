#ifndef XFRAUD_FAULT_FAULTY_SAMPLER_H_
#define XFRAUD_FAULT_FAULTY_SAMPLER_H_

#include <vector>

#include "xfraud/fault/fault_injector.h"
#include "xfraud/sample/sampler.h"

namespace xfraud::fault {

/// Sampler decorator that simulates a loader worker dying: on the plan's
/// `crash_batch`-th Sample call (counted across all threads) it throws
/// InjectedCrash instead of sampling. Exercises BatchLoader's
/// producer-failure propagation path — the consumer must see the exception
/// promptly instead of hanging on a queue nobody will fill.
class FaultySampler : public sample::Sampler {
 public:
  /// Wraps (not owning) `inner`; crash schedule from (not owning)
  /// `injector`. Both must outlive this sampler.
  FaultySampler(const sample::Sampler* inner, FaultInjector* injector)
      : inner_(inner), injector_(injector) {}

  graph::Subgraph Sample(const graph::HeteroGraph& g,
                         const std::vector<int32_t>& seeds,
                         xfraud::Rng* rng) const override;

  const char* name() const override { return "faulty"; }

 private:
  const sample::Sampler* inner_;
  FaultInjector* injector_;
};

}  // namespace xfraud::fault

#endif  // XFRAUD_FAULT_FAULTY_SAMPLER_H_
