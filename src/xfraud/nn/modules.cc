#include "xfraud/nn/modules.h"

#include <cmath>

#include "xfraud/common/logging.h"

namespace xfraud::nn {

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p.var.value().size();
  return total;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.var.ZeroGrad();
}

Linear::Linear(int64_t in_dim, int64_t out_dim, xfraud::Rng* rng,
               bool with_bias)
    : with_bias_(with_bias) {
  float bound = std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
  weight_ = Var(Tensor::Uniform(in_dim, out_dim, bound, rng),
                /*requires_grad=*/true);
  if (with_bias_) {
    bias_ = Var(Tensor(1, out_dim, 0.0f), /*requires_grad=*/true);
  }
}

Var Linear::Forward(const Var& x, kernels::Activation act) const {
  return LinearBiasAct(x, weight_, with_bias_ ? bias_ : Var(), act);
}

void Linear::CollectParameters(const std::string& prefix,
                               std::vector<NamedParameter>* out) const {
  out->push_back({prefix + "weight", weight_});
  if (with_bias_) out->push_back({prefix + "bias", bias_});
}

Embedding::Embedding(int64_t num_ids, int64_t dim, xfraud::Rng* rng,
                     bool zero_init) {
  Tensor table = zero_init
                     ? Tensor(num_ids, dim, 0.0f)
                     : Tensor::Gaussian(num_ids, dim, 0.02f, rng);
  table_ = Var(std::move(table), /*requires_grad=*/true);
}

Var Embedding::Forward(const std::vector<int32_t>& ids) const {
  return IndexRows(table_, ids);
}

void Embedding::CollectParameters(const std::string& prefix,
                                  std::vector<NamedParameter>* out) const {
  out->push_back({prefix + "table", table_});
}

LayerNormModule::LayerNormModule(int64_t dim) {
  gamma_ = Var(Tensor(1, dim, 1.0f), /*requires_grad=*/true);
  beta_ = Var(Tensor(1, dim, 0.0f), /*requires_grad=*/true);
}

Var LayerNormModule::Forward(const Var& x) const {
  return LayerNorm(x, gamma_, beta_);
}

void LayerNormModule::CollectParameters(
    const std::string& prefix, std::vector<NamedParameter>* out) const {
  out->push_back({prefix + "gamma", gamma_});
  out->push_back({prefix + "beta", beta_});
}

Mlp::Mlp(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, float dropout,
         xfraud::Rng* rng)
    : fc1_(in_dim, hidden_dim, rng),
      ln1_(hidden_dim),
      fc2_(hidden_dim, hidden_dim, rng),
      ln2_(hidden_dim),
      out_(hidden_dim, out_dim, rng),
      dropout_(dropout) {}

Var Mlp::Forward(const Var& x, bool training, xfraud::Rng* rng) const {
  Var h = Relu(ln1_.Forward(Dropout(fc1_.Forward(x), dropout_, training, rng)));
  h = Relu(ln2_.Forward(Dropout(fc2_.Forward(h), dropout_, training, rng)));
  return out_.Forward(h);
}

void Mlp::CollectParameters(const std::string& prefix,
                            std::vector<NamedParameter>* out) const {
  fc1_.CollectParameters(prefix + "fc1.", out);
  ln1_.CollectParameters(prefix + "ln1.", out);
  fc2_.CollectParameters(prefix + "fc2.", out);
  ln2_.CollectParameters(prefix + "ln2.", out);
  out_.CollectParameters(prefix + "out.", out);
}

}  // namespace xfraud::nn
