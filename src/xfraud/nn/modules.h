#ifndef XFRAUD_NN_MODULES_H_
#define XFRAUD_NN_MODULES_H_

#include <string>
#include <vector>

#include "xfraud/common/rng.h"
#include "xfraud/nn/ops.h"
#include "xfraud/nn/variable.h"

namespace xfraud::nn {

/// A named trainable parameter, as exposed by Module::Parameters(). Names are
/// hierarchical ("layer0.q_linear.txn.weight") and used for (de)serialization
/// and for the DDP gradient exchange.
struct NamedParameter {
  std::string name;
  Var var;
};

/// Base class for anything holding trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends this module's parameters (prefixed by `prefix`) to `out`.
  virtual void CollectParameters(const std::string& prefix,
                                 std::vector<NamedParameter>* out) const = 0;

  /// Flat list of all named parameters.
  std::vector<NamedParameter> Parameters() const {
    std::vector<NamedParameter> out;
    CollectParameters("", &out);
    return out;
  }

  /// Total number of scalar weights.
  int64_t ParameterCount() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();
};

/// Affine map y = x W + b. Weight shape [in, out]; init is U(-a, a) with
/// a = sqrt(6/(in+out)) (Glorot), matching the paper's uniform random init.
class Linear : public Module {
 public:
  Linear(int64_t in_dim, int64_t out_dim, xfraud::Rng* rng,
         bool with_bias = true);

  /// y = act(x·W + b) in one fused kernel pass (no intermediate x·W block).
  Var Forward(const Var& x,
              kernels::Activation act = kernels::Activation::kNone) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out) const override;

  const Var& weight() const { return weight_; }

 private:
  Var weight_;
  Var bias_;
  bool with_bias_;
};

/// Learnable per-id embedding table [num_ids, dim]. The paper initializes
/// node-type and edge-type embeddings to zero (§3.2.2), hence `zero_init`.
class Embedding : public Module {
 public:
  Embedding(int64_t num_ids, int64_t dim, xfraud::Rng* rng,
            bool zero_init = false);

  /// Rows of the table selected by `ids` -> [|ids|, dim].
  Var Forward(const std::vector<int32_t>& ids) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out) const override;

 private:
  Var table_;
};

/// Layer normalization with learnable gain (init 1) and bias (init 0).
class LayerNormModule : public Module {
 public:
  explicit LayerNormModule(int64_t dim);

  Var Forward(const Var& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out) const override;

 private:
  Var gamma_;
  Var beta_;
};

/// The detector's prediction head (paper §3.2.1 step 3): a feed-forward
/// network with two hidden layers, each followed by dropout, layer norm, and
/// ReLU, ending in a linear map to `out_dim` logits.
class Mlp : public Module {
 public:
  Mlp(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, float dropout,
      xfraud::Rng* rng);

  Var Forward(const Var& x, bool training, xfraud::Rng* rng) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out) const override;

 private:
  Linear fc1_;
  LayerNormModule ln1_;
  Linear fc2_;
  LayerNormModule ln2_;
  Linear out_;
  float dropout_;
};

}  // namespace xfraud::nn

#endif  // XFRAUD_NN_MODULES_H_
