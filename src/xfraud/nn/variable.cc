#include "xfraud/nn/variable.h"

#include <unordered_set>

#include "xfraud/common/logging.h"

namespace xfraud::nn {

Var::Var(Tensor value, bool requires_grad)
    : impl_(std::make_shared<internal::VarImpl>()) {
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

Var Var::FromImpl(std::shared_ptr<internal::VarImpl> impl) {
  Var v;
  v.impl_ = std::move(impl);
  return v;
}

float Var::item() const {
  XF_CHECK_EQ(impl_->value.rows(), 1);
  XF_CHECK_EQ(impl_->value.cols(), 1);
  return impl_->value.At(0, 0);
}

void Var::ZeroGrad() {
  if (impl_ == nullptr) return;
  if (impl_->grad.SameShape(impl_->value)) impl_->grad.Fill(0.0f);
}

void Var::Backward() {
  XF_CHECK(impl_ != nullptr);
  XF_CHECK_EQ(impl_->value.rows(), 1);
  XF_CHECK_EQ(impl_->value.cols(), 1);

  // Iterative post-order DFS to obtain a topological order of the tape.
  std::vector<internal::VarImpl*> order;
  std::unordered_set<internal::VarImpl*> visited;
  std::vector<std::pair<internal::VarImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, child_idx] = stack.back();
    if (child_idx < node->parents.size()) {
      internal::VarImpl* parent = node->parents[child_idx].get();
      ++child_idx;
      if (visited.insert(parent).second) stack.emplace_back(parent, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad().Fill(1.0f);
  // `order` is post-order (parents before users appended first), so walk it
  // in reverse to visit each node after all of its consumers.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::VarImpl* node = *it;
    if (node->backward_fn) node->backward_fn(node);
  }
}

}  // namespace xfraud::nn
