#ifndef XFRAUD_NN_SERIALIZE_H_
#define XFRAUD_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "xfraud/common/status.h"
#include "xfraud/nn/modules.h"

namespace xfraud::nn {

/// Writes named parameters to a simple binary checkpoint:
///   magic "XFCK", u32 count, then per entry
///   {u32 name_len, name bytes, i64 rows, i64 cols, float payload}.
Status SaveParameters(const std::vector<NamedParameter>& params,
                      const std::string& path);

/// Loads a checkpoint into `params`, matching entries by name. Every
/// parameter must be present with identical shape.
Status LoadParameters(const std::string& path,
                      std::vector<NamedParameter>* params);

/// Copies parameter values from `src` into `dst`, matching by position.
/// Shapes must agree. Used to replicate models across DDP workers.
Status CopyParameters(const std::vector<NamedParameter>& src,
                      std::vector<NamedParameter>* dst);

}  // namespace xfraud::nn

#endif  // XFRAUD_NN_SERIALIZE_H_
