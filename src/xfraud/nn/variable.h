#ifndef XFRAUD_NN_VARIABLE_H_
#define XFRAUD_NN_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "xfraud/nn/tensor.h"

namespace xfraud::nn {

namespace internal {

/// One node of the reverse-mode autodiff graph.
struct VarImpl {
  Tensor value;
  Tensor grad;  // Lazily allocated; same shape as value once touched.
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarImpl>> parents;
  /// Propagates this node's grad into its parents' grads.
  std::function<void(VarImpl*)> backward_fn;

  Tensor& EnsureGrad() {
    if (!grad.SameShape(value)) grad = Tensor::ZerosLike(value);
    return grad;
  }
};

}  // namespace internal

/// A tensor plus its place in the autodiff tape. Copying a Var aliases the
/// underlying node (shared_ptr semantics), mirroring torch.Tensor.
///
/// The engine is a classic define-by-run tape: every op allocates a fresh
/// node whose closure knows how to push gradients to its inputs; calling
/// Backward() on a scalar output runs the closures in reverse topological
/// order. Ops skip closure construction entirely when no input requires
/// gradients, so inference pays no autograd cost.
class Var {
 public:
  Var() = default;

  /// Wraps a tensor. `requires_grad=true` marks it as a trainable leaf.
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }

  const Tensor& value() const { return impl_->value; }
  Tensor& mutable_value() { return impl_->value; }

  /// Gradient accumulated by the last Backward(). Allocates zeros on demand.
  Tensor& grad() { return impl_->EnsureGrad(); }

  bool requires_grad() const { return impl_ && impl_->requires_grad; }

  int64_t rows() const { return impl_->value.rows(); }
  int64_t cols() const { return impl_->value.cols(); }

  /// Scalar convenience accessor; pre: shape is [1,1].
  float item() const;

  /// Clears this node's gradient buffer (leaves only; cheap no-op otherwise).
  void ZeroGrad();

  /// Runs reverse-mode autodiff from this node. Pre: shape is [1,1].
  void Backward();

  std::shared_ptr<internal::VarImpl> impl() const { return impl_; }

  /// Used by ops to construct result nodes.
  static Var FromImpl(std::shared_ptr<internal::VarImpl> impl);

 private:
  std::shared_ptr<internal::VarImpl> impl_;
};

}  // namespace xfraud::nn

#endif  // XFRAUD_NN_VARIABLE_H_
