#include "xfraud/nn/optim.h"

#include <cmath>

#include "xfraud/common/logging.h"

namespace xfraud::nn {

AdamW::AdamW(std::vector<NamedParameter> params, AdamWOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::ZerosLike(p.var.value()));
    v_.push_back(Tensor::ZerosLike(p.var.value()));
  }
}

void AdamW::Step() {
  ++step_count_;
  float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& var = params_[i].var;
    Tensor& value = var.mutable_value();
    const Tensor& grad = var.grad();
    float* w = value.data();
    const float* g = grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (int64_t j = 0; j < value.size(); ++j) {
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * g[j];
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * g[j] * g[j];
      float mhat = m[j] / bc1;
      float vhat = v[j] / bc2;
      // Decoupled weight decay applied directly to the weights.
      w[j] -= options_.lr *
              (mhat / (std::sqrt(vhat) + options_.eps) +
               options_.weight_decay * w[j]);
    }
  }
}

void AdamW::ZeroGrad() {
  for (auto& p : params_) p.var.ZeroGrad();
}

Status AdamW::SetState(std::vector<Tensor> first_moments,
                       std::vector<Tensor> second_moments,
                       int64_t step_count) {
  if (first_moments.size() != params_.size() ||
      second_moments.size() != params_.size()) {
    return Status::InvalidArgument("optimizer state count mismatch");
  }
  if (step_count < 0) {
    return Status::InvalidArgument("negative optimizer step count");
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!first_moments[i].SameShape(params_[i].var.value()) ||
        !second_moments[i].SameShape(params_[i].var.value())) {
      return Status::InvalidArgument("optimizer state shape mismatch at " +
                                     params_[i].name);
    }
  }
  m_ = std::move(first_moments);
  v_ = std::move(second_moments);
  step_count_ = step_count;
  return Status::OK();
}

Status AdamW::CopyStateFrom(const AdamW& other) {
  return SetState(other.m_, other.v_, other.step_count_);
}

double AdamW::ClipGradNorm(double max_norm) {
  double total = 0.0;
  for (auto& p : params_) {
    const Tensor& g = p.var.grad();
    const float* gd = g.data();
    for (int64_t j = 0; j < g.size(); ++j) {
      total += static_cast<double>(gd[j]) * gd[j];
    }
  }
  double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params_) p.var.grad().ScaleInPlace(scale);
  }
  return norm;
}

}  // namespace xfraud::nn
