#include "xfraud/nn/tensor.h"

#include <cmath>
#include <cstring>

#include "xfraud/common/logging.h"

namespace xfraud::nn {

Tensor::Tensor(int64_t rows, int64_t cols, float fill)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), fill) {
  XF_CHECK_GE(rows, 0);
  XF_CHECK_GE(cols, 0);
}

Tensor::Tensor(int64_t rows, int64_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  XF_CHECK_EQ(static_cast<size_t>(rows * cols), data_.size());
}

Tensor Tensor::ZerosLike(const Tensor& like) {
  return Tensor(like.rows(), like.cols(), 0.0f);
}

Tensor Tensor::Uniform(int64_t rows, int64_t cols, float bound,
                       xfraud::Rng* rng) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->NextUniform(-bound, bound));
  }
  return t;
}

Tensor Tensor::Gaussian(int64_t rows, int64_t cols, float stddev,
                        xfraud::Rng* rng) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->NextGaussian() * stddev);
  }
  return t;
}

void Tensor::Fill(float value) {
  for (auto& v : data_) v = value;
}

void Tensor::AddInPlace(const Tensor& other) {
  XF_CHECK_SHAPE(*this, other);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::ScaleInPlace(float s) {
  for (auto& v : data_) v *= s;
}

double Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Tensor::Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

bool Tensor::BitwiseEqual(const Tensor& other) const {
  if (!SameShape(other)) return false;
  if (data_.empty()) return true;
  return std::memcmp(data_.data(), other.data_.data(),
                     data_.size() * sizeof(float)) == 0;
}

std::string Tensor::ShapeString() const {
  return "Tensor[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

}  // namespace xfraud::nn
