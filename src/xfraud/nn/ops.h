#ifndef XFRAUD_NN_OPS_H_
#define XFRAUD_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "xfraud/common/rng.h"
#include "xfraud/nn/kernels.h"
#include "xfraud/nn/variable.h"

namespace xfraud::nn {

// Differentiable ops. Every function returns a fresh Var wired into the tape;
// when no input requires gradients the backward closure is omitted so pure
// inference runs tape-free. All gradients are verified against central finite
// differences in tests/nn_grad_test.cc.
//
// The dense/scatter hot paths (MatMul, LinearBiasAct, IndexRows,
// ScatterAddRows, AttentionAggregate) run on the blocked, optionally
// parallel nn::kernels layer (DESIGN.md §13); results are bit-identical at
// any kernels::SetNumThreads setting.

/// C = A * B. Shapes: [n,k] x [k,m] -> [n,m].
Var MatMul(const Var& a, const Var& b);

/// Fused act(x·W + b): one kernel pass instead of MatMul + AddRowBroadcast
/// (+ Relu) round-tripping an [n,out] block through memory per op. `bias`
/// may be an undefined Var for a bias-free linear.
Var LinearBiasAct(const Var& x, const Var& w, const Var& bias,
                  kernels::Activation act = kernels::Activation::kNone);

/// Fused SegmentSoftmax → Dropout → per-head MulColBroadcast →
/// ScatterAddRows: the HeteroConv attention aggregate (paper eqs. 9-10 +
/// eq. 1) in two passes over the [E,D] value block instead of five. scores
/// is [E,H], values [E, H·head_dim], dst the per-edge target node; returns
/// [num_nodes, H·head_dim]. Bit-identical to the unfused composition,
/// including RNG consumption order when dropout is active.
Var AttentionAggregate(const Var& scores, const Var& values,
                       const std::vector<int32_t>& dst, int64_t num_nodes,
                       int64_t head_dim, float dropout_p, bool training,
                       xfraud::Rng* rng);

/// Elementwise A + B (same shape).
Var Add(const Var& a, const Var& b);

/// Adds the [1,d] row `bias` to every row of A [n,d].
Var AddRowBroadcast(const Var& a, const Var& bias);

/// Elementwise A - B (same shape).
Var Sub(const Var& a, const Var& b);

/// Elementwise A ⊙ B (same shape).
Var Mul(const Var& a, const Var& b);

/// s * A for a compile-time constant s (no gradient w.r.t. s).
Var Scale(const Var& a, float s);

/// A + c elementwise for constant c.
Var AddConst(const Var& a, float c);

/// max(A, 0).
Var Relu(const Var& a);

/// x >= 0 ? x : alpha*x (GAT's activation).
Var LeakyRelu(const Var& a, float alpha);

Var Tanh(const Var& a);
Var Sigmoid(const Var& a);

/// Natural log; inputs must be positive (compose with AddConst for eps).
Var Log(const Var& a);

/// Inverted dropout: zeroes entries w.p. p and rescales survivors by 1/(1-p).
/// Identity when !training or p == 0.
Var Dropout(const Var& a, float p, bool training, xfraud::Rng* rng);

/// Softmax across each row independently.
Var RowSoftmax(const Var& a);

/// Mean cross entropy between logits [n,c] and integer labels (one per row).
/// `class_weights` (optional, size c) rescales each example's loss by the
/// weight of its true class and normalizes by the total weight.
Var CrossEntropy(const Var& logits, const std::vector<int>& labels,
                 const std::vector<float>& class_weights = {});

/// [n,a] ++ [n,b] -> [n,a+b] along columns.
Var ConcatCols(const Var& a, const Var& b);

/// Columns [start, start+len) of A.
Var SliceCols(const Var& a, int64_t start, int64_t len);

/// Gathers rows: out[i] = a[indices[i]]. Backward scatter-adds.
Var IndexRows(const Var& a, const std::vector<int32_t>& indices);

/// out[index[e]] += a[e] for every row e of A; out has `num_rows` rows.
/// This is the GNN message aggregation primitive.
Var ScatterAddRows(const Var& a, const std::vector<int32_t>& index,
                   int64_t num_rows);

/// Column-wise softmax within segments: for each column h and each segment s,
/// out[e,h] = exp(a[e,h]) / sum_{e': seg[e']==s} exp(a[e',h]).
/// This is the per-target-node attention normalization of paper eq. 9.
/// Rows whose segment is empty of competitors normalize to 1.
Var SegmentSoftmax(const Var& a, const std::vector<int32_t>& segments,
                   int64_t num_segments);

/// Multiplies each row i of A [n,d] by col[i,0] of a [n,1] column. Used for
/// applying per-edge attention/mask weights to message blocks.
Var MulColBroadcast(const Var& a, const Var& col);

/// Sum of all entries -> [1,1].
Var Sum(const Var& a);

/// Per-row sum: [n,d] -> [n,1]. Used for row-wise dot products
/// (RowSum(Mul(a, b))), e.g. the attention scores of paper eq. 8.
Var RowSum(const Var& a);

/// Mean of all entries -> [1,1].
Var Mean(const Var& a);

/// Layer normalization across each row with learnable gain/bias [1,d].
Var LayerNorm(const Var& a, const Var& gamma, const Var& beta,
              float eps = 1e-5f);

/// Matrix transpose [n,d] -> [d,n].
Var Transpose(const Var& a);

/// A wrapper marking a tensor as a constant input (no gradient).
Var Constant(Tensor t);

}  // namespace xfraud::nn

#endif  // XFRAUD_NN_OPS_H_
