#ifndef XFRAUD_NN_OPTIM_H_
#define XFRAUD_NN_OPTIM_H_

#include <vector>

#include "xfraud/common/status.h"
#include "xfraud/nn/modules.h"

namespace xfraud::nn {

/// Hyperparameters for AdamW. The paper trains all models with adamw and
/// gradient clipping (clip = 0.25, Appendix C).
struct AdamWOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
};

/// Decoupled-weight-decay Adam (Loshchilov & Hutter). Holds first/second
/// moment state per parameter; Step() consumes the gradients accumulated by
/// the last Backward().
class AdamW {
 public:
  AdamW(std::vector<NamedParameter> params, AdamWOptions options);

  /// Applies one update using the currently accumulated gradients.
  void Step();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  const std::vector<NamedParameter>& params() const { return params_; }
  AdamWOptions& options() { return options_; }

  /// Optimizer state, exposed for checkpoint/resume and dead-replica
  /// rejoin: a resumed (or rejoined) optimizer must continue the exact
  /// moment estimates and bias-correction schedule, or the update sequence
  /// diverges from an uninterrupted run.
  const std::vector<Tensor>& first_moments() const { return m_; }
  const std::vector<Tensor>& second_moments() const { return v_; }
  int64_t step_count() const { return step_count_; }

  /// Restores state captured from a checkpoint (or a peer replica).
  /// Shapes must match the constructed parameter list.
  Status SetState(std::vector<Tensor> first_moments,
                  std::vector<Tensor> second_moments, int64_t step_count);

  /// Copies moment state + step count from a peer optimizer over the same
  /// architecture (DDP dead-worker rejoin).
  Status CopyStateFrom(const AdamW& other);

 private:
  std::vector<NamedParameter> params_;
  AdamWOptions options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t step_count_ = 0;
};

}  // namespace xfraud::nn

#endif  // XFRAUD_NN_OPTIM_H_
