#ifndef XFRAUD_NN_OPTIM_H_
#define XFRAUD_NN_OPTIM_H_

#include <vector>

#include "xfraud/nn/modules.h"

namespace xfraud::nn {

/// Hyperparameters for AdamW. The paper trains all models with adamw and
/// gradient clipping (clip = 0.25, Appendix C).
struct AdamWOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
};

/// Decoupled-weight-decay Adam (Loshchilov & Hutter). Holds first/second
/// moment state per parameter; Step() consumes the gradients accumulated by
/// the last Backward().
class AdamW {
 public:
  AdamW(std::vector<NamedParameter> params, AdamWOptions options);

  /// Applies one update using the currently accumulated gradients.
  void Step();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  const std::vector<NamedParameter>& params() const { return params_; }
  AdamWOptions& options() { return options_; }

 private:
  std::vector<NamedParameter> params_;
  AdamWOptions options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t step_count_ = 0;
};

}  // namespace xfraud::nn

#endif  // XFRAUD_NN_OPTIM_H_
